// Command experiments regenerates the paper's tables and figures on
// the synthetic cohort. See DESIGN.md for the per-experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Usage:
//
//	experiments [-exp all|table1|fig6a|...] [-scale quick|default|full] [-check]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stsmatch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id ("+strings.Join(experiments.Names(), "|")+"|all)")
	scaleName := flag.String("scale", "default", "workload scale (quick|default|full)")
	check := flag.Bool("check", false, "fail when a paper-shape assertion does not hold")
	flag.Parse()

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	env, err := experiments.Setup(scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	fmt.Printf("# scale=%s patients=%d sessions=%d dur=%.0fs vertices=%d (setup %.1fs)\n\n",
		scale.Name, scale.Patients, scale.Sessions, scale.SessionDur,
		env.DB.NumVertices(), time.Since(start).Seconds())

	r := &experiments.Runner{Env: env, Out: os.Stdout, CheckShapes: *check}
	if err := r.Run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiment failed:", err)
		os.Exit(1)
	}
}
