// Command predictd replays a PLR database through the online
// prediction pipeline and reports accuracy — the operational loop of
// image-guided dynamic radiation treatment: at each evaluation point
// it forms a stability-driven dynamic query from the history, retrieves
// similar subsequences, and predicts the position delta seconds ahead.
//
// Usage:
//
//	motiongen -o cohort.json
//	predictd -db cohort.json -delta 200ms -queries 20
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/store"
)

func main() {
	dbPath := flag.String("db", "cohort.json", "PLR database (from motiongen or segmenter)")
	delta := flag.Duration("delta", 200*time.Millisecond, "prediction horizon")
	queries := flag.Int("queries", 12, "evaluation points per stream")
	eps := flag.Float64("eps", core.DefaultParams().DistThreshold, "distance threshold")
	theta := flag.Float64("theta", core.DefaultParams().StabilityThreshold, "stability threshold")
	verbose := flag.Bool("v", false, "print every prediction")
	adapt := flag.Float64("adapt", 0, "adapt epsilon online to this target coverage (0 disables)")
	flag.Parse()

	f, err := os.Open(*dbPath)
	if err != nil {
		fatal(err)
	}
	db, err := store.ReadAny(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	db.EnableIndexes()

	params := core.DefaultParams()
	params.DistThreshold = *eps
	params.StabilityThreshold = *theta
	m, err := core.NewMatcher(db, params)
	if err != nil {
		fatal(err)
	}

	opts := core.DefaultEvalOptions()
	opts.Deltas = []float64{delta.Seconds()}
	opts.QueriesPerStream = *queries

	if *adapt > 0 {
		runAdaptive(m, delta.Seconds(), *queries, *adapt)
		return
	}
	if *verbose {
		runVerbose(m, delta.Seconds(), *queries)
		return
	}

	start := time.Now()
	res, err := m.Evaluate(opts)
	if err != nil {
		fatal(err)
	}
	d := res.PerDelta[0]
	fmt.Printf("database: %d patients, %d streams, %d vertices\n",
		db.NumPatients(), len(db.Streams()), db.NumVertices())
	fmt.Printf("horizon:  %v\n", *delta)
	fmt.Printf("queries:  %d (%d predicted, coverage %.1f%%)\n",
		d.Attempts, d.Predictions, 100*d.Coverage())
	fmt.Printf("error:    mean %.3f mm, sd %.3f, max %.3f\n",
		d.MeanError(), d.Err.StdDev(), d.Err.Max())
	fmt.Printf("queries:  mean length %.1f vertices (%d/%d stable strips)\n",
		res.QueryLen.Mean(), res.StableQueries, res.TotalQueries)
	fmt.Printf("elapsed:  %.2fs total, %.2f ms per evaluation point\n",
		time.Since(start).Seconds(),
		1000*time.Since(start).Seconds()/float64(max(d.Attempts, 1)))
}

// runAdaptive replays the database with the online epsilon controller
// (the paper's "dynamically adjust their values during online
// procedures" future work) and reports where it settles.
func runAdaptive(m *core.Matcher, delta float64, queries int, target float64) {
	ctl, err := core.NewCoverageController(target, m.Params.DistThreshold,
		m.Params.DistThreshold/8, m.Params.DistThreshold*4)
	if err != nil {
		fatal(err)
	}
	var errSum float64
	var predicted int
	for _, st := range m.DB.Streams() {
		seq := st.Seq()
		minCut := m.Params.MaxQueryVertices() + 2
		if minCut >= len(seq)-2 {
			continue
		}
		for qi := 0; qi < queries; qi++ {
			cut := minCut + (len(seq)-1-minCut)*qi/queries
			prefix := seq[:cut+1]
			qseq, _ := m.Params.DynamicQuery(prefix)
			q := core.NewQuery(qseq, st.PatientID, st.SessionID)
			pred, err := m.PredictAdaptive(q, delta, ctl)
			if err != nil {
				continue
			}
			if truth, inside := seq.PositionAt(q.Now + delta); inside {
				errSum += abs(pred.Pos[0] - truth[0])
				predicted++
			}
		}
	}
	fmt.Printf("adaptive epsilon: target coverage %.0f%%, achieved %.1f%% over %d attempts\n",
		100*target, 100*ctl.Coverage(), ctl.Attempts())
	fmt.Printf("epsilon settled at %.2f (started %.2f)\n", ctl.Epsilon(), m.Params.DistThreshold)
	if predicted > 0 {
		fmt.Printf("mean error %.3f mm over %d scored predictions\n", errSum/float64(predicted), predicted)
	}
}

// runVerbose prints each prediction as it would stream during
// treatment.
func runVerbose(m *core.Matcher, delta float64, queries int) {
	for _, st := range m.DB.Streams() {
		seq := st.Seq()
		minCut := m.Params.MaxQueryVertices() + 2
		if minCut >= len(seq)-2 {
			continue
		}
		for qi := 0; qi < queries; qi++ {
			cut := minCut + (len(seq)-1-minCut)*qi/queries
			prefix := seq[:cut+1]
			qseq, info := m.Params.DynamicQuery(prefix)
			q := core.NewQuery(qseq, st.PatientID, st.SessionID)
			pred, err := m.Predict(q, delta, nil)
			now := q.Now
			truth, inside := seq.PositionAt(now + delta)
			switch {
			case err == core.ErrNoMatches:
				fmt.Printf("%s t=%7.2fs query=%2dv stable=%-5v -> no prediction\n",
					st.SessionID, now, len(qseq), info.Stable)
			case err != nil:
				fatal(err)
			case inside:
				fmt.Printf("%s t=%7.2fs query=%2dv stable=%-5v -> pred %7.2f truth %7.2f err %5.2f mm (%d matches)\n",
					st.SessionID, now, len(qseq), info.Stable, pred.Pos[0], truth[0],
					abs(pred.Pos[0]-truth[0]), pred.NumMatches)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predictd:", err)
	os.Exit(1)
}
