// Command predictd replays a PLR database through the online
// prediction pipeline and reports accuracy — the operational loop of
// image-guided dynamic radiation treatment: at each evaluation point
// it forms a stability-driven dynamic query from the history, retrieves
// similar subsequences, and predicts the position delta seconds ahead.
//
// Usage:
//
//	motiongen -o cohort.json
//	predictd -db cohort.json -delta 200ms -queries 20
//
// Output is structured (log/slog). With -pprof ADDR the run also
// serves /debug/pprof/ and /metrics on ADDR for profiling long
// replays; every run ends with a metrics summary (candidate pruning
// counters, search latencies) from the shared registry.
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/obs"
	"stsmatch/internal/store"
)

func main() {
	dbPath := flag.String("db", "cohort.json", "PLR database (from motiongen or segmenter)")
	delta := flag.Duration("delta", 200*time.Millisecond, "prediction horizon")
	queries := flag.Int("queries", 12, "evaluation points per stream")
	eps := flag.Float64("eps", core.DefaultParams().DistThreshold, "distance threshold")
	theta := flag.Float64("theta", core.DefaultParams().StabilityThreshold, "stability threshold")
	verbose := flag.Bool("v", false, "print every prediction")
	adapt := flag.Float64("adapt", 0, "adapt epsilon online to this target coverage (0 disables)")
	pprofAddr := flag.String("pprof", "", "serve /debug/pprof/ and /metrics on this address (empty disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		slog.Error("bad -log-level", slog.Any("err", err))
		os.Exit(1)
	}
	obs.InitLogging(os.Stdout, level, false)
	log := obs.Logger("predictd")
	defer func() { log.Info("metrics summary", obs.SummaryAttrs(obs.Default())...) }()

	if *pprofAddr != "" {
		mux := http.NewServeMux()
		obs.AttachPprof(mux)
		mux.Handle("GET /metrics", obs.Default().Handler())
		go func() {
			ds := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
			if err := ds.ListenAndServe(); err != nil {
				log.Warn("pprof server stopped", slog.Any("err", err))
			}
		}()
		log.Info("pprof enabled", slog.String("addr", *pprofAddr))
	}

	f, err := os.Open(*dbPath)
	if err != nil {
		fatal(log, err)
	}
	db, err := store.ReadAny(f)
	f.Close()
	if err != nil {
		fatal(log, err)
	}
	db.EnableIndexes()

	params := core.DefaultParams()
	params.DistThreshold = *eps
	params.StabilityThreshold = *theta
	m, err := core.NewMatcher(db, params)
	if err != nil {
		fatal(log, err)
	}

	opts := core.DefaultEvalOptions()
	opts.Deltas = []float64{delta.Seconds()}
	opts.QueriesPerStream = *queries

	if *adapt > 0 {
		runAdaptive(log, m, delta.Seconds(), *queries, *adapt)
		return
	}
	if *verbose {
		runVerbose(log, m, delta.Seconds(), *queries)
		return
	}

	start := time.Now()
	res, err := m.Evaluate(opts)
	if err != nil {
		fatal(log, err)
	}
	d := res.PerDelta[0]
	log.Info("database",
		slog.Int("patients", db.NumPatients()),
		slog.Int("streams", len(db.Streams())),
		slog.Int("vertices", db.NumVertices()))
	log.Info("evaluation",
		slog.Duration("horizon", *delta),
		slog.Int("attempts", d.Attempts),
		slog.Int("predictions", d.Predictions),
		slog.Float64("coveragePct", 100*d.Coverage()),
		slog.Float64("meanErrorMM", d.MeanError()),
		slog.Float64("sdErrorMM", d.Err.StdDev()),
		slog.Float64("maxErrorMM", d.Err.Max()))
	log.Info("queries",
		slog.Float64("meanLenVertices", res.QueryLen.Mean()),
		slog.Int("stable", res.StableQueries),
		slog.Int("total", res.TotalQueries))
	elapsed := time.Since(start).Seconds()
	log.Info("timing",
		slog.Float64("totalSeconds", elapsed),
		slog.Float64("msPerEvalPoint", 1000*elapsed/float64(max(d.Attempts, 1))))
}

// runAdaptive replays the database with the online epsilon controller
// (the paper's "dynamically adjust their values during online
// procedures" future work) and reports where it settles.
func runAdaptive(log *slog.Logger, m *core.Matcher, delta float64, queries int, target float64) {
	ctl, err := core.NewCoverageController(target, m.Params.DistThreshold,
		m.Params.DistThreshold/8, m.Params.DistThreshold*4)
	if err != nil {
		fatal(log, err)
	}
	var errSum float64
	var predicted int
	for _, st := range m.DB.Streams() {
		seq := st.Seq()
		minCut := m.Params.MaxQueryVertices() + 2
		if minCut >= len(seq)-2 {
			continue
		}
		for qi := 0; qi < queries; qi++ {
			cut := minCut + (len(seq)-1-minCut)*qi/queries
			prefix := seq[:cut+1]
			qseq, _ := m.Params.DynamicQuery(prefix)
			q := core.NewQuery(qseq, st.PatientID, st.SessionID)
			pred, err := m.PredictAdaptive(q, delta, ctl)
			if err != nil {
				continue
			}
			if truth, inside := seq.PositionAt(q.Now + delta); inside {
				errSum += abs(pred.Pos[0] - truth[0])
				predicted++
			}
		}
	}
	log.Info("epsilon settled",
		slog.Float64("targetCoveragePct", 100*target),
		slog.Float64("achievedCoveragePct", 100*ctl.Coverage()),
		slog.Int("attempts", ctl.Attempts()),
		slog.Float64("epsilonSettled", ctl.Epsilon()),
		slog.Float64("epsilonStart", m.Params.DistThreshold))
	if predicted > 0 {
		log.Info("adaptive accuracy",
			slog.Float64("meanErrorMM", errSum/float64(predicted)),
			slog.Int("scoredPredictions", predicted))
	}
}

// runVerbose logs each prediction as it would stream during
// treatment.
func runVerbose(log *slog.Logger, m *core.Matcher, delta float64, queries int) {
	for _, st := range m.DB.Streams() {
		seq := st.Seq()
		minCut := m.Params.MaxQueryVertices() + 2
		if minCut >= len(seq)-2 {
			continue
		}
		for qi := 0; qi < queries; qi++ {
			cut := minCut + (len(seq)-1-minCut)*qi/queries
			prefix := seq[:cut+1]
			qseq, info := m.Params.DynamicQuery(prefix)
			q := core.NewQuery(qseq, st.PatientID, st.SessionID)
			pred, err := m.Predict(q, delta, nil)
			now := q.Now
			truth, inside := seq.PositionAt(now + delta)
			attrs := []any{
				slog.String("session", st.SessionID),
				slog.Float64("t", now),
				slog.Int("queryVertices", len(qseq)),
				slog.Bool("stable", info.Stable),
			}
			switch {
			case err == core.ErrNoMatches:
				log.Info("no prediction", attrs...)
			case err != nil:
				fatal(log, err)
			case inside:
				attrs = append(attrs,
					slog.Float64("predictedMM", pred.Pos[0]),
					slog.Float64("truthMM", truth[0]),
					slog.Float64("errorMM", abs(pred.Pos[0]-truth[0])),
					slog.Int("matches", pred.NumMatches))
				log.Info("prediction", attrs...)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fatal(log *slog.Logger, err error) {
	log.Error("fatal", slog.Any("err", err))
	os.Exit(1)
}
