// Command gateway fronts N streamd backends with a consistent-hash
// routing layer and scatter-gather similarity search: the horizontal
// scale-out shape of the stream database. Session traffic (create,
// ingest, predict) is routed to the shard owning the session's patient;
// POST /v1/match fans out to every healthy shard and merges the
// results into the exact global answer, degrading gracefully (HTTP
// 200, "degraded": true) when a shard is down and its data has no
// surviving replica.
//
// With -replicas R > 1 each session is placed on R distinct backends:
// the primary streams its WAL to the successors, and when the health
// checker ejects the primary the gateway promotes a replica and
// re-routes the session there with no acknowledged data lost.
//
// Replicas also serve reads on request: POST /v1/match with ?max-lag=N
// (or body "maxLag") pins each patient's arc to one caught-up holder —
// followers preferred — tolerating up to N vertices of staleness, with
// the merged answer byte-identical to the primary-only scatter; an
// over-stale follower refuses its arc and the gateway retries it on
// the primary. A bounded result cache (-match-cache) keyed on the
// canonical query plus every backend's X-Store-Seq token serves
// repeated identical queries with zero backend calls (X-Cache: hit);
// any write routed through the gateway changes the key before its ack
// returns.
//
//	gateway -listen :8760 -replicas 2 \
//	        -backends http://127.0.0.1:8751,http://127.0.0.1:8752,http://127.0.0.1:8753
//
//	curl -X POST localhost:8760/v1/sessions \
//	     -d '{"patientId":"P01","sessionId":"live"}'   # routed by patient
//	curl -X POST localhost:8760/v1/match \
//	     -d '{"seq":[...],"k":10}'                     # scatter-gather
//	curl localhost:8760/v1/stats                       # aggregated
//	curl localhost:8760/v1/healthz                     # per-backend health
//	curl localhost:8760/metrics                        # Prometheus text
//
// The gateway keeps no durable state: session placement is derived
// from the ring on create and rediscovered from the shards'
// /v1/shard/stats inventories after a restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/shard"
)

func main() {
	listen := flag.String("listen", ":8760", "HTTP listen address")
	backends := flag.String("backends", "", "comma-separated backend base URLs (required)")
	replicas := flag.Int("replicas", 1, "replication factor: primary plus R-1 WAL-following replicas per session")
	vnodes := flag.Int("vnodes", shard.DefaultVnodes, "virtual nodes per backend on the hash ring")
	timeout := flag.Duration("timeout", 5*time.Second, "per-attempt backend request timeout")
	retries := flag.Int("retries", 2, "retry attempts for idempotent backend calls")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "active health-probe period (negative = disabled)")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive failures before a backend is ejected")
	readmitThreshold := flag.Int("readmit-threshold", 2, "consecutive probe successes before an ejected backend is readmitted")
	matchCache := flag.Int("match-cache", shard.DefaultMatchCacheSize, "match result cache entries (negative = disable); keyed on query + per-shard store high-water marks")
	rebalanceConc := flag.Int("rebalance-concurrency", shard.DefaultRebalanceConcurrency, "sessions migrated in parallel during a rebalance drain")
	migrateTimeout := flag.Duration("migrate-timeout", shard.DefaultMigrateTimeout, "per-session migration deadline during a rebalance")
	freshEvery := flag.Duration("freshness-interval", shard.DefaultFreshnessInterval, "background /v1/shard/stats polling period seeding the follower-read freshness tracker (negative = piggyback-only; 0 = default when -replicas > 1)")
	traceCap := flag.Int("trace-capacity", obs.DefaultTraceCapacity, "traces retained in each in-memory ring (recent and slow)")
	traceSlow := flag.Duration("trace-slow", obs.DefaultSlowThreshold, "latency threshold at which a trace is pinned in the slow ring")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/ on the listen address")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit JSON log lines instead of text")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalStartup(err)
	}
	obs.InitLogging(os.Stderr, level, *logJSON)
	log := obs.Logger("gateway")

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fatalStartup(errors.New("-backends is required (comma-separated base URLs)"))
	}

	gw, err := shard.NewGateway(urls, shard.Options{
		Vnodes:           *vnodes,
		Replicas:         *replicas,
		Timeout:          *timeout,
		MaxRetries:       *retries,
		HealthInterval:   *healthEvery,
		FailThreshold:    *failThreshold,
		ReadmitThreshold: *readmitThreshold,

		MatchCacheSize:    *matchCache,
		FreshnessInterval: *freshEvery,

		RebalanceConcurrency: *rebalanceConc,
		MigrateTimeout:       *migrateTimeout,

		TraceCapacity:      *traceCap,
		TraceSlowThreshold: *traceSlow,
	})
	if err != nil {
		fatalStartup(err)
	}
	defer gw.Close()
	log.Info("ring built",
		slog.Int("backends", len(urls)),
		slog.Int("vnodes", *vnodes),
		slog.Int("replicas", *replicas))

	mux := http.NewServeMux()
	mux.Handle("/", gw)
	if *pprofOn {
		obs.AttachPprof(mux)
		log.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}

	hs := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Info("shutting down", slog.String("reason", "signal"))
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Warn("shutdown did not drain cleanly", slog.Any("err", err))
		}
	}()

	log.Info("listening",
		slog.String("addr", *listen),
		slog.String("backends", strings.Join(urls, ",")))
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Error("fatal", slog.Any("err", err))
		os.Exit(1)
	}
	<-done
	log.Info("metrics summary", obs.SummaryAttrs(obs.Default())...)
}

func fatalStartup(err error) {
	fmt.Fprintln(os.Stderr, "gateway:", err)
	os.Exit(1)
}
