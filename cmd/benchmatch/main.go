// Command benchmatch is the reproducible matcher/gateway benchmark
// runner: it builds a deterministic synthetic cohort, measures
// similarity-search latency and the full pruning-funnel counters for
// (a) a single-node matcher scanning sequentially, (b) the same
// matcher with stream-parallel search, and (c) a 3-shard deployment
// behind the consistent-hash gateway, and writes the results to
// BENCH_matcher.json so the perf trajectory of the matcher and the
// scatter-gather path is tracked in-repo.
//
//	benchmatch                       # defaults: 12 patients, k=10, 300 iters
//	benchmatch -patients 24 -iters 500 -out BENCH_matcher.json
//	benchmatch -corpus-scale 100     # scanned vs index-probed at 1x/10x/100x
//
// The cohort is seeded deterministically, so candidate counts and
// match sets are identical run to run; only wall-clock numbers vary
// with the hardware. The sequential and parallel scenarios are
// additionally asserted to return element-wise identical match lists
// (the determinism contract of core.Params.Parallelism). On a
// single-CPU runner the parallel scenario is skipped outright — a
// "speedup" there would only measure goroutine overhead — and the
// report carries cpus/gomaxprocs so readers can tell.
//
// With -corpus-scale S the runner additionally grows the corpus to
// 1x, sqrt(S)x and Sx the base cohort and measures the same top-k
// query through a full scan and through the window-signature index
// (internal/sigindex), asserting identical results at every point;
// the per-point funnel shows whether candidates examined grows with
// the corpus (scan: linear) or stays flat (probed: sub-linear).
//
// With -clients N > 0 (default 8) the runner boots an R=2 replicated
// 3-shard cluster, ingests the cohort through the gateway, and
// hammers the same query with N concurrent workers in three modes —
// legacy primary-only scatter (max-lag 0), follower reads at a loose
// staleness bound, and gateway cache hits — reporting QPS and ns/op
// for each (concurrentLoad in the report). Every response in every
// mode is hard-asserted to carry the byte-identical match list of the
// primary-only merge, and the cache mode must actually serve from
// cache (verified against the hit counter).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/obs"
	"stsmatch/internal/plr"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/sigindex"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
	"stsmatch/internal/subscribe"
	"stsmatch/internal/wal"
)

// patientData is one synthetic patient's segmented stream.
type patientData struct {
	pid, sid string
	vertices plr.Sequence
}

// funnel is one scenario's per-query pruning-funnel averages, reading
// top to bottom: windows that passed the state-order filter reach
// candidatesScanned; the remaining layers each remove a slice before
// the next (lower bound before exact distance arithmetic).
type funnel struct {
	CandidatesScanned int `json:"candidatesScanned"`
	IndexPruned       int `json:"indexPruned"`
	SelfExcluded      int `json:"selfExcluded"`
	LBPruned          int `json:"lbPruned"`
	DistanceRejected  int `json:"distanceRejected"`
	Matched           int `json:"matched"`
}

// stagePct is one funnel stage's latency distribution in microseconds,
// sampled from the tracing spans over a separate instrumented loop (so
// the untraced nsPerOp stays comparable across report versions). Stage
// durations are summed across workers, so in the parallel scenario a
// stage can exceed the query's wall clock.
type stagePct struct {
	P50us float64 `json:"p50us"`
	P90us float64 `json:"p90us"`
	P99us float64 `json:"p99us"`
}

// scenarioResult is one benchmarked configuration.
type scenarioResult struct {
	NsPerOp     float64 `json:"nsPerOp"`
	Matches     int     `json:"matches"`
	Parallelism int     `json:"parallelism,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	Funnel      funnel  `json:"funnel"`

	// StageLatency maps span names (matcher.search, funnel.*) to
	// latency percentiles gathered from a traced measurement pass.
	StageLatency map[string]stagePct `json:"stageLatency,omitempty"`
}

// indexScalePoint compares full-scan and index-probed candidate
// retrieval over the same corpus at one scale multiplier. The
// sub-linearity claim reads off Probed.Funnel.CandidatesScanned
// across points: scanned candidates grow linearly with the corpus,
// probed candidates should not.
type indexScalePoint struct {
	Scale        int     `json:"scale"`
	Streams      int     `json:"streams"`
	Vertices     int     `json:"vertices"`
	BuildSeconds float64 `json:"indexBuildSeconds"`
	IndexWindows int64   `json:"indexWindows"`

	Scanned scenarioResult `json:"scanned"`
	Probed  scenarioResult `json:"probed"`

	// Probe traffic per query, from the sigindex metric deltas across
	// every query the probed pass issued (warmup + timed + traced).
	ProbesPerQuery    float64 `json:"probesPerQuery"`
	WideningsPerQuery float64 `json:"wideningsPerQuery"`
}

// benchReport is the BENCH_matcher.json schema.
type benchReport struct {
	Patients   int     `json:"patients"`
	DurationS  float64 `json:"durationSeconds"`
	K          int     `json:"k"`
	Iters      int     `json:"iters"`
	QueryLen   int     `json:"queryLen"`
	CPUs       int     `json:"cpus"`
	GoMaxProcs int     `json:"gomaxprocs"`

	SingleNodeSequential scenarioResult `json:"singleNodeSequential"`
	// SingleNodeParallel is omitted on single-CPU runners, where a
	// "speedup" number would only measure goroutine overhead noise.
	SingleNodeParallel *scenarioResult `json:"singleNodeParallel,omitempty"`
	Sharded            scenarioResult  `json:"sharded"`

	// ParallelSpeedup is sequential ns/op over parallel ns/op,
	// reported only when the parallel scenario ran (>= 2 CPUs). The
	// >= 2x expectation applies to >= 4 core hardware.
	ParallelSpeedup float64 `json:"parallelSpeedup,omitempty"`

	// CorpusScale and IndexComparison are present when -corpus-scale
	// was given: scanned-vs-probed funnel comparisons at corpus scales
	// 1, sqrt(S) and S.
	CorpusScale     int               `json:"corpusScale,omitempty"`
	IndexComparison []indexScalePoint `json:"indexComparison,omitempty"`

	// Concurrent is the multi-client read-path scenario: the same
	// deterministic top-k query hammered by N workers against an R=2
	// replicated 3-shard cluster, measured three ways — legacy
	// primary-only scatter (max-lag 0), follower reads at a loose
	// staleness bound (each patient arc pinned to one caught-up holder,
	// followers preferred), and gateway cache hits (zero backend
	// calls). Every response in all three modes is hard-asserted to
	// carry the byte-identical match list of the primary-only merge.
	Concurrent *concurrentResult `json:"concurrentLoad,omitempty"`

	// Rebalance is the elastic-scaling scenario (-rebalance): the same
	// replicated cluster grows from 3 to 4 backends under a live query
	// load, every ring-displaced session is drained onto the new node
	// via the live-migration protocol, and the deterministic top-k
	// query is measured before, during, and after the drain — every
	// response in all three windows byte-identical to the pre-drain
	// merge.
	Rebalance *rebalanceResult `json:"rebalance,omitempty"`

	// Standing measures the push path (internal/subscribe): the
	// incremental cost of evaluating a standing query per arriving
	// vertex, at growing corpus scales, against the cost of the
	// equivalent /v1/match poll. The sub-linearity claim reads off
	// CandidatesPerVertex: a standing query only examines the suffix
	// windows each append completes, so its per-vertex work stays flat
	// while a poll re-scans the (growing) corpus.
	StandingScale int                  `json:"standingScale,omitempty"`
	Standing      []standingScalePoint `json:"standing,omitempty"`
}

// concurrentResult is one run of the multi-client scenario. QPS is
// aggregate throughput across all workers; NsPerOp is the mean
// per-request wall latency one worker observed (elapsed / requests per
// worker), so under concurrency QPS * NsPerOp ≈ clients * 1e9.
type concurrentResult struct {
	Clients        int `json:"clients"`
	OpsPerScenario int `json:"opsPerScenario"`
	Shards         int `json:"shards"`
	Replicas       int `json:"replicas"`
	Matches        int `json:"matches"`

	PrimaryOnly  loadPoint `json:"primaryOnly"`
	FollowerRead loadPoint `json:"followerReads"`
	CacheHit     loadPoint `json:"cacheHit"`

	// PlannedPatientsPerQuery / FollowerServedPerQuery describe the
	// follower-read plan observed on the warmup query: how many patient
	// arcs were pinned to a single holder, and how many of those
	// holders were followers rather than primaries.
	PlannedPatientsPerQuery int `json:"plannedPatientsPerQuery"`
	FollowerServedPerQuery  int `json:"followerServedPerQuery"`

	// Speedups are QPS ratios over the primary-only baseline.
	FollowerReadSpeedup float64 `json:"followerReadSpeedup"`
	CacheHitSpeedup     float64 `json:"cacheHitSpeedup"`
}

// loadPoint is one load scenario's throughput and latency.
type loadPoint struct {
	QPS     float64 `json:"qps"`
	NsPerOp float64 `json:"nsPerOp"`
}

// rebalanceResult is one run of the elastic-scaling scenario: a 3-shard
// R=2 cluster grows a 4th backend and drains every ring-displaced
// session onto it while a client keeps querying. MatchNsDuring is the
// per-query latency observed while the drain was in flight — the
// scenario's headline is how little it deviates from Before/After,
// since queries never block on a migration (the source serves fenced
// reads until the cutover instant).
type rebalanceResult struct {
	Shards         int     `json:"shards"`
	Replicas       int     `json:"replicas"`
	SessionsMoved  int     `json:"sessionsMoved"`
	VerticesMoved  int     `json:"verticesMoved"`
	DrainSeconds   float64 `json:"drainSeconds"`
	SessionsPerSec float64 `json:"sessionsPerSecond"`

	MatchNsBefore float64 `json:"matchNsBefore"`
	MatchNsDuring float64 `json:"matchNsDuring"`
	MatchNsAfter  float64 `json:"matchNsAfter"`
	// QueriesDuring counts the queries that completed while the drain
	// was in flight (all byte-identical to the pre-drain merge).
	QueriesDuring int `json:"queriesDuring"`
}

// standingScalePoint is one corpus size in the standing-query
// scenario. NsPerVertex covers Stream.Append plus the subscription
// drain (the ingest-path overhead a standing query adds per vertex);
// PolledNsPerQuery is one full similarity search over the same final
// corpus — the cost a consumer would pay per poll to get the same
// events by diffing.
type standingScalePoint struct {
	Scale            int `json:"scale"`
	Streams          int `json:"streams"`
	Vertices         int `json:"vertices"`
	AppendedVertices int `json:"appendedVertices"`

	NsPerVertex         float64 `json:"nsPerVertex"`
	CandidatesPerVertex float64 `json:"candidatesPerVertex"`
	Events              int     `json:"events"`

	PolledNsPerQuery         float64 `json:"polledNsPerQuery"`
	PolledCandidatesPerQuery int     `json:"polledCandidatesPerQuery"`
}

func main() {
	out := flag.String("out", "BENCH_matcher.json", "output path for the benchmark report")
	patients := flag.Int("patients", 12, "synthetic patients in the cohort")
	duration := flag.Float64("duration", 180, "seconds of breathing data per patient")
	k := flag.Int("k", 10, "top-k for the benchmark queries")
	iters := flag.Int("iters", 300, "measured iterations per scenario")
	corpusScale := flag.Int("corpus-scale", 0,
		"when S > 0, additionally compare scanned vs index-probed retrieval at corpus scales 1, sqrt(S) and S")
	standingScale := flag.Int("standing-scale", 16,
		"largest corpus multiplier for the standing-query scenario (0 disables it)")
	clients := flag.Int("clients", 8,
		"concurrent workers in the multi-client read-path scenario (0 disables it)")
	rebalance := flag.Bool("rebalance", false,
		"run the elastic-scaling scenario: grow a replicated 3-shard cluster to 4 backends under live query load and drain displaced sessions via live migration")
	flag.Parse()

	obs.InitLogging(os.Stderr, slog.LevelWarn, false)

	data, err := buildCohort(*patients, *duration)
	if err != nil {
		fatal(err)
	}
	qseq := data[0].vertices
	if len(qseq) < 12 {
		fatal(fmt.Errorf("query stream too short: %d vertices", len(qseq)))
	}
	qseq = qseq[len(qseq)-10:]

	report := benchReport{
		Patients:   *patients,
		DurationS:  *duration,
		K:          *k,
		Iters:      *iters,
		QueryLen:   len(qseq),
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	db, err := loadDB(data)
	if err != nil {
		fatal(err)
	}
	var seqMatches []core.Match
	report.SingleNodeSequential, seqMatches, err = benchSingleNode(db, data, qseq, *k, *iters, 1)
	if err != nil {
		fatal(err)
	}
	if report.CPUs > 1 {
		par, parMatches, err := benchSingleNode(db, data, qseq, *k, *iters, 0)
		if err != nil {
			fatal(err)
		}
		if err := assertIdentical(seqMatches, parMatches); err != nil {
			fatal(fmt.Errorf("parallel search diverges from sequential: %w", err))
		}
		report.SingleNodeParallel = &par
		if par.NsPerOp > 0 {
			report.ParallelSpeedup = report.SingleNodeSequential.NsPerOp / par.NsPerOp
		}
	}

	report.Sharded, err = benchSharded(data, qseq, *k, *iters)
	if err != nil {
		fatal(err)
	}

	if report.SingleNodeSequential.Matches != report.Sharded.Matches {
		fatal(fmt.Errorf("sharded top-k (%d matches) disagrees with single node (%d): merge is broken",
			report.Sharded.Matches, report.SingleNodeSequential.Matches))
	}

	if *clients > 0 {
		cres, err := benchConcurrent(data, qseq, *k, *clients, *iters, *duration)
		if err != nil {
			fatal(err)
		}
		if cres.Matches != report.SingleNodeSequential.Matches {
			fatal(fmt.Errorf("replicated cluster top-k (%d matches) disagrees with single node (%d)",
				cres.Matches, report.SingleNodeSequential.Matches))
		}
		report.Concurrent = &cres
	}

	if *rebalance {
		rres, err := benchRebalance(data, qseq, *k, *iters, *duration)
		if err != nil {
			fatal(err)
		}
		report.Rebalance = &rres
	}

	if *corpusScale > 0 {
		report.CorpusScale = *corpusScale
		// Scaled corpora are big; fewer iterations still average a
		// deterministic query to a stable per-query funnel.
		scaleIters := *iters / 10
		if scaleIters < 20 {
			scaleIters = 20
		}
		for _, s := range scalePoints(*corpusScale) {
			pt, err := benchIndexScale(*patients, *duration, s, *k, scaleIters, len(qseq))
			if err != nil {
				fatal(err)
			}
			report.IndexComparison = append(report.IndexComparison, pt)
		}
	}

	if *standingScale > 0 {
		report.StandingScale = *standingScale
		for _, s := range scalePoints(*standingScale) {
			pt, err := benchStanding(*patients, *duration, s, len(qseq))
			if err != nil {
				fatal(err)
			}
			report.Standing = append(report.Standing, pt)
		}
		// The funnel is deterministic, so sub-linearity is a hard
		// assertion, not a wall-clock judgement call: the work a
		// standing query does per arriving vertex must not grow with
		// the corpus.
		first, last := report.Standing[0], report.Standing[len(report.Standing)-1]
		if first.CandidatesPerVertex > 0 && last.CandidatesPerVertex > 1.5*first.CandidatesPerVertex {
			fatal(fmt.Errorf("standing eval is not sub-linear in the corpus: %.1f candidates/vertex at 1x vs %.1f at %dx",
				first.CandidatesPerVertex, last.CandidatesPerVertex, last.Scale))
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	line := func(name string, r scenarioResult) {
		fmt.Printf("%-14s: %9.0f ns/op  funnel %d scanned / %d lb-pruned / %d dist-rejected -> %d matched\n",
			name, r.NsPerOp, r.Funnel.CandidatesScanned, r.Funnel.LBPruned, r.Funnel.DistanceRejected, r.Matches)
	}
	line("sequential", report.SingleNodeSequential)
	if report.SingleNodeParallel != nil {
		line("parallel", *report.SingleNodeParallel)
	}
	line("3-shard gw", report.Sharded)
	if c := report.Concurrent; c != nil {
		fmt.Printf("concurrent %dx: primary-only %7.0f qps, follower-reads %7.0f qps (%.2fx, %d/%d arcs on followers), cache-hit %7.0f qps / %8.0f ns/op (%.2fx)\n",
			c.Clients, c.PrimaryOnly.QPS, c.FollowerRead.QPS, c.FollowerReadSpeedup,
			c.FollowerServedPerQuery, c.PlannedPatientsPerQuery,
			c.CacheHit.QPS, c.CacheHit.NsPerOp, c.CacheHitSpeedup)
	}
	if r := report.Rebalance; r != nil {
		fmt.Printf("rebalance 3->4: %d sessions (%d vertices) drained in %.2fs (%.1f/s); match %8.0f -> %8.0f -> %8.0f ns/op (before/during/after, %d queries during)\n",
			r.SessionsMoved, r.VerticesMoved, r.DrainSeconds, r.SessionsPerSec,
			r.MatchNsBefore, r.MatchNsDuring, r.MatchNsAfter, r.QueriesDuring)
	}
	for _, pt := range report.IndexComparison {
		fmt.Printf("scale %4dx: scanned %8d candidates/query, probed %6d (%.1f probes, %.1f widenings/query), %9.0f -> %9.0f ns/op\n",
			pt.Scale, pt.Scanned.Funnel.CandidatesScanned, pt.Probed.Funnel.CandidatesScanned,
			pt.ProbesPerQuery, pt.WideningsPerQuery, pt.Scanned.NsPerOp, pt.Probed.NsPerOp)
	}
	for _, pt := range report.Standing {
		fmt.Printf("standing %2dx: %9.0f ns/vertex (%5.1f candidates/vertex, %d events) vs poll %10.0f ns/query (%d candidates)\n",
			pt.Scale, pt.NsPerVertex, pt.CandidatesPerVertex, pt.Events,
			pt.PolledNsPerQuery, pt.PolledCandidatesPerQuery)
	}
	if report.SingleNodeParallel != nil {
		fmt.Printf("parallel speedup %.2fx on %d CPUs; wrote %s\n", report.ParallelSpeedup, report.CPUs, *out)
	} else {
		fmt.Printf("single CPU: parallel scenario skipped; wrote %s\n", *out)
	}
}

// scalePoints picks the corpus multipliers to measure: 1, sqrt(S)
// and S, deduplicated — three points are enough to see whether
// candidates examined grows with the corpus or stays flat.
func scalePoints(s int) []int {
	pts := []int{1}
	if mid := int(math.Round(math.Sqrt(float64(s)))); mid > 1 && mid < s {
		pts = append(pts, mid)
	}
	if s > 1 {
		pts = append(pts, s)
	}
	return pts
}

// assertIdentical checks the determinism contract: both runs returned
// the same matches in the same order with bit-identical distances.
func assertIdentical(a, b []core.Match) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d matches vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Stream != b[i].Stream || a[i].Start != b[i].Start || a[i].Distance != b[i].Distance {
			return fmt.Errorf("match %d: %s/%s#%d d=%v vs %s/%s#%d d=%v", i,
				a[i].Stream.PatientID, a[i].Stream.SessionID, a[i].Start, a[i].Distance,
				b[i].Stream.PatientID, b[i].Stream.SessionID, b[i].Start, b[i].Distance)
		}
	}
	return nil
}

// buildCohort segments deterministic respiration traces into PLR
// streams, one patient each.
func buildCohort(patients int, duration float64) ([]patientData, error) {
	var out []patientData
	for i := 0; i < patients; i++ {
		gen, err := signal.NewRespiration(signal.DefaultRespiration(), int64(100+i))
		if err != nil {
			return nil, err
		}
		seg, err := fsm.New(fsm.DefaultConfig())
		if err != nil {
			return nil, err
		}
		var seq plr.Sequence
		for _, s := range gen.Generate(duration) {
			vs, err := seg.Push(s)
			if err != nil {
				return nil, err
			}
			seq = append(seq, vs...)
		}
		out = append(out, patientData{
			pid:      fmt.Sprintf("P%02d", i),
			sid:      fmt.Sprintf("S-P%02d", i),
			vertices: seq,
		})
	}
	return out, nil
}

// loadDB builds a store database holding the given patients.
func loadDB(data []patientData) (*store.DB, error) {
	db := store.NewDB()
	for _, pd := range data {
		p, err := db.AddPatient(store.PatientInfo{ID: pd.pid})
		if err != nil {
			return nil, err
		}
		st := p.AddStream(pd.sid)
		if err := st.Append(pd.vertices...); err != nil {
			return nil, err
		}
	}
	db.EnableIndexes()
	return db, nil
}

// counters snapshots the matcher pruning-funnel totals.
func counters() funnel {
	var f funnel
	for _, p := range obs.Default().Gather() {
		switch p.Name {
		case "stsmatch_matcher_candidates_scanned_total":
			f.CandidatesScanned = int(p.Value)
		case "stsmatch_matcher_index_pruned_total":
			f.IndexPruned = int(p.Value)
		case "stsmatch_matcher_self_excluded_total":
			f.SelfExcluded = int(p.Value)
		case "stsmatch_matcher_lb_pruned_total":
			f.LBPruned = int(p.Value)
		case "stsmatch_matcher_distance_rejected_total":
			f.DistanceRejected = int(p.Value)
		case "stsmatch_matcher_matches_total":
			f.Matched = int(p.Value)
		}
	}
	return f
}

// perIter is the per-query funnel delta between two snapshots.
func perIter(before, after funnel, iters int) funnel {
	return funnel{
		CandidatesScanned: (after.CandidatesScanned - before.CandidatesScanned) / iters,
		IndexPruned:       (after.IndexPruned - before.IndexPruned) / iters,
		SelfExcluded:      (after.SelfExcluded - before.SelfExcluded) / iters,
		LBPruned:          (after.LBPruned - before.LBPruned) / iters,
		DistanceRejected:  (after.DistanceRejected - before.DistanceRejected) / iters,
		Matched:           (after.Matched - before.Matched) / iters,
	}
}

// tracedIters bounds the separate traced pass: enough samples for a
// stable p99 without doubling the benchmark's run time.
const tracedIters = 100

// stageSampler accumulates span durations by name and reduces them to
// percentiles.
type stageSampler map[string][]float64

func (ss stageSampler) addSpans(spans []obs.SpanData) {
	for _, sd := range spans {
		if sd.Name == "matcher.search" || strings.HasPrefix(sd.Name, "funnel.") || strings.HasPrefix(sd.Name, "index.") {
			ss[sd.Name] = append(ss[sd.Name], float64(sd.DurationNS)/1e3)
		}
	}
}

func (ss stageSampler) percentiles() map[string]stagePct {
	if len(ss) == 0 {
		return nil
	}
	out := make(map[string]stagePct, len(ss))
	for name, v := range ss {
		sort.Float64s(v)
		out[name] = stagePct{
			P50us: percentile(v, 0.50),
			P90us: percentile(v, 0.90),
			P99us: percentile(v, 0.99),
		}
	}
	return out
}

// percentile reads the nearest-rank percentile from a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// benchSingleNode measures the in-process matcher at the given
// parallelism (0 = GOMAXPROCS, 1 = sequential) and returns the match
// list for the determinism cross-check (both scenarios share db, so
// the lists are comparable by stream identity).
func benchSingleNode(db *store.DB, data []patientData, qseq plr.Sequence, k, iters, parallelism int) (scenarioResult, []core.Match, error) {
	params := core.DefaultParams()
	params.Parallelism = parallelism
	m, err := core.NewMatcher(db, params)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	q := core.NewQuery(qseq, data[0].pid, data[0].sid)
	res, matches, err := benchMatcher(m, q, k, iters)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	res.Parallelism = parallelism
	return res, matches, nil
}

// benchMatcher runs the warmup + timed + traced measurement protocol
// against an already-configured matcher.
func benchMatcher(m *core.Matcher, q core.Query, k, iters int) (scenarioResult, []core.Match, error) {
	// Warmup.
	matches, err := m.TopK(q, k, nil)
	if err != nil {
		return scenarioResult{}, nil, err
	}
	before := counters()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := m.TopK(q, k, nil); err != nil {
			return scenarioResult{}, nil, err
		}
	}
	elapsed := time.Since(start)
	res := scenarioResult{
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
		Matches: len(matches),
		Funnel:  perIter(before, counters(), iters),
	}

	// Separate traced pass: per-stage span durations feed the latency
	// percentiles without perturbing the untraced nsPerOp above.
	col := obs.NewCollector(tracedIters, time.Hour)
	samples := make(stageSampler)
	for i := 0; i < tracedIters; i++ {
		root := obs.StartTrace("bench.query", "bench", obs.SpanContext{}, col)
		ctx := obs.ContextWithSpan(context.Background(), root)
		if _, err := m.TopKCtx(ctx, q, k, nil); err != nil {
			return scenarioResult{}, nil, err
		}
		root.Finish()
	}
	for _, td := range col.Recent() {
		samples.addSpans(td.Spans)
	}
	res.StageLatency = samples.percentiles()
	return res, matches, nil
}

// sigMetric reads one sigindex counter from the default registry.
func sigMetric(name string) float64 {
	for _, p := range obs.Default().Gather() {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

// benchIndexScale builds a corpus scale× the base cohort and measures
// the same top-k query through a full-scan matcher and through an
// index-probed matcher, asserting the two return identical matches.
// Both run sequentially so the candidates-examined comparison is not
// confounded by scheduling.
func benchIndexScale(basePatients int, duration float64, scale, k, iters, qlen int) (indexScalePoint, error) {
	data, err := buildCohort(basePatients*scale, duration)
	if err != nil {
		return indexScalePoint{}, err
	}
	db, err := loadDB(data)
	if err != nil {
		return indexScalePoint{}, err
	}
	vertices := 0
	for _, pd := range data {
		vertices += len(pd.vertices)
	}

	// One window width is all the benchmark query needs; a single-width
	// index keeps the 100x corpus build cheap and its memory bounded.
	cfg := sigindex.Config{MinSegments: qlen - 1, MaxSegments: qlen - 1, AmpBucket: 4, DurBucket: 4}
	idx, err := sigindex.New(cfg)
	if err != nil {
		return indexScalePoint{}, err
	}
	buildStart := time.Now()
	idx.BuildFrom(db)
	pt := indexScalePoint{
		Scale:        scale,
		Streams:      len(data),
		Vertices:     vertices,
		BuildSeconds: time.Since(buildStart).Seconds(),
		IndexWindows: idx.Stats().Windows,
	}

	params := core.DefaultParams()
	params.Parallelism = 1
	scanM, err := core.NewMatcher(db, params)
	if err != nil {
		return indexScalePoint{}, err
	}
	params.UseIndex = true
	probeM, err := core.NewMatcher(db, params)
	if err != nil {
		return indexScalePoint{}, err
	}
	probeM.Index = idx

	qseq := data[0].vertices
	qseq = qseq[len(qseq)-qlen:]
	q := core.NewQuery(qseq, data[0].pid, data[0].sid)

	scanned, scanMatches, err := benchMatcher(scanM, q, k, iters)
	if err != nil {
		return indexScalePoint{}, err
	}
	probesBefore := sigMetric("stsmatch_sigindex_probes_total")
	widenBefore := sigMetric("stsmatch_sigindex_widenings_total")
	probed, probeMatches, err := benchMatcher(probeM, q, k, iters)
	if err != nil {
		return indexScalePoint{}, err
	}
	if err := assertIdentical(scanMatches, probeMatches); err != nil {
		return indexScalePoint{}, fmt.Errorf("scale %d: probed search diverges from scan: %w", scale, err)
	}
	// The query is deterministic, so dividing the metric deltas by
	// every query benchMatcher issued (warmup + timed + traced) gives
	// the exact per-query probe traffic.
	queries := float64(1 + iters + tracedIters)
	pt.Scanned = scanned
	pt.Probed = probed
	pt.ProbesPerQuery = (sigMetric("stsmatch_sigindex_probes_total") - probesBefore) / queries
	pt.WideningsPerQuery = (sigMetric("stsmatch_sigindex_widenings_total") - widenBefore) / queries
	return pt, nil
}

// benchStanding measures the push path at one corpus scale: a
// standing query registered over the whole corpus, then 30 seconds of
// fresh signal appended to one stream vertex by vertex, draining the
// subscription after every append — the exact ingest-path sequence the
// server runs. The per-vertex cost is compared against one full
// similarity search over the same final corpus, which is what a
// consumer polling /v1/match would pay for the same events.
func benchStanding(basePatients int, duration float64, scale, qlen int) (standingScalePoint, error) {
	data, err := buildCohort(basePatients*scale, duration)
	if err != nil {
		return standingScalePoint{}, err
	}
	db, err := loadDB(data)
	if err != nil {
		return standingScalePoint{}, err
	}
	vertices := 0
	for _, pd := range data {
		vertices += len(pd.vertices)
	}

	// Continue patient 0's deterministic signal for 30 more seconds,
	// segmented by a replayed (primed) FSM so the continuation vertices
	// are exactly what live ingest would have produced.
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 100)
	if err != nil {
		return standingScalePoint{}, err
	}
	seg, err := fsm.New(fsm.DefaultConfig())
	if err != nil {
		return standingScalePoint{}, err
	}
	for _, s := range gen.Generate(duration) {
		if _, err := seg.Push(s); err != nil {
			return standingScalePoint{}, err
		}
	}
	var cont plr.Sequence
	for _, s := range gen.Generate(duration + 30) {
		vs, err := seg.Push(s)
		if err != nil {
			return standingScalePoint{}, err
		}
		cont = append(cont, vs...)
	}
	if len(cont) == 0 {
		return standingScalePoint{}, fmt.Errorf("scale %d: continuation produced no vertices", scale)
	}

	mgr := subscribe.NewManager(core.DefaultParams(), 0)
	db.AddMutationHook(mgr.OnMutation)
	qseq := data[0].vertices[len(data[0].vertices)-qlen:]
	sub := wal.SubState{ID: "bench", PatientID: data[0].pid, Pattern: qseq}
	if _, err := mgr.Register(&sub, db); err != nil {
		return standingScalePoint{}, err
	}
	st := db.Patient(data[0].pid).StreamBySession(data[0].sid)
	if st == nil {
		return standingScalePoint{}, fmt.Errorf("scale %d: stream %s not found", scale, data[0].sid)
	}

	ctx := context.Background()
	start := time.Now()
	for i := range cont {
		if err := st.Append(cont[i]); err != nil {
			return standingScalePoint{}, err
		}
		mgr.Drain(ctx, db)
	}
	elapsed := time.Since(start)
	status, ok := mgr.Get("bench")
	if !ok {
		return standingScalePoint{}, fmt.Errorf("scale %d: subscription vanished", scale)
	}
	pt := standingScalePoint{
		Scale:               scale,
		Streams:             len(data),
		Vertices:            vertices,
		AppendedVertices:    len(cont),
		NsPerVertex:         float64(elapsed.Nanoseconds()) / float64(len(cont)),
		CandidatesPerVertex: float64(status.Candidates) / float64(len(cont)),
		Events:              status.Matched,
	}

	// The polled equivalent over the final corpus, sequential so the
	// candidate count is not confounded by scheduling.
	params := core.DefaultParams()
	params.Parallelism = 1
	m, err := core.NewMatcher(db, params)
	if err != nil {
		return standingScalePoint{}, err
	}
	q := core.NewQuery(qseq, data[0].pid, "")
	const pollIters = 20
	if _, err := m.FindSimilar(q, nil); err != nil {
		return standingScalePoint{}, err
	}
	before := counters()
	pollStart := time.Now()
	for i := 0; i < pollIters; i++ {
		if _, err := m.FindSimilar(q, nil); err != nil {
			return standingScalePoint{}, err
		}
	}
	pt.PolledNsPerQuery = float64(time.Since(pollStart).Nanoseconds()) / pollIters
	pt.PolledCandidatesPerQuery = perIter(before, counters(), pollIters).CandidatesScanned
	return pt, nil
}

func benchSharded(data []patientData, qseq plr.Sequence, k, iters int) (scenarioResult, error) {
	// Three shards on loopback listeners.
	const shards = 3
	var urls []string
	var servers []*http.Server
	var listeners []net.Listener
	defer func() {
		for _, hs := range servers {
			hs.Close() //nolint:errcheck
		}
	}()
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return scenarioResult{}, err
		}
		listeners = append(listeners, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}

	// Partition patients exactly as the gateway's ring will.
	ring := shard.NewRing(shard.DefaultVnodes)
	for _, u := range urls {
		ring.Add(u)
	}
	parts := make(map[string][]patientData)
	for _, pd := range data {
		owner := ring.Owner(pd.pid)
		parts[owner] = append(parts[owner], pd)
	}
	for i, u := range urls {
		db, err := loadDB(parts[u])
		if err != nil {
			return scenarioResult{}, err
		}
		srv, err := server.New(db, core.DefaultParams(), fsm.DefaultConfig())
		if err != nil {
			return scenarioResult{}, err
		}
		hs := &http.Server{Handler: srv}
		servers = append(servers, hs)
		go hs.Serve(listeners[i]) //nolint:errcheck
	}

	// Cache disabled: this scenario tracks the scatter-merge path
	// itself, and a repeated identical query would otherwise be served
	// from the gateway result cache after the first iteration.
	gw, err := shard.NewGateway(urls, shard.Options{HealthInterval: -1, MatchCacheSize: -1})
	if err != nil {
		return scenarioResult{}, err
	}
	defer gw.Close()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return scenarioResult{}, err
	}
	ghs := &http.Server{Handler: gw}
	servers = append(servers, ghs)
	go ghs.Serve(gln) //nolint:errcheck
	gURL := "http://" + gln.Addr().String()

	body, err := json.Marshal(server.MatchRequest{
		Seq: qseq, PatientID: data[0].pid, SessionID: data[0].sid, K: k,
	})
	if err != nil {
		return scenarioResult{}, err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	callURL := func(u string) (shard.MatchResult, error) {
		resp, err := client.Post(u, "application/json", bytes.NewReader(body))
		if err != nil {
			return shard.MatchResult{}, err
		}
		defer resp.Body.Close()
		var res shard.MatchResult
		if resp.StatusCode != http.StatusOK {
			return res, fmt.Errorf("gateway status %d", resp.StatusCode)
		}
		return res, json.NewDecoder(resp.Body).Decode(&res)
	}
	call := func() (shard.MatchResult, error) { return callURL(gURL + "/v1/match") }
	// Warmup (also establishes keep-alive connections).
	res, err := call()
	if err != nil {
		return scenarioResult{}, err
	}
	if res.Degraded || res.ShardsOK != shards {
		return scenarioResult{}, fmt.Errorf("sharded warmup degraded: %d/%d shards", res.ShardsOK, res.ShardsQueried)
	}
	before := counters()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := call(); err != nil {
			return scenarioResult{}, err
		}
	}
	elapsed := time.Since(start)
	out := scenarioResult{
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(iters),
		Matches: len(res.Matches),
		Shards:  shards,
		Funnel:  perIter(before, counters(), iters),
	}

	// Traced pass through the gateway: ?debug=profile returns the
	// merged span tree, so each shard's funnel stages contribute one
	// sample apiece per query.
	samples := make(stageSampler)
	for i := 0; i < tracedIters; i++ {
		pres, err := callURL(gURL + "/v1/match?debug=profile")
		if err != nil {
			return scenarioResult{}, err
		}
		if pres.Profile != nil && pres.Profile.Root != nil {
			samples.addSpans(pres.Profile.Root.Flatten())
		}
	}
	out.StageLatency = samples.percentiles()
	return out, nil
}

// benchConcurrent boots an R=2 replicated 3-shard cluster, ingests the
// cohort through the gateway (so every session has a WAL-following
// replica that is fully caught up when the acks return), and measures
// the same deterministic top-k query under `clients` concurrent
// workers in three modes: legacy primary-only scatter (max-lag 0),
// follower reads at a loose staleness bound, and gateway cache hits.
// Every response in every mode is checked against the primary-only
// merge's byte-identical match list — the scenario is a correctness
// gate as much as a throughput number.
func benchConcurrent(data []patientData, qseq plr.Sequence, k, clients, totalOps int, duration float64) (concurrentResult, error) {
	const shards = 3
	const replicas = 2
	var urls []string
	var servers []*http.Server
	var listeners []net.Listener
	defer func() {
		for _, hs := range servers {
			hs.Close() //nolint:errcheck
		}
	}()
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return concurrentResult{}, err
		}
		listeners = append(listeners, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	for i := range listeners {
		// Backends advertise their own URL so WAL shipments between them
		// carry real source identities.
		srv, err := server.NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(),
			server.Options{AdvertiseURL: urls[i]})
		if err != nil {
			return concurrentResult{}, err
		}
		hs := &http.Server{Handler: srv}
		servers = append(servers, hs)
		go hs.Serve(listeners[i]) //nolint:errcheck
	}

	newGW := func(cacheSize int) (*shard.Gateway, string, error) {
		gw, err := shard.NewGateway(urls, shard.Options{
			Replicas:       replicas,
			HealthInterval: -1,
			// No background freshness poller: the benchmark's tracker
			// converges from ingest-ack piggybacks alone, keeping runs
			// deterministic.
			FreshnessInterval: -1,
			MatchCacheSize:    cacheSize,
		})
		if err != nil {
			return nil, "", err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			gw.Close()
			return nil, "", err
		}
		hs := &http.Server{Handler: gw}
		servers = append(servers, hs)
		go hs.Serve(ln) //nolint:errcheck
		return gw, "http://" + ln.Addr().String(), nil
	}
	// Two gateways over the same shards: the scatter modes run with the
	// cache disabled (every op must really execute the plan), the
	// cache-hit mode gets the default-sized cache.
	gw, gwURL, err := newGW(-1)
	if err != nil {
		return concurrentResult{}, err
	}
	defer gw.Close()
	gwc, gwcURL, err := newGW(0)
	if err != nil {
		return concurrentResult{}, err
	}
	defer gwc.Close()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(url string, v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("%s: status %d", url, resp.StatusCode)
		}
		return nil
	}
	for i, pd := range data {
		if err := post(gwURL+"/v1/sessions",
			server.CreateSessionRequest{PatientID: pd.pid, SessionID: pd.sid}); err != nil {
			return concurrentResult{}, err
		}
		// Replay the cohort's deterministic signal through the server's
		// own segmenter: the shards end up holding exactly the vertices
		// the single-node scenarios matched against.
		gen, err := signal.NewRespiration(signal.DefaultRespiration(), int64(100+i))
		if err != nil {
			return concurrentResult{}, err
		}
		samples := gen.Generate(duration)
		for off := 0; off < len(samples); off += 512 {
			end := min(off+512, len(samples))
			batch := make([]server.SampleIn, 0, end-off)
			for _, s := range samples[off:end] {
				batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
			}
			if err := post(gwURL+"/v1/sessions/"+pd.sid+"/samples", batch); err != nil {
				return concurrentResult{}, err
			}
		}
	}

	doMatch := func(url string, body []byte) (shard.MatchResult, string, error) {
		resp, err := client.Post(url+"/v1/match", "application/json", bytes.NewReader(body))
		if err != nil {
			return shard.MatchResult{}, "", err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return shard.MatchResult{}, "", fmt.Errorf("gateway status %d", resp.StatusCode)
		}
		var res shard.MatchResult
		err = json.NewDecoder(resp.Body).Decode(&res)
		return res, resp.Header.Get("X-Cache"), err
	}
	reqPrim := server.MatchRequest{Seq: qseq, PatientID: data[0].pid, SessionID: data[0].sid, K: k}
	bodyPrim, err := json.Marshal(reqPrim)
	if err != nil {
		return concurrentResult{}, err
	}
	reqFol := reqPrim
	reqFol.MaxLag = 1 << 20
	bodyFol, err := json.Marshal(reqFol)
	if err != nil {
		return concurrentResult{}, err
	}

	// The primary-only merge is the reference every other mode must
	// reproduce byte for byte.
	base, _, err := doMatch(gwURL, bodyPrim)
	if err != nil {
		return concurrentResult{}, err
	}
	if base.Degraded || base.ShardsOK != shards {
		return concurrentResult{}, fmt.Errorf("concurrent warmup degraded: %d/%d shards", base.ShardsOK, base.ShardsQueried)
	}
	want, err := json.Marshal(base.Matches)
	if err != nil {
		return concurrentResult{}, err
	}
	fol, _, err := doMatch(gwURL, bodyFol)
	if err != nil {
		return concurrentResult{}, err
	}
	if fol.Degraded || fol.PlannedPatients == 0 || fol.FollowerServed == 0 {
		return concurrentResult{}, fmt.Errorf("follower-read warmup: degraded=%v planned=%d followerServed=%d",
			fol.Degraded, fol.PlannedPatients, fol.FollowerServed)
	}
	if got, err := json.Marshal(fol.Matches); err != nil || !bytes.Equal(got, want) {
		return concurrentResult{}, fmt.Errorf("follower-read merge diverges from primary-only (err %v)", err)
	}
	// Cache warmup: the first call runs before the gateway knows any
	// store tokens (uncacheable), the second fills, the third must hit.
	for i := 0; i < 2; i++ {
		if _, _, err := doMatch(gwcURL, bodyPrim); err != nil {
			return concurrentResult{}, err
		}
	}
	hit, cc, err := doMatch(gwcURL, bodyPrim)
	if err != nil {
		return concurrentResult{}, err
	}
	if cc != "hit" {
		return concurrentResult{}, fmt.Errorf("cache warmup: third identical query X-Cache = %q, want hit", cc)
	}
	if got, err := json.Marshal(hit.Matches); err != nil || !bytes.Equal(got, want) {
		return concurrentResult{}, fmt.Errorf("cached merge diverges from primary-only (err %v)", err)
	}

	per := totalOps / clients
	if per < 1 {
		per = 1
	}
	ops := per * clients
	hammer := func(url string, body []byte) (loadPoint, error) {
		errCh := make(chan error, clients)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < clients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					res, _, err := doMatch(url, body)
					if err == nil {
						var got []byte
						if got, err = json.Marshal(res.Matches); err == nil && !bytes.Equal(got, want) {
							err = fmt.Errorf("response diverged from primary-only merge under load")
						}
					}
					if err != nil {
						errCh <- err
						return
					}
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		select {
		case err := <-errCh:
			return loadPoint{}, err
		default:
		}
		return loadPoint{
			QPS:     float64(ops) / elapsed.Seconds(),
			NsPerOp: float64(elapsed.Nanoseconds()) / float64(per),
		}, nil
	}

	out := concurrentResult{
		Clients:                 clients,
		OpsPerScenario:          ops,
		Shards:                  shards,
		Replicas:                replicas,
		Matches:                 len(base.Matches),
		PlannedPatientsPerQuery: fol.PlannedPatients,
		FollowerServedPerQuery:  fol.FollowerServed,
	}
	if out.PrimaryOnly, err = hammer(gwURL, bodyPrim); err != nil {
		return concurrentResult{}, fmt.Errorf("primary-only: %w", err)
	}
	if out.FollowerRead, err = hammer(gwURL, bodyFol); err != nil {
		return concurrentResult{}, fmt.Errorf("follower-reads: %w", err)
	}
	hitsBefore := sigMetric("stsmatch_gateway_match_cache_hits_total")
	if out.CacheHit, err = hammer(gwcURL, bodyPrim); err != nil {
		return concurrentResult{}, fmt.Errorf("cache-hit: %w", err)
	}
	// Both gateways share the process-wide metrics registry, but only
	// gwc has a cache, so the delta is attributable.
	if delta := sigMetric("stsmatch_gateway_match_cache_hits_total") - hitsBefore; delta < float64(ops) {
		return concurrentResult{}, fmt.Errorf("cache scenario served only %.0f/%d requests from cache", delta, ops)
	}
	if out.PrimaryOnly.QPS > 0 {
		out.FollowerReadSpeedup = out.FollowerRead.QPS / out.PrimaryOnly.QPS
		out.CacheHitSpeedup = out.CacheHit.QPS / out.PrimaryOnly.QPS
	}
	return out, nil
}

// benchRebalance boots the same R=2 replicated 3-shard cluster as
// benchConcurrent, then grows it to 4 backends while one client keeps
// hammering the deterministic top-k query: AddBackend + Rebalance
// drains every ring-displaced session onto the new node through the
// live-migration protocol. The scenario hard-asserts zero failed
// moves, at least one session moved, and that every query issued
// before, during, and after the drain returns the byte-identical
// pre-drain match list — elasticity must be invisible to readers.
func benchRebalance(data []patientData, qseq plr.Sequence, k, iters int, duration float64) (rebalanceResult, error) {
	const shards = 3
	const replicas = 2
	var urls []string
	var servers []*http.Server
	var listeners []net.Listener
	defer func() {
		for _, hs := range servers {
			hs.Close() //nolint:errcheck
		}
	}()
	// Four backends up front; the gateway only learns about the fourth
	// when the scenario grows the ring.
	for i := 0; i < shards+1; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return rebalanceResult{}, err
		}
		listeners = append(listeners, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}
	for i := range listeners {
		srv, err := server.NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(),
			server.Options{AdvertiseURL: urls[i]})
		if err != nil {
			return rebalanceResult{}, err
		}
		hs := &http.Server{Handler: srv}
		servers = append(servers, hs)
		go hs.Serve(listeners[i]) //nolint:errcheck
	}

	gw, err := shard.NewGateway(urls[:shards], shard.Options{
		Replicas:          replicas,
		HealthInterval:    -1,
		FreshnessInterval: -1,
		MatchCacheSize:    -1, // every query must really execute the scatter
	})
	if err != nil {
		return rebalanceResult{}, err
	}
	defer gw.Close()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rebalanceResult{}, err
	}
	ghs := &http.Server{Handler: gw}
	servers = append(servers, ghs)
	go ghs.Serve(gln) //nolint:errcheck
	gwURL := "http://" + gln.Addr().String()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(url string, v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		resp, err := client.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("%s: status %d", url, resp.StatusCode)
		}
		return nil
	}
	for i, pd := range data {
		if err := post(gwURL+"/v1/sessions",
			server.CreateSessionRequest{PatientID: pd.pid, SessionID: pd.sid}); err != nil {
			return rebalanceResult{}, err
		}
		gen, err := signal.NewRespiration(signal.DefaultRespiration(), int64(100+i))
		if err != nil {
			return rebalanceResult{}, err
		}
		samples := gen.Generate(duration)
		for off := 0; off < len(samples); off += 512 {
			end := min(off+512, len(samples))
			batch := make([]server.SampleIn, 0, end-off)
			for _, s := range samples[off:end] {
				batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
			}
			if err := post(gwURL+"/v1/sessions/"+pd.sid+"/samples", batch); err != nil {
				return rebalanceResult{}, err
			}
		}
	}

	body, err := json.Marshal(server.MatchRequest{
		Seq: qseq, PatientID: data[0].pid, SessionID: data[0].sid, K: k,
	})
	if err != nil {
		return rebalanceResult{}, err
	}
	doMatch := func() (shard.MatchResult, error) {
		resp, err := client.Post(gwURL+"/v1/match", "application/json", bytes.NewReader(body))
		if err != nil {
			return shard.MatchResult{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return shard.MatchResult{}, fmt.Errorf("gateway status %d", resp.StatusCode)
		}
		var res shard.MatchResult
		return res, json.NewDecoder(resp.Body).Decode(&res)
	}

	base, err := doMatch()
	if err != nil {
		return rebalanceResult{}, err
	}
	if base.Degraded || base.ShardsOK != shards {
		return rebalanceResult{}, fmt.Errorf("rebalance warmup degraded: %d/%d shards", base.ShardsOK, base.ShardsQueried)
	}
	want, err := json.Marshal(base.Matches)
	if err != nil {
		return rebalanceResult{}, err
	}
	checked := func() (shard.MatchResult, error) {
		res, err := doMatch()
		if err != nil {
			return res, err
		}
		if res.Degraded {
			return res, fmt.Errorf("query degraded mid-scenario: %d/%d shards", res.ShardsOK, res.ShardsQueried)
		}
		got, err := json.Marshal(res.Matches)
		if err != nil {
			return res, err
		}
		if !bytes.Equal(got, want) {
			return res, fmt.Errorf("match list diverged from pre-drain merge")
		}
		return res, nil
	}
	timed := func(n int) (float64, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := checked(); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n), nil
	}

	out := rebalanceResult{Shards: shards, Replicas: replicas}
	if out.MatchNsBefore, err = timed(iters); err != nil {
		return rebalanceResult{}, fmt.Errorf("before drain: %w", err)
	}

	// One client keeps querying while the drain runs; the drain's
	// wall clock divided into the queries that completed inside it is
	// the mid-drain latency.
	stop := make(chan struct{})
	loadErr := make(chan error, 1)
	var during atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				loadErr <- nil
				return
			default:
			}
			if _, err := checked(); err != nil {
				loadErr <- fmt.Errorf("during drain: %w", err)
				return
			}
			during.Add(1)
		}
	}()

	if err := gw.AddBackend(urls[shards]); err != nil {
		return rebalanceResult{}, err
	}
	drainStart := time.Now()
	rep := gw.Rebalance(context.Background())
	out.DrainSeconds = time.Since(drainStart).Seconds()
	out.QueriesDuring = int(during.Load())
	close(stop)
	if err := <-loadErr; err != nil {
		return rebalanceResult{}, err
	}
	if len(rep.Failed) > 0 {
		return rebalanceResult{}, fmt.Errorf("rebalance failed %d sessions: %v", len(rep.Failed), rep.Failed)
	}
	if len(rep.Moved) == 0 {
		return rebalanceResult{}, fmt.Errorf("rebalance moved no sessions onto the new backend (checked %d)", rep.Checked)
	}
	out.SessionsMoved = len(rep.Moved)
	if out.DrainSeconds > 0 {
		out.SessionsPerSec = float64(out.SessionsMoved) / out.DrainSeconds
	}
	if out.QueriesDuring > 0 {
		out.MatchNsDuring = out.DrainSeconds * 1e9 / float64(out.QueriesDuring)
	}

	// Vertices moved: the migrated sessions' full PLR streams, read
	// back through the gateway (which now routes them to the new node).
	for _, mv := range rep.Moved {
		resp, err := client.Get(gwURL + "/v1/sessions/" + mv.SessionID + "/plr")
		if err != nil {
			return rebalanceResult{}, err
		}
		var pr server.PLRResponse
		err = json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if err != nil {
			return rebalanceResult{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return rebalanceResult{}, fmt.Errorf("plr for migrated session %s: status %d", mv.SessionID, resp.StatusCode)
		}
		out.VerticesMoved += len(pr.Vertices)
	}

	if out.MatchNsAfter, err = timed(iters); err != nil {
		return rebalanceResult{}, fmt.Errorf("after drain: %w", err)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmatch:", err)
	os.Exit(1)
}
