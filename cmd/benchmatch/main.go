// Command benchmatch is the reproducible matcher/gateway benchmark
// runner: it builds a deterministic synthetic cohort, measures
// similarity-search latency and pruning-funnel counters for (a) a
// single-node in-process matcher and (b) a 3-shard deployment behind
// the consistent-hash gateway, and writes the results to
// BENCH_matcher.json so the perf trajectory of the matcher and the
// scatter-gather path is tracked in-repo.
//
//	benchmatch                       # defaults: 6 patients, k=10, 200 iters
//	benchmatch -patients 12 -iters 500 -out BENCH_matcher.json
//
// The cohort is seeded deterministically, so candidate counts and
// match sets are identical run to run; only wall-clock numbers vary
// with the hardware.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/obs"
	"stsmatch/internal/plr"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
)

// patientData is one synthetic patient's segmented stream.
type patientData struct {
	pid, sid string
	vertices plr.Sequence
}

// scenarioResult is one benchmarked configuration.
type scenarioResult struct {
	NsPerOp           float64 `json:"nsPerOp"`
	Matches           int     `json:"matches"`
	CandidatesScanned int     `json:"candidatesScanned"`
	IndexPruned       int     `json:"indexPruned"`
	Shards            int     `json:"shards,omitempty"`
}

// benchReport is the BENCH_matcher.json schema.
type benchReport struct {
	Patients   int            `json:"patients"`
	DurationS  float64        `json:"durationSeconds"`
	K          int            `json:"k"`
	Iters      int            `json:"iters"`
	QueryLen   int            `json:"queryLen"`
	SingleNode scenarioResult `json:"singleNode"`
	Sharded    scenarioResult `json:"sharded"`
}

func main() {
	out := flag.String("out", "BENCH_matcher.json", "output path for the benchmark report")
	patients := flag.Int("patients", 6, "synthetic patients in the cohort")
	duration := flag.Float64("duration", 45, "seconds of breathing data per patient")
	k := flag.Int("k", 10, "top-k for the benchmark queries")
	iters := flag.Int("iters", 200, "measured iterations per scenario")
	flag.Parse()

	obs.InitLogging(os.Stderr, slog.LevelWarn, false)

	data, err := buildCohort(*patients, *duration)
	if err != nil {
		fatal(err)
	}
	qseq := data[0].vertices
	if len(qseq) < 12 {
		fatal(fmt.Errorf("query stream too short: %d vertices", len(qseq)))
	}
	qseq = qseq[len(qseq)-10:]

	report := benchReport{
		Patients:  *patients,
		DurationS: *duration,
		K:         *k,
		Iters:     *iters,
		QueryLen:  len(qseq),
	}

	report.SingleNode, err = benchSingleNode(data, qseq, *k, *iters)
	if err != nil {
		fatal(err)
	}
	report.Sharded, err = benchSharded(data, qseq, *k, *iters)
	if err != nil {
		fatal(err)
	}

	if report.SingleNode.Matches != report.Sharded.Matches {
		fatal(fmt.Errorf("sharded top-k (%d matches) disagrees with single node (%d): merge is broken",
			report.Sharded.Matches, report.SingleNode.Matches))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("single-node: %.0f ns/op (%d candidates, %d pruned)\n",
		report.SingleNode.NsPerOp, report.SingleNode.CandidatesScanned, report.SingleNode.IndexPruned)
	fmt.Printf("3-shard gw : %.0f ns/op (%d candidates, %d pruned)\n",
		report.Sharded.NsPerOp, report.Sharded.CandidatesScanned, report.Sharded.IndexPruned)
	fmt.Printf("wrote %s\n", *out)
}

// buildCohort segments deterministic respiration traces into PLR
// streams, one patient each.
func buildCohort(patients int, duration float64) ([]patientData, error) {
	var out []patientData
	for i := 0; i < patients; i++ {
		gen, err := signal.NewRespiration(signal.DefaultRespiration(), int64(100+i))
		if err != nil {
			return nil, err
		}
		seg, err := fsm.New(fsm.DefaultConfig())
		if err != nil {
			return nil, err
		}
		var seq plr.Sequence
		for _, s := range gen.Generate(duration) {
			vs, err := seg.Push(s)
			if err != nil {
				return nil, err
			}
			seq = append(seq, vs...)
		}
		out = append(out, patientData{
			pid:      fmt.Sprintf("P%02d", i),
			sid:      fmt.Sprintf("S-P%02d", i),
			vertices: seq,
		})
	}
	return out, nil
}

// loadDB builds a store database holding the given patients.
func loadDB(data []patientData) (*store.DB, error) {
	db := store.NewDB()
	for _, pd := range data {
		p, err := db.AddPatient(store.PatientInfo{ID: pd.pid})
		if err != nil {
			return nil, err
		}
		st := p.AddStream(pd.sid)
		if err := st.Append(pd.vertices...); err != nil {
			return nil, err
		}
	}
	db.EnableIndexes()
	return db, nil
}

// counters snapshots the matcher pruning funnel.
func counters() (scanned, pruned, matched int) {
	for _, p := range obs.Default().Gather() {
		switch p.Name {
		case "stsmatch_matcher_candidates_scanned_total":
			scanned = int(p.Value)
		case "stsmatch_matcher_index_pruned_total":
			pruned = int(p.Value)
		case "stsmatch_matcher_matches_total":
			matched = int(p.Value)
		}
	}
	return
}

func benchSingleNode(data []patientData, qseq plr.Sequence, k, iters int) (scenarioResult, error) {
	db, err := loadDB(data)
	if err != nil {
		return scenarioResult{}, err
	}
	m, err := core.NewMatcher(db, core.DefaultParams())
	if err != nil {
		return scenarioResult{}, err
	}
	q := core.NewQuery(qseq, data[0].pid, data[0].sid)
	// Warmup.
	matches, err := m.TopK(q, k, nil)
	if err != nil {
		return scenarioResult{}, err
	}
	s0, p0, _ := counters()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := m.TopK(q, k, nil); err != nil {
			return scenarioResult{}, err
		}
	}
	elapsed := time.Since(start)
	s1, p1, _ := counters()
	return scenarioResult{
		NsPerOp:           float64(elapsed.Nanoseconds()) / float64(iters),
		Matches:           len(matches),
		CandidatesScanned: (s1 - s0) / iters,
		IndexPruned:       (p1 - p0) / iters,
	}, nil
}

func benchSharded(data []patientData, qseq plr.Sequence, k, iters int) (scenarioResult, error) {
	// Three shards on loopback listeners.
	const shards = 3
	var urls []string
	var servers []*http.Server
	var listeners []net.Listener
	defer func() {
		for _, hs := range servers {
			hs.Close() //nolint:errcheck
		}
	}()
	for i := 0; i < shards; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return scenarioResult{}, err
		}
		listeners = append(listeners, ln)
		urls = append(urls, "http://"+ln.Addr().String())
	}

	// Partition patients exactly as the gateway's ring will.
	ring := shard.NewRing(shard.DefaultReplicas)
	for _, u := range urls {
		ring.Add(u)
	}
	parts := make(map[string][]patientData)
	for _, pd := range data {
		owner := ring.Owner(pd.pid)
		parts[owner] = append(parts[owner], pd)
	}
	for i, u := range urls {
		db, err := loadDB(parts[u])
		if err != nil {
			return scenarioResult{}, err
		}
		srv, err := server.New(db, core.DefaultParams(), fsm.DefaultConfig())
		if err != nil {
			return scenarioResult{}, err
		}
		hs := &http.Server{Handler: srv}
		servers = append(servers, hs)
		go hs.Serve(listeners[i]) //nolint:errcheck
	}

	gw, err := shard.NewGateway(urls, shard.Options{HealthInterval: -1})
	if err != nil {
		return scenarioResult{}, err
	}
	defer gw.Close()
	gln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return scenarioResult{}, err
	}
	ghs := &http.Server{Handler: gw}
	servers = append(servers, ghs)
	go ghs.Serve(gln) //nolint:errcheck
	gURL := "http://" + gln.Addr().String()

	body, err := json.Marshal(server.MatchRequest{
		Seq: qseq, PatientID: data[0].pid, SessionID: data[0].sid, K: k,
	})
	if err != nil {
		return scenarioResult{}, err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	call := func() (shard.MatchResult, error) {
		resp, err := client.Post(gURL+"/v1/match", "application/json", bytes.NewReader(body))
		if err != nil {
			return shard.MatchResult{}, err
		}
		defer resp.Body.Close()
		var res shard.MatchResult
		if resp.StatusCode != http.StatusOK {
			return res, fmt.Errorf("gateway status %d", resp.StatusCode)
		}
		return res, json.NewDecoder(resp.Body).Decode(&res)
	}
	// Warmup (also establishes keep-alive connections).
	res, err := call()
	if err != nil {
		return scenarioResult{}, err
	}
	if res.Degraded || res.ShardsOK != shards {
		return scenarioResult{}, fmt.Errorf("sharded warmup degraded: %d/%d shards", res.ShardsOK, res.ShardsQueried)
	}
	s0, p0, _ := counters()
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := call(); err != nil {
			return scenarioResult{}, err
		}
	}
	elapsed := time.Since(start)
	s1, p1, _ := counters()
	return scenarioResult{
		NsPerOp:           float64(elapsed.Nanoseconds()) / float64(iters),
		Matches:           len(res.Matches),
		CandidatesScanned: (s1 - s0) / iters,
		IndexPruned:       (p1 - p0) / iters,
		Shards:            shards,
	}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmatch:", err)
	os.Exit(1)
}
