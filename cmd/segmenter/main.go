// Command segmenter converts a raw motion CSV (t, pos0[, pos1, ...])
// into its piecewise linear representation using the online finite-
// state segmenter, writing one vertex per line (t, state, pos...).
//
// It processes the input in a streaming fashion — constant memory, one
// pass — exactly as the online algorithm runs during treatment.
//
// Usage:
//
//	segmenter -in session.csv -out session.plr.csv
//	motiongen -raw -dir raw && segmenter -in raw/P01-S01.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
)

func main() {
	in := flag.String("in", "", "input CSV of raw samples (t, pos...); empty = stdin")
	out := flag.String("out", "", "output CSV of PLR vertices; empty = stdout")
	slopeWin := flag.Int("slopewin", fsm.DefaultConfig().SlopeWindow, "trend window (samples)")
	slopeThr := flag.Float64("slopethr", fsm.DefaultConfig().SlopeThreshold, "slope threshold (units/s)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	cfg := fsm.DefaultConfig()
	cfg.SlopeWindow = *slopeWin
	cfg.SlopeThreshold = *slopeThr
	seg, err := fsm.New(cfg)
	if err != nil {
		fatal(err)
	}

	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cw := csv.NewWriter(w)
	defer cw.Flush()

	nIn, nOut := 0, 0
	emit := func(vs []plr.Vertex) error {
		for _, v := range vs {
			row := []string{strconv.FormatFloat(v.T, 'f', 4, 64), v.State.String()}
			for _, p := range v.Pos {
				row = append(row, strconv.FormatFloat(p, 'f', 4, 64))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
			nOut++
		}
		return nil
	}

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if len(rec) < 2 {
			fatal(fmt.Errorf("row %d: need at least (t, pos)", nIn+1))
		}
		sm := plr.Sample{Pos: make([]float64, len(rec)-1)}
		if sm.T, err = strconv.ParseFloat(rec[0], 64); err != nil {
			fatal(fmt.Errorf("row %d: bad time: %w", nIn+1, err))
		}
		for i, cell := range rec[1:] {
			if sm.Pos[i], err = strconv.ParseFloat(cell, 64); err != nil {
				fatal(fmt.Errorf("row %d: bad position: %w", nIn+1, err))
			}
		}
		nIn++
		vs, err := seg.Push(sm)
		if err != nil {
			fatal(err)
		}
		if err := emit(vs); err != nil {
			fatal(err)
		}
	}
	if err := emit(seg.Flush()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "segmenter: %d samples -> %d vertices (%.1fx compression)\n",
		nIn, nOut, float64(nIn)/float64(max(nOut, 1)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "segmenter:", err)
	os.Exit(1)
}
