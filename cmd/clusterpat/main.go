// Command clusterpat runs the offline analysis of Section 5 on a PLR
// database: stream and patient distances (Definitions 3-4), k-medoids
// and hierarchical clustering, and the correlation report between
// clusters and patient covariates (the Section 5.3 applications).
//
// Usage:
//
//	motiongen -o cohort.json
//	clusterpat -db cohort.json -k 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"stsmatch/internal/cluster"
	"stsmatch/internal/store"
)

func main() {
	dbPath := flag.String("db", "cohort.json", "PLR database (from motiongen or segmenter)")
	k := flag.Int("k", 0, "number of clusters (0 = pick by silhouette)")
	stride := flag.Int("stride", 4, "offline query stride (1 = exact Definition 3, slower)")
	dendro := flag.Bool("dendrogram", false, "print the hierarchical dendrogram")
	flag.Parse()

	f, err := os.Open(*dbPath)
	if err != nil {
		fatal(err)
	}
	db, err := store.ReadAny(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	db.EnableIndexes()

	cfg := cluster.DefaultConfig()
	cfg.QueryStride = *stride
	patients := db.Patients()
	if len(patients) < 2 {
		fatal(fmt.Errorf("need at least 2 patients, have %d", len(patients)))
	}

	fmt.Printf("computing patient distance matrix over %d patients...\n", len(patients))
	dm, err := cluster.PatientDistanceMatrix(patients, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mean cross-patient distance: %.3f\n\n", dm.MeanOffDiagonal())

	var cl cluster.Clustering
	var sil float64
	if *k > 0 {
		cl, err = cluster.KMedoids(dm, *k, 42)
		if err != nil {
			fatal(err)
		}
		sil = cluster.Silhouette(dm, cl)
	} else {
		cl, sil, err = cluster.BestK(dm, 2, min(6, len(patients)-1), 42)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("k-medoids: k=%d, silhouette=%.3f\n", cl.K, sil)
	for ci, members := range cl.Clusters() {
		fmt.Printf("  cluster %d (medoid %s):", ci, patients[cl.Medoids[ci]].Info.ID)
		for _, i := range members {
			fmt.Printf(" %s", patients[i].Info.ID)
		}
		fmt.Println()
	}

	// Correlation report: does the clustering align with covariates?
	fmt.Println("\ncorrelation with patient covariates:")
	reportCorrelation(cl, patients, "breathing class", func(p *store.Patient) string { return p.Info.Class })
	reportCorrelation(cl, patients, "tumor site", func(p *store.Patient) string { return p.Info.TumorSite })

	if *dendro {
		fmt.Println("\nhierarchical clustering (average linkage):")
		root := cluster.Agglomerate(dm)
		fmt.Print(rename(root.String(), patients))
	}
}

// reportCorrelation prints purity and ARI of the clustering against a
// categorical covariate, plus the per-cluster label histogram.
func reportCorrelation(cl cluster.Clustering, patients []*store.Patient, name string, label func(*store.Patient) string) {
	labels := make([]string, len(patients))
	for i, p := range patients {
		labels[i] = label(p)
	}
	fmt.Printf("  %-15s purity=%.2f ARI=%.2f\n", name,
		cluster.Purity(cl, labels), cluster.AdjustedRandIndex(cl, labels))
	for ci, members := range cl.Clusters() {
		counts := map[string]int{}
		for _, i := range members {
			counts[labels[i]]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("    cluster %d:", ci)
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, counts[k])
		}
		fmt.Println()
	}
}

// rename replaces "item N" with patient IDs in the dendrogram dump.
func rename(s string, patients []*store.Patient) string {
	for i := len(patients) - 1; i >= 0; i-- {
		s = strings.ReplaceAll(s, fmt.Sprintf("item %d\n", i), patients[i].Info.ID+"\n")
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clusterpat:", err)
	os.Exit(1)
}
