// Command streamd serves the online ingestion and prediction HTTP API:
// the deployment shape of the paper's real-time system. A treatment
// console (or the demo client below) opens a session, streams samples
// as they are imaged, and polls predictions.
//
//	streamd -listen :8750 -db cohort.json     # preload history
//	streamd -data-dir /var/lib/stsmatch \
//	        -fsync 50ms -snapshot-every 5m    # durable: WAL + snapshots
//
//	curl -X POST localhost:8750/v1/sessions \
//	     -d '{"patientId":"P01","sessionId":"live"}'
//	curl -X POST localhost:8750/v1/sessions/live/samples \
//	     -d '[{"t":0.0,"pos":[12.1]},{"t":0.033,"pos":[11.8]}]'
//	curl 'localhost:8750/v1/sessions/live/predict?delta=200ms'
//	curl localhost:8750/v1/stats
//	curl localhost:8750/v1/healthz
//	curl localhost:8750/metrics            # Prometheus text format
//
// With -data-dir the daemon journals every mutation to a write-ahead
// log and periodically compacts it into snapshots; on restart it
// recovers the database and resumes the sessions that were open. The
// -fsync flag sets the group-commit interval (0 = fsync every append)
// and bounds how much acknowledged data a hard crash can lose.
//
// A streamd can also be a replication primary, follower, or both:
// sessions created with "replicate" target URLs stream every WAL
// record to those followers before acknowledging writes, and POST
// /v1/replicate applies shipped batches on the receiving side. The
// -advertise flag names this daemon in its outgoing shipments (so
// followers can allowlist it) and -replicate-from restricts which
// sources may ship WAL batches here. Followers also serve reads:
// POST /v1/match on a replica answers from its WAL-applied store, and
// a leg carrying an X-Match-Require freshness bound is refused for any
// patient whose local holdings fall short — the contract behind the
// gateway's bounded-staleness follower reads. /v1/shard/stats and
// /v1/healthz report per-session per-link shipped/acked sequence
// numbers plus per-patient holdings, and every response carries an
// X-Store-Seq mutation high-water mark for the gateway's result cache.
//
// With -pprof the daemon additionally serves net/http/pprof under
// /debug/pprof/ on the same listener. The daemon shuts down gracefully
// on SIGINT/SIGTERM, draining in-flight requests, then flushing the
// WAL and writing a final snapshot so no in-memory state is lost.
//
// With -demo, streamd instead runs an in-process end-to-end demo
// against its own API: it starts the server on the listen address,
// streams a synthetic session in real-time order, and logs
// predictions alongside the later-observed truth, ending with a
// metrics summary of the run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/obs"
	"stsmatch/internal/server"
	signalgen "stsmatch/internal/signal"
	"stsmatch/internal/store"
)

func main() {
	listen := flag.String("listen", ":8750", "HTTP listen address")
	dbPath := flag.String("db", "", "optional PLR database to preload as history")
	dataDir := flag.String("data-dir", "", "directory for the write-ahead log and snapshots (empty = in-memory only)")
	fsyncEvery := flag.Duration("fsync", 50*time.Millisecond, "WAL group-commit fsync interval (0 = fsync every append)")
	snapshotEvery := flag.Duration("snapshot-every", 5*time.Minute, "periodic WAL compaction into snapshots (0 = only on shutdown)")
	matchPar := flag.Int("match-parallelism", 0, "worker goroutines per similarity search (0 = GOMAXPROCS, 1 = sequential)")
	matchIndex := flag.Bool("match-index", false, "enable the window-signature index for sub-linear candidate retrieval (a data dir that had it on re-enables it automatically)")
	advertise := flag.String("advertise", "", "base URL this daemon advertises as the source of its WAL shipments (e.g. http://10.0.0.1:8750)")
	replicateFrom := flag.String("replicate-from", "", "comma-separated source URLs allowed to ship WAL batches here (empty = accept any)")
	subBuffer := flag.Int("sub-buffer", 0, "per-subscription undelivered event buffer (0 = default 4096; oldest events drop past it)")
	migrateRounds := flag.Int("migrate-catchup-rounds", 0, "catch-up flush rounds a live-session migration may spend before fencing (0 = default)")
	traceCap := flag.Int("trace-capacity", obs.DefaultTraceCapacity, "traces retained in each in-memory ring (recent and slow)")
	traceSlow := flag.Duration("trace-slow", obs.DefaultSlowThreshold, "latency threshold at which a trace is pinned in the slow ring")
	demo := flag.Bool("demo", false, "run the self-contained demo client and exit")
	pprofOn := flag.Bool("pprof", false, "serve /debug/pprof/ on the listen address")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit JSON log lines instead of text")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatalStartup(err)
	}
	obs.InitLogging(os.Stderr, level, *logJSON)
	log := obs.Logger("streamd")

	var db *store.DB
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			fatal(log, err)
		}
		db, err = store.ReadAny(f)
		f.Close()
		if err != nil {
			fatal(log, err)
		}
		db.EnableIndexes()
		log.Info("preloaded history",
			slog.String("path", *dbPath),
			slog.Int("patients", db.NumPatients()),
			slog.Int("vertices", db.NumVertices()))
	}

	var replFrom []string
	for _, u := range strings.Split(*replicateFrom, ",") {
		if u = strings.TrimSpace(u); u != "" {
			replFrom = append(replFrom, strings.TrimRight(u, "/"))
		}
	}
	srv, err := server.NewWithOptions(db, core.DefaultParams(), fsm.DefaultConfig(), server.Options{
		DataDir:              *dataDir,
		FsyncInterval:        *fsyncEvery,
		SnapshotEvery:        *snapshotEvery,
		MatcherParallelism:   *matchPar,
		MatchIndex:           *matchIndex,
		AdvertiseURL:         strings.TrimRight(*advertise, "/"),
		ReplicateFrom:        replFrom,
		SubscriptionBuffer:   *subBuffer,
		MigrateCatchupRounds: *migrateRounds,
		TraceCapacity:        *traceCap,
		TraceSlowThreshold:   *traceSlow,
	})
	if err != nil {
		fatal(log, err)
	}
	if *dataDir != "" {
		log.Info("durability enabled",
			slog.String("dataDir", *dataDir),
			slog.Duration("fsync", *fsyncEvery),
			slog.Duration("snapshotEvery", *snapshotEvery))
	}

	if *demo {
		runDemo(log, srv)
		if err := srv.Close(); err != nil {
			log.Error("persisting state", slog.Any("err", err))
		}
		log.Info("metrics summary", obs.SummaryAttrs(obs.Default())...)
		return
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *pprofOn {
		obs.AttachPprof(mux)
		log.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}

	hs := &http.Server{
		Addr:              *listen,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		open := srv.OpenSessions()
		log.Info("shutting down",
			slog.Int("openSessions", open),
			slog.String("reason", "signal"))
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			log.Warn("shutdown did not drain cleanly", slog.Any("err", err))
		}
		// Persist after the drain: flush the WAL and write a final
		// snapshot so a configured data dir loses nothing on restart.
		if err := srv.Close(); err != nil {
			log.Error("persisting state on shutdown", slog.Any("err", err))
		} else if *dataDir != "" {
			log.Info("state persisted", slog.String("dataDir", *dataDir))
		}
		log.Info("drained", slog.Int("openSessions", open))
	}()

	log.Info("listening", slog.String("addr", *listen))
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(log, err)
	}
	<-done
	log.Info("metrics summary", obs.SummaryAttrs(obs.Default())...)
}

// runDemo drives the API in-process: ingest a synthetic session in
// chunks and request a prediction after each chunk, comparing it with
// what actually arrives next.
func runDemo(log *slog.Logger, h http.Handler) {
	call := func(method, path string, body any) (*http.Response, error) {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequest(method, "http://demo"+path, &buf)
		if err != nil {
			return nil, err
		}
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		return rec.result(), nil
	}

	if _, err := call("POST", "/v1/sessions", server.CreateSessionRequest{
		PatientID: "DEMO", SessionID: "demo-live",
	}); err != nil {
		fatal(log, err)
	}

	gen, err := signalgen.NewRespiration(signalgen.DefaultRespiration(), 42)
	if err != nil {
		fatal(log, err)
	}
	samples := gen.Generate(90)
	const chunk = 150 // ~5 s of data per ingest call
	for i := 0; i < len(samples); i += chunk {
		end := min(i+chunk, len(samples))
		batch := make([]server.SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
		}
		if _, err := call("POST", "/v1/sessions/demo-live/samples", batch); err != nil {
			fatal(log, err)
		}
		resp, err := call("GET", "/v1/sessions/demo-live/predict?delta=200ms", nil)
		if err != nil {
			fatal(log, err)
		}
		now := samples[end-1].T
		if resp.StatusCode != http.StatusOK {
			log.Info("no prediction yet",
				slog.Float64("t", now), slog.Int("status", resp.StatusCode))
			continue
		}
		var pred server.PredictionResponse
		if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
			fatal(log, err)
		}
		// Truth: the raw sample nearest now+200ms, if already generated.
		truthIdx := end - 1 + 6 // 200 ms at 30 Hz
		attrs := []any{
			slog.Float64("t", now),
			slog.String("predicted", fmt.Sprintf("%.2f mm", pred.Pos[0])),
			slog.Int("matches", pred.NumMatches),
			slog.Int("queryVertices", pred.QueryLen),
			slog.Bool("stable", pred.Stable),
		}
		if truthIdx < len(samples) {
			attrs = append(attrs,
				slog.String("truth", fmt.Sprintf("%.2f mm", samples[truthIdx].Pos[0])))
		}
		log.Info("predict(+200ms)", attrs...)
	}

	// Scrape the server's own /metrics endpoint to show the run's
	// pipeline counters the way a Prometheus scrape would see them.
	resp, err := call("GET", "/metrics", nil)
	if err != nil {
		fatal(log, err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatal(log, err)
	}
	headline := []string{
		"stsmatch_fsm_samples_total",
		"stsmatch_fsm_vertices_total",
		"stsmatch_matcher_index_pruned_total",
		"stsmatch_matcher_candidates_scanned_total",
		"stsmatch_matcher_matches_total",
	}
	attrs := []any{slog.Int("status", resp.StatusCode), slog.Int("bytes", len(body))}
	for _, line := range strings.Split(string(body), "\n") {
		for _, name := range headline {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				attrs = append(attrs, slog.String(name, rest))
			}
		}
	}
	log.Info("scraped /metrics", attrs...)
	log.Info("demo complete")
}

// recorder is a minimal in-process ResponseWriter (httptest lives in
// net/http/httptest but is conventionally test-only; this demo stays
// self-contained).
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{code: 200, header: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

func (r *recorder) result() *http.Response {
	return &http.Response{
		StatusCode: r.code,
		Header:     r.header,
		Body:       readCloser{&r.body},
	}
}

type readCloser struct{ *bytes.Buffer }

func (readCloser) Close() error { return nil }

func fatal(log *slog.Logger, err error) {
	log.Error("fatal", slog.Any("err", err))
	os.Exit(1)
}

func fatalStartup(err error) {
	fmt.Fprintln(os.Stderr, "streamd:", err)
	os.Exit(1)
}
