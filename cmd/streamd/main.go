// Command streamd serves the online ingestion and prediction HTTP API:
// the deployment shape of the paper's real-time system. A treatment
// console (or the demo client below) opens a session, streams samples
// as they are imaged, and polls predictions.
//
//	streamd -listen :8750 -db cohort.json     # preload history
//
//	curl -X POST localhost:8750/v1/sessions \
//	     -d '{"patientId":"P01","sessionId":"live"}'
//	curl -X POST localhost:8750/v1/sessions/live/samples \
//	     -d '[{"t":0.0,"pos":[12.1]},{"t":0.033,"pos":[11.8]}]'
//	curl 'localhost:8750/v1/sessions/live/predict?delta=200ms'
//	curl localhost:8750/v1/stats
//
// With -demo, streamd instead runs an in-process end-to-end demo
// against its own API: it starts the server on the listen address,
// streams a synthetic session in real-time order, and prints
// predictions alongside the later-observed truth.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/server"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
)

func main() {
	listen := flag.String("listen", ":8750", "HTTP listen address")
	dbPath := flag.String("db", "", "optional PLR database to preload as history")
	demo := flag.Bool("demo", false, "run the self-contained demo client and exit")
	flag.Parse()

	var db *store.DB
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
		db, err = store.ReadAny(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		db.EnableIndexes()
		fmt.Printf("preloaded %d patients, %d vertices from %s\n",
			db.NumPatients(), db.NumVertices(), *dbPath)
	}

	srv, err := server.New(db, core.DefaultParams(), fsm.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	if *demo {
		runDemo(srv)
		return
	}
	fmt.Printf("streamd listening on %s\n", *listen)
	if err := http.ListenAndServe(*listen, srv); err != nil {
		fatal(err)
	}
}

// runDemo drives the API in-process: ingest a synthetic session in
// chunks and request a prediction after each chunk, comparing it with
// what actually arrives next.
func runDemo(h http.Handler) {
	call := func(method, path string, body any) (*http.Response, error) {
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequest(method, "http://demo"+path, &buf)
		if err != nil {
			return nil, err
		}
		rec := newRecorder()
		h.ServeHTTP(rec, req)
		return rec.result(), nil
	}

	if _, err := call("POST", "/v1/sessions", server.CreateSessionRequest{
		PatientID: "DEMO", SessionID: "demo-live",
	}); err != nil {
		fatal(err)
	}

	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 42)
	if err != nil {
		fatal(err)
	}
	samples := gen.Generate(90)
	const chunk = 150 // ~5 s of data per ingest call
	for i := 0; i < len(samples); i += chunk {
		end := min(i+chunk, len(samples))
		batch := make([]server.SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
		}
		if _, err := call("POST", "/v1/sessions/demo-live/samples", batch); err != nil {
			fatal(err)
		}
		resp, err := call("GET", "/v1/sessions/demo-live/predict?delta=200ms", nil)
		if err != nil {
			fatal(err)
		}
		now := samples[end-1].T
		if resp.StatusCode != http.StatusOK {
			fmt.Printf("t=%5.1fs  no prediction yet (%d)\n", now, resp.StatusCode)
			continue
		}
		var pred server.PredictionResponse
		if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
			fatal(err)
		}
		// Truth: the raw sample nearest now+200ms, if already generated.
		truthIdx := end - 1 + 6 // 200 ms at 30 Hz
		truthStr := "   (future unknown)"
		if truthIdx < len(samples) {
			truthStr = fmt.Sprintf("truth %6.2f mm", samples[truthIdx].Pos[0])
		}
		fmt.Printf("t=%5.1fs  predict(+200ms) %6.2f mm  %s  (%d matches, query %d vertices)\n",
			now, pred.Pos[0], truthStr, pred.NumMatches, pred.QueryLen)
	}
	fmt.Println("demo complete")
}

// recorder is a minimal in-process ResponseWriter (httptest lives in
// net/http/httptest but is conventionally test-only; this demo stays
// self-contained).
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{code: 200, header: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

func (r *recorder) result() *http.Response {
	return &http.Response{
		StatusCode: r.code,
		Header:     r.header,
		Body:       readCloser{&r.body},
	}
}

type readCloser struct{ *bytes.Buffer }

func (readCloser) Close() error { return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "streamd:", err)
	os.Exit(1)
}
