// Command motiongen generates a synthetic respiratory-motion cohort
// and writes it as raw sample CSV files (one per session) plus a
// cohort manifest, or as a segmented PLR database in the JSON
// interchange format consumed by cmd/predictd and cmd/clusterpat.
//
// Usage:
//
//	motiongen -patients 12 -sessions 4 -dur 90 -seed 42 -o cohort.json
//	motiongen -raw -dir ./rawdata        # per-session CSVs instead
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"stsmatch/internal/dataset"
	"stsmatch/internal/fsm"
	"stsmatch/internal/signal"
)

func main() {
	patients := flag.Int("patients", 12, "number of synthetic patients")
	sessions := flag.Int("sessions", 4, "treatment sessions per patient")
	dur := flag.Float64("dur", 90, "seconds of motion per session")
	dims := flag.Int("dims", 1, "spatial dimensions (1-3)")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("o", "cohort.json", "output path for the segmented PLR database (.json or .bin)")
	raw := flag.Bool("raw", false, "write raw 30 Hz sample CSVs instead of a segmented database")
	dir := flag.String("dir", "rawdata", "output directory for -raw mode")
	flag.Parse()

	cfg := signal.CohortConfig{
		NumPatients: *patients,
		SessionsPer: *sessions,
		SessionDur:  *dur,
		Dims:        *dims,
		Seed:        *seed,
	}
	cohort, err := signal.GenerateCohort(cfg)
	if err != nil {
		fatal(err)
	}

	if *raw {
		if err := writeRaw(cohort, *dir); err != nil {
			fatal(err)
		}
		return
	}

	db, err := dataset.FromCohort(cohort, fsm.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if strings.HasSuffix(*out, ".bin") {
		err = db.WriteBinary(f)
	} else {
		err = db.WriteJSON(f)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d patients, %d streams, %d PLR vertices\n",
		*out, db.NumPatients(), len(db.Streams()), db.NumVertices())
}

// writeRaw emits one CSV per session (t, pos0, pos1, ...) and a
// manifest of patient covariates.
func writeRaw(cohort []signal.PatientData, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	manifest, err := os.Create(filepath.Join(dir, "manifest.csv"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	mw := csv.NewWriter(manifest)
	defer mw.Flush()
	if err := mw.Write([]string{"patient", "class", "age", "tumorSite", "session", "file", "samples"}); err != nil {
		return err
	}

	total := 0
	for _, pd := range cohort {
		for _, sess := range pd.Sessions {
			name := sess.SessionID + ".csv"
			if err := writeSessionCSV(filepath.Join(dir, name), sess); err != nil {
				return err
			}
			total += len(sess.Samples)
			if err := mw.Write([]string{
				pd.Profile.ID, pd.Profile.Class.String(),
				strconv.Itoa(pd.Profile.Age), pd.Profile.TumorSite,
				sess.SessionID, name, strconv.Itoa(len(sess.Samples)),
			}); err != nil {
				return err
			}
		}
	}
	fmt.Printf("wrote %d sessions (%d raw samples) under %s\n",
		len(cohort[0].Sessions)*len(cohort), total, dir)
	return nil
}

func writeSessionCSV(path string, sess signal.SessionData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	for _, s := range sess.Samples {
		row := make([]string, 0, 1+len(s.Pos))
		row = append(row, strconv.FormatFloat(s.T, 'f', 4, 64))
		for _, p := range s.Pos {
			row = append(row, strconv.FormatFloat(p, 'f', 4, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "motiongen:", err)
	os.Exit(1)
}
