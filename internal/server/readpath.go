// Follower read path: the wire protocol that lets the gateway spread
// /v1/match scatter legs across replicas while keeping merged results
// byte-identical to a primary-only scatter.
//
// The scatter body is canonical — encoded once by the gateway and
// reused across every leg and retry — so all per-leg variation rides
// in request headers:
//
//	X-Match-Exclude: p1,p2     skip these patients (scored elsewhere)
//	X-Match-Only:    p1,p2     score only these patients (retry legs)
//	X-Match-Require: p=s:v,... serve patient p only if this shard holds
//	                           at least s streams and v vertices for it
//
// A shard that cannot meet a Require bound refuses that patient
// (MatchResponse.Refused) instead of answering with data staler than
// the query's max-lag tolerance; the gateway then retries the patient
// on another holder. Every response also reports the shard's local
// per-patient stream/vertex counts (MatchResponse.Freshness) so the
// gateway's freshness tracker converges without extra polling.
//
// Separately, every response carries X-Store-Seq, the shard's
// mutation high-water mark: "<epoch>-<seq>" where epoch is a
// per-process start nonce (a restart must never repeat a token) and
// seq the store's monotone mutation counter. Two equal tokens bracket
// a quiescent store, which is what makes the gateway's result cache
// coherent without any invalidation protocol. The stamp direction
// differs by request kind: mutation acks stamp lazily at first write
// (post-mutation — the gateway may advance its tracked mark before
// acking the client), while /v1/match snapshots the token before
// scoring (pre-read — the token lower-bounds the data scored, so the
// gateway never binds a result to a key newer than its contents).

package server

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Headers of the follower-read protocol.
const (
	HeaderStoreSeq        = "X-Store-Seq"
	HeaderMatchExclude    = "X-Match-Exclude"
	HeaderMatchOnly       = "X-Match-Only"
	HeaderMatchRequire    = "X-Match-Require"
	HeaderPatientStreams  = "X-Patient-Streams"
	HeaderPatientVertices = "X-Patient-Vertices"
	HeaderReplicated      = "X-Replicated"
)

// PatientFreshness is a shard's holdings for one patient: how many
// streams it stores and their total vertex count. The gateway compares
// a follower's counts against the primary's to decide whether the
// follower is within a query's max-lag bound.
type PatientFreshness struct {
	Streams  int `json:"streams"`
	Vertices int `json:"vertices"`
}

// MatchScope is the decoded per-leg scope of a scatter query. The zero
// value means "score everything local" — exactly the pre-follower-read
// behaviour.
type MatchScope struct {
	// Exclude lists patients this leg must not score (another leg owns
	// them). Ignored when Only is non-empty.
	Exclude []string
	// Only restricts the leg to exactly these patients (retry legs).
	Only []string
	// Require maps a patient to the minimum holdings this shard must
	// have to serve it; a shard below either bound refuses the patient.
	Require map[string]PatientFreshness
}

// Empty reports whether the scope imposes no restriction.
func (sc MatchScope) Empty() bool {
	return len(sc.Exclude) == 0 && len(sc.Only) == 0 && len(sc.Require) == 0
}

// SetHeaders encodes the scope onto an outgoing request's headers.
// Patient IDs are query-escaped so separators in IDs cannot corrupt
// the lists.
func (sc MatchScope) SetHeaders(h http.Header) {
	if len(sc.Only) > 0 {
		h.Set(HeaderMatchOnly, encodePatientList(sc.Only))
	} else if len(sc.Exclude) > 0 {
		h.Set(HeaderMatchExclude, encodePatientList(sc.Exclude))
	}
	if len(sc.Require) > 0 {
		parts := make([]string, 0, len(sc.Require))
		for pid, min := range sc.Require {
			parts = append(parts, fmt.Sprintf("%s=%d:%d", url.QueryEscape(pid), min.Streams, min.Vertices))
		}
		h.Set(HeaderMatchRequire, strings.Join(parts, ","))
	}
}

// ParseMatchScope decodes the scope headers of an incoming request.
func ParseMatchScope(h http.Header) (MatchScope, error) {
	var sc MatchScope
	var err error
	if sc.Only, err = decodePatientList(h.Get(HeaderMatchOnly)); err != nil {
		return sc, fmt.Errorf("%s: %w", HeaderMatchOnly, err)
	}
	if sc.Exclude, err = decodePatientList(h.Get(HeaderMatchExclude)); err != nil {
		return sc, fmt.Errorf("%s: %w", HeaderMatchExclude, err)
	}
	if raw := h.Get(HeaderMatchRequire); raw != "" {
		sc.Require = make(map[string]PatientFreshness)
		for _, part := range strings.Split(raw, ",") {
			pidEsc, bounds, ok := strings.Cut(part, "=")
			if !ok {
				return sc, fmt.Errorf("%s: entry %q missing '='", HeaderMatchRequire, part)
			}
			pid, err := url.QueryUnescape(pidEsc)
			if err != nil {
				return sc, fmt.Errorf("%s: %w", HeaderMatchRequire, err)
			}
			sStr, vStr, ok := strings.Cut(bounds, ":")
			if !ok {
				return sc, fmt.Errorf("%s: entry %q missing ':'", HeaderMatchRequire, part)
			}
			streams, err := strconv.Atoi(sStr)
			if err != nil {
				return sc, fmt.Errorf("%s: bad stream bound %q", HeaderMatchRequire, sStr)
			}
			vertices, err := strconv.Atoi(vStr)
			if err != nil {
				return sc, fmt.Errorf("%s: bad vertex bound %q", HeaderMatchRequire, vStr)
			}
			sc.Require[pid] = PatientFreshness{Streams: streams, Vertices: vertices}
		}
	}
	return sc, nil
}

func encodePatientList(pids []string) string {
	esc := make([]string, len(pids))
	for i, pid := range pids {
		esc[i] = url.QueryEscape(pid)
	}
	return strings.Join(esc, ",")
}

func decodePatientList(raw string) ([]string, error) {
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		pid, err := url.QueryUnescape(p)
		if err != nil {
			return nil, err
		}
		if pid != "" {
			out = append(out, pid)
		}
	}
	return out, nil
}

// storeSeqToken renders this server's mutation high-water mark.
func (s *Server) storeSeqToken() string {
	return fmt.Sprintf("%d-%d", s.seqEpoch, s.db.MutationSeq())
}

// seqStamp wraps a handler so every response carries X-Store-Seq,
// evaluated lazily at first write: an ingest response then reflects
// the post-mutation counter, which is what lets the gateway advance
// its cached high-water mark before acknowledging the client.
//
// A handler that has already set the header wins: reads snapshot
// their token BEFORE touching the store (see handleMatch) because a
// read's token must lower-bound its data, while the mutation acks
// this lazy path exists for must reflect the post-mutation counter.
func (s *Server) seqStamp(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&seqWriter{ResponseWriter: w, srv: s}, r)
	})
}

type seqWriter struct {
	http.ResponseWriter
	srv     *Server
	stamped bool
}

func (w *seqWriter) stamp() {
	if !w.stamped {
		w.stamped = true
		if w.Header().Get(HeaderStoreSeq) == "" {
			w.Header().Set(HeaderStoreSeq, w.srv.storeSeqToken())
		}
	}
}

func (w *seqWriter) WriteHeader(code int) {
	w.stamp()
	w.ResponseWriter.WriteHeader(code)
}

func (w *seqWriter) Write(b []byte) (int, error) {
	w.stamp()
	return w.ResponseWriter.Write(b)
}

// Flush keeps SSE streaming (subscription events) working through the
// wrapper.
func (w *seqWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// patientFreshnessLocked reports this shard's holdings for a patient.
// Callers hold s.mu (stream sets mutate under it).
func (s *Server) patientFreshnessLocked(pid string) PatientFreshness {
	p := s.db.Patient(pid)
	if p == nil {
		return PatientFreshness{}
	}
	fr := PatientFreshness{Streams: len(p.Streams)}
	for _, st := range p.Streams {
		fr.Vertices += st.Len()
	}
	return fr
}

// patientFreshness is patientFreshnessLocked behind the session lock.
func (s *Server) patientFreshness(pid string) PatientFreshness {
	s.lock()
	defer s.mu.Unlock()
	return s.patientFreshnessLocked(pid)
}

// matchScopeRestrict translates a scope into the matcher's patient
// restrict set, deciding refusals against local holdings. It returns
// a nil restrict for an empty scope (full local scan), the refused
// patients, and the local freshness of every patient named by the
// scope's Require/Only sets (piggybacked so the gateway's tracker
// converges from query traffic alone).
func (s *Server) matchScopeRestrict(sc MatchScope) (restrict map[string]bool, refused []string, fresh map[string]PatientFreshness) {
	if sc.Empty() {
		return nil, nil, nil
	}
	s.lock()
	defer s.mu.Unlock()
	fresh = make(map[string]PatientFreshness)
	admit := func(pid string) bool {
		min, bounded := sc.Require[pid]
		if !bounded {
			return true
		}
		fr := s.patientFreshnessLocked(pid)
		fresh[pid] = fr
		if fr.Streams < min.Streams || fr.Vertices < min.Vertices {
			refused = append(refused, pid)
			return false
		}
		return true
	}
	restrict = make(map[string]bool)
	if len(sc.Only) > 0 {
		for _, pid := range sc.Only {
			if _, bounded := sc.Require[pid]; !bounded {
				fresh[pid] = s.patientFreshnessLocked(pid)
			}
			if admit(pid) {
				restrict[pid] = true
			}
		}
		return restrict, refused, fresh
	}
	excluded := make(map[string]bool, len(sc.Exclude))
	for _, pid := range sc.Exclude {
		excluded[pid] = true
	}
	for _, p := range s.db.Patients() {
		pid := p.Info.ID
		if excluded[pid] || !admit(pid) {
			continue
		}
		restrict[pid] = true
	}
	// Require bounds for patients this shard does not hold at all still
	// produce a refusal (admit already recorded holders).
	for pid := range sc.Require {
		if _, seen := fresh[pid]; !seen {
			fresh[pid] = s.patientFreshnessLocked(pid)
			refused = append(refused, pid)
		}
	}
	return restrict, refused, fresh
}
