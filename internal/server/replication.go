// Replication: a primary ships each replicated session's WAL records
// to follower shards over POST /v1/replicate, synchronously with the
// ingest ack, so killing the primary loses no acknowledged vertex as
// long as one replica survives. Followers apply the records through
// the store (journaling them into their own WAL) but do not run a
// segmenter; POST /v1/sessions/{sid}/promote turns a caught-up replica
// into the live primary using the same resume path crash recovery
// uses, fenced against the deposed primary by a bumped epoch.
//
// Per-link sequencing: every replica link numbers its shipped records
// independently (dense, 1-based, carried in the record's LSN slot), so
// a follower's wal.Cursor detects drops and reorders without any
// cross-replica coordination. A gap (HTTP 409) or an overflowing
// pending queue collapses the link to snapshot catch-up: the next
// shipment is a single TypeReplicaSnapshot record carrying the
// session's complete state, which re-anchors the follower's cursor. A
// deposed primary is answered with HTTP 412 (stale epoch) and stops
// shipping.

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"stsmatch/internal/fsm"
	"stsmatch/internal/obs"
	"stsmatch/internal/store"
	"stsmatch/internal/wal"
)

// DefaultReplicateTimeout bounds one replication shipment; ingest acks
// wait on it, so it is deliberately short.
const DefaultReplicateTimeout = 5 * time.Second

// maxPendingRecords caps a link's unshipped backlog; past it the link
// collapses to snapshot catch-up instead of buffering without bound.
const maxPendingRecords = 1024

// replicator ships one session's records to its replica set.
type replicator struct {
	mu        sync.Mutex
	patientID string
	sessionID string
	source    string // primary's advertised base URL
	epoch     uint64
	deposed   bool // a replica rejected us with a newer epoch
	links     []*replicaLink

	// migration marks the temporary single-target link a live session
	// migration ships over (see migration.go); its traffic is counted
	// separately so drains are observable.
	migration bool
}

// isDeposed reports whether a replica fenced this replicator with a
// newer epoch — for a migration link, the signal that the target is
// already primary.
func (r *replicator) isDeposed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deposed
}

// hasTarget reports whether this replicator already ships to target.
func (r *replicator) hasTarget(target string) bool {
	for _, link := range r.links {
		if link.target == target {
			return true
		}
	}
	return false
}

// replicaLink is one primary→replica shipping lane.
type replicaLink struct {
	target   string
	nextSeq  uint64       // next sequence number to assign (1-based)
	pending  []wal.Record // enqueued, not yet acknowledged by the replica
	needSnap bool         // next shipment must be a full snapshot
	lastErr  string

	// shipMu serializes shipments on this link so concurrent ingest
	// flushes cannot interleave batches. Held across the HTTP call;
	// never acquired while holding replicator.mu.
	shipMu sync.Mutex
}

// newReplicator builds the shipping state for a session. snapshotFirst
// marks every link for snapshot catch-up before normal shipping — the
// mode a freshly promoted primary starts in, since its sequence
// numbering has no relation to the deposed primary's.
func newReplicator(patientID, sessionID, source string, epoch uint64, targets []string, snapshotFirst bool) *replicator {
	r := &replicator{patientID: patientID, sessionID: sessionID, source: source, epoch: epoch}
	for _, t := range targets {
		r.links = append(r.links, &replicaLink{target: t, nextSeq: 1, needSnap: snapshotFirst})
	}
	return r
}

// enqueue stages records on every link, assigning per-link sequence
// numbers. Callers hold s.mu (the session lock), which is what orders
// enqueues; records must be staged in apply order.
func (r *replicator) enqueue(recs ...wal.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, link := range r.links {
		if link.needSnap {
			// The backlog is superseded by the snapshot the next flush
			// ships; buffering more would only be thrown away then.
			continue
		}
		for _, rec := range recs {
			rec.LSN = link.nextSeq
			link.nextSeq++
			link.pending = append(link.pending, rec)
		}
		if len(link.pending) > maxPendingRecords {
			link.pending = nil
			link.needSnap = true
		}
	}
}

// ReplLinkStatus is one primary→replica shipping lane's sequence
// state, exposed in /v1/shard/stats and /v1/healthz so operators (and
// the gateway freshness tracker) can see which replica is behind.
type ReplLinkStatus struct {
	Target string `json:"target"`
	// ShippedSeq is the highest sequence number assigned on this link
	// (records staged for shipment); AckedSeq is the highest the
	// replica has contiguously acknowledged. Their difference is the
	// link's in-flight backlog in records.
	ShippedSeq uint64 `json:"shippedSeq"`
	AckedSeq   uint64 `json:"ackedSeq"`
	// SnapshotPending marks a link collapsed to snapshot catch-up: the
	// next shipment re-anchors the follower with full session state.
	SnapshotPending bool   `json:"snapshotPending,omitempty"`
	LastError       string `json:"lastError,omitempty"`
}

// linkStatuses snapshots every link's sequence state.
func (r *replicator) linkStatuses() []ReplLinkStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReplLinkStatus, 0, len(r.links))
	for _, link := range r.links {
		shipped := link.nextSeq - 1
		out = append(out, ReplLinkStatus{
			Target:          link.target,
			ShippedSeq:      shipped,
			AckedSeq:        shipped - uint64(len(link.pending)),
			SnapshotPending: link.needSnap,
			LastError:       link.lastErr,
		})
	}
	return out
}

// lag returns the largest unacknowledged backlog across links. A link
// in snapshot catch-up counts as one pending shipment.
func (r *replicator) lag() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	maxLag := 0
	for _, link := range r.links {
		n := len(link.pending)
		if link.needSnap {
			n++
		}
		if n > maxLag {
			maxLag = n
		}
	}
	return maxLag
}

// flush synchronously ships every link's backlog and returns one error
// string per link that could not be brought current. Callers must NOT
// hold s.mu: snapshot catch-up re-acquires it to read session state.
// The context carries the request's trace and request ID across the
// shipments, so a synchronous replication stall shows up as repl.ship
// spans inside the ingest trace.
func (s *Server) replFlush(ctx context.Context, r *replicator) []string {
	r.mu.Lock()
	links := append([]*replicaLink(nil), r.links...)
	deposed := r.deposed
	r.mu.Unlock()
	if deposed {
		return []string{"replication fenced: a replica reported a newer epoch"}
	}
	var (
		wg   sync.WaitGroup
		emu  sync.Mutex
		errs []string
	)
	for _, link := range links {
		wg.Add(1)
		go func(link *replicaLink) {
			defer wg.Done()
			if err := s.flushLink(ctx, r, link); err != nil {
				emu.Lock()
				errs = append(errs, fmt.Sprintf("%s: %v", link.target, err))
				emu.Unlock()
			}
		}(link)
	}
	wg.Wait()
	s.met.replLag.Set(int64(r.lag()))
	return errs
}

// flushLink brings one link current: ships the pending backlog, or a
// full snapshot when the link needs catch-up.
func (s *Server) flushLink(ctx context.Context, r *replicator, link *replicaLink) error {
	link.shipMu.Lock()
	defer link.shipMu.Unlock()

	for attempt := 0; attempt < 2; attempt++ {
		var batch wal.Batch
		r.mu.Lock()
		needSnap := link.needSnap
		if !needSnap {
			if len(link.pending) == 0 {
				r.mu.Unlock()
				return nil
			}
			batch = wal.Batch{
				Source:    r.source,
				SessionID: r.sessionID,
				PatientID: r.patientID,
				Epoch:     r.epoch,
				FirstSeq:  link.pending[0].LSN,
				Records:   append([]wal.Record(nil), link.pending...),
			}
		}
		r.mu.Unlock()
		if needSnap {
			var ok bool
			batch, ok = s.snapshotBatch(r, link)
			if !ok {
				return errors.New("session gone before snapshot catch-up")
			}
			s.met.replSnapshots.Inc()
		}

		status, sent, err := s.shipBatch(ctx, link.target, batch)
		switch {
		case err == nil && status == http.StatusOK:
			r.mu.Lock()
			// Drop everything the replica now has; records enqueued
			// during the shipment stay pending.
			acked := batch.FirstSeq + uint64(len(batch.Records))
			kept := link.pending[:0]
			for _, rec := range link.pending {
				if rec.LSN >= acked {
					kept = append(kept, rec)
				}
			}
			link.pending = kept
			link.lastErr = ""
			retry := len(link.pending) > 0 || link.needSnap
			r.mu.Unlock()
			s.met.replShipped.Add(len(batch.Records))
			if r.migration {
				s.met.migrationBytes.Add(sent)
			}
			if !retry {
				return nil
			}
			continue // ship the records that arrived mid-flight
		case err == nil && status == http.StatusConflict:
			// Sequence gap on the replica: catch up with a snapshot.
			r.mu.Lock()
			link.needSnap = true
			link.pending = nil
			r.mu.Unlock()
			continue
		case err == nil && status == http.StatusPreconditionFailed:
			// The replica follows a newer epoch: we are deposed. Stop
			// shipping; the new primary owns the session now.
			r.mu.Lock()
			r.deposed = true
			link.lastErr = "fenced by newer epoch"
			r.mu.Unlock()
			s.met.replShipErrors.Inc()
			return errors.New("fenced by newer epoch")
		default:
			if err == nil {
				err = fmt.Errorf("replica answered %d", status)
			}
			r.mu.Lock()
			if needSnap {
				link.needSnap = true // the snapshot never landed
			}
			link.lastErr = err.Error()
			r.mu.Unlock()
			s.met.replShipErrors.Inc()
			return err
		}
	}
	return errors.New("replica still behind after snapshot catch-up")
}

// snapshotBatch builds a single-record snapshot shipment carrying the
// session's complete state. It holds s.mu (then r.mu) so no enqueue
// can slip a record between the state read and the backlog reset —
// every staged-then-discarded record's effect is inside the snapshot.
func (s *Server) snapshotBatch(r *replicator, link *replicaLink) (wal.Batch, bool) {
	s.lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[r.sessionID]
	if !ok {
		return wal.Batch{}, false
	}
	var info store.PatientInfo
	if p := s.db.Patient(r.patientID); p != nil {
		info = p.Info
	}
	snap := wal.Record{
		Type:      wal.TypeReplicaSnapshot,
		Patient:   info,
		PatientID: r.patientID,
		SessionID: r.sessionID,
		Vertices:  sess.stream.Seq(),
		Samples:   uint64(sess.samples),
		AnchorT:   sess.lastT,
		AnchorPos: append([]float64(nil), sess.lastPos...),
	}
	// Ship the standing subscriptions scoped to this session along with
	// the snapshot, so a fresh (or lapsed) follower arms them before any
	// incremental appends arrive — a later promote then already has the
	// subscription state without any extra catch-up protocol.
	subs := s.subs.StatesInScope(r.patientID, r.sessionID)
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.LSN = link.nextSeq
	link.nextSeq++
	recs := make([]wal.Record, 0, 1+len(subs))
	recs = append(recs, snap)
	for i := range subs {
		rec := wal.Record{Type: wal.TypeSubUpsert, Sub: &subs[i], LSN: link.nextSeq}
		link.nextSeq++
		recs = append(recs, rec)
	}
	link.pending = nil
	link.needSnap = false
	return wal.Batch{
		Source:    r.source,
		SessionID: r.sessionID,
		PatientID: r.patientID,
		Epoch:     r.epoch,
		FirstSeq:  snap.LSN,
		Records:   recs,
	}, true
}

// shipBatch POSTs one encoded batch to a replica's /v1/replicate. A
// traced caller gets a "repl.ship" span per shipment (target, record
// count, snapshot-or-incremental, status), and the trace context plus
// request ID propagate to the follower, so one ingest's trace spans
// primary and replicas alike.
func (s *Server) shipBatch(ctx context.Context, target string, b wal.Batch) (status, sent int, err error) {
	sctx, sp := obs.StartSpan(ctx, "repl.ship")
	defer sp.Finish()
	sp.Annotate("target", target)
	sp.Annotate("sessionId", b.SessionID)
	sp.Annotate("records", len(b.Records))
	if len(b.Records) == 1 && b.Records[0].Type == wal.TypeReplicaSnapshot {
		sp.Annotate("snapshot", true)
	}
	payload := wal.EncodeBatch(b)
	req, err := http.NewRequestWithContext(sctx, http.MethodPost,
		target+"/v1/replicate", bytes.NewReader(payload))
	if err != nil {
		sp.Annotate("error", err.Error())
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	obs.InjectHeaders(sctx, req.Header)
	resp, err := s.replClient.Do(req)
	if err != nil {
		sp.Annotate("error", err.Error())
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	sp.Annotate("status", resp.StatusCode)
	return resp.StatusCode, len(payload), nil
}

// replicaState is a follower's view of one replicated session: the
// stream data lives in the database (and the follower's own WAL); this
// tracks the cursor and the prediction anchor needed for promotion.
type replicaState struct {
	patientID string
	source    string
	cursor    wal.Cursor
	stream    *store.Stream
	samples   uint64
	lastT     float64
	lastPos   []float64
}

// ReplicateResponse acknowledges an applied batch.
type ReplicateResponse struct {
	NextSeq uint64 `json:"nextSeq"`
	Epoch   uint64 `json:"epoch"`
	Applied int    `json:"applied"`
}

// handleReplicate is the follower half of log shipping.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	s.capBody(w, r)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, bodyErrCode(err), fmt.Errorf("reading batch: %w", err))
		return
	}
	b, err := wal.DecodeBatch(data)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(s.replFrom) > 0 {
		allowed := false
		for _, src := range s.replFrom {
			if src == b.Source {
				allowed = true
				break
			}
		}
		if !allowed {
			httpError(w, http.StatusForbidden, fmt.Errorf("source %q not in replicate-from allowlist", b.Source))
			return
		}
	}
	if b.SessionID == "" || b.PatientID == "" {
		httpError(w, http.StatusBadRequest, errors.New("batch missing session or patient ID"))
		return
	}

	s.lock()
	defer s.mu.Unlock()
	if _, live := s.sessions[b.SessionID]; live {
		// We are the primary for this session (promoted); the sender is
		// a deposed primary. Fence it.
		httpError(w, http.StatusPreconditionFailed,
			fmt.Errorf("session %q is live here; shipping epoch %d is stale", b.SessionID, b.Epoch))
		return
	}
	rs, ok := s.replicas[b.SessionID]
	if !ok {
		rs = &replicaState{patientID: b.PatientID, source: b.Source}
		s.replicas[b.SessionID] = rs
	}
	apply, err := rs.cursor.Accept(b)
	switch {
	case errors.Is(err, wal.ErrStaleEpoch):
		httpError(w, http.StatusPreconditionFailed, err)
		return
	case errors.Is(err, wal.ErrGap):
		httpError(w, http.StatusConflict, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	rs.source = b.Source
	for _, rec := range apply {
		if err := s.applyReplicated(rs, rec); err != nil {
			// The cursor has advanced past this record; a local apply
			// failure (e.g. non-advancing vertices) means divergence we
			// cannot hide. Force the primary to resend a snapshot.
			rs.cursor = wal.Cursor{Epoch: rs.cursor.Epoch}
			httpError(w, http.StatusConflict, fmt.Errorf("applying replicated record: %w", err))
			return
		}
	}
	s.met.replApplied.Add(len(apply))
	// Evaluate standing queries against the replicated appends so a
	// promoted follower already holds the same buffered events (same
	// sequence numbers) the primary derived.
	s.subs.Drain(r.Context(), s.db)
	writeJSON(w, http.StatusOK, ReplicateResponse{
		NextSeq: rs.cursor.Next,
		Epoch:   rs.cursor.Epoch,
		Applied: len(apply),
	})
}

// applyReplicated applies one shipped record to the follower's store.
// Mutations flow through the store hook, so a durable follower
// journals them into its own WAL exactly like local writes.
func (s *Server) applyReplicated(rs *replicaState, rec wal.Record) error {
	switch rec.Type {
	case wal.TypePatientUpsert:
		// Existing patients keep their info: rewriting it in place would
		// race matcher reads, and replicated upserts re-ship the same
		// record on catch-up anyway.
		if s.db.Patient(rec.Patient.ID) != nil {
			return nil
		}
		_, err := s.db.AddPatient(rec.Patient)
		return err
	case wal.TypeStreamOpen:
		_, err := s.replicaStream(rs, rec.PatientID, rec.SessionID)
		return err
	case wal.TypeVertexAppend:
		st, err := s.replicaStream(rs, rec.PatientID, rec.SessionID)
		if err != nil {
			return err
		}
		return st.Append(rec.Vertices...)
	case wal.TypeSessionAnchor:
		rs.samples = rec.Samples
		rs.lastT = rec.AnchorT
		rs.lastPos = append(rs.lastPos[:0], rec.AnchorPos...)
		return nil
	case wal.TypeSessionClose:
		delete(s.replicas, rec.SessionID)
		return nil
	case wal.TypeReplicaSnapshot:
		if rec.Patient.ID == rec.PatientID && rec.PatientID != "" && s.db.Patient(rec.PatientID) == nil {
			if _, err := s.db.AddPatient(rec.Patient); err != nil {
				return err
			}
		}
		st, err := s.replicaStream(rs, rec.PatientID, rec.SessionID)
		if err != nil {
			return err
		}
		// Append only the vertices past our current tail: a snapshot
		// re-ships the whole stream, and Append rejects regressions.
		vs := rec.Vertices
		if seq := st.Seq(); len(seq) > 0 {
			lastT := seq[len(seq)-1].T
			for len(vs) > 0 && vs[0].T <= lastT {
				vs = vs[1:]
			}
		}
		if len(vs) > 0 {
			if err := st.Append(vs...); err != nil {
				return err
			}
		}
		rs.samples = rec.Samples
		rs.lastT = rec.AnchorT
		rs.lastPos = append(rs.lastPos[:0], rec.AnchorPos...)
		return nil
	case wal.TypeSubUpsert:
		if rec.Sub == nil {
			return errors.New("replicated sub-upsert without state")
		}
		// A subscription spanning several replicated sessions arrives on
		// every link; apply only the newest copy (NextSeq is monotone) so
		// a stale duplicate cannot rewind the follower's event stream.
		if cur, ok := s.subs.State(rec.Sub.ID); ok && cur.NextSeq > rec.Sub.NextSeq {
			return nil
		}
		st := *rec.Sub
		if _, err := s.subs.Register(&st, nil); err != nil {
			return fmt.Errorf("arming replicated subscription %q: %w", st.ID, err)
		}
		s.walAppend(wal.Record{Type: wal.TypeSubUpsert, Sub: &st})
		return nil
	case wal.TypeSubDelete:
		if s.subs.Delete(rec.SubID) {
			s.walAppend(wal.Record{Type: wal.TypeSubDelete, SubID: rec.SubID})
		}
		return nil
	case wal.TypeSubAck:
		if s.subs.Ack(rec.SubID, rec.SubAck) {
			s.walAppend(wal.Record{Type: wal.TypeSubAck, SubID: rec.SubID, SubAck: rec.SubAck})
		}
		return nil
	default:
		// Unknown/irrelevant record types (e.g. a promote marker) are
		// ignored rather than rejected, for forward compatibility.
		return nil
	}
}

// replicaStream returns (creating if needed) the follower-side stream
// for a replicated session. A created stream is immediately journaled
// as closed, so a follower restart recovers the data as history
// instead of resurrecting the session as a live primary.
func (s *Server) replicaStream(rs *replicaState, patientID, sessionID string) (*store.Stream, error) {
	if rs.stream != nil {
		return rs.stream, nil
	}
	p := s.db.Patient(patientID)
	if p == nil {
		var err error
		p, err = s.db.AddPatient(store.PatientInfo{ID: patientID})
		if err != nil {
			return nil, err
		}
	}
	st := p.StreamBySession(sessionID)
	if st == nil {
		st = p.AddStream(sessionID)
		st.EnableIndex()
		s.walAppend(wal.Record{Type: wal.TypeSessionClose, SessionID: sessionID})
	}
	rs.stream = st
	return st, nil
}

// PromoteRequest turns a replica into the live primary for a session.
// Replicate lists the new primary's own replica targets (the surviving
// members of the placement); they are brought current via snapshot.
type PromoteRequest struct {
	Replicate []string `json:"replicate,omitempty"`
}

// PromoteResponse reports the promoted session.
type PromoteResponse struct {
	PatientID string `json:"patientId"`
	SessionID string `json:"sessionId"`
	Epoch     uint64 `json:"epoch"`
	Vertices  int    `json:"vertices"`
	Samples   int    `json:"totalSamples"`
}

// handlePromote fails a replicated session over to this node: the
// replica's stream becomes the live session, its segmenter re-primed
// from the PLR tail exactly like crash recovery, under a bumped epoch
// that fences the deposed primary.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	s.capBody(w, r)
	var req PromoteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, bodyErrCode(err), fmt.Errorf("decoding promote request: %w", err))
		return
	}

	s.lock()
	defer s.mu.Unlock()
	if sess, live := s.sessions[sid]; live {
		// Already primary here — promotion is idempotent so a gateway
		// retry after a dropped response converges.
		epoch := uint64(0)
		if sess.repl != nil {
			epoch = sess.repl.epoch
		}
		writeJSON(w, http.StatusOK, PromoteResponse{
			PatientID: sess.patientID, SessionID: sid, Epoch: epoch,
			Vertices: sess.stream.Len(), Samples: sess.samples,
		})
		return
	}
	rs, ok := s.replicas[sid]
	if !ok || rs.stream == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no replica state for session %q", sid))
		return
	}
	seg, err := fsm.New(s.segCfg)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	seq := rs.stream.Seq()
	if err := seg.Prime(seq); err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("priming segmenter: %w", err))
		return
	}
	sess := &session{
		patientID: rs.patientID,
		sessionID: sid,
		seg:       seg,
		stream:    rs.stream,
		samples:   int(rs.samples),
		lastT:     rs.lastT,
		lastPos:   append([]float64(nil), rs.lastPos...),
		resumed:   true,
	}
	if n := len(seq); n > 0 {
		sess.resumedAt = seq[n-1].T
		if sess.lastT < seq[n-1].T {
			sess.lastT = seq[n-1].T
			sess.lastPos = append([]float64(nil), seq[n-1].Pos...)
		}
	}
	epoch := rs.cursor.Epoch + 1
	if s.wal != nil {
		// Journal (and flush) the promotion before going live: a 200
		// must mean a restart resumes this session as primary.
		err := s.wal.log.AppendCtx(r.Context(), wal.Record{
			Type:      wal.TypeReplicaPromote,
			PatientID: sess.patientID,
			SessionID: sid,
			Samples:   uint64(sess.samples),
			AnchorT:   sess.lastT,
			AnchorPos: sess.lastPos,
			Epoch:     epoch,
		})
		if err == nil {
			err = s.wal.log.SyncCtx(r.Context())
		}
		if err != nil {
			s.wal.lastErr.Store(err.Error())
			httpError(w, http.StatusInternalServerError, fmt.Errorf("flushing promotion: %w", err))
			return
		}
	}
	delete(s.replicas, sid)
	if len(req.Replicate) > 0 {
		sess.repl = newReplicator(sess.patientID, sid, s.advertise, epoch, req.Replicate, true)
	}
	s.sessions[sid] = sess
	s.met.sessionsOpen.Set(int64(len(s.sessions)))
	s.met.replPromotions.Inc()
	s.log.Info("session promoted to primary",
		slog.String("patientId", sess.patientID),
		slog.String("sessionId", sid),
		slog.Uint64("epoch", epoch),
		slog.Int("vertices", len(seq)),
		slog.Int("replicas", len(req.Replicate)))
	writeJSON(w, http.StatusOK, PromoteResponse{
		PatientID: sess.patientID,
		SessionID: sid,
		Epoch:     epoch,
		Vertices:  len(seq),
		Samples:   sess.samples,
	})
}

// ReplSessionHealth details one replicated session's shipping state in
// healthz: the per-link assigned/acked sequence numbers.
type ReplSessionHealth struct {
	SessionID string           `json:"sessionId"`
	PatientID string           `json:"patientId"`
	Epoch     uint64           `json:"epoch"`
	Links     []ReplLinkStatus `json:"links"`
}

// ReplicationHealth is the replication section of healthz.
type ReplicationHealth struct {
	PrimarySessions int    `json:"primarySessions"` // sessions this node ships
	ReplicaSessions int    `json:"replicaSessions"` // sessions this node follows
	MaxLagRecords   int    `json:"maxLagRecords"`   // worst unshipped backlog
	LastShipError   string `json:"lastShipError,omitempty"`
	// Sessions details each primary session's links, sorted by session
	// ID, so a single healthz poll shows exactly which replica of which
	// session is behind (not just the worst aggregate).
	Sessions []ReplSessionHealth `json:"sessions,omitempty"`
}

// replicationHealth summarizes replication for /v1/healthz. Returns
// nil when this node neither ships nor follows anything.
func (s *Server) replicationHealth() *ReplicationHealth {
	s.lock()
	defer s.mu.Unlock()
	h := &ReplicationHealth{ReplicaSessions: len(s.replicas)}
	for sid, sess := range s.sessions {
		if sess.repl == nil {
			continue
		}
		h.PrimarySessions++
		if lag := sess.repl.lag(); lag > h.MaxLagRecords {
			h.MaxLagRecords = lag
		}
		detail := ReplSessionHealth{
			SessionID: sid,
			PatientID: sess.patientID,
			Epoch:     sess.repl.epoch,
			Links:     sess.repl.linkStatuses(),
		}
		for _, link := range detail.Links {
			if link.LastError != "" {
				h.LastShipError = link.LastError
			}
		}
		h.Sessions = append(h.Sessions, detail)
	}
	sort.Slice(h.Sessions, func(a, b int) bool { return h.Sessions[a].SessionID < h.Sessions[b].SessionID })
	if h.PrimarySessions == 0 && h.ReplicaSessions == 0 {
		return nil
	}
	return h
}
