package server

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
)

// scrapeMetrics fetches /metrics and parses the Prometheus text
// format into name{labels} -> value.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// ingestSeconds streams seconds of synthetic respiration into an open
// session in one batch, shifting sample times by tOffset so repeated
// calls keep the stream's time strictly increasing. It returns the
// last timestamp fed, for chaining follow-up batches.
func ingestSeconds(t *testing.T, baseURL, sid string, seed int64, seconds, tOffset float64) float64 {
	t.Helper()
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), seed)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(seconds)
	batch := make([]SampleIn, len(samples))
	for i, s := range samples {
		batch[i] = SampleIn{T: s.T + tOffset, Pos: s.Pos}
	}
	resp := postJSON(t, baseURL+"/v1/sessions/"+sid+"/samples", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	return batch[len(batch)-1].T
}

func TestHealthzEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "HP", SessionID: "HS"})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	h := decode[HealthzResponse](t, resp)
	if h.Status != "ok" || h.OpenSessions != 1 || h.Patients != 1 {
		t.Errorf("healthz = %+v", h)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", h.UptimeSeconds)
	}
}

func TestRequestIDOnResponses(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id")
	}
}

// TestMetricsEndpoint runs a scripted session and asserts the scraped
// metrics are present, plausible, and monotonic across scrapes.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "MP", SessionID: "MS"})
	lastT := ingestSeconds(t, ts.URL, "MS", 7, 60, 0)
	if resp, err := http.Get(ts.URL + "/v1/sessions/MS/predict?delta=200ms"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
	}

	first := scrapeMetrics(t, ts.URL)
	// The registry is process-global, so values accumulate across
	// tests: assert presence and nonzero, not exact counts.
	for _, name := range []string{
		"stsmatch_fsm_samples_total",
		"stsmatch_fsm_vertices_total",
		"stsmatch_fsm_state_transitions_total",
		"stsmatch_matcher_searches_total",
		"stsmatch_matcher_candidates_scanned_total",
		"stsmatch_server_samples_in_total",
		"stsmatch_store_vertices",
		`stsmatch_http_requests_total{route="ingest_samples",code="2xx"}`,
		`stsmatch_http_requests_total{route="predict",code="2xx"}`,
		`stsmatch_http_request_seconds_count{route="predict"}`,
		`stsmatch_server_predictions_total{outcome="ok"}`,
		"stsmatch_server_predict_seconds_count",
		"stsmatch_server_lock_wait_seconds_count",
	} {
		if v, ok := first[name]; !ok {
			t.Errorf("metric %s missing from scrape", name)
		} else if v <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, v)
		}
	}
	// Histogram bucket lines must be cumulative and end at +Inf ==
	// count.
	inf := first[`stsmatch_http_request_seconds_bucket{route="predict",le="+Inf"}`]
	cnt := first[`stsmatch_http_request_seconds_count{route="predict"}`]
	if inf != cnt {
		t.Errorf("+Inf bucket %v != count %v", inf, cnt)
	}

	// More traffic, then re-scrape: counters must be monotonic.
	ingestSeconds(t, ts.URL, "MS", 8, 30, lastT+0.1)
	if resp, err := http.Get(ts.URL + "/v1/sessions/MS/predict?delta=200ms"); err == nil {
		resp.Body.Close()
	}
	second := scrapeMetrics(t, ts.URL)
	for name, v1 := range first {
		if !strings.Contains(name, "_total") && !strings.Contains(name, "_count") &&
			!strings.Contains(name, "_bucket") {
			continue
		}
		if v2, ok := second[name]; ok && v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v", name, v1, v2)
		}
	}
	if second["stsmatch_fsm_samples_total"] <= first["stsmatch_fsm_samples_total"] {
		t.Error("fsm samples counter did not advance with new traffic")
	}
}

// seqStates builds a PLR sequence with the given per-vertex states,
// unit-spaced times starting at t0, and a zigzag 1-D position.
func seqStates(states string, t0 float64) plr.Sequence {
	out := make(plr.Sequence, len(states))
	for i, ch := range []byte(states) {
		var st plr.State
		switch ch {
		case 'E':
			st = plr.EX
		case 'O':
			st = plr.EOE
		case 'I':
			st = plr.IN
		default:
			st = plr.IRR
		}
		out[i] = plr.Vertex{T: t0 + float64(i), Pos: []float64{float64(i % 3)}, State: st}
	}
	return out
}

// TestFindSimilarSeesPostEnableIndexesAppends is the stale-index
// regression guard: vertices appended to a stream after
// DB.EnableIndexes() must be visible to FindSimilar (the live
// ingestion path appends to indexed streams continuously).
func TestFindSimilarSeesPostEnableIndexesAppends(t *testing.T) {
	db := store.NewDB()
	p, err := db.AddPatient(store.PatientInfo{ID: "H"})
	if err != nil {
		t.Fatal(err)
	}
	hist := p.AddStream("hist")
	if err := hist.Append(seqStates("EOIEOIEOIEOI", 0)...); err != nil {
		t.Fatal(err)
	}
	db.EnableIndexes()

	// The suffix's state pattern EEOOII occurs nowhere in the prefix,
	// so a match can only come from post-index appends.
	if err := hist.Append(seqStates("EEOOII", 12)...); err != nil {
		t.Fatal(err)
	}

	window := hist.Seq()[12:18]
	qseq := make(plr.Sequence, len(window))
	for i, v := range window {
		qseq[i] = plr.Vertex{T: v.T + 1000, Pos: append([]float64(nil), v.Pos...), State: v.State}
	}
	m, err := core.NewMatcher(db, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	matches, err := m.FindSimilar(core.NewQuery(qseq, "Q", "other"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("FindSimilar found no matches in the post-EnableIndexes suffix (stale index)")
	}
	if matches[0].Start != 12 || matches[0].Distance != 0 {
		t.Errorf("best match = start %d dist %v, want start 12 dist 0",
			matches[0].Start, matches[0].Distance)
	}
}

// TestPredictSeesAppendedLiveHistory asserts end-to-end that a live
// session's growing stream stays matchable: predictions keep working
// as the indexed stream is extended through the API.
func TestPredictSeesAppendedLiveHistory(t *testing.T) {
	ts := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "LP", SessionID: "LS"})

	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(120)
	feed := func(from, to int) {
		batch := make([]SampleIn, 0, to-from)
		for _, s := range samples[from:to] {
			batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
		}
		resp := postJSON(t, ts.URL+"/v1/sessions/LS/samples", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	predict := func() PredictionResponse {
		resp, err := http.Get(ts.URL + "/v1/sessions/LS/predict?delta=200ms")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
		return decode[PredictionResponse](t, resp)
	}

	cut := len(samples) / 2
	feed(0, cut)
	p1 := predict()
	if p1.NumMatches == 0 {
		t.Fatal("no matches on the initial live stream")
	}
	feed(cut, len(samples))
	p2 := predict()
	if p2.NumMatches == 0 {
		t.Fatal("no matches after extending the live stream (stale index)")
	}
}

// TestConcurrentScrapesDuringIngestion hammers /metrics and predict
// while samples stream in; run with -race it verifies the whole
// instrumented pipeline is data-race free.
func TestConcurrentScrapesDuringIngestion(t *testing.T) {
	ts := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "CP", SessionID: "CS"})

	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 5)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(60)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				scrapeMetrics(t, ts.URL)
				if resp, err := http.Get(ts.URL + "/v1/sessions/CS/predict?delta=100ms"); err == nil {
					resp.Body.Close()
				}
			}
		}()
	}

	const chunk = 100
	for i := 0; i < len(samples); i += chunk {
		end := min(i+chunk, len(samples))
		batch := make([]SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
		}
		resp := postJSON(t, ts.URL+"/v1/sessions/CS/samples", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	close(done)
	wg.Wait()

	m := scrapeMetrics(t, ts.URL)
	if m["stsmatch_fsm_samples_total"] == 0 || m["stsmatch_http_in_flight"] != 0 {
		t.Errorf("post-run metrics: samples=%v inFlight=%v",
			m["stsmatch_fsm_samples_total"], m["stsmatch_http_in_flight"])
	}
}
