package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/signal"
)

// newDurableServer builds a Server journaling to dir with fsync on
// every append, so abandoning it without Close models a hard crash
// that loses nothing already acknowledged.
func newDurableServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), Options{
		DataDir:       dir,
		FsyncInterval: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON[T any](t *testing.T, url string) (T, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var zero T
		return zero, resp.StatusCode
	}
	return decode[T](t, resp), resp.StatusCode
}

// TestCrashRecovery ingests through the public API, abandons the
// server without any shutdown (simulating kill -9), restarts on the
// same data directory, and requires the recovered session to carry
// the exact PLR and prediction state it had before the crash.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	// --- Server A: ingest, then crash. ---
	_, ts := newDurableServer(t, dir)
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 7)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(60)
	for i := 0; i < len(samples); i += 256 {
		end := min(i+256, len(samples))
		batch := make([]SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
		}
		if resp := postJSON(t, ts.URL+"/v1/sessions/S01/samples", batch); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	beforePLR, code := getJSON[PLRResponse](t, ts.URL+"/v1/sessions/S01/plr")
	if code != http.StatusOK {
		t.Fatalf("plr status %d", code)
	}
	beforePred, code := getJSON[PredictionResponse](t, ts.URL+"/v1/sessions/S01/predict?delta=200ms")
	if code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	// Crash: no srv.Close(), no snapshot — only the WAL survives.
	ts.Close()

	// --- Server B: recover from the same directory. ---
	_, ts2 := newDurableServer(t, dir)
	hz, code := getJSON[HealthzResponse](t, ts2.URL+"/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if hz.WAL == nil || !hz.WAL.Enabled {
		t.Fatal("healthz reports no WAL after durable restart")
	}
	if hz.WAL.RecordsReplayed == 0 {
		t.Error("recovery replayed no records")
	}
	if hz.WAL.RecordsTruncated != 0 {
		t.Errorf("clean WAL reported %d truncated records", hz.WAL.RecordsTruncated)
	}
	if hz.WAL.ResumedSessions != 1 {
		t.Errorf("ResumedSessions = %d, want 1", hz.WAL.ResumedSessions)
	}
	if hz.OpenSessions != 1 {
		t.Errorf("OpenSessions = %d after recovery, want 1", hz.OpenSessions)
	}

	// The recovered PLR must match the pre-crash PLR vertex for vertex.
	afterPLR, code := getJSON[PLRResponse](t, ts2.URL+"/v1/sessions/S01/plr")
	if code != http.StatusOK {
		t.Fatalf("recovered plr status %d", code)
	}
	if len(afterPLR.Vertices) != len(beforePLR.Vertices) {
		t.Fatalf("recovered %d vertices, want %d", len(afterPLR.Vertices), len(beforePLR.Vertices))
	}
	for i, v := range beforePLR.Vertices {
		w := afterPLR.Vertices[i]
		if v.T != w.T || v.State != w.State || len(v.Pos) != len(w.Pos) {
			t.Fatalf("vertex %d mismatch: before %+v, after %+v", i, v, w)
		}
		for d := range v.Pos {
			if v.Pos[d] != w.Pos[d] {
				t.Fatalf("vertex %d dim %d: before %v, after %v", i, d, v.Pos[d], w.Pos[d])
			}
		}
	}
	if afterPLR.StateString != beforePLR.StateString {
		t.Errorf("state string changed across recovery: %q vs %q",
			beforePLR.StateString, afterPLR.StateString)
	}

	// The prediction must match: the anchor record journals the exact
	// last raw observation, so the recovered query is identical.
	afterPred, code := getJSON[PredictionResponse](t, ts2.URL+"/v1/sessions/S01/predict?delta=200ms")
	if code != http.StatusOK {
		t.Fatalf("recovered predict status %d", code)
	}
	if len(afterPred.Pos) != len(beforePred.Pos) {
		t.Fatalf("prediction dims: %d vs %d", len(afterPred.Pos), len(beforePred.Pos))
	}
	for d := range beforePred.Pos {
		if math.Abs(afterPred.Pos[d]-beforePred.Pos[d]) > 1e-9 {
			t.Errorf("prediction dim %d: before %v, after %v", d, beforePred.Pos[d], afterPred.Pos[d])
		}
	}
	if afterPred.NumMatches != beforePred.NumMatches {
		t.Errorf("NumMatches: before %d, after %d", beforePred.NumMatches, afterPred.NumMatches)
	}

	// The resumed session keeps accepting samples where it left off.
	tail := gen.Generate(70)
	var cont []SampleIn
	lastT := samples[len(samples)-1].T
	for _, s := range tail {
		if s.T > lastT {
			cont = append(cont, SampleIn{T: s.T, Pos: s.Pos})
		}
	}
	resp = postJSON(t, ts2.URL+"/v1/sessions/S01/samples", cont)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest status %d", resp.StatusCode)
	}
	sr := decode[SamplesResponse](t, resp)
	if sr.Accepted != len(cont) {
		t.Errorf("post-recovery Accepted = %d, want %d", sr.Accepted, len(cont))
	}
}

// TestRecoverySkipsClosedSessions verifies DELETE is durable: a closed
// session must not resurrect on restart, while its stream stays in the
// database as history.
func TestRecoverySkipsClosedSessions(t *testing.T) {
	dir := t.TempDir()
	_, ts := newDurableServer(t, dir)

	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var batch []SampleIn
	for _, s := range gen.Generate(30) {
		batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
	}
	if resp := postJSON(t, ts.URL+"/v1/sessions/S01/samples", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/S01", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	ts.Close()

	_, ts2 := newDurableServer(t, dir)
	hz, _ := getJSON[HealthzResponse](t, ts2.URL+"/v1/healthz")
	if hz.OpenSessions != 0 {
		t.Errorf("closed session resurrected: OpenSessions = %d", hz.OpenSessions)
	}
	if hz.Vertices == 0 {
		t.Error("closed session's history lost on recovery")
	}
}

// TestCloseSessionFailsWhenWALFlushFails: with durability on, a close
// whose WAL flush cannot succeed must not claim success — the session
// stays open (retryable) and the response is a 500, never a 200 that a
// crash would contradict.
func TestCloseSessionFailsWhenWALFlushFails(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newDurableServer(t, dir)
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	// Close the log out from under the server: every further append
	// fails, modeling an unwritable WAL.
	if err := srv.wal.log.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/S01", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusInternalServerError {
		t.Errorf("delete with failed WAL flush: status %d, want 500", dresp.StatusCode)
	}
	if n := srv.OpenSessions(); n != 1 {
		t.Errorf("session removed despite failed close flush: OpenSessions = %d", n)
	}
}

// TestCloseSessionEndpoint exercises DELETE /v1/sessions/{sid} on an
// in-memory server.
func TestCloseSessionEndpoint(t *testing.T) {
	ts := newTestServer(t, nil)

	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var batch []SampleIn
	for _, s := range gen.Generate(30) {
		batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
	}
	if resp := postJSON(t, ts.URL+"/v1/sessions/S01/samples", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	del := func() *http.Response {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/S01", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	resp = del()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	closed := decode[CloseSessionResponse](t, resp)
	if closed.PatientID != "P01" || closed.SessionID != "S01" {
		t.Errorf("close response = %+v", closed)
	}
	if closed.TotalSamples != len(batch) {
		t.Errorf("TotalSamples = %d, want %d", closed.TotalSamples, len(batch))
	}
	if closed.Vertices == 0 {
		t.Error("close response reports zero vertices")
	}

	// The session is gone: further ingestion and a second DELETE 404.
	if resp := postJSON(t, ts.URL+"/v1/sessions/S01/samples", batch); resp.StatusCode != http.StatusNotFound {
		t.Errorf("ingest after close status %d, want 404", resp.StatusCode)
	}
	if resp := del(); resp.StatusCode != http.StatusNotFound {
		t.Errorf("second delete status %d, want 404", resp.StatusCode)
	}
	hz, _ := getJSON[HealthzResponse](t, ts.URL+"/v1/healthz")
	if hz.OpenSessions != 0 {
		t.Errorf("OpenSessions = %d after close, want 0", hz.OpenSessions)
	}
}
