// Signature-index wiring: the server owns the process-wide
// window-signature index (internal/sigindex), builds it over the
// database at startup, keeps it current through the store mutation
// hook, and persists its configuration through the WAL so a recovered
// server rebuilds exactly the index it crashed with.

package server

import (
	"fmt"
	"log/slog"

	"stsmatch/internal/sigindex"
	"stsmatch/internal/store"
	"stsmatch/internal/wal"
)

// setupMatchIndex enables the signature index when the operator asked
// for it (Options.MatchIndex) or when a recovered WAL says it was
// enabled before the crash — the persisted configuration wins over the
// flag, so the index cannot silently change shape (or vanish) across a
// restart. Called after durability recovery and before the matcher
// pool is built.
func (s *Server) setupMatchIndex(opts Options) error {
	var cfg sigindex.Config
	persisted := s.wal != nil && s.wal.recovery.IndexConfig != nil
	switch {
	case persisted:
		ic := s.wal.recovery.IndexConfig
		cfg = sigindex.Config{
			MinSegments: int(ic.MinSegments),
			MaxSegments: int(ic.MaxSegments),
			AmpBucket:   ic.AmpBucket,
			DurBucket:   ic.DurBucket,
		}
	case opts.MatchIndex:
		cfg = sigindex.DefaultConfig()
	default:
		return nil
	}
	idx, err := sigindex.New(cfg)
	if err != nil {
		return fmt.Errorf("server: signature index: %w", err)
	}
	idx.BuildFrom(s.db)
	// Registered after the WAL hook, so every mutation is journaled
	// before the index absorbs it.
	s.db.AddMutationHook(idx.OnMutation)
	s.index = idx
	s.params.UseIndex = true
	if s.wal != nil {
		wc := wal.IndexConfig{
			MinSegments: uint32(cfg.MinSegments),
			MaxSegments: uint32(cfg.MaxSegments),
			AmpBucket:   cfg.AmpBucket,
			DurBucket:   cfg.DurBucket,
		}
		// Stamp the log so future snapshots embed the config, and — on
		// first enablement — journal it so recovery sees it even before
		// any snapshot exists.
		s.wal.log.SetIndexConfig(&wc)
		if !persisted {
			s.walAppend(wal.Record{Type: wal.TypeIndexConfig, Index: wc})
		}
	}
	st := idx.Stats()
	s.log.Info("signature index enabled",
		slog.Bool("recovered", persisted),
		slog.Int("streams", st.Streams),
		slog.Int64("windows", st.Windows),
		slog.Int("minSegments", cfg.MinSegments),
		slog.Int("maxSegments", cfg.MaxSegments))
	return nil
}

// DB exposes the server's live database (crash-recovery tests compare
// scan and probed matchers over it).
func (s *Server) DB() *store.DB { return s.db }

// SigIndex exposes the signature index; nil when disabled.
func (s *Server) SigIndex() *sigindex.Index { return s.index }

// IndexHealth is the signature-index section of the healthz payload.
type IndexHealth struct {
	Enabled         bool    `json:"enabled"`
	Streams         int     `json:"streams"`
	PoisonedStreams int     `json:"poisonedStreams"`
	Signatures      int     `json:"signatures"`
	Windows         int64   `json:"windows"`
	MinSegments     int     `json:"minSegments"`
	MaxSegments     int     `json:"maxSegments"`
	AmpBucket       float64 `json:"ampBucket"`
	DurBucket       float64 `json:"durBucket"`
}

// indexHealth summarizes the signature index for /v1/healthz.
func (s *Server) indexHealth() *IndexHealth {
	if s.index == nil {
		return nil
	}
	st := s.index.Stats()
	return &IndexHealth{
		Enabled:         true,
		Streams:         st.Streams,
		PoisonedStreams: st.PoisonedStreams,
		Signatures:      st.Signatures,
		Windows:         st.Windows,
		MinSegments:     st.Config.MinSegments,
		MaxSegments:     st.Config.MaxSegments,
		AmpBucket:       st.Config.AmpBucket,
		DurBucket:       st.Config.DurBucket,
	}
}
