package server

import "stsmatch/internal/obs"

// serverMetrics bundles the server's handles into the shared default
// registry. Registration is idempotent, so every Server in a process
// (tests start many) shares the same underlying metrics.
type serverMetrics struct {
	http           *obs.HTTPMetrics
	sessionsOpen   *obs.Gauge
	sessionsClosed *obs.Counter
	samplesIn      *obs.Counter
	verticesOut    *obs.Counter
	predictions    *obs.CounterVec // outcome: ok, no_matches, insufficient_history, error
	lockWait       *obs.Histogram
	predictWork    *obs.Histogram

	// Replication (see replication.go).
	replShipped    *obs.Counter
	replShipErrors *obs.Counter
	replApplied    *obs.Counter
	replSnapshots  *obs.Counter
	replLag        *obs.Gauge
	replPromotions *obs.Counter

	// Live session migration (see migration.go).
	migrations         *obs.Counter
	migrationFailures  *obs.Counter
	migrationsInFlight *obs.Gauge
	migrationBytes     *obs.Counter
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	return &serverMetrics{
		http: obs.NewHTTPMetrics(r, "stsmatch"),
		sessionsOpen: r.Gauge("stsmatch_sessions_open",
			"Ingestion sessions currently open."),
		sessionsClosed: r.Counter("stsmatch_sessions_closed_total",
			"Ingestion sessions closed via DELETE /v1/sessions/{sid}."),
		samplesIn: r.Counter("stsmatch_server_samples_in_total",
			"Raw samples accepted by the ingestion API."),
		verticesOut: r.Counter("stsmatch_server_vertices_out_total",
			"PLR vertices appended to live session streams."),
		predictions: r.CounterVec("stsmatch_server_predictions_total",
			"Prediction requests by outcome.", "outcome"),
		lockWait: r.Histogram("stsmatch_server_lock_wait_seconds",
			"Time handlers spent waiting for the server session lock (contention).",
			obs.DefLatencyBuckets),
		predictWork: r.Histogram("stsmatch_server_predict_seconds",
			"Similarity search plus prediction wall time, outside the session lock.",
			obs.DefLatencyBuckets),
		replShipped: r.Counter("stsmatch_repl_shipped_records_total",
			"Replication records acknowledged by replicas."),
		replShipErrors: r.Counter("stsmatch_repl_ship_errors_total",
			"Replication shipments that failed (timeout, refusal, fencing)."),
		replApplied: r.Counter("stsmatch_repl_applied_records_total",
			"Replication records applied as a follower."),
		replSnapshots: r.Counter("stsmatch_repl_snapshots_total",
			"Snapshot catch-up shipments sent to lagging replicas."),
		replLag: r.Gauge("stsmatch_repl_lag_records",
			"Worst unacknowledged replication backlog across sessions and links."),
		replPromotions: r.Counter("stsmatch_repl_promotions_total",
			"Replica sessions promoted to primary (failovers served)."),
		migrations: r.Counter("stsmatch_migrations_total",
			"Live sessions migrated away from this node (cutover committed)."),
		migrationFailures: r.Counter("stsmatch_migration_failures_total",
			"Migration attempts that aborted before commit (catch-up or cutover failed)."),
		migrationsInFlight: r.Gauge("stsmatch_migration_sessions_in_flight",
			"Sessions currently mid-migration on this node (source side)."),
		migrationBytes: r.Counter("stsmatch_migration_bytes_shipped_total",
			"Bytes of catch-up batches shipped to migration targets."),
	}
}
