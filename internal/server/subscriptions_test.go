package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
	"stsmatch/internal/subscribe"
)

// matchKey identifies one matched window independent of how it was
// found (standing query event vs. polled /v1/match result).
type matchKey struct {
	patientID, sessionID string
	start, n             int
}

func oracleSet(t *testing.T, url string, req MatchRequest) map[matchKey]RemoteMatch {
	t.Helper()
	resp := postJSON(t, url+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oracle match status %d", resp.StatusCode)
	}
	mr := decode[MatchResponse](t, resp)
	out := make(map[matchKey]RemoteMatch, len(mr.Matches))
	for _, m := range mr.Matches {
		out[matchKey{m.PatientID, m.SessionID, m.Start, m.N}] = m
	}
	return out
}

func pollEvents(t *testing.T, url, id string, after uint64) SubEventsPoll {
	t.Helper()
	got, code := getJSON[SubEventsPoll](t, fmt.Sprintf("%s/v1/subscriptions/%s/events?mode=poll&after=%d", url, id, after))
	if code != http.StatusOK {
		t.Fatalf("poll status %d", code)
	}
	return got
}

func ingestChunks(t *testing.T, url string, samples []plr.Sample, chunk int) {
	t.Helper()
	for i := 0; i < len(samples); i += chunk {
		end := min(i+chunk, len(samples))
		batch := make([]SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
		}
		if resp := postJSON(t, url+"/v1/sessions/S01/samples", batch); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
}

// TestStandingQueryMatchesPolledOracle is the incremental-vs-oracle
// equivalence test: a standing query's event stream must equal the
// set difference of /v1/match polls taken before registration and
// after each ingested batch — same windows, same relation, and
// bit-identical distances and weights — because both sides run the
// same funnel over the same append-only stream.
func TestStandingQueryMatchesPolledOracle(t *testing.T) {
	ts, seq := matchTestServer(t) // P01/S01 with 45 s ingested
	qseq := seq[len(seq)-8:]

	// Patient-scoped provenance, exactly like the oracle query: the
	// relation is same-patient, so no self-exclusion complicates the
	// diff.
	oracleReq := MatchRequest{Seq: qseq, PatientID: "P01"}
	baseline := oracleSet(t, ts.URL, oracleReq)

	resp := postJSON(t, ts.URL+"/v1/subscriptions", SubscriptionRequest{
		ID: "oracle-eq", Seq: qseq, PatientID: "P01",
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	sr := decode[SubscriptionResponse](t, resp)
	if sr.PatternN != len(qseq) {
		t.Errorf("patternN = %d, want %d", sr.PatternN, len(qseq))
	}

	// Continue the same deterministic signal: re-seeding and replaying
	// the first 45 s leaves the generator positioned exactly where
	// matchTestServer's ingest stopped, so the second Generate call
	// yields only the continuation.
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 7)
	if err != nil {
		t.Fatal(err)
	}
	gen.Generate(45)
	tail := gen.Generate(90)
	if len(tail) == 0 {
		t.Fatal("no continuation samples")
	}

	seen := make(map[matchKey]RemoteMatch, len(baseline))
	for k, v := range baseline {
		seen[k] = v
	}
	var events []SubEventOut
	cursor := uint64(0)
	for i := 0; i < len(tail); i += 512 {
		end := min(i+512, len(tail))
		ingestChunks(t, ts.URL, tail[i:end], 512)

		// The events visible after this batch must be exactly the
		// oracle's new matches for the same batch, in start order.
		batch := pollEvents(t, ts.URL, "oracle-eq", cursor)
		now := oracleSet(t, ts.URL, oracleReq)
		var fresh []RemoteMatch
		for k, m := range now {
			if _, ok := seen[k]; !ok {
				fresh = append(fresh, m)
				seen[k] = m
			}
		}
		if len(batch.Events) != len(fresh) {
			t.Fatalf("batch %d: %d events vs %d new oracle matches\nevents: %+v\nfresh: %+v",
				i/512, len(batch.Events), len(fresh), batch.Events, fresh)
		}
		for _, e := range batch.Events {
			m, ok := now[matchKey{e.PatientID, e.SessionID, e.Start, e.N}]
			if !ok {
				t.Fatalf("event %+v has no oracle counterpart", e)
			}
			if e.Distance != m.Distance || e.Weight != m.Weight || e.Relation != m.Relation {
				t.Errorf("event %+v diverges from oracle match %+v", e, m)
			}
		}
		events = append(events, batch.Events...)
		if len(batch.Events) > 0 {
			cursor = batch.Next
		}
	}
	if len(events) == 0 {
		t.Fatal("standing query produced no events over 45 s of matching signal")
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event seqs not contiguous from 1: %+v", events)
		}
	}

	// A final poll acknowledges the last batch (acks ride the next
	// poll's ?after=), then the counters must reconcile: matched equals
	// the events pushed, and the delivered high-water equals the ack.
	pollEvents(t, ts.URL, "oracle-eq", cursor)
	list, code := getJSON[struct {
		Subscriptions []subscribe.Status `json:"subscriptions"`
	}](t, ts.URL+"/v1/subscriptions")
	if code != http.StatusOK || len(list.Subscriptions) != 1 {
		t.Fatalf("list: code %d, %d subs", code, len(list.Subscriptions))
	}
	st := list.Subscriptions[0]
	if st.Matched != len(events) {
		t.Errorf("matched counter %d != %d pushed events", st.Matched, len(events))
	}
	if st.Evals == 0 || st.Candidates == 0 {
		t.Errorf("funnel counters did not advance: %+v", st)
	}
	if st.Sent != uint64(len(events)) {
		t.Errorf("sent counter %d != %d delivered events", st.Sent, len(events))
	}
	if st.Delivered != cursor {
		t.Errorf("delivered high-water %d != last acked cursor %d", st.Delivered, cursor)
	}
}

// TestSubscriptionSSEStream exercises the push path proper: events
// arrive over a live SSE connection with the event sequence as the SSE
// id, trace headers are present on the stream response, and a
// reconnect with Last-Event-ID resumes exactly after the acked event.
func TestSubscriptionSSEStream(t *testing.T) {
	ts, seq := matchTestServer(t)
	qseq := seq[len(seq)-8:]
	resp := postJSON(t, ts.URL+"/v1/subscriptions", SubscriptionRequest{ID: "sse", Seq: qseq, PatientID: "P01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/subscriptions/sse/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content-type %q", ct)
	}
	if stream.Header.Get("X-Trace-Id") == "" {
		t.Error("SSE response missing X-Trace-Id")
	}
	if stream.Header.Get("Traceparent") == "" {
		t.Error("SSE response missing Traceparent")
	}

	// Ingest in the background; the stream must push events without the
	// client asking again. Errors are ignored (the test asserts on what
	// arrives over the stream, and the goroutine may outlive it).
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen, err := signal.NewRespiration(signal.DefaultRespiration(), 7)
		if err != nil {
			return
		}
		gen.Generate(45) // replay what matchTestServer already ingested
		tail := gen.Generate(90)
		for i := 0; i < len(tail); i += 512 {
			end := min(i+512, len(tail))
			batch := make([]SampleIn, 0, end-i)
			for _, s := range tail[i:end] {
				batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
			}
			body, err := json.Marshal(batch)
			if err != nil {
				return
			}
			resp, err := http.Post(ts.URL+"/v1/sessions/S01/samples", "application/json", bytes.NewReader(body))
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()
	defer wg.Wait()

	type sseEvent struct {
		id   uint64
		data SubEventOut
	}
	readEvents := func(r *bufio.Reader, n int) []sseEvent {
		var out []sseEvent
		var cur sseEvent
		for len(out) < n {
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatalf("stream read after %d events: %v", len(out), err)
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case strings.HasPrefix(line, "id: "):
				fmt.Sscanf(line, "id: %d", &cur.id)
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(line[len("data: "):]), &cur.data); err != nil {
					t.Fatalf("bad event payload %q: %v", line, err)
				}
				out = append(out, cur)
			}
		}
		return out
	}
	first := readEvents(bufio.NewReader(stream.Body), 2)
	cancel()
	stream.Body.Close()
	for i, e := range first {
		if e.id != uint64(i+1) || e.data.Seq != e.id {
			t.Fatalf("SSE ids not sequential from 1: %+v", first)
		}
	}

	// Reconnect with Last-Event-ID: the server must resume after the
	// acked event with no duplicates and no gap.
	req2, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/subscriptions/sse/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set("Last-Event-ID", "1")
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	stream2, err := http.DefaultClient.Do(req2.WithContext(ctx2))
	if err != nil {
		t.Fatal(err)
	}
	defer stream2.Body.Close()
	resumed := readEvents(bufio.NewReader(stream2.Body), 1)
	if resumed[0].id != 2 {
		t.Fatalf("resume after id 1 delivered id %d first", resumed[0].id)
	}
	if resumed[0].data != first[1].data {
		t.Errorf("redelivered event diverged: %+v vs %+v", resumed[0].data, first[1].data)
	}
}

// TestSubscriptionLifecycle covers validation and the delete path.
func TestSubscriptionLifecycle(t *testing.T) {
	ts, seq := matchTestServer(t)
	qseq := seq[len(seq)-6:]

	for name, req := range map[string]SubscriptionRequest{
		"short pattern": {Seq: qseq[:1]},
		"negative k":    {Seq: qseq, K: -1},
	} {
		if resp := postJSON(t, ts.URL+"/v1/subscriptions", req); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	if resp := postJSON(t, ts.URL+"/v1/subscriptions", SubscriptionRequest{ID: "dup", Seq: qseq}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/subscriptions", SubscriptionRequest{ID: "dup", Seq: qseq}); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate id: status %d, want 409", resp.StatusCode)
	}

	// Generated IDs: a create without an ID picks one.
	resp := postJSON(t, ts.URL+"/v1/subscriptions", SubscriptionRequest{Seq: qseq, SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	gen := decode[SubscriptionResponse](t, resp)
	if !strings.HasPrefix(gen.ID, "sub-") {
		t.Errorf("generated id %q", gen.ID)
	}

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/subscriptions/dup", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v status %d", err, resp.StatusCode)
	}
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("re-delete: %v status %d, want 404", err, resp.StatusCode)
	}
	if _, code := getJSON[SubEventsPoll](t, ts.URL+"/v1/subscriptions/dup/events?mode=poll"); code != http.StatusNotFound {
		t.Errorf("events after delete: status %d, want 404", code)
	}
	list, _ := getJSON[struct {
		Subscriptions []subscribe.Status `json:"subscriptions"`
	}](t, ts.URL+"/v1/subscriptions")
	if len(list.Subscriptions) != 1 || list.Subscriptions[0].ID != gen.ID {
		t.Errorf("list after delete = %+v, want only %s", list.Subscriptions, gen.ID)
	}

	// Healthz reports the subscription section.
	hz, code := getJSON[HealthzResponse](t, ts.URL+"/v1/healthz")
	if code != http.StatusOK || hz.Subscriptions == nil || hz.Subscriptions.Count != 1 {
		t.Errorf("healthz subscriptions = %+v", hz.Subscriptions)
	}
}

// TestSubscriptionCrashRecovery kills a durable server mid-stream and
// requires the restarted one to re-arm the subscription and re-derive
// the exact pre-crash event sequence: a consumer resuming from its
// last acked id sees no duplicates and no gaps, and a subscription
// deleted before the crash stays dead.
func TestSubscriptionCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	_, ts := newDurableServer(t, dir)
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 7)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(90)
	ingestChunks(t, ts.URL, samples[:len(samples)/2], 256)
	pr, code := getJSON[PLRResponse](t, ts.URL+"/v1/sessions/S01/plr")
	if code != http.StatusOK || len(pr.Vertices) < 10 {
		t.Fatalf("plr: code %d, %d vertices", code, len(pr.Vertices))
	}
	qseq := plr.Sequence(pr.Vertices[len(pr.Vertices)-8:])

	if resp := postJSON(t, ts.URL+"/v1/subscriptions", SubscriptionRequest{ID: "durable", Seq: qseq, PatientID: "P01"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/subscriptions", SubscriptionRequest{ID: "doomed", Seq: qseq, PatientID: "P01"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/subscriptions/doomed", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %v status %d", err, resp.StatusCode)
	}

	ingestChunks(t, ts.URL, samples[len(samples)/2:], 256)
	before := pollEvents(t, ts.URL, "durable", 0)
	if len(before.Events) < 2 {
		t.Fatalf("need >= 2 events to test the acked boundary, got %d", len(before.Events))
	}
	// Ack the first event (the poll with ?after= journals the ack).
	ackSeq := before.Events[0].Seq
	afterAck := pollEvents(t, ts.URL, "durable", ackSeq)
	if len(afterAck.Events) != len(before.Events)-1 {
		t.Fatalf("ack trimmed to %d events, want %d", len(afterAck.Events), len(before.Events)-1)
	}

	// Crash: abandon the server without shutdown.
	ts.Close()

	_, ts2 := newDurableServer(t, dir)
	list, code := getJSON[struct {
		Subscriptions []subscribe.Status `json:"subscriptions"`
	}](t, ts2.URL+"/v1/subscriptions")
	if code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Subscriptions) != 1 || list.Subscriptions[0].ID != "durable" {
		t.Fatalf("recovered subscriptions = %+v, want only %q", list.Subscriptions, "durable")
	}
	if got := list.Subscriptions[0].Delivered; got != ackSeq {
		t.Errorf("recovered delivered high-water %d, want %d", got, ackSeq)
	}

	// Resuming from the acked id must replay the identical remainder:
	// same sequence numbers, same windows, same distances — no
	// duplicate at the boundary, no gap after it.
	resumed := pollEvents(t, ts2.URL, "durable", ackSeq)
	if len(resumed.Events) != len(afterAck.Events) {
		t.Fatalf("recovered %d events after ack, want %d\n got %+v\nwant %+v",
			len(resumed.Events), len(afterAck.Events), resumed.Events, afterAck.Events)
	}
	for i, e := range resumed.Events {
		if e != afterAck.Events[i] {
			t.Errorf("recovered event %d diverged:\n got %+v\nwant %+v", i, e, afterAck.Events[i])
		}
	}

	// The deleted subscription must not resurrect.
	if _, code := getJSON[SubEventsPoll](t, ts2.URL+"/v1/subscriptions/doomed/events?mode=poll"); code != http.StatusNotFound {
		t.Errorf("deleted subscription resurrected: status %d", code)
	}

	// The recovered subscription keeps evaluating new arrivals (the
	// generator is stateful: this yields only samples past 90 s).
	ingestChunks(t, ts2.URL, gen.Generate(120), 256)
	final := pollEvents(t, ts2.URL, "durable", ackSeq)
	if len(final.Events) <= len(resumed.Events) {
		t.Errorf("no new events after recovery: %d then %d", len(resumed.Events), len(final.Events))
	}
	for i, e := range final.Events {
		if want := ackSeq + uint64(i) + 1; e.Seq != want {
			t.Fatalf("post-recovery seq %d at index %d, want %d (gap or duplicate)", e.Seq, i, want)
		}
	}
}
