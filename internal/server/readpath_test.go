package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// TestMatchScopeHeaderRoundTrip: scope headers survive encode/decode
// even with separator characters inside patient IDs.
func TestMatchScopeHeaderRoundTrip(t *testing.T) {
	cases := []MatchScope{
		{},
		{Exclude: []string{"P01", "p,with,commas", "p with spaces", "p=eq:colon"}},
		{Only: []string{"P02", "ünïcode"}},
		{
			Only:    []string{"P03", "P04"},
			Require: map[string]PatientFreshness{"P03": {Streams: 2, Vertices: 117}},
		},
		{
			Exclude: []string{"P05"},
			Require: map[string]PatientFreshness{"P06": {Streams: 1, Vertices: 0}},
		},
	}
	for i, sc := range cases {
		h := make(http.Header)
		sc.SetHeaders(h)
		got, err := ParseMatchScope(h)
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		if !reflect.DeepEqual(normScope(sc), normScope(got)) {
			t.Errorf("case %d: round-trip %+v -> %+v", i, sc, got)
		}
	}
}

// normScope nil-normalizes empty slices/maps for DeepEqual.
func normScope(sc MatchScope) MatchScope {
	if len(sc.Exclude) == 0 {
		sc.Exclude = nil
	}
	if len(sc.Only) == 0 {
		sc.Only = nil
	}
	if len(sc.Require) == 0 {
		sc.Require = nil
	}
	return sc
}

func TestMatchScopeHeaderParseErrors(t *testing.T) {
	for _, c := range []struct{ header, value string }{
		{HeaderMatchRequire, "P01"},     // missing '='
		{HeaderMatchRequire, "P01=5"},   // missing ':'
		{HeaderMatchRequire, "P01=x:2"}, // bad stream bound
		{HeaderMatchRequire, "P01=1:y"}, // bad vertex bound
		{HeaderMatchOnly, "%zz"},        // bad escape
		{HeaderMatchExclude, "ok,%zz"},  // bad escape mid-list
	} {
		h := make(http.Header)
		h.Set(c.header, c.value)
		if _, err := ParseMatchScope(h); err == nil {
			t.Errorf("%s: %q parsed without error", c.header, c.value)
		}
	}
}

// TestStoreSeqTokenAdvances: every response carries X-Store-Seq, the
// token is constant across reads of a quiescent store, and an ingest
// response already reflects the post-mutation counter.
func TestStoreSeqTokenAdvances(t *testing.T) {
	_, ts := newReplServer(t, Options{})

	get := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		tok := resp.Header.Get(HeaderStoreSeq)
		if tok == "" {
			t.Fatal("response missing X-Store-Seq")
		}
		if !strings.Contains(tok, "-") {
			t.Fatalf("token %q not in epoch-seq form", tok)
		}
		return tok
	}

	before := get()
	if again := get(); again != before {
		t.Fatalf("quiescent store token moved: %q -> %q", before, again)
	}

	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	createTok := resp.Header.Get(HeaderStoreSeq)
	if createTok == before {
		t.Fatal("create response did not advance the store token")
	}
	if after := get(); after != createTok {
		t.Fatalf("create response token %q != settled token %q: ack must reflect the post-mutation counter", createTok, after)
	}

	resp = postJSON(t, ts.URL+"/v1/sessions/S01/samples", respSamples(t, 3, 10))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	ingestTok := resp.Header.Get(HeaderStoreSeq)
	if ingestTok == createTok {
		t.Fatal("ingest response did not advance the store token")
	}
	if after := get(); after != ingestTok {
		t.Fatalf("ingest token %q != settled token %q", ingestTok, after)
	}
}

// TestMatchTokenLowerBoundsMidQueryWrite: a write landing between
// scoring and the response write must not advance the match
// response's X-Store-Seq. The token is snapshotted before the store
// is read, so it lower-bounds the scored data; a lazily stamped
// (post-scoring) token would let the gateway's cache re-file the
// pre-write merge under a post-write key and serve a later hit that
// is missing an already-acked write.
func TestMatchTokenLowerBoundsMidQueryWrite(t *testing.T) {
	srv, ts := newReplServer(t, Options{})
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "PA", SessionID: "S-PA"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	samples := respSamples(t, 21, 40)
	mid := len(samples) / 2
	ingestBatches(t, ts.URL, "S-PA", samples[:mid], 256)
	plr, _ := getJSON[PLRResponse](t, ts.URL+"/v1/sessions/S-PA/plr")
	if len(plr.Vertices) < 8 {
		t.Fatalf("query stream too short: %d vertices", len(plr.Vertices))
	}

	healthTok := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get(HeaderStoreSeq)
	}

	before := healthTok()
	srv.testHookMidMatch = func() {
		// The second half of the stream lands after the matcher scored
		// but before the response is written.
		ingestBatches(t, ts.URL, "S-PA", samples[mid:], 256)
	}
	defer func() { srv.testHookMidMatch = nil }()

	resp = postJSON(t, ts.URL+"/v1/match",
		MatchRequest{Seq: plr.Vertices[len(plr.Vertices)-6:], PatientID: "PA", SessionID: "S-PA", K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	got := resp.Header.Get(HeaderStoreSeq)
	after := healthTok()
	if after == before {
		t.Fatal("fixture broken: mid-match ingest did not advance the store token")
	}
	if got != before {
		t.Fatalf("match token %q reflects the mid-query write; want pre-scoring snapshot %q (settled token %q)",
			got, before, after)
	}
}

// TestIngestFreshnessHeaders: ingest and create acks piggyback the
// patient's post-write holdings and the replication outcome.
func TestIngestFreshnessHeaders(t *testing.T) {
	_, replica := newReplServer(t, Options{})
	_, primary := newReplServer(t, Options{AdvertiseURL: "http://primary"})

	// Unreplicated session: X-Replicated: none.
	resp := postJSON(t, primary.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P00", SessionID: "S00"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderReplicated); got != "none" {
		t.Errorf("unreplicated create X-Replicated = %q, want none", got)
	}

	// Replicated session: create and ingest report "full" after a clean
	// synchronous flush, with the patient's holdings alongside.
	resp = postJSON(t, primary.URL+"/v1/sessions", CreateSessionRequest{
		PatientID: "P01", SessionID: "S01", Replicate: []string{replica.URL},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replicated create status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderReplicated); got != "full" {
		t.Errorf("replicated create X-Replicated = %q, want full", got)
	}

	resp = postJSON(t, primary.URL+"/v1/sessions/S01/samples", respSamples(t, 5, 20))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderReplicated); got != "full" {
		t.Errorf("ingest X-Replicated = %q, want full", got)
	}
	if resp.Header.Get(HeaderPatientStreams) != "1" {
		t.Errorf("X-Patient-Streams = %q, want 1", resp.Header.Get(HeaderPatientStreams))
	}
	stats, _ := getJSON[ShardStatsResponse](t, primary.URL+"/v1/shard/stats")
	wantV := stats.Freshness["P01"].Vertices
	if wantV == 0 {
		t.Fatal("stats report no vertices for P01")
	}
	if got := resp.Header.Get(HeaderPatientVertices); got != strconv.Itoa(wantV) {
		t.Errorf("X-Patient-Vertices = %q, stats say %d", got, wantV)
	}
}

// TestMatchScopeRefusal drives the follower-read contract directly
// against one server: an Only leg with a satisfiable Require bound is
// served, an unsatisfiable bound is refused, and an Exclude leg omits
// the excluded patient's matches entirely.
func TestMatchScopeRefusal(t *testing.T) {
	_, ts := newReplServer(t, Options{})
	for _, pid := range []string{"PA", "PB"} {
		resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: pid, SessionID: "S-" + pid})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s status %d", pid, resp.StatusCode)
		}
		ingestBatches(t, ts.URL, "S-"+pid, respSamples(t, 21, 40), 256)
	}
	plrA, _ := getJSON[PLRResponse](t, ts.URL+"/v1/sessions/S-PA/plr")
	if len(plrA.Vertices) < 8 {
		t.Fatalf("query stream too short: %d vertices", len(plrA.Vertices))
	}
	q := MatchRequest{Seq: plrA.Vertices[len(plrA.Vertices)-6:], PatientID: "PA", SessionID: "S-PA"}
	holdings := func(pid string) PatientFreshness {
		stats, _ := getJSON[ShardStatsResponse](t, ts.URL+"/v1/shard/stats")
		return stats.Freshness[pid]
	}
	frA := holdings("PA")
	if frA.Streams != 1 || frA.Vertices == 0 {
		t.Fatalf("PA holdings = %+v", frA)
	}

	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	post := func(sc MatchScope) MatchResponse {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/match", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		sc.SetHeaders(req.Header)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scoped match status %d", resp.StatusCode)
		}
		return decode[MatchResponse](t, resp)
	}

	baseline := post(MatchScope{})
	if len(baseline.Matches) == 0 {
		t.Fatal("baseline match found nothing; fixture broken")
	}
	if baseline.Refused != nil || baseline.Freshness != nil {
		t.Errorf("unscoped match reported scope fields: %+v %+v", baseline.Refused, baseline.Freshness)
	}

	// Satisfiable bound: served, holdings reported, nothing refused.
	ok := post(MatchScope{Only: []string{"PA", "PB"}, Require: map[string]PatientFreshness{"PA": frA}})
	if len(ok.Refused) != 0 {
		t.Errorf("satisfiable bound refused %v", ok.Refused)
	}
	if ok.Freshness["PA"] != frA {
		t.Errorf("reported freshness %+v, want %+v", ok.Freshness["PA"], frA)
	}
	if len(ok.Matches) != len(baseline.Matches) {
		t.Errorf("scoped full match returned %d matches, baseline %d", len(ok.Matches), len(baseline.Matches))
	}

	// Unsatisfiable bound (as if the primary were ahead): refused, and
	// none of PA's matches leak into the response.
	over := frA
	over.Vertices += 10
	ref := post(MatchScope{Only: []string{"PA", "PB"}, Require: map[string]PatientFreshness{"PA": over}})
	if len(ref.Refused) != 1 || ref.Refused[0] != "PA" {
		t.Fatalf("Refused = %v, want [PA]", ref.Refused)
	}
	for _, m := range ref.Matches {
		if m.PatientID == "PA" {
			t.Fatalf("refused patient still matched: %+v", m)
		}
	}

	// Exclude mode: PA's arcs are scored elsewhere, so they must not
	// appear here; PB's still do.
	exc := post(MatchScope{Exclude: []string{"PA"}})
	sawPB := false
	for _, m := range exc.Matches {
		if m.PatientID == "PA" {
			t.Fatalf("excluded patient matched: %+v", m)
		}
		sawPB = sawPB || m.PatientID == "PB"
	}
	// A bound on a patient this shard does not hold at all is refused.
	missing := post(MatchScope{Exclude: []string{"PA"}, Require: map[string]PatientFreshness{"PZ": {Streams: 1}}})
	if len(missing.Refused) != 1 || missing.Refused[0] != "PZ" {
		t.Errorf("unknown-patient Require: Refused = %v, want [PZ]", missing.Refused)
	}
	_ = sawPB // PB similarity to PA's query is data-dependent; presence not asserted
}

// TestShardStatsLinkSeqs: after a replicated ingest the primary's
// stats expose per-link shipped/acked sequence numbers, the follower
// reports its applied high-water mark, and both sides publish
// per-patient holdings. The healthz payload carries the same per-
// session link detail.
func TestShardStatsLinkSeqs(t *testing.T) {
	_, replica := newReplServer(t, Options{})
	_, primary := newReplServer(t, Options{AdvertiseURL: "http://primary"})

	resp := postJSON(t, primary.URL+"/v1/sessions", CreateSessionRequest{
		PatientID: "P01", SessionID: "S01", Replicate: []string{replica.URL},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	ingestBatches(t, primary.URL, "S01", respSamples(t, 9, 30), 256)

	pStats, _ := getJSON[ShardStatsResponse](t, primary.URL+"/v1/shard/stats")
	if len(pStats.Sessions) != 1 {
		t.Fatalf("primary sessions = %+v", pStats.Sessions)
	}
	sess := pStats.Sessions[0]
	if sess.Vertices == 0 {
		t.Error("primary session reports zero vertices")
	}
	if len(sess.Links) != 1 {
		t.Fatalf("primary links = %+v, want one to the replica", sess.Links)
	}
	link := sess.Links[0]
	if link.Target != replica.URL {
		t.Errorf("link target %q, want %q", link.Target, replica.URL)
	}
	if link.ShippedSeq == 0 {
		t.Error("link shipped nothing after ingest")
	}
	if link.AckedSeq != link.ShippedSeq {
		t.Errorf("acked %d != shipped %d after synchronous flush", link.AckedSeq, link.ShippedSeq)
	}
	if pStats.Freshness["P01"].Vertices == 0 {
		t.Error("primary stats missing P01 freshness")
	}

	rStats, _ := getJSON[ShardStatsResponse](t, replica.URL+"/v1/shard/stats")
	if len(rStats.Replicas) != 1 {
		t.Fatalf("replica inventory = %+v", rStats.Replicas)
	}
	if got := rStats.Replicas[0].AppliedSeq; got != link.AckedSeq {
		t.Errorf("replica applied seq %d, primary acked %d", got, link.AckedSeq)
	}
	if rStats.Freshness["P01"] != pStats.Freshness["P01"] {
		t.Errorf("follower freshness %+v != primary %+v after clean flush",
			rStats.Freshness["P01"], pStats.Freshness["P01"])
	}

	hz, _ := getJSON[HealthzResponse](t, primary.URL+"/v1/healthz")
	if hz.Replication == nil || len(hz.Replication.Sessions) != 1 {
		t.Fatalf("healthz replication sessions = %+v", hz.Replication)
	}
	hs := hz.Replication.Sessions[0]
	if hs.SessionID != "S01" || len(hs.Links) != 1 || hs.Links[0].AckedSeq != link.AckedSeq {
		t.Errorf("healthz session detail = %+v, want S01 with acked %d", hs, link.AckedSeq)
	}
}
