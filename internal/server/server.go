// Package server implements the online ingestion and prediction HTTP
// service: the deployment shape of the paper's Figure 1 system. A
// treatment console opens a session, streams position samples as they
// are imaged, and polls predictions; the server runs the online
// segmenter per session, maintains the hierarchical stream database
// (including any preloaded historical sessions), and serves
// subsequence-matching predictions with the same machinery the offline
// tools use.
//
// The API is deliberately small and stdlib-only:
//
//	POST   /v1/sessions                 {"patientId","sessionId"}   -> 201
//	POST   /v1/sessions/{sid}/samples   [{"t","pos"},...]           -> appended vertices
//	DELETE /v1/sessions/{sid}                                      -> close session
//	GET    /v1/sessions/{sid}/predict?delta=200ms                  -> prediction
//	GET    /v1/sessions/{sid}/plr                                  -> current PLR
//	POST   /v1/match                    {"seq",...,"k"}            -> similarity search
//	GET    /v1/stats                                               -> database stats
//	GET    /v1/shard/stats                                         -> shard-local inventory
//	GET    /v1/healthz                                             -> liveness + recovery stats
//	GET    /metrics                                                -> Prometheus text format
//
// /v1/match and /v1/shard/stats exist for the sharding gateway
// (internal/shard): the former runs a similarity search for a
// serialized query sequence, the latter inventories open sessions so
// a restarted gateway can rediscover session placement.
//
// With Options.DataDir set, every mutation is journaled to a
// write-ahead log and compacted into snapshots (see internal/wal); a
// restarted server recovers the database and resumes open sessions.
//
// Every route is instrumented through internal/obs: request counts by
// status class, latency histograms, an in-flight gauge, and
// request-ID-tagged access logs.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/obs"
	"stsmatch/internal/plr"
	"stsmatch/internal/sigindex"
	"stsmatch/internal/store"
	"stsmatch/internal/subscribe"
	"stsmatch/internal/wal"
)

// Server is the HTTP ingestion/prediction service.
type Server struct {
	mu       sync.Mutex
	db       *store.DB
	params   core.Params
	segCfg   fsm.Config
	sessions map[string]*session
	mux      *http.ServeMux
	handler  http.Handler
	log      *slog.Logger
	met      *serverMetrics
	start    time.Time
	seqEpoch int64       // start nonce prefixed onto X-Store-Seq tokens
	wal      *durability // nil when Options.DataDir is unset
	maxBody  int64       // request-body cap; <= 0 disables

	// subs holds the standing subscriptions (see subscriptions.go and
	// internal/subscribe). Created before durability opens so WAL
	// recovery can re-arm persisted subscriptions and replay their
	// incremental evaluations in log order.
	subs *subscribe.Manager

	// index is the window-signature index (nil when disabled); see
	// matchindex.go. Built before serving and maintained through the
	// store mutation hook, it is shared by every pooled matcher.
	index *sigindex.Index

	// col is this server's trace collector: per-instance (not global)
	// so in-process multi-node tests and embedded deployments keep
	// genuinely separate trace stores.
	col *obs.Collector

	// Replication (see replication.go): sessions this node follows as
	// a replica (guarded by mu), the client primaries ship with, this
	// node's advertised URL, and the source allowlist for /v1/replicate.
	replicas   map[string]*replicaState
	replClient *http.Client
	advertise  string
	replFrom   []string

	// Live session migration (see migration.go): per-session migration
	// state (guarded by mu; committed entries are tombstones answering
	// 410 with a redirect hint) and the catch-up round cap.
	migrations           map[string]*wal.MigrationState
	migrateCatchupRounds int

	// testHookMigrate, when non-nil, runs at each migration phase
	// boundary; chaos tests kill nodes there (see SetMigrationHook).
	testHookMigrate func(phase string)

	// testHookMidMatch, when non-nil, runs in handleMatch between
	// scoring and the response write; tests inject a concurrent write
	// there to pin the token-snapshot-before-scoring ordering.
	testHookMidMatch func()

	// matchers pools core.Matcher instances (one in flight per
	// prediction; a Matcher carries scratch buffers and is not safe for
	// concurrent use). The matchers wrap the server's live *store.DB,
	// so they never go stale as sessions append — no per-request
	// construction and, crucially, no similarity search under s.mu.
	matchers sync.Pool
}

// session is one live ingestion stream.
type session struct {
	patientID string
	sessionID string
	seg       *fsm.Segmenter
	stream    *store.Stream
	samples   int
	lastT     float64
	lastPos   []float64
	repl      *replicator // nil when the session is not replicated

	// fenced rejects new writes while a migration cutover is in flight
	// (or after a restart recovered a prepared-but-uncommitted
	// migration); migrating is the temporary catch-up link shipping the
	// session to its migration target.
	fenced    bool
	migrating *replicator

	// resumed marks a session rebuilt by crash recovery: its segmenter
	// was re-primed from the stored PLR tail, so vertices it re-emits
	// at or before resumedAt are already in the stream and are dropped.
	resumed   bool
	resumedAt float64
}

// New builds a fully in-memory server around an existing database
// (which may already hold historical sessions for cross-session
// matching). The database is owned by the server afterwards.
func New(db *store.DB, params core.Params, segCfg fsm.Config) (*Server, error) {
	return NewWithOptions(db, params, segCfg, Options{})
}

// NewWithOptions builds a server with durability options. When
// opts.DataDir is set, the server recovers the write-ahead log before
// serving: the recovered database replaces db (db then only seeds a
// fresh data dir), and sessions open at the crash resume mid-stream.
func NewWithOptions(db *store.DB, params core.Params, segCfg fsm.Config, opts Options) (*Server, error) {
	if opts.MatcherParallelism != 0 {
		params.Parallelism = opts.MatcherParallelism
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := segCfg.Validate(); err != nil {
		return nil, err
	}
	if db == nil {
		db = store.NewDB()
	}
	s := &Server{
		db:                   db,
		params:               params,
		segCfg:               segCfg,
		sessions:             make(map[string]*session),
		mux:                  http.NewServeMux(),
		log:                  obs.Logger("server"),
		met:                  newServerMetrics(obs.Default()),
		start:                time.Now(),
		maxBody:              opts.MaxBodyBytes,
		replicas:             make(map[string]*replicaState),
		migrations:           make(map[string]*wal.MigrationState),
		migrateCatchupRounds: opts.MigrateCatchupRounds,
		advertise:            opts.AdvertiseURL,
		replFrom:             opts.ReplicateFrom,
		col:                  obs.NewCollector(opts.TraceCapacity, opts.TraceSlowThreshold),
	}
	s.seqEpoch = s.start.UnixNano()
	obs.RegisterBuildInfo(obs.Default())
	if s.maxBody == 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	replTimeout := opts.ReplicateTimeout
	if replTimeout == 0 {
		replTimeout = DefaultReplicateTimeout
	}
	s.replClient = &http.Client{Timeout: replTimeout, Transport: opts.ReplicateTransport}
	s.subs = subscribe.NewManager(params, opts.SubscriptionBuffer)
	if opts.DataDir != "" {
		if err := s.openDurability(db, opts); err != nil {
			return nil, err
		}
	}
	if err := s.setupMatchIndex(opts); err != nil {
		return nil, err
	}
	// Appends buffer deltas for standing-query evaluation; the ingest
	// and replication paths drain them synchronously under s.mu, so
	// event order is deterministic. Added after the index hook: the
	// index must observe a vertex before a standing query can match it.
	s.db.AddMutationHook(s.subs.OnMutation)
	s.matchers.New = func() any {
		// params were validated above; the error path is unreachable.
		m, _ := core.NewMatcher(s.db, s.params)
		m.Index = s.index
		return m
	}
	s.route("POST /v1/sessions", "create_session", s.handleCreateSession)
	s.route("POST /v1/sessions/{sid}/samples", "ingest_samples", s.handleSamples)
	s.route("DELETE /v1/sessions/{sid}", "close_session", s.handleCloseSession)
	s.route("GET /v1/sessions/{sid}/predict", "predict", s.handlePredict)
	s.route("GET /v1/sessions/{sid}/plr", "plr", s.handlePLR)
	s.route("POST /v1/replicate", "replicate", s.handleReplicate)
	s.route("POST /v1/sessions/{sid}/promote", "promote", s.handlePromote)
	s.route("POST /v1/sessions/{sid}/migrate", "migrate_session", s.handleMigrate)
	s.route("POST /v1/match", "match", s.handleMatch)
	s.route("POST /v1/subscriptions", "create_subscription", s.handleCreateSubscription)
	s.route("GET /v1/subscriptions", "list_subscriptions", s.handleListSubscriptions)
	s.route("DELETE /v1/subscriptions/{id}", "delete_subscription", s.handleDeleteSubscription)
	s.route("GET /v1/subscriptions/{id}/events", "subscription_events", s.handleSubEvents)
	s.route("GET /v1/stats", "stats", s.handleStats)
	s.route("GET /v1/shard/stats", "shard_stats", s.handleShardStats)
	s.route("GET /v1/healthz", "healthz", s.handleHealthz)
	s.mux.Handle("GET /v1/traces", s.met.http.Wrap("traces", s.col.Handler()))
	// /metrics is excluded from the access log and from tracing, but
	// still counts in the request metrics like any other route.
	s.mux.Handle("GET /metrics", s.met.http.WrapScrape("metrics", obs.Default().Handler()))
	// seqStamp sits innermost so the X-Store-Seq high-water mark is
	// evaluated as late as possible — after the handler's mutations.
	s.handler = obs.RequestID(obs.TraceHTTP("server", s.col, obs.AccessLog(s.log, s.seqStamp(s.mux))))
	return s, nil
}

// Traces exposes the server's trace collector (daemon wiring, tests).
func (s *Server) Traces() *obs.Collector { return s.col }

// route registers a handler wrapped with per-route instrumentation.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.met.http.Wrap(name, h))
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// OpenSessions returns the number of currently open ingestion
// sessions (used by daemons for shutdown reporting).
func (s *Server) OpenSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// lock acquires the session lock, recording how long the caller
// waited — the contention signal for the ingestion/prediction paths.
func (s *Server) lock() {
	start := time.Now()
	s.mu.Lock()
	s.met.lockWait.Observe(time.Since(start).Seconds())
}

// capBody applies the request-body limit (Options.MaxBodyBytes) on a
// body-accepting handler, so decoding a hostile body aborts at the cap
// instead of exhausting the shard's memory.
func (s *Server) capBody(w http.ResponseWriter, r *http.Request) {
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
}

// bodyErrCode maps a request-decode error to a status code: 413 when
// the body cap tripped, 400 otherwise.
func bodyErrCode(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// CreateSessionRequest opens a new ingestion session. Replicate lists
// replica base URLs this node must ship the session's records to (the
// gateway computes them from ring placement); empty means unreplicated.
type CreateSessionRequest struct {
	PatientID string   `json:"patientId"`
	SessionID string   `json:"sessionId"`
	Replicate []string `json:"replicate,omitempty"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	s.capBody(w, r)
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrCode(err), fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.PatientID == "" || req.SessionID == "" {
		httpError(w, http.StatusBadRequest, errors.New("patientId and sessionId are required"))
		return
	}
	sess, code, err := s.createSession(req)
	if err != nil {
		httpError(w, code, err)
		return
	}
	var replErrs []string
	if sess.repl != nil {
		// Ship the open synchronously: a 201 means the replicas know the
		// session exists (or the response says which ones do not).
		replErrs = s.replFlush(r.Context(), sess.repl)
	}
	s.setFreshnessHeaders(w, sess, s.patientFreshness(req.PatientID), replErrs)
	s.log.Info("session opened",
		slog.String("patientId", req.PatientID),
		slog.String("sessionId", req.SessionID),
		slog.Int("replicas", len(req.Replicate)),
		slog.String("requestId", obs.RequestIDFrom(r.Context())))
	writeJSON(w, http.StatusCreated, map[string]any{
		"patientId":     req.PatientID,
		"sessionId":     req.SessionID,
		"replicaErrors": replErrs,
	})
}

// createSession performs the locked portion of session creation and
// stages the opening records on the session's replica links.
func (s *Server) createSession(req CreateSessionRequest) (*session, int, error) {
	s.lock()
	defer s.mu.Unlock()
	if _, exists := s.sessions[req.SessionID]; exists {
		return nil, http.StatusConflict, fmt.Errorf("session %q already open", req.SessionID)
	}
	p := s.db.Patient(req.PatientID)
	if p == nil {
		var err error
		p, err = s.db.AddPatient(store.PatientInfo{ID: req.PatientID})
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
	}
	if p.StreamBySession(req.SessionID) != nil {
		return nil, http.StatusConflict, fmt.Errorf("session %q already stored", req.SessionID)
	}
	seg, err := fsm.New(s.segCfg)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	st := p.AddStream(req.SessionID)
	st.EnableIndex()
	sess := &session{
		patientID: req.PatientID,
		sessionID: req.SessionID,
		seg:       seg,
		stream:    st,
	}
	if len(req.Replicate) > 0 {
		sess.repl = newReplicator(req.PatientID, req.SessionID, s.advertise, 1, req.Replicate, false)
		sess.repl.enqueue(
			wal.Record{Type: wal.TypePatientUpsert, Patient: p.Info},
			wal.Record{Type: wal.TypeStreamOpen, PatientID: req.PatientID, SessionID: req.SessionID},
		)
	}
	s.sessions[req.SessionID] = sess
	s.met.sessionsOpen.Set(int64(len(s.sessions)))
	return sess, 0, nil
}

// SampleIn is one ingested observation.
type SampleIn struct {
	T   float64   `json:"t"`
	Pos []float64 `json:"pos"`
}

// SamplesResponse reports the ingestion outcome. ReplicaErrors lists
// replicas that could not be brought current before the ack — for a
// replicated session, an absent list means every configured replica
// holds everything this response acknowledges.
type SamplesResponse struct {
	Accepted      int      `json:"accepted"`
	NewVertices   int      `json:"newVertices"`
	TotalSamples  int      `json:"totalSamples"`
	CurrentState  string   `json:"currentState"`
	ReplicaErrors []string `json:"replicaErrors,omitempty"`
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	s.capBody(w, r)
	var batch []SampleIn
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		httpError(w, bodyErrCode(err), fmt.Errorf("decoding samples: %w", err))
		return
	}
	resp, sess, fresh, code, err := s.ingestLocked(r.Context(), sid, batch)
	if sess != nil && sess.repl != nil {
		// Ship before answering — even on error, so replicas hold
		// exactly what this node stored. The ack then implies every
		// healthy replica has every acknowledged vertex.
		resp.ReplicaErrors = s.replFlush(r.Context(), sess.repl)
	}
	if sess != nil {
		s.setFreshnessHeaders(w, sess, fresh, resp.ReplicaErrors)
	}
	if err != nil {
		if code == http.StatusNotFound {
			s.goneOr404(w, sid)
			return
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// setFreshnessHeaders piggybacks the patient's post-write holdings on
// a session-scoped response. The counts were snapshotted under s.mu
// before replication flushed, so X-Replicated: full guarantees every
// follower holds at least the advertised streams/vertices — the fact
// the gateway's freshness tracker records for both primary and
// followers off a single ingest ack.
func (s *Server) setFreshnessHeaders(w http.ResponseWriter, sess *session, fresh PatientFreshness, replErrs []string) {
	h := w.Header()
	h.Set(HeaderPatientStreams, strconv.Itoa(fresh.Streams))
	h.Set(HeaderPatientVertices, strconv.Itoa(fresh.Vertices))
	switch {
	case sess.repl == nil:
		h.Set(HeaderReplicated, "none")
	case len(replErrs) == 0:
		h.Set(HeaderReplicated, "full")
	default:
		h.Set(HeaderReplicated, "partial")
	}
}

// ingestLocked runs one ingest batch under the session lock and stages
// the resulting records on the session's replica links. The returned
// replicator (nil for unreplicated sessions) must be flushed by the
// caller after the lock is released.
func (s *Server) ingestLocked(ctx context.Context, sid string, batch []SampleIn) (SamplesResponse, *session, PatientFreshness, int, error) {
	s.lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[sid]
	if !ok {
		return SamplesResponse{}, nil, PatientFreshness{}, http.StatusNotFound, fmt.Errorf("no open session %q", sid)
	}
	if sess.fenced {
		// A migration cutover is in flight; accepting the write here
		// could lose it when the target takes over. Retryable.
		return SamplesResponse{}, nil, PatientFreshness{}, http.StatusServiceUnavailable,
			fmt.Errorf("session %q is migrating; retry shortly", sid)
	}
	resp := SamplesResponse{}
	var newVs []plr.Vertex
	var pushErr error
	var pushCode int
	for _, in := range batch {
		vs, err := sess.seg.Push(plr.Sample{T: in.T, Pos: in.Pos})
		if err != nil {
			pushErr = fmt.Errorf("sample at t=%v: %w", in.T, err)
			pushCode = http.StatusBadRequest
			break
		}
		if sess.resumed {
			// A re-primed segmenter re-emits the vertex that anchors
			// its open segment; the recovered stream already holds it.
			kept := vs[:0]
			for _, v := range vs {
				if v.T > sess.resumedAt {
					kept = append(kept, v)
				}
			}
			vs = kept
		}
		if err := sess.stream.Append(vs...); err != nil {
			pushErr = err
			pushCode = http.StatusInternalServerError
			break
		}
		newVs = append(newVs, vs...)
		sess.samples++
		sess.lastT = in.T
		sess.lastPos = append(sess.lastPos[:0], in.Pos...)
		resp.Accepted++
		resp.NewVertices += len(vs)
	}
	s.met.samplesIn.Add(resp.Accepted)
	s.met.verticesOut.Add(resp.NewVertices)
	// Evaluate standing queries against the windows the new vertices
	// just closed — synchronously, still under s.mu, so every
	// subscription observes appends in exactly ingest order.
	s.subs.Drain(ctx, s.db)
	anchor := wal.Record{
		Type:      wal.TypeSessionAnchor,
		PatientID: sess.patientID,
		SessionID: sess.sessionID,
		Samples:   uint64(sess.samples),
		AnchorT:   sess.lastT,
		AnchorPos: sess.lastPos,
	}
	if s.wal != nil && resp.Accepted > 0 {
		// Journal the raw-sample anchor so a recovered session predicts
		// from exactly the newest pre-crash observation.
		s.walAppendCtx(ctx, anchor)
	}
	if (sess.repl != nil || sess.migrating != nil) && resp.Accepted > 0 {
		// Stage everything this call stored — including partial progress
		// before an error — so replicas never trail what we kept.
		recs := make([]wal.Record, 0, 2)
		if len(newVs) > 0 {
			recs = append(recs, wal.Record{
				Type:      wal.TypeVertexAppend,
				PatientID: sess.patientID,
				SessionID: sess.sessionID,
				Vertices:  append([]plr.Vertex(nil), newVs...),
			})
		}
		anchor.AnchorPos = append([]float64(nil), anchor.AnchorPos...)
		recs = append(recs, anchor)
		if sess.repl != nil {
			sess.repl.enqueue(recs...)
		}
		if sess.migrating != nil {
			// A migration catch-up link tails the same records, so the
			// target converges even under sustained ingest.
			sess.migrating.enqueue(recs...)
		}
	}
	// Snapshot the patient's holdings before the caller flushes
	// replication: a clean flush then proves followers hold at least
	// these counts.
	fresh := s.patientFreshnessLocked(sess.patientID)
	if pushErr != nil {
		return resp, sess, fresh, pushCode, pushErr
	}
	resp.TotalSamples = sess.samples
	resp.CurrentState = sess.seg.CurrentState().String()
	return resp, sess, fresh, 0, nil
}

// CloseSessionResponse reports the final state of a closed session.
type CloseSessionResponse struct {
	PatientID    string `json:"patientId"`
	SessionID    string `json:"sessionId"`
	TotalSamples int    `json:"totalSamples"`
	Vertices     int    `json:"vertices"`
}

// handleCloseSession closes an open ingestion session: the stream
// stays in the database as history, the segmenter is released, and —
// with durability on — the close is journaled and flushed so the
// session does not resurrect on restart. Without this endpoint the
// sessions map only ever grows.
func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	sess, code, err := func() (*session, int, error) {
		s.lock()
		defer s.mu.Unlock()
		sess, ok := s.sessions[sid]
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no open session %q", sid)
		}
		if sess.fenced {
			return nil, http.StatusConflict, fmt.Errorf("session %q is mid-migration; close it on its new home", sid)
		}
		if s.wal != nil {
			// Journal and fsync the close record before removing the
			// session, so a 200 really means "durably closed": if the flush
			// fails the session stays open and the client can retry.
			// Holding s.mu across one fsync is acceptable on this rare path.
			err := s.wal.log.AppendCtx(r.Context(), wal.Record{Type: wal.TypeSessionClose, SessionID: sid})
			if err == nil {
				err = s.wal.log.SyncCtx(r.Context())
			}
			if err != nil {
				s.wal.lastErr.Store(err.Error())
				s.log.Error("flushing session close", slog.Any("err", err))
				return nil, http.StatusInternalServerError, fmt.Errorf("flushing session close: %w", err)
			}
		}
		if sess.repl != nil {
			sess.repl.enqueue(wal.Record{Type: wal.TypeSessionClose, SessionID: sid})
		}
		delete(s.sessions, sid)
		s.met.sessionsOpen.Set(int64(len(s.sessions)))
		s.met.sessionsClosed.Inc()
		return sess, 0, nil
	}()
	if err != nil {
		if code == http.StatusNotFound {
			s.goneOr404(w, sid)
			return
		}
		httpError(w, code, err)
		return
	}
	if sess.repl != nil {
		// Tell the replicas the session is closed; failures are logged
		// (a lagging replica just keeps stale follower state around).
		if errs := s.replFlush(r.Context(), sess.repl); len(errs) > 0 {
			s.log.Warn("close not replicated everywhere", slog.Any("replicaErrors", errs))
		}
	}
	s.log.Info("session closed",
		slog.String("patientId", sess.patientID),
		slog.String("sessionId", sid),
		slog.Int("samples", sess.samples),
		slog.String("requestId", obs.RequestIDFrom(r.Context())))
	writeJSON(w, http.StatusOK, CloseSessionResponse{
		PatientID:    sess.patientID,
		SessionID:    sid,
		TotalSamples: sess.samples,
		Vertices:     sess.stream.Len(),
	})
}

// PredictionResponse is the prediction payload.
type PredictionResponse struct {
	Pos        []float64 `json:"pos"`
	DeltaMS    float64   `json:"deltaMs"`
	NumMatches int       `json:"numMatches"`
	MeanDist   float64   `json:"meanDist"`
	QueryLen   int       `json:"queryLen"`
	Stable     bool      `json:"stable"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	deltaStr := r.URL.Query().Get("delta")
	if deltaStr == "" {
		deltaStr = "200ms"
	}
	delta, err := time.ParseDuration(deltaStr)
	if err != nil || delta < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad delta %q", deltaStr))
		return
	}

	// Snapshot the session under the lock, then run the expensive
	// similarity search and prediction outside it so concurrent
	// ingestion is never blocked behind a search.
	s.lock()
	sess, ok := s.sessions[sid]
	if !ok {
		s.mu.Unlock()
		s.goneOr404(w, sid)
		return
	}
	patientID, sessionID := sess.patientID, sess.sessionID
	lastT := sess.lastT
	lastPos := append([]float64(nil), sess.lastPos...)
	seq := sess.stream.Seq()
	s.mu.Unlock()

	if len(seq) < 2 {
		s.met.predictions.With("insufficient_history").Inc()
		httpError(w, http.StatusConflict, errors.New("not enough segmented history yet"))
		return
	}
	qseq, info := s.params.DynamicQuery(seq)
	q := core.NewQuery(qseq, patientID, sessionID)
	matcher := s.matchers.Get().(*core.Matcher)
	defer s.matchers.Put(matcher)
	work := time.Now()
	matches, err := matcher.FindSimilarCtx(r.Context(), q, nil)
	if err != nil {
		s.met.predictions.With("error").Inc()
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	// Anchor the forecast at the newest *observation*, not the last
	// PLR vertex (which can lag it by most of a segment): predict the
	// displacement from the observation time to observation+delta and
	// add it to the observed position.
	d1 := lastT - q.Now
	d2 := d1 + delta.Seconds()
	disp, err := matcher.PredictDisplacement(q, matches, d1, d2, 0)
	s.met.predictWork.Observe(time.Since(work).Seconds())
	if errors.Is(err, core.ErrNoMatches) {
		s.met.predictions.With("no_matches").Inc()
		httpError(w, http.StatusConflict, err)
		return
	}
	if err != nil {
		s.met.predictions.With("error").Inc()
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	pos := make([]float64, len(disp))
	for k := range pos {
		pos[k] = lastPos[k] + disp[k]
	}
	var meanDist float64
	for _, mt := range matches {
		meanDist += mt.Distance
	}
	if len(matches) > 0 {
		meanDist /= float64(len(matches))
	}
	s.met.predictions.With("ok").Inc()
	writeJSON(w, http.StatusOK, PredictionResponse{
		Pos:        pos,
		DeltaMS:    float64(delta.Milliseconds()),
		NumMatches: len(matches),
		MeanDist:   meanDist,
		QueryLen:   len(qseq),
		Stable:     info.Stable,
	})
}

// PLRResponse carries the current segmented representation.
type PLRResponse struct {
	Vertices    []plr.Vertex `json:"vertices"`
	StateString string       `json:"stateString"`
}

func (s *Server) handlePLR(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	s.lock()
	sess, ok := s.sessions[sid]
	s.mu.Unlock()
	if !ok {
		s.goneOr404(w, sid)
		return
	}
	seq := sess.stream.Seq()
	writeJSON(w, http.StatusOK, PLRResponse{
		Vertices:    seq,
		StateString: seq.StateString(),
	})
}

// StatsResponse summarizes the database.
type StatsResponse struct {
	Patients     int `json:"patients"`
	Streams      int `json:"streams"`
	Vertices     int `json:"vertices"`
	OpenSessions int `json:"openSessions"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Patients:     s.db.NumPatients(),
		Streams:      len(s.db.Streams()),
		Vertices:     s.db.NumVertices(),
		OpenSessions: s.OpenSessions(),
	})
}

// HealthzResponse is the liveness payload. WAL is present only when
// durability is enabled and carries the most recent recovery's stats.
type HealthzResponse struct {
	Status        string             `json:"status"`
	Version       string             `json:"version"`
	GoVersion     string             `json:"goVersion"`
	UptimeSeconds float64            `json:"uptimeSeconds"`
	Patients      int                `json:"patients"`
	Vertices      int                `json:"vertices"`
	OpenSessions  int                `json:"openSessions"`
	WAL           *WALHealth         `json:"wal,omitempty"`
	Replication   *ReplicationHealth `json:"replication,omitempty"`
	Index         *IndexHealth       `json:"index,omitempty"`
	Subscriptions *subscribe.Health  `json:"subscriptions,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version, goVersion := obs.BuildInfo()
	writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		Version:       version,
		GoVersion:     goVersion,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Patients:      s.db.NumPatients(),
		Vertices:      s.db.NumVertices(),
		OpenSessions:  s.OpenSessions(),
		WAL:           s.walHealth(),
		Replication:   s.replicationHealth(),
		Index:         s.indexHealth(),
		Subscriptions: s.subscriptionHealth(),
	})
}
