package server

import (
	"net/http"
	"testing"

	"stsmatch/internal/obs"
)

// TestMatchDebugProfile exercises the inline explain: ?debug=profile
// returns the query's span tree with the matcher funnel stages nested
// under the handler root, and the trace is retrievable from /v1/traces
// afterwards under the same ID.
func TestMatchDebugProfile(t *testing.T) {
	ts, seq := matchTestServer(t)
	qseq := seq[len(seq)-10:]

	// Without the flag the response carries no profile.
	resp := postJSON(t, ts.URL+"/v1/match", MatchRequest{Seq: qseq, PatientID: "P01", SessionID: "S01", K: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	if mr := decode[MatchResponse](t, resp); mr.Profile != nil {
		t.Fatal("profile returned without debug=profile")
	}

	// Threshold mode (k = 0): every scanned candidate is accounted for
	// by exactly one downstream stage, so the funnel sums exactly (in
	// top-k mode heap displacement breaks that identity).
	resp = postJSON(t, ts.URL+"/v1/match?debug=profile", MatchRequest{Seq: qseq, PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-Id")
	mr := decode[MatchResponse](t, resp)
	if mr.Profile == nil || mr.Profile.Root == nil {
		t.Fatal("no profile in debug=profile response")
	}
	if mr.Profile.TraceID != traceID {
		t.Fatalf("profile trace %s != X-Trace-Id %s", mr.Profile.TraceID, traceID)
	}
	root := mr.Profile.Root
	if root.Name != "POST /v1/match" {
		t.Fatalf("root span %q, want POST /v1/match", root.Name)
	}
	if !root.InProgress {
		t.Fatal("handler root should be snapshotted in-progress")
	}

	byName := map[string]*obs.SpanNode{}
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		byName[n.Name] = n
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	search, ok := byName["matcher.search"]
	if !ok {
		t.Fatalf("no matcher.search span in profile: %v", keys(byName))
	}
	if search.ParentID != root.SpanID {
		t.Fatalf("matcher.search parent %s, want handler root %s", search.ParentID, root.SpanID)
	}
	stages := []string{
		"funnel.state_order", "funnel.self_exclusion", "funnel.lb_prune",
		"funnel.exact_distance", "funnel.topk_merge",
	}
	for _, stage := range stages {
		n, ok := byName[stage]
		if !ok {
			t.Errorf("missing funnel stage %s", stage)
			continue
		}
		if n.ParentID != search.SpanID {
			t.Errorf("%s nested under %s, want matcher.search", stage, n.ParentID)
		}
	}
	// JSON numbers decode as float64; the funnel must sum exactly.
	attr := func(span, key string) int {
		n := byName[span]
		if n == nil {
			return -1
		}
		v, _ := n.Attrs[key].(float64)
		return int(v)
	}
	scanned := attr("funnel.state_order", "candidates")
	sum := attr("funnel.self_exclusion", "selfExcluded") +
		attr("funnel.lb_prune", "lbPruned") +
		attr("funnel.exact_distance", "distRejected") +
		attr("funnel.topk_merge", "matched")
	if scanned < 0 || scanned != sum {
		t.Errorf("funnel does not sum: scanned=%d, downstream stages account for %d", scanned, sum)
	}
	if got := attr("funnel.topk_merge", "matched"); got != len(mr.Matches) {
		t.Errorf("profile matched=%d, response has %d matches", got, len(mr.Matches))
	}

	// The finished trace is retrievable by ID from /v1/traces.
	tr, err := http.Get(ts.URL + "/v1/traces?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	payload := decode[struct {
		Recent []obs.TraceData `json:"recent"`
	}](t, tr)
	if len(payload.Recent) != 1 || payload.Recent[0].TraceID != traceID {
		t.Fatalf("/v1/traces?trace=%s returned %d traces", traceID, len(payload.Recent))
	}
}

// TestHealthzReportsBuildInfo pins the fleet-audit fields.
func TestHealthzReportsBuildInfo(t *testing.T) {
	ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	hr := decode[HealthzResponse](t, resp)
	wantV, wantGo := obs.BuildInfo()
	if hr.Version != wantV || hr.GoVersion != wantGo {
		t.Fatalf("healthz build info (%q, %q), want (%q, %q)", hr.Version, hr.GoVersion, wantV, wantGo)
	}
}

func keys(m map[string]*obs.SpanNode) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
