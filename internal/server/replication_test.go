package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
	"stsmatch/internal/wal"
)

// newReplServer builds an in-memory server and its test listener.
func newReplServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func respSamples(t *testing.T, seed int64, seconds float64) []SampleIn {
	t.Helper()
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), seed)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(seconds)
	out := make([]SampleIn, len(samples))
	for i, s := range samples {
		out[i] = SampleIn{T: s.T, Pos: s.Pos}
	}
	return out
}

func ingestBatches(t *testing.T, baseURL, sid string, samples []SampleIn, batchSize int) {
	t.Helper()
	for i := 0; i < len(samples); i += batchSize {
		end := min(i+batchSize, len(samples))
		resp := postJSON(t, baseURL+"/v1/sessions/"+sid+"/samples", samples[i:end])
		sr := decode[SamplesResponse](t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		if len(sr.ReplicaErrors) > 0 {
			t.Fatalf("ingest reported replica errors: %v", sr.ReplicaErrors)
		}
	}
}

// TestReplicationShipsStream: a session created with a replica target
// is mirrored vertex-for-vertex on the follower, and the follower
// reports it as a replica, not a live session.
func TestReplicationShipsStream(t *testing.T) {
	_, replica := newReplServer(t, Options{})
	primarySrv, primary := newReplServer(t, Options{AdvertiseURL: "http://primary"})

	resp := postJSON(t, primary.URL+"/v1/sessions", CreateSessionRequest{
		PatientID: "P01", SessionID: "S01", Replicate: []string{replica.URL},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	ingestBatches(t, primary.URL, "S01", respSamples(t, 7, 40), 256)

	primaryPLR, code := getJSON[PLRResponse](t, primary.URL+"/v1/sessions/S01/plr")
	if code != http.StatusOK {
		t.Fatalf("primary plr status %d", code)
	}
	if len(primaryPLR.Vertices) == 0 {
		t.Fatal("primary produced no vertices")
	}

	// The follower holds the identical stream...
	stats, code := getJSON[ShardStatsResponse](t, replica.URL+"/v1/shard/stats")
	if code != http.StatusOK {
		t.Fatalf("replica stats status %d", code)
	}
	if len(stats.Sessions) != 0 {
		t.Errorf("replica lists %d live sessions, want 0", len(stats.Sessions))
	}
	if len(stats.Replicas) != 1 || stats.Replicas[0].SessionID != "S01" {
		t.Fatalf("replica inventory = %+v, want S01", stats.Replicas)
	}
	if stats.Vertices != len(primaryPLR.Vertices) {
		t.Errorf("replica holds %d vertices, primary %d", stats.Vertices, len(primaryPLR.Vertices))
	}

	// ...and answers /v1/match identically to the primary.
	q := MatchRequest{Seq: primaryPLR.Vertices[len(primaryPLR.Vertices)-6:], PatientID: "P01", SessionID: "S01"}
	mp := decode[MatchResponse](t, postJSON(t, primary.URL+"/v1/match", q))
	mr := decode[MatchResponse](t, postJSON(t, replica.URL+"/v1/match", q))
	if len(mp.Matches) == 0 {
		t.Fatal("primary match returned nothing")
	}
	if len(mp.Matches) != len(mr.Matches) {
		t.Fatalf("match count: primary %d, replica %d", len(mp.Matches), len(mr.Matches))
	}
	for i := range mp.Matches {
		if mp.Matches[i] != mr.Matches[i] {
			t.Fatalf("match %d differs: primary %+v, replica %+v", i, mp.Matches[i], mr.Matches[i])
		}
	}

	// Primary healthz shows a drained backlog.
	hz, _ := getJSON[HealthzResponse](t, primary.URL+"/v1/healthz")
	if hz.Replication == nil || hz.Replication.PrimarySessions != 1 {
		t.Fatalf("primary replication health = %+v", hz.Replication)
	}
	if hz.Replication.MaxLagRecords != 0 {
		t.Errorf("lag = %d after synchronous flush, want 0", hz.Replication.MaxLagRecords)
	}
	_ = primarySrv
}

// TestReplicateEndpointGapAndFencing drives /v1/replicate directly:
// a gap answers 409 without applying anything, a snapshot re-anchors,
// and a stale epoch answers 412.
func TestReplicateEndpointGapAndFencing(t *testing.T) {
	srv, ts := newReplServer(t, Options{})

	post := func(b wal.Batch) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/replicate", "application/octet-stream",
			bytes.NewReader(wal.EncodeBatch(b)))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	verts := func(t0 float64, n int) plr.Sequence {
		vs := make(plr.Sequence, n)
		for i := range vs {
			vs[i] = plr.Vertex{T: t0 + float64(i), Pos: []float64{float64(i)}, State: plr.IN}
		}
		return vs
	}
	batch := func(epoch, firstSeq uint64, recs ...wal.Record) wal.Batch {
		return wal.Batch{Source: "http://primary", SessionID: "SG", PatientID: "PG",
			Epoch: epoch, FirstSeq: firstSeq, Records: recs}
	}
	open := wal.Record{Type: wal.TypeStreamOpen, PatientID: "PG", SessionID: "SG"}

	// Contiguous from scratch: accepted.
	resp := post(batch(1, 1, open, wal.Record{Type: wal.TypeVertexAppend, PatientID: "PG", SessionID: "SG", Vertices: verts(0, 3)}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("initial batch status %d", resp.StatusCode)
	}
	ack := decode[ReplicateResponse](t, resp)
	if ack.NextSeq != 3 || ack.Applied != 2 {
		t.Fatalf("ack = %+v, want nextSeq 3 applied 2", ack)
	}

	// Gap (skipping seq 3): 409, nothing applied.
	before := srv.db.NumVertices()
	resp = post(batch(1, 5, wal.Record{Type: wal.TypeVertexAppend, PatientID: "PG", SessionID: "SG", Vertices: verts(10, 2)}))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gapped batch status %d, want 409", resp.StatusCode)
	}
	if got := srv.db.NumVertices(); got != before {
		t.Fatalf("gapped batch applied records: %d -> %d vertices", before, got)
	}

	// Snapshot catch-up at an arbitrary sequence: accepted, re-anchors.
	snap := wal.Record{Type: wal.TypeReplicaSnapshot, PatientID: "PG", SessionID: "SG",
		Vertices: verts(0, 6), Samples: 60, AnchorT: 5, AnchorPos: []float64{5}}
	resp = post(batch(1, 40, snap))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot batch status %d", resp.StatusCode)
	}
	if ack := decode[ReplicateResponse](t, resp); ack.NextSeq != 41 {
		t.Fatalf("post-snapshot nextSeq = %d, want 41", ack.NextSeq)
	}
	if got := srv.db.NumVertices(); got != 6 {
		t.Fatalf("snapshot left %d vertices, want 6", got)
	}

	// Stale epoch after the follower saw epoch 1 via... bump epoch first.
	snap2 := snap
	snap2.Vertices = verts(0, 7)
	if resp := post(batch(3, 1, snap2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch-3 snapshot status %d", resp.StatusCode)
	}
	resp = post(batch(2, 50, wal.Record{Type: wal.TypeVertexAppend, PatientID: "PG", SessionID: "SG", Vertices: verts(20, 1)}))
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("stale-epoch batch status %d, want 412", resp.StatusCode)
	}
}

// TestPromoteFailsOver: after promotion the replica serves the session
// as primary — same PLR, continued ingestion — and fences the deposed
// primary's further shipments.
func TestPromoteFailsOver(t *testing.T) {
	_, replica := newReplServer(t, Options{})
	_, primary := newReplServer(t, Options{AdvertiseURL: "http://primary"})

	resp := postJSON(t, primary.URL+"/v1/sessions", CreateSessionRequest{
		PatientID: "P01", SessionID: "S01", Replicate: []string{replica.URL},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	samples := respSamples(t, 11, 60)
	half := len(samples) / 2
	ingestBatches(t, primary.URL, "S01", samples[:half], 256)

	primaryPLR, _ := getJSON[PLRResponse](t, primary.URL+"/v1/sessions/S01/plr")

	// Fail over to the replica.
	resp = postJSON(t, replica.URL+"/v1/sessions/S01/promote", PromoteRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote status %d", resp.StatusCode)
	}
	pr := decode[PromoteResponse](t, resp)
	if pr.Epoch != 2 {
		t.Errorf("promoted epoch = %d, want 2", pr.Epoch)
	}
	if pr.Vertices != len(primaryPLR.Vertices) {
		t.Errorf("promoted with %d vertices, primary had %d", pr.Vertices, len(primaryPLR.Vertices))
	}

	// Identical PLR on the new primary.
	promotedPLR, code := getJSON[PLRResponse](t, replica.URL+"/v1/sessions/S01/plr")
	if code != http.StatusOK {
		t.Fatalf("promoted plr status %d", code)
	}
	if len(promotedPLR.Vertices) != len(primaryPLR.Vertices) {
		t.Fatalf("promoted PLR has %d vertices, want %d", len(promotedPLR.Vertices), len(primaryPLR.Vertices))
	}
	for i, v := range primaryPLR.Vertices {
		w := promotedPLR.Vertices[i]
		if v.T != w.T || v.State != w.State {
			t.Fatalf("vertex %d differs after promotion: %+v vs %+v", i, v, w)
		}
	}

	// Promotion is idempotent (a gateway retry converges).
	resp = postJSON(t, replica.URL+"/v1/sessions/S01/promote", PromoteRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-promote status %d", resp.StatusCode)
	}

	// The deposed primary's next shipment is fenced: the ingest still
	// succeeds locally but reports the replica error.
	resp = postJSON(t, primary.URL+"/v1/sessions/S01/samples", samples[half:half+64])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deposed ingest status %d", resp.StatusCode)
	}
	if sr := decode[SamplesResponse](t, resp); len(sr.ReplicaErrors) == 0 {
		t.Error("deposed primary's ingest reported no replica errors")
	}

	// The new primary keeps accepting the stream where it left off.
	var cont []SampleIn
	for _, s := range samples[half:] {
		if s.T > promotedPLR.Vertices[len(promotedPLR.Vertices)-1].T {
			cont = append(cont, s)
		}
	}
	resp = postJSON(t, replica.URL+"/v1/sessions/S01/samples", cont)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-failover ingest status %d", resp.StatusCode)
	}
	if sr := decode[SamplesResponse](t, resp); sr.Accepted != len(cont) {
		t.Errorf("post-failover Accepted = %d, want %d", sr.Accepted, len(cont))
	}
}

// TestPromotedPrimaryLeadsWithSnapshot: a promoted primary given new
// replica targets brings them current via snapshot, so a second
// failover would lose nothing either.
func TestPromotedPrimaryLeadsWithSnapshot(t *testing.T) {
	_, replicaB := newReplServer(t, Options{})
	_, replicaC := newReplServer(t, Options{})
	_, primary := newReplServer(t, Options{AdvertiseURL: "http://primary"})

	resp := postJSON(t, primary.URL+"/v1/sessions", CreateSessionRequest{
		PatientID: "P01", SessionID: "S01", Replicate: []string{replicaB.URL},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	samples := respSamples(t, 13, 50)
	half := len(samples) / 2
	ingestBatches(t, primary.URL, "S01", samples[:half], 256)

	// Promote B with C as its new replica: C starts empty and must be
	// caught up by snapshot.
	resp = postJSON(t, replicaB.URL+"/v1/sessions/S01/promote", PromoteRequest{Replicate: []string{replicaC.URL}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote status %d", resp.StatusCode)
	}

	bPLR, _ := getJSON[PLRResponse](t, replicaB.URL+"/v1/sessions/S01/plr")
	var cont []SampleIn
	for _, s := range samples[half:] {
		if s.T > bPLR.Vertices[len(bPLR.Vertices)-1].T {
			cont = append(cont, s)
		}
	}
	resp = postJSON(t, replicaB.URL+"/v1/sessions/S01/samples", cont)
	sr := decode[SamplesResponse](t, resp)
	if resp.StatusCode != http.StatusOK || len(sr.ReplicaErrors) > 0 {
		t.Fatalf("promoted ingest: status %d, replica errors %v", resp.StatusCode, sr.ReplicaErrors)
	}

	// C mirrors B.
	bStats, _ := getJSON[ShardStatsResponse](t, replicaB.URL+"/v1/shard/stats")
	cStats, _ := getJSON[ShardStatsResponse](t, replicaC.URL+"/v1/shard/stats")
	if cStats.Vertices != bStats.Vertices {
		t.Fatalf("snapshot catch-up left C at %d vertices, B has %d", cStats.Vertices, bStats.Vertices)
	}
	if len(cStats.Replicas) != 1 || cStats.Replicas[0].SessionID != "S01" {
		t.Fatalf("C inventory = %+v", cStats.Replicas)
	}
}

// TestReplicateAllowlist: with ReplicateFrom set, shipments from other
// sources are refused.
func TestReplicateAllowlist(t *testing.T) {
	_, ts := newReplServer(t, Options{ReplicateFrom: []string{"http://trusted"}})
	b := wal.Batch{Source: "http://stranger", SessionID: "SX", PatientID: "PX", Epoch: 1, FirstSeq: 1,
		Records: []wal.Record{{Type: wal.TypeStreamOpen, PatientID: "PX", SessionID: "SX"}}}
	resp, err := http.Post(ts.URL+"/v1/replicate", "application/octet-stream",
		bytes.NewReader(wal.EncodeBatch(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("untrusted source status %d, want 403", resp.StatusCode)
	}
}

// TestFollowerRestartRecoversReplicaAsHistory: a durable follower that
// restarts keeps the replicated stream as history and does not
// resurrect it as a live session.
func TestFollowerRestartRecoversReplicaAsHistory(t *testing.T) {
	dir := t.TempDir()
	_, follower := newDurableServer(t, dir)
	_, primary := newReplServer(t, Options{AdvertiseURL: "http://primary"})

	resp := postJSON(t, primary.URL+"/v1/sessions", CreateSessionRequest{
		PatientID: "P01", SessionID: "S01", Replicate: []string{follower.URL},
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	ingestBatches(t, primary.URL, "S01", respSamples(t, 17, 30), 256)

	stats, _ := getJSON[ShardStatsResponse](t, follower.URL+"/v1/shard/stats")
	if stats.Vertices == 0 {
		t.Fatal("follower received nothing before restart")
	}
	follower.Close() // crash the follower

	_, follower2 := newDurableServer(t, dir)
	hz, _ := getJSON[HealthzResponse](t, follower2.URL+"/v1/healthz")
	if hz.OpenSessions != 0 {
		t.Errorf("replicated session resurrected as live: OpenSessions = %d", hz.OpenSessions)
	}
	if hz.Vertices != stats.Vertices {
		t.Errorf("recovered %d vertices, follower had %d", hz.Vertices, stats.Vertices)
	}
}
