package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/sigindex"
	"stsmatch/internal/signal"
)

// newIndexedServer builds a durable server with the signature index
// on and fsync on every append, so abandoning it without Close models
// a hard crash that loses nothing acknowledged.
func newIndexedServer(t *testing.T, dir string, matchIndex bool) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), Options{
		DataDir:       dir,
		FsyncInterval: 0,
		MatchIndex:    matchIndex,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func ingestRespiration(t *testing.T, baseURL, pid, sid string, seed int64, seconds float64) {
	t.Helper()
	resp := postJSON(t, baseURL+"/v1/sessions", CreateSessionRequest{PatientID: pid, SessionID: sid})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s/%s status %d", pid, sid, resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), seed)
	if err != nil {
		t.Fatal(err)
	}
	var batch []SampleIn
	for _, s := range gen.Generate(seconds) {
		batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
	}
	if resp := postJSON(t, baseURL+"/v1/sessions/"+sid+"/samples", batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest %s status %d", sid, resp.StatusCode)
	}
}

// compareScanProbed asserts that a scan matcher and an index-backed
// matcher over the same database return byte-identical results across
// every search mode.
func compareScanProbed(t *testing.T, srv *Server, pid, sid string) {
	t.Helper()
	db := srv.DB()
	st := db.Patient(pid).StreamBySession(sid)
	if st == nil {
		t.Fatalf("stream %s/%s missing", pid, sid)
	}
	seq := st.Seq()
	if len(seq) < 10 {
		t.Fatalf("stream %s/%s too short: %d vertices", pid, sid, len(seq))
	}
	q := core.NewQuery(seq[len(seq)-10:], pid, sid)
	params := core.DefaultParams()
	scanM, err := core.NewMatcher(db, params)
	if err != nil {
		t.Fatal(err)
	}
	params.UseIndex = true
	probeM, err := core.NewMatcher(db, params)
	if err != nil {
		t.Fatal(err)
	}
	probeM.Index = srv.SigIndex()

	check := func(mode string, a, b []core.Match, err1, err2 error) {
		t.Helper()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: scan err %v, probed err %v", mode, err1, err2)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: scan %d matches, probed %d", mode, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: result %d differs:\nscan:   %+v\nprobed: %+v", mode, i, a[i], b[i])
			}
		}
	}
	a, err1 := scanM.FindSimilar(q, nil)
	b, err2 := probeM.FindSimilar(q, nil)
	check("FindSimilar", a, b, err1, err2)
	if len(a) == 0 {
		t.Error("FindSimilar returned nothing; equivalence check is vacuous")
	}
	a, err1 = scanM.TopK(q, 5, nil)
	b, err2 = probeM.TopK(q, 5, nil)
	check("TopK", a, b, err1, err2)
	a, err1 = scanM.FindSimilarTopK(q, 5, nil)
	b, err2 = probeM.FindSimilarTopK(q, 5, nil)
	check("FindSimilarTopK", a, b, err1, err2)
}

// TestIndexCrashRecovery is the index persistence contract: a server
// with the signature index on is killed mid-stream (hard close plus a
// torn WAL tail), restarted WITHOUT the flag, and must (a) re-enable
// the index from the persisted configuration, (b) keep the rebuilt
// index byte-identical to a fresh build over the recovered database —
// even after further incremental ingestion — and (c) answer probed
// searches byte-identically to a full scan.
func TestIndexCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	// --- Server A: index on, two patients ingesting. Crash. ---
	_, ts := newIndexedServer(t, dir, true)
	ingestRespiration(t, ts.URL, "P01", "S01", 7, 60)
	ingestRespiration(t, ts.URL, "P02", "S02", 11, 60)
	hz, code := getJSON[HealthzResponse](t, ts.URL+"/v1/healthz")
	if code != http.StatusOK || hz.Index == nil || !hz.Index.Enabled {
		t.Fatalf("healthz before crash: code %d, index %+v", code, hz.Index)
	}
	if hz.Index.Windows == 0 {
		t.Fatal("index holds no windows before crash")
	}
	ts.Close() // hard crash: no srv.Close, no snapshot

	// Tear the WAL tail: drop the final bytes of the newest segment,
	// as a crash mid-append would.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 7 {
		if err := os.Truncate(last, fi.Size()-7); err != nil {
			t.Fatal(err)
		}
	}

	// --- Server B: recover WITHOUT the flag. ---
	srv2, ts2 := newIndexedServer(t, dir, false)
	if srv2.SigIndex() == nil {
		t.Fatal("persisted index config did not re-enable the index")
	}
	hz2, code := getJSON[HealthzResponse](t, ts2.URL+"/v1/healthz")
	if code != http.StatusOK || hz2.Index == nil || !hz2.Index.Enabled {
		t.Fatalf("healthz after recovery: code %d, index %+v", code, hz2.Index)
	}
	if hz2.Index.MinSegments != hz.Index.MinSegments || hz2.Index.MaxSegments != hz.Index.MaxSegments ||
		hz2.Index.AmpBucket != hz.Index.AmpBucket || hz2.Index.DurBucket != hz.Index.DurBucket {
		t.Fatalf("recovered index config %+v differs from pre-crash %+v", hz2.Index, hz.Index)
	}
	if hz2.Index.PoisonedStreams != 0 {
		t.Errorf("recovery poisoned %d streams", hz2.Index.PoisonedStreams)
	}

	compareScanProbed(t, srv2, "P01", "S01")

	// Keep ingesting through the resumed session: the mutation hook
	// must keep the index incremental state identical to a rebuild.
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 7)
	if err != nil {
		t.Fatal(err)
	}
	all := gen.Generate(90)
	st := srv2.DB().Patient("P01").StreamBySession("S01")
	lastT := st.Seq()[st.Len()-1].T
	var cont []SampleIn
	for _, s := range all {
		if s.T > lastT {
			cont = append(cont, SampleIn{T: s.T, Pos: s.Pos})
		}
	}
	if resp := postJSON(t, ts2.URL+"/v1/sessions/S01/samples", cont); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest status %d", resp.StatusCode)
	}

	fresh, err := sigindex.New(srv2.SigIndex().Config())
	if err != nil {
		t.Fatal(err)
	}
	fresh.BuildFrom(srv2.DB())
	if !bytes.Equal(srv2.SigIndex().Dump(), fresh.Dump()) {
		t.Fatal("recovered+incremental index differs from a fresh build over the recovered database")
	}

	compareScanProbed(t, srv2, "P01", "S01")
	compareScanProbed(t, srv2, "P02", "S02")
}
