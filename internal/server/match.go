package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"stsmatch/internal/core"
	"stsmatch/internal/obs"
	"stsmatch/internal/plr"
)

// MatchRequest is a serialized similarity query, as POSTed by the
// sharding gateway (or any remote caller) to /v1/match. The sequence
// carries its provenance so the shard can classify every candidate's
// source relation exactly as a local search would.
type MatchRequest struct {
	Seq plr.Sequence `json:"seq"`
	// PatientID/SessionID identify the stream the query was taken
	// from; empty for ad-hoc queries (every candidate is then
	// other-patient).
	PatientID string `json:"patientId,omitempty"`
	SessionID string `json:"sessionId,omitempty"`
	// Now overrides the query's current time (defaults to the last
	// vertex's T). Same-session candidates must end strictly before
	// the query begins regardless.
	Now *float64 `json:"now,omitempty"`
	// K > 0 requests the k nearest neighbours ignoring the distance
	// threshold (Matcher.TopK); K == 0 returns every match within the
	// threshold (Matcher.FindSimilar).
	K int `json:"k,omitempty"`
	// MaxLag is interpreted by the gateway, not by shards: the number
	// of vertices of replication lag the client tolerates per patient.
	// 0 (the default) keeps every scatter leg on primaries; > 0 lets
	// the gateway serve a patient's arc from a follower whose holdings
	// trail the primary by at most MaxLag vertices.
	MaxLag int `json:"maxLag,omitempty"`
}

// RemoteMatch is one match in wire form: the stream is named rather
// than referenced, and the relation/weight are resolved so a merging
// gateway needs no knowledge of the shard's parameters.
type RemoteMatch struct {
	PatientID string  `json:"patientId"`
	SessionID string  `json:"sessionId"`
	Start     int     `json:"start"`
	N         int     `json:"n"`
	Relation  string  `json:"relation"`
	Distance  float64 `json:"distance"`
	Weight    float64 `json:"weight"`
}

// MatchResponse is the shard-local result set, sorted by ascending
// distance. Profile is present only for ?debug=profile requests: the
// shard's span tree for this query (handler root, matcher.search, and
// the per-stage funnel spans with candidate counts).
type MatchResponse struct {
	Matches []RemoteMatch `json:"matches"`
	Profile *obs.Profile  `json:"profile,omitempty"`
	// Refused lists patients this shard declined to score because its
	// holdings were below the leg's X-Match-Require bound (see
	// readpath.go); the gateway retries them on another holder.
	Refused []string `json:"refused,omitempty"`
	// Freshness reports this shard's holdings for every patient the
	// leg's scope named, refused or served — the gateway's freshness
	// tracker converges from these piggybacks.
	Freshness map[string]PatientFreshness `json:"freshness,omitempty"`
}

// handleMatch runs a similarity search for a serialized query. Like
// prediction, the search runs on a pooled matcher outside the session
// lock, so remote queries never block ingestion.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	s.capBody(w, r)
	var req MatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrCode(err), fmt.Errorf("decoding match request: %w", err))
		return
	}
	if len(req.Seq) < 2 {
		httpError(w, http.StatusBadRequest, errors.New("query sequence needs at least 2 vertices"))
		return
	}
	if err := req.Seq.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid query sequence: %w", err))
		return
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 0, got %d", req.K))
		return
	}
	scope, err := ParseMatchScope(r.Header)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// A read's token must lower-bound its data: snapshot the store
	// high-water mark BEFORE touching the store, so a write landing
	// mid-query leaves the response token older than the scored data,
	// never newer. Leaving the stamp to seqWriter's lazy first-write
	// path would evaluate it AFTER scoring; a token newer than the data
	// lets the gateway's cache re-file pre-write bytes under a
	// post-write key (an acked write would then vanish from a hit).
	w.Header().Set(HeaderStoreSeq, s.storeSeqToken())
	restrict, refused, fresh := s.matchScopeRestrict(scope)
	q := core.NewQuery(req.Seq, req.PatientID, req.SessionID)
	if req.Now != nil {
		q.Now = *req.Now
	}
	matcher := s.matchers.Get().(*core.Matcher)
	defer s.matchers.Put(matcher)
	var matches []core.Match
	if req.K > 0 {
		matches, err = matcher.TopKCtx(r.Context(), q, req.K, restrict)
	} else {
		matches, err = matcher.FindSimilarCtx(r.Context(), q, restrict)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if s.testHookMidMatch != nil {
		s.testHookMidMatch()
	}
	out := make([]RemoteMatch, len(matches))
	for i, mt := range matches {
		out[i] = RemoteMatch{
			PatientID: mt.Stream.PatientID,
			SessionID: mt.Stream.SessionID,
			Start:     mt.Start,
			N:         mt.N,
			Relation:  mt.Relation.String(),
			Distance:  mt.Distance,
			Weight:    mt.Weight,
		}
	}
	sort.Strings(refused)
	resp := MatchResponse{Matches: out, Refused: refused, Freshness: fresh}
	if r.URL.Query().Get("debug") == "profile" {
		// Inline "explain": serialize this query's span tree. The
		// handler root span is still open, so it reports elapsed-so-far
		// and is marked inProgress.
		if id, spans := obs.SnapshotTrace(r.Context()); id != "" {
			resp.Profile = &obs.Profile{TraceID: id, Root: obs.BuildTree(spans)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ShardSession describes one open ingestion session in shard-local
// stats.
type ShardSession struct {
	SessionID string `json:"sessionId"`
	PatientID string `json:"patientId"`
	Samples   int    `json:"samples"`
	// Vertices is the session stream's current length — the per-session
	// high-water mark a freshness tracker compares across holders.
	Vertices int `json:"vertices"`
	// Links reports, for a primary session, each replica link's
	// assigned/acked sequence numbers (see ReplLinkStatus); absent on
	// unreplicated sessions and on Replicas entries.
	Links []ReplLinkStatus `json:"links,omitempty"`
	// AppliedSeq is, for a Replicas entry, the highest shipping
	// sequence number this follower has contiguously applied.
	AppliedSeq uint64 `json:"appliedSeq,omitempty"`
}

// ShardStatsResponse is the shard-local inventory served at
// /v1/shard/stats: enough for a gateway to aggregate database totals
// and to rediscover which shard owns an open session after a restart.
type ShardStatsResponse struct {
	Patients int            `json:"patients"`
	Streams  int            `json:"streams"`
	Vertices int            `json:"vertices"`
	Sessions []ShardSession `json:"sessions"`
	// Replicas lists the sessions this shard follows as a replica:
	// failover candidates, not primaries — a gateway rediscovering
	// placement must route to a Sessions entry, never a Replicas one.
	Replicas []ShardSession `json:"replicas,omitempty"`
	// Freshness reports this shard's holdings per patient, for every
	// patient with a live or followed session here. The gateway's
	// freshness tracker seeds itself from these on its polling path.
	Freshness map[string]PatientFreshness `json:"freshness,omitempty"`
}

func (s *Server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	s.lock()
	sessions := make([]ShardSession, 0, len(s.sessions))
	fresh := make(map[string]PatientFreshness)
	for sid, sess := range s.sessions {
		entry := ShardSession{
			SessionID: sid,
			PatientID: sess.patientID,
			Samples:   sess.samples,
			Vertices:  sess.stream.Len(),
		}
		if sess.repl != nil {
			entry.Links = sess.repl.linkStatuses()
		}
		sessions = append(sessions, entry)
		if _, ok := fresh[sess.patientID]; !ok {
			fresh[sess.patientID] = s.patientFreshnessLocked(sess.patientID)
		}
	}
	replicas := make([]ShardSession, 0, len(s.replicas))
	for sid, rs := range s.replicas {
		entry := ShardSession{
			SessionID: sid,
			PatientID: rs.patientID,
			Samples:   int(rs.samples),
		}
		if rs.stream != nil {
			entry.Vertices = rs.stream.Len()
		}
		if rs.cursor.Next > 0 {
			entry.AppliedSeq = rs.cursor.Next - 1
		}
		replicas = append(replicas, entry)
		if _, ok := fresh[rs.patientID]; !ok {
			fresh[rs.patientID] = s.patientFreshnessLocked(rs.patientID)
		}
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(a, b int) bool { return sessions[a].SessionID < sessions[b].SessionID })
	sort.Slice(replicas, func(a, b int) bool { return replicas[a].SessionID < replicas[b].SessionID })
	if len(fresh) == 0 {
		fresh = nil
	}
	writeJSON(w, http.StatusOK, ShardStatsResponse{
		Patients:  s.db.NumPatients(),
		Streams:   len(s.db.Streams()),
		Vertices:  s.db.NumVertices(),
		Sessions:  sessions,
		Replicas:  replicas,
		Freshness: fresh,
	})
}
