package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"

	"stsmatch/internal/core"
	"stsmatch/internal/obs"
	"stsmatch/internal/plr"
)

// MatchRequest is a serialized similarity query, as POSTed by the
// sharding gateway (or any remote caller) to /v1/match. The sequence
// carries its provenance so the shard can classify every candidate's
// source relation exactly as a local search would.
type MatchRequest struct {
	Seq plr.Sequence `json:"seq"`
	// PatientID/SessionID identify the stream the query was taken
	// from; empty for ad-hoc queries (every candidate is then
	// other-patient).
	PatientID string `json:"patientId,omitempty"`
	SessionID string `json:"sessionId,omitempty"`
	// Now overrides the query's current time (defaults to the last
	// vertex's T). Same-session candidates must end strictly before
	// the query begins regardless.
	Now *float64 `json:"now,omitempty"`
	// K > 0 requests the k nearest neighbours ignoring the distance
	// threshold (Matcher.TopK); K == 0 returns every match within the
	// threshold (Matcher.FindSimilar).
	K int `json:"k,omitempty"`
}

// RemoteMatch is one match in wire form: the stream is named rather
// than referenced, and the relation/weight are resolved so a merging
// gateway needs no knowledge of the shard's parameters.
type RemoteMatch struct {
	PatientID string  `json:"patientId"`
	SessionID string  `json:"sessionId"`
	Start     int     `json:"start"`
	N         int     `json:"n"`
	Relation  string  `json:"relation"`
	Distance  float64 `json:"distance"`
	Weight    float64 `json:"weight"`
}

// MatchResponse is the shard-local result set, sorted by ascending
// distance. Profile is present only for ?debug=profile requests: the
// shard's span tree for this query (handler root, matcher.search, and
// the per-stage funnel spans with candidate counts).
type MatchResponse struct {
	Matches []RemoteMatch `json:"matches"`
	Profile *obs.Profile  `json:"profile,omitempty"`
}

// handleMatch runs a similarity search for a serialized query. Like
// prediction, the search runs on a pooled matcher outside the session
// lock, so remote queries never block ingestion.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	s.capBody(w, r)
	var req MatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrCode(err), fmt.Errorf("decoding match request: %w", err))
		return
	}
	if len(req.Seq) < 2 {
		httpError(w, http.StatusBadRequest, errors.New("query sequence needs at least 2 vertices"))
		return
	}
	if err := req.Seq.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid query sequence: %w", err))
		return
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 0, got %d", req.K))
		return
	}
	q := core.NewQuery(req.Seq, req.PatientID, req.SessionID)
	if req.Now != nil {
		q.Now = *req.Now
	}
	matcher := s.matchers.Get().(*core.Matcher)
	defer s.matchers.Put(matcher)
	var matches []core.Match
	var err error
	if req.K > 0 {
		matches, err = matcher.TopKCtx(r.Context(), q, req.K, nil)
	} else {
		matches, err = matcher.FindSimilarCtx(r.Context(), q, nil)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	out := make([]RemoteMatch, len(matches))
	for i, mt := range matches {
		out[i] = RemoteMatch{
			PatientID: mt.Stream.PatientID,
			SessionID: mt.Stream.SessionID,
			Start:     mt.Start,
			N:         mt.N,
			Relation:  mt.Relation.String(),
			Distance:  mt.Distance,
			Weight:    mt.Weight,
		}
	}
	resp := MatchResponse{Matches: out}
	if r.URL.Query().Get("debug") == "profile" {
		// Inline "explain": serialize this query's span tree. The
		// handler root span is still open, so it reports elapsed-so-far
		// and is marked inProgress.
		if id, spans := obs.SnapshotTrace(r.Context()); id != "" {
			resp.Profile = &obs.Profile{TraceID: id, Root: obs.BuildTree(spans)}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// ShardSession describes one open ingestion session in shard-local
// stats.
type ShardSession struct {
	SessionID string `json:"sessionId"`
	PatientID string `json:"patientId"`
	Samples   int    `json:"samples"`
}

// ShardStatsResponse is the shard-local inventory served at
// /v1/shard/stats: enough for a gateway to aggregate database totals
// and to rediscover which shard owns an open session after a restart.
type ShardStatsResponse struct {
	Patients int            `json:"patients"`
	Streams  int            `json:"streams"`
	Vertices int            `json:"vertices"`
	Sessions []ShardSession `json:"sessions"`
	// Replicas lists the sessions this shard follows as a replica:
	// failover candidates, not primaries — a gateway rediscovering
	// placement must route to a Sessions entry, never a Replicas one.
	Replicas []ShardSession `json:"replicas,omitempty"`
}

func (s *Server) handleShardStats(w http.ResponseWriter, r *http.Request) {
	s.lock()
	sessions := make([]ShardSession, 0, len(s.sessions))
	for sid, sess := range s.sessions {
		sessions = append(sessions, ShardSession{
			SessionID: sid,
			PatientID: sess.patientID,
			Samples:   sess.samples,
		})
	}
	replicas := make([]ShardSession, 0, len(s.replicas))
	for sid, rs := range s.replicas {
		replicas = append(replicas, ShardSession{
			SessionID: sid,
			PatientID: rs.patientID,
			Samples:   int(rs.samples),
		})
	}
	s.mu.Unlock()
	sort.Slice(sessions, func(a, b int) bool { return sessions[a].SessionID < sessions[b].SessionID })
	sort.Slice(replicas, func(a, b int) bool { return replicas[a].SessionID < replicas[b].SessionID })
	writeJSON(w, http.StatusOK, ShardStatsResponse{
		Patients: s.db.NumPatients(),
		Streams:  len(s.db.Streams()),
		Vertices: s.db.NumVertices(),
		Sessions: sessions,
		Replicas: replicas,
	})
}
