package server

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
)

// matchTestServer ingests one synthetic session so the database has
// searchable history, and returns the server plus the session's PLR.
func matchTestServer(t *testing.T) (*httptest.Server, plr.Sequence) {
	t.Helper()
	ts := newTestServer(t, nil)
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 7)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(45)
	for i := 0; i < len(samples); i += 512 {
		end := min(i+512, len(samples))
		batch := make([]SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
		}
		if resp := postJSON(t, ts.URL+"/v1/sessions/S01/samples", batch); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
	resp, err2 := http.Get(ts.URL + "/v1/sessions/S01/plr")
	if err2 != nil {
		t.Fatal(err2)
	}
	defer resp.Body.Close()
	pr := decode[PLRResponse](t, resp)
	if len(pr.Vertices) < 12 {
		t.Fatalf("PLR too short: %d", len(pr.Vertices))
	}
	return ts, plr.Sequence(pr.Vertices)
}

func TestMatchEndpoint(t *testing.T) {
	ts, seq := matchTestServer(t)
	qseq := seq[len(seq)-10:]

	// Threshold mode (k = 0) with same-session provenance: matches
	// must be sorted and self-excluded windows absent.
	resp := postJSON(t, ts.URL+"/v1/match", MatchRequest{Seq: qseq, PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match status %d", resp.StatusCode)
	}
	mr := decode[MatchResponse](t, resp)
	if len(mr.Matches) == 0 {
		t.Fatal("no matches on a regular breathing stream")
	}
	if !sort.SliceIsSorted(mr.Matches, func(a, b int) bool {
		return mr.Matches[a].Distance < mr.Matches[b].Distance
	}) {
		t.Error("matches not sorted by ascending distance")
	}
	for _, m := range mr.Matches {
		if m.Relation != "same-session" {
			t.Errorf("single-stream db produced relation %q", m.Relation)
		}
		if m.N != len(qseq) {
			t.Errorf("match N = %d, want %d", m.N, len(qseq))
		}
	}

	// Top-k mode returns exactly k (the stream has many candidates).
	resp = postJSON(t, ts.URL+"/v1/match", MatchRequest{Seq: qseq, PatientID: "P01", SessionID: "S01", K: 3})
	topk := decode[MatchResponse](t, resp)
	if len(topk.Matches) != 3 {
		t.Errorf("top-k returned %d, want 3", len(topk.Matches))
	}

	// Ad-hoc query (no provenance): every candidate is other-patient.
	resp = postJSON(t, ts.URL+"/v1/match", MatchRequest{Seq: qseq, K: 2})
	adhoc := decode[MatchResponse](t, resp)
	for _, m := range adhoc.Matches {
		if m.Relation != "other-patient" {
			t.Errorf("ad-hoc query produced relation %q", m.Relation)
		}
	}

	// Validation failures.
	for name, req := range map[string]MatchRequest{
		"short":    {Seq: qseq[:1]},
		"negative": {Seq: qseq, K: -1},
		"invalid":  {Seq: plr.Sequence{{T: 2, Pos: []float64{0}}, {T: 1, Pos: []float64{0}}}},
	} {
		resp := postJSON(t, ts.URL+"/v1/match", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s query status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestShardStats(t *testing.T) {
	ts, _ := matchTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/shard/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	st := decode[ShardStatsResponse](t, resp)
	if st.Patients != 1 || st.Streams != 1 {
		t.Errorf("stats %+v, want 1 patient / 1 stream", st)
	}
	if st.Vertices == 0 {
		t.Error("no vertices reported")
	}
	if len(st.Sessions) != 1 || st.Sessions[0].SessionID != "S01" || st.Sessions[0].PatientID != "P01" {
		t.Errorf("sessions %+v, want the open S01", st.Sessions)
	}
	if st.Sessions[0].Samples == 0 {
		t.Error("open session reports zero samples")
	}
}

func TestMaxBodyBytes(t *testing.T) {
	srv, err := NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), Options{MaxBodyBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}

	// An oversized ingest batch is rejected with 413, not decoded.
	big := make([]SampleIn, 200)
	for i := range big {
		big[i] = SampleIn{T: float64(i), Pos: []float64{1, 2, 3}}
	}
	resp = postJSON(t, ts.URL+"/v1/sessions/S01/samples", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch status %d, want 413", resp.StatusCode)
	}

	// A small batch still works.
	resp = postJSON(t, ts.URL+"/v1/sessions/S01/samples", []SampleIn{{T: 0, Pos: []float64{1}}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small batch status %d, want 200", resp.StatusCode)
	}

	// Negative disables the cap entirely.
	srv2, err := NewWithOptions(store.NewDB(), core.DefaultParams(), fsm.DefaultConfig(), Options{MaxBodyBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.maxBody > 0 {
		t.Errorf("maxBody = %d, want disabled", srv2.maxBody)
	}
	// Zero selects the default.
	srv3, err := New(store.NewDB(), core.DefaultParams(), fsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if srv3.maxBody != DefaultMaxBodyBytes {
		t.Errorf("maxBody = %d, want default %d", srv3.maxBody, DefaultMaxBodyBytes)
	}
}
