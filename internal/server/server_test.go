package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/dataset"
	"stsmatch/internal/fsm"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
)

func newTestServer(t *testing.T, db *store.DB) *httptest.Server {
	t.Helper()
	srv, err := New(db, core.DefaultParams(), fsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerSessionLifecycle(t *testing.T) {
	ts := newTestServer(t, nil)

	// Create.
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	// Duplicate rejected.
	resp = postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P01", SessionID: "S01"})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create status %d, want 409", resp.StatusCode)
	}
	// Missing fields rejected.
	resp = postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty create status %d, want 400", resp.StatusCode)
	}

	// Ingest a full synthetic session in batches.
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(60)
	var last SamplesResponse
	for i := 0; i < len(samples); i += 256 {
		end := min(i+256, len(samples))
		batch := make([]SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, SampleIn{T: s.T, Pos: s.Pos})
		}
		resp := postJSON(t, ts.URL+"/v1/sessions/S01/samples", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		last = decode[SamplesResponse](t, resp)
	}
	if last.TotalSamples != len(samples) {
		t.Errorf("TotalSamples = %d, want %d", last.TotalSamples, len(samples))
	}
	if last.CurrentState == "" {
		t.Error("missing current state")
	}

	// PLR endpoint reflects the segmentation.
	resp, err = http.Get(ts.URL + "/v1/sessions/S01/plr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	plrResp := decode[PLRResponse](t, resp)
	if len(plrResp.Vertices) < 10 {
		t.Errorf("only %d vertices segmented", len(plrResp.Vertices))
	}
	if len(plrResp.StateString) != len(plrResp.Vertices) {
		t.Error("state string length mismatch")
	}

	// Prediction from same-session history.
	resp, err = http.Get(ts.URL + "/v1/sessions/S01/predict?delta=200ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	pred := decode[PredictionResponse](t, resp)
	if len(pred.Pos) != 1 || pred.NumMatches == 0 {
		t.Errorf("prediction = %+v", pred)
	}
	if pred.DeltaMS != 200 {
		t.Errorf("DeltaMS = %v", pred.DeltaMS)
	}

	// Stats.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decode[StatsResponse](t, resp)
	if stats.Patients != 1 || stats.OpenSessions != 1 || stats.Vertices == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestServerWithPreloadedHistory(t *testing.T) {
	// Preloaded sessions from the same patient should make predictions
	// available early in a new session.
	cfg := signal.DefaultCohort()
	cfg.NumPatients = 2
	cfg.SessionsPer = 2
	cfg.SessionDur = 60
	db, cohort, err := dataset.Build(cfg, fsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, db)

	pid := cohort[0].Profile.ID
	resp := postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: pid, SessionID: "live"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}

	// Feed only ~25 s — too little same-session history, but the
	// preloaded sessions provide matches.
	gen, err := signal.NewRespiration(cohort[0].Profile.Base, 999)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(25)
	batch := make([]SampleIn, len(samples))
	for i, s := range samples {
		batch[i] = SampleIn{T: s.T, Pos: s.Pos}
	}
	resp = postJSON(t, ts.URL+"/v1/sessions/live/samples", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/sessions/live/predict?delta=100ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with history status %d", resp.StatusCode)
	}
}

func TestServerErrorPaths(t *testing.T) {
	ts := newTestServer(t, nil)
	// Unknown session.
	resp := postJSON(t, ts.URL+"/v1/sessions/nope/samples", []SampleIn{{T: 0, Pos: []float64{1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/nope/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown predict status %d", resp.StatusCode)
	}

	// Bad sample ordering.
	postJSON(t, ts.URL+"/v1/sessions", CreateSessionRequest{PatientID: "P", SessionID: "S"})
	resp = postJSON(t, ts.URL+"/v1/sessions/S/samples",
		[]SampleIn{{T: 1, Pos: []float64{1}}, {T: 0.5, Pos: []float64{1}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-order status %d", resp.StatusCode)
	}

	// Bad delta.
	resp2, err := http.Get(ts.URL + "/v1/sessions/S/predict?delta=potato")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad delta status %d", resp2.StatusCode)
	}

	// Predict with no history.
	resp3, err := http.Get(ts.URL + "/v1/sessions/S/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusConflict {
		t.Errorf("no-history predict status %d", resp3.StatusCode)
	}

	// Malformed JSON bodies.
	r, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed create status %d", r.StatusCode)
	}
}

func TestServerRejectsInvalidConfig(t *testing.T) {
	bad := core.DefaultParams()
	bad.DistThreshold = -1
	if _, err := New(nil, bad, fsm.DefaultConfig()); err == nil {
		t.Error("invalid params accepted")
	}
	badSeg := fsm.DefaultConfig()
	badSeg.SlopeWindow = 0
	if _, err := New(nil, core.DefaultParams(), badSeg); err == nil {
		t.Error("invalid segmenter config accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMatcherParallelismOption(t *testing.T) {
	srv, err := NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), Options{
		MatcherParallelism: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.params.Parallelism != 3 {
		t.Errorf("server params Parallelism = %d, want 3", srv.params.Parallelism)
	}
	m := srv.matchers.Get().(*core.Matcher)
	if m.Params.Parallelism != 3 {
		t.Errorf("pooled matcher Parallelism = %d, want 3", m.Params.Parallelism)
	}
	srv.matchers.Put(m)

	if _, err := NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), Options{
		MatcherParallelism: -2,
	}); err == nil {
		t.Error("negative MatcherParallelism accepted")
	}
}
