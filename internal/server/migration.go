// Live session migration (PR 10): POST /v1/sessions/{sid}/migrate
// moves one open session to another shard with zero acked-vertex loss,
// generalizing the failover machinery into a planned handover. The
// source bootstraps the target as a temporary follower through the
// snapshot catch-up path, ships the WAL tail until the link is
// current, fences local writes, journals a durable prepare marker,
// drains the last records, promotes the target through the normal
// epoch-fenced promote path, and finally journals a commit tombstone:
// the session is closed here and stale routes get 410 Gone plus the
// target URL as a redirect hint.
//
// Crash safety is two-sided. The prepare record is fsynced before the
// promote call, so a source restart resumes the session *fenced* — no
// write can land in the ambiguous window between promote and commit —
// and the whole handler is idempotent: re-driving it on a prepared (or
// already-committed) session converges without re-shipping acknowledged
// data it can avoid. If the target turns out to be primary already (a
// previous attempt's promote landed but the response was lost), the
// catch-up shipment is fenced with 412, which the handler reads as
// "cutover already happened" and completes the commit after verifying
// the target holds at least everything this node acked.

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"

	"stsmatch/internal/obs"
	"stsmatch/internal/wal"
)

// DefaultMigrateCatchupRounds bounds how many flush rounds the migrate
// handler runs before giving up on catching the target up under
// sustained ingest (each round ships everything staged so far).
const DefaultMigrateCatchupRounds = 10

// MigrateRequest asks the source to hand a session to Target.
// Replicate lists the replica set the target should ship to once
// promoted (the gateway passes the session's new owner tail).
type MigrateRequest struct {
	Target    string   `json:"target"`
	Replicate []string `json:"replicate,omitempty"`
}

// MigrateResponse reports a completed (or previously completed)
// migration.
type MigrateResponse struct {
	PatientID string `json:"patientId"`
	SessionID string `json:"sessionId"`
	Target    string `json:"target"`
	// Epoch is the target's fencing epoch after promotion.
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	// AlreadyMigrated marks an idempotent re-drive: the session had a
	// committed tombstone before this request arrived.
	AlreadyMigrated bool `json:"alreadyMigrated,omitempty"`
}

// migrateHook runs the scripted migration-phase fault point, if a test
// installed one. Phases: "catchup" (before the first shipment),
// "cutover" (fenced and prepared, before the final drain + promote),
// "tombstone" (promote succeeded, before the commit record).
func (s *Server) migrateHook(phase string) {
	if h := s.testHookMigrate; h != nil {
		h(phase)
	}
}

// SetMigrationHook installs a test-only fault point called at each
// migration phase boundary ("catchup", "cutover", "tombstone"). Tests
// use it to kill nodes at scripted points inside a cutover.
func (s *Server) SetMigrationHook(h func(phase string)) { s.testHookMigrate = h }

// migratedTarget returns the committed tombstone's target for sid, if
// one exists.
func (s *Server) migratedTarget(sid string) (string, bool) {
	s.lock()
	defer s.mu.Unlock()
	return s.migratedTargetLocked(sid)
}

func (s *Server) migratedTargetLocked(sid string) (string, bool) {
	if m, ok := s.migrations[sid]; ok && m.Phase == wal.MigrateCommit {
		return m.Target, true
	}
	return "", false
}

// sessionGone answers a request for a migrated-away session: 410 Gone
// with the new owner in both the Location header and the JSON body —
// the redirect hint the gateway uses to repair its placement table.
func sessionGone(w http.ResponseWriter, sid, target string) {
	w.Header().Set("Location", target)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusGone)
	json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck
		"error":    fmt.Sprintf("session %q migrated away", sid),
		"location": target,
	})
}

// goneOr404 is the shared not-found tail of the session-scoped
// handlers: a tombstoned session answers 410 + redirect hint, anything
// else stays a plain 404.
func (s *Server) goneOr404(w http.ResponseWriter, sid string) {
	if target, ok := s.migratedTarget(sid); ok {
		sessionGone(w, sid, target)
		return
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("no open session %q", sid))
}

// handleMigrate drives one session's handover to req.Target. The
// handler is re-drivable: calling it again after any crash or error —
// on a fresh, prepared, or committed migration — converges.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	s.capBody(w, r)
	var req MigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrCode(err), fmt.Errorf("decoding migrate request: %w", err))
		return
	}
	target := strings.TrimRight(req.Target, "/")
	if target == "" {
		httpError(w, http.StatusBadRequest, errors.New("migrate needs a target URL"))
		return
	}
	if target == s.advertise {
		httpError(w, http.StatusBadRequest, fmt.Errorf("session %q already lives on %s", sid, target))
		return
	}
	ctx, sp := obs.StartSpan(r.Context(), "migrate")
	defer sp.Finish()
	sp.Annotate("sessionId", sid)
	sp.Annotate("target", target)

	// Set-up: idempotent short-circuit, then build (or reuse) the
	// migration link — a single-target replicator starting in snapshot
	// catch-up, exactly like a freshly promoted primary's links.
	s.lock()
	if m, ok := s.migrations[sid]; ok && m.Phase == wal.MigrateCommit {
		resp := MigrateResponse{
			PatientID: m.PatientID, SessionID: sid, Target: m.Target,
			Epoch: m.Epoch, AlreadyMigrated: true,
		}
		s.mu.Unlock()
		sp.Annotate("alreadyMigrated", true)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	sess, ok := s.sessions[sid]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, fmt.Errorf("no open session %q", sid))
		return
	}
	var mig *replicator
	if sess.repl != nil && sess.repl.hasTarget(target) {
		// The target already follows this session on the ordinary
		// replica link; reuse it — a second link would fight the first
		// over the follower's cursor anchoring.
		mig = sess.repl
	} else {
		if sess.migrating == nil || sess.migrating.links[0].target != target {
			epoch := uint64(1)
			if sess.repl != nil {
				epoch = sess.repl.epoch
			}
			sess.migrating = newReplicator(sess.patientID, sid, s.advertise, epoch, []string{target}, true)
			sess.migrating.migration = true
		}
		mig = sess.migrating
	}
	s.met.migrationsInFlight.Inc()
	s.mu.Unlock()
	defer s.met.migrationsInFlight.Dec()

	s.migrateHook("catchup")

	// Catch-up: ship the snapshot and then the tail until the link is
	// current. Concurrent ingest keeps staging onto the link (see
	// ingestLocked), so each round closes the remaining gap; the round
	// cap keeps a hot session from pinning the handler forever.
	rounds := s.migrateCatchupRounds
	if rounds <= 0 {
		rounds = DefaultMigrateCatchupRounds
	}
	caught := false
	for i := 0; i < rounds && !caught; i++ {
		if errs := s.replFlush(ctx, mig); len(errs) > 0 {
			if mig.isDeposed() {
				break // target is already primary: finish the commit below
			}
			s.abortMigration(ctx, sid, sess, fmt.Errorf("catch-up: %s", strings.Join(errs, "; ")))
			httpError(w, http.StatusBadGateway, fmt.Errorf("migration catch-up failed: %s", strings.Join(errs, "; ")))
			return
		}
		caught = mig.lag() == 0
	}
	sp.Annotate("deposed", mig.isDeposed())
	if !caught && !mig.isDeposed() {
		s.abortMigration(ctx, sid, sess, fmt.Errorf("still %d records behind after %d rounds", mig.lag(), rounds))
		httpError(w, http.StatusBadGateway, fmt.Errorf("target still behind after %d catch-up rounds", rounds))
		return
	}

	if !mig.isDeposed() {
		// Cutover: fence new writes and journal the prepare durably
		// BEFORE promoting, so a crash in the ambiguous window resumes
		// the session fenced (re-drivable, no divergent writes).
		s.lock()
		if _, still := s.sessions[sid]; !still {
			s.mu.Unlock()
			s.goneOr404(w, sid)
			return
		}
		sess.fenced = true
		err := s.journalMigrationLocked(ctx, wal.MigrationState{
			SessionID: sid, PatientID: sess.patientID, Target: target, Phase: wal.MigratePrepare,
		})
		if err != nil {
			sess.fenced = false
			s.mu.Unlock()
			s.met.migrationFailures.Inc()
			httpError(w, http.StatusInternalServerError, fmt.Errorf("flushing migration prepare: %w", err))
			return
		}
		s.mu.Unlock()

		s.migrateHook("cutover")

		// Final drain: the fence was set under s.mu, so nothing new can
		// be staged; one clean flush means the target holds everything
		// this node ever acknowledged.
		if errs := s.replFlush(ctx, mig); len(errs) > 0 && !mig.isDeposed() {
			s.abortMigration(ctx, sid, sess, fmt.Errorf("final drain: %s", strings.Join(errs, "; ")))
			httpError(w, http.StatusBadGateway, fmt.Errorf("migration final drain failed: %s", strings.Join(errs, "; ")))
			return
		}
		if mig.lag() > 0 && !mig.isDeposed() {
			s.abortMigration(ctx, sid, sess, errors.New("final drain left a backlog"))
			httpError(w, http.StatusBadGateway, errors.New("migration final drain left a backlog"))
			return
		}
	}

	// Promote the target (idempotent there: if it is already primary it
	// answers 200 with its current epoch).
	presp, err := s.promoteTarget(ctx, target, sid, req.Replicate)
	if err != nil {
		s.abortMigration(ctx, sid, sess, fmt.Errorf("promote: %w", err))
		httpError(w, http.StatusBadGateway, fmt.Errorf("promoting migration target: %w", err))
		return
	}

	s.migrateHook("tombstone")

	// Commit: durable tombstone, session closed here. The divergence
	// check guards the one unwinnable window — a past promote landed,
	// this node kept serving unfenced, and now holds vertices the
	// target lacks; dropping the session would lose acked data, so the
	// handler refuses and surfaces it instead.
	s.lock()
	if _, still := s.sessions[sid]; !still {
		if t, ok := s.migratedTargetLocked(sid); ok {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, MigrateResponse{
				PatientID: sess.patientID, SessionID: sid, Target: t,
				Epoch: presp.Epoch, AlreadyMigrated: true,
			})
			return
		}
		s.mu.Unlock()
		httpError(w, http.StatusConflict, fmt.Errorf("session %q closed mid-migration", sid))
		return
	}
	if sess.stream.Len() > presp.Vertices {
		s.mu.Unlock()
		s.met.migrationFailures.Inc()
		httpError(w, http.StatusConflict, fmt.Errorf(
			"migration diverged: source holds %d vertices, promoted target %d; refusing to drop acked data",
			sess.stream.Len(), presp.Vertices))
		return
	}
	commit := wal.MigrationState{
		SessionID: sid, PatientID: sess.patientID, Target: target,
		Epoch: presp.Epoch, Phase: wal.MigrateCommit,
	}
	if err := s.journalMigrationLocked(ctx, commit); err != nil {
		// Keep the session fenced and prepared: a re-drive (or restart)
		// completes the commit; unfencing now could diverge.
		s.mu.Unlock()
		s.met.migrationFailures.Inc()
		httpError(w, http.StatusInternalServerError, fmt.Errorf("flushing migration commit: %w", err))
		return
	}
	s.migrations[sid] = &commit
	vertices := sess.stream.Len()
	delete(s.sessions, sid)
	s.expelMigratedSubsLocked(ctx, sess.patientID, sid)
	s.met.sessionsOpen.Set(int64(len(s.sessions)))
	s.met.migrations.Inc()
	s.mu.Unlock()
	sp.Annotate("epoch", presp.Epoch)
	sp.Annotate("vertices", vertices)
	s.log.Info("session migrated away",
		slog.String("patientId", sess.patientID),
		slog.String("sessionId", sid),
		slog.String("target", target),
		slog.Uint64("epoch", presp.Epoch),
		slog.Int("vertices", vertices),
		slog.String("requestId", obs.RequestIDFrom(r.Context())))
	writeJSON(w, http.StatusOK, MigrateResponse{
		PatientID: sess.patientID,
		SessionID: sid,
		Target:    target,
		Epoch:     presp.Epoch,
		Vertices:  vertices,
	})
}

// journalMigrationLocked journals and fsyncs one migration phase
// transition and records it in the in-memory migration table. Callers
// hold s.mu. In-memory servers (no WAL) keep only the table entry.
func (s *Server) journalMigrationLocked(ctx context.Context, m wal.MigrationState) error {
	if s.wal != nil {
		err := s.wal.log.AppendCtx(ctx, wal.Record{
			Type:      wal.TypeSessionMigrate,
			PatientID: m.PatientID,
			SessionID: m.SessionID,
			Target:    m.Target,
			Epoch:     m.Epoch,
			Phase:     m.Phase,
		})
		if err == nil {
			err = s.wal.log.SyncCtx(ctx)
		}
		if err != nil {
			s.wal.lastErr.Store(err.Error())
			return err
		}
	}
	if m.Phase == wal.MigrateAbort {
		delete(s.migrations, m.SessionID)
	} else {
		st := m
		s.migrations[m.SessionID] = &st
	}
	return nil
}

// expelMigratedSubsLocked hands in-scope subscriptions over with the
// migrated session. They were shipped to the target inside the
// catch-up snapshot, so the source's copies are dropped: journaled as
// deletes (no dedicated fsync — resurrection after a crash only
// leaves an idle armed copy the list dedupe already tolerates) and
// expelled from the manager, which wakes attached event streams so
// the gateway proxy re-resolves to the new primary and resumes from
// its Last-Event-ID. Session-scoped subscriptions always follow the
// session; patient-scoped ones follow only when this was the
// patient's last open session here. Callers hold s.mu, with the
// migrated session already removed from s.sessions.
func (s *Server) expelMigratedSubsLocked(ctx context.Context, pid, sid string) {
	for _, st := range s.subs.States() {
		follows := st.SessionID == sid
		if !follows && st.SessionID == "" && st.PatientID == pid {
			follows = true
			for _, o := range s.sessions {
				if o.patientID == pid {
					follows = false
					break
				}
			}
		}
		if !follows {
			continue
		}
		if s.wal != nil {
			if err := s.wal.log.AppendCtx(ctx, wal.Record{Type: wal.TypeSubDelete, SubID: st.ID}); err != nil {
				s.wal.lastErr.Store(err.Error())
				s.log.Error("journaling migrated subscription handoff",
					slog.String("subId", st.ID), slog.Any("err", err))
			}
		}
		s.subs.Expel(st.ID)
	}
}

// abortMigration rolls a failed cutover back so the session keeps
// serving on this node: unfence, detach the migration link, and undo a
// journaled prepare with a durable abort record.
func (s *Server) abortMigration(ctx context.Context, sid string, sess *session, cause error) {
	s.lock()
	defer s.mu.Unlock()
	sess.fenced = false
	sess.migrating = nil
	if m, ok := s.migrations[sid]; ok && m.Phase == wal.MigratePrepare {
		if s.wal != nil {
			err := s.wal.log.AppendCtx(ctx, wal.Record{
				Type: wal.TypeSessionMigrate, PatientID: m.PatientID,
				SessionID: sid, Target: m.Target, Phase: wal.MigrateAbort,
			})
			if err == nil {
				err = s.wal.log.SyncCtx(ctx)
			}
			if err != nil {
				// The abort is in memory only: a crash before the next
				// successful transition resumes the session fenced, which
				// is safe (a re-drive or a later abort converges).
				s.wal.lastErr.Store(err.Error())
				s.log.Error("flushing migration abort", slog.Any("err", err))
			}
		}
		delete(s.migrations, sid)
	}
	s.met.migrationFailures.Inc()
	s.log.Warn("migration aborted",
		slog.String("sessionId", sid),
		slog.Any("cause", cause))
}

// promoteTarget asks the target to take the session over, returning
// its post-promotion state.
func (s *Server) promoteTarget(ctx context.Context, target, sid string, replicate []string) (*PromoteResponse, error) {
	body, err := json.Marshal(PromoteRequest{Replicate: replicate})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		target+"/v1/sessions/"+url.PathEscape(sid)+"/promote", strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	obs.InjectHeaders(ctx, req.Header)
	resp, err := s.replClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("target answered %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var pr PromoteResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		return nil, fmt.Errorf("decoding promote response: %w", err)
	}
	return &pr, nil
}

// migrationStates snapshots the migration table for a WAL snapshot.
// Callers hold s.mu.
func (s *Server) migrationStates() []wal.MigrationState {
	out := make([]wal.MigrationState, 0, len(s.migrations))
	for _, m := range s.migrations {
		out = append(out, *m)
	}
	return out
}
