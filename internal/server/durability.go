// Durability wiring: the server opens/recovers the write-ahead log at
// construction, replays it into the live database, resumes the
// sessions that were open at the crash (fresh segmenters re-primed
// from the recovered PLR tail), journals every subsequent mutation
// through the store's mutation hook, and snapshots periodically plus
// on graceful shutdown.

package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"stsmatch/internal/fsm"
	"stsmatch/internal/store"
	"stsmatch/internal/wal"
)

// Options configures the server's durability subsystem. The zero
// value disables it (fully in-memory, the pre-durability behavior).
type Options struct {
	// DataDir enables durability: WAL segments and snapshots live
	// here. Empty disables the subsystem entirely.
	DataDir string

	// FsyncInterval is the WAL group-commit interval. Ingestion
	// responses are acknowledged as soon as records are buffered, so a
	// crash loses at most one interval of samples. Zero fsyncs every
	// append (durable before ack, slower).
	FsyncInterval time.Duration

	// SnapshotEvery compacts the WAL into a snapshot on this period.
	// Zero snapshots only on graceful shutdown.
	SnapshotEvery time.Duration

	// SegmentMaxBytes overrides the WAL segment rotation size
	// (0 = wal default).
	SegmentMaxBytes int64

	// MaxBodyBytes caps request bodies on the body-accepting endpoints
	// (session create, sample ingest, remote match) via
	// http.MaxBytesReader, so a misbehaving client cannot balloon a
	// shard's memory. 0 selects DefaultMaxBodyBytes; negative disables
	// the cap.
	MaxBodyBytes int64

	// MatchIndex enables the window-signature index (internal/sigindex)
	// with its default configuration: candidate generation for
	// similarity searches becomes index probes instead of per-stream
	// scans. With durability on, the enablement is journaled, and a
	// recovered data dir that had the index on re-enables it
	// automatically — the persisted configuration wins over this flag.
	MatchIndex bool

	// MatcherParallelism overrides core.Params.Parallelism for the
	// server's matcher pool: the number of worker goroutines each
	// similarity search fans its candidate streams across. 0 keeps the
	// params' own setting (which itself defaults to GOMAXPROCS).
	MatcherParallelism int

	// AdvertiseURL is this node's base URL as replicas should see it;
	// it is stamped into shipped batches as the source and checked
	// against the receivers' ReplicateFrom allowlists.
	AdvertiseURL string

	// ReplicateFrom restricts POST /v1/replicate to batches whose
	// source is in this list. Empty accepts any source.
	ReplicateFrom []string

	// ReplicateTimeout bounds one replication shipment (the ingest ack
	// waits on it). 0 selects DefaultReplicateTimeout.
	ReplicateTimeout time.Duration

	// ReplicateTransport overrides the HTTP transport used for
	// replication shipments (tests inject fault-injecting transports
	// here). Nil uses the default transport.
	ReplicateTransport http.RoundTripper

	// TraceCapacity bounds the in-memory trace collector's rings (both
	// recent and slow). 0 selects obs.DefaultTraceCapacity.
	TraceCapacity int

	// TraceSlowThreshold is the latency at or above which a trace is
	// pinned in the slow ring (and slow WAL group commits are captured).
	// 0 selects obs.DefaultSlowThreshold.
	TraceSlowThreshold time.Duration

	// SubscriptionBuffer caps each standing subscription's undelivered
	// event buffer; the oldest events are dropped (and counted) past
	// it. 0 selects subscribe.DefaultBuffer.
	SubscriptionBuffer int

	// MigrateCatchupRounds caps how many catch-up flush rounds one
	// POST /v1/sessions/{sid}/migrate runs before giving up on a target
	// that cannot keep pace. 0 selects DefaultMigrateCatchupRounds.
	MigrateCatchupRounds int
}

// DefaultMaxBodyBytes is the default request-body cap: 8 MiB holds
// ~100k samples per ingest batch, far above any sane client.
const DefaultMaxBodyBytes = 8 << 20

// durability is the server's handle on the WAL subsystem.
type durability struct {
	log      *wal.Log
	recovery *wal.RecoveryResult
	dataDir  string
	resumed  int

	lastErr  atomic.Value // string: sticky append-failure note for healthz
	snapStop chan struct{}
	snapDone chan struct{}
	stopOnce sync.Once
}

// openDurability recovers (or initializes) the data dir, installs the
// recovered database as s.db, rebuilds open sessions, and hooks the
// store so every further mutation is journaled.
func (s *Server) openDurability(initial *store.DB, opts Options) error {
	log, res, err := wal.Open(wal.Options{
		Dir:             opts.DataDir,
		FsyncInterval:   opts.FsyncInterval,
		SegmentMaxBytes: opts.SegmentMaxBytes,
		Collector:       s.col,
	}, initial)
	if err != nil {
		return fmt.Errorf("server: opening WAL: %w", err)
	}
	d := &durability{log: log, recovery: res, dataDir: opts.DataDir}
	s.db = res.DB
	if !res.Fresh {
		s.db.EnableIndexes()
		if initial != nil && initial.NumPatients() > 0 {
			s.log.Warn("data dir holds recovered state; preloaded database ignored",
				slog.String("dataDir", opts.DataDir))
		}
		s.log.Info("recovered from data dir",
			slog.String("dataDir", opts.DataDir),
			slog.Uint64("snapshotLsn", res.SnapshotLSN),
			slog.Uint64("recordsReplayed", res.RecordsReplayed),
			slog.Uint64("recordsTruncated", res.RecordsTruncated),
			slog.Int64("bytesTruncated", res.BytesTruncated),
			slog.Int("patients", s.db.NumPatients()),
			slog.Int("vertices", s.db.NumVertices()),
			slog.Duration("took", res.Duration))
	}

	// Resume the sessions that were open at the crash: the stream (and
	// its vertices) came back via snapshot+replay; the segmenter is
	// fresh and re-primed from the PLR tail.
	for _, ss := range res.Sessions {
		if err := s.resumeSession(ss); err != nil {
			s.log.Warn("could not resume session",
				slog.String("sessionId", ss.SessionID), slog.Any("err", err))
			continue
		}
		d.resumed++
	}
	s.met.sessionsOpen.Set(int64(len(s.sessions)))
	s.replaySubscriptions(res)

	// Re-seed migration state. A committed entry is a tombstone (the
	// session lives elsewhere; stale routes get 410 + redirect). A
	// prepared entry whose session resumed above means we crashed inside
	// the cutover window: resume *fenced* so no write can diverge from a
	// target that may already be primary; the migration's re-drive (from
	// the gateway) completes or aborts it.
	for i := range res.Migrations {
		m := res.Migrations[i]
		s.migrations[m.SessionID] = &m
		if m.Phase == wal.MigratePrepare {
			if sess, ok := s.sessions[m.SessionID]; ok {
				sess.fenced = true
			}
		}
	}

	s.db.SetMutationHook(s.onMutation)
	s.wal = d
	if opts.SnapshotEvery > 0 {
		d.snapStop = make(chan struct{})
		d.snapDone = make(chan struct{})
		go s.snapshotLoop(opts.SnapshotEvery)
	}
	return nil
}

// resumeSession rebuilds one live session from its recovered state.
func (s *Server) resumeSession(ss wal.SessionState) error {
	p := s.db.Patient(ss.PatientID)
	if p == nil {
		return fmt.Errorf("recovered session references unknown patient %q", ss.PatientID)
	}
	st := p.StreamBySession(ss.SessionID)
	if st == nil {
		return fmt.Errorf("recovered session references unknown stream %q", ss.SessionID)
	}
	seg, err := fsm.New(s.segCfg)
	if err != nil {
		return err
	}
	seq := st.Seq()
	if err := seg.Prime(seq); err != nil {
		return err
	}
	sess := &session{
		patientID: ss.PatientID,
		sessionID: ss.SessionID,
		seg:       seg,
		stream:    st,
		samples:   int(ss.Samples),
		lastT:     ss.LastT,
		lastPos:   append([]float64(nil), ss.LastPos...),
		resumed:   true,
	}
	if n := len(seq); n > 0 {
		sess.resumedAt = seq[n-1].T
		// The anchor record can lag the last replayed vertex when the
		// crash clipped the final anchor; never resume behind the PLR.
		if sess.lastT < seq[n-1].T {
			sess.lastT = seq[n-1].T
			sess.lastPos = append([]float64(nil), seq[n-1].Pos...)
		}
	}
	s.sessions[ss.SessionID] = sess
	return nil
}

// replaySubscriptions re-arms the subscriptions persisted in the
// snapshot, then replays the logged subscription operations — upserts,
// deletes, acks, and the vertex-append boundaries recorded while any
// subscription was live — in log order. Because streams are
// append-only, re-running each incremental evaluation up to its logged
// boundary re-derives exactly the pre-crash event sequence (same
// matches, same event sequence numbers), so consumers resuming with
// Last-Event-ID observe no duplicates and no gaps.
func (s *Server) replaySubscriptions(res *wal.RecoveryResult) {
	for i := range res.Subscriptions {
		st := res.Subscriptions[i]
		if _, err := s.subs.Register(&st, nil); err != nil {
			s.log.Warn("could not re-arm subscription",
				slog.String("id", st.ID), slog.Any("err", err))
		}
	}
	ctx := context.Background()
	for _, op := range res.SubOps {
		switch {
		case op.Upsert != nil:
			st := *op.Upsert
			if _, err := s.subs.Register(&st, nil); err != nil {
				s.log.Warn("could not re-arm subscription",
					slog.String("id", st.ID), slog.Any("err", err))
			}
		case op.DeleteID != "":
			s.subs.Delete(op.DeleteID)
		case op.AckID != "":
			s.subs.Ack(op.AckID, op.Ack)
		default:
			s.subs.EvalStream(ctx, s.db, op.PatientID, op.SessionID, uint64(op.To))
		}
	}
}

// onMutation is the store hook: translate each mutation into a WAL
// record. Append errors are sticky in the log; the server keeps
// serving (availability over durability) and surfaces the degradation
// in /v1/healthz and the error log.
func (s *Server) onMutation(m store.Mutation) {
	var rec wal.Record
	switch m.Kind {
	case store.MutPatientUpsert:
		rec = wal.Record{Type: wal.TypePatientUpsert, Patient: m.Patient}
	case store.MutStreamOpen:
		rec = wal.Record{Type: wal.TypeStreamOpen, PatientID: m.PatientID, SessionID: m.SessionID}
	case store.MutVertexAppend:
		rec = wal.Record{Type: wal.TypeVertexAppend, PatientID: m.PatientID, SessionID: m.SessionID, Vertices: m.Vertices}
	default:
		return
	}
	s.walAppend(rec)
}

// walAppend journals one record, recording (and logging once) any
// sticky failure.
func (s *Server) walAppend(rec wal.Record) {
	s.walAppendCtx(context.Background(), rec)
}

// walAppendCtx is walAppend on a request context: a traced request's
// journal write shows up as a "wal.append" child span, so a per-append
// fsync stall is attributable to the request it delayed.
func (s *Server) walAppendCtx(ctx context.Context, rec wal.Record) {
	if s.wal == nil {
		return
	}
	if err := s.wal.log.AppendCtx(ctx, rec); err != nil {
		if s.wal.lastErr.Load() == nil {
			s.log.Error("WAL append failed; serving without durability",
				slog.Any("err", err))
		}
		s.wal.lastErr.Store(err.Error())
	}
}

// sessionStates snapshots the open sessions. Callers hold s.mu.
func (s *Server) sessionStates() []wal.SessionState {
	out := make([]wal.SessionState, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, wal.SessionState{
			PatientID: sess.patientID,
			SessionID: sess.sessionID,
			Samples:   uint64(sess.samples),
			LastT:     sess.lastT,
			LastPos:   append([]float64(nil), sess.lastPos...),
		})
	}
	return out
}

// snapshot compacts the WAL into a snapshot. It holds the session
// lock so the database is quiescent, making the snapshot exact.
func (s *Server) snapshot() error {
	if s.wal == nil {
		return nil
	}
	s.lock()
	defer s.mu.Unlock()
	lsn, err := s.wal.log.Snapshot(s.db, s.sessionStates(), s.subs.States(), s.migrationStates()...)
	if err != nil {
		s.log.Error("snapshot failed", slog.Any("err", err))
		return err
	}
	s.log.Info("snapshot written",
		slog.Uint64("lsn", lsn),
		slog.Int("vertices", s.db.NumVertices()),
		slog.Int("openSessions", len(s.sessions)))
	return nil
}

// snapshotLoop runs periodic snapshots until Close.
func (s *Server) snapshotLoop(every time.Duration) {
	defer close(s.wal.snapDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.wal.snapStop:
			return
		case <-t.C:
			s.snapshot() //nolint:errcheck // logged inside
		}
	}
}

// Close flushes the WAL, takes a final snapshot, and releases the data
// dir. It is a no-op for in-memory servers. Call it after the HTTP
// listener has drained so no requests race the final snapshot.
func (s *Server) Close() error {
	if s.wal == nil {
		return nil
	}
	var err error
	s.wal.stopOnce.Do(func() {
		if s.wal.snapStop != nil {
			close(s.wal.snapStop)
			<-s.wal.snapDone
		}
		err = s.snapshot()
		if cerr := s.wal.log.Close(); err == nil {
			err = cerr
		}
	})
	return err
}

// WALHealth is the durability section of the healthz payload.
type WALHealth struct {
	Enabled          bool   `json:"enabled"`
	DataDir          string `json:"dataDir,omitempty"`
	SnapshotLSN      uint64 `json:"snapshotLsn,omitempty"`
	RecordsReplayed  uint64 `json:"recordsReplayed"`
	RecordsTruncated uint64 `json:"recordsTruncated"`
	BytesTruncated   int64  `json:"bytesTruncated"`
	ResumedSessions  int    `json:"resumedSessions"`
	NextLSN          uint64 `json:"nextLsn"`
	LastError        string `json:"lastError,omitempty"`
}

// walHealth summarizes the durability subsystem for /v1/healthz.
func (s *Server) walHealth() *WALHealth {
	if s.wal == nil {
		return nil
	}
	h := &WALHealth{
		Enabled:          true,
		DataDir:          s.wal.dataDir,
		SnapshotLSN:      s.wal.recovery.SnapshotLSN,
		RecordsReplayed:  s.wal.recovery.RecordsReplayed,
		RecordsTruncated: s.wal.recovery.RecordsTruncated,
		BytesTruncated:   s.wal.recovery.BytesTruncated,
		ResumedSessions:  s.wal.resumed,
		NextLSN:          s.wal.log.NextLSN(),
	}
	if e := s.wal.lastErr.Load(); e != nil {
		h.LastError = e.(string)
	}
	return h
}
