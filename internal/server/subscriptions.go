// Standing-subscription HTTP surface: register/list/delete standing
// queries and push their match events to consumers over SSE (with a
// long-poll fallback). Registration and deletion are journaled and
// fsynced before they are acknowledged — like session close — so a
// crash never resurrects a deleted subscription or forgets an
// acknowledged one; the incremental evaluation itself happens in
// internal/subscribe, driven from the ingest path under the session
// lock (see ingestLocked and handleReplicate).

package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/obs"
	"stsmatch/internal/plr"
	"stsmatch/internal/subscribe"
	"stsmatch/internal/wal"
)

// subHeartbeat is the SSE keep-alive comment interval.
const subHeartbeat = 15 * time.Second

// subscriptionHealth builds the healthz subscriptions section.
func (s *Server) subscriptionHealth() *subscribe.Health {
	h := s.subs.Health()
	return &h
}

// SubscriptionRequest registers a standing query. The pattern is
// matched incrementally against arriving vertices: only windows that
// close after registration can produce events (no retro-matching).
type SubscriptionRequest struct {
	ID  string       `json:"id,omitempty"` // generated when empty
	Seq plr.Sequence `json:"seq"`
	// PatientID/SessionID scope the subscription (and classify the
	// source relation exactly like a /v1/match with the same
	// provenance): empty matches every patient/session.
	PatientID string `json:"patientId,omitempty"`
	SessionID string `json:"sessionId,omitempty"`
	// Threshold overrides the params' distance threshold (<= 0 keeps
	// the default). K > 0 caps each incremental evaluation to the k
	// best new matches.
	Threshold float64 `json:"threshold,omitempty"`
	K         int     `json:"k,omitempty"`
}

// SubscriptionResponse acknowledges a registration.
type SubscriptionResponse struct {
	ID            string   `json:"id"`
	PatientID     string   `json:"patientId,omitempty"`
	SessionID     string   `json:"sessionId,omitempty"`
	Threshold     float64  `json:"threshold"`
	K             int      `json:"k,omitempty"`
	PatternN      int      `json:"patternN"`
	ReplicaErrors []string `json:"replicaErrors,omitempty"`
}

// SubEventOut is one pushed match event in wire form: a RemoteMatch
// plus the subscription's event sequence number (the SSE event ID a
// consumer resumes from) and the matched window's end time.
type SubEventOut struct {
	Seq       uint64  `json:"seq"`
	PatientID string  `json:"patientId"`
	SessionID string  `json:"sessionId"`
	Start     int     `json:"start"`
	N         int     `json:"n"`
	Relation  string  `json:"relation"`
	Distance  float64 `json:"distance"`
	Weight    float64 `json:"weight"`
	EndT      float64 `json:"endT"`
}

func eventOut(e wal.SubEvent) SubEventOut {
	return SubEventOut{
		Seq:       e.Seq,
		PatientID: e.PatientID,
		SessionID: e.SessionID,
		Start:     int(e.Start),
		N:         int(e.N),
		Relation:  core.SourceRelation(e.Relation).String(),
		Distance:  e.Distance,
		Weight:    e.Weight,
		EndT:      e.EndT,
	}
}

// subScopeCovers reports whether a subscription's scope includes the
// given stream (mirrors subscribe's in-scope rule for the replication
// fan-out, which needs it outside the manager).
func subScopeCovers(st wal.SubState, patientID, sessionID string) bool {
	return (st.PatientID == "" || st.PatientID == patientID) &&
		(st.SessionID == "" || st.SessionID == sessionID)
}

func (s *Server) handleCreateSubscription(w http.ResponseWriter, r *http.Request) {
	s.capBody(w, r)
	var req SubscriptionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, bodyErrCode(err), fmt.Errorf("decoding subscription: %w", err))
		return
	}
	if len(req.Seq) < 2 {
		httpError(w, http.StatusBadRequest, errors.New("pattern needs at least 2 vertices"))
		return
	}
	if err := req.Seq.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("invalid pattern: %w", err))
		return
	}
	if req.K < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("k must be >= 0, got %d", req.K))
		return
	}
	if req.ID == "" {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		req.ID = "sub-" + hex.EncodeToString(b[:])
	}
	st := wal.SubState{
		ID:        req.ID,
		PatientID: req.PatientID,
		SessionID: req.SessionID,
		Threshold: req.Threshold,
		K:         uint32(req.K),
		Pattern:   req.Seq,
	}
	repls, code, err := s.registerSubscription(r, &st)
	if err != nil {
		httpError(w, code, err)
		return
	}
	var replErrs []string
	for _, repl := range repls {
		replErrs = append(replErrs, s.replFlush(r.Context(), repl)...)
	}
	s.log.Info("subscription registered",
		slog.String("id", st.ID),
		slog.String("patientId", st.PatientID),
		slog.String("sessionId", st.SessionID),
		slog.Int("patternN", len(st.Pattern)),
		slog.String("requestId", obs.RequestIDFrom(r.Context())))
	writeJSON(w, http.StatusCreated, SubscriptionResponse{
		ID:            st.ID,
		PatientID:     st.PatientID,
		SessionID:     st.SessionID,
		Threshold:     st.Threshold,
		K:             int(st.K),
		PatternN:      len(st.Pattern),
		ReplicaErrors: replErrs,
	})
}

// registerSubscription performs the locked portion of registration:
// capture the baseline cursors, journal + fsync the upsert before it
// is acknowledged, and stage it on the replication links of every
// in-scope replicated session so followers arm it too. The returned
// replicators must be flushed by the caller outside the lock.
func (s *Server) registerSubscription(r *http.Request, st *wal.SubState) ([]*replicator, int, error) {
	s.lock()
	defer s.mu.Unlock()
	if s.subs.Has(st.ID) {
		return nil, http.StatusConflict, fmt.Errorf("subscription %q already exists", st.ID)
	}
	if _, err := s.subs.Register(st, s.db); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if s.wal != nil {
		// Durable before the 201: a recovered node must re-arm exactly
		// the subscriptions whose creation was acknowledged.
		err := s.wal.log.AppendCtx(r.Context(), wal.Record{Type: wal.TypeSubUpsert, Sub: st})
		if err == nil {
			err = s.wal.log.SyncCtx(r.Context())
		}
		if err != nil {
			s.subs.Delete(st.ID)
			s.wal.lastErr.Store(err.Error())
			return nil, http.StatusInternalServerError, fmt.Errorf("flushing subscription: %w", err)
		}
	}
	return s.enqueueSubRecord(wal.Record{Type: wal.TypeSubUpsert, Sub: st}, *st), 0, nil
}

// enqueueSubRecord stages a subscription record on the replication
// links of every in-scope replicated session. Callers hold s.mu.
func (s *Server) enqueueSubRecord(rec wal.Record, st wal.SubState) []*replicator {
	var repls []*replicator
	for _, sess := range s.sessions {
		if sess.repl != nil && subScopeCovers(st, sess.patientID, sess.sessionID) {
			sess.repl.enqueue(rec)
			repls = append(repls, sess.repl)
		}
	}
	return repls
}

func (s *Server) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"subscriptions": s.subs.List()})
}

func (s *Server) handleDeleteSubscription(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	repls, code, err := func() ([]*replicator, int, error) {
		s.lock()
		defer s.mu.Unlock()
		st, ok := s.subs.State(id)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no subscription %q", id)
		}
		if s.wal != nil {
			// Journal and fsync the delete before removing, so a 200 means
			// the subscription can never resurrect after recovery.
			err := s.wal.log.AppendCtx(r.Context(), wal.Record{Type: wal.TypeSubDelete, SubID: id})
			if err == nil {
				err = s.wal.log.SyncCtx(r.Context())
			}
			if err != nil {
				s.wal.lastErr.Store(err.Error())
				return nil, http.StatusInternalServerError, fmt.Errorf("flushing subscription delete: %w", err)
			}
		}
		s.subs.Delete(id)
		return s.enqueueSubRecord(wal.Record{Type: wal.TypeSubDelete, SubID: id}, st), 0, nil
	}()
	if err != nil {
		httpError(w, code, err)
		return
	}
	for _, repl := range repls {
		if errs := s.replFlush(r.Context(), repl); len(errs) > 0 {
			s.log.Warn("subscription delete not replicated everywhere", slog.Any("replicaErrors", errs))
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// ackSubscription journals and applies a delivery acknowledgement:
// the consumer told us (via Last-Event-ID or a poll cursor) that it
// has everything up to seq. Best-effort durable (no fsync — a lost
// ack only means redelivery, which the consumer's resume filter
// already dedups) and staged on in-scope replication links so a
// promoted follower trims too.
func (s *Server) ackSubscription(r *http.Request, id string, seq uint64) {
	s.lock()
	st, ok := s.subs.State(id)
	if !ok || seq <= st.Delivered {
		s.mu.Unlock()
		return
	}
	if s.wal != nil {
		s.walAppendCtx(r.Context(), wal.Record{Type: wal.TypeSubAck, SubID: id, SubAck: seq})
	}
	s.subs.Ack(id, seq)
	repls := s.enqueueSubRecord(wal.Record{Type: wal.TypeSubAck, SubID: id, SubAck: seq}, st)
	s.mu.Unlock()
	// Ship with the request, but do not fail it: the ack rides the
	// next ingest flush anyway if a replica is unreachable.
	for _, repl := range repls {
		s.replFlush(r.Context(), repl)
	}
}

// SubEventsPoll is the long-poll (mode=poll) payload.
type SubEventsPoll struct {
	Events []SubEventOut `json:"events"`
	Next   uint64        `json:"next"` // pass as ?after= (acks this batch)
}

// handleSubEvents streams a subscription's match events. Default is
// SSE (`id:` = event sequence, `data:` = SubEventOut JSON) with
// keep-alive comments; `?mode=poll[&wait=30s]` long-polls one JSON
// batch instead. A reconnect with `Last-Event-ID` (or `?after=`)
// resumes after the given sequence and acknowledges everything at or
// below it.
func (s *Server) handleSubEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.subs.Has(id) {
		httpError(w, http.StatusNotFound, fmt.Errorf("no subscription %q", id))
		return
	}
	after := uint64(0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad Last-Event-ID %q", v))
			return
		}
		after = n
	} else if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad after %q", v))
			return
		}
		after = n
	}
	if after > 0 {
		s.ackSubscription(r, id, after)
	}
	if r.URL.Query().Get("mode") == "poll" {
		s.pollSubEvents(w, r, id, after)
		return
	}

	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, errors.New("streaming unsupported; use ?mode=poll"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	// The SSE response carries the trace it belongs to, so a consumer
	// can correlate pushed events with the registering request's trace
	// tree (X-Trace-Id is set by the tracing middleware; Traceparent
	// is injected here for downstream propagation).
	obs.InjectHeaders(r.Context(), h)
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hb := time.NewTicker(subHeartbeat)
	defer hb.Stop()
	cursor := after
	for {
		events, wait, ok := s.subs.Read(id, cursor)
		if !ok {
			return // deleted mid-stream: end the event stream
		}
		for _, e := range events {
			data, err := json.Marshal(eventOut(e))
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, data); err != nil {
				return
			}
			cursor = e.Seq
		}
		if len(events) > 0 {
			fl.Flush()
			s.subs.NoteDelivered(id, len(events))
			continue // drain anything that arrived while writing
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// pollSubEvents is the long-poll fallback: waits up to ?wait= (default
// 0: answer immediately) for events after the cursor, then returns one
// JSON batch.
func (s *Server) pollSubEvents(w http.ResponseWriter, r *http.Request, id string, after uint64) {
	var deadline <-chan time.Time
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q", ws))
			return
		}
		if d > 0 {
			t := time.NewTimer(d)
			defer t.Stop()
			deadline = t.C
		}
	}
	for {
		events, wait, ok := s.subs.Read(id, after)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("no subscription %q", id))
			return
		}
		if len(events) > 0 || deadline == nil {
			resp := SubEventsPoll{Events: make([]SubEventOut, 0, len(events)), Next: after}
			for _, e := range events {
				resp.Events = append(resp.Events, eventOut(e))
				resp.Next = e.Seq
			}
			s.subs.NoteDelivered(id, len(events))
			obs.InjectHeaders(r.Context(), w.Header())
			writeJSON(w, http.StatusOK, resp)
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-wait:
		case <-deadline:
			deadline = nil // answer (possibly empty) on the next pass
		}
	}
}
