package store

import "stsmatch/internal/obs"

// Process-wide database gauges. They aggregate over every DB in the
// process (daemons run exactly one), tracking the size of the
// hierarchical store as sessions are ingested or loaded.
var (
	mPatients = obs.Default().Gauge("stsmatch_store_patients",
		"Patient records registered in the stream database.")
	mStreams = obs.Default().Gauge("stsmatch_store_streams",
		"Session streams registered in the stream database.")
	mVertices = obs.Default().Gauge("stsmatch_store_vertices",
		"PLR vertices stored across all streams.")
)
