package store

import (
	"bytes"
	"testing"
)

// FuzzReadBinary hammers the binary decoder with arbitrary bytes: it
// must reject garbage with an error (or decode a valid database) and
// never panic or over-allocate on hostile length fields.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid database plus structured mutations.
	db := NewDB()
	p, _ := db.AddPatient(PatientInfo{ID: "P1", Class: "calm", Age: 50})
	st := p.AddStream("S1")
	_ = st.Append(seqFromStates("EOIEOI")...)
	var buf bytes.Buffer
	if err := db.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("STSM"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil database without error")
		}
		if err == nil {
			// Anything that decodes must round-trip consistently.
			var again bytes.Buffer
			if err := got.WriteBinary(&again); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			back, err := ReadBinary(&again)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if back.NumVertices() != got.NumVertices() {
				t.Fatal("round trip changed vertex count")
			}
		}
	})
}

// FuzzFindWindows checks the scan candidate generator against
// arbitrary state strings and signatures: results must be in-range,
// sorted, and exact matches.
func FuzzFindWindows(f *testing.F) {
	f.Add("EOIEOIEOI", "EOI")
	f.Add("RRRRRR", "EO")
	f.Add("EOIEOIE", "")
	f.Fuzz(func(t *testing.T, streamStates, sig string) {
		if len(streamStates) > 500 || len(sig) > 50 {
			return
		}
		norm := func(s string) string {
			b := []byte(s)
			for i := range b {
				switch b[i] % 4 {
				case 0:
					b[i] = 'E'
				case 1:
					b[i] = 'O'
				case 2:
					b[i] = 'I'
				default:
					b[i] = 'R'
				}
			}
			return string(b)
		}
		streamStates = norm(streamStates)
		sig = norm(sig)
		if len(streamStates) == 0 {
			return
		}
		st := NewStream("P", "S")
		if err := st.Append(seqFromStates(streamStates)...); err != nil {
			t.Fatal(err)
		}
		ws := st.FindWindows(sig)
		prev := -1
		for _, j := range ws {
			if j <= prev {
				t.Fatal("window starts not strictly increasing")
			}
			prev = j
			if j < 0 || j+len(sig)+1 > len(streamStates) {
				t.Fatalf("window %d out of range", j)
			}
			if streamStates[j:j+len(sig)] != sig {
				t.Fatalf("window %d does not match signature", j)
			}
		}
	})
}
