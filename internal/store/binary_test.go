package store

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func buildBinaryTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	p1, err := db.AddPatient(PatientInfo{ID: "P1", Class: "deep", Age: 63, TumorSite: "lower-lobe"})
	if err != nil {
		t.Fatal(err)
	}
	s1 := p1.AddStream("P1-S01")
	seq := seqFromStates("EOIEOIR")
	for i := range seq {
		seq[i].Pos = []float64{float64(i) * 1.25, -0.5 * float64(i)}
	}
	if err := s1.Append(seq...); err != nil {
		t.Fatal(err)
	}
	// An empty stream and a second patient exercise edge paths.
	p1.AddStream("P1-S02")
	p2, err := db.AddPatient(PatientInfo{ID: "P2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.AddStream("P2-S01").Append(seqFromStates("EOI")...); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBinaryRoundTrip(t *testing.T) {
	db := buildBinaryTestDB(t)
	var buf bytes.Buffer
	if err := db.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPatients() != db.NumPatients() {
		t.Fatalf("patients %d vs %d", back.NumPatients(), db.NumPatients())
	}
	for _, p := range db.Patients() {
		q := back.Patient(p.Info.ID)
		if q == nil {
			t.Fatalf("patient %s lost", p.Info.ID)
		}
		if q.Info != p.Info {
			t.Errorf("info mismatch: %+v vs %+v", q.Info, p.Info)
		}
		if len(q.Streams) != len(p.Streams) {
			t.Fatalf("%s: streams %d vs %d", p.Info.ID, len(q.Streams), len(p.Streams))
		}
		for si, st := range p.Streams {
			got, want := q.Streams[si].Seq(), st.Seq()
			if len(got) != len(want) {
				t.Fatalf("%s/%s: vertices %d vs %d", p.Info.ID, st.SessionID, len(got), len(want))
			}
			for i := range got {
				if got[i].T != want[i].T || got[i].State != want[i].State ||
					!reflect.DeepEqual(got[i].Pos, want[i].Pos) {
					t.Errorf("vertex %d: %+v vs %+v", i, got[i], want[i])
				}
			}
		}
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	db := buildBinaryTestDB(t)
	var bin, js bytes.Buffer
	if err := db.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := db.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len() {
		t.Errorf("binary (%d bytes) not smaller than JSON (%d bytes)", bin.Len(), js.Len())
	}
}

func TestBinaryRejectsCorruptInput(t *testing.T) {
	db := buildBinaryTestDB(t)
	var buf bytes.Buffer
	if err := db.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"bad version", append(append([]byte{}, good[:4]...), append([]byte{99, 0}, good[6:]...)...)},
		{"truncated", good[:len(good)/2]},
		{"truncated header", good[:5]},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadBinary(bytes.NewReader(c.data)); err == nil {
				t.Error("corrupt input accepted")
			}
		})
	}

	// Corrupt a state byte to an invalid value: locate it by writing a
	// single-vertex db and flipping the state position. Easier: flip
	// every byte one at a time and require no panics (errors are fine).
	for i := range good {
		mutated := append([]byte{}, good...)
		mutated[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on corrupt byte %d: %v", i, r)
				}
			}()
			_, _ = ReadBinary(bytes.NewReader(mutated))
		}()
	}
}

func TestBinaryStringGuards(t *testing.T) {
	// A malicious huge string length must be rejected, not allocated.
	data := []byte(binaryMagic)
	data = append(data, 1, 0) // version 1
	data = append(data, 1)    // one patient
	// String length 2^40 as uvarint.
	data = append(data, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil ||
		!strings.Contains(err.Error(), "implausible") {
		t.Errorf("huge string accepted: %v", err)
	}
}
