package store

import (
	"encoding/json"
	"fmt"
	"io"

	"stsmatch/internal/plr"
)

// The JSON form of the database is the interchange format of the cmd/
// tools: cmd/motiongen and cmd/segmenter emit it, cmd/predictd and
// cmd/clusterpat consume it.

type jsonVertex struct {
	T     float64   `json:"t"`
	Pos   []float64 `json:"pos"`
	State string    `json:"state"`
}

type jsonStream struct {
	SessionID string       `json:"sessionId"`
	Vertices  []jsonVertex `json:"vertices"`
}

type jsonPatient struct {
	Info    PatientInfo  `json:"info"`
	Streams []jsonStream `json:"streams"`
}

type jsonDB struct {
	Patients []jsonPatient `json:"patients"`
}

// WriteJSON serializes the database.
func (db *DB) WriteJSON(w io.Writer) error {
	var out jsonDB
	for _, p := range db.Patients() {
		jp := jsonPatient{Info: p.Info}
		for _, st := range p.Streams {
			js := jsonStream{SessionID: st.SessionID}
			for _, v := range st.Seq() {
				js.Vertices = append(js.Vertices, jsonVertex{T: v.T, Pos: v.Pos, State: v.State.String()})
			}
			jp.Streams = append(jp.Streams, js)
		}
		out.Patients = append(out.Patients, jp)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON deserializes a database written by WriteJSON.
func ReadJSON(r io.Reader) (*DB, error) {
	var in jsonDB
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("store: decoding database: %w", err)
	}
	db := NewDB()
	for _, jp := range in.Patients {
		p, err := db.AddPatient(jp.Info)
		if err != nil {
			return nil, err
		}
		for _, js := range jp.Streams {
			st := p.AddStream(js.SessionID)
			for _, jv := range js.Vertices {
				state, err := plr.ParseState(jv.State)
				if err != nil {
					return nil, fmt.Errorf("store: stream %s: %w", js.SessionID, err)
				}
				if err := st.Append(plr.Vertex{T: jv.T, Pos: jv.Pos, State: state}); err != nil {
					return nil, err
				}
			}
		}
	}
	return db, nil
}
