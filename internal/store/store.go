// Package store implements the hierarchical stream database of
// Section 3.2: a database holds patient records; each patient has a set
// of data streams (one per treatment session); each stream is an
// ordered list of PLR vertices produced by the online segmenter.
//
// The store also provides candidate generation for subsequence
// matching: given a query's state signature, it enumerates all vertex
// windows in a stream whose per-segment state order matches — the
// precondition (condition 1) of the paper's Definition 2. A small
// n-gram inverted index over state strings accelerates this for long
// streams; matching falls back to a linear scan when the index is
// disabled (the ablation benchmarks compare both paths).
package store

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"stsmatch/internal/plr"
)

// MutationKind labels one hierarchical-database mutation.
type MutationKind uint8

// The mutation kinds a DB emits.
const (
	MutPatientUpsert MutationKind = iota + 1 // patient record added
	MutStreamOpen                            // stream added under a patient
	MutVertexAppend                          // vertices appended to a stream
)

// Mutation is one store change, delivered to the mutation hook. Only
// the fields relevant to Kind are populated. Vertices aliases the
// appended slice and is only valid for the duration of the call.
type Mutation struct {
	Kind      MutationKind
	Patient   PatientInfo  // MutPatientUpsert
	PatientID string       // MutStreamOpen, MutVertexAppend
	SessionID string       // MutStreamOpen, MutVertexAppend
	Vertices  []plr.Vertex // MutVertexAppend
}

// MutationHook observes store mutations (the write-ahead-log seam).
// Hooks run synchronously on the mutating goroutine, while the
// mutated stream's lock is held, so they must be fast and must not
// call back into the store.
type MutationHook func(Mutation)

// hookRef is the shared, swappable hook cell handed down from a DB to
// its patients and streams, so installing a hook on the DB covers
// streams created both before and after installation. It holds an
// immutable slice of hooks, replaced wholesale (copy-on-write), so
// emit never takes a lock.
type hookRef struct {
	fns atomic.Pointer[[]MutationHook]

	// seq counts every mutation emitted through this cell, whether or
	// not hooks are installed. It is the database's logical high-water
	// mark: any write — patient upsert, stream open, vertex append,
	// local or replicated — advances it, so equal sequence numbers mean
	// the database cannot have changed in between. The server exposes
	// it as the X-Store-Seq response header and the gateway keys its
	// result cache on it.
	seq atomic.Uint64
}

func (h *hookRef) emit(m Mutation) {
	if h == nil {
		return
	}
	h.seq.Add(1)
	if fns := h.fns.Load(); fns != nil {
		for _, fn := range *fns {
			fn(m)
		}
	}
}

// PatientInfo carries the patient-level metadata used by the offline
// correlation-discovery experiments.
type PatientInfo struct {
	ID        string `json:"id"`
	Class     string `json:"class,omitempty"`
	Age       int    `json:"age,omitempty"`
	TumorSite string `json:"tumorSite,omitempty"`
}

// Stream is one treatment session's PLR stream. Streams support
// online appends (the real-time ingestion path) and window lookups by
// state signature.
type Stream struct {
	PatientID string
	SessionID string

	mu       sync.RWMutex
	seq      plr.Sequence
	stateStr []byte
	index    *ngramIndex
	hook     *hookRef

	// ampSum holds per-vertex prefix sums of segment displacement
	// norms: ampSum[i] is the sum of |Pos[j+1]-Pos[j]| over segments
	// j < i (so ampSum[0] == 0 and len(ampSum) == len(seq)). The
	// matcher derives a constant-time lower bound on the weighted
	// subsequence distance from these sums; like the n-gram index they
	// are extended incrementally on Append.
	ampSum []float64
}

// NewStream creates an empty stream owned by the given patient and
// session.
func NewStream(patientID, sessionID string) *Stream {
	return &Stream{PatientID: patientID, SessionID: sessionID}
}

// Append adds vertices to the end of the stream, maintaining the state
// string and, when enabled, the index. Vertices must continue the
// existing time order.
func (s *Stream) Append(vs ...plr.Vertex) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	appended := 0
	var err error
	for _, v := range vs {
		if n := len(s.seq); n > 0 && v.T <= s.seq[n-1].T {
			err = fmt.Errorf("store: vertex time %v does not advance stream %s", v.T, s.SessionID)
			break
		}
		if !v.State.Valid() {
			err = fmt.Errorf("store: invalid state on appended vertex")
			break
		}
		if n := len(s.seq); n == 0 {
			s.ampSum = append(s.ampSum, 0)
		} else {
			s.ampSum = append(s.ampSum, s.ampSum[n-1]+dispNorm(s.seq[n-1].Pos, v.Pos))
		}
		s.seq = append(s.seq, v)
		s.stateStr = append(s.stateStr, v.State.Byte())
		if s.index != nil {
			s.index.extend(s.stateStr)
		}
		mVertices.Inc()
		appended++
	}
	// Report the prefix that actually landed, even on a mid-batch
	// error: the stream state advanced, so durability must record it.
	if appended > 0 {
		s.hook.emit(Mutation{
			Kind:      MutVertexAppend,
			PatientID: s.PatientID,
			SessionID: s.SessionID,
			Vertices:  vs[:appended],
		})
	}
	return err
}

// Len returns the number of vertices.
func (s *Stream) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.seq)
}

// Seq returns the underlying sequence. The returned slice must be
// treated as read-only; it remains valid across appends (appends may
// reallocate but never mutate existing vertices).
func (s *Stream) Seq() plr.Sequence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// dispNorm is the Euclidean norm of b-a over the dimensions both
// vectors share (streams are homogeneous in practice; the clamp only
// guards against malformed appends).
func dispNorm(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for k := 0; k < n; k++ {
		d := b[k] - a[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// Snapshot returns the vertex sequence together with its matching
// displacement-norm prefix sums as one consistent view: sums[i] is the
// sum of segment displacement norms |Pos[j+1]-Pos[j]| over j < i, so a
// window of n vertices starting at j has displacement-norm sum
// sums[j+n-1]-sums[j] in O(1). Both slices are read-only for the
// caller and remain valid across appends (appends may reallocate but
// never mutate existing entries).
func (s *Stream) Snapshot() (seq plr.Sequence, sums []float64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq, s.ampSum
}

// Window returns the n-vertex window starting at index j.
func (s *Stream) Window(j, n int) plr.Sequence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq[j : j+n]
}

// EnableIndex builds (or rebuilds) the n-gram index over the stream's
// state string. Subsequent appends keep it current.
func (s *Stream) EnableIndex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.index = newNgramIndex()
	s.index.build(s.stateStr)
}

// IndexEnabled reports whether the n-gram index is active.
func (s *Stream) IndexEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.index != nil
}

// FindWindows returns the start indices of every window of n =
// len(sig)+1 vertices whose segment-state signature equals sig. A
// window needs one more vertex than it has segments, so starts range
// over [0, Len()-len(sig)-1].
func (s *Stream) FindWindows(sig string) []int {
	if len(sig) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	limit := len(s.seq) - len(sig) - 1 // inclusive upper bound for start
	if limit < 0 {
		return nil
	}
	if s.index != nil && len(sig) >= ngramSize {
		return s.index.find(s.stateStr, sig, limit)
	}
	return scanWindows(s.stateStr, sig, limit)
}

// scanWindows is the brute-force state-string scan.
func scanWindows(stateStr []byte, sig string, limit int) []int {
	var out []int
	hay := string(stateStr)
	for from := 0; ; {
		i := strings.Index(hay[from:], sig)
		if i < 0 {
			break
		}
		j := from + i
		if j > limit {
			break
		}
		out = append(out, j)
		from = j + 1
	}
	return out
}

// Patient is one patient record: metadata plus its session streams.
type Patient struct {
	Info    PatientInfo
	Streams []*Stream

	hook *hookRef // inherited from the owning DB; nil for bare records
}

// AddStream creates, registers and returns a new stream for the given
// session.
func (p *Patient) AddStream(sessionID string) *Stream {
	st := NewStream(p.Info.ID, sessionID)
	st.hook = p.hook
	p.Streams = append(p.Streams, st)
	mStreams.Inc()
	p.hook.emit(Mutation{
		Kind:      MutStreamOpen,
		PatientID: p.Info.ID,
		SessionID: sessionID,
	})
	return st
}

// StreamBySession returns the stream with the given session ID, or nil.
func (p *Patient) StreamBySession(sessionID string) *Stream {
	for _, st := range p.Streams {
		if st.SessionID == sessionID {
			return st
		}
	}
	return nil
}

// DB is the top-level stream database.
type DB struct {
	mu       sync.RWMutex
	patients []*Patient
	byID     map[string]*Patient
	hook     *hookRef
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{byID: make(map[string]*Patient), hook: &hookRef{}}
}

// SetMutationHook installs the hook observing every mutation of this
// database, including streams that already exist, replacing any hooks
// installed earlier (nil removes them all). The write-ahead log uses
// this seam to journal patient-upserts, stream-opens and
// vertex-appends without the store knowing about files.
func (db *DB) SetMutationHook(h MutationHook) {
	if h == nil {
		db.hook.fns.Store(nil)
		return
	}
	db.hook.fns.Store(&[]MutationHook{h})
}

// AddMutationHook appends a hook to the set installed on this
// database, preserving the ones already there. Hooks run in
// installation order, synchronously, under the same contract as
// SetMutationHook; the signature index chains onto the WAL hook this
// way.
func (db *DB) AddMutationHook(h MutationHook) {
	if h == nil {
		return
	}
	for {
		old := db.hook.fns.Load()
		var next []MutationHook
		if old != nil {
			next = append(next, *old...)
		}
		next = append(next, h)
		if db.hook.fns.CompareAndSwap(old, &next) {
			return
		}
	}
}

// ErrDuplicatePatient is returned when adding a patient whose ID
// already exists.
var ErrDuplicatePatient = errors.New("store: duplicate patient ID")

// AddPatient registers a new patient record and returns it.
func (db *DB) AddPatient(info PatientInfo) (*Patient, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if info.ID == "" {
		return nil, errors.New("store: empty patient ID")
	}
	if _, ok := db.byID[info.ID]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicatePatient, info.ID)
	}
	p := &Patient{Info: info, hook: db.hook}
	db.patients = append(db.patients, p)
	db.byID[info.ID] = p
	mPatients.Inc()
	db.hook.emit(Mutation{Kind: MutPatientUpsert, Patient: info})
	return p, nil
}

// Patient returns the patient with the given ID, or nil.
func (db *DB) Patient(id string) *Patient {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.byID[id]
}

// Patients returns the patient records in insertion order. The slice
// is a copy; the records are shared.
func (db *DB) Patients() []*Patient {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Patient, len(db.patients))
	copy(out, db.patients)
	return out
}

// MutationSeq returns the database's monotone mutation counter: the
// number of mutations emitted since the DB was created. Two equal
// readings bracket a quiescent database.
func (db *DB) MutationSeq() uint64 {
	return db.hook.seq.Load()
}

// NumPatients returns the number of patient records.
func (db *DB) NumPatients() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.patients)
}

// Streams returns every stream in the database in patient order.
func (db *DB) Streams() []*Stream {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*Stream
	for _, p := range db.patients {
		out = append(out, p.Streams...)
	}
	return out
}

// NumVertices returns the total vertex count across all streams.
func (db *DB) NumVertices() int {
	n := 0
	for _, st := range db.Streams() {
		n += st.Len()
	}
	return n
}

// EnableIndexes builds the n-gram index on every stream.
func (db *DB) EnableIndexes() {
	for _, st := range db.Streams() {
		st.EnableIndex()
	}
}
