package store

// ngramSize is the gram width of the state-string inverted index. With
// a 4-letter alphabet, 4-grams give up to 256 postings lists — small
// and selective enough for breathing data, where the regular pattern
// "EOI EOI ..." dominates.
const ngramSize = 4

// ngramIndex is an inverted index from state-string n-grams to their
// start positions. It supports incremental extension as vertices are
// appended to the owning stream.
type ngramIndex struct {
	postings map[string][]int32
	built    int // number of state-string positions already indexed
}

func newNgramIndex() *ngramIndex {
	return &ngramIndex{postings: make(map[string][]int32)}
}

// build indexes the full state string from scratch.
func (ix *ngramIndex) build(stateStr []byte) {
	ix.postings = make(map[string][]int32)
	ix.built = 0
	ix.extend(stateStr)
}

// extend indexes any new complete grams introduced by appended states.
func (ix *ngramIndex) extend(stateStr []byte) {
	for ; ix.built+ngramSize <= len(stateStr); ix.built++ {
		g := string(stateStr[ix.built : ix.built+ngramSize])
		ix.postings[g] = append(ix.postings[g], int32(ix.built))
	}
}

// find returns window starts j <= limit where stateStr[j:j+len(sig)]
// == sig, using the postings of the signature's first gram as
// candidates and verifying the remainder directly.
func (ix *ngramIndex) find(stateStr []byte, sig string, limit int) []int {
	first := sig[:ngramSize]
	var out []int
	for _, p := range ix.postings[first] {
		j := int(p)
		if j > limit {
			break // postings are in increasing order
		}
		if j+len(sig) <= len(stateStr) && string(stateStr[j:j+len(sig)]) == sig {
			out = append(out, j)
		}
	}
	return out
}
