package store

import (
	"bufio"
	"io"
)

// ReadAny deserializes a database in either the binary or the JSON
// format, sniffing the leading magic bytes. Tools accept both
// interchangeably.
func ReadAny(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && string(head) == binaryMagic {
		return ReadBinary(br)
	}
	return ReadJSON(br)
}
