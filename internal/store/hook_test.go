package store

import (
	"testing"

	"stsmatch/internal/plr"
)

// TestMutationHookChaining pins the multi-hook contract: AddMutationHook
// chains observers in installation order, SetMutationHook replaces the
// whole set, and nil clears it.
func TestMutationHookChaining(t *testing.T) {
	db := NewDB()
	var order []string
	db.SetMutationHook(func(m Mutation) { order = append(order, "a:"+kindName(m.Kind)) })
	db.AddMutationHook(func(m Mutation) { order = append(order, "b:"+kindName(m.Kind)) })

	p, err := db.AddPatient(PatientInfo{ID: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S1")
	if err := st.Append(plr.Vertex{T: 1, Pos: []float64{0}, State: plr.EX}); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"a:patient-upsert", "b:patient-upsert",
		"a:stream-open", "b:stream-open",
		"a:vertex-append", "b:vertex-append",
	}
	if len(order) != len(want) {
		t.Fatalf("hook calls = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("hook call %d = %q, want %q (all: %v)", i, order[i], want[i], order)
		}
	}

	// Set replaces both; nil clears.
	order = nil
	db.SetMutationHook(func(m Mutation) { order = append(order, "c") })
	p.AddStream("S2")
	if len(order) != 1 || order[0] != "c" {
		t.Fatalf("after SetMutationHook: calls = %v, want [c]", order)
	}
	order = nil
	db.SetMutationHook(nil)
	p.AddStream("S3")
	if len(order) != 0 {
		t.Fatalf("after clearing hooks: calls = %v, want none", order)
	}

	// AddMutationHook on a clean DB works without a prior Set.
	order = nil
	db.AddMutationHook(func(m Mutation) { order = append(order, "d") })
	p.AddStream("S4")
	if len(order) != 1 || order[0] != "d" {
		t.Fatalf("Add without Set: calls = %v, want [d]", order)
	}
}

func kindName(k MutationKind) string {
	switch k {
	case MutPatientUpsert:
		return "patient-upsert"
	case MutStreamOpen:
		return "stream-open"
	case MutVertexAppend:
		return "vertex-append"
	}
	return "?"
}
