package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"stsmatch/internal/plr"
)

// Binary database format. The JSON interchange format is convenient
// but ~6x larger than necessary for big cohorts (paper scale is >2M
// raw points, hundreds of thousands of vertices); the binary format
// stores positions as raw float64 little-endian words with varint
// counts and interns nothing fancy — simple, versioned, and fast.
//
// Layout:
//
//	magic "STSM" | u16 version | uvarint numPatients
//	per patient: str id, class, tumorSite | uvarint age | uvarint numStreams
//	per stream:  str sessionID | uvarint dims | uvarint numVertices
//	per vertex:  f64 t | byte state | dims x f64 position
//
// Strings are uvarint length + bytes.

const (
	binaryMagic   = "STSM"
	binaryVersion = 1
)

// WriteBinary serializes the database in the compact binary format.
func (db *DB) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], binaryVersion)
	if _, err := bw.Write(u16[:]); err != nil {
		return err
	}
	patients := db.Patients()
	writeUvarint(bw, uint64(len(patients)))
	for _, p := range patients {
		writeString(bw, p.Info.ID)
		writeString(bw, p.Info.Class)
		writeString(bw, p.Info.TumorSite)
		writeUvarint(bw, uint64(p.Info.Age))
		writeUvarint(bw, uint64(len(p.Streams)))
		for _, st := range p.Streams {
			if err := writeStream(bw, st); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func writeStream(bw *bufio.Writer, st *Stream) error {
	writeString(bw, st.SessionID)
	seq := st.Seq()
	dims := seq.Dims()
	writeUvarint(bw, uint64(dims))
	writeUvarint(bw, uint64(len(seq)))
	var f64 [8]byte
	for _, v := range seq {
		binary.LittleEndian.PutUint64(f64[:], math.Float64bits(v.T))
		if _, err := bw.Write(f64[:]); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(v.State)); err != nil {
			return err
		}
		if len(v.Pos) != dims {
			return fmt.Errorf("store: stream %s vertex dims %d != %d", st.SessionID, len(v.Pos), dims)
		}
		for _, x := range v.Pos {
			binary.LittleEndian.PutUint64(f64[:], math.Float64bits(x))
			if _, err := bw.Write(f64[:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadBinary deserializes a database written by WriteBinary.
func ReadBinary(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	verBuf := make([]byte, 2)
	if _, err := io.ReadFull(br, verBuf); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint16(verBuf); v != binaryVersion {
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	numPatients, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 24
	if numPatients > maxReasonable {
		return nil, fmt.Errorf("store: implausible patient count %d", numPatients)
	}
	db := NewDB()
	for i := uint64(0); i < numPatients; i++ {
		var info PatientInfo
		if info.ID, err = readString(br); err != nil {
			return nil, err
		}
		if info.Class, err = readString(br); err != nil {
			return nil, err
		}
		if info.TumorSite, err = readString(br); err != nil {
			return nil, err
		}
		age, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		info.Age = int(age)
		p, err := db.AddPatient(info)
		if err != nil {
			return nil, err
		}
		numStreams, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if numStreams > maxReasonable {
			return nil, fmt.Errorf("store: implausible stream count %d", numStreams)
		}
		for s := uint64(0); s < numStreams; s++ {
			if err := readStream(br, p); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func readStream(br *bufio.Reader, p *Patient) error {
	sessionID, err := readString(br)
	if err != nil {
		return err
	}
	dims, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if dims > 16 {
		return fmt.Errorf("store: implausible dims %d", dims)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if n > 1<<30 {
		return fmt.Errorf("store: implausible vertex count %d", n)
	}
	st := p.AddStream(sessionID)
	buf := make([]byte, 8)
	seq := make(plr.Sequence, 0, n)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return err
		}
		v := plr.Vertex{T: math.Float64frombits(binary.LittleEndian.Uint64(buf))}
		stByte, err := br.ReadByte()
		if err != nil {
			return err
		}
		v.State = plr.State(stByte)
		if !v.State.Valid() {
			return fmt.Errorf("store: invalid state byte %d", stByte)
		}
		v.Pos = make([]float64, dims)
		for d := range v.Pos {
			if _, err := io.ReadFull(br, buf); err != nil {
				return err
			}
			v.Pos[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		seq = append(seq, v)
	}
	return st.Append(seq...)
}

func writeUvarint(bw *bufio.Writer, x uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	bw.Write(buf[:n]) //nolint:errcheck // bufio defers errors to Flush
}

func writeString(bw *bufio.Writer, s string) {
	writeUvarint(bw, uint64(len(s)))
	bw.WriteString(s) //nolint:errcheck // bufio defers errors to Flush
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("store: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
