package store

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"stsmatch/internal/plr"
)

// seqFromStates builds a sequence with unit-spaced times and the given
// segment states.
func seqFromStates(states string) plr.Sequence {
	out := make(plr.Sequence, len(states))
	for i, ch := range []byte(states) {
		var st plr.State
		switch ch {
		case 'E':
			st = plr.EX
		case 'O':
			st = plr.EOE
		case 'I':
			st = plr.IN
		default:
			st = plr.IRR
		}
		out[i] = plr.Vertex{T: float64(i), Pos: []float64{float64(i % 5)}, State: st}
	}
	return out
}

func TestStreamAppendAndLen(t *testing.T) {
	st := NewStream("P1", "S1")
	if st.Len() != 0 {
		t.Fatal("new stream not empty")
	}
	if err := st.Append(seqFromStates("EOIEOI")...); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 6 {
		t.Errorf("Len = %d, want 6", st.Len())
	}
	if got := st.Seq().StateString(); got != "EOIEOI" {
		t.Errorf("StateString = %q", got)
	}
	// Non-advancing time rejected.
	if err := st.Append(plr.Vertex{T: 2, Pos: []float64{0}, State: plr.EX}); err == nil {
		t.Error("expected error for non-advancing vertex time")
	}
	// Invalid state rejected.
	if err := st.Append(plr.Vertex{T: 100, Pos: []float64{0}, State: plr.State(9)}); err == nil {
		t.Error("expected error for invalid state")
	}
}

func TestFindWindowsScan(t *testing.T) {
	st := NewStream("P1", "S1")
	if err := st.Append(seqFromStates("EOIEOIEOIE")...); err != nil {
		t.Fatal(err)
	}
	// Signature "EOI" needs 4 vertices; starts at 0, 3, 6 (6+3+1=10 ok).
	got := st.FindWindows("EOI")
	want := []int{0, 3, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FindWindows(EOI) = %v, want %v", got, want)
	}
	// Overlapping matches: "OIE" occurs at 1, 4; start 7 would need
	// vertex 11 which doesn't exist.
	got = st.FindWindows("OIE")
	want = []int{1, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("FindWindows(OIE) = %v, want %v", got, want)
	}
	if got := st.FindWindows(""); got != nil {
		t.Errorf("empty signature should return nil, got %v", got)
	}
	if got := st.FindWindows("EOIEOIEOIEOI"); got != nil {
		t.Errorf("too-long signature should return nil, got %v", got)
	}
}

func TestFindWindowsShortSignatureFallback(t *testing.T) {
	// Signatures shorter than ngramSize cannot use the n-gram
	// postings: even with the index enabled, FindWindows must fall
	// back to the linear state-string scan and return identical
	// results.
	st := NewStream("P1", "S1")
	if err := st.Append(seqFromStates("EOIEOIEOIE")...); err != nil {
		t.Fatal(err)
	}
	sigs := []string{"E", "EO", "EOI"}
	for _, sig := range sigs {
		if len(sig) >= ngramSize {
			t.Fatalf("test signature %q not shorter than ngramSize %d", sig, ngramSize)
		}
	}
	unindexed := map[string][]int{}
	for _, sig := range sigs {
		unindexed[sig] = st.FindWindows(sig)
	}
	st.EnableIndex()
	if !st.IndexEnabled() {
		t.Fatal("index not enabled")
	}
	for _, sig := range sigs {
		got := st.FindWindows(sig)
		if !reflect.DeepEqual(got, unindexed[sig]) {
			t.Errorf("FindWindows(%q) with index = %v, scan fallback gave %v", sig, got, unindexed[sig])
		}
	}
	// Known positions for the 3-segment signature: starts 0, 3, 6.
	if got := st.FindWindows("EOI"); !reflect.DeepEqual(got, []int{0, 3, 6}) {
		t.Errorf("FindWindows(EOI) = %v, want [0 3 6]", got)
	}
	// A signature at exactly ngramSize exercises the indexed path on
	// the same stream and must agree with a pre-index scan too.
	if got, want := st.FindWindows("EOIE"), []int{0, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("FindWindows(EOIE) = %v, want %v", got, want)
	}
}

func TestFindWindowsIndexMatchesScan(t *testing.T) {
	letters := []byte("EOIR")
	rng := rand.New(rand.NewSource(5))
	f := func(n uint16, sigLen uint8) bool {
		length := int(n%300) + 12
		states := make([]byte, length)
		for i := range states {
			// Mostly regular rotation with occasional irregularity,
			// like real streams.
			if rng.Intn(10) == 0 {
				states[i] = 'R'
			} else {
				states[i] = letters[i%3]
			}
		}
		st := NewStream("P", "S")
		if err := st.Append(seqFromStates(string(states))...); err != nil {
			return false
		}
		sl := int(sigLen%6) + 4 // signatures of 4..9 (index path)
		if sl >= length-1 {
			sl = length - 2
		}
		start := rng.Intn(length - sl)
		sig := string(states[start : start+sl])

		scan := st.FindWindows(sig)
		st.EnableIndex()
		indexed := st.FindWindows(sig)
		return reflect.DeepEqual(scan, indexed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIndexStaysCurrentAcrossAppends(t *testing.T) {
	st := NewStream("P", "S")
	if err := st.Append(seqFromStates("EOIEOI")...); err != nil {
		t.Fatal(err)
	}
	st.EnableIndex()
	if !st.IndexEnabled() {
		t.Fatal("index not enabled")
	}
	more := seqFromStates("EOIEOIE")
	for i := range more {
		more[i].T += 6
	}
	if err := st.Append(more...); err != nil {
		t.Fatal(err)
	}
	got := st.FindWindows("EOIE")
	// State string is EOIEOIEOIEOIE (13 vertices); sig EOIE at 0,3,6;
	// 9+4+1 > 13 excludes 9... wait 9+4=13 needs vertex 13 (len 14): excluded.
	fresh := NewStream("P", "S2")
	if err := fresh.Append(seqFromStates("EOIEOIEOIEOIE")...); err != nil {
		t.Fatal(err)
	}
	want := fresh.FindWindows("EOIE")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("indexed after append = %v, scan of equivalent = %v", got, want)
	}
}

// TestIndexFreshAfterDBEnableIndexes guards the live-ingestion path:
// DB.EnableIndexes() runs once at preload time, and every vertex
// appended afterwards must still be found through the index.
func TestIndexFreshAfterDBEnableIndexes(t *testing.T) {
	db := NewDB()
	p, err := db.AddPatient(PatientInfo{ID: "P"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S")
	if err := st.Append(seqFromStates("EOIEOIEOI")...); err != nil {
		t.Fatal(err)
	}
	db.EnableIndexes()

	// Append a suffix whose signature appears nowhere in the prefix.
	more := seqFromStates("EEOOI")
	for i := range more {
		more[i].T += 9
	}
	if err := st.Append(more...); err != nil {
		t.Fatal(err)
	}
	got := st.FindWindows("EEOO") // needs vertices 9..13: only in the suffix
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("FindWindows after post-EnableIndexes append = %v, want [9]", got)
	}
	// And the indexed result must agree with a brute-force scan.
	want := scanWindows([]byte("EOIEOIEOIEEOOI"), "EEOO", st.Len()-4-1)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("indexed = %v, scan = %v", got, want)
	}
}

func TestDBPatients(t *testing.T) {
	db := NewDB()
	p1, err := db.AddPatient(PatientInfo{ID: "P1", Class: "calm"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddPatient(PatientInfo{ID: "P1"}); !errors.Is(err, ErrDuplicatePatient) {
		t.Errorf("duplicate error = %v", err)
	}
	if _, err := db.AddPatient(PatientInfo{}); err == nil {
		t.Error("empty ID should be rejected")
	}
	if db.Patient("P1") != p1 {
		t.Error("Patient lookup failed")
	}
	if db.Patient("missing") != nil {
		t.Error("missing patient should be nil")
	}
	if db.NumPatients() != 1 {
		t.Errorf("NumPatients = %d", db.NumPatients())
	}

	s1 := p1.AddStream("S1")
	s2 := p1.AddStream("S2")
	if p1.StreamBySession("S2") != s2 {
		t.Error("StreamBySession failed")
	}
	if p1.StreamBySession("nope") != nil {
		t.Error("missing session should be nil")
	}
	if err := s1.Append(seqFromStates("EOI")...); err != nil {
		t.Fatal(err)
	}
	if err := s2.Append(seqFromStates("EOIE")...); err != nil {
		t.Fatal(err)
	}
	if got := len(db.Streams()); got != 2 {
		t.Errorf("Streams = %d, want 2", got)
	}
	if db.NumVertices() != 7 {
		t.Errorf("NumVertices = %d, want 7", db.NumVertices())
	}
	db.EnableIndexes()
	for _, st := range db.Streams() {
		if !st.IndexEnabled() {
			t.Error("EnableIndexes missed a stream")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := NewDB()
	p, _ := db.AddPatient(PatientInfo{ID: "P1", Class: "deep", Age: 61, TumorSite: "lower-lobe"})
	st := p.AddStream("P1-S01")
	seq := seqFromStates("EOIEOIR")
	for i := range seq {
		seq[i].Pos = []float64{float64(i) * 1.5, -float64(i)}
	}
	if err := st.Append(seq...); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p2 := back.Patient("P1")
	if p2 == nil {
		t.Fatal("patient lost in round trip")
	}
	if p2.Info != p.Info {
		t.Errorf("info mismatch: %+v vs %+v", p2.Info, p.Info)
	}
	s2 := p2.StreamBySession("P1-S01")
	if s2 == nil {
		t.Fatal("stream lost")
	}
	got, want := s2.Seq(), st.Seq()
	if len(got) != len(want) {
		t.Fatalf("vertex count %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].T != want[i].T || got[i].State != want[i].State ||
			!reflect.DeepEqual(got[i].Pos, want[i].Pos) {
			t.Errorf("vertex %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONRejectsBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nonsense")); err == nil {
		t.Error("expected decode error")
	}
	bad := `{"patients":[{"info":{"id":"P1"},"streams":[{"sessionId":"s","vertices":[{"t":0,"pos":[1],"state":"WAT"}]}]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("expected state parse error")
	}
}

func TestStreamConcurrentReadsDuringAppend(t *testing.T) {
	st := NewStream("P", "S")
	st.EnableIndex()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			v := plr.Vertex{T: float64(i), Pos: []float64{0}, State: plr.State(i % 3)}
			if err := st.Append(v); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			st.FindWindows("EOI")
			st.Len()
		}
	}()
	wg.Wait()
	if st.Len() != 500 {
		t.Errorf("Len = %d, want 500", st.Len())
	}
}

func TestMutationHookObservesAllKinds(t *testing.T) {
	db := NewDB()
	var got []Mutation
	db.SetMutationHook(func(m Mutation) {
		// Vertices alias the caller's slice only for the call; copy.
		m.Vertices = append([]plr.Vertex(nil), m.Vertices...)
		got = append(got, m)
	})

	p, err := db.AddPatient(PatientInfo{ID: "P1", Class: "calm"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S1")
	if err := st.Append(seqFromStates("EOI")...); err != nil {
		t.Fatal(err)
	}

	want := []MutationKind{MutPatientUpsert, MutStreamOpen, MutVertexAppend}
	if len(got) != len(want) {
		t.Fatalf("observed %d mutations, want %d: %+v", len(got), len(want), got)
	}
	for i, k := range want {
		if got[i].Kind != k {
			t.Errorf("mutation %d kind = %d, want %d", i, got[i].Kind, k)
		}
	}
	if got[0].Patient.ID != "P1" || got[0].Patient.Class != "calm" {
		t.Errorf("upsert payload = %+v", got[0].Patient)
	}
	if got[1].PatientID != "P1" || got[1].SessionID != "S1" {
		t.Errorf("stream-open payload = %+v", got[1])
	}
	if len(got[2].Vertices) != 3 {
		t.Errorf("vertex-append carried %d vertices, want 3", len(got[2].Vertices))
	}
}

func TestMutationHookCoversPreexistingStreams(t *testing.T) {
	// Installing the hook after recovery must still journal appends to
	// streams created before installation.
	db := NewDB()
	p, err := db.AddPatient(PatientInfo{ID: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S1")

	var kinds []MutationKind
	db.SetMutationHook(func(m Mutation) { kinds = append(kinds, m.Kind) })
	if err := st.Append(seqFromStates("E")...); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 || kinds[0] != MutVertexAppend {
		t.Errorf("kinds = %v, want [MutVertexAppend]", kinds)
	}

	// Removing the hook silences it again.
	db.SetMutationHook(nil)
	if err := st.Append(plr.Vertex{T: 100, Pos: []float64{0}, State: plr.EX}); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 1 {
		t.Error("mutation emitted after hook removal")
	}
}

func TestMutationHookReportsPartialAppend(t *testing.T) {
	// A batch that fails mid-way must still journal the prefix that
	// landed, because the stream state advanced by exactly that prefix.
	db := NewDB()
	p, err := db.AddPatient(PatientInfo{ID: "P1"})
	if err != nil {
		t.Fatal(err)
	}
	st := p.AddStream("S1")
	var appended int
	db.SetMutationHook(func(m Mutation) {
		if m.Kind == MutVertexAppend {
			appended += len(m.Vertices)
		}
	})
	batch := plr.Sequence{
		{T: 1, Pos: []float64{0}, State: plr.EX},
		{T: 2, Pos: []float64{0}, State: plr.EOE},
		{T: 2, Pos: []float64{0}, State: plr.IN}, // does not advance: rejected
	}
	if err := st.Append(batch...); err == nil {
		t.Fatal("expected mid-batch append error")
	}
	if appended != 2 {
		t.Errorf("hook saw %d appended vertices, want the 2 that landed", appended)
	}
	if st.Len() != 2 {
		t.Errorf("stream holds %d vertices, want 2", st.Len())
	}
}

func TestSnapshotPrefixSums(t *testing.T) {
	// The incrementally maintained displacement-norm prefix sums must
	// match a from-scratch recomputation bitwise (same op order), and
	// window sums derived from them must agree with direct summation.
	rng := rand.New(rand.NewSource(17))
	st := NewStream("P", "S")
	var appended plr.Sequence
	tNow := 0.0
	for batch := 0; batch < 5; batch++ {
		var vs plr.Sequence
		for i := 0; i < 1+rng.Intn(20); i++ {
			tNow += 0.1 + rng.Float64()
			vs = append(vs, plr.Vertex{
				T:     tNow,
				Pos:   []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 3},
				State: plr.State(rng.Intn(3)),
			})
		}
		if err := st.Append(vs...); err != nil {
			t.Fatal(err)
		}
		appended = append(appended, vs...)

		seq, sums := st.Snapshot()
		if len(seq) != len(appended) || len(sums) != len(seq) {
			t.Fatalf("snapshot lengths: seq %d (want %d), sums %d", len(seq), len(appended), len(sums))
		}
		want := 0.0
		for i := range seq {
			if i > 0 {
				want += dispNorm(seq[i-1].Pos, seq[i].Pos)
			}
			if sums[i] != want {
				t.Fatalf("sums[%d] = %v, want %v", i, sums[i], want)
			}
		}
	}

	// O(1) window sums equal the direct per-segment summation.
	seq, sums := st.Snapshot()
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(len(seq)-2)
		j := rng.Intn(len(seq) - n + 1)
		direct := 0.0
		for i := j; i < j+n-1; i++ {
			direct += dispNorm(seq[i].Pos, seq[i+1].Pos)
		}
		got := sums[j+n-1] - sums[j]
		if diff := got - direct; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("window [%d,%d): prefix sum %v != direct %v", j, j+n, got, direct)
		}
	}
}

func TestSnapshotPartialBatchKeepsSumsConsistent(t *testing.T) {
	// A mid-batch append error must leave ampSum aligned with the
	// vertices that actually landed.
	st := NewStream("P", "S")
	good := seqFromStates("EOI")
	bad := plr.Vertex{T: 1.5, Pos: []float64{0}, State: plr.EX} // time regresses
	if err := st.Append(append(good.Clone(), bad)...); err == nil {
		t.Fatal("expected mid-batch time-order error")
	}
	seq, sums := st.Snapshot()
	if len(seq) != 3 || len(sums) != 3 {
		t.Fatalf("after partial batch: %d vertices, %d sums (want 3, 3)", len(seq), len(sums))
	}
}
