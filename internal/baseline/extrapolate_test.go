package baseline

import (
	"math"
	"testing"

	"stsmatch/internal/plr"
)

func TestExtrapolatorOnLine(t *testing.T) {
	e, err := NewExtrapolator(1.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Predict(1); ok {
		t.Error("prediction available before any data")
	}
	for ts := 0.0; ts <= 2.0; ts += 0.1 {
		if err := e.Observe(plr.Sample{T: ts, Pos: []float64{3 + 2*ts}}); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := e.Predict(2.5)
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(got-8) > 1e-9 {
		t.Errorf("Predict(2.5) = %v, want 8", got)
	}
}

func TestExtrapolatorWindowEviction(t *testing.T) {
	// A slope change should be forgotten once the old regime leaves
	// the window.
	e, _ := NewExtrapolator(0.5, 0)
	for ts := 0.0; ts < 2.0; ts += 0.05 {
		e.Observe(plr.Sample{T: ts, Pos: []float64{0}}) //nolint:errcheck
	}
	for ts := 2.0; ts < 4.0; ts += 0.05 {
		e.Observe(plr.Sample{T: ts, Pos: []float64{10 * (ts - 2)}}) //nolint:errcheck
	}
	got, ok := e.Predict(4.2)
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(got-22) > 0.5 {
		t.Errorf("Predict(4.2) = %v, want ~22 (new slope only)", got)
	}
	if e.N() > 11 {
		t.Errorf("window holds %d samples, want ~10", e.N())
	}
}

func TestExtrapolatorErrors(t *testing.T) {
	if _, err := NewExtrapolator(0, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewExtrapolator(1, -1); err == nil {
		t.Error("negative dim accepted")
	}
	e, _ := NewExtrapolator(1, 1)
	if err := e.Observe(plr.Sample{T: 0, Pos: []float64{1}}); err == nil {
		t.Error("missing dimension accepted")
	}
	e2, _ := NewExtrapolator(1, 0)
	if err := e2.Observe(plr.Sample{T: 1, Pos: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Observe(plr.Sample{T: 1, Pos: []float64{0}}); err == nil {
		t.Error("non-increasing time accepted")
	}
	e2.Reset()
	if e2.N() != 0 {
		t.Error("Reset did not clear")
	}
}
