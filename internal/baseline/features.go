package baseline

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Feature-extraction baselines from the related work the paper builds
// on (Section 2): Piecewise Aggregate Approximation (PAA; Keogh et al.)
// and the Discrete Fourier Transform used by the GEMINI line of
// subsequence matching (Faloutsos et al. [7], Agrawal et al. [1]).
// Both reduce a length-n window to a k-dimensional feature vector whose
// Euclidean distance lower-bounds (PAA) or approximates (truncated DFT)
// the full Euclidean distance.

// PAA reduces v to k segment means. k must be in [1, len(v)]; segments
// are as equal as possible (the last one absorbs the remainder).
func PAA(v []float64, k int) ([]float64, error) {
	n := len(v)
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: PAA k=%d out of range for n=%d", k, n)
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		var s float64
		for _, x := range v[lo:hi] {
			s += x
		}
		out[i] = s / float64(hi-lo)
	}
	return out, nil
}

// PAADistance is the lower-bounding distance between two PAA vectors
// computed from length-n windows: sqrt(n/k) * ||a-b|| (Keogh's lemma).
func PAADistance(a, b []float64, n int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("baseline: PAA length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(float64(n) / float64(len(a)) * s), nil
}

// DFT returns the first k complex Fourier coefficients of v
// (coefficient 0 is the mean component). Naive O(n*k) evaluation —
// windows here are tens of points, so an FFT would be overkill.
func DFT(v []float64, k int) ([]complex128, error) {
	n := len(v)
	if n == 0 {
		return nil, fmt.Errorf("baseline: empty DFT input")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("baseline: DFT k=%d out of range for n=%d", k, n)
	}
	out := make([]complex128, k)
	for f := 0; f < k; f++ {
		var acc complex128
		for t, x := range v {
			angle := -2 * math.Pi * float64(f) * float64(t) / float64(n)
			acc += complex(x, 0) * cmplx.Exp(complex(0, angle))
		}
		out[f] = acc / complex(math.Sqrt(float64(n)), 0)
	}
	return out, nil
}

// DFTDistance is the Euclidean distance in the truncated frequency
// domain. By Parseval's theorem it lower-bounds the time-domain
// Euclidean distance (up to the shared normalization), which is what
// makes the GEMINI index sound.
func DFTDistance(a, b []complex128) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("baseline: DFT length mismatch %d vs %d", len(a), len(b))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(s), nil
}
