package baseline

import (
	"fmt"

	"stsmatch/internal/plr"
	"stsmatch/internal/stats"
)

// Clinical prediction baselines. The paper cites an evaluation of
// "commonly used predictive methods to compensate respiratory motion"
// ([24]); the standard entries in that family are the no-predictor
// (last observed position) and polynomial extrapolation of the recent
// trajectory. LastObserved lives in matcher.go; this file adds linear
// extrapolation over a sliding window of raw samples, which is the
// strongest simple competitor at short horizons.

// Extrapolator predicts future positions by least-squares linear
// extrapolation over the most recent Window seconds of raw samples.
// It is fed online via Observe, mirroring how the subsequence-matching
// pipeline is fed via Segmenter.Push.
type Extrapolator struct {
	// Window is the fitting window length in seconds.
	Window float64
	// Dim is the predicted dimension.
	Dim int

	buf []plr.Sample // samples within the window, time-ordered
	reg stats.LinReg
}

// NewExtrapolator builds a linear extrapolator with the given fitting
// window.
func NewExtrapolator(window float64, dim int) (*Extrapolator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("baseline: extrapolation window must be positive, got %v", window)
	}
	if dim < 0 {
		return nil, fmt.Errorf("baseline: negative dimension")
	}
	return &Extrapolator{Window: window, Dim: dim}, nil
}

// Observe feeds one sample. Samples must arrive in increasing time
// order.
func (e *Extrapolator) Observe(sm plr.Sample) error {
	if e.Dim >= len(sm.Pos) {
		return fmt.Errorf("baseline: sample has %d dims, need %d", len(sm.Pos), e.Dim+1)
	}
	if n := len(e.buf); n > 0 && sm.T <= e.buf[n-1].T {
		return fmt.Errorf("baseline: non-increasing sample time %v", sm.T)
	}
	e.buf = append(e.buf, sm.Clone())
	e.reg.Add(sm.T, sm.Pos[e.Dim])
	// Evict samples that left the window.
	cut := 0
	for cut < len(e.buf) && e.buf[cut].T < sm.T-e.Window {
		e.reg.Remove(e.buf[cut].T, e.buf[cut].Pos[e.Dim])
		cut++
	}
	if cut > 0 {
		e.buf = append(e.buf[:0], e.buf[cut:]...)
	}
	return nil
}

// N returns the number of samples currently in the window.
func (e *Extrapolator) N() int { return len(e.buf) }

// Predict extrapolates the fitted line to time t. It returns false
// until at least two samples are in the window.
func (e *Extrapolator) Predict(t float64) (float64, bool) {
	if len(e.buf) < 2 {
		return 0, false
	}
	return e.reg.At(t), true
}

// Reset clears the window.
func (e *Extrapolator) Reset() {
	e.buf = e.buf[:0]
	e.reg.Reset()
}
