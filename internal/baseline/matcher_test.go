package baseline

import (
	"math"
	"sort"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// periodic builds a stream of regular cycles.
func periodic(pid, sid string, amp float64, cycles int) *store.Stream {
	st := store.NewStream(pid, sid)
	states := []plr.State{plr.EX, plr.EOE, plr.IN}
	y := amp
	t := 0.0
	vs := plr.Sequence{{T: 0, Pos: []float64{amp}, State: plr.EX}}
	for i := 0; i < cycles*3; i++ {
		stt := states[i%3]
		switch stt {
		case plr.EX:
			y -= amp
		case plr.IN:
			y += amp
		}
		t++
		vs = append(vs, plr.Vertex{T: t, Pos: []float64{y}, State: states[(i+1)%3]})
		vs[len(vs)-2].State = stt
	}
	if err := st.Append(vs...); err != nil {
		panic(err)
	}
	return st
}

func buildDB() *store.DB {
	db := store.NewDB()
	p1, _ := db.AddPatient(store.PatientInfo{ID: "P1"})
	p1.Streams = append(p1.Streams, periodic("P1", "S1", 10, 15))
	p2, _ := db.AddPatient(store.PatientInfo{ID: "P2"})
	p2.Streams = append(p2.Streams, periodic("P2", "S1", 10.5, 15))
	return db
}

func TestBaselineMatcherFindSimilar(t *testing.T) {
	db := buildDB()
	m := NewMatcher(db, MethodEuclidean)
	m.TopK = 8
	seq := db.Patient("P1").Streams[0].Seq()
	q := core.NewQuery(seq[len(seq)-8:], "P1", "S1")
	matches, err := m.FindSimilar(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 8 {
		t.Fatalf("matches = %d, want TopK=8", len(matches))
	}
	if !sort.SliceIsSorted(matches, func(a, b int) bool {
		return matches[a].Distance < matches[b].Distance
	}) {
		t.Error("matches not sorted")
	}
	// Online semantics: same-stream matches must precede the query.
	for _, mt := range matches {
		if mt.Stream.PatientID == "P1" && mt.Stream.SessionID == "S1" &&
			mt.EndTime() >= q.Seq[0].T {
			t.Error("same-stream match overlaps the query's present")
		}
	}
	if _, err := m.FindSimilar(core.Query{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestBaselineMatcherAllMethods(t *testing.T) {
	db := buildDB()
	seq := db.Patient("P1").Streams[0].Seq()
	q := core.NewQuery(seq[len(seq)-8:], "P1", "S1")
	for _, method := range []Method{MethodEuclidean, MethodWeightedEuclidean, MethodDTW, MethodLCSS} {
		m := NewMatcher(db, method)
		matches, err := m.FindSimilar(q)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(matches) == 0 {
			t.Errorf("%v: no matches", method)
		}
		for _, mt := range matches {
			if math.IsNaN(mt.Distance) || mt.Distance < 0 {
				t.Errorf("%v: bad distance %v", method, mt.Distance)
			}
		}
	}
}

func TestBaselinePrediction(t *testing.T) {
	db := buildDB()
	m := NewMatcher(db, MethodWeightedEuclidean)
	seq := db.Patient("P1").Streams[0].Seq()
	q := core.NewQuery(seq[len(seq)-9:len(seq)-1], "P1", "S1")
	matches, err := m.FindSimilar(q)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.PredictPosition(q, matches, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := seq.PositionAt(q.Now + 0.3)
	if e := math.Abs(pred.Pos[0] - truth[0]); e > 4 {
		t.Errorf("baseline prediction error %.2f unreasonably large", e)
	}
	if _, err := m.PredictPosition(q, nil, 0.3, 1); err != core.ErrNoMatches {
		t.Errorf("want ErrNoMatches, got %v", err)
	}
}

func TestBaselineIgnoresStates(t *testing.T) {
	// Unlike the core matcher, the baseline retrieves windows with
	// arbitrary state alignment — the key structural difference.
	db := buildDB()
	m := NewMatcher(db, MethodEuclidean)
	m.TopK = 50
	seq := db.Patient("P1").Streams[0].Seq()
	q := core.NewQuery(seq[len(seq)-8:], "P1", "S1")
	matches, err := m.FindSimilar(q)
	if err != nil {
		t.Fatal(err)
	}
	misaligned := false
	qSig := q.Seq.StateSignature()
	for _, mt := range matches {
		if mt.Window().StateSignature() != qSig {
			misaligned = true
			break
		}
	}
	if !misaligned {
		t.Error("expected at least one state-misaligned candidate among top-50")
	}
}
