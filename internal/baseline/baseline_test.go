package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"stsmatch/internal/plr"
)

func ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestResample(t *testing.T) {
	seq := plr.Sequence{
		{T: 0, Pos: []float64{0}, State: plr.EX},
		{T: 2, Pos: []float64{10}, State: plr.EOE},
		{T: 4, Pos: []float64{10}, State: plr.IN},
	}
	v, err := Resample(seq, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 5, 10, 10, 10}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-9 {
			t.Errorf("v[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	if _, err := Resample(seq[:1], 5, 0); err == nil {
		t.Error("single vertex accepted")
	}
	if _, err := Resample(seq, 1, 0); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Resample(seq, 5, 3); err == nil {
		t.Error("bad dimension accepted")
	}
}

func TestEuclidean(t *testing.T) {
	d, err := Euclidean([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// sqrt((9+16)/2)
	if math.Abs(d-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("d = %v", d)
	}
	if _, err := Euclidean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if d, _ := Euclidean(nil, nil); d != 0 {
		t.Error("empty distance should be 0")
	}
}

func TestWeightedEuclidean(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 1, 1}
	// Uniform discrepancy: weighting must not change the value.
	dU, err := Euclidean(a, b)
	if err != nil {
		t.Fatal(err)
	}
	dW, err := WeightedEuclidean(a, b, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dU-dW) > 1e-12 {
		t.Errorf("uniform discrepancy: weighted %v != unweighted %v", dW, dU)
	}
	// Recency: recent-end mismatch must cost more.
	early := []float64{1, 0, 0, 0, 0, 0}
	late := []float64{0, 0, 0, 0, 0, 1}
	zero := make([]float64, 6)
	dE, _ := WeightedEuclidean(zero, early, nil, 0.5)
	dL, _ := WeightedEuclidean(zero, late, nil, 0.5)
	if dL <= dE {
		t.Errorf("recency weighting inactive: early %v late %v", dE, dL)
	}
	if _, err := WeightedEuclidean(a, b, []float64{1}, 0.5); err == nil {
		t.Error("bad weight length accepted")
	}
	if _, err := WeightedEuclidean(a, b[:2], nil, 0.5); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRecencyRamp(t *testing.T) {
	w := RecencyRamp(5, 0.6)
	if w[0] != 0.6 || w[4] != 1 {
		t.Errorf("ramp ends = %v", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Errorf("ramp not increasing: %v", w)
		}
	}
	if got := RecencyRamp(1, 0.6); got[0] != 1 {
		t.Errorf("singleton ramp = %v", got)
	}
}

func TestDTWProperties(t *testing.T) {
	a := ramp(20)
	if d := DTW(a, a, 0); d != 0 {
		t.Errorf("DTW(a,a) = %v, want 0", d)
	}
	b := make([]float64, 20)
	copy(b, a)
	b[10] += 5
	if DTW(a, b, 0) <= 0 {
		t.Error("DTW of different series should be positive")
	}
	// Symmetry.
	if d1, d2 := DTW(a, b, 3), DTW(b, a, 3); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("DTW asymmetric: %v vs %v", d1, d2)
	}
	// Warping tolerance: a time-shifted copy is closer under DTW than
	// under Euclidean.
	shifted := make([]float64, 20)
	for i := range shifted {
		j := i - 2
		if j < 0 {
			j = 0
		}
		shifted[i] = a[j]
	}
	dtw := DTW(a, shifted, 5)
	euc, _ := Euclidean(a, shifted)
	if dtw >= euc {
		t.Errorf("DTW %v should beat Euclidean %v on shifted series", dtw, euc)
	}
	// Different lengths allowed.
	if d := DTW(a, a[:15], 0); math.IsInf(d, 0) || math.IsNaN(d) {
		t.Errorf("different-length DTW = %v", d)
	}
	if !math.IsInf(DTW(nil, a, 0), 1) {
		t.Error("empty DTW should be +Inf")
	}
}

func TestDTWBandReachesCorner(t *testing.T) {
	// A window smaller than the length difference must still produce
	// a finite distance (band expansion).
	a := ramp(30)
	b := ramp(10)
	if d := DTW(a, b, 1); math.IsInf(d, 0) {
		t.Error("band did not expand to reach the corner")
	}
}

func TestLCSS(t *testing.T) {
	a := ramp(10)
	if d := LCSS(a, a, 0.5, 0); d != 0 {
		t.Errorf("LCSS(a,a) = %v, want 0", d)
	}
	far := make([]float64, 10)
	for i := range far {
		far[i] = 1000 + float64(i)
	}
	if d := LCSS(a, far, 0.5, 0); d != 1 {
		t.Errorf("LCSS of disjoint series = %v, want 1", d)
	}
	if d := LCSS(nil, a, 0.5, 0); d != 1 {
		t.Errorf("empty LCSS = %v, want 1", d)
	}
	// Bounds property.
	f := func(xs []float64, eps float64) bool {
		if len(xs) == 0 {
			return true
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
		}
		eps = math.Abs(eps)
		if math.IsNaN(eps) || math.IsInf(eps, 0) {
			eps = 1
		}
		d := LCSS(xs, xs, eps, 3)
		return d >= 0 && d <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLastObserved(t *testing.T) {
	seq := plr.Sequence{
		{T: 0, Pos: []float64{1, 2}, State: plr.EX},
		{T: 1, Pos: []float64{3, 4}, State: plr.EOE},
	}
	got := LastObserved(seq)
	if got[0] != 3 || got[1] != 4 {
		t.Errorf("LastObserved = %v", got)
	}
	got[0] = 99
	if seq[1].Pos[0] == 99 {
		t.Error("LastObserved returned a view")
	}
	if LastObserved(nil) != nil {
		t.Error("empty LastObserved should be nil")
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodEuclidean:         "euclidean",
		MethodWeightedEuclidean: "weighted-euclidean",
		MethodDTW:               "dtw",
		MethodLCSS:              "lcss",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}
