package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPAABasics(t *testing.T) {
	v := []float64{1, 1, 2, 2, 3, 3}
	got, err := PAA(v, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("PAA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// k = n is the identity.
	id, err := PAA(v, len(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if id[i] != v[i] {
			t.Errorf("identity PAA differs at %d", i)
		}
	}
	// k = 1 is the global mean.
	one, err := PAA(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(one[0]-2) > 1e-12 {
		t.Errorf("PAA(1) = %v, want 2", one[0])
	}
	// Uneven split still covers every point.
	if _, err := PAA(v, 4); err != nil {
		t.Errorf("uneven k rejected: %v", err)
	}
	if _, err := PAA(v, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PAA(v, 7); err == nil {
		t.Error("k>n accepted")
	}
}

// Property: the PAA distance lower-bounds the full Euclidean distance
// (both unnormalized; Euclidean here is sqrt of the sum, so compare
// against the raw form).
func TestPAALowerBoundsEuclidean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64, kRaw uint8) bool {
		n := 32
		a := make([]float64, n)
		b := make([]float64, n)
		r := rand.New(rand.NewSource(seed))
		for i := range a {
			a[i] = r.NormFloat64() * 5
			b[i] = r.NormFloat64() * 5
		}
		k := 1 << (kRaw % 6) // 1,2,4,8,16,32: divides n evenly
		pa, err := PAA(a, k)
		if err != nil {
			return false
		}
		pb, err := PAA(b, k)
		if err != nil {
			return false
		}
		lb, err := PAADistance(pa, pb, n)
		if err != nil {
			return false
		}
		var full float64
		for i := range a {
			d := a[i] - b[i]
			full += d * d
		}
		return lb <= math.Sqrt(full)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestDFTBasics(t *testing.T) {
	// A constant signal has all its energy in coefficient 0.
	v := []float64{3, 3, 3, 3}
	c, err := DFT(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(c[0])-6) > 1e-9 { // 3*4/sqrt(4)
		t.Errorf("c0 = %v, want 6", c[0])
	}
	for i := 1; i < 4; i++ {
		if math.Hypot(real(c[i]), imag(c[i])) > 1e-9 {
			t.Errorf("c%d = %v, want 0", i, c[i])
		}
	}
	if _, err := DFT(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := DFT(v, 5); err == nil {
		t.Error("k>n accepted")
	}
}

// Property: Parseval — the full-k DFT distance equals the time-domain
// Euclidean distance.
func TestDFTParseval(t *testing.T) {
	f := func(seed int64) bool {
		n := 16
		r := rand.New(rand.NewSource(seed))
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		ca, err := DFT(a, n)
		if err != nil {
			return false
		}
		cb, err := DFT(b, n)
		if err != nil {
			return false
		}
		freq, err := DFTDistance(ca, cb)
		if err != nil {
			return false
		}
		var td float64
		for i := range a {
			d := a[i] - b[i]
			td += d * d
		}
		return math.Abs(freq-math.Sqrt(td)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: truncated DFT distance lower-bounds the full one.
func TestDFTTruncationLowerBounds(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		n := 16
		k := int(kRaw%15) + 1
		r := rand.New(rand.NewSource(seed))
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		caFull, _ := DFT(a, n)
		cbFull, _ := DFT(b, n)
		full, _ := DFTDistance(caFull, cbFull)
		ca, _ := DFT(a, k)
		cb, _ := DFT(b, k)
		trunc, _ := DFTDistance(ca, cb)
		return trunc <= full+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDFTDistanceErrors(t *testing.T) {
	if _, err := DFTDistance(make([]complex128, 2), make([]complex128, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PAADistance([]float64{1}, []float64{1, 2}, 4); err == nil {
		t.Error("length mismatch accepted")
	}
}
