package baseline

import (
	"fmt"
	"sort"

	"stsmatch/internal/core"
	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// Method selects the baseline distance used by the Matcher.
type Method int

// The baseline distance methods.
const (
	MethodEuclidean Method = iota
	MethodWeightedEuclidean
	MethodDTW
	MethodLCSS
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodEuclidean:
		return "euclidean"
	case MethodWeightedEuclidean:
		return "weighted-euclidean"
	case MethodDTW:
		return "dtw"
	case MethodLCSS:
		return "lcss"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Matcher performs subsequence retrieval with a baseline distance.
// Unlike the core matcher, it knows nothing about states: candidates
// are *all* windows with the query's vertex count, which is exactly
// what makes the comparison with the model-based measure interesting.
type Matcher struct {
	DB     *store.DB
	Method Method

	// SamplePoints is the resample resolution for the distance
	// computation.
	SamplePoints int

	// TopK bounds the number of matches retrieved (the baselines have
	// no natural epsilon on the same scale as the core measure, so
	// retrieval is k-nearest).
	TopK int

	// W0 is the recency ramp base for MethodWeightedEuclidean.
	W0 float64

	// DTWWindow is the Sakoe-Chiba half-width for MethodDTW.
	DTWWindow int

	// LCSSEps is the value tolerance for MethodLCSS.
	LCSSEps float64
}

// NewMatcher returns a baseline matcher with sensible defaults for the
// method.
func NewMatcher(db *store.DB, method Method) *Matcher {
	return &Matcher{
		DB:           db,
		Method:       method,
		SamplePoints: 32,
		TopK:         20,
		W0:           0.8,
		DTWWindow:    8,
		LCSSEps:      2.0,
	}
}

// distance computes the configured baseline distance between two
// resampled vectors.
func (m *Matcher) distance(qv, cv []float64) (float64, error) {
	switch m.Method {
	case MethodEuclidean:
		return Euclidean(qv, cv)
	case MethodWeightedEuclidean:
		return WeightedEuclidean(qv, cv, nil, m.W0)
	case MethodDTW:
		return DTW(qv, cv, m.DTWWindow), nil
	case MethodLCSS:
		return LCSS(qv, cv, m.LCSSEps, m.DTWWindow), nil
	default:
		return 0, fmt.Errorf("baseline: unknown method %v", m.Method)
	}
}

// FindSimilar retrieves the TopK nearest windows to the query under
// the baseline distance. Results reuse core.Match so the prediction
// machinery is shared; Weight is 1/(1+D) (no stream weighting — the
// baselines are deliberately structure-blind).
func (m *Matcher) FindSimilar(q core.Query) ([]core.Match, error) {
	n := len(q.Seq)
	if n < 2 {
		return nil, fmt.Errorf("baseline: query needs at least 2 vertices")
	}
	qv, err := Resample(q.Seq, m.SamplePoints, 0)
	if err != nil {
		return nil, err
	}
	var out []core.Match
	for _, st := range m.DB.Streams() {
		seq := st.Seq()
		sameStream := st.PatientID == q.PatientID && st.SessionID == q.SessionID
		for j := 0; j+n <= len(seq); j++ {
			cand := seq[j : j+n]
			if sameStream && cand[n-1].T >= q.Seq[0].T {
				continue // exclude the query's own present
			}
			cv, err := Resample(cand, m.SamplePoints, 0)
			if err != nil {
				return nil, err
			}
			d, err := m.distance(qv, cv)
			if err != nil {
				return nil, err
			}
			out = append(out, core.Match{
				Stream:   st,
				Start:    j,
				N:        n,
				Distance: d,
				Weight:   1 / (1 + d),
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Distance < out[b].Distance })
	if len(out) > m.TopK {
		out = out[:m.TopK]
	}
	return out, nil
}

// PredictPosition mirrors the core prediction (Section 4.3) on
// baseline matches, so prediction quality comparisons isolate the
// distance function as the only changed variable.
func (m *Matcher) PredictPosition(q core.Query, matches []core.Match, delta float64, minMatches int) (core.Prediction, error) {
	if minMatches <= 0 {
		minMatches = core.MinMatchesForPrediction
	}
	if len(q.Seq) == 0 {
		return core.Prediction{}, fmt.Errorf("baseline: empty query")
	}
	dims := q.Seq.Dims()
	acc := make([]float64, dims)
	var wsum, dsum float64
	used := 0
	for _, mt := range matches {
		seq := mt.Stream.Seq()
		f, inside := seq.PositionAt(mt.EndTime() + delta)
		if !inside {
			continue
		}
		first := seq[mt.Start].Pos
		for k := 0; k < dims; k++ {
			acc[k] += mt.Weight * (f[k] - first[k])
		}
		wsum += mt.Weight
		dsum += mt.Distance
		used++
	}
	if used < minMatches || wsum == 0 {
		return core.Prediction{}, core.ErrNoMatches
	}
	out := make([]float64, dims)
	for k := 0; k < dims; k++ {
		out[k] = q.Seq[0].Pos[k] + acc[k]/wsum
	}
	return core.Prediction{Pos: out, Delta: delta, NumMatches: used, MeanDist: dsum / float64(used)}, nil
}

// LastObserved is the no-prediction clinical baseline of Figure 1: the
// system treats the target at its last observed position, paying the
// full latency error. It returns the position at the query's final
// vertex.
func LastObserved(q plr.Sequence) []float64 {
	if len(q) == 0 {
		return nil
	}
	out := make([]float64, len(q[len(q)-1].Pos))
	copy(out, q[len(q)-1].Pos)
	return out
}
