// Package baseline implements the comparison methods the paper
// positions itself against (Sections 2 and 7): Euclidean and weighted
// Euclidean distance over resampled subsequences, Dynamic Time Warping
// (DTW), the Longest Common Subsequence measure (LCSS), and a
// fixed-length query strategy. These exist so the evaluation harness
// can reproduce the paper's comparative claims — "the weighted distance
// function outperforms the corresponding weighted Euclidean distance
// function" (Figure 6) and "the running time of DTW is very
// computationally expensive" (Section 7.2).
package baseline

import (
	"fmt"
	"math"

	"stsmatch/internal/plr"
)

// Resample converts the primary dimension of a PLR window into a
// fixed-length vector of n evenly spaced interpolated values across the
// window's time span. This is the dimensionality normalization the
// Euclidean-family distances need.
func Resample(seq plr.Sequence, n int, dim int) ([]float64, error) {
	if len(seq) < 2 {
		return nil, fmt.Errorf("baseline: cannot resample a window of %d vertices", len(seq))
	}
	if n < 2 {
		return nil, fmt.Errorf("baseline: need at least 2 resample points, got %d", n)
	}
	if dim < 0 || dim >= seq.Dims() {
		return nil, fmt.Errorf("baseline: dimension %d out of range (%d dims)", dim, seq.Dims())
	}
	t0 := seq[0].T
	span := seq.Duration()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		t := t0 + span*float64(i)/float64(n-1)
		pos, _ := seq.PositionAt(t)
		out[i] = pos[dim]
	}
	return out, nil
}

// Euclidean returns the L2 distance between equal-length vectors,
// normalized by sqrt(len) so values are comparable across lengths.
func Euclidean(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("baseline: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// WeightedEuclidean returns the recency-weighted L2 distance: the
// "corresponding weighted Euclidean distance" of Section 7.2, using the
// same linear recency ramp as the core distance. w must match the
// vector length; pass nil for a ramp from w0 to 1.
func WeightedEuclidean(a, b, w []float64, w0 float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("baseline: length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, nil
	}
	if w == nil {
		w = RecencyRamp(len(a), w0)
	}
	if len(w) != len(a) {
		return 0, fmt.Errorf("baseline: weight length mismatch %d vs %d", len(w), len(a))
	}
	var s, ws float64
	for i := range a {
		d := a[i] - b[i]
		s += w[i] * d * d
		ws += w[i]
	}
	return math.Sqrt(s / ws), nil
}

// RecencyRamp builds the linear weight ramp from w0 (oldest) to 1
// (newest) over n points.
func RecencyRamp(n int, w0 float64) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := range w {
		w[i] = w0 + (1-w0)*float64(i)/float64(n-1)
	}
	return w
}

// DTW returns the Dynamic Time Warping distance between two vectors
// with a Sakoe-Chiba band of the given half-width (<= 0 means
// unconstrained). Cost is the band-constrained cumulative absolute
// difference, normalized by the warping path length.
func DTW(a, b []float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window <= 0 {
		window = max(n, m)
	}
	// Ensure the band can reach the corner.
	if d := abs(n - m); window < d {
		window = d
	}
	const inf = math.MaxFloat64
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := max(1, i-window)
		hi := min(m, i+window)
		for j := lo; j <= hi; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if cur[j-1] < best {
				best = cur[j-1] // deletion
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return prev[m] / float64(n+m)
}

// LCSS returns the Longest-Common-Subsequence dissimilarity between
// two vectors: 1 - LCSS/min(n,m), where points match if they are
// within eps in value and delta in index. 0 means one sequence is a
// (tolerant) subsequence of the other; 1 means no common structure.
func LCSS(a, b []float64, eps float64, delta int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 1
	}
	if delta <= 0 {
		delta = max(n, m)
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			switch {
			case abs(i-j) > delta:
				cur[j] = max(prev[j], cur[j-1])
			case math.Abs(a[i-1]-b[j-1]) <= eps:
				cur[j] = prev[j-1] + 1
			default:
				cur[j] = max(prev[j], cur[j-1])
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	lcs := prev[m]
	return 1 - float64(lcs)/float64(min(n, m))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
