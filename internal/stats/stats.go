// Package stats provides the small statistics toolkit used throughout
// the repository: streaming moments, order statistics, histograms,
// incremental simple linear regression, and distance-matrix helpers.
//
// Everything here is deliberately dependency-free (stdlib only) and
// allocation-conscious: the online prediction path calls into this
// package for every incoming sample.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions over empty data sets.
var ErrEmpty = errors.New("stats: empty data set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Welford accumulates streaming mean and variance using Welford's
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples folded in so far.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest sample seen (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest sample seen (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Reset returns the accumulator to its zero state.
func (w *Welford) Reset() { *w = Welford{} }

// Merge folds another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}
