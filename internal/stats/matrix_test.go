package stats

import (
	"strings"
	"testing"
)

func TestDistMatrixSetAtSymmetric(t *testing.T) {
	m := NewDistMatrix(3)
	m.Set(0, 1, 2.5)
	m.Set(1, 2, 4)
	if m.At(1, 0) != 2.5 || m.At(0, 1) != 2.5 {
		t.Error("Set did not store symmetrically")
	}
	if m.At(2, 1) != 4 {
		t.Error("second pair not symmetric")
	}
	if m.Size() != 3 {
		t.Errorf("Size = %d, want 3", m.Size())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDistMatrixValidateCatchesViolations(t *testing.T) {
	m := NewDistMatrix(2)
	m.d[0] = 1 // nonzero diagonal, bypassing Set
	if err := m.Validate(); err == nil {
		t.Error("expected diagonal violation")
	}
	m = NewDistMatrix(2)
	m.d[1] = 1 // asymmetric, bypassing Set
	if err := m.Validate(); err == nil {
		t.Error("expected asymmetry violation")
	}
	m = NewDistMatrix(2)
	m.Set(0, 1, -3)
	if err := m.Validate(); err == nil {
		t.Error("expected negativity violation")
	}
}

func TestDistMatrixRowAndMean(t *testing.T) {
	m := NewDistMatrix(3)
	m.Set(0, 1, 1)
	m.Set(0, 2, 2)
	m.Set(1, 2, 3)
	row := m.Row(0)
	if row[0] != 0 || row[1] != 1 || row[2] != 2 {
		t.Errorf("Row(0) = %v", row)
	}
	row[1] = 99 // copy, must not affect matrix
	if m.At(0, 1) != 1 {
		t.Error("Row returned a view, want a copy")
	}
	if got := m.MeanOffDiagonal(); !almostEqual(got, 2, 1e-12) {
		t.Errorf("MeanOffDiagonal = %v, want 2", got)
	}
	if NewDistMatrix(1).MeanOffDiagonal() != 0 {
		t.Error("MeanOffDiagonal of 1x1 should be 0")
	}
}

func TestDistMatrixString(t *testing.T) {
	m := NewDistMatrix(2)
	m.Set(0, 1, 1.5)
	s := m.String()
	if !strings.Contains(s, "1.500") {
		t.Errorf("String missing value: %q", s)
	}
	if strings.Count(s, "\n") != 2 {
		t.Errorf("expected 2 rows, got %q", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 9.9, -4, 15} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	counts := h.Counts()
	// -4 clamps into bucket 0; 15 clamps into bucket 4.
	if counts[0] != 3 { // 0.5, 1, -4
		t.Errorf("bucket 0 = %d, want 3", counts[0])
	}
	if counts[4] != 2 { // 9.9, 15
		t.Errorf("bucket 4 = %d, want 2", counts[4])
	}
	if got := h.BucketCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BucketCenter(0) = %v, want 1", got)
	}
	counts[0] = 99
	if h.Counts()[0] == 99 {
		t.Error("Counts returned a view, want a copy")
	}
}

func TestHistogramPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 3)
}
