package stats

import "math"

// LinReg is an incremental simple linear regression y = a + b*x.
// Points can be added and removed (for sliding windows) in O(1); the
// fit and its error are available at any time. This is the workhorse of
// the online PLR segmentation in internal/fsm, which needs constant
// space per stream.
//
// The zero value is an empty regression ready for use.
type LinReg struct {
	n                     int
	sx, sy, sxx, sxy, syy float64
}

// Add folds the point (x, y) into the regression.
func (r *LinReg) Add(x, y float64) {
	r.n++
	r.sx += x
	r.sy += y
	r.sxx += x * x
	r.sxy += x * y
	r.syy += y * y
}

// Remove subtracts a previously added point (x, y). Removing points
// that were never added corrupts the regression; callers own that
// invariant.
func (r *LinReg) Remove(x, y float64) {
	r.n--
	r.sx -= x
	r.sy -= y
	r.sxx -= x * x
	r.sxy -= x * y
	r.syy -= y * y
	if r.n <= 0 {
		*r = LinReg{}
	}
}

// N returns the number of points currently in the regression.
func (r *LinReg) N() int { return r.n }

// Reset empties the regression.
func (r *LinReg) Reset() { *r = LinReg{} }

// Fit returns the intercept a and slope b of the least-squares line
// y = a + b*x. For fewer than two points, or degenerate x spread, it
// returns a horizontal line through the mean y.
func (r *LinReg) Fit() (a, b float64) {
	if r.n == 0 {
		return 0, 0
	}
	nf := float64(r.n)
	den := nf*r.sxx - r.sx*r.sx
	if r.n < 2 || math.Abs(den) < 1e-12 {
		return r.sy / nf, 0
	}
	b = (nf*r.sxy - r.sx*r.sy) / den
	a = (r.sy - b*r.sx) / nf
	return a, b
}

// Slope returns only the fitted slope.
func (r *LinReg) Slope() float64 {
	_, b := r.Fit()
	return b
}

// MSE returns the mean squared residual of the current fit.
func (r *LinReg) MSE() float64 {
	if r.n < 2 {
		return 0
	}
	a, b := r.Fit()
	nf := float64(r.n)
	// Sum of squared residuals via accumulated moments:
	// SSE = syy - 2a*sy - 2b*sxy + n*a^2 + 2ab*sx + b^2*sxx
	sse := r.syy - 2*a*r.sy - 2*b*r.sxy + nf*a*a + 2*a*b*r.sx + b*b*r.sxx
	if sse < 0 {
		sse = 0 // numeric noise
	}
	return sse / nf
}

// RMSE returns the root mean squared residual of the current fit.
func (r *LinReg) RMSE() float64 { return math.Sqrt(r.MSE()) }

// At evaluates the fitted line at x.
func (r *LinReg) At(x float64) float64 {
	a, b := r.Fit()
	return a + b*x
}
