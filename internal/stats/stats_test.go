package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) error = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) error = %v, want ErrEmpty", err)
	}
	xs := []float64{3, -1, 4, 1, 5}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != -1 || mx != 5 {
		t.Errorf("Min/Max = %v/%v, want -1/5", mn, mx)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty percentile error = %v, want ErrEmpty", err)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error for p > 100")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("expected error for p < 0")
	}
	one, _ := Percentile([]float64{7}, 30)
	if one != 7 {
		t.Errorf("singleton percentile = %v, want 7", one)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2.25, 8, 0, 4.5, 4.5, -1}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Errorf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-12) {
		t.Errorf("Mean = %v, want %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), Variance(xs))
	}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if w.Min() != mn || w.Max() != mx {
		t.Errorf("Min/Max = %v/%v, want %v/%v", w.Min(), w.Max(), mn, mx)
	}
}

func TestWelfordEmptyAndReset(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	w.Add(3)
	w.Reset()
	if w.N() != 0 || w.Mean() != 0 {
		t.Error("Reset did not clear state")
	}
}

// Property: merging two Welford accumulators equals accumulating the
// concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		var wa, wb, wAll Welford
		for _, x := range a {
			x = clampFinite(x)
			wa.Add(x)
			wAll.Add(x)
		}
		for _, x := range b {
			x = clampFinite(x)
			wb.Add(x)
			wAll.Add(x)
		}
		wa.Merge(wb)
		if wa.N() != wAll.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Max(math.Abs(wAll.Min()), math.Abs(wAll.Max())))
		return almostEqual(wa.Mean(), wAll.Mean(), 1e-9*scale) &&
			almostEqual(wa.Variance(), wAll.Variance(), 1e-9*scale*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Welford variance is never negative and mean stays within
// [min, max].
func TestWelfordBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var w Welford
		for _, x := range xs {
			w.Add(clampFinite(x))
		}
		if w.N() == 0 {
			return true
		}
		return w.Variance() >= 0 && w.Mean() >= w.Min()-1e-9 && w.Mean() <= w.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// clampFinite maps quick-generated extreme values into a numerically
// reasonable range so the property tests exercise logic, not float
// overflow.
func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	if x > 1e9 {
		return 1e9
	}
	if x < -1e9 {
		return -1e9
	}
	return x
}
