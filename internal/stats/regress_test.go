package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinRegExactLine(t *testing.T) {
	var r LinReg
	for x := 0.0; x < 10; x++ {
		r.Add(x, 3+2*x)
	}
	a, b := r.Fit()
	if !almostEqual(a, 3, 1e-9) || !almostEqual(b, 2, 1e-9) {
		t.Errorf("Fit = (%v, %v), want (3, 2)", a, b)
	}
	if mse := r.MSE(); !almostEqual(mse, 0, 1e-9) {
		t.Errorf("MSE = %v, want 0", mse)
	}
	if got := r.At(20); !almostEqual(got, 43, 1e-9) {
		t.Errorf("At(20) = %v, want 43", got)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	var r LinReg
	a, b := r.Fit()
	if a != 0 || b != 0 {
		t.Errorf("empty Fit = (%v, %v), want (0, 0)", a, b)
	}
	r.Add(5, 7)
	a, b = r.Fit()
	if !almostEqual(a, 7, 1e-12) || b != 0 {
		t.Errorf("single-point Fit = (%v, %v), want (7, 0)", a, b)
	}
	// All x identical: horizontal line through mean y.
	r.Reset()
	r.Add(2, 1)
	r.Add(2, 3)
	a, b = r.Fit()
	if !almostEqual(a, 2, 1e-12) || b != 0 {
		t.Errorf("degenerate-x Fit = (%v, %v), want (2, 0)", a, b)
	}
}

func TestLinRegSlidingWindowMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type pt struct{ x, y float64 }
	var pts []pt
	for i := 0; i < 50; i++ {
		pts = append(pts, pt{float64(i) * 0.1, 5 - 3*float64(i)*0.1 + rng.NormFloat64()})
	}
	const win = 10
	var sliding LinReg
	for i, p := range pts {
		sliding.Add(p.x, p.y)
		if i >= win {
			old := pts[i-win]
			sliding.Remove(old.x, old.y)
		}
		if i < win-1 {
			continue
		}
		var fresh LinReg
		for _, q := range pts[i-win+1 : i+1] {
			fresh.Add(q.x, q.y)
		}
		sa, sb := sliding.Fit()
		fa, fb := fresh.Fit()
		if !almostEqual(sa, fa, 1e-6) || !almostEqual(sb, fb, 1e-6) {
			t.Fatalf("at %d: sliding (%v,%v) != fresh (%v,%v)", i, sa, sb, fa, fb)
		}
		if !almostEqual(sliding.MSE(), fresh.MSE(), 1e-6) {
			t.Fatalf("at %d: sliding MSE %v != fresh %v", i, sliding.MSE(), fresh.MSE())
		}
	}
}

func TestLinRegRemoveToEmptyResets(t *testing.T) {
	var r LinReg
	r.Add(1, 2)
	r.Remove(1, 2)
	if r.N() != 0 {
		t.Errorf("N = %d, want 0", r.N())
	}
	a, b := r.Fit()
	if a != 0 || b != 0 {
		t.Errorf("after removal Fit = (%v, %v), want zeros", a, b)
	}
}

// Property: for points exactly on a line, the fit recovers the line
// regardless of slope/intercept, and the slope accessor agrees.
func TestLinRegRecoversLineProperty(t *testing.T) {
	f := func(a8, b8 int8, n8 uint8) bool {
		a := float64(a8) / 4
		b := float64(b8) / 4
		n := int(n8%20) + 2
		var r LinReg
		for i := 0; i < n; i++ {
			x := float64(i) * 0.25
			r.Add(x, a+b*x)
		}
		fa, fb := r.Fit()
		return almostEqual(fa, a, 1e-6) && almostEqual(fb, b, 1e-6) &&
			almostEqual(r.Slope(), b, 1e-6) && r.MSE() < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinRegMSENonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var r LinReg
	for i := 0; i < 100; i++ {
		r.Add(rng.Float64()*10, rng.NormFloat64())
		if r.MSE() < 0 {
			t.Fatalf("negative MSE at %d", i)
		}
		if math.IsNaN(r.RMSE()) {
			t.Fatalf("NaN RMSE at %d", i)
		}
	}
}
