package stats

import (
	"fmt"
	"math"
	"strings"
)

// DistMatrix is a symmetric distance matrix over n items with zero
// diagonal, stored densely. It underlies stream- and patient-similarity
// analysis in internal/cluster.
type DistMatrix struct {
	n int
	d []float64 // row-major n x n
}

// NewDistMatrix allocates an n x n zero matrix.
func NewDistMatrix(n int) *DistMatrix {
	if n < 0 {
		panic("stats: negative distance matrix size")
	}
	return &DistMatrix{n: n, d: make([]float64, n*n)}
}

// Size returns the number of items.
func (m *DistMatrix) Size() int { return m.n }

// Set stores the symmetric distance between items i and j.
func (m *DistMatrix) Set(i, j int, v float64) {
	m.d[i*m.n+j] = v
	m.d[j*m.n+i] = v
}

// At returns the distance between items i and j.
func (m *DistMatrix) At(i, j int) float64 { return m.d[i*m.n+j] }

// Row returns a copy of row i.
func (m *DistMatrix) Row(i int) []float64 {
	out := make([]float64, m.n)
	copy(out, m.d[i*m.n:(i+1)*m.n])
	return out
}

// MeanOffDiagonal returns the mean of all off-diagonal entries,
// or 0 when n < 2.
func (m *DistMatrix) MeanOffDiagonal() float64 {
	if m.n < 2 {
		return 0
	}
	var s float64
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j {
				s += m.At(i, j)
			}
		}
	}
	return s / float64(m.n*(m.n-1))
}

// Validate checks symmetry, zero diagonal and non-negativity, and
// returns a descriptive error for the first violation found.
func (m *DistMatrix) Validate() error {
	for i := 0; i < m.n; i++ {
		if m.At(i, i) != 0 {
			return fmt.Errorf("stats: nonzero diagonal at %d: %v", i, m.At(i, i))
		}
		for j := i + 1; j < m.n; j++ {
			a, b := m.At(i, j), m.At(j, i)
			if a != b {
				return fmt.Errorf("stats: asymmetric at (%d,%d): %v vs %v", i, j, a, b)
			}
			if a < 0 || math.IsNaN(a) {
				return fmt.Errorf("stats: invalid distance at (%d,%d): %v", i, j, a)
			}
		}
	}
	return nil
}

// String renders the matrix with three decimals, for reports and
// debugging.
func (m *DistMatrix) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%7.3f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram is a fixed-width bucket histogram over [lo, hi). Values
// outside the range are clamped into the first/last bucket so counts
// are never lost.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
}

// NewHistogram builds a histogram with nbuckets buckets over [lo, hi).
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if nbuckets <= 0 || hi <= lo {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, nbuckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Counts returns a copy of the per-bucket counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// BucketCenter returns the center value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.hi - h.lo) / float64(len(h.counts))
	return h.lo + (float64(i)+0.5)*w
}
