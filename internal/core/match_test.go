package core

import (
	"math"
	"sort"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// buildTestDB constructs a deterministic database:
//
//	P1/S1: 12 regular cycles, amplitude 10 (the query's own stream)
//	P1/S2: 12 regular cycles, amplitude 10.5 (same patient)
//	P2/S1: 12 regular cycles, amplitude 11   (other patient)
//	P3/S1: 12 regular cycles, amplitude 30   (other patient, far)
func buildTestDB(t *testing.T) *store.DB {
	t.Helper()
	db := store.NewDB()
	add := func(pid, sid string, amp float64) {
		p := db.Patient(pid)
		if p == nil {
			var err error
			p, err = db.AddPatient(store.PatientInfo{ID: pid})
			if err != nil {
				t.Fatal(err)
			}
		}
		st := p.AddStream(sid)
		if err := st.Append(breathingWindow(0, amp, unitDurs(36))...); err != nil {
			t.Fatal(err)
		}
	}
	add("P1", "S1", 10)
	add("P1", "S2", 10.5)
	add("P2", "S1", 11)
	add("P3", "S1", 30)
	return db
}

func TestNewMatcherValidation(t *testing.T) {
	db := store.NewDB()
	bad := DefaultParams()
	bad.DistThreshold = -1
	if _, err := NewMatcher(db, bad); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewMatcher(nil, DefaultParams()); err == nil {
		t.Error("nil db accepted")
	}
}

func TestFindSimilarBasics(t *testing.T) {
	db := buildTestDB(t)
	m, err := NewMatcher(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	qseq := seq[len(seq)-10:]
	q := NewQuery(qseq, "P1", "S1")

	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches on a database full of near-identical cycles")
	}
	// Results sorted by ascending distance.
	if !sort.SliceIsSorted(matches, func(a, b int) bool {
		return matches[a].Distance < matches[b].Distance
	}) {
		t.Error("matches not sorted by distance")
	}
	for _, mt := range matches {
		if mt.Distance > m.Params.DistThreshold {
			t.Errorf("match above threshold: %v", mt.Distance)
		}
		// Window geometry consistent.
		w := mt.Window()
		if len(w) != mt.N {
			t.Errorf("window length %d != N %d", len(w), mt.N)
		}
		if w.StateSignature() != qseq.StateSignature() {
			t.Errorf("state signature mismatch: %s vs %s", w.StateSignature(), qseq.StateSignature())
		}
		// Same-session matches must end strictly before the query
		// begins (online semantics).
		if mt.Relation == SameSession && mt.EndTime() >= qseq[0].T {
			t.Errorf("same-session match overlaps query: end %v >= start %v", mt.EndTime(), qseq[0].T)
		}
		if mt.Weight <= 0 {
			t.Error("non-positive match weight")
		}
	}
	// The best same-session match must beat other patients: identical
	// amplitude and no stream-weight penalty.
	if matches[0].Relation != SameSession {
		t.Errorf("best match relation = %v, want same-session", matches[0].Relation)
	}
}

func TestFindSimilarExcludesFarPatients(t *testing.T) {
	db := buildTestDB(t)
	p := DefaultParams()
	p.DistThreshold = 3 // tight: P3 (amplitude 30) cannot qualify
	m, _ := NewMatcher(db, p)
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range matches {
		if mt.Stream.PatientID == "P3" {
			t.Errorf("far patient matched at distance %v", mt.Distance)
		}
	}
}

func TestFindSimilarRestriction(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")
	restrict := map[string]bool{"P1": true, "P2": true}
	matches, err := m.FindSimilar(q, restrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("restriction removed everything")
	}
	for _, mt := range matches {
		if !restrict[mt.Stream.PatientID] {
			t.Errorf("match from excluded patient %s", mt.Stream.PatientID)
		}
	}
}

func TestFindSimilarStateOrderPrecondition(t *testing.T) {
	// A query starting with IN must never match windows starting with
	// EX ("a sequence that starts with an inhale cannot be compared
	// with one that starts with an exhale").
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	// Find a window starting with IN.
	start := -1
	for i := len(seq) - 12; i > 0; i-- {
		if seq[i].State == plr.IN {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatal("no IN vertex found")
	}
	q := NewQuery(seq[start:start+8], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range matches {
		if mt.Window()[0].State != plr.IN {
			t.Error("match does not start with IN")
		}
	}
}

func TestFindSimilarTooShort(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	if _, err := m.FindSimilar(Query{Seq: nil}, nil); err == nil {
		t.Error("empty query accepted")
	}
}

func TestTopK(t *testing.T) {
	db := buildTestDB(t)
	p := DefaultParams()
	p.DistThreshold = 1e-12 // TopK must ignore the threshold
	m, _ := NewMatcher(db, p)
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")
	matches, err := m.TopK(q, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 5 {
		t.Fatalf("TopK returned %d, want 5", len(matches))
	}
	// Threshold restored afterwards.
	if m.Params.DistThreshold != 1e-12 {
		t.Error("TopK leaked threshold change")
	}
	if _, err := m.TopK(q, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestTopKRestrict(t *testing.T) {
	db := buildTestDB(t)
	p := DefaultParams()
	p.DistThreshold = 1e-12 // TopK must ignore the threshold
	m, _ := NewMatcher(db, p)
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")

	restrict := map[string]bool{"P2": true}
	got, err := m.TopK(q, 50, restrict)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("restricted TopK found nothing in P2's near-identical stream")
	}
	for _, mt := range got {
		if mt.Stream.PatientID != "P2" {
			t.Errorf("restricted TopK returned a match from %s", mt.Stream.PatientID)
		}
	}
	// The restricted result must equal the unrestricted result
	// filtered to the allowed patients: restriction prunes candidate
	// streams, it must not change scoring.
	all, err := m.TopK(q, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []Match
	for _, mt := range all {
		if restrict[mt.Stream.PatientID] {
			want = append(want, mt)
		}
	}
	if len(want) != len(got) {
		t.Fatalf("restricted TopK has %d matches, filtered unrestricted has %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Stream != got[i].Stream || want[i].Start != got[i].Start || want[i].Distance != got[i].Distance {
			t.Errorf("match %d: restricted %+v != filtered %+v", i, got[i], want[i])
		}
	}
}

func TestFindSimilarAblationScratchReuse(t *testing.T) {
	// With RequireStateOrder off, candidate starts come from a scratch
	// buffer reused across streams and searches; reuse must not change
	// results, including when a longer query follows a shorter one.
	db := buildTestDB(t)
	p := DefaultParams()
	p.RequireStateOrder = false
	reused, _ := NewMatcher(db, p)
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	for _, n := range []int{6, 12, 8} {
		q := NewQuery(seq[len(seq)-n:], "P1", "S1")
		fresh, _ := NewMatcher(db, p)
		want, err := fresh.FindSimilar(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reused.FindSimilar(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: reused matcher found %d matches, fresh found %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i].Stream != want[i].Stream || got[i].Start != want[i].Start || got[i].Distance != want[i].Distance {
				t.Errorf("n=%d match %d: reused %+v != fresh %+v", n, i, got[i], want[i])
			}
		}
	}
}

func TestMatchWeightFormula(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, mt := range matches {
		want := m.Params.StreamWeight(mt.Relation) / (1 + mt.Distance)
		if math.Abs(mt.Weight-want) > 1e-12 {
			t.Errorf("weight = %v, want %v", mt.Weight, want)
		}
	}
}

func TestRelationOf(t *testing.T) {
	st := store.NewStream("P1", "S1")
	cases := []struct {
		q    Query
		want SourceRelation
	}{
		{Query{PatientID: "P1", SessionID: "S1"}, SameSession},
		{Query{PatientID: "P1", SessionID: "S2"}, SamePatient},
		{Query{PatientID: "P2", SessionID: "S1"}, OtherPatient},
		{Query{}, OtherPatient}, // ad-hoc query
	}
	for _, c := range cases {
		if got := relationOf(c.q, st); got != c.want {
			t.Errorf("relationOf(%+v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestNewQuerySetsNow(t *testing.T) {
	seq := breathingWindow(5, 10, unitDurs(6))
	q := NewQuery(seq, "P", "S")
	if q.Now != seq[len(seq)-1].T {
		t.Errorf("Now = %v, want %v", q.Now, seq[len(seq)-1].T)
	}
	empty := NewQuery(nil, "P", "S")
	if empty.Now != 0 {
		t.Error("empty query Now should be 0")
	}
}
