package core

import "stsmatch/internal/obs"

// Matching-pipeline metrics. The pruning funnel reads top to bottom:
// of all windows a stream could offer, candidates_scanned survive the
// state-order filter (index_pruned did not), self_excluded overlap the
// query's own present, lb_pruned fail the O(1) prefix-sum lower bound
// before any per-segment arithmetic, distance_rejected exceed the
// acceptance bound after (possibly abandoned) exact evaluation, and
// matches_total are returned. A healthy funnel keeps each layer a
// small fraction of the one above it.
var (
	mSearches = obs.Default().Counter("stsmatch_matcher_searches_total",
		"FindSimilar invocations.")
	mCandidates = obs.Default().Counter("stsmatch_matcher_candidates_scanned_total",
		"Candidate windows that passed the state-order filter and reached distance evaluation.")
	mIndexPruned = obs.Default().Counter("stsmatch_matcher_index_pruned_total",
		"Windows eliminated by the state-order (n-gram index) filter before any distance work.")
	mSelfExcluded = obs.Default().Counter("stsmatch_matcher_self_excluded_total",
		"Candidate windows excluded for overlapping the query's own present.")
	mLBPruned = obs.Default().Counter("stsmatch_matcher_lb_pruned_total",
		"Candidate windows rejected by the O(1) prefix-sum lower bound before exact distance evaluation.")
	mDistanceRejected = obs.Default().Counter("stsmatch_matcher_distance_rejected_total",
		"Candidate windows rejected by the acceptance bound (threshold or adaptive top-k), including early abandonment.")
	mMatched = obs.Default().Counter("stsmatch_matcher_matches_total",
		"Candidate windows accepted as matches.")
	mQueryLen = obs.Default().Histogram("stsmatch_matcher_query_vertices",
		"Query length in vertices per search.",
		[]float64{2, 4, 7, 10, 13, 16, 19, 22, 25, 31})
	mSearchSeconds = obs.Default().Histogram("stsmatch_matcher_search_seconds",
		"FindSimilar wall time in seconds.", obs.DefLatencyBuckets)
	mStableQueries = obs.Default().Counter("stsmatch_query_stable_total",
		"Dynamic queries whose stability strip halted on a stable window.")
	mUnstableQueries = obs.Default().Counter("stsmatch_query_unstable_total",
		"Dynamic queries that hit the maximum length still unstable.")
)
