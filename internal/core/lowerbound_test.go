package core

import (
	"math/rand"
	"testing"

	"stsmatch/internal/plr"
)

// randomParams draws a valid Params from the rng, covering the full
// ablation and weight space the lower bound must stay admissible over.
func randomParams(rng *rand.Rand) Params {
	p := DefaultParams()
	p.WeightFreq = 0.05 + rng.Float64()
	p.WeightAmp = p.WeightFreq + rng.Float64()*2
	p.VertexWeightBase = 0.1 + 0.9*rng.Float64()
	p.WeightOtherPatient = 0.1 + 0.4*rng.Float64()
	p.WeightSamePatient = p.WeightOtherPatient + 0.3*rng.Float64()
	p.WeightSameSession = p.WeightSamePatient + 0.3*rng.Float64()
	p.UseAmpFreqWeights = rng.Intn(2) == 0
	p.UseStreamWeights = rng.Intn(2) == 0
	p.UseVertexWeights = rng.Intn(2) == 0
	return p
}

// randomPair draws a query/candidate pair of equal length with equal
// state order, random dimensionality and random geometry.
func randomPair(rng *rand.Rand) (q, c plr.Sequence) {
	n := 2 + rng.Intn(14)
	dims := 1 + rng.Intn(3)
	states := make([]plr.State, n)
	for i := range states {
		states[i] = plr.State(rng.Intn(3)) // EX, EOE or IN
	}
	mk := func() plr.Sequence {
		out := make(plr.Sequence, n)
		t := rng.Float64() * 10
		for i := range out {
			pos := make([]float64, dims)
			for k := range pos {
				pos[k] = (rng.Float64() - 0.5) * 40
			}
			out[i] = plr.Vertex{T: t, Pos: pos, State: states[i]}
			t += 0.1 + 3*rng.Float64()
		}
		return out
	}
	return mk(), mk()
}

// checkAdmissible asserts the O(1) bound never exceeds the exact
// distance for the given pair — the safety property of lb pruning.
func checkAdmissible(t *testing.T, p Params, q, c plr.Sequence, rel SourceRelation) {
	t.Helper()
	d, err := p.Distance(q, c, rel)
	if err != nil {
		t.Fatal(err)
	}
	vw := p.VertexWeights(nil, len(q))
	wsum, vwMin := sumMin(vw)
	lb := p.distanceLowerBound(
		dispNormSum(q), q.Duration(),
		dispNormSum(c), c.Duration(),
		vwMin, wsum, rel)
	if lb > d {
		t.Fatalf("lower bound %v exceeds exact distance %v\nparams %+v\nq %v\nc %v",
			lb, d, p, q, c)
	}
}

// TestLowerBoundAdmissibility hammers the bound with random parameter
// settings, dimensionalities, and window geometries: the bound must
// never exceed the exact Definition-2 distance, or pruning would drop
// true matches.
func TestLowerBoundAdmissibility(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rels := []SourceRelation{SameSession, SamePatient, OtherPatient}
	for trial := 0; trial < 5000; trial++ {
		p := randomParams(rng)
		q, c := randomPair(rng)
		checkAdmissible(t, p, q, c, rels[rng.Intn(len(rels))])
	}
}

// TestLowerBoundNearTies targets the floating-point edge the slack
// deflation exists for: candidates nearly identical to the query in
// aggregate, where a naive bound computed in floats could edge a hair
// above the true distance and prune an exact match.
func TestLowerBoundNearTies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		p := randomParams(rng)
		q, _ := randomPair(rng)
		c := q.Clone()
		// Perturb the candidate by a few ulp-scale nudges.
		for i := range c {
			c[i].T += (rng.Float64() - 0.5) * 1e-12
			for k := range c[i].Pos {
				c[i].Pos[k] += (rng.Float64() - 0.5) * 1e-12
			}
		}
		// Re-sort violations of time order are possible only if the
		// nudge exceeded a gap; gaps are >= 0.1, so times stay ordered.
		checkAdmissible(t, p, q, c, SameSession)
	}
}

// FuzzLowerBoundAdmissibility lets the fuzzer drive the generator
// seed, stressing the admissibility property beyond the fixed trials.
func FuzzLowerBoundAdmissibility(f *testing.F) {
	for _, seed := range []int64{1, 42, 1234, -99} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		p := randomParams(rng)
		q, c := randomPair(rng)
		rel := SourceRelation(rng.Intn(3))
		checkAdmissible(t, p, q, c, rel)
	})
}
