package core

import (
	"fmt"
	"sort"

	"stsmatch/internal/store"
)

// Automatic parameter tuning — the paper's "ongoing project" future
// work ("the system will learn the proper parameter settings from
// training data and adapt them during online operation"). This
// implementation performs a deterministic coordinate grid search over
// the weight parameters, scoring each candidate by mean prediction
// error on a training database, exactly mirroring how the authors
// report having fixed Table 1 by hand: "we first fixed all the other
// parameters ... then run experiments with different values ... is
// fixed to the value with the best prediction results."

// TuneSpace is the candidate grid per parameter. Empty slices keep the
// current value.
type TuneSpace struct {
	WeightFreq       []float64
	VertexWeightBase []float64
	DistThreshold    []float64
	StabilityThresh  []float64
}

// DefaultTuneSpace returns a small grid bracketing the Table 1 values.
func DefaultTuneSpace() TuneSpace {
	return TuneSpace{
		WeightFreq:       []float64{0.1, 0.25, 0.5, 1.0},
		VertexWeightBase: []float64{0.6, 0.8, 0.95},
		DistThreshold:    []float64{4, 8, 12},
		StabilityThresh:  []float64{3, 6, 9},
	}
}

// TuneResult records the search outcome.
type TuneResult struct {
	Best      Params
	BestError float64
	// Trace records every evaluated (description, error) pair in
	// evaluation order.
	Trace []TuneStep
}

// TuneStep is one evaluated candidate.
type TuneStep struct {
	Param string
	Value float64
	Error float64
}

// Tune performs coordinate descent over the grid: each parameter in
// turn is swept with the others held fixed, and locked to its best
// value before the next parameter is swept (the paper's protocol).
// The returned parameters always validate.
func Tune(db *store.DB, start Params, space TuneSpace, opts EvalOptions) (TuneResult, error) {
	if err := start.Validate(); err != nil {
		return TuneResult{}, err
	}
	cur := start
	eval := func(p Params) (float64, error) {
		if err := p.Validate(); err != nil {
			// Invalid combinations (e.g. WeightFreq > WeightAmp
			// ordering violations) are skipped, not fatal.
			return -1, nil
		}
		m, err := NewMatcher(db, p)
		if err != nil {
			return 0, err
		}
		r, err := m.Evaluate(opts)
		if err != nil {
			return 0, err
		}
		if r.Coverage() == 0 {
			return -1, nil // untestable configuration
		}
		return r.MeanError(), nil
	}

	res := TuneResult{}
	sweep := func(name string, grid []float64, set func(*Params, float64)) error {
		if len(grid) == 0 {
			return nil
		}
		grid = append([]float64(nil), grid...)
		sort.Float64s(grid)
		bestV, bestE := 0.0, -1.0
		for _, v := range grid {
			cand := cur
			set(&cand, v)
			e, err := eval(cand)
			if err != nil {
				return err
			}
			if e < 0 {
				continue
			}
			res.Trace = append(res.Trace, TuneStep{Param: name, Value: v, Error: e})
			if bestE < 0 || e < bestE {
				bestV, bestE = v, e
			}
		}
		if bestE >= 0 {
			set(&cur, bestV)
			res.BestError = bestE
		}
		return nil
	}

	if err := sweep("WeightFreq", space.WeightFreq, func(p *Params, v float64) { p.WeightFreq = v }); err != nil {
		return TuneResult{}, err
	}
	if err := sweep("VertexWeightBase", space.VertexWeightBase, func(p *Params, v float64) { p.VertexWeightBase = v }); err != nil {
		return TuneResult{}, err
	}
	if err := sweep("DistThreshold", space.DistThreshold, func(p *Params, v float64) { p.DistThreshold = v }); err != nil {
		return TuneResult{}, err
	}
	if err := sweep("StabilityThreshold", space.StabilityThresh, func(p *Params, v float64) { p.StabilityThreshold = v }); err != nil {
		return TuneResult{}, err
	}
	if len(res.Trace) == 0 {
		return TuneResult{}, fmt.Errorf("core: tuning produced no evaluable candidates")
	}
	res.Best = cur
	return res, nil
}
