package core

import (
	"math/rand"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// randomDB builds a randomized database of regular breathing streams
// with jittered amplitudes and durations, deterministic in the seed.
func randomDB(t *testing.T, rng *rand.Rand) *store.DB {
	t.Helper()
	db := store.NewDB()
	patients := 2 + rng.Intn(4)
	for p := 0; p < patients; p++ {
		info := store.PatientInfo{ID: string(rune('A' + p))}
		pat, err := db.AddPatient(info)
		if err != nil {
			t.Fatal(err)
		}
		sessions := 1 + rng.Intn(3)
		for s := 0; s < sessions; s++ {
			st := pat.AddStream(string(rune('a' + s)))
			segs := 12 + rng.Intn(48)
			durs := make([]float64, segs)
			for i := range durs {
				durs[i] = 0.5 + rng.Float64()
			}
			amp := 8 + 4*rng.Float64()
			if err := st.Append(breathingWindow(0, amp, durs)...); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// matchesIdentical asserts two result lists are element-wise identical
// in every exported field, including bit-exact distances.
func matchesIdentical(t *testing.T, label string, want, got []Match) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches vs %d", label, len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Stream != g.Stream || w.Start != g.Start || w.N != g.N ||
			w.Relation != g.Relation || w.Distance != g.Distance || w.Weight != g.Weight {
			t.Fatalf("%s: match %d differs: %+v vs %+v", label, i, w, g)
		}
	}
}

// TestParallelSequentialEquivalence is the correctness contract of the
// stream-parallel search: at every parallelism setting, FindSimilar,
// TopK and FindSimilarTopK return byte-identical results. Run under
// -race this also exercises the collector's synchronization.
func TestParallelSequentialEquivalence(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		db := randomDB(t, rng)
		if trial%2 == 0 {
			db.EnableIndexes()
		}
		streams := db.Streams()
		src := streams[rng.Intn(len(streams))]
		seq := src.Seq()
		n := 8 + rng.Intn(6)
		q := NewQuery(seq[len(seq)-n:], src.PatientID, src.SessionID)

		p := DefaultParams()
		p.DistThreshold = 2 + 6*rng.Float64()
		p.Parallelism = 1
		seqM, err := NewMatcher(db, p)
		if err != nil {
			t.Fatal(err)
		}
		wantSim, err := seqM.FindSimilar(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantTop, err := seqM.TopK(q, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantBoth, err := seqM.FindSimilarTopK(q, 5, nil)
		if err != nil {
			t.Fatal(err)
		}

		for _, par := range []int{2, 3, 8} {
			p.Parallelism = par
			m, err := NewMatcher(db, p)
			if err != nil {
				t.Fatal(err)
			}
			gotSim, err := m.FindSimilar(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			matchesIdentical(t, "FindSimilar", wantSim, gotSim)
			gotTop, err := m.TopK(q, 7, nil)
			if err != nil {
				t.Fatal(err)
			}
			matchesIdentical(t, "TopK", wantTop, gotTop)
			gotBoth, err := m.FindSimilarTopK(q, 5, nil)
			if err != nil {
				t.Fatal(err)
			}
			matchesIdentical(t, "FindSimilarTopK", wantBoth, gotBoth)
		}
	}
}

// TestFindSimilarTopKSemantics: the combined mode returns exactly the
// k best entries of the full threshold search.
func TestFindSimilarTopKSemantics(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")

	all, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Fatalf("test needs >= 4 threshold matches, got %d", len(all))
	}
	k := 3
	got, err := m.FindSimilarTopK(q, k, nil)
	if err != nil {
		t.Fatal(err)
	}
	matchesIdentical(t, "FindSimilarTopK vs FindSimilar prefix", all[:k], got)
	if _, err := m.FindSimilarTopK(q, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestDeterministicTieBreak duplicates identical stream content under
// several patients and sessions, producing exact distance ties, and
// asserts the result order is the documented total order — identical
// between sequential and parallel runs.
func TestDeterministicTieBreak(t *testing.T) {
	db := store.NewDB()
	durs := unitDurs(30)
	content := breathingWindow(0, 10, durs)
	for _, id := range []string{"P1", "P2", "P3"} {
		pat, err := db.AddPatient(store.PatientInfo{ID: id})
		if err != nil {
			t.Fatal(err)
		}
		for _, sid := range []string{"S1", "S2"} {
			st := pat.AddStream(sid)
			if err := st.Append(content.Clone()...); err != nil {
				t.Fatal(err)
			}
		}
	}
	seq := db.Patient("P1").StreamBySession("S1").Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")

	run := func(par int) []Match {
		p := DefaultParams()
		p.Parallelism = par
		m, err := NewMatcher(db, p)
		if err != nil {
			t.Fatal(err)
		}
		out, err := m.FindSimilar(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("no matches on duplicated identical streams")
	}
	// The order must follow the documented total order.
	for i := 1; i < len(want); i++ {
		a, b := want[i-1], want[i]
		if b.Distance < a.Distance {
			t.Fatalf("not sorted by distance at %d", i)
		}
		if a.Distance == b.Distance {
			ka := []string{a.Stream.PatientID, a.Stream.SessionID}
			kb := []string{b.Stream.PatientID, b.Stream.SessionID}
			if ka[0] > kb[0] ||
				(ka[0] == kb[0] && ka[1] > kb[1]) ||
				(ka[0] == kb[0] && ka[1] == kb[1] && a.Start > b.Start) {
				t.Fatalf("tie at %d not broken by (patient, session, start): %v/%v#%d vs %v/%v#%d",
					i, ka[0], ka[1], a.Start, kb[0], kb[1], b.Start)
			}
		}
	}
	for _, par := range []int{2, 4, 8} {
		matchesIdentical(t, "tie-break parallel", want, run(par))
	}
}

// dimMismatchDB builds a database whose first stream has 2-dim
// positions matching a 2-dim query and whose second has 1-dim
// positions, so exact distance evaluation on the second panics with an
// index out of range.
func dimMismatchDB(t *testing.T) (*store.DB, Query) {
	t.Helper()
	db := store.NewDB()
	widen := func(s plr.Sequence) plr.Sequence {
		out := s.Clone()
		for i := range out {
			out[i].Pos = append(out[i].Pos, 0)
		}
		return out
	}
	p1, _ := db.AddPatient(store.PatientInfo{ID: "P1"})
	st1 := p1.AddStream("S1")
	if err := st1.Append(widen(breathingWindow(0, 10, unitDurs(30)))...); err != nil {
		t.Fatal(err)
	}
	p2, _ := db.AddPatient(store.PatientInfo{ID: "P2"})
	st2 := p2.AddStream("S1")
	if err := st2.Append(breathingWindow(0, 10, unitDurs(30))...); err != nil {
		t.Fatal(err)
	}
	seq := st1.Seq()
	return db, NewQuery(seq[len(seq)-10:], "P1", "S1")
}

// TestTopKPanicDoesNotCorruptParams is the regression test for the old
// TopK implementation, which overwrote m.Params.DistThreshold and
// restored it without defer: a panic mid-search left the matcher with
// an effectively infinite threshold. The rewritten search never
// mutates Params, so the threshold must survive a panicking search at
// every parallelism setting — and parallel workers must re-raise the
// panic on the caller's goroutine rather than crash the process.
func TestTopKPanicDoesNotCorruptParams(t *testing.T) {
	db, q := dimMismatchDB(t)
	for _, par := range []int{1, 8} {
		p := DefaultParams()
		p.DistThreshold = 4.25
		p.Parallelism = par
		m, err := NewMatcher(db, p)
		if err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("par=%d: dimension mismatch did not panic", par)
				}
			}()
			_, _ = m.TopK(q, 3, nil)
		}()
		if m.Params.DistThreshold != 4.25 {
			t.Errorf("par=%d: panic corrupted DistThreshold: %v", par, m.Params.DistThreshold)
		}
		// The matcher must remain usable on well-formed streams.
		got, err := m.TopK(q, 3, map[string]bool{"P1": true})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Errorf("par=%d: matcher unusable after recovered panic", par)
		}
	}
}
