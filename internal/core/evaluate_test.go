package core

import (
	"testing"

	"stsmatch/internal/store"
)

// buildEvalDB builds a modest multi-patient database of hand-crafted
// periodic streams with slight per-stream variation, long enough for
// the evaluation replay protocol.
func buildEvalDB(t *testing.T) *store.DB {
	t.Helper()
	db := store.NewDB()
	amps := []float64{10, 10.4, 10.8, 11.2}
	for pi, amp := range amps {
		p, err := db.AddPatient(store.PatientInfo{ID: string(rune('A' + pi))})
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 2; s++ {
			st := p.AddStream(p.Info.ID + "-S" + string(rune('1'+s)))
			if err := st.Append(breathingWindow(0, amp+0.1*float64(s), unitDurs(90))...); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

func TestEvaluateProducesPredictions(t *testing.T) {
	db := buildEvalDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	opts := DefaultEvalOptions()
	opts.QueriesPerStream = 6
	res, err := m.Evaluate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalQueries == 0 {
		t.Fatal("no queries evaluated")
	}
	if res.Coverage() == 0 {
		t.Fatal("no predictions made")
	}
	if len(res.PerDelta) != len(opts.Deltas) {
		t.Fatalf("PerDelta length %d, want %d", len(res.PerDelta), len(opts.Deltas))
	}
	for _, d := range res.PerDelta {
		if d.Attempts == 0 {
			t.Errorf("delta %v: no attempts", d.Delta)
		}
		if d.Predictions > d.Attempts {
			t.Errorf("delta %v: predictions exceed attempts", d.Delta)
		}
		if d.MeanError() < 0 {
			t.Errorf("delta %v: negative error", d.Delta)
		}
	}
	// On clean periodic data the error should be sub-millimetre.
	if res.MeanError() > 1 {
		t.Errorf("mean error %v too large on periodic data", res.MeanError())
	}
	// Query lengths within configured bounds.
	p := DefaultParams()
	if res.QueryLen.Min() < 2 || res.QueryLen.Max() > float64(p.MaxQueryVertices()) {
		t.Errorf("query lengths out of bounds: [%v, %v]", res.QueryLen.Min(), res.QueryLen.Max())
	}
}

func TestEvaluateErrorGrowsWithHorizon(t *testing.T) {
	// The core Figure 6a shape: with last-vertex anchoring, longer
	// horizons must not be easier than the shortest one.
	db := buildEvalDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	opts := DefaultEvalOptions()
	opts.Deltas = []float64{0.033, 0.6}
	opts.QueriesPerStream = 8
	res, err := m.Evaluate(opts)
	if err != nil {
		t.Fatal(err)
	}
	short := res.PerDelta[0].MeanError()
	long := res.PerDelta[1].MeanError()
	if long <= short {
		t.Errorf("error did not grow with horizon: %.4f @33ms vs %.4f @600ms", short, long)
	}
}

func TestEvaluateFixedVsDynamic(t *testing.T) {
	db := buildEvalDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	base := DefaultEvalOptions()
	base.QueriesPerStream = 6

	fixed := base
	fixed.FixedCycles = 5
	fres, err := m.Evaluate(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if fres.QueryLen.Mean() != 16 { // 5 cycles -> 16 vertices
		t.Errorf("fixed query length = %v, want 16", fres.QueryLen.Mean())
	}
	dres, err := m.Evaluate(base)
	if err != nil {
		t.Fatal(err)
	}
	if dres.QueryLen.Mean() > fres.QueryLen.Mean() {
		t.Errorf("dynamic queries on stable data (%v) should be shorter than fixed-5 (%v)",
			dres.QueryLen.Mean(), fres.QueryLen.Mean())
	}
}

func TestEvaluateRestriction(t *testing.T) {
	db := buildEvalDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	opts := DefaultEvalOptions()
	opts.Deltas = []float64{0.1}
	opts.QueriesPerStream = 4
	// Restrict every query to its own patient only.
	opts.RestrictFor = func(pid string) map[string]bool {
		return map[string]bool{pid: true}
	}
	res, err := m.Evaluate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() == 0 {
		t.Error("restricted evaluation made no predictions")
	}
}

func TestEvaluateValidation(t *testing.T) {
	db := buildEvalDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	if _, err := m.Evaluate(EvalOptions{}); err == nil {
		t.Error("no deltas accepted")
	}
}

func TestTuneImprovesOrMatchesStart(t *testing.T) {
	db := buildEvalDB(t)
	opts := DefaultEvalOptions()
	opts.Deltas = []float64{0.1, 0.3}
	opts.QueriesPerStream = 4

	start := DefaultParams()
	space := TuneSpace{
		WeightFreq:    []float64{0.25, 0.75},
		DistThreshold: []float64{4, 8},
	}
	res, err := Tune(db, start, space, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Best.Validate(); err != nil {
		t.Errorf("tuned params invalid: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty tuning trace")
	}
	// The best error must be the minimum of the trace's final sweep.
	for _, step := range res.Trace {
		if step.Error < 0 {
			t.Errorf("negative error in trace: %+v", step)
		}
	}
	if res.BestError <= 0 {
		t.Errorf("BestError = %v", res.BestError)
	}
	// Invalid start rejected.
	bad := DefaultParams()
	bad.WeightAmp = 0
	if _, err := Tune(db, bad, space, opts); err == nil {
		t.Error("invalid start accepted")
	}
}
