package core

import (
	"fmt"
	"sort"
	"time"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// Query is a query subsequence together with its provenance, which
// determines the source-stream weight of every candidate and which
// windows must be excluded as "the query itself".
type Query struct {
	Seq plr.Sequence
	// PatientID and SessionID identify the stream the query was taken
	// from. They may be empty for ad-hoc queries, in which case every
	// candidate is treated as other-patient.
	PatientID string
	SessionID string
	// Now is the current time of the online application — normally
	// the time of the query's last vertex. Candidates from the query's
	// own stream are only admitted if they end strictly before the
	// query begins (their "future" must already be history).
	Now float64
}

// NewQuery builds a Query from the trailing subsequence of a stream.
func NewQuery(seq plr.Sequence, patientID, sessionID string) Query {
	q := Query{Seq: seq, PatientID: patientID, SessionID: sessionID}
	if len(seq) > 0 {
		q.Now = seq[len(seq)-1].T
	}
	return q
}

// Match is one retrieved similar subsequence.
type Match struct {
	Stream   *store.Stream
	Start    int // index of the window's first vertex
	N        int // window length in vertices
	Relation SourceRelation
	Distance float64
	// Weight is the subsequence weight w'_j used by prediction:
	// the source-stream trust scaled by closeness, w_s / (1 + D).
	Weight float64
}

// Window returns the matched subsequence.
func (m Match) Window() plr.Sequence { return m.Stream.Window(m.Start, m.N) }

// EndTime returns the time of the window's final vertex.
func (m Match) EndTime() float64 {
	return m.Stream.Seq()[m.Start+m.N-1].T
}

// Matcher runs similarity search over a stream database.
type Matcher struct {
	DB     *store.DB
	Params Params

	// scratch buffers reused across searches (a Matcher is not safe
	// for concurrent use; create one per goroutine).
	vw     []float64
	starts []int // ablation-mode candidate starts, reused across streams
}

// NewMatcher builds a matcher; it returns an error for invalid
// parameters.
func NewMatcher(db *store.DB, p Params) (*Matcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	return &Matcher{DB: db, Params: p}, nil
}

// relationOf classifies a candidate stream relative to the query.
func relationOf(q Query, st *store.Stream) SourceRelation {
	switch {
	case q.PatientID == st.PatientID && q.SessionID == st.SessionID:
		return SameSession
	case q.PatientID == st.PatientID:
		return SamePatient
	default:
		return OtherPatient
	}
}

// FindSimilar retrieves every stored subsequence similar to the query
// under Definition 2: same state order, weighted distance within the
// threshold. Results are sorted by ascending distance.
//
// restrict, when non-nil, limits the search to streams of the listed
// patients (the cluster-restricted search of Section 5.3); keys are
// patient IDs.
func (m *Matcher) FindSimilar(q Query, restrict map[string]bool) ([]Match, error) {
	if len(q.Seq) < 2 {
		return nil, ErrTooShort
	}
	start := time.Now()
	mSearches.Inc()
	sig := q.Seq.StateSignature()
	n := len(q.Seq)
	mQueryLen.Observe(float64(n))
	m.vw = m.Params.VertexWeights(m.vw, n)

	var out []Match
	for _, st := range m.DB.Streams() {
		if restrict != nil && !restrict[st.PatientID] {
			continue
		}
		rel := relationOf(q, st)
		seq := st.Seq()
		var starts []int
		if m.Params.RequireStateOrder {
			starts = st.FindWindows(sig)
			if possible := len(seq) - n + 1; possible > len(starts) {
				mIndexPruned.Add(possible - len(starts))
			}
		} else {
			// Ablation mode: every window of the query's length is a
			// candidate, regardless of its state order. The start list
			// is written into a scratch buffer sized once per stream
			// (len(seq)-n+1 entries) and reused across streams, keeping
			// this hot loop allocation-free after the largest stream.
			possible := len(seq) - n + 1
			if possible < 0 {
				possible = 0
			}
			if cap(m.starts) < possible {
				m.starts = make([]int, 0, possible)
			}
			starts = m.starts[:possible]
			for j := range starts {
				starts[j] = j
			}
		}
		mCandidates.Add(len(starts))
		for _, j := range starts {
			cand := seq[j : j+n]
			if rel == SameSession && cand[n-1].T >= q.Seq[0].T {
				// Exclude the query itself and any window whose
				// span overlaps the query's present.
				mSelfExcluded.Inc()
				continue
			}
			// Early abandonment: the acceptance threshold bounds the
			// distance computation on clearly-distant candidates.
			bound := m.Params.DistThreshold
			if bound >= inf {
				bound = 0 // TopK mode: exact distances needed
			}
			d, within, err := m.Params.distanceBounded(q.Seq, cand, rel, m.vw, bound)
			if err != nil {
				return nil, err
			}
			if (!within && bound > 0) || d > m.Params.DistThreshold {
				mDistanceRejected.Inc()
				continue
			}
			out = append(out, Match{
				Stream:   st,
				Start:    j,
				N:        n,
				Relation: rel,
				Distance: d,
				Weight:   m.Params.StreamWeight(rel) / (1 + d),
			})
		}
	}
	mMatched.Add(len(out))
	mSearchSeconds.Observe(time.Since(start).Seconds())
	sort.Slice(out, func(a, b int) bool { return out[a].Distance < out[b].Distance })
	return out, nil
}

// TopK retrieves the k nearest stored subsequences with the query's
// state order, regardless of the distance threshold. It is the
// building block of the offline stream distance (Definition 3).
func (m *Matcher) TopK(q Query, k int, restrict map[string]bool) ([]Match, error) {
	if len(q.Seq) < 2 {
		return nil, ErrTooShort
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: TopK needs k > 0, got %d", k)
	}
	saved := m.Params.DistThreshold
	m.Params.DistThreshold = inf
	matches, err := m.FindSimilar(q, restrict)
	m.Params.DistThreshold = saved
	if err != nil {
		return nil, err
	}
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches, nil
}

// inf is a practically infinite distance threshold.
const inf = 1e308
