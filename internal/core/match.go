package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/plr"
	"stsmatch/internal/sigindex"
	"stsmatch/internal/store"
)

// Query is a query subsequence together with its provenance, which
// determines the source-stream weight of every candidate and which
// windows must be excluded as "the query itself".
type Query struct {
	Seq plr.Sequence
	// PatientID and SessionID identify the stream the query was taken
	// from. They may be empty for ad-hoc queries, in which case every
	// candidate is treated as other-patient.
	PatientID string
	SessionID string
	// Now is the current time of the online application — normally
	// the time of the query's last vertex. Candidates from the query's
	// own stream are only admitted if they end strictly before the
	// query begins (their "future" must already be history).
	Now float64
}

// NewQuery builds a Query from the trailing subsequence of a stream.
func NewQuery(seq plr.Sequence, patientID, sessionID string) Query {
	q := Query{Seq: seq, PatientID: patientID, SessionID: sessionID}
	if len(seq) > 0 {
		q.Now = seq[len(seq)-1].T
	}
	return q
}

// Match is one retrieved similar subsequence.
type Match struct {
	Stream   *store.Stream
	Start    int // index of the window's first vertex
	N        int // window length in vertices
	Relation SourceRelation
	Distance float64
	// Weight is the subsequence weight w'_j used by prediction:
	// the source-stream trust scaled by closeness, w_s / (1 + D).
	Weight float64

	// ord is the candidate stream's position in the search's work
	// list: the final tie-break of the result order, making output
	// deterministic even for byte-identical streams registered under
	// the same patient and session IDs.
	ord int
}

// Window returns the matched subsequence.
func (m Match) Window() plr.Sequence { return m.Stream.Window(m.Start, m.N) }

// EndTime returns the time of the window's final vertex.
func (m Match) EndTime() float64 {
	return m.Stream.Seq()[m.Start+m.N-1].T
}

// matchLess is the total result order: ascending distance, then
// (patient, session, start, stream ordinal). The deterministic suffix
// keys break distance ties — sort.Slice is unstable, so ordering by
// distance alone would make equal-distance results flap between runs
// (and between sequential and parallel scans), breaking the gateway's
// byte-identical exact-merge guarantee. The same key is used by the
// sharding gateway's merge (internal/shard).
func matchLess(a, b Match) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	if a.Stream.PatientID != b.Stream.PatientID {
		return a.Stream.PatientID < b.Stream.PatientID
	}
	if a.Stream.SessionID != b.Stream.SessionID {
		return a.Stream.SessionID < b.Stream.SessionID
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.ord < b.ord
}

// Matcher runs similarity search over a stream database.
type Matcher struct {
	DB     *store.DB
	Params Params

	// Index, when non-nil and Params.UseIndex is set, answers
	// candidate generation through window-signature probes instead of
	// per-stream scans (see indexsearch.go). The index must be built
	// over DB and kept current via the store mutation hook; streams it
	// does not fully cover fall back to scanning, so the results stay
	// byte-identical either way.
	Index *sigindex.Index

	// scratch reused across searches (a Matcher is not safe for
	// concurrent use; create one per goroutine). Each search worker
	// goroutine owns one workerState; the slice grows to the effective
	// parallelism and is reused across searches.
	vw      []float64
	workers []*workerState
}

// workerState is one search worker's private scratch.
type workerState struct {
	starts  []int   // ablation-mode candidate starts, reused across streams
	matches []Match // threshold-mode partial results
	funnel  funnelCounts
	stage   stageNS
}

// stageNS accumulates per-funnel-stage wall time (nanoseconds),
// worker-locally. Only populated when the search is traced
// (searchCtx.timed) — untraced searches pay no clock reads in the
// candidate loop.
type stageNS struct {
	stateOrder int64 // FindWindows index probes
	lb         int64 // O(1) lower-bound evaluations
	dist       int64 // bounded exact distance computations
}

func (s *stageNS) add(o stageNS) {
	s.stateOrder += o.stateOrder
	s.lb += o.lb
	s.dist += o.dist
}

// funnelCounts accumulates the pruning-funnel metrics worker-locally,
// so the hot loop does not contend on the shared atomic counters; the
// totals are flushed to the registry once per search.
type funnelCounts struct {
	candidates   int
	indexPruned  int
	selfExcluded int
	lbPruned     int
	distRejected int
}

func (f *funnelCounts) add(o funnelCounts) {
	f.candidates += o.candidates
	f.indexPruned += o.indexPruned
	f.selfExcluded += o.selfExcluded
	f.lbPruned += o.lbPruned
	f.distRejected += o.distRejected
}

// NewMatcher builds a matcher; it returns an error for invalid
// parameters.
func NewMatcher(db *store.DB, p Params) (*Matcher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if db == nil {
		return nil, fmt.Errorf("core: nil database")
	}
	return &Matcher{DB: db, Params: p}, nil
}

// relationOf classifies a candidate stream relative to the query.
func relationOf(q Query, st *store.Stream) SourceRelation {
	switch {
	case q.PatientID == st.PatientID && q.SessionID == st.SessionID:
		return SameSession
	case q.PatientID == st.PatientID:
		return SamePatient
	default:
		return OtherPatient
	}
}

// FindSimilar retrieves every stored subsequence similar to the query
// under Definition 2: same state order, weighted distance within the
// threshold. Results are sorted by ascending distance (ties broken by
// patient, session, start).
//
// restrict, when non-nil, limits the search to streams of the listed
// patients (the cluster-restricted search of Section 5.3); keys are
// patient IDs.
func (m *Matcher) FindSimilar(q Query, restrict map[string]bool) ([]Match, error) {
	return m.search(context.Background(), q, restrict, 0, m.Params.DistThreshold)
}

// FindSimilarCtx is FindSimilar with a context: when the context
// carries a trace span (obs.StartSpan), the search emits a
// "matcher.search" child span plus per-funnel-stage spans carrying
// stage wall time and candidate counts. Untraced contexts behave
// exactly like FindSimilar.
func (m *Matcher) FindSimilarCtx(ctx context.Context, q Query, restrict map[string]bool) ([]Match, error) {
	return m.search(ctx, q, restrict, 0, m.Params.DistThreshold)
}

// TopK retrieves the k nearest stored subsequences with the query's
// state order, regardless of the distance threshold. It is the
// building block of the offline stream distance (Definition 3).
//
// The threshold is ignored by plumbing an infinite bound through the
// search rather than by mutating m.Params, so an error or panic
// mid-search can never leak an infinite threshold into later calls.
func (m *Matcher) TopK(q Query, k int, restrict map[string]bool) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: TopK needs k > 0, got %d", k)
	}
	return m.search(context.Background(), q, restrict, k, inf)
}

// TopKCtx is TopK with trace-context support (see FindSimilarCtx).
func (m *Matcher) TopKCtx(ctx context.Context, q Query, k int, restrict map[string]bool) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: TopK needs k > 0, got %d", k)
	}
	return m.search(ctx, q, restrict, k, inf)
}

// FindSimilarTopK retrieves the k nearest matches within the distance
// threshold: FindSimilar's acceptance filter combined with TopK's
// adaptive bound. The search starts from the threshold and tightens
// the bound below it as close matches accumulate, so callers that only
// need the best k within epsilon pay far less distance arithmetic than
// FindSimilar followed by truncation.
func (m *Matcher) FindSimilarTopK(q Query, k int, restrict map[string]bool) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: FindSimilarTopK needs k > 0, got %d", k)
	}
	return m.search(context.Background(), q, restrict, k, m.Params.DistThreshold)
}

// FindSimilarTopKCtx is FindSimilarTopK with trace-context support
// (see FindSimilarCtx).
func (m *Matcher) FindSimilarTopKCtx(ctx context.Context, q Query, k int, restrict map[string]bool) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: FindSimilarTopK needs k > 0, got %d", k)
	}
	return m.search(ctx, q, restrict, k, m.Params.DistThreshold)
}

// searchCtx carries one search's read-only shared state across
// workers: the query, its precomputed aggregates, and the collector.
type searchCtx struct {
	params    *Params
	q         Query
	sig       string
	n         int
	vw        []float64 // per-segment vertex weights (read-only)
	wsum      float64   // Σ vw
	vwMin     float64   // min vw — the lower-bound weight floor
	ampQ      float64   // Σ per-segment displacement norms of the query
	durQ      float64   // query duration
	threshold float64
	col       *collector
	// timed is set when the search runs under a trace span: workers
	// then accumulate per-stage wall time. Untraced searches skip the
	// per-candidate clock reads entirely.
	timed bool
	// probe accumulates index-probe telemetry when the search routes
	// through the signature index (see indexsearch.go).
	probe probeStats
}

// search is the unified retrieval core behind FindSimilar (k == 0),
// TopK (threshold == inf) and FindSimilarTopK. Candidate streams are
// partitioned dynamically across Params.Parallelism workers; every
// candidate runs the funnel
//
//	state-order filter -> self-exclusion -> O(1) lower bound
//	  -> bounded exact distance -> threshold / adaptive top-k
//
// and partial results merge into the matchLess total order, so the
// output is byte-identical at every parallelism setting.
func (m *Matcher) search(ctx context.Context, q Query, restrict map[string]bool, k int, threshold float64) ([]Match, error) {
	if len(q.Seq) < 2 {
		return nil, ErrTooShort
	}
	start := time.Now()
	mSearches.Inc()
	n := len(q.Seq)
	mQueryLen.Observe(float64(n))
	m.vw = m.Params.VertexWeights(m.vw, n)

	// When the caller's context carries a trace, the whole search runs
	// as one child span and the funnel stages report their aggregate
	// wall time (summed across workers, so stage durations can exceed
	// the span's wall-clock duration at parallelism > 1).
	ctx, span := obs.StartSpan(ctx, "matcher.search")
	defer span.Finish()

	sc := &searchCtx{
		params:    &m.Params,
		q:         q,
		sig:       q.Seq.StateSignature(),
		n:         n,
		vw:        m.vw,
		ampQ:      dispNormSum(q.Seq),
		durQ:      q.Seq.Duration(),
		threshold: threshold,
		col:       newCollector(k, threshold),
		timed:     span != nil,
	}
	sc.wsum, sc.vwMin = sumMin(m.vw)

	streams := m.DB.Streams()
	if restrict != nil {
		kept := streams[:0]
		for _, st := range streams {
			if restrict[st.PatientID] {
				kept = append(kept, st)
			}
		}
		streams = kept
	}

	par := m.Params.parallelism(len(streams))
	for len(m.workers) < par {
		m.workers = append(m.workers, &workerState{})
	}
	active := m.workers[:par]

	// Flush the worker-local funnel counters to the registry and reset
	// the match buffers whatever happens — the workers are reused, so
	// stale state must never survive into the next search, even on an
	// error or panic.
	defer func() {
		var f funnelCounts
		for _, w := range active {
			f.add(w.funnel)
			w.funnel = funnelCounts{}
			w.stage = stageNS{}
			w.matches = w.matches[:0]
		}
		mCandidates.Add(f.candidates)
		mIndexPruned.Add(f.indexPruned)
		mSelfExcluded.Add(f.selfExcluded)
		mLBPruned.Add(f.lbPruned)
		mDistanceRejected.Add(f.distRejected)
	}()

	if m.indexSearchable(n) {
		if err := m.searchIndexed(sc, active, streams, k); err != nil {
			return nil, err
		}
	} else if par == 1 {
		for ord, st := range streams {
			if err := sc.scanStream(active[0], st, ord); err != nil {
				return nil, err
			}
		}
	} else if err := runParallel(active, len(streams), func(w *workerState, i int) error {
		return sc.scanStream(w, streams[i], i)
	}); err != nil {
		return nil, err
	}

	// Merge: threshold mode concatenates the worker-local buffers,
	// top-k mode drains the shared heap. Either way the matchLess
	// total order fully determines the output, so worker scheduling
	// cannot affect it.
	var out []Match
	if k > 0 {
		out = sc.col.heap
	} else {
		total := 0
		for _, w := range active {
			total += len(w.matches)
		}
		out = make([]Match, 0, total)
		for _, w := range active {
			out = append(out, w.matches...)
		}
	}
	mergeStart := time.Now()
	sort.Slice(out, func(a, b int) bool { return matchLess(out[a], out[b]) })
	mergeDur := time.Since(mergeStart)
	mMatched.Add(len(out))
	mSearchSeconds.Observe(time.Since(start).Seconds())

	if span != nil {
		// Read the worker-local funnel counts and stage clocks before
		// the deferred flush resets them; the counts here are exactly
		// what that flush adds to the global funnel metrics.
		var f funnelCounts
		var sg stageNS
		for _, w := range active {
			f.add(w.funnel)
			sg.add(w.stage)
		}
		obs.AddSpan(ctx, "funnel.state_order", start, time.Duration(sg.stateOrder), map[string]any{
			"candidates": f.candidates, "indexPruned": f.indexPruned})
		obs.AddSpan(ctx, "funnel.self_exclusion", start, 0, map[string]any{
			"selfExcluded": f.selfExcluded})
		obs.AddSpan(ctx, "funnel.lb_prune", start, time.Duration(sg.lb), map[string]any{
			"lbPruned": f.lbPruned})
		obs.AddSpan(ctx, "funnel.exact_distance", start, time.Duration(sg.dist), map[string]any{
			"distRejected": f.distRejected})
		obs.AddSpan(ctx, "funnel.topk_merge", mergeStart, mergeDur, map[string]any{
			"matched": len(out)})
		if sc.probe.used {
			obs.AddSpan(ctx, "index.probe", start, sc.probe.dur, map[string]any{
				"probes":          sc.probe.probes,
				"widenings":       sc.probe.widenings,
				"rounds":          sc.probe.rounds,
				"candidates":      sc.probe.candidates,
				"cells":           sc.probe.cells,
				"fallbackStreams": sc.probe.fallbackStreams,
				"windows":         m.Index.Stats().Windows,
			})
			span.Annotate("indexed", true)
		}
		span.Annotate("streams", len(streams))
		span.Annotate("parallelism", par)
		span.Annotate("k", k)
		span.Annotate("queryLen", n)
		span.Annotate("matches", len(out))
		span.Annotate("funnel.candidates", f.candidates)
		span.Annotate("funnel.indexPruned", f.indexPruned)
		span.Annotate("funnel.selfExcluded", f.selfExcluded)
		span.Annotate("funnel.lbPruned", f.lbPruned)
		span.Annotate("funnel.distRejected", f.distRejected)
	}
	return out, nil
}

// runParallel fans n work items across the worker goroutines pulling
// item indices off a shared atomic cursor (dynamic load balancing —
// heavy items do not serialize behind a static partition). The first
// error stops the fan-out; a worker panic is re-raised on the caller's
// goroutine instead of crashing the process.
func runParallel(workers []*workerState, n int, do func(w *workerState, i int) error) error {
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
		panicked any
		wg       sync.WaitGroup
	)
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stop.Store(true)
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := do(w, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// scanStream runs the candidate funnel over one stream, generating the
// candidate start list by FindWindows (or, in ablation mode, every
// window of the query's length).
func (sc *searchCtx) scanStream(w *workerState, st *store.Stream, ord int) error {
	p := sc.params
	seq, amps := st.Snapshot()
	n := sc.n
	var starts []int
	if p.RequireStateOrder {
		var t0 time.Time
		if sc.timed {
			t0 = time.Now()
		}
		starts = st.FindWindows(sc.sig)
		if sc.timed {
			w.stage.stateOrder += int64(time.Since(t0))
		}
		if possible := len(seq) - n + 1; possible > len(starts) {
			w.funnel.indexPruned += possible - len(starts)
		}
	} else {
		// Ablation mode: every window of the query's length is a
		// candidate, regardless of its state order. The start list
		// is written into a scratch buffer sized once per stream
		// (len(seq)-n+1 entries) and reused across streams, keeping
		// this hot loop allocation-free after the largest stream.
		possible := len(seq) - n + 1
		if possible < 0 {
			possible = 0
		}
		if cap(w.starts) < possible {
			w.starts = make([]int, 0, possible)
		}
		starts = w.starts[:possible]
		for j := range starts {
			starts[j] = j
		}
	}
	return sc.runFunnel(w, st, ord, seq, amps, starts)
}

// scanProbed runs the candidate funnel over index-probed start
// positions: the signature index already applied both the state-order
// filter and an envelope version of the lower bound, so the start list
// is typically a small fraction of what FindWindows would return. The
// windows the probe ruled out are charged to indexPruned, exactly as
// the scan path charges non-matching state orders.
func (sc *searchCtx) scanProbed(w *workerState, st *store.Stream, ord int, probed []int32) error {
	seq, amps := st.Snapshot()
	if cap(w.starts) < len(probed) {
		w.starts = make([]int, 0, len(probed))
	}
	starts := w.starts[:len(probed)]
	for i, j := range probed {
		starts[i] = int(j)
	}
	if possible := len(seq) - sc.n + 1; possible > len(starts) {
		w.funnel.indexPruned += possible - len(starts)
	}
	return sc.runFunnel(w, st, ord, seq, amps, starts)
}

// runFunnel pushes a candidate start list through the funnel stages —
// self-exclusion, O(1) lower bound, bounded exact distance, threshold
// or adaptive top-k acceptance — accumulating accepted matches into
// the collector and stage counts into the worker's scratch. It is the
// shared back half of the scan and probe paths, which is what keeps
// their results byte-identical.
func (sc *searchCtx) runFunnel(w *workerState, st *store.Stream, ord int, seq plr.Sequence, amps []float64, starts []int) error {
	p := sc.params
	rel := relationOf(sc.q, st)
	n := sc.n
	w.funnel.candidates += len(starts)
	ws := p.StreamWeight(rel)
	useLB := len(amps) == len(seq)
	for _, j := range starts {
		if j+n > len(seq) {
			// A concurrent append grew the stream between the snapshot
			// and the window lookup; windows beyond the snapshot are
			// the next search's business.
			continue
		}
		cand := seq[j : j+n]
		if rel == SameSession && cand[n-1].T >= sc.q.Seq[0].T {
			// Exclude the query itself and any window whose
			// span overlaps the query's present.
			w.funnel.selfExcluded++
			continue
		}
		// The acceptance bound: the distance threshold, tightened to
		// the k-th best distance seen so far in top-k mode. It only
		// ever shrinks, so rejecting against a stale (looser) load is
		// always safe.
		bound := sc.col.bound()
		if useLB {
			// O(1) lower-bound rejection from the stream's prefix
			// sums: no per-segment arithmetic touched.
			var t0 time.Time
			if sc.timed {
				t0 = time.Now()
			}
			ampC := amps[j+n-1] - amps[j]
			durC := seq[j+n-1].T - seq[j].T
			pruned := p.distanceLowerBound(sc.ampQ, sc.durQ, ampC, durC, sc.vwMin, sc.wsum, rel) > bound
			if sc.timed {
				w.stage.lb += int64(time.Since(t0))
			}
			if pruned {
				w.funnel.lbPruned++
				continue
			}
		}
		// Early abandonment: the acceptance bound caps the distance
		// computation on clearly-distant candidates. An infinite bound
		// (top-k mode before the heap fills) means exact distances are
		// needed.
		dbound := bound
		if dbound >= inf {
			dbound = 0
		}
		var t0 time.Time
		if sc.timed {
			t0 = time.Now()
		}
		d, within, err := p.distanceBounded(sc.q.Seq, cand, rel, sc.vw, dbound)
		if sc.timed {
			w.stage.dist += int64(time.Since(t0))
		}
		if err != nil {
			return err
		}
		if (!within && dbound > 0) || d > sc.threshold {
			w.funnel.distRejected++
			continue
		}
		mt := Match{
			Stream:   st,
			Start:    j,
			N:        n,
			Relation: rel,
			Distance: d,
			Weight:   ws / (1 + d),
			ord:      ord,
		}
		if !sc.col.offer(mt, &w.matches) {
			w.funnel.distRejected++
		}
	}
	return nil
}

// collector accumulates accepted matches. In top-k mode it maintains a
// bounded max-heap (ordered by matchLess) under a mutex and publishes
// the k-th best distance as a monotonically tightening atomic bound
// that workers feed back into the lower-bound filter and the distance
// early-abandonment. In threshold mode matches go to worker-local
// buffers and the bound stays pinned at the threshold.
type collector struct {
	k         int
	threshold float64
	boundBits atomic.Uint64 // float64 bits of the current acceptance bound

	mu   sync.Mutex
	heap []Match // max-heap by matchLess; len <= k
}

func newCollector(k int, threshold float64) *collector {
	c := &collector{k: k, threshold: threshold}
	c.boundBits.Store(math.Float64bits(threshold))
	return c
}

// bound returns the current acceptance bound: no candidate with a
// distance strictly above it can enter the final result set.
func (c *collector) bound() float64 {
	if c.k <= 0 {
		return c.threshold
	}
	return math.Float64frombits(c.boundBits.Load())
}

// kth reports whether the top-k heap is full and, if so, the current
// k-th best distance (the largest retained). The index search uses it
// to decide whether the probe envelope already covers every candidate
// that could still displace a result.
func (c *collector) kth() (full bool, dist float64) {
	if c.k <= 0 {
		return false, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) < c.k {
		return false, 0
	}
	return true, c.heap[0].Distance
}

// offer submits an accepted candidate. It reports whether the match
// was retained; in top-k mode a candidate ordering after the current
// k-th best is dropped.
func (c *collector) offer(mt Match, local *[]Match) bool {
	if c.k <= 0 {
		*local = append(*local, mt)
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) < c.k {
		c.heap = append(c.heap, mt)
		siftUp(c.heap, len(c.heap)-1)
		if len(c.heap) == c.k {
			c.publish()
		}
		return true
	}
	if !matchLess(mt, c.heap[0]) {
		return false
	}
	c.heap[0] = mt
	siftDown(c.heap, 0)
	c.publish()
	return true
}

// publish tightens the shared bound to the k-th best distance (never
// looser than the threshold). Called with c.mu held and the heap full;
// the max-heap root carries the largest retained distance, which only
// shrinks as better matches displace it, so the published bound is
// monotone non-increasing — a worker reading a stale value merely
// prunes a little less.
func (c *collector) publish() {
	b := c.heap[0].Distance
	if c.threshold < b {
		b = c.threshold
	}
	c.boundBits.Store(math.Float64bits(b))
}

// siftUp restores the max-heap property (parent not matchLess than
// children) after appending at index i.
func siftUp(h []Match, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !matchLess(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

// siftDown restores the max-heap property after replacing the root.
func siftDown(h []Match, i int) {
	for {
		big := i
		if l := 2*i + 1; l < len(h) && matchLess(h[big], h[l]) {
			big = l
		}
		if r := 2*i + 2; r < len(h) && matchLess(h[big], h[r]) {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// dispNormSum returns the sum of per-segment displacement norms
// Σ|Pos[i+1]-Pos[i]| — the query-side aggregate of the O(1) lower
// bound (the stream side comes from store prefix sums).
func dispNormSum(seq plr.Sequence) float64 {
	var s float64
	for i := 0; i+1 < len(seq); i++ {
		var dd float64
		for k := range seq[i].Pos {
			d := seq[i+1].Pos[k] - seq[i].Pos[k]
			dd += d * d
		}
		s += math.Sqrt(dd)
	}
	return s
}

// sumMin returns the sum and minimum of a weight vector.
func sumMin(vw []float64) (sum, min float64) {
	min = math.Inf(1)
	for _, w := range vw {
		sum += w
		if w < min {
			min = w
		}
	}
	if len(vw) == 0 {
		min = 0
	}
	return sum, min
}

// inf is a practically infinite distance threshold.
const inf = 1e308
