package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"stsmatch/internal/plr"
	"stsmatch/internal/stats"
	"stsmatch/internal/store"
)

// This file implements the prediction-quality evaluation protocol of
// Section 7: replay each stored stream, cut it at many points, build a
// query subsequence from the history before the cut, predict the
// position delta seconds ahead, and compare with the PLR value there
// ("the mean difference between the predicted positions and PLR values
// is used to measure the quality of prediction").

// EvalOptions controls one evaluation sweep.
type EvalOptions struct {
	// Deltas are the prediction horizons in seconds (the paper sweeps
	// 0..300 ms).
	Deltas []float64

	// QueriesPerStream is how many evenly spaced cut points are
	// evaluated per stream.
	QueriesPerStream int

	// FixedCycles selects the fixed-length query baseline when > 0;
	// 0 uses stability-driven dynamic query generation (Section 4.1).
	FixedCycles int

	// MinMatches forwards to prediction (<= 0 uses the default).
	MinMatches int

	// Restrict, when non-nil, limits retrieval to the listed patients
	// (cluster-restricted prediction, Section 5.3). Keyed by the
	// query's patient: RestrictFor returns the allowed set.
	RestrictFor func(patientID string) map[string]bool
}

// DefaultEvalOptions returns the sweep used by the experiments: eleven
// horizons from 0 to 300 ms (one imaging frame at 30 Hz ≈ 33 ms).
func DefaultEvalOptions() EvalOptions {
	deltas := make([]float64, 0, 10)
	for ms := 33; ms <= 330; ms += 33 {
		deltas = append(deltas, float64(ms)/1000)
	}
	return EvalOptions{
		Deltas:           deltas,
		QueriesPerStream: 12,
	}
}

// DeltaResult aggregates prediction error at one horizon.
type DeltaResult struct {
	Delta       float64
	Err         stats.Welford // |predicted - PLR truth| on the primary axis (mm)
	Attempts    int           // prediction attempts
	Predictions int           // attempts that produced a prediction
}

// MeanError returns the mean absolute error at this horizon.
func (d DeltaResult) MeanError() float64 { return d.Err.Mean() }

// Coverage returns the fraction of attempts that yielded a prediction
// (Figure 9's second axis: a tighter threshold predicts less often).
func (d DeltaResult) Coverage() float64 {
	if d.Attempts == 0 {
		return 0
	}
	return float64(d.Predictions) / float64(d.Attempts)
}

// EvalResult is a full evaluation sweep outcome.
type EvalResult struct {
	PerDelta []DeltaResult
	// QueryLen aggregates the query lengths used (vertices), for the
	// Figure 7 experiments.
	QueryLen stats.Welford
	// StableQueries counts queries whose stability strip halted on a
	// stable window.
	StableQueries int
	TotalQueries  int
}

// MeanError returns the error averaged over all horizons (Figure 6c's
// y-axis).
func (r EvalResult) MeanError() float64 {
	var w stats.Welford
	for _, d := range r.PerDelta {
		w.Merge(d.Err)
	}
	return w.Mean()
}

// Coverage returns the overall prediction coverage.
func (r EvalResult) Coverage() float64 {
	var att, pred int
	for _, d := range r.PerDelta {
		att += d.Attempts
		pred += d.Predictions
	}
	if att == 0 {
		return 0
	}
	return float64(pred) / float64(att)
}

// Evaluate runs the replay protocol over every stream in the matcher's
// database. Streams are evaluated in parallel (one worker-local
// matcher each — a Matcher is not safe for concurrent use) and merged
// in stream order, so results are deterministic regardless of
// parallelism.
func (m *Matcher) Evaluate(opts EvalOptions) (EvalResult, error) {
	if len(opts.Deltas) == 0 {
		return EvalResult{}, fmt.Errorf("core: evaluation needs at least one delta")
	}
	if opts.QueriesPerStream <= 0 {
		opts.QueriesPerStream = 12
	}
	maxDelta := opts.Deltas[0]
	for _, d := range opts.Deltas[1:] {
		if d > maxDelta {
			maxDelta = d
		}
	}

	streams := m.DB.Streams()
	partials := make([]EvalResult, len(streams))
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	next := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(streams) && len(streams) > 0 {
		workers = len(streams)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := &Matcher{DB: m.DB, Params: m.Params}
			for i := range next {
				partials[i], errs[i] = local.evaluateStream(streams[i], opts, maxDelta)
			}
		}()
	}
	for i := range streams {
		next <- i
	}
	close(next)
	wg.Wait()

	res := EvalResult{PerDelta: make([]DeltaResult, len(opts.Deltas))}
	for i, d := range opts.Deltas {
		res.PerDelta[i].Delta = d
	}
	for i := range streams {
		if errs[i] != nil {
			return EvalResult{}, errs[i]
		}
		p := partials[i]
		if len(p.PerDelta) == 0 {
			continue // stream too short to evaluate
		}
		for di := range res.PerDelta {
			res.PerDelta[di].Attempts += p.PerDelta[di].Attempts
			res.PerDelta[di].Predictions += p.PerDelta[di].Predictions
			res.PerDelta[di].Err.Merge(p.PerDelta[di].Err)
		}
		res.QueryLen.Merge(p.QueryLen)
		res.StableQueries += p.StableQueries
		res.TotalQueries += p.TotalQueries
	}
	return res, nil
}

// evaluateStream replays one stream's cut points.
func (m *Matcher) evaluateStream(st *store.Stream, opts EvalOptions, maxDelta float64) (EvalResult, error) {
	seq := st.Seq()
	minCut := m.Params.MaxQueryVertices() + 2
	if minCut >= len(seq)-2 {
		return EvalResult{}, nil // too short; PerDelta stays empty
	}
	res := EvalResult{PerDelta: make([]DeltaResult, len(opts.Deltas))}
	for i, d := range opts.Deltas {
		res.PerDelta[i].Delta = d
	}
	// Cut points: evenly spaced vertex indices. The query ends at the
	// cut vertex; truth must exist maxDelta beyond it.
	for qi := 0; qi < opts.QueriesPerStream; qi++ {
		cut := minCut + (len(seq)-1-minCut)*qi/opts.QueriesPerStream
		if cut <= minCut {
			cut = minCut
		}
		prefix := seq[:cut+1]
		now := prefix[len(prefix)-1].T
		if _, inside := seq.PositionAt(now + maxDelta); !inside {
			continue
		}

		var qseq plr.Sequence
		if opts.FixedCycles > 0 {
			qseq = FixedQuery(prefix, opts.FixedCycles)
		} else {
			var info QueryInfo
			qseq, info = m.Params.DynamicQuery(prefix)
			if info.Stable {
				res.StableQueries++
			}
		}
		res.TotalQueries++
		res.QueryLen.Add(float64(len(qseq)))

		q := NewQuery(qseq, st.PatientID, st.SessionID)
		var restrict map[string]bool
		if opts.RestrictFor != nil {
			restrict = opts.RestrictFor(st.PatientID)
		}
		matches, err := m.FindSimilar(q, restrict)
		if err != nil {
			return EvalResult{}, err
		}
		for di, delta := range opts.Deltas {
			res.PerDelta[di].Attempts++
			pred, err := m.PredictPosition(q, matches, delta, opts.MinMatches)
			if errors.Is(err, ErrNoMatches) {
				continue
			}
			if err != nil {
				return EvalResult{}, err
			}
			truth, inside := seq.PositionAt(now + delta)
			if !inside {
				continue
			}
			res.PerDelta[di].Predictions++
			e := pred.Pos[0] - truth[0]
			if e < 0 {
				e = -e
			}
			res.PerDelta[di].Err.Add(e)
		}
	}
	return res, nil
}
