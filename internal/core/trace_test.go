package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"stsmatch/internal/obs"
)

// funnelMetrics snapshots the global matcher funnel counters.
func funnelMetrics() map[string]float64 {
	out := map[string]float64{}
	for _, p := range obs.Default().Gather() {
		if strings.HasPrefix(p.Name, "stsmatch_matcher_") {
			out[p.Name] = p.Value
		}
	}
	return out
}

// TestSearchEmitsFunnelSpans is the per-query explain contract: a
// traced search produces one child span per funnel stage whose
// candidate counts equal exactly what the same query added to the
// global funnel metrics.
func TestSearchEmitsFunnelSpans(t *testing.T) {
	db := buildTestDB(t)
	m, err := NewMatcher(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")

	col := obs.NewCollector(4, time.Hour)
	root := obs.StartTrace("test.query", "test", obs.SpanContext{}, col)
	ctx := obs.ContextWithSpan(context.Background(), root)

	before := funnelMetrics()
	matches, err := m.FindSimilarCtx(ctx, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	after := funnelMetrics()
	root.Finish()

	delta := func(name string) int {
		full := "stsmatch_matcher_" + name
		return int(after[full] - before[full])
	}

	recent := col.Recent()
	if len(recent) != 1 {
		t.Fatalf("collector holds %d traces, want 1", len(recent))
	}
	spans := map[string]obs.SpanData{}
	for _, sd := range recent[0].Spans {
		spans[sd.Name] = sd
	}
	search, ok := spans["matcher.search"]
	if !ok {
		t.Fatalf("no matcher.search span; got %v", names(recent[0].Spans))
	}
	for _, stage := range []string{
		"funnel.state_order", "funnel.self_exclusion", "funnel.lb_prune",
		"funnel.exact_distance", "funnel.topk_merge",
	} {
		sd, ok := spans[stage]
		if !ok {
			t.Errorf("missing stage span %s; got %v", stage, names(recent[0].Spans))
			continue
		}
		if sd.ParentID != search.SpanID {
			t.Errorf("%s parent = %s, want matcher.search %s", stage, sd.ParentID, search.SpanID)
		}
	}

	// Each stage's counts are the query's own contribution to the
	// global funnel counters.
	checks := []struct{ span, attr, metric string }{
		{"funnel.state_order", "candidates", "candidates_scanned_total"},
		{"funnel.state_order", "indexPruned", "index_pruned_total"},
		{"funnel.self_exclusion", "selfExcluded", "self_excluded_total"},
		{"funnel.lb_prune", "lbPruned", "lb_pruned_total"},
		{"funnel.exact_distance", "distRejected", "distance_rejected_total"},
		{"funnel.topk_merge", "matched", "matches_total"},
	}
	for _, c := range checks {
		got, ok := spans[c.span].Attrs[c.attr].(int)
		if !ok {
			t.Errorf("%s has no int attr %q: %v", c.span, c.attr, spans[c.span].Attrs)
			continue
		}
		if want := delta(c.metric); got != want {
			t.Errorf("%s.%s = %d, metric delta %s = %d", c.span, c.attr, got, c.metric, want)
		}
	}
	if got := spans["funnel.topk_merge"].Attrs["matched"].(int); got != len(matches) {
		t.Errorf("topk_merge matched = %d, returned %d matches", got, len(matches))
	}
	if got, _ := search.Attrs["matches"].(int); got != len(matches) {
		t.Errorf("search span matches = %d, want %d", got, len(matches))
	}
	// The funnel sums: scanned candidates are fully accounted for by
	// the downstream stages plus the survivors.
	scanned := spans["funnel.state_order"].Attrs["candidates"].(int)
	excluded := spans["funnel.self_exclusion"].Attrs["selfExcluded"].(int)
	lb := spans["funnel.lb_prune"].Attrs["lbPruned"].(int)
	rej := spans["funnel.exact_distance"].Attrs["distRejected"].(int)
	if scanned != excluded+lb+rej+len(matches) {
		t.Errorf("funnel does not sum: %d scanned != %d excluded + %d lb + %d rejected + %d matched",
			scanned, excluded, lb, rej, len(matches))
	}
}

// TestSearchUntracedEmitsNothing pins the zero-cost contract: without
// a span in the context the search allocates no trace machinery and
// still returns identical results.
func TestSearchUntracedEmitsNothing(t *testing.T) {
	db := buildTestDB(t)
	m, err := NewMatcher(db, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")

	plain, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := m.FindSimilarCtx(context.Background(), q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(viaCtx) {
		t.Fatalf("untraced ctx path returned %d matches, plain %d", len(viaCtx), len(plain))
	}
	for i := range plain {
		if plain[i] != viaCtx[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, plain[i], viaCtx[i])
		}
	}
}

func names(spans []obs.SpanData) []string {
	out := make([]string, len(spans))
	for i, sd := range spans {
		out[i] = sd.Name
	}
	return out
}
