package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"stsmatch/internal/plr"
)

// breathingWindow builds a window of vertices following the regular
// EX->EOE->IN rotation: each full cycle falls by amp, rests, rises by
// amp. durs gives per-segment durations; len(durs)+1 vertices result.
func breathingWindow(t0 float64, amp float64, durs []float64) plr.Sequence {
	states := []plr.State{plr.EX, plr.EOE, plr.IN}
	out := plr.Sequence{{T: t0, Pos: []float64{amp}, State: states[0]}}
	y := amp
	t := t0
	for i, d := range durs {
		st := states[i%3]
		switch st {
		case plr.EX:
			y -= amp
		case plr.IN:
			y += amp
		}
		t += d
		next := states[(i+1)%3]
		out = append(out, plr.Vertex{T: t, Pos: []float64{y}, State: next})
		out[len(out)-2].State = st
	}
	return out
}

func unitDurs(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestDistanceIdenticalIsZero(t *testing.T) {
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(9))
	c := q.Clone()
	d, err := p.Distance(q, c, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("distance of identical windows = %v, want 0", d)
	}
}

func TestDistanceOffsetInsensitive(t *testing.T) {
	// "insensitive to offset translation": shifting a candidate
	// vertically must not change the distance.
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(9))
	c := breathingWindow(50, 10, unitDurs(9))
	for i := range c {
		c[i].Pos[0] += 42.5
	}
	d, err := p.Distance(q, c, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("offset-shifted distance = %v, want ~0", d)
	}
}

func TestDistanceTimeShiftInsensitive(t *testing.T) {
	// Distance depends on durations, not absolute times.
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(9))
	c := breathingWindow(1234.5, 10, unitDurs(9))
	d, err := p.Distance(q, c, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	if d > 1e-9 {
		t.Errorf("time-shifted distance = %v, want ~0", d)
	}
}

func TestDistanceStateMismatch(t *testing.T) {
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(6))
	c := q.Clone()
	c[0].State = plr.IN // starts with an inhale instead of an exhale
	if _, err := p.Distance(q, c, SameSession); !errors.Is(err, ErrStateMismatch) {
		t.Errorf("want ErrStateMismatch, got %v", err)
	}
	// Ablated state order: mismatch tolerated.
	p.RequireStateOrder = false
	if _, err := p.Distance(q, c, SameSession); err != nil {
		t.Errorf("ablated state order should not error: %v", err)
	}
	ok, err := DefaultParams().Similar(q, c, SameSession)
	if err != nil || ok {
		t.Errorf("Similar with mismatched states = %v, %v; want false, nil", ok, err)
	}
}

func TestDistanceLengthMismatchAndTooShort(t *testing.T) {
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(6))
	if _, err := p.Distance(q, q[:5], SameSession); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("want ErrLengthMismatch, got %v", err)
	}
	if _, err := p.Distance(q[:1], q[:1], SameSession); !errors.Is(err, ErrTooShort) {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestDistanceAmplitudeScalesWithWeightAmp(t *testing.T) {
	p := DefaultParams()
	p.UseVertexWeights = false
	q := breathingWindow(0, 10, unitDurs(3))
	c := breathingWindow(0, 12, unitDurs(3)) // amplitude differs by 2 on EX and IN
	d1, err := p.Distance(q, c, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation: segments EX (delta -10 vs -12 -> diff 2),
	// EOE (0 vs 0), IN (+10 vs +12 -> diff 2); durations equal.
	// Mean over 3 segments with wa=1: (2+0+2)/3.
	want := 4.0 / 3
	if math.Abs(d1-want) > 1e-9 {
		t.Errorf("distance = %v, want %v", d1, want)
	}
	// Doubling WeightAmp doubles the amplitude contribution.
	p2 := p
	p2.WeightAmp = 2
	d2, err := p2.Distance(q, c, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d2-2*d1) > 1e-9 {
		t.Errorf("wa=2 distance = %v, want %v", d2, 2*d1)
	}
}

func TestDistanceFrequencyTerm(t *testing.T) {
	p := DefaultParams()
	p.UseVertexWeights = false
	q := breathingWindow(0, 10, []float64{1, 1, 1})
	c := breathingWindow(0, 10, []float64{1.4, 1, 1}) // EX takes 0.4s longer
	d, err := p.Distance(q, c, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	// Only the duration term differs: wf * 0.4 on one of 3 segments.
	want := 0.25 * 0.4 / 3
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("distance = %v, want %v", d, want)
	}
}

func TestDistanceStreamWeightScaling(t *testing.T) {
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(6))
	c := breathingWindow(0, 11, unitDurs(6))
	dss, _ := p.Distance(q, c, SameSession)
	dsp, _ := p.Distance(q, c, SamePatient)
	dop, _ := p.Distance(q, c, OtherPatient)
	if !(dss < dsp && dsp < dop) {
		t.Errorf("distances not ordered by trust: %v %v %v", dss, dsp, dop)
	}
	// Exact scaling: D(rel) = D(base)/w_s.
	if math.Abs(dsp-dss/0.9) > 1e-9 || math.Abs(dop-dss/0.3) > 1e-9 {
		t.Errorf("stream weight scaling broken: %v %v %v", dss, dsp, dop)
	}
}

func TestDistanceRecencyWeighting(t *testing.T) {
	// A mismatch on the most recent segment must cost more than the
	// same mismatch on the oldest segment.
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(9))

	early := q.Clone()
	early[1].Pos[0] += 3 // perturb an early vertex
	late := q.Clone()
	late[len(late)-2].Pos[0] += 3 // perturb a late vertex

	dEarly, err := p.Distance(q, early, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	dLate, err := p.Distance(q, late, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	if dLate <= dEarly {
		t.Errorf("recency weighting inactive: early=%v late=%v", dEarly, dLate)
	}
	// Without vertex weights the two must cost the same.
	p.UseVertexWeights = false
	dEarly2, _ := p.Distance(q, early, SameSession)
	dLate2, _ := p.Distance(q, late, SameSession)
	if math.Abs(dEarly2-dLate2) > 1e-9 {
		t.Errorf("ablated recency should equalize: %v vs %v", dEarly2, dLate2)
	}
}

func TestOfflineDistanceIgnoresRecency(t *testing.T) {
	p := DefaultParams()
	q := breathingWindow(0, 10, unitDurs(9))
	early := q.Clone()
	early[1].Pos[0] += 3
	late := q.Clone()
	late[len(late)-2].Pos[0] += 3
	dEarly, err := p.OfflineDistance(q, early, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	dLate, err := p.OfflineDistance(q, late, SameSession)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dEarly-dLate) > 1e-9 {
		t.Errorf("offline distance should ignore recency: %v vs %v", dEarly, dLate)
	}
}

func TestDistanceMultiDim(t *testing.T) {
	p := DefaultParams()
	p.UseVertexWeights = false
	mk := func(dy float64) plr.Sequence {
		return plr.Sequence{
			{T: 0, Pos: []float64{0, 0}, State: plr.IN},
			{T: 1, Pos: []float64{3, 4 + dy}, State: plr.EX},
		}
	}
	d, err := p.Distance(mk(0), mk(1), SameSession)
	if err != nil {
		t.Fatal(err)
	}
	// Segment delta diff is (0, 1) -> norm 1, one segment, wa=1.
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("multi-dim distance = %v, want 1", d)
	}
}

// Properties: non-negativity, symmetry (for equal relations), and
// identity for the online distance over random same-state windows.
func TestDistanceMetricProperties(t *testing.T) {
	p := DefaultParams()
	f := func(amps [8]int8, durs [8]uint8) bool {
		q := breathingWindow(0, 10, unitDurs(8))
		c := q.Clone()
		for i := 0; i < 8; i++ {
			c[i+1].Pos[0] += float64(amps[i]) / 16
			// Perturb durations, preserving monotonicity.
		}
		tshift := 0.0
		for i := 0; i < 8; i++ {
			tshift += float64(durs[i]%8) / 100
			c[i+1].T += tshift
		}
		d1, err1 := p.Distance(q, c, SamePatient)
		d2, err2 := p.Distance(c, q, SamePatient)
		if err1 != nil || err2 != nil {
			return false
		}
		return d1 >= 0 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: bounded evaluation agrees with the exact distance — it
// either completes with the identical value, or abandons only when the
// true distance really exceeds the bound.
func TestDistanceBoundedAgreesWithExact(t *testing.T) {
	p := DefaultParams()
	f := func(amps [9]int8, boundRaw uint8) bool {
		q := breathingWindow(0, 10, unitDurs(9))
		c := q.Clone()
		for i := 0; i < 9; i++ {
			c[i+1].Pos[0] += float64(amps[i]) / 4
		}
		exact, err := p.Distance(q, c, SamePatient)
		if err != nil {
			return false
		}
		bound := 0.05 + float64(boundRaw)/64
		got, ok, err := p.distanceBounded(q, c, SamePatient, nil, bound)
		if err != nil {
			return false
		}
		if ok {
			return math.Abs(got-exact) < 1e-9
		}
		return exact > bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the normalized distance is threshold-comparable across
// lengths — a uniform per-segment discrepancy yields the same distance
// for short and long windows.
func TestDistanceLengthNormalization(t *testing.T) {
	p := DefaultParams()
	p.UseVertexWeights = false
	for _, n := range []int{3, 6, 9, 18} {
		q := breathingWindow(0, 10, unitDurs(n))
		c := breathingWindow(0, 11, unitDurs(n))
		d, err := p.Distance(q, c, SameSession)
		if err != nil {
			t.Fatal(err)
		}
		// Per cycle: EX and IN each differ by 1, EOE by 0 -> mean 2/3.
		if math.Abs(d-2.0/3) > 1e-9 {
			t.Errorf("n=%d: distance = %v, want 2/3", n, d)
		}
	}
}
