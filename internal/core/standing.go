package core

import (
	"fmt"
	"sort"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// This file implements the standing-query half of the matcher: the
// same pruning funnel as search (state-order filter -> self-exclusion
// -> O(1) prefix-sum lower bound -> bounded exact distance), but
// driven incrementally by vertex arrival instead of a corpus scan. A
// StandingQuery precomputes every query-side aggregate once at
// registration; each arriving vertex then evaluates only the suffix
// windows it completes, so the per-vertex cost is independent of the
// corpus size (the subscription subsystem in internal/subscribe
// multiplexes many StandingQueries over the ingest hook).

// StandingQuery is a registered pattern with its precomputed
// query-side funnel aggregates. It is immutable after construction
// and safe for concurrent use (evaluations share only read-only
// state).
type StandingQuery struct {
	params    Params
	q         Query
	n         int
	vw        []float64
	wsum      float64
	vwMin     float64
	ampQ      float64
	durQ      float64
	threshold float64
	k         int
}

// StandingCounts is the per-evaluation funnel breakdown. The counts
// partition the candidate windows exactly:
//
//	Candidates = StateRejected + SelfExcluded + LBPruned
//	           + DistRejected + Matched
//
// which is the reconciliation invariant the subscribe.eval span and
// the subscription metrics are both checked against.
type StandingCounts struct {
	Candidates    int
	StateRejected int
	SelfExcluded  int
	LBPruned      int
	DistRejected  int
	Matched       int
}

// Add accumulates another evaluation's counts.
func (c *StandingCounts) Add(o StandingCounts) {
	c.Candidates += o.Candidates
	c.StateRejected += o.StateRejected
	c.SelfExcluded += o.SelfExcluded
	c.LBPruned += o.LBPruned
	c.DistRejected += o.DistRejected
	c.Matched += o.Matched
}

// NewStandingQuery validates and precomputes a standing query.
// threshold <= 0 selects the params' distance threshold. k > 0 caps
// each evaluation batch to the k best new matches (ranked by the same
// total order the search uses); k == 0 emits every match within the
// threshold.
func NewStandingQuery(p Params, q Query, threshold float64, k int) (*StandingQuery, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(q.Seq) < 2 {
		return nil, ErrTooShort
	}
	if err := q.Seq.Validate(); err != nil {
		return nil, fmt.Errorf("core: standing query pattern: %w", err)
	}
	if k < 0 {
		return nil, fmt.Errorf("core: standing query needs k >= 0, got %d", k)
	}
	if threshold <= 0 {
		threshold = p.DistThreshold
	}
	sq := &StandingQuery{
		params:    p,
		q:         q,
		n:         len(q.Seq),
		vw:        p.VertexWeights(nil, len(q.Seq)),
		ampQ:      dispNormSum(q.Seq),
		durQ:      q.Seq.Duration(),
		threshold: threshold,
		k:         k,
	}
	sq.wsum, sq.vwMin = sumMin(sq.vw)
	return sq, nil
}

// Pattern returns the registered query sequence (read-only).
func (sq *StandingQuery) Pattern() plr.Sequence { return sq.q.Seq }

// Threshold returns the effective acceptance threshold.
func (sq *StandingQuery) Threshold() float64 { return sq.threshold }

// K returns the per-batch result cap (0 = uncapped).
func (sq *StandingQuery) K() int { return sq.k }

// EvalRange evaluates the windows of st that END at vertex indices in
// [fromEnd, toEnd): exactly the suffix windows completed by the
// vertices appended since the last evaluation, when the caller tracks
// fromEnd as its per-stream cursor. The funnel and acceptance rule
// are byte-identical to one FindSimilar pass restricted to those
// windows, so a standing query's cumulative matches equal the diff of
// repeated full searches.
func (sq *StandingQuery) EvalRange(st *store.Stream, fromEnd, toEnd int) ([]Match, StandingCounts, error) {
	var counts StandingCounts
	seq, amps := st.Snapshot()
	if toEnd > len(seq) {
		toEnd = len(seq)
	}
	n := sq.n
	if fromEnd < n-1 {
		fromEnd = n - 1
	}
	if fromEnd >= toEnd {
		return nil, counts, nil
	}
	p := &sq.params
	rel := relationOf(sq.q, st)
	ws := p.StreamWeight(rel)
	useLB := len(amps) == len(seq)
	var matches []Match
	for e := fromEnd; e < toEnd; e++ {
		j := e - n + 1
		counts.Candidates++
		cand := seq[j : e+1]
		if p.RequireStateOrder && !statesEqual(sq.q.Seq, cand) {
			counts.StateRejected++
			continue
		}
		if rel == SameSession && cand[n-1].T >= sq.q.Seq[0].T {
			counts.SelfExcluded++
			continue
		}
		if useLB {
			ampC := amps[e] - amps[j]
			durC := seq[e].T - seq[j].T
			if p.distanceLowerBound(sq.ampQ, sq.durQ, ampC, durC, sq.vwMin, sq.wsum, rel) > sq.threshold {
				counts.LBPruned++
				continue
			}
		}
		d, within, err := p.distanceBounded(sq.q.Seq, cand, rel, sq.vw, sq.threshold)
		if err != nil {
			return nil, counts, err
		}
		if !within || d > sq.threshold {
			counts.DistRejected++
			continue
		}
		counts.Matched++
		matches = append(matches, Match{
			Stream:   st,
			Start:    j,
			N:        n,
			Relation: rel,
			Distance: d,
			Weight:   ws / (1 + d),
		})
	}
	if sq.k > 0 && len(matches) > sq.k {
		sort.Slice(matches, func(a, b int) bool { return matchLess(matches[a], matches[b]) })
		dropped := len(matches) - sq.k
		counts.Matched -= dropped
		counts.DistRejected += dropped
		matches = matches[:sq.k]
		// Restore start order so event emission stays in stream order.
		sort.Slice(matches, func(a, b int) bool { return matches[a].Start < matches[b].Start })
	}
	return matches, counts, nil
}
