package core

import (
	"errors"
	"fmt"
	"math"

	"stsmatch/internal/plr"
)

// This file implements Definition 2: the model-based, multi-layer,
// weighted, parametric subsequence distance. See DESIGN.md §3 for the
// reconstruction of the garbled display equation; the properties kept
// from the prose are:
//
//   - condition 1: identical state order (the "meaning" of the
//     subsequence — an inhale is never compared with an exhale);
//   - offset-translation insensitivity (distances are computed on
//     per-segment displacement vectors, not absolute positions);
//   - separate amplitude (w_a) and frequency (w_f) weights;
//   - per-vertex recency weights w_i for online matching;
//   - a source-stream weight w_s making candidates from less trusted
//     streams proportionally harder to accept;
//   - normalization by the total vertex weight so the threshold
//     epsilon is comparable across (dynamic) query lengths.

// Errors returned by the distance functions.
var (
	ErrLengthMismatch = errors.New("core: subsequences have different lengths")
	ErrStateMismatch  = errors.New("core: subsequences have different state orders")
	ErrTooShort       = errors.New("core: subsequence needs at least two vertices")
)

// Distance computes the online weighted subsequence distance between a
// query q and candidate c of equal vertex count, with the candidate
// sourced at the given relation. It returns ErrStateMismatch when
// condition 1 fails (unless the state-order requirement is ablated
// off).
func (p Params) Distance(q, c plr.Sequence, rel SourceRelation) (float64, error) {
	return p.distance(q, c, rel, nil)
}

// OfflineDistance is the Section 5 variant: all vertex weights are 1
// (there is no "current time" offline), while amplitude/frequency and
// source-stream weights remain in force.
func (p Params) OfflineDistance(q, c plr.Sequence, rel SourceRelation) (float64, error) {
	offline := p
	offline.UseVertexWeights = false
	return offline.distance(q, c, rel, nil)
}

// distance is the shared implementation. vw, when non-nil, supplies
// precomputed vertex weights (a matcher-loop optimization); it must
// have length len(q)-1.
func (p Params) distance(q, c plr.Sequence, rel SourceRelation, vw []float64) (float64, error) {
	d, _, err := p.distanceBounded(q, c, rel, vw, 0)
	return d, err
}

// distanceBounded additionally supports early abandonment: when
// bound > 0 and the partial weighted sum already guarantees the final
// distance exceeds bound, the computation stops and ok is false. The
// retrieval loop passes its acceptance threshold here, which skips
// most of the arithmetic on clearly-distant candidates (every term of
// the sum is non-negative, so the partial normalized sum only grows).
func (p Params) distanceBounded(q, c plr.Sequence, rel SourceRelation, vw []float64, bound float64) (d float64, ok bool, err error) {
	if len(q) != len(c) {
		return 0, false, fmt.Errorf("%w: %d vs %d vertices", ErrLengthMismatch, len(q), len(c))
	}
	if len(q) < 2 {
		return 0, false, ErrTooShort
	}
	if p.RequireStateOrder && !statesEqual(q, c) {
		return 0, false, ErrStateMismatch
	}
	if vw == nil {
		vw = p.VertexWeights(nil, len(q))
	}
	wa, wf := p.ampFreqWeights()
	ws := p.StreamWeight(rel)

	var wsum float64
	for _, w := range vw {
		wsum += w
	}
	// Early abandonment threshold on the raw (unnormalized) sum. The
	// tiny relative slack makes abandonment conservative under
	// floating-point rounding: a candidate whose final distance ties
	// the bound exactly is always computed in full, which the adaptive
	// top-k search needs so that equal-distance candidates at the k-th
	// boundary reach the deterministic tie-break instead of being
	// dropped by a round-trip (d*c)/c != d artifact.
	abandonAt := math.Inf(1)
	if bound > 0 {
		abandonAt = bound * ws * wsum * (1 + boundSlack)
	}

	var sum float64
	dims := len(q[0].Pos)
	for i := 0; i < len(q)-1; i++ {
		// Segment displacement difference (amplitude term). Computed
		// inline to avoid per-segment allocations on the hot path.
		var dd float64
		for k := 0; k < dims; k++ {
			dq := q[i+1].Pos[k] - q[i].Pos[k]
			dc := c[i+1].Pos[k] - c[i].Pos[k]
			d := dq - dc
			dd += d * d
		}
		ampDiff := math.Sqrt(dd)
		durDiff := math.Abs((q[i+1].T - q[i].T) - (c[i+1].T - c[i].T))
		sum += vw[i] * (wa*ampDiff + wf*durDiff)
		if sum > abandonAt {
			return sum / (ws * wsum), false, nil
		}
	}
	return sum / (ws * wsum), true, nil
}

// boundSlack is the relative float safety margin of the pruning
// layers: abandonment triggers only when the partial sum exceeds the
// bound by more than this fraction, and the O(1) lower bound is
// deflated by the same fraction of its input magnitude. Rounding
// errors in the distance pipeline are O(n * 2^-53) relative — many
// orders of magnitude below 1e-9 for any realistic window — so the
// slack guarantees admissibility of both layers in computed (not just
// exact) arithmetic while giving up no meaningful pruning power.
const boundSlack = 1e-9

// distanceLowerBound returns a constant-time admissible lower bound on
// the Definition-2 weighted distance between a query and a candidate
// window, from aggregate quantities alone:
//
//	ampQ, ampC — sums of per-segment displacement norms Σ|Δ_i|
//	durQ, durC — total durations (last vertex time - first)
//	vwMin      — the smallest per-segment vertex weight
//	wsum       — the total vertex weight Σ w_i
//
// Derivation: each amplitude term satisfies the reverse triangle
// inequality |Δq_i - Δc_i| >= ||Δq_i| - |Δc_i||, and summing,
// Σ||Δq_i|-|Δc_i|| >= |Σ(|Δq_i|-|Δc_i|)| = |ampQ - ampC|; likewise
// Σ|dq_i - dc_i| >= |durQ - durC|. Bounding every vertex weight below
// by vwMin,
//
//	D * ws * wsum >= vwMin * (wa*|ampQ-ampC| + wf*|durQ-durC|)
//
// The candidate-side sums come from store.Stream prefix sums in O(1),
// so candidates can be rejected before any per-segment arithmetic.
func (p Params) distanceLowerBound(ampQ, durQ, ampC, durC, vwMin, wsum float64, rel SourceRelation) float64 {
	wa, wf := p.ampFreqWeights()
	ws := p.StreamWeight(rel)
	gap := wa*math.Abs(ampQ-ampC) + wf*math.Abs(durQ-durC)
	// Deflate by a slack proportional to the input magnitude (not the
	// gap): rounding error in the prefix sums and in the exact
	// distance scales with the magnitudes, so a near-zero gap between
	// large sums must not produce a spuriously positive bound.
	gap -= boundSlack * (wa*(ampQ+ampC) + wf*(durQ+durC))
	if gap <= 0 || wsum <= 0 {
		return 0
	}
	return vwMin * gap / (ws * wsum)
}

// Similar reports whether q and c satisfy Definition 2: same state
// order and weighted distance within the threshold.
func (p Params) Similar(q, c plr.Sequence, rel SourceRelation) (bool, error) {
	d, err := p.Distance(q, c, rel)
	if errors.Is(err, ErrStateMismatch) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return d <= p.DistThreshold, nil
}
