package core

import (
	"errors"
	"fmt"
	"math"

	"stsmatch/internal/plr"
)

// This file implements Definition 2: the model-based, multi-layer,
// weighted, parametric subsequence distance. See DESIGN.md §3 for the
// reconstruction of the garbled display equation; the properties kept
// from the prose are:
//
//   - condition 1: identical state order (the "meaning" of the
//     subsequence — an inhale is never compared with an exhale);
//   - offset-translation insensitivity (distances are computed on
//     per-segment displacement vectors, not absolute positions);
//   - separate amplitude (w_a) and frequency (w_f) weights;
//   - per-vertex recency weights w_i for online matching;
//   - a source-stream weight w_s making candidates from less trusted
//     streams proportionally harder to accept;
//   - normalization by the total vertex weight so the threshold
//     epsilon is comparable across (dynamic) query lengths.

// Errors returned by the distance functions.
var (
	ErrLengthMismatch = errors.New("core: subsequences have different lengths")
	ErrStateMismatch  = errors.New("core: subsequences have different state orders")
	ErrTooShort       = errors.New("core: subsequence needs at least two vertices")
)

// Distance computes the online weighted subsequence distance between a
// query q and candidate c of equal vertex count, with the candidate
// sourced at the given relation. It returns ErrStateMismatch when
// condition 1 fails (unless the state-order requirement is ablated
// off).
func (p Params) Distance(q, c plr.Sequence, rel SourceRelation) (float64, error) {
	return p.distance(q, c, rel, nil)
}

// OfflineDistance is the Section 5 variant: all vertex weights are 1
// (there is no "current time" offline), while amplitude/frequency and
// source-stream weights remain in force.
func (p Params) OfflineDistance(q, c plr.Sequence, rel SourceRelation) (float64, error) {
	offline := p
	offline.UseVertexWeights = false
	return offline.distance(q, c, rel, nil)
}

// distance is the shared implementation. vw, when non-nil, supplies
// precomputed vertex weights (a matcher-loop optimization); it must
// have length len(q)-1.
func (p Params) distance(q, c plr.Sequence, rel SourceRelation, vw []float64) (float64, error) {
	d, _, err := p.distanceBounded(q, c, rel, vw, 0)
	return d, err
}

// distanceBounded additionally supports early abandonment: when
// bound > 0 and the partial weighted sum already guarantees the final
// distance exceeds bound, the computation stops and ok is false. The
// retrieval loop passes its acceptance threshold here, which skips
// most of the arithmetic on clearly-distant candidates (every term of
// the sum is non-negative, so the partial normalized sum only grows).
func (p Params) distanceBounded(q, c plr.Sequence, rel SourceRelation, vw []float64, bound float64) (d float64, ok bool, err error) {
	if len(q) != len(c) {
		return 0, false, fmt.Errorf("%w: %d vs %d vertices", ErrLengthMismatch, len(q), len(c))
	}
	if len(q) < 2 {
		return 0, false, ErrTooShort
	}
	if p.RequireStateOrder && !statesEqual(q, c) {
		return 0, false, ErrStateMismatch
	}
	if vw == nil {
		vw = p.VertexWeights(nil, len(q))
	}
	wa, wf := p.ampFreqWeights()
	ws := p.StreamWeight(rel)

	var wsum float64
	for _, w := range vw {
		wsum += w
	}
	// Early abandonment threshold on the raw (unnormalized) sum.
	abandonAt := math.Inf(1)
	if bound > 0 {
		abandonAt = bound * ws * wsum
	}

	var sum float64
	dims := len(q[0].Pos)
	for i := 0; i < len(q)-1; i++ {
		// Segment displacement difference (amplitude term). Computed
		// inline to avoid per-segment allocations on the hot path.
		var dd float64
		for k := 0; k < dims; k++ {
			dq := q[i+1].Pos[k] - q[i].Pos[k]
			dc := c[i+1].Pos[k] - c[i].Pos[k]
			d := dq - dc
			dd += d * d
		}
		ampDiff := math.Sqrt(dd)
		durDiff := math.Abs((q[i+1].T - q[i].T) - (c[i+1].T - c[i].T))
		sum += vw[i] * (wa*ampDiff + wf*durDiff)
		if sum > abandonAt {
			return sum / (ws * wsum), false, nil
		}
	}
	return sum / (ws * wsum), true, nil
}

// Similar reports whether q and c satisfy Definition 2: same state
// order and weighted distance within the threshold.
func (p Params) Similar(q, c plr.Sequence, rel SourceRelation) (bool, error) {
	d, err := p.Distance(q, c, rel)
	if errors.Is(err, ErrStateMismatch) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return d <= p.DistThreshold, nil
}
