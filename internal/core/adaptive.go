package core

import "fmt"

// Online parameter adaptation — the second half of the paper's tuning
// future work: "learn the proper parameter settings from training data
// and dynamically adjust their values during online procedures."
//
// The clinically meaningful control target is prediction *coverage*:
// the treatment system needs a prediction on a known fraction of
// frames, and the distance threshold epsilon is the knob that trades
// coverage against accuracy (Figure 9). CoverageController is a small
// integral controller that nudges epsilon after every prediction
// attempt to hold a target coverage, bounded to a safe range.

// CoverageController adapts Params.DistThreshold online.
type CoverageController struct {
	// Target is the desired fraction of attempts that yield a
	// prediction (e.g. 0.85).
	Target float64
	// MinEps and MaxEps bound the threshold; accuracy guarantees
	// below MinEps and availability above MaxEps are both illusory.
	MinEps, MaxEps float64
	// Gain scales the per-observation adjustment (default 0.05 when
	// zero at first use).
	Gain float64

	eps      float64
	attempts int
	hits     int
}

// NewCoverageController starts the controller at the given epsilon.
func NewCoverageController(target, startEps, minEps, maxEps float64) (*CoverageController, error) {
	if target <= 0 || target >= 1 {
		return nil, fmt.Errorf("core: coverage target must be in (0,1), got %v", target)
	}
	if minEps <= 0 || maxEps < minEps {
		return nil, fmt.Errorf("core: invalid epsilon bounds [%v, %v]", minEps, maxEps)
	}
	if startEps < minEps {
		startEps = minEps
	}
	if startEps > maxEps {
		startEps = maxEps
	}
	return &CoverageController{
		Target: target,
		MinEps: minEps,
		MaxEps: maxEps,
		Gain:   0.05,
		eps:    startEps,
	}, nil
}

// Epsilon returns the current threshold to use for the next retrieval.
func (c *CoverageController) Epsilon() float64 { return c.eps }

// Observe reports whether the latest prediction attempt succeeded, and
// adjusts the threshold: misses push epsilon up (weighted by how far
// coverage may fall below target), hits push it down gently so
// accuracy is recovered when the going is easy.
func (c *CoverageController) Observe(predicted bool) {
	c.attempts++
	if predicted {
		c.hits++
	}
	gain := c.Gain
	if gain <= 0 {
		gain = 0.05
	}
	// Integral-style error: each observation moves eps proportionally
	// to (target - outcome); multiplicative steps keep the behaviour
	// scale-free in eps.
	outcome := 0.0
	if predicted {
		outcome = 1
	}
	c.eps *= 1 + gain*(c.Target-outcome)
	if c.eps < c.MinEps {
		c.eps = c.MinEps
	}
	if c.eps > c.MaxEps {
		c.eps = c.MaxEps
	}
}

// Coverage returns the observed coverage so far (0 when no attempts).
func (c *CoverageController) Coverage() float64 {
	if c.attempts == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.attempts)
}

// Attempts returns the number of observations.
func (c *CoverageController) Attempts() int { return c.attempts }

// PredictAdaptive runs one retrieval + prediction under the
// controller's current threshold and feeds the outcome back. It is the
// online loop of predictd/streamd with adaptation switched on.
func (m *Matcher) PredictAdaptive(q Query, delta float64, ctl *CoverageController) (Prediction, error) {
	saved := m.Params.DistThreshold
	m.Params.DistThreshold = ctl.Epsilon()
	pred, err := m.Predict(q, delta, nil)
	m.Params.DistThreshold = saved
	ctl.Observe(err == nil)
	return pred, err
}
