package core

import (
	"math"
	"testing"
	"testing/quick"

	"stsmatch/internal/plr"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	// The Table 1 settings of the paper.
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"WeightAmp", p.WeightAmp, 1.0},
		{"WeightFreq", p.WeightFreq, 0.25},
		{"VertexWeightBase", p.VertexWeightBase, 0.8},
		{"WeightSameSession", p.WeightSameSession, 1.0},
		{"WeightSamePatient", p.WeightSamePatient, 0.9},
		{"WeightOtherPatient", p.WeightOtherPatient, 0.3},
		{"DistThreshold", p.DistThreshold, 8.0},
		{"StabilityThreshold", p.StabilityThreshold, 6.0},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v (Table 1)", c.name, c.got, c.want)
		}
	}
	if p.MinQueryCycles != 3 || p.MaxQueryCycles != 8 {
		t.Errorf("query cycle bounds = [%d, %d], want [3, 8]", p.MinQueryCycles, p.MaxQueryCycles)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero amp weight", func(p *Params) { p.WeightAmp = 0 }},
		{"freq above amp", func(p *Params) { p.WeightFreq = 2 }},
		{"vertex base zero", func(p *Params) { p.VertexWeightBase = 0 }},
		{"vertex base above one", func(p *Params) { p.VertexWeightBase = 1.1 }},
		{"stream weight order", func(p *Params) { p.WeightOtherPatient = 0.95 }},
		{"zero threshold", func(p *Params) { p.DistThreshold = 0 }},
		{"zero stability", func(p *Params) { p.StabilityThreshold = 0 }},
		{"cycle bounds", func(p *Params) { p.MaxQueryCycles = p.MinQueryCycles - 1 }},
		{"zero min cycles", func(p *Params) { p.MinQueryCycles = 0 }},
	}
	for _, m := range mutations {
		p := DefaultParams()
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
	}
}

func TestStreamWeightOrdering(t *testing.T) {
	p := DefaultParams()
	ss := p.StreamWeight(SameSession)
	sp := p.StreamWeight(SamePatient)
	op := p.StreamWeight(OtherPatient)
	if !(ss > sp && sp > op) {
		t.Errorf("stream weights not ordered: %v %v %v", ss, sp, op)
	}
	p.UseStreamWeights = false
	if p.StreamWeight(OtherPatient) != 1 {
		t.Error("ablated stream weight should be 1")
	}
}

func TestSourceRelationString(t *testing.T) {
	if SameSession.String() != "same-session" ||
		SamePatient.String() != "same-patient" ||
		OtherPatient.String() != "other-patient" {
		t.Error("relation names wrong")
	}
}

func TestVertexWeightsRamp(t *testing.T) {
	p := DefaultParams()
	w := p.VertexWeights(nil, 5) // 4 segments
	if len(w) != 4 {
		t.Fatalf("len = %d, want 4", len(w))
	}
	if math.Abs(w[0]-0.8) > 1e-12 {
		t.Errorf("w[0] = %v, want VertexWeightBase 0.8", w[0])
	}
	if math.Abs(w[3]-1) > 1e-12 {
		t.Errorf("w[last] = %v, want 1", w[3])
	}
	for i := 1; i < len(w); i++ {
		if w[i] <= w[i-1] {
			t.Errorf("weights not increasing at %d: %v", i, w)
		}
	}
	// Single-segment query gets weight 1.
	w = p.VertexWeights(nil, 2)
	if len(w) != 1 || w[0] != 1 {
		t.Errorf("single segment weights = %v", w)
	}
	// Ablated: all ones.
	p.UseVertexWeights = false
	w = p.VertexWeights(nil, 6)
	for _, x := range w {
		if x != 1 {
			t.Errorf("ablated weights = %v", w)
		}
	}
}

// Property: vertex weights always lie in [w0, 1] and are monotone
// non-decreasing.
func TestVertexWeightsProperty(t *testing.T) {
	f := func(nRaw uint8, w0Raw uint8) bool {
		n := int(nRaw%40) + 2
		p := DefaultParams()
		p.VertexWeightBase = 0.05 + float64(w0Raw%90)/100
		w := p.VertexWeights(nil, n)
		if len(w) != n-1 {
			return false
		}
		for i, x := range w {
			if x < p.VertexWeightBase-1e-12 || x > 1+1e-12 {
				return false
			}
			if i > 0 && x < w[i-1]-1e-12 {
				return false
			}
		}
		return math.Abs(w[len(w)-1]-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVertexWeightsBufferReuse(t *testing.T) {
	p := DefaultParams()
	buf := make([]float64, 0, 16)
	w1 := p.VertexWeights(buf, 10)
	w2 := p.VertexWeights(w1, 6)
	if len(w2) != 5 {
		t.Errorf("reused buffer length = %d", len(w2))
	}
	if cap(w2) < 9 {
		t.Error("buffer not reused")
	}
}

func TestQueryVertexConversions(t *testing.T) {
	p := DefaultParams()
	if p.MinQueryVertices() != 10 { // 3 cycles * 3 segments + 1
		t.Errorf("MinQueryVertices = %d, want 10", p.MinQueryVertices())
	}
	if p.MaxQueryVertices() != 25 {
		t.Errorf("MaxQueryVertices = %d, want 25", p.MaxQueryVertices())
	}
}

func TestStatesEqual(t *testing.T) {
	a := plr.Sequence{
		{T: 0, Pos: []float64{0}, State: plr.EX},
		{T: 1, Pos: []float64{0}, State: plr.EOE},
		{T: 2, Pos: []float64{0}, State: plr.IN},
	}
	b := a.Clone()
	if !statesEqual(a, b) {
		t.Error("identical sequences should have equal states")
	}
	// The final vertex's state is excluded (open trailing segment).
	b[2].State = plr.IRR
	if !statesEqual(a, b) {
		t.Error("final vertex state must not participate")
	}
	b[0].State = plr.IN
	if statesEqual(a, b) {
		t.Error("differing segment state must fail")
	}
	if statesEqual(a, a[:2]) {
		t.Error("length mismatch must fail")
	}
}
