package core

import (
	"math"
	"testing"

	"stsmatch/internal/plr"
)

func TestStabilityRegularIsLow(t *testing.T) {
	p := DefaultParams()
	s := breathingWindow(0, 10, unitDurs(12))
	sigma := p.Stability(s)
	if sigma > 1e-9 {
		t.Errorf("perfectly regular stability = %v, want 0", sigma)
	}
	if !p.Stable(s) {
		t.Error("regular window should be stable")
	}
}

func TestStabilityIrregularIsHigh(t *testing.T) {
	p := DefaultParams()
	regular := breathingWindow(0, 10, unitDurs(12))
	irregular := regular.Clone()
	// Wildly vary amplitudes and durations cycle to cycle.
	for i := 1; i < len(irregular); i++ {
		if (i/3)%2 == 0 {
			irregular[i].Pos[0] *= 3
		}
		irregular[i].T = irregular[i-1].T + 0.3 + 1.7*float64(i%2)
	}
	sr := p.Stability(regular)
	si := p.Stability(irregular)
	if si <= sr {
		t.Errorf("irregular stability %v not above regular %v", si, sr)
	}
	if si <= p.StabilityThreshold {
		t.Errorf("this much irregularity should exceed theta: sigma=%v", si)
	}
}

func TestStabilityShortSequences(t *testing.T) {
	p := DefaultParams()
	if p.Stability(nil) != 0 {
		t.Error("nil sequence stability should be 0")
	}
	one := breathingWindow(0, 10, unitDurs(1))
	if p.Stability(one) != 0 {
		t.Error("single-segment stability should be 0")
	}
}

func TestStabilityCarriesPhysicalUnits(t *testing.T) {
	// Deviations are absolute (mm), on the same scale as the
	// Definition 2 distance: the same relative irregularity at 10x
	// the amplitude must yield ~10x the stability value.
	p := DefaultParams()
	mk := func(scale float64) plr.Sequence {
		s := breathingWindow(0, 10*scale, unitDurs(9))
		for i := 3; i < len(s); i += 3 {
			s[i].Pos[0] *= 1.3 // +30% on one peak vertex per cycle
		}
		return s
	}
	small := p.Stability(mk(1))
	large := p.Stability(mk(10))
	if small == 0 || large == 0 {
		t.Fatal("perturbation had no effect")
	}
	ratio := large / small
	if ratio < 8 || ratio > 12 {
		t.Errorf("sigma should scale ~10x with amplitude: small=%v large=%v", small, large)
	}
}

func TestDynamicQueryStableMotionUsesMinLength(t *testing.T) {
	p := DefaultParams()
	seq := breathingWindow(0, 10, unitDurs(40))
	q, info := p.DynamicQuery(seq)
	if len(q) != p.MinQueryVertices() {
		t.Errorf("stable motion query = %d vertices, want min %d", len(q), p.MinQueryVertices())
	}
	if !info.Stable {
		t.Error("regular motion should halt on a stable strip")
	}
	if info.Start != len(seq)-len(q) {
		t.Errorf("Start = %d inconsistent with query length", info.Start)
	}
	// The query must be the *most recent* window.
	if q[len(q)-1].T != seq[len(seq)-1].T {
		t.Error("query does not end at the most recent vertex")
	}
}

func TestDynamicQueryUnstableMotionGrows(t *testing.T) {
	p := DefaultParams()
	// Tighten theta so the scrambled strips below are decisively
	// unstable while the clean history remains stable; the mechanism
	// under test is the strip walking back, not the default threshold.
	p.StabilityThreshold = 2
	// Regular history followed by an erratic recent portion. The
	// perturbation period (4) is coprime with the cycle length (3) so
	// the recent window cannot look self-consistently regular.
	seq := breathingWindow(0, 10, unitDurs(30))
	n := len(seq)
	for i := n - 12; i < n; i++ {
		seq[i].Pos[0] += 14 * float64(i%4)
		seq[i].T += 0.4 * float64(i%3) // duration scrambling too
	}
	if err := seq.Validate(); err != nil {
		t.Fatal(err)
	}
	q, _ := p.DynamicQuery(seq)
	if len(q) <= p.MinQueryVertices() {
		t.Errorf("unstable recent motion should grow the query: got %d vertices", len(q))
	}
	if len(q) > p.MaxQueryVertices() {
		t.Errorf("query exceeded max: %d > %d", len(q), p.MaxQueryVertices())
	}
}

func TestDynamicQueryCapsAtMax(t *testing.T) {
	p := DefaultParams()
	p.StabilityThreshold = 1e-9 // nothing is ever stable
	seq := breathingWindow(0, 10, unitDurs(60))
	// Make everything slightly irregular so sigma > 0 everywhere.
	for i := range seq {
		seq[i].Pos[0] += 0.3 * float64(i%5)
	}
	q, info := p.DynamicQuery(seq)
	if len(q) != p.MaxQueryVertices() {
		t.Errorf("query = %d vertices, want max %d", len(q), p.MaxQueryVertices())
	}
	if info.Stable {
		t.Error("strip should not report stable")
	}
}

func TestDynamicQueryShortSequence(t *testing.T) {
	p := DefaultParams()
	seq := breathingWindow(0, 10, unitDurs(4)) // 5 vertices < min 10
	q, info := p.DynamicQuery(seq)
	if len(q) != len(seq) {
		t.Errorf("short sequence query = %d vertices, want all %d", len(q), len(seq))
	}
	if info.Start != 0 {
		t.Errorf("Start = %d, want 0", info.Start)
	}
}

func TestFixedQuery(t *testing.T) {
	seq := breathingWindow(0, 10, unitDurs(30))
	q := FixedQuery(seq, 3)
	if len(q) != 10 {
		t.Errorf("FixedQuery(3 cycles) = %d vertices, want 10", len(q))
	}
	if q[len(q)-1].T != seq[len(seq)-1].T {
		t.Error("fixed query must end at the most recent vertex")
	}
	short := breathingWindow(0, 10, unitDurs(3))
	if got := FixedQuery(short, 5); len(got) != len(short) {
		t.Error("short sequence should be returned whole")
	}
}

func TestStabilityUsesAmpFreqWeights(t *testing.T) {
	// With a pure duration perturbation, raising WeightFreq must raise
	// sigma; with a pure amplitude perturbation, raising WeightAmp
	// must raise sigma.
	durPerturbed := breathingWindow(0, 10, []float64{1, 1, 1, 2, 1, 1, 1, 1, 1})
	ampPerturbed := breathingWindow(0, 10, unitDurs(9))
	ampPerturbed[4].Pos[0] += 5

	pLow := DefaultParams()
	pLow.WeightFreq = 0.1
	pHigh := DefaultParams()
	pHigh.WeightFreq = 1.0
	if !(pHigh.Stability(durPerturbed) > pLow.Stability(durPerturbed)) {
		t.Error("WeightFreq has no effect on duration irregularity")
	}

	aLow := DefaultParams()
	aLow.WeightAmp = 1.0
	aHigh := DefaultParams()
	aHigh.WeightAmp = 3.0
	if !(aHigh.Stability(ampPerturbed) > aLow.Stability(ampPerturbed)) {
		t.Error("WeightAmp has no effect on amplitude irregularity")
	}
	_ = math.Pi
}
