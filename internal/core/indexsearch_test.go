package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/sigindex"
	"stsmatch/internal/store"
)

// testIndexConfig covers every query length the equivalence suite
// probes with (5..24 segments).
func testIndexCfg() sigindex.Config {
	return sigindex.Config{MinSegments: 5, MaxSegments: 24, AmpBucket: 4, DurBucket: 4}
}

func buildIndex(t *testing.T, db *store.DB) *sigindex.Index {
	t.Helper()
	idx, err := sigindex.New(testIndexCfg())
	if err != nil {
		t.Fatal(err)
	}
	idx.BuildFrom(db)
	return idx
}

func assertSameMatches(t *testing.T, label string, scan, probed []Match) {
	t.Helper()
	if len(scan) != len(probed) {
		t.Fatalf("%s: scan returned %d matches, probed %d", label, len(scan), len(probed))
	}
	for i := range scan {
		if scan[i] != probed[i] {
			t.Fatalf("%s: result %d differs:\nscan:   %+v\nprobed: %+v", label, i, scan[i], probed[i])
		}
	}
}

func sigindexMetric(name string) float64 {
	for _, p := range obs.Default().Gather() {
		if p.Name == name {
			return p.Value
		}
	}
	return 0
}

// TestIndexScanEquivalence is the core index contract: for every
// search mode, threshold, parallelism, query length and restriction,
// the probed path returns results byte-identical to the full scan —
// including the deterministic tie-break order (the extra P4 stream
// duplicates P1/S2's amplitude so equal distances exist).
func TestIndexScanEquivalence(t *testing.T) {
	db := buildTestDB(t)
	p4, err := db.AddPatient(store.PatientInfo{ID: "P4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := p4.AddStream("S1").Append(breathingWindow(0, 10.5, unitDurs(36))...); err != nil {
		t.Fatal(err)
	}
	idx := buildIndex(t, db)

	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()

	compare := func(t *testing.T, scanM, probeM *Matcher) {
		t.Helper()
		// 26 vertices = 25 segments, outside the indexed window range:
		// the matcher must transparently revert to the scan path.
		for _, qlen := range []int{10, 20, 26} {
			q := NewQuery(seq[len(seq)-qlen:], "P1", "S1")
			for rname, restrict := range map[string]map[string]bool{
				"all":        nil,
				"restricted": {"P1": true, "P4": true},
			} {
				label := func(mode string) string {
					return mode + "/qlen=" + string(rune('0'+qlen/10)) + string(rune('0'+qlen%10)) + "/" + rname
				}
				a, err := scanM.FindSimilar(q, restrict)
				if err != nil {
					t.Fatal(err)
				}
				b, err := probeM.FindSimilar(q, restrict)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, label("FindSimilar"), a, b)
				for _, k := range []int{1, 3, 50} {
					a, err := scanM.TopK(q, k, restrict)
					if err != nil {
						t.Fatal(err)
					}
					b, err := probeM.TopK(q, k, restrict)
					if err != nil {
						t.Fatal(err)
					}
					assertSameMatches(t, label("TopK"), a, b)
					a, err = scanM.FindSimilarTopK(q, k, restrict)
					if err != nil {
						t.Fatal(err)
					}
					b, err = probeM.FindSimilarTopK(q, k, restrict)
					if err != nil {
						t.Fatal(err)
					}
					assertSameMatches(t, label("FindSimilarTopK"), a, b)
				}
			}
		}
	}

	matchers := func(t *testing.T, params Params) (scanM, probeM *Matcher) {
		t.Helper()
		scanM, err := NewMatcher(db, params)
		if err != nil {
			t.Fatal(err)
		}
		params.UseIndex = true
		probeM, err = NewMatcher(db, params)
		if err != nil {
			t.Fatal(err)
		}
		probeM.Index = idx
		return scanM, probeM
	}

	for _, tc := range []struct {
		name      string
		threshold float64
		parallel  int
	}{
		{"default", 8, 0},
		{"serial", 8, 1},
		{"tight-threshold", 0.5, 0},
		{"loose-threshold", 50, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			params := DefaultParams()
			params.DistThreshold = tc.threshold
			params.Parallelism = tc.parallel
			scanM, probeM := matchers(t, params)
			compare(t, scanM, probeM)
		})
	}

	t.Run("ablation-ignores-index", func(t *testing.T) {
		// With the state-order filter ablated off the index cannot
		// enumerate candidates; the matcher must not even probe it.
		params := DefaultParams()
		params.RequireStateOrder = false
		scanM, probeM := matchers(t, params)
		q := NewQuery(seq[len(seq)-10:], "P1", "S1")
		before := sigindexMetric("stsmatch_sigindex_probes_total")
		a, err := scanM.FindSimilar(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := probeM.FindSimilar(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameMatches(t, "ablation", a, b)
		if after := sigindexMetric("stsmatch_sigindex_probes_total"); after != before {
			t.Errorf("ablated search probed the index (%v probes)", after-before)
		}
	})

	t.Run("stale-stream-fallback", func(t *testing.T) {
		// Grow one stream behind the index's back: its coverage goes
		// stale and the matcher must scan that stream while still
		// probing the rest.
		st := db.Patient("P2").StreamBySession("S1")
		last := st.Seq()[st.Len()-1].T
		if err := st.Append(breathingWindow(last+1, 11, unitDurs(6))...); err != nil {
			t.Fatal(err)
		}
		scanM, probeM := matchers(t, DefaultParams())
		compare(t, scanM, probeM)
	})
}

// TestIndexSearchEmitsProbeSpan pins the probe-telemetry contract: a
// traced index-backed search emits one index.probe span whose counts
// equal exactly what the same search added to the stsmatch_sigindex_*
// metrics.
func TestIndexSearchEmitsProbeSpan(t *testing.T) {
	db := buildTestDB(t)
	idx := buildIndex(t, db)
	params := DefaultParams()
	params.UseIndex = true
	m, err := NewMatcher(db, params)
	if err != nil {
		t.Fatal(err)
	}
	m.Index = idx

	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")

	col := obs.NewCollector(4, time.Hour)
	root := obs.StartTrace("test.query", "test", obs.SpanContext{}, col)
	ctx := obs.ContextWithSpan(context.Background(), root)

	sigMetrics := func() map[string]float64 {
		out := map[string]float64{}
		for _, p := range obs.Default().Gather() {
			if strings.HasPrefix(p.Name, "stsmatch_sigindex_") {
				out[p.Name] = p.Value
			}
		}
		return out
	}
	before := sigMetrics()
	// k well past the candidate count forces widening rounds until the
	// probe turns exhaustive.
	if _, err := m.TopKCtx(ctx, q, 50, nil); err != nil {
		t.Fatal(err)
	}
	after := sigMetrics()
	root.Finish()

	recent := col.Recent()
	if len(recent) != 1 {
		t.Fatalf("collector holds %d traces, want 1", len(recent))
	}
	spans := map[string]obs.SpanData{}
	for _, sd := range recent[0].Spans {
		spans[sd.Name] = sd
	}
	search, ok := spans["matcher.search"]
	if !ok {
		t.Fatalf("no matcher.search span; got %v", names(recent[0].Spans))
	}
	probe, ok := spans["index.probe"]
	if !ok {
		t.Fatalf("no index.probe span; got %v", names(recent[0].Spans))
	}
	if probe.ParentID != search.SpanID {
		t.Errorf("index.probe parent = %s, want matcher.search %s", probe.ParentID, search.SpanID)
	}
	if got, _ := search.Attrs["indexed"].(bool); !got {
		t.Error("matcher.search span not annotated indexed=true")
	}

	delta := func(name string) int {
		full := "stsmatch_sigindex_" + name
		return int(after[full] - before[full])
	}
	probes, _ := probe.Attrs["probes"].(int)
	if want := delta("probes_total"); probes != want || probes == 0 {
		t.Errorf("probes attr = %d, metric delta = %d (want equal, nonzero)", probes, want)
	}
	widenings, _ := probe.Attrs["widenings"].(int)
	if want := delta("widenings_total"); widenings != want {
		t.Errorf("widenings attr = %d, metric delta = %d", widenings, want)
	}
	if widenings == 0 {
		t.Error("k=50 top-k search should have widened at least once")
	}
	rounds, _ := probe.Attrs["rounds"].(int)
	if rounds != probes {
		t.Errorf("rounds = %d, probes = %d (one probe per round)", rounds, probes)
	}
	if rounds != widenings+1 {
		t.Errorf("rounds = %d, widenings = %d (every round after the first widens)", rounds, widenings)
	}
	windows, _ := probe.Attrs["windows"].(int64)
	if got := after["stsmatch_sigindex_windows"]; float64(windows) != got {
		t.Errorf("windows attr = %d, gauge = %v", windows, got)
	}
	if fb, _ := probe.Attrs["fallbackStreams"].(int); fb != 0 {
		t.Errorf("fallbackStreams = %d on a fully covered database", fb)
	}
	if cand, _ := probe.Attrs["candidates"].(int); cand <= 0 {
		t.Errorf("candidates attr = %d, want > 0", cand)
	}
}
