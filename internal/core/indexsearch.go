package core

import (
	"math"
	"time"

	"stsmatch/internal/sigindex"
	"stsmatch/internal/store"
)

// Index-backed candidate generation (PR 7). Instead of asking every
// stream for windows matching the query's state order, the search
// probes the shared window-signature index once per round: the probe
// returns, per stream, exactly the window starts whose signature
// matches AND whose amplitude/duration aggregates fall inside an
// envelope derived from the acceptance bound. The envelope is the
// inverse image of the O(1) lower bound, so every candidate the funnel
// could possibly accept is inside it — which is why the probed path
// returns byte-identical results to the scan path.
//
// Threshold mode needs a single probe at the threshold. Top-k mode
// starts from a deliberately tight envelope (most queries resolve in
// their immediate amplitude neighborhood) and widens it geometrically
// until one of three conditions proves no better candidate exists
// outside the envelope:
//
//  1. the probe was exhaustive — the envelope admitted every posting
//     under the signature, so widening cannot add candidates;
//  2. the bound reached the distance threshold — nothing beyond it can
//     be accepted anyway;
//  3. the result heap is full and its k-th distance is within the
//     probed bound — any unseen candidate has a lower bound, hence a
//     distance, strictly above the current k-th, so it cannot displace
//     a result even on a tie-break.
//
// The seed divisor and widening factor trade probe rounds against
// wasted candidate work: each round rescans everything the previous,
// tighter envelope admitted, so an over-tight seed pays for rounds a
// dense corpus immediately outgrows, while an over-loose seed scans
// the whole threshold ball when the top-k lived nearby. Seeding at a
// quarter of the threshold resolves dense-corpus top-k queries in one
// round (benchmatch -corpus-scale 100) and costs at most one extra
// round — T/4 then T — on sparse ones.
const (
	topKSeedDiv     = 4
	topKWidenFactor = 4
)

// probeStats accumulates one search's probe telemetry for the
// "index.probe" trace span; counts mirror the stsmatch_sigindex_*
// metric deltas the same search produces.
type probeStats struct {
	used            bool
	probes          int
	widenings       int
	rounds          int
	candidates      int
	cells           int
	fallbackStreams int
	dur             time.Duration
}

// indexSearchable reports whether a query of n vertices can route
// candidate generation through the signature index: an index is
// attached and enabled, the state-order filter is on (the ablation
// path needs every window, which the index cannot enumerate), and the
// query's segment count lies inside the indexed window range.
func (m *Matcher) indexSearchable(n int) bool {
	return m.Index != nil && m.Params.UseIndex && m.Params.RequireStateOrder &&
		m.Index.Config().Covers(n-1)
}

// envelope converts an acceptance bound into the probe rectangle
// guaranteed to contain every candidate whose O(1) lower bound is
// within the bound. Inverting distanceLowerBound with the stream
// weight at its maximum,
//
//	bound >= vwMin * (wa*|Δamp| + wf*|Δdur| - slack·mags) / (ws·wsum)
//
// gives the half-width budget g = bound·wsMax·wsum/vwMin, and the
// slack the lower bound deflates itself by is re-inflated here into a
// pad derived from the query aggregates and g, so float rounding can
// never exclude an admissible candidate. A bound at or beyond inf
// yields the unbounded envelope.
func (sc *searchCtx) envelope(bound float64) sigindex.ProbeQuery {
	q := sigindex.ProbeQuery{Sig: sc.sig}
	p := sc.params
	wa, wf := p.ampFreqWeights()
	if bound >= inf || sc.vwMin <= 0 {
		q.AmpLo, q.AmpHi = math.Inf(-1), math.Inf(1)
		q.DurLo, q.DurHi = math.Inf(-1), math.Inf(1)
		return q
	}
	g := bound * p.maxStreamWeight() * sc.wsum / sc.vwMin
	pad := boundSlack * (2*(wa*sc.ampQ+wf*sc.durQ) + 4*g)
	ra := (g + pad) / wa
	rd := (g + pad) / wf
	q.AmpLo, q.AmpHi = sc.ampQ-ra, sc.ampQ+ra
	q.DurLo, q.DurHi = sc.durQ-rd, sc.durQ+rd
	return q
}

// indexWork is one stream's share of a probe round: either a probed
// start list or a full scan for streams the index cannot answer for.
type indexWork struct {
	st     *store.Stream
	ord    int
	starts []int32
	probed bool
}

// searchIndexed is the index-backed replacement for the stream scan
// loop of search(). It consults the index's per-stream coverage once —
// streams that are unknown, stale (appended to without the hook), or
// poisoned fall back to a full scan every round — then runs probe
// rounds until a termination condition proves the result set complete.
// Each top-k round restarts with a fresh collector and funnel so only
// the final, complete round determines both the results and the
// metrics.
func (m *Matcher) searchIndexed(sc *searchCtx, active []*workerState, streams []*store.Stream, k int) error {
	cov := m.Index.Coverage()
	sc.probe.used = true

	var probed, fallback []indexWork
	for ord, st := range streams {
		c, ok := cov[sigindex.StreamKey{PatientID: st.PatientID, SessionID: st.SessionID}]
		if !ok || c.Poisoned || c.Vertices != st.Len() {
			fallback = append(fallback, indexWork{st: st, ord: ord})
			continue
		}
		probed = append(probed, indexWork{st: st, ord: ord, probed: true})
	}
	sc.probe.fallbackStreams = len(fallback)

	bound := sc.threshold
	if k > 0 {
		seed := m.Params.DistThreshold
		if sc.threshold < seed {
			seed = sc.threshold
		}
		bound = seed / topKSeedDiv
	}
	for round := 0; ; round++ {
		if k > 0 {
			// Restart the round from scratch: the collector bound must
			// re-tighten from the threshold over the wider candidate
			// set, and only the final round's funnel counts describe
			// the search that produced the output.
			sc.col = newCollector(k, sc.threshold)
			for _, w := range active {
				w.funnel = funnelCounts{}
				w.stage = stageNS{}
				w.matches = w.matches[:0]
			}
		}

		pq := sc.envelope(bound)
		pq.Widened = round > 0
		var t0 time.Time
		if sc.timed {
			t0 = time.Now()
		}
		pr := m.Index.Probe(pq)
		if sc.timed {
			sc.probe.dur += time.Since(t0)
		}
		sc.probe.probes++
		if pq.Widened {
			sc.probe.widenings++
		}
		sc.probe.rounds++
		sc.probe.candidates += pr.Candidates
		sc.probe.cells += pr.Cells

		work := make([]indexWork, 0, len(fallback)+len(probed))
		work = append(work, fallback...)
		for _, it := range probed {
			it.starts = pr.Starts[sigindex.StreamKey{PatientID: it.st.PatientID, SessionID: it.st.SessionID}]
			if len(it.starts) == 0 {
				// The probe proves this stream offers nothing inside
				// the envelope: every window it could offer is pruned
				// without touching the stream at all.
				if possible := it.st.Len() - sc.n + 1; possible > 0 {
					active[0].funnel.indexPruned += possible
				}
				continue
			}
			work = append(work, it)
		}

		do := func(w *workerState, i int) error {
			if it := work[i]; it.probed {
				return sc.scanProbed(w, it.st, it.ord, it.starts)
			} else {
				return sc.scanStream(w, it.st, it.ord)
			}
		}
		if len(active) == 1 || len(work) <= 1 {
			for i := range work {
				if err := do(active[0], i); err != nil {
					return err
				}
			}
		} else if err := runParallel(active, len(work), do); err != nil {
			return err
		}

		if k == 0 || pr.Exhaustive || bound >= sc.threshold {
			return nil
		}
		if full, kd := sc.col.kth(); full && kd <= bound {
			return nil
		}
		bound *= topKWidenFactor
		if bound > sc.threshold {
			bound = sc.threshold
		}
	}
}
