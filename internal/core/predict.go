package core

import (
	"errors"

	"stsmatch/internal/plr"
)

// This file implements Section 4.3: online prediction of future tumor
// position (and, analogously, of the next segment's duration and
// amplitude) from retrieved similar subsequences.
//
// The immediate future of every historical subsequence is known. Each
// match C_j contributes the displacement its stream took delta seconds
// after C_j's last vertex, measured relative to C_j's first vertex;
// the prediction anchors that weighted-average displacement at the
// query's own first vertex:
//
//	p(now+delta) = pFirst(Q) + sum_j w'_j (f_j - pFirst(C_j)) / sum_j w'_j

// ErrNoMatches is returned when no similar subsequence usable for
// prediction was retrieved.
var ErrNoMatches = errors.New("core: no similar subsequences to predict from")

// MinMatchesForPrediction is the default floor on the number of
// retrieved subsequences required before a prediction is issued; the
// paper predicts "only if there are a certain number of retrieved
// subsequences".
const MinMatchesForPrediction = 3

// Prediction is the result of one position prediction.
type Prediction struct {
	Pos        []float64 // predicted position at Now + Delta
	Delta      float64   // prediction horizon (s)
	NumMatches int       // matches that contributed
	MeanDist   float64   // mean distance of contributing matches
}

// PredictPosition predicts the target position delta seconds after the
// query's current time using the already-retrieved matches. Matches
// whose streams do not extend delta beyond their window are skipped
// (their future is unknown). minMatches <= 0 uses
// MinMatchesForPrediction.
func (m *Matcher) PredictPosition(q Query, matches []Match, delta float64, minMatches int) (Prediction, error) {
	if minMatches <= 0 {
		minMatches = MinMatchesForPrediction
	}
	if len(q.Seq) == 0 {
		return Prediction{}, ErrTooShort
	}
	dims := q.Seq.Dims()
	acc := make([]float64, dims)
	var wsum, dsum float64
	used := 0
	for _, mt := range matches {
		seq := mt.Stream.Seq()
		endT := mt.EndTime()
		f, inside := seq.PositionAt(endT + delta)
		if !inside {
			continue // stream ends before the future point
		}
		anchor := seq[mt.Start].Pos
		if m.Params.AnchorAtQueryEnd {
			anchor = seq[mt.Start+mt.N-1].Pos
		}
		for k := 0; k < dims; k++ {
			acc[k] += mt.Weight * (f[k] - anchor[k])
		}
		wsum += mt.Weight
		dsum += mt.Distance
		used++
	}
	if used < minMatches || wsum == 0 {
		return Prediction{}, ErrNoMatches
	}
	out := make([]float64, dims)
	qAnchor := q.Seq[0].Pos
	if m.Params.AnchorAtQueryEnd {
		qAnchor = q.Seq[len(q.Seq)-1].Pos
	}
	for k := 0; k < dims; k++ {
		out[k] = qAnchor[k] + acc[k]/wsum
	}
	return Prediction{
		Pos:        out,
		Delta:      delta,
		NumMatches: used,
		MeanDist:   dsum / float64(used),
	}, nil
}

// Predict runs the full online pipeline for one horizon: retrieve
// similar subsequences for the query, then predict the position delta
// seconds ahead.
func (m *Matcher) Predict(q Query, delta float64, restrict map[string]bool) (Prediction, error) {
	matches, err := m.FindSimilar(q, restrict)
	if err != nil {
		return Prediction{}, err
	}
	return m.PredictPosition(q, matches, delta, 0)
}

// PredictTrajectory predicts positions at several horizons from one
// retrieval — the shape a beam-tracking controller consumes (it plans
// the next few control intervals at once). Horizons must be
// non-negative; the result has one position per horizon, nil where the
// matches' streams end too early for that horizon.
func (m *Matcher) PredictTrajectory(q Query, matches []Match, deltas []float64, minMatches int) ([]Prediction, error) {
	if len(deltas) == 0 {
		return nil, errors.New("core: no horizons given")
	}
	out := make([]Prediction, len(deltas))
	anyOK := false
	for i, d := range deltas {
		if d < 0 {
			return nil, errors.New("core: negative horizon")
		}
		p, err := m.PredictPosition(q, matches, d, minMatches)
		if errors.Is(err, ErrNoMatches) {
			continue
		}
		if err != nil {
			return nil, err
		}
		out[i] = p
		anyOK = true
	}
	if !anyOK {
		return nil, ErrNoMatches
	}
	return out, nil
}

// PredictDisplacement estimates the displacement of the target between
// the horizons d1 and d2 (seconds after the query's current time,
// d2 > d1 >= 0) as the weighted average of the corresponding
// displacement in each match's stream. It is the estimator a
// latency-compensating controller needs: the newest *observation* is
// from d1 in the past, and adding the predicted displacement to it
// forecasts the present — "if treatment is based on the last observed
// position rather than the current position, this latency will reduce
// the effectiveness" (Section 1).
func (m *Matcher) PredictDisplacement(q Query, matches []Match, d1, d2 float64, minMatches int) ([]float64, error) {
	if minMatches <= 0 {
		minMatches = MinMatchesForPrediction
	}
	if len(q.Seq) == 0 {
		return nil, ErrTooShort
	}
	dims := q.Seq.Dims()
	acc := make([]float64, dims)
	var wsum float64
	used := 0
	for _, mt := range matches {
		seq := mt.Stream.Seq()
		endT := mt.EndTime()
		a, insideA := seq.PositionAt(endT + d1)
		b, insideB := seq.PositionAt(endT + d2)
		if !insideA || !insideB {
			continue
		}
		for k := 0; k < dims; k++ {
			acc[k] += mt.Weight * (b[k] - a[k])
		}
		wsum += mt.Weight
		used++
	}
	if used < minMatches || wsum == 0 {
		return nil, ErrNoMatches
	}
	for k := range acc {
		acc[k] /= wsum
	}
	return acc, nil
}

// SegmentForecast is the predicted shape of the breathing segment that
// follows the query (frequency and amplitude prediction, which the
// paper notes is analogous to position prediction).
type SegmentForecast struct {
	State      plr.State
	Duration   float64
	Amplitude  float64
	NumMatches int
}

// PredictNextSegment forecasts the duration and amplitude of the
// segment following the query's final vertex by weighted-averaging the
// segments that followed each match.
func (m *Matcher) PredictNextSegment(q Query, matches []Match, minMatches int) (SegmentForecast, error) {
	if minMatches <= 0 {
		minMatches = MinMatchesForPrediction
	}
	var durSum, ampSum, wsum float64
	var state plr.State
	counts := [plr.NumStates]float64{}
	used := 0
	for _, mt := range matches {
		seq := mt.Stream.Seq()
		next := mt.Start + mt.N - 1
		if next+1 >= len(seq) {
			continue // no following segment stored
		}
		seg := seq.SegmentAt(next)
		durSum += mt.Weight * seg.Duration
		ampSum += mt.Weight * seg.Amplitude()
		counts[seg.State] += mt.Weight
		wsum += mt.Weight
		used++
	}
	if used < minMatches || wsum == 0 {
		return SegmentForecast{}, ErrNoMatches
	}
	best := 0.0
	for st, c := range counts {
		if c > best {
			best = c
			state = plr.State(st)
		}
	}
	return SegmentForecast{
		State:      state,
		Duration:   durSum / wsum,
		Amplitude:  ampSum / wsum,
		NumMatches: used,
	}, nil
}
