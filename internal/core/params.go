// Package core implements the paper's primary contribution: the
// model-based, multi-layer, weighted, parametric subsequence similarity
// measure (Definition 2), the subsequence stability concept and
// stability-driven dynamic query generation (Definition 1, Section
// 4.1), online similarity search over the hierarchical stream database,
// and online motion prediction (Section 4.3).
package core

import (
	"fmt"
	"runtime"

	"stsmatch/internal/plr"
)

// Params collects every tunable of the similarity measure. Defaults
// reproduce Table 1 of the paper.
type Params struct {
	// WeightAmp (w_a) and WeightFreq (w_f) trade off amplitude
	// against frequency differences; the paper keeps w_a >= w_f
	// "to ensure that the amplitude has more significance than the
	// frequency".
	WeightAmp  float64
	WeightFreq float64

	// VertexWeightBase (w_0) anchors the linear recency ramp of the
	// per-vertex weights: w_i runs from w_0 at the oldest vertex to 1
	// at the most recent.
	VertexWeightBase float64

	// Source-stream weights (w_s): subsequences from the same session
	// are the most valuable, then other sessions of the same patient,
	// then other patients.
	WeightSameSession  float64
	WeightSamePatient  float64
	WeightOtherPatient float64

	// DistThreshold (epsilon) is the acceptance threshold on the
	// weighted distance.
	DistThreshold float64

	// StabilityThreshold (theta) bounds the stability value sigma(S)
	// below which a subsequence is considered stable (Definition 1).
	StabilityThreshold float64

	// Dynamic query generation bounds, in breathing cycles
	// (Section 4.1: lambda_min = 3, lambda_max = 8).
	MinQueryCycles int
	MaxQueryCycles int

	// Ablation switches for the Figure 6 experiment. When false, the
	// corresponding weight layer collapses to 1 ("no weighting").
	UseAmpFreqWeights bool
	UseStreamWeights  bool
	UseVertexWeights  bool

	// RequireStateOrder controls condition 1 of Definition 2 (same
	// state order). Always true in the paper; exposed for the
	// ablation that shows why the model layer matters.
	RequireStateOrder bool

	// UseIndex routes candidate generation through the matcher's
	// window-signature index (Matcher.Index) when one is attached:
	// envelope probes with iterative widening replace the per-stream
	// FindWindows scans. Results are byte-identical to the scan path;
	// streams the index does not fully cover fall back to scanning.
	// Ignored when RequireStateOrder is false — the ablation needs
	// every window, which the index cannot enumerate — or when the
	// query length falls outside the indexed window range.
	UseIndex bool

	// Parallelism is the number of worker goroutines a similarity
	// search fans its candidate streams across. 0 (the default) uses
	// GOMAXPROCS; 1 forces the sequential scan. Results are identical
	// at every setting: partial results merge into one deterministic
	// total order (see DESIGN.md on the retrieval funnel).
	Parallelism int

	// AnchorAtQueryEnd selects the prediction anchor. The paper's
	// Section 4.3 formula anchors each match's future displacement at
	// the *first* vertex of the subsequences; anchoring at the *last*
	// vertex (the current, observed position) makes the prediction
	// exact at delta = 0 and reproduces the error-grows-with-horizon
	// shape of Figure 6a. Both are available; see DESIGN.md.
	AnchorAtQueryEnd bool
}

// DefaultParams returns the Table 1 parameter settings.
func DefaultParams() Params {
	return Params{
		WeightAmp:          1.0,
		WeightFreq:         0.25,
		VertexWeightBase:   0.8,
		WeightSameSession:  1.0,
		WeightSamePatient:  0.9,
		WeightOtherPatient: 0.3,
		DistThreshold:      8.0,
		StabilityThreshold: 6.0,
		MinQueryCycles:     3,
		MaxQueryCycles:     8,
		UseAmpFreqWeights:  true,
		UseStreamWeights:   true,
		UseVertexWeights:   true,
		RequireStateOrder:  true,
		AnchorAtQueryEnd:   true,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.WeightAmp <= 0 || p.WeightFreq <= 0 {
		return fmt.Errorf("core: WeightAmp and WeightFreq must be positive")
	}
	if p.WeightAmp < p.WeightFreq {
		return fmt.Errorf("core: WeightAmp (%v) must be >= WeightFreq (%v)", p.WeightAmp, p.WeightFreq)
	}
	if p.VertexWeightBase <= 0 || p.VertexWeightBase > 1 {
		return fmt.Errorf("core: VertexWeightBase must be in (0,1], got %v", p.VertexWeightBase)
	}
	if p.WeightSameSession <= 0 || p.WeightSamePatient <= 0 || p.WeightOtherPatient <= 0 {
		return fmt.Errorf("core: stream weights must be positive")
	}
	if p.WeightSameSession < p.WeightSamePatient || p.WeightSamePatient < p.WeightOtherPatient {
		return fmt.Errorf("core: stream weights must order same-session >= same-patient >= other-patient")
	}
	if p.DistThreshold <= 0 {
		return fmt.Errorf("core: DistThreshold must be positive, got %v", p.DistThreshold)
	}
	if p.StabilityThreshold <= 0 {
		return fmt.Errorf("core: StabilityThreshold must be positive, got %v", p.StabilityThreshold)
	}
	if p.MinQueryCycles < 1 || p.MaxQueryCycles < p.MinQueryCycles {
		return fmt.Errorf("core: query cycle bounds invalid: [%d, %d]", p.MinQueryCycles, p.MaxQueryCycles)
	}
	if p.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be >= 0, got %d", p.Parallelism)
	}
	return nil
}

// parallelism resolves the effective worker count for a search over
// the given number of candidate streams.
func (p Params) parallelism(streams int) int {
	n := p.Parallelism
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > streams {
		n = streams
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SourceRelation classifies where a candidate subsequence comes from
// relative to the query.
type SourceRelation int

// The three source relations, from most to least trusted.
const (
	SameSession SourceRelation = iota
	SamePatient
	OtherPatient
)

// String names the relation.
func (r SourceRelation) String() string {
	switch r {
	case SameSession:
		return "same-session"
	case SamePatient:
		return "same-patient"
	default:
		return "other-patient"
	}
}

// StreamWeight returns w_s for the given relation (1 when stream
// weighting is ablated off).
func (p Params) StreamWeight(r SourceRelation) float64 {
	if !p.UseStreamWeights {
		return 1
	}
	switch r {
	case SameSession:
		return p.WeightSameSession
	case SamePatient:
		return p.WeightSamePatient
	default:
		return p.WeightOtherPatient
	}
}

// maxStreamWeight returns the largest w_s any relation can carry —
// the safe choice when inverting the lower bound into a probe
// envelope that must admit candidates of every relation. Validate
// enforces same-session >= same-patient >= other-patient.
func (p Params) maxStreamWeight() float64 {
	if !p.UseStreamWeights {
		return 1
	}
	return p.WeightSameSession
}

// ampFreqWeights returns (w_a, w_f), collapsing to (1, 1) when the
// amplitude/frequency layer is ablated off.
func (p Params) ampFreqWeights() (wa, wf float64) {
	if !p.UseAmpFreqWeights {
		return 1, 1
	}
	return p.WeightAmp, p.WeightFreq
}

// VertexWeights fills dst (reused if capacity allows) with the
// per-segment recency weights for a query of n vertices (n-1 segments):
// a linear ramp from VertexWeightBase at the oldest segment to 1 at the
// most recent, matching "w_i is between w_0 and 1; the nearer the
// vertex is to the end of the subsequence, the higher weight it has."
// With the layer ablated off, all weights are 1.
func (p Params) VertexWeights(dst []float64, n int) []float64 {
	m := n - 1
	if m < 0 {
		m = 0
	}
	if cap(dst) < m {
		dst = make([]float64, m)
	}
	dst = dst[:m]
	if !p.UseVertexWeights || m == 0 {
		for i := range dst {
			dst[i] = 1
		}
		return dst
	}
	if m == 1 {
		dst[0] = 1
		return dst
	}
	w0 := p.VertexWeightBase
	for i := 0; i < m; i++ {
		dst[i] = w0 + (1-w0)*float64(i)/float64(m-1)
	}
	return dst
}

// MinQueryVertices converts the cycle lower bound to vertices: a
// regular breathing cycle contributes three segments (EX, EOE, IN), and
// a window of k segments needs k+1 vertices.
func (p Params) MinQueryVertices() int { return 3*p.MinQueryCycles + 1 }

// MaxQueryVertices converts the cycle upper bound to vertices.
func (p Params) MaxQueryVertices() int { return 3*p.MaxQueryCycles + 1 }

// statesEqual reports whether the two windows satisfy condition 1 of
// Definition 2: identical per-segment states.
func statesEqual(q, c plr.Sequence) bool {
	if len(q) != len(c) {
		return false
	}
	for i := 0; i < len(q)-1; i++ {
		if q[i].State != c[i].State {
			return false
		}
	}
	return true
}
