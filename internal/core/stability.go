package core

import (
	"math"
	"stsmatch/internal/plr"
	"stsmatch/internal/stats"
)

// This file implements Definition 1 (subsequence stability) and the
// Section 4.1 dynamic query generation scheme built on it.
//
// Stability measures how self-consistent a subsequence's per-state
// segment durations and amplitudes are. Per DESIGN.md §3, we use
// absolute deviations from the per-state means, weighted by the
// amplitude and frequency weights:
//
//	sigma(S) = sum over states k, segments i in state k of
//	           w_a*|A_i - meanA_k| + w_f*|T_i - meanT_k|
//
// Deviations carry the data's physical units (mm for amplitude,
// seconds for duration), exactly like the Definition 2 distance, so
// the Table 1 thresholds (theta = 6.0, eps = 8.0) live on one scale.
// The smaller sigma is, the more stable S is; S is stable when
// sigma(S) <= StabilityThreshold.

// Stability computes sigma(S) for the subsequence. Sequences with
// fewer than two segments are maximally stable (0): there is nothing to
// deviate from.
func (p Params) Stability(s plr.Sequence) float64 {
	n := s.NumSegments()
	if n < 2 {
		return 0
	}
	wa, wf := p.ampFreqWeights()

	var amp, dur [plr.NumStates]stats.Welford
	segs := make([]plr.Segment, n)
	for i := 0; i < n; i++ {
		segs[i] = s.SegmentAt(i)
		k := segs[i].State
		amp[k].Add(segs[i].Amplitude())
		dur[k].Add(segs[i].Duration)
	}

	var sigma float64
	for i := 0; i < n; i++ {
		k := segs[i].State
		da := math.Abs(segs[i].Amplitude() - amp[k].Mean())
		dt := math.Abs(segs[i].Duration - dur[k].Mean())
		sigma += wa*da + wf*dt
	}
	return sigma
}

// Stable reports whether the subsequence is stable under the configured
// threshold.
func (p Params) Stable(s plr.Sequence) bool {
	return p.Stability(s) <= p.StabilityThreshold
}

// QueryInfo describes how a dynamic query subsequence was chosen.
type QueryInfo struct {
	// Start is the index into the source sequence where the query
	// begins; the query always ends at the final vertex.
	Start int
	// Stable reports whether the stability strip halted on a stable
	// window (versus hitting the maximum length).
	Stable bool
	// StripStability is sigma of the final strip position.
	StripStability float64
}

// DynamicQuery selects the query subsequence from the most recent part
// of seq per Section 4.1: a stability checking strip of the minimum
// query length starts over the most recent vertices and moves one
// vertex back into history until it covers a stable window or the
// query reaches the maximum length. The query runs from the beginning
// of the final strip position to the most recent vertex, so unstable
// (low-regularity) breathing yields longer queries and highly regular
// breathing yields short ones.
//
// The returned sequence shares seq's backing array. When seq is
// shorter than the minimum query length, the whole sequence is
// returned.
func (p Params) DynamicQuery(seq plr.Sequence) (plr.Sequence, QueryInfo) {
	minV := p.MinQueryVertices()
	maxV := p.MaxQueryVertices()
	n := len(seq)
	if n <= minV {
		sigma := p.Stability(seq)
		stable := sigma <= p.StabilityThreshold
		countStability(stable)
		return seq, QueryInfo{Start: 0, Stable: stable, StripStability: sigma}
	}

	stripLen := minV
	// Earliest allowed strip start so that the query (strip start ->
	// end of sequence) does not exceed maxV vertices.
	minStart := n - maxV
	if minStart < 0 {
		minStart = 0
	}

	start := n - stripLen
	var sigma float64
	for {
		sigma = p.Stability(seq[start : start+stripLen])
		if sigma <= p.StabilityThreshold || start <= minStart {
			break
		}
		start--
	}
	stable := sigma <= p.StabilityThreshold
	countStability(stable)
	return seq[start:], QueryInfo{
		Start:          start,
		Stable:         stable,
		StripStability: sigma,
	}
}

// countStability feeds the stable/unstable dynamic-query counters.
func countStability(stable bool) {
	if stable {
		mStableQueries.Inc()
	} else {
		mUnstableQueries.Inc()
	}
}

// FixedQuery returns the most recent window of exactly the given number
// of breathing cycles (the baseline strategy Figure 7a compares
// against). When the sequence is shorter, the whole sequence is
// returned.
func FixedQuery(seq plr.Sequence, cycles int) plr.Sequence {
	v := 3*cycles + 1
	if len(seq) <= v {
		return seq
	}
	return seq[len(seq)-v:]
}
