package core

import (
	"math/rand"
	"testing"
)

func TestCoverageControllerValidation(t *testing.T) {
	if _, err := NewCoverageController(0, 8, 2, 16); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := NewCoverageController(1, 8, 2, 16); err == nil {
		t.Error("target 1 accepted")
	}
	if _, err := NewCoverageController(0.8, 8, 0, 16); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewCoverageController(0.8, 8, 10, 5); err == nil {
		t.Error("inverted bounds accepted")
	}
	// Start is clamped into the bounds.
	c, err := NewCoverageController(0.8, 100, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epsilon() != 16 {
		t.Errorf("start eps = %v, want clamp to 16", c.Epsilon())
	}
}

func TestCoverageControllerConverges(t *testing.T) {
	// Simulated environment: an attempt succeeds iff eps exceeds a
	// random per-attempt difficulty drawn from [0, 10]. Coverage of
	// 0.8 then needs eps ~ 8; the controller must settle near it.
	rng := rand.New(rand.NewSource(1))
	c, err := NewCoverageController(0.8, 2, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	var recent int
	const window = 500
	for i := 0; i < 3000; i++ {
		difficulty := rng.Float64() * 10
		ok := c.Epsilon() > difficulty
		c.Observe(ok)
		if i >= 3000-window && ok {
			recent++
		}
	}
	got := float64(recent) / window
	if got < 0.7 || got > 0.9 {
		t.Errorf("late coverage %.2f, want ~0.8 (eps settled at %.2f)", got, c.Epsilon())
	}
	if c.Attempts() != 3000 {
		t.Errorf("attempts = %d", c.Attempts())
	}
	if c.Coverage() <= 0 || c.Coverage() >= 1 {
		t.Errorf("overall coverage = %v", c.Coverage())
	}
}

func TestCoverageControllerBounds(t *testing.T) {
	c, err := NewCoverageController(0.9, 8, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Persistent misses saturate at MaxEps.
	for i := 0; i < 500; i++ {
		c.Observe(false)
	}
	if c.Epsilon() != 16 {
		t.Errorf("eps = %v, want saturation at 16", c.Epsilon())
	}
	// Persistent hits descend toward MinEps.
	for i := 0; i < 5000; i++ {
		c.Observe(true)
	}
	if c.Epsilon() != 2 {
		t.Errorf("eps = %v, want saturation at 2", c.Epsilon())
	}
}

func TestPredictAdaptive(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:len(seq)-2], "P1", "S1")

	ctl, err := NewCoverageController(0.8, 8, 0.001, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PredictAdaptive(q, 0.2, ctl); err != nil {
		t.Fatalf("adaptive prediction failed on easy data: %v", err)
	}
	if ctl.Attempts() != 1 || ctl.Coverage() != 1 {
		t.Errorf("controller not fed: attempts=%d coverage=%v", ctl.Attempts(), ctl.Coverage())
	}
	// The matcher's own threshold must be restored.
	if m.Params.DistThreshold != DefaultParams().DistThreshold {
		t.Errorf("threshold leaked: %v", m.Params.DistThreshold)
	}
	// A hit must lower epsilon slightly (toward accuracy).
	if ctl.Epsilon() >= 8 {
		t.Errorf("eps = %v, want below start after a hit", ctl.Epsilon())
	}
}
