package core

import (
	"errors"
	"math"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

func TestPredictExactAtZeroDelta(t *testing.T) {
	// With last-vertex anchoring, the prediction at delta = 0 must be
	// the query's current position, independent of match quality.
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.PredictPosition(q, matches, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Seq[len(q.Seq)-1].Pos[0]
	if math.Abs(pred.Pos[0]-want) > 1e-9 {
		t.Errorf("prediction at delta=0 is %v, want current position %v", pred.Pos[0], want)
	}
}

func TestPredictAccurateOnPeriodicMotion(t *testing.T) {
	// On perfectly periodic streams, a short-horizon prediction must
	// land close to the true future.
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	qseq := seq[len(seq)-12 : len(seq)-1] // leave one vertex of future
	q := NewQuery(qseq, "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, delta := range []float64{0.1, 0.3, 0.5} {
		pred, err := m.PredictPosition(q, matches, delta, 1)
		if err != nil {
			t.Fatalf("delta %v: %v", delta, err)
		}
		truth, inside := seq.PositionAt(q.Now + delta)
		if !inside {
			t.Fatalf("delta %v: truth not inside stream", delta)
		}
		if e := math.Abs(pred.Pos[0] - truth[0]); e > 1.5 {
			t.Errorf("delta %v: error %.3f too large (pred %v truth %v)", delta, e, pred.Pos[0], truth[0])
		}
	}
}

func TestPredictFirstVertexAnchor(t *testing.T) {
	// The paper-faithful first-vertex anchor must also work and
	// produce finite predictions.
	db := buildTestDB(t)
	p := DefaultParams()
	p.AnchorAtQueryEnd = false
	m, _ := NewMatcher(db, p)
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.PredictPosition(q, matches, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred.Pos[0]) || math.IsInf(pred.Pos[0], 0) {
		t.Errorf("non-finite prediction %v", pred.Pos[0])
	}
}

func TestPredictRequiresMinMatches(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-10:], "P1", "S1")
	matches, _ := m.FindSimilar(q, nil)
	if len(matches) < 2 {
		t.Skip("not enough matches to exercise the floor")
	}
	if _, err := m.PredictPosition(q, matches[:1], 0.1, 2); !errors.Is(err, ErrNoMatches) {
		t.Errorf("want ErrNoMatches with 1 < 2 matches, got %v", err)
	}
	if _, err := m.PredictPosition(q, nil, 0.1, 0); !errors.Is(err, ErrNoMatches) {
		t.Errorf("want ErrNoMatches with no matches, got %v", err)
	}
}

func TestPredictSkipsMatchesWithoutFuture(t *testing.T) {
	// A match ending at the very end of its stream has no future to
	// contribute; prediction must skip it rather than clamp.
	db := store.NewDB()
	p1, _ := db.AddPatient(store.PatientInfo{ID: "P1"})
	st := p1.AddStream("S1")
	if err := st.Append(breathingWindow(0, 10, unitDurs(12))...); err != nil {
		t.Fatal(err)
	}
	// Query = final window; the only same-state candidates end near
	// the stream end and everything else is excluded by online
	// semantics -> no usable futures far out.
	m, _ := NewMatcher(db, DefaultParams())
	seq := st.Seq()
	q := NewQuery(seq[len(seq)-4:], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Horizon beyond the stream end for every candidate.
	horizon := seq.Duration() + 10
	if _, err := m.PredictPosition(q, matches, horizon, 1); !errors.Is(err, ErrNoMatches) {
		t.Errorf("want ErrNoMatches for futureless horizon, got %v", err)
	}
}

func TestPredictEndToEnd(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	qseq, _ := m.Params.DynamicQuery(seq[:len(seq)-2])
	q := NewQuery(qseq, "P1", "S1")
	pred, err := m.Predict(q, 0.2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pred.NumMatches < MinMatchesForPrediction {
		t.Errorf("NumMatches = %d below floor", pred.NumMatches)
	}
	if pred.Delta != 0.2 {
		t.Errorf("Delta = %v", pred.Delta)
	}
	if pred.MeanDist < 0 {
		t.Errorf("MeanDist = %v", pred.MeanDist)
	}
}

func TestPredictNextSegment(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	// Query ends exactly at a vertex boundary; the following segment
	// in every periodic stream has duration 1 and a known state.
	qseq := seq[len(seq)-11 : len(seq)-2]
	q := NewQuery(qseq, "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.PredictNextSegment(q, matches, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The next state after the query's final segment follows the FSA.
	wantState := qseq[len(qseq)-2].State.NextRegular()
	if fc.State != wantState {
		t.Errorf("forecast state = %v, want %v", fc.State, wantState)
	}
	if math.Abs(fc.Duration-1) > 0.05 {
		t.Errorf("forecast duration = %v, want ~1", fc.Duration)
	}
	if fc.NumMatches == 0 {
		t.Error("no matches contributed")
	}
	// Amplitude forecast must be plausible for a 10-11 mm cohort when
	// the forecast segment is a moving one; EOE forecasts are near 0.
	if fc.State != plr.EOE && (fc.Amplitude < 8 || fc.Amplitude > 13) {
		t.Errorf("forecast amplitude = %v", fc.Amplitude)
	}
	if _, err := m.PredictNextSegment(q, nil, 1); !errors.Is(err, ErrNoMatches) {
		t.Errorf("want ErrNoMatches, got %v", err)
	}
}

func TestPredictTrajectory(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-12:len(seq)-2], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	deltas := []float64{0, 0.2, 0.4}
	traj, err := m.PredictTrajectory(q, matches, deltas, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) != 3 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	// Each point must agree with the single-horizon prediction.
	for i, d := range deltas {
		single, err := m.PredictPosition(q, matches, d, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(traj[i].Pos[0]-single.Pos[0]) > 1e-12 {
			t.Errorf("horizon %v: trajectory %v != single %v", d, traj[i].Pos[0], single.Pos[0])
		}
	}
	if _, err := m.PredictTrajectory(q, matches, nil, 1); err == nil {
		t.Error("empty horizons accepted")
	}
	if _, err := m.PredictTrajectory(q, matches, []float64{-1}, 1); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := m.PredictTrajectory(q, nil, deltas, 1); !errors.Is(err, ErrNoMatches) {
		t.Errorf("want ErrNoMatches, got %v", err)
	}
}

func TestPredictDisplacement(t *testing.T) {
	db := buildTestDB(t)
	m, _ := NewMatcher(db, DefaultParams())
	own := db.Patient("P1").StreamBySession("S1")
	seq := own.Seq()
	q := NewQuery(seq[len(seq)-12:len(seq)-2], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Displacement between two horizons must equal the difference of
	// the two point predictions (they share anchor and weights).
	p1, err := m.PredictPosition(q, matches, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.PredictPosition(q, matches, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := m.PredictDisplacement(q, matches, 0.1, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := p2.Pos[0] - p1.Pos[0]
	if math.Abs(disp[0]-want) > 1e-9 {
		t.Errorf("displacement = %v, want %v", disp[0], want)
	}
	// Zero-width interval -> zero displacement.
	zero, err := m.PredictDisplacement(q, matches, 0.2, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero[0]) > 1e-12 {
		t.Errorf("zero-interval displacement = %v", zero[0])
	}
	if _, err := m.PredictDisplacement(q, nil, 0, 0.1, 1); !errors.Is(err, ErrNoMatches) {
		t.Errorf("want ErrNoMatches, got %v", err)
	}
	if _, err := m.PredictDisplacement(Query{}, matches, 0, 0.1, 1); !errors.Is(err, ErrTooShort) {
		t.Errorf("want ErrTooShort, got %v", err)
	}
}

func TestPredictionMultiDim(t *testing.T) {
	// 2-D streams: prediction must cover every dimension.
	db := store.NewDB()
	mk2d := func(amp float64) plr.Sequence {
		s := breathingWindow(0, amp, unitDurs(24))
		for i := range s {
			s[i].Pos = []float64{s[i].Pos[0], s[i].Pos[0] * 0.3}
		}
		return s
	}
	p1, _ := db.AddPatient(store.PatientInfo{ID: "P1"})
	if err := p1.AddStream("S1").Append(mk2d(10)...); err != nil {
		t.Fatal(err)
	}
	p2, _ := db.AddPatient(store.PatientInfo{ID: "P2"})
	if err := p2.AddStream("S1").Append(mk2d(10.2)...); err != nil {
		t.Fatal(err)
	}
	m, _ := NewMatcher(db, DefaultParams())
	seq := p1.Streams[0].Seq()
	q := NewQuery(seq[len(seq)-8:len(seq)-1], "P1", "S1")
	matches, err := m.FindSimilar(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.PredictPosition(q, matches, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Pos) != 2 {
		t.Fatalf("prediction dims = %d, want 2", len(pred.Pos))
	}
	truth, _ := seq.PositionAt(q.Now + 0.2)
	for k := 0; k < 2; k++ {
		if e := math.Abs(pred.Pos[k] - truth[k]); e > 2 {
			t.Errorf("dim %d error %.2f", k, e)
		}
	}
}
