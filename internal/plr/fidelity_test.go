package plr

import (
	"math"
	"testing"
)

func TestMeasureFidelityExactPLR(t *testing.T) {
	// Samples exactly on the PLR lines: zero reconstruction error.
	seq := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 2, Pos: []float64{10}, State: EOE},
		{T: 4, Pos: []float64{10}, State: IN},
	}
	var samples []Sample
	for ts := 0.0; ts <= 4; ts += 0.25 {
		pos, _ := seq.PositionAt(ts)
		samples = append(samples, Sample{T: ts, Pos: pos})
	}
	f, err := MeasureFidelity(seq, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.RMSE > 1e-12 || f.MaxAbsErr > 1e-12 {
		t.Errorf("exact samples should reconstruct perfectly: %+v", f)
	}
	if f.Vertices != 3 || f.RawSamples != len(samples) {
		t.Errorf("counts wrong: %+v", f)
	}
	if math.Abs(f.Compression-float64(len(samples))/3) > 1e-12 {
		t.Errorf("compression = %v", f.Compression)
	}
	if f.String() == "" {
		t.Error("empty String")
	}
}

func TestMeasureFidelityKnownError(t *testing.T) {
	seq := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 2, Pos: []float64{0}, State: EOE},
	}
	samples := []Sample{
		{T: 0.5, Pos: []float64{1}},
		{T: 1.5, Pos: []float64{-1}},
		{T: 99, Pos: []float64{50}}, // outside span: skipped
	}
	f, err := MeasureFidelity(seq, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.RMSE-1) > 1e-12 || math.Abs(f.MeanAbsErr-1) > 1e-12 || f.MaxAbsErr != 1 {
		t.Errorf("errors: %+v", f)
	}
}

func TestMeasureFidelityErrors(t *testing.T) {
	seq := Sequence{{T: 0, Pos: []float64{0}, State: EX}}
	if _, err := MeasureFidelity(seq, nil, 0); err == nil {
		t.Error("short sequence accepted")
	}
	two := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 1, Pos: []float64{1}, State: EOE},
	}
	if _, err := MeasureFidelity(two, nil, 0); err == nil {
		t.Error("no in-span samples accepted")
	}
	if _, err := MeasureFidelity(two, []Sample{{T: 0.5, Pos: []float64{0}}}, 2); err == nil {
		t.Error("bad dim accepted")
	}
}

func TestSummarizeStates(t *testing.T) {
	seq := Sequence{
		{T: 0, Pos: []float64{10}, State: EX},
		{T: 1, Pos: []float64{0}, State: EOE},
		{T: 2.5, Pos: []float64{0}, State: IN},
		{T: 3.5, Pos: []float64{10}, State: EX},
		{T: 4.5, Pos: []float64{0}, State: IRR},
		{T: 10, Pos: []float64{3}, State: EX},
	}
	s := SummarizeStates(seq)
	if s[EX].Count != 2 || s[EOE].Count != 1 || s[IN].Count != 1 || s[IRR].Count != 1 {
		t.Errorf("counts: EX=%d EOE=%d IN=%d IRR=%d",
			s[EX].Count, s[EOE].Count, s[IN].Count, s[IRR].Count)
	}
	if math.Abs(s[EOE].Duration.Mean()-1.5) > 1e-12 {
		t.Errorf("EOE duration = %v", s[EOE].Duration.Mean())
	}
	if math.Abs(s[EX].Amp.Mean()-10) > 1e-12 {
		t.Errorf("EX amplitude = %v", s[EX].Amp.Mean())
	}
	if s[IRR].Duration.Mean() != 5.5 {
		t.Errorf("IRR duration = %v", s[IRR].Duration.Mean())
	}
}

func TestIRRFraction(t *testing.T) {
	seq := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 1, Pos: []float64{0}, State: IRR},
		{T: 3, Pos: []float64{0}, State: IN},
		{T: 4, Pos: []float64{0}, State: IN},
	}
	if got := IRRFraction(seq); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("IRRFraction = %v, want 0.5", got)
	}
	if IRRFraction(nil) != 0 {
		t.Error("empty fraction should be 0")
	}
	noIRR := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 1, Pos: []float64{0}, State: EOE},
	}
	if IRRFraction(noIRR) != 0 {
		t.Error("no-IRR fraction should be 0")
	}
}
