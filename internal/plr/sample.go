package plr

// Sample is one raw observation of the tracked target: a timestamp (in
// seconds) and an n-dimensional position (in millimetres for the
// respiratory domain). Raw streams are sequences of samples; the
// segmenter in internal/fsm turns them into Sequence values.
type Sample struct {
	T   float64   `json:"t"`
	Pos []float64 `json:"pos"`
}

// Clone returns a deep copy of the sample.
func (s Sample) Clone() Sample {
	p := make([]float64, len(s.Pos))
	copy(p, s.Pos)
	return Sample{T: s.T, Pos: p}
}

// Samples1D wraps a scalar series observed at a fixed rate into
// samples, for tests and examples working in one dimension.
func Samples1D(start, dt float64, ys []float64) []Sample {
	out := make([]Sample, len(ys))
	for i, y := range ys {
		out[i] = Sample{T: start + float64(i)*dt, Pos: []float64{y}}
	}
	return out
}
