package plr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// seq1D builds a 1-D sequence from (t, y, state) triples.
func seq1D(vs ...struct {
	t, y float64
	st   State
}) Sequence {
	out := make(Sequence, len(vs))
	for i, v := range vs {
		out[i] = Vertex{T: v.t, Pos: []float64{v.y}, State: v.st}
	}
	return out
}

// regularSeq builds n vertices of a regular EX->EOE->IN pattern
// starting at t=0 with unit durations and a simple triangle amplitude.
func regularSeq(n int) Sequence {
	states := []State{EX, EOE, IN}
	ys := []float64{10, 0, 0} // EX falls 10->0, EOE flat, IN rises 0->10
	out := make(Sequence, n)
	for i := 0; i < n; i++ {
		out[i] = Vertex{T: float64(i), Pos: []float64{ys[i%3]}, State: states[i%3]}
	}
	return out
}

func TestStateString(t *testing.T) {
	cases := []struct {
		s    State
		name string
		b    byte
	}{
		{EX, "EX", 'E'}, {EOE, "EOE", 'O'}, {IN, "IN", 'I'}, {IRR, "IRR", 'R'},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String(%d) = %q, want %q", c.s, c.s.String(), c.name)
		}
		if c.s.Byte() != c.b {
			t.Errorf("Byte(%s) = %c, want %c", c.name, c.s.Byte(), c.b)
		}
		parsed, err := ParseState(c.name)
		if err != nil || parsed != c.s {
			t.Errorf("ParseState(%q) = %v, %v", c.name, parsed, err)
		}
	}
	if _, err := ParseState("bogus"); err == nil {
		t.Error("expected error for unknown state name")
	}
	if State(9).Valid() {
		t.Error("State(9) should be invalid")
	}
	if got := State(9).String(); got != "State(9)" {
		t.Errorf("invalid state String = %q", got)
	}
}

func TestNextRegular(t *testing.T) {
	if EX.NextRegular() != EOE || EOE.NextRegular() != IN || IN.NextRegular() != EX {
		t.Error("regular cycle order broken")
	}
	if IRR.NextRegular() != IRR {
		t.Error("IRR.NextRegular should be IRR")
	}
	if !EX.Regular() || !EOE.Regular() || !IN.Regular() || IRR.Regular() {
		t.Error("Regular() misclassifies")
	}
}

func TestValidate(t *testing.T) {
	good := regularSeq(6)
	if err := good.Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	if err := (Sequence{}).Validate(); err != nil {
		t.Errorf("empty sequence rejected: %v", err)
	}

	bad := regularSeq(3)
	bad[2].T = bad[1].T // duplicate time
	if err := bad.Validate(); !errors.Is(err, ErrTimeOrder) {
		t.Errorf("want ErrTimeOrder, got %v", err)
	}

	bad = regularSeq(3)
	bad[1].Pos = []float64{1, 2} // dimension change
	if err := bad.Validate(); !errors.Is(err, ErrDims) {
		t.Errorf("want ErrDims, got %v", err)
	}

	bad = regularSeq(3)
	bad[0].State = State(7)
	if err := bad.Validate(); !errors.Is(err, ErrState) {
		t.Errorf("want ErrState, got %v", err)
	}
}

func TestSegmentsAndSignature(t *testing.T) {
	s := regularSeq(4) // EX, EOE, IN, EX -> 3 segments
	if s.NumSegments() != 3 {
		t.Fatalf("NumSegments = %d, want 3", s.NumSegments())
	}
	if got := s.StateSignature(); got != "EOI" {
		t.Errorf("StateSignature = %q, want EOI", got)
	}
	if got := s.StateString(); got != "EOIE" {
		t.Errorf("StateString = %q, want EOIE", got)
	}
	seg := s.SegmentAt(0)
	if seg.State != EX || seg.Duration != 1 {
		t.Errorf("segment 0 = %+v", seg)
	}
	if !almostEqual(seg.Amplitude(), 10, 1e-12) {
		t.Errorf("segment 0 amplitude = %v, want 10", seg.Amplitude())
	}
	segs := s.Segments()
	if len(segs) != 3 || segs[2].State != IN {
		t.Errorf("Segments = %+v", segs)
	}
	if (Sequence{}).NumSegments() != 0 {
		t.Error("empty NumSegments should be 0")
	}
}

func TestDurationAndDims(t *testing.T) {
	s := regularSeq(5)
	if s.Duration() != 4 {
		t.Errorf("Duration = %v, want 4", s.Duration())
	}
	if s.Dims() != 1 {
		t.Errorf("Dims = %d, want 1", s.Dims())
	}
	if (Sequence{}).Duration() != 0 || (Sequence{}).Dims() != 0 {
		t.Error("empty sequence duration/dims should be 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := regularSeq(3)
	c := s.Clone()
	c[0].Pos[0] = 999
	c[1].T = 42
	if s[0].Pos[0] == 999 || s[1].T == 42 {
		t.Error("Clone shares state with original")
	}
}

func TestPositionAtInterpolation(t *testing.T) {
	s := seq1D(
		struct {
			t, y float64
			st   State
		}{0, 0, EX},
		struct {
			t, y float64
			st   State
		}{2, 10, EOE},
		struct {
			t, y float64
			st   State
		}{4, 10, IN},
	)
	pos, inside := s.PositionAt(1)
	if !inside || !almostEqual(pos[0], 5, 1e-12) {
		t.Errorf("PositionAt(1) = %v inside=%v, want 5 true", pos, inside)
	}
	pos, inside = s.PositionAt(3)
	if !inside || !almostEqual(pos[0], 10, 1e-12) {
		t.Errorf("PositionAt(3) = %v, want 10", pos)
	}
	// Exact vertex times.
	pos, inside = s.PositionAt(0)
	if !inside || pos[0] != 0 {
		t.Errorf("PositionAt(0) = %v inside=%v", pos, inside)
	}
	pos, inside = s.PositionAt(4)
	if !inside || pos[0] != 10 {
		t.Errorf("PositionAt(4) = %v inside=%v", pos, inside)
	}
	// Clamping outside the range.
	pos, inside = s.PositionAt(-1)
	if inside || pos[0] != 0 {
		t.Errorf("PositionAt(-1) = %v inside=%v, want clamp to 0, false", pos, inside)
	}
	pos, inside = s.PositionAt(99)
	if inside || pos[0] != 10 {
		t.Errorf("PositionAt(99) = %v inside=%v, want clamp to 10, false", pos, inside)
	}
	// Empty sequence.
	if p, ok := (Sequence{}).PositionAt(0); p != nil || ok {
		t.Error("empty PositionAt should be nil, false")
	}
}

// Property: interpolated positions lie within the bounding box of the
// two neighbouring vertices.
func TestPositionAtBoundedProperty(t *testing.T) {
	f := func(raw []float64, frac float64) bool {
		if len(raw) < 2 {
			return true
		}
		if math.IsNaN(frac) || math.IsInf(frac, 0) {
			frac = 0.5
		}
		frac = math.Abs(frac)
		frac -= math.Floor(frac)
		s := make(Sequence, len(raw))
		for i, y := range raw {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				y = 0
			}
			s[i] = Vertex{T: float64(i), Pos: []float64{y}, State: EX}
		}
		// Pick a random inner time.
		tq := frac * s[len(s)-1].T
		pos, _ := s.PositionAt(tq)
		i := s.IndexAtTime(tq)
		if i < 0 {
			i = 0
		}
		j := i + 1
		if j >= len(s) {
			j = i
		}
		lo := math.Min(s[i].Pos[0], s[j].Pos[0])
		hi := math.Max(s[i].Pos[0], s[j].Pos[0])
		return pos[0] >= lo-1e-9 && pos[0] <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIndexAtTime(t *testing.T) {
	s := regularSeq(5) // times 0..4
	cases := []struct {
		t    float64
		want int
	}{
		{-0.5, -1}, {0, 0}, {0.5, 0}, {1, 1}, {3.9, 3}, {4, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := s.IndexAtTime(c.t); got != c.want {
			t.Errorf("IndexAtTime(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if (Sequence{}).IndexAtTime(1) != -1 {
		t.Error("empty IndexAtTime should be -1")
	}
}

func TestCycleCount(t *testing.T) {
	cases := []struct {
		states []State
		want   int
	}{
		{[]State{EX, EOE, IN, EX}, 1},                   // one full cycle (3 segments) + trailing vertex
		{[]State{EX, EOE, IN, EX, EOE, IN, EX}, 2},      // two cycles
		{[]State{EOE, IN, EX, EOE, IN, EX}, 1},          // starts mid-cycle: only one full EX..IN run
		{[]State{EX, EOE, IN, IRR, EX, EOE, IN, EX}, 2}, // IRR interrupts, then a clean cycle
		{[]State{EX, EX, EOE, IN, EX}, 1},               // restart at second EX
		{[]State{IRR, IRR, IRR}, 0},
	}
	for i, c := range cases {
		s := make(Sequence, len(c.states))
		for j, st := range c.states {
			s[j] = Vertex{T: float64(j), Pos: []float64{0}, State: st}
		}
		if got := s.CycleCount(); got != c.want {
			t.Errorf("case %d (%v): CycleCount = %d, want %d", i, c.states, got, c.want)
		}
	}
}

func TestNormAndDist(t *testing.T) {
	if !almostEqual(Norm([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm(3,4) != 5")
	}
	if Norm(nil) != 0 {
		t.Error("Norm(nil) != 0")
	}
	if !almostEqual(Dist([]float64{1, 1}, []float64{4, 5}), 5, 1e-12) {
		t.Error("Dist != 5")
	}
	defer func() {
		if recover() == nil {
			t.Error("Dist should panic on dimension mismatch")
		}
	}()
	Dist([]float64{1}, []float64{1, 2})
}

func TestSamples1D(t *testing.T) {
	s := Samples1D(1, 0.5, []float64{7, 8, 9})
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if s[2].T != 2 || s[2].Pos[0] != 9 {
		t.Errorf("last sample = %+v", s[2])
	}
	c := s[0].Clone()
	c.Pos[0] = -1
	if s[0].Pos[0] == -1 {
		t.Error("Sample.Clone shares position")
	}
}

func TestWindowSharesBacking(t *testing.T) {
	s := regularSeq(6)
	w := s.Window(1, 4)
	if len(w) != 3 || w[0].T != 1 {
		t.Errorf("Window = %+v", w)
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
