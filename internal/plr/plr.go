// Package plr implements the piecewise linear representation (PLR) of
// structured time series used throughout the paper (Section 3.2).
//
// A PLR sequence is an ordered list of vertices. Each vertex carries
// the segment start time, an n-dimensional spatial position, and the
// breathing state of the line segment that *begins* at the vertex
// (EX, EOE, IN or IRR). A vertex both ends the previous line segment
// and starts the next one, so a sequence of n vertices describes n-1
// line segments.
package plr

import (
	"errors"
	"fmt"
	"math"
)

// State is the finite-state-model state of a line segment. The three
// regular breathing states follow the fixed order EX -> EOE -> IN -> EX;
// IRR is entered during irregular breathing (Figure 4 of the paper).
type State uint8

// The four states of the finite state model.
const (
	EX  State = iota // exhale: motion due to lung deflation
	EOE              // end-of-exhale: rest after lung deflation
	IN               // inhale: motion due to lung expansion
	IRR              // irregular breathing
)

// NumStates is the size of the state alphabet.
const NumStates = 4

// String returns the conventional name of the state.
func (s State) String() string {
	switch s {
	case EX:
		return "EX"
	case EOE:
		return "EOE"
	case IN:
		return "IN"
	case IRR:
		return "IRR"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Byte returns a compact one-byte code for the state, used in state
// signature strings ('E', 'O', 'I', 'R').
func (s State) Byte() byte {
	switch s {
	case EX:
		return 'E'
	case EOE:
		return 'O'
	case IN:
		return 'I'
	default:
		return 'R'
	}
}

// Valid reports whether s is one of the four defined states.
func (s State) Valid() bool { return s <= IRR }

// Regular reports whether s is one of the three regular breathing
// states.
func (s State) Regular() bool { return s == EX || s == EOE || s == IN }

// NextRegular returns the state that follows s in the regular breathing
// cycle EX -> EOE -> IN -> EX. For IRR it returns IRR.
func (s State) NextRegular() State {
	switch s {
	case EX:
		return EOE
	case EOE:
		return IN
	case IN:
		return EX
	default:
		return IRR
	}
}

// ParseState converts a state name ("EX", "EOE", "IN", "IRR") to a
// State.
func ParseState(name string) (State, error) {
	switch name {
	case "EX":
		return EX, nil
	case "EOE":
		return EOE, nil
	case "IN":
		return IN, nil
	case "IRR":
		return IRR, nil
	}
	return 0, fmt.Errorf("plr: unknown state %q", name)
}

// Vertex is the intersection of two adjacent line segments. T is both
// the start time of the segment beginning at this vertex and the end
// time of the previous segment. Pos is the n-dimensional tumor (or
// generic target) position at time T. State is the state of the
// segment that begins at this vertex; for the final vertex of a closed
// sequence the state describes the (possibly still open) trailing
// segment.
type Vertex struct {
	T     float64   `json:"t"`
	Pos   []float64 `json:"pos"`
	State State     `json:"state"`
}

// Clone returns a deep copy of the vertex.
func (v Vertex) Clone() Vertex {
	p := make([]float64, len(v.Pos))
	copy(p, v.Pos)
	return Vertex{T: v.T, Pos: p, State: v.State}
}

// Sequence is an ordered list of connected vertices: the PLR of one
// motion stream (or a window of one).
type Sequence []Vertex

// Errors returned by Validate.
var (
	ErrTimeOrder = errors.New("plr: vertex times not strictly increasing")
	ErrDims      = errors.New("plr: inconsistent position dimensionality")
	ErrState     = errors.New("plr: invalid state")
)

// Validate checks the structural invariants of a sequence: strictly
// increasing vertex times, consistent position dimensionality, and
// valid states.
func (s Sequence) Validate() error {
	for i := range s {
		if !s[i].State.Valid() {
			return fmt.Errorf("%w at vertex %d", ErrState, i)
		}
		if i == 0 {
			continue
		}
		if s[i].T <= s[i-1].T {
			return fmt.Errorf("%w at vertex %d (%v after %v)", ErrTimeOrder, i, s[i].T, s[i-1].T)
		}
		if len(s[i].Pos) != len(s[0].Pos) {
			return fmt.Errorf("%w at vertex %d", ErrDims, i)
		}
	}
	return nil
}

// Dims returns the spatial dimensionality of the sequence (0 when
// empty).
func (s Sequence) Dims() int {
	if len(s) == 0 {
		return 0
	}
	return len(s[0].Pos)
}

// NumSegments returns the number of line segments (len-1, floor 0).
func (s Sequence) NumSegments() int {
	if len(s) < 2 {
		return 0
	}
	return len(s) - 1
}

// Duration returns the time span covered by the sequence.
func (s Sequence) Duration() float64 {
	if len(s) < 2 {
		return 0
	}
	return s[len(s)-1].T - s[0].T
}

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	for i := range s {
		out[i] = s[i].Clone()
	}
	return out
}

// Window returns the subsequence s[start:end] (sharing backing data).
// It panics on out-of-range indices, like a slice expression.
func (s Sequence) Window(start, end int) Sequence { return s[start:end] }

// Segment describes one line segment of a sequence in the geometric
// terms the similarity measure consumes: its state, its duration
// (frequency component), and its displacement vector (amplitude
// component).
type Segment struct {
	State    State
	Duration float64
	Delta    []float64 // Pos[end] - Pos[start]
}

// Amplitude returns the Euclidean norm of the segment displacement.
func (g Segment) Amplitude() float64 { return Norm(g.Delta) }

// SegmentAt returns the i-th segment (between vertices i and i+1).
func (s Sequence) SegmentAt(i int) Segment {
	a, b := s[i], s[i+1]
	d := make([]float64, len(a.Pos))
	for k := range d {
		d[k] = b.Pos[k] - a.Pos[k]
	}
	return Segment{State: a.State, Duration: b.T - a.T, Delta: d}
}

// Segments returns all segments of the sequence.
func (s Sequence) Segments() []Segment {
	out := make([]Segment, s.NumSegments())
	for i := range out {
		out[i] = s.SegmentAt(i)
	}
	return out
}

// StateSignature returns the compact one-byte-per-segment state string
// of the sequence ("EOI" repeats for regular breathing). Only the
// first len(s)-1 states are segment states; by convention the final
// vertex's state is excluded because it describes the open trailing
// segment.
func (s Sequence) StateSignature() string {
	n := s.NumSegments()
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		b[i] = s[i].State.Byte()
	}
	return string(b)
}

// StateString returns the signature over *all* vertices including the
// trailing one; store indexing uses this form.
func (s Sequence) StateString() string {
	b := make([]byte, len(s))
	for i := range s {
		b[i] = s[i].State.Byte()
	}
	return string(b)
}

// PositionAt returns the interpolated position at time t. Times before
// the first vertex clamp to the first position; times after the last
// vertex clamp to the last position (the PLR has no information beyond
// its ends). The boolean result reports whether t was inside the
// covered range.
func (s Sequence) PositionAt(t float64) ([]float64, bool) {
	if len(s) == 0 {
		return nil, false
	}
	if t <= s[0].T {
		return append([]float64(nil), s[0].Pos...), t == s[0].T
	}
	last := s[len(s)-1]
	if t >= last.T {
		return append([]float64(nil), last.Pos...), t == last.T
	}
	// Binary search for the segment containing t.
	lo, hi := 0, len(s)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := s[lo], s[hi]
	frac := (t - a.T) / (b.T - a.T)
	out := make([]float64, len(a.Pos))
	for k := range out {
		out[k] = a.Pos[k] + frac*(b.Pos[k]-a.Pos[k])
	}
	return out, true
}

// IndexAtTime returns the index of the last vertex with T <= t, or -1
// when t precedes the sequence.
func (s Sequence) IndexAtTime(t float64) int {
	if len(s) == 0 || t < s[0].T {
		return -1
	}
	lo, hi := 0, len(s)-1
	if t >= s[hi].T {
		return hi
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// CycleCount returns the number of complete regular breathing cycles
// (EX->EOE->IN runs) in the sequence.
func (s Sequence) CycleCount() int {
	count := 0
	want := EX
	progressed := 0
	for i := 0; i < s.NumSegments(); i++ {
		st := s[i].State
		if st == IRR {
			want, progressed = EX, 0
			continue
		}
		if st == want {
			progressed++
			if progressed == 3 {
				count++
				progressed = 0
				want = EX
			} else {
				want = want.NextRegular()
			}
		} else if st == EX {
			// Restart a cycle from EX.
			want, progressed = EOE, 1
		} else {
			want, progressed = EX, 0
		}
	}
	return count
}

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist returns the Euclidean distance between equal-length vectors a
// and b. It panics on mismatched lengths (a programming error).
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("plr: dimension mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
