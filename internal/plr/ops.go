package plr

// Sequence post-processing utilities: state-run merging (IRR episodes
// and classification flicker can fragment a sequence into consecutive
// same-state segments that are semantically one) and time-windowing.

// MergeAdjacent returns a copy of the sequence with consecutive
// segments of the same state collapsed into one segment spanning their
// union. Vertex positions at the surviving boundaries are preserved.
// The final vertex is always kept.
func MergeAdjacent(s Sequence) Sequence {
	if len(s) <= 2 {
		return s.Clone()
	}
	out := Sequence{s[0].Clone()}
	for i := 1; i < len(s)-1; i++ {
		if s[i].State == out[len(out)-1].State {
			continue // interior vertex of a same-state run
		}
		out = append(out, s[i].Clone())
	}
	out = append(out, s[len(s)-1].Clone())
	return out
}

// SliceByTime returns the subsequence of vertices with T in [t0, t1].
// The result shares the receiver's backing array; it is empty when the
// window covers no vertex.
func (s Sequence) SliceByTime(t0, t1 float64) Sequence {
	if len(s) == 0 || t1 < t0 {
		return nil
	}
	lo := 0
	for lo < len(s) && s[lo].T < t0 {
		lo++
	}
	hi := len(s)
	for hi > lo && s[hi-1].T > t1 {
		hi--
	}
	return s[lo:hi]
}

// Resample returns the primary-dimension positions of the sequence at
// a fixed interval across its span — the inverse of segmentation, used
// for export and plotting.
func (s Sequence) Resample(interval float64, dim int) []Sample {
	if len(s) < 2 || interval <= 0 || dim < 0 || dim >= s.Dims() {
		return nil
	}
	var out []Sample
	for t := s[0].T; t <= s[len(s)-1].T; t += interval {
		pos, _ := s.PositionAt(t)
		out = append(out, Sample{T: t, Pos: pos})
	}
	return out
}
