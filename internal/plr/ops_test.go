package plr

import (
	"testing"
)

func TestMergeAdjacent(t *testing.T) {
	s := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 1, Pos: []float64{1}, State: IRR},
		{T: 2, Pos: []float64{2}, State: IRR},
		{T: 3, Pos: []float64{3}, State: IRR},
		{T: 4, Pos: []float64{4}, State: IN},
		{T: 5, Pos: []float64{5}, State: IN},
	}
	m := MergeAdjacent(s)
	// Runs: EX(0..1), IRR(1..4), IN(4..5, trailing vertex kept).
	want := "ERII"
	if m.StateString() != want {
		t.Fatalf("merged states = %q, want %q", m.StateString(), want)
	}
	if len(m) != 4 {
		t.Fatalf("merged length = %d, want 4", len(m))
	}
	if m[1].T != 1 || m[2].T != 4 {
		t.Errorf("boundaries moved: %+v", m)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Merging must not alias the input.
	m[0].Pos[0] = 99
	if s[0].Pos[0] == 99 {
		t.Error("MergeAdjacent shares storage")
	}
	// No-op on alternating states.
	alt := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 1, Pos: []float64{1}, State: EOE},
		{T: 2, Pos: []float64{2}, State: IN},
	}
	if got := MergeAdjacent(alt); len(got) != 3 {
		t.Errorf("alternating merged to %d vertices", len(got))
	}
	// Tiny sequences pass through.
	if got := MergeAdjacent(alt[:1]); len(got) != 1 {
		t.Error("singleton changed")
	}
}

func TestSliceByTime(t *testing.T) {
	var s Sequence
	for i := 0; i < 10; i++ {
		s = append(s, Vertex{T: float64(i), Pos: []float64{0}, State: EX})
	}
	cases := []struct {
		t0, t1    float64
		wantFirst float64
		wantLen   int
	}{
		{2, 5, 2, 4},
		{2.5, 5, 3, 3},
		{0, 9, 0, 10},
		{-5, 100, 0, 10},
		{8.5, 8.9, 0, 0},
		{5, 2, 0, 0}, // inverted window
	}
	for _, c := range cases {
		got := s.SliceByTime(c.t0, c.t1)
		if len(got) != c.wantLen {
			t.Errorf("SliceByTime(%v,%v) len = %d, want %d", c.t0, c.t1, len(got), c.wantLen)
			continue
		}
		if c.wantLen > 0 && got[0].T != c.wantFirst {
			t.Errorf("SliceByTime(%v,%v) first = %v, want %v", c.t0, c.t1, got[0].T, c.wantFirst)
		}
	}
	if (Sequence{}).SliceByTime(0, 1) != nil {
		t.Error("empty slice should be nil")
	}
}

func TestSequenceResample(t *testing.T) {
	s := Sequence{
		{T: 0, Pos: []float64{0}, State: EX},
		{T: 2, Pos: []float64{10}, State: EOE},
	}
	got := s.Resample(0.5, 0)
	if len(got) != 5 {
		t.Fatalf("resampled %d points, want 5", len(got))
	}
	if got[2].Pos[0] != 5 {
		t.Errorf("midpoint = %v, want 5", got[2].Pos[0])
	}
	if s.Resample(0, 0) != nil || s.Resample(0.5, 3) != nil || (Sequence{}).Resample(1, 0) != nil {
		t.Error("invalid resample inputs should return nil")
	}
}
