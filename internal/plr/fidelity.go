package plr

import (
	"fmt"
	"math"

	"stsmatch/internal/stats"
)

// The paper motivates the PLR with three claims (Section 3.1): it
// "reduces the size of the raw data, lowers the dimensionality of a
// subsequence, and filters out noise." This file quantifies those
// claims: compression factor, reconstruction error against the raw
// samples, and per-state segment statistics.

// Fidelity summarizes how well a PLR sequence represents the raw
// samples it was segmented from.
type Fidelity struct {
	RawSamples  int
	Vertices    int
	Compression float64 // raw samples per vertex
	RMSE        float64 // reconstruction error on the primary dim
	MaxAbsErr   float64
	MeanAbsErr  float64
}

// String renders the summary.
func (f Fidelity) String() string {
	return fmt.Sprintf("%d samples -> %d vertices (%.1fx), RMSE %.3f, mean|e| %.3f, max|e| %.3f",
		f.RawSamples, f.Vertices, f.Compression, f.RMSE, f.MeanAbsErr, f.MaxAbsErr)
}

// MeasureFidelity evaluates the PLR against the raw samples on the
// given dimension. Samples outside the sequence's time span are
// skipped (the PLR cannot represent what it has not seen).
func MeasureFidelity(seq Sequence, samples []Sample, dim int) (Fidelity, error) {
	if len(seq) < 2 {
		return Fidelity{}, fmt.Errorf("plr: sequence too short to measure")
	}
	if dim < 0 || dim >= seq.Dims() {
		return Fidelity{}, fmt.Errorf("plr: dimension %d out of range", dim)
	}
	var errW stats.Welford
	var sqSum float64
	n := 0
	for _, sm := range samples {
		if dim >= len(sm.Pos) {
			return Fidelity{}, fmt.Errorf("plr: sample has %d dims", len(sm.Pos))
		}
		pos, inside := seq.PositionAt(sm.T)
		if !inside {
			continue
		}
		e := pos[dim] - sm.Pos[dim]
		if e < 0 {
			e = -e
		}
		errW.Add(e)
		sqSum += e * e
		n++
	}
	if n == 0 {
		return Fidelity{}, fmt.Errorf("plr: no samples inside the sequence span")
	}
	f := Fidelity{
		RawSamples:  len(samples),
		Vertices:    len(seq),
		Compression: float64(len(samples)) / float64(len(seq)),
		MeanAbsErr:  errW.Mean(),
		MaxAbsErr:   errW.Max(),
	}
	f.RMSE = math.Sqrt(sqSum / float64(n))
	return f, nil
}

// StateStats summarizes the segments of one state within a sequence.
type StateStats struct {
	State    State
	Count    int
	Duration stats.Welford
	Amp      stats.Welford
}

// SummarizeStates returns per-state segment statistics, indexed by
// State. The paper's cycle-structure arguments (EX/EOE/IN durations,
// amplitudes) are all reads of this summary.
func SummarizeStates(seq Sequence) [NumStates]StateStats {
	var out [NumStates]StateStats
	for k := range out {
		out[k].State = State(k)
	}
	for i := 0; i < seq.NumSegments(); i++ {
		seg := seq.SegmentAt(i)
		s := &out[seg.State]
		s.Count++
		s.Duration.Add(seg.Duration)
		s.Amp.Add(seg.Amplitude())
	}
	return out
}

// IRRFraction returns the fraction of a sequence's time spent in
// irregular segments.
func IRRFraction(seq Sequence) float64 {
	total := seq.Duration()
	if total <= 0 {
		return 0
	}
	var irr float64
	for i := 0; i < seq.NumSegments(); i++ {
		if seq[i].State == IRR {
			irr += seq[i+1].T - seq[i].T
		}
	}
	return irr / total
}
