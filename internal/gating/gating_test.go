package gating

import (
	"math"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
)

func motion(t *testing.T) []plr.Sample {
	t.Helper()
	cfg := signal.DefaultRespiration()
	cfg.IrregularProb = 0
	cfg.SpikeProb = 0
	gen, err := signal.NewRespiration(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Generate(60)
}

func TestWindowContains(t *testing.T) {
	w := Window{Lo: -1, Hi: 2}
	for _, c := range []struct {
		y    float64
		want bool
	}{{-1, true}, {0, true}, {2, true}, {-1.01, false}, {2.1, false}} {
		if got := w.Contains(c.y); got != c.want {
			t.Errorf("Contains(%v) = %v", c.y, got)
		}
	}
}

func TestOracleGatingIsPerfect(t *testing.T) {
	truth := motion(t)
	w := Window{Lo: -2, Hi: 3} // around the exhale baseline
	r, err := SimulateGating(truth, w, OraclePositioner(truth, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy() != 1 {
		t.Errorf("oracle accuracy = %v, want 1", r.Accuracy())
	}
	if r.MissedOn != 0 {
		t.Errorf("oracle missed %d in-window samples", r.MissedOn)
	}
	if r.DutyCycle() <= 0 || r.DutyCycle() >= 1 {
		t.Errorf("duty cycle = %v, expected partial gating", r.DutyCycle())
	}
}

func TestLatencyDegradesGating(t *testing.T) {
	truth := motion(t)
	w := Window{Lo: -2, Hi: 3}
	oracle, err := SimulateGating(truth, w, OraclePositioner(truth, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := SimulateGating(truth, w, LastObservedPositioner(truth, 0.4, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.Accuracy() >= oracle.Accuracy() {
		t.Errorf("latency should reduce accuracy: %v vs %v", delayed.Accuracy(), oracle.Accuracy())
	}
	if delayed.TruePositive > delayed.BeamOn {
		t.Error("impossible counts")
	}
}

func TestTrackingErrors(t *testing.T) {
	truth := motion(t)
	perfect, err := SimulateTracking(truth, OraclePositioner(truth, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.MeanError > 1e-9 {
		t.Errorf("oracle tracking error = %v", perfect.MeanError)
	}
	delayed, err := SimulateTracking(truth, LastObservedPositioner(truth, 0.3, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.MeanError <= perfect.MeanError {
		t.Error("latency should increase tracking error")
	}
	if delayed.MaxError < delayed.MeanError {
		t.Error("max below mean")
	}
	// More latency, more error.
	worse, _ := SimulateTracking(truth, LastObservedPositioner(truth, 0.8, 0), 0)
	if worse.MeanError <= delayed.MeanError {
		t.Errorf("0.8s latency error %v should exceed 0.3s %v", worse.MeanError, delayed.MeanError)
	}
}

func TestLastObservedPositionerBounds(t *testing.T) {
	truth := []plr.Sample{
		{T: 1, Pos: []float64{10}},
		{T: 2, Pos: []float64{20}},
		{T: 3, Pos: []float64{30}},
	}
	p := LastObservedPositioner(truth, 0.5, 0)
	if _, ok := p.Estimate(1.2); ok {
		t.Error("estimate before first sample should be unavailable")
	}
	got, ok := p.Estimate(2.7) // t-latency = 2.2 -> sample at T=2
	if !ok || got != 20 {
		t.Errorf("Estimate(2.7) = %v, %v", got, ok)
	}
	got, ok = p.Estimate(100)
	if !ok || got != 30 {
		t.Errorf("Estimate(100) = %v, %v", got, ok)
	}
}

func TestSimulateErrors(t *testing.T) {
	truth := []plr.Sample{{T: 0, Pos: []float64{1}}}
	if _, err := SimulateGating(truth, Window{}, OraclePositioner(truth, 0), 2); err == nil {
		t.Error("bad dimension accepted")
	}
	if _, err := SimulateGating(truth, Window{}, OraclePositioner(truth, 0), -1); err == nil {
		t.Error("negative dimension accepted")
	}
	if _, err := SimulateTracking(truth, OraclePositioner(truth, 0), 5); err == nil {
		t.Error("bad dimension accepted")
	}
}

func TestResultStrings(t *testing.T) {
	g := GatingResult{Samples: 10, BeamOn: 5, TruePositive: 4, MissedOn: 1}
	if s := g.String(); len(s) == 0 {
		t.Error("empty gating string")
	}
	if g.DutyCycle() != 0.5 || math.Abs(g.Accuracy()-0.8) > 1e-12 {
		t.Errorf("duty=%v acc=%v", g.DutyCycle(), g.Accuracy())
	}
	if (GatingResult{}).DutyCycle() != 0 || (GatingResult{}).Accuracy() != 0 {
		t.Error("empty result ratios should be 0")
	}
	tr := TrackingResult{Samples: 3, Tracked: 2, MeanError: 0.5, MaxError: 1}
	if s := tr.String(); len(s) == 0 {
		t.Error("empty tracking string")
	}
}
