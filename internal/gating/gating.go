// Package gating simulates the clinical delivery strategies the paper
// motivates (Section 1, Figure 1): respiration-gated treatment, where
// the beam fires only while the target sits inside a gating window, and
// beam tracking, where the beam follows the (predicted) target. Both
// suffer from system latency — the delay between observing the target
// and acting — which is exactly what online prediction compensates.
//
// The simulator replays a raw motion stream against a delivery policy
// and scores it: duty cycle, in-window accuracy and mean tracking
// error. The gating example and the latency-compensation extension
// experiment are built on it.
package gating

import (
	"fmt"

	"stsmatch/internal/plr"
)

// Window is a gating window on the primary motion axis: the beam may
// fire while the target position lies inside [Lo, Hi].
type Window struct {
	Lo, Hi float64
}

// Contains reports whether y is inside the window.
func (w Window) Contains(y float64) bool { return y >= w.Lo && y <= w.Hi }

// Positioner supplies the position estimate the delivery system acts
// on at time t: ground truth (ideal), last observed (real, latency
// uncompensated), or a predictor (latency compensated).
type Positioner interface {
	// Estimate returns the estimated primary-axis position for
	// time t, and false when no estimate is available (the beam is
	// held off / tracking pauses).
	Estimate(t float64) (float64, bool)
}

// PositionerFunc adapts a function to the Positioner interface.
type PositionerFunc func(t float64) (float64, bool)

// Estimate implements Positioner.
func (f PositionerFunc) Estimate(t float64) (float64, bool) { return f(t) }

// GatingResult scores one simulated gated delivery.
type GatingResult struct {
	Samples int
	// BeamOn counts samples with the beam firing.
	BeamOn int
	// TruePositive counts beam-on samples where the target truly was
	// inside the window; beam-on accuracy = TruePositive/BeamOn.
	TruePositive int
	// MissedOn counts samples where the target was in the window but
	// the beam stayed off (lost duty cycle).
	MissedOn int
}

// DutyCycle returns the fraction of time the beam fired.
func (r GatingResult) DutyCycle() float64 {
	if r.Samples == 0 {
		return 0
	}
	return float64(r.BeamOn) / float64(r.Samples)
}

// Accuracy returns the fraction of beam-on time with the target truly
// in the window (1 means no healthy tissue was irradiated by gating
// error).
func (r GatingResult) Accuracy() float64 {
	if r.BeamOn == 0 {
		return 0
	}
	return float64(r.TruePositive) / float64(r.BeamOn)
}

// String summarizes the result.
func (r GatingResult) String() string {
	return fmt.Sprintf("duty=%.1f%% accuracy=%.1f%% missed=%d/%d",
		100*r.DutyCycle(), 100*r.Accuracy(), r.MissedOn, r.Samples)
}

// SimulateGating replays the true motion (primary dimension of the raw
// samples) against a gated delivery whose beam decision at each sample
// time is based on the positioner's estimate. latency is informational
// here — the positioner embodies it (a last-observed positioner returns
// the position from latency seconds ago; a predictive positioner
// forecasts the present).
func SimulateGating(truth []plr.Sample, w Window, pos Positioner, dim int) (GatingResult, error) {
	if dim < 0 {
		return GatingResult{}, fmt.Errorf("gating: negative dimension")
	}
	var r GatingResult
	for _, s := range truth {
		if dim >= len(s.Pos) {
			return GatingResult{}, fmt.Errorf("gating: sample has %d dims, need %d", len(s.Pos), dim+1)
		}
		r.Samples++
		est, ok := pos.Estimate(s.T)
		beamOn := ok && w.Contains(est)
		trueIn := w.Contains(s.Pos[dim])
		if beamOn {
			r.BeamOn++
			if trueIn {
				r.TruePositive++
			}
		} else if trueIn {
			r.MissedOn++
		}
	}
	return r, nil
}

// TrackingResult scores one simulated beam-tracking delivery.
type TrackingResult struct {
	Samples   int
	Tracked   int     // samples with an available estimate
	MeanError float64 // mean |estimate - truth| over tracked samples (mm)
	MaxError  float64
}

// String summarizes the result.
func (r TrackingResult) String() string {
	return fmt.Sprintf("tracked=%d/%d meanErr=%.2fmm maxErr=%.2fmm",
		r.Tracked, r.Samples, r.MeanError, r.MaxError)
}

// SimulateTracking replays the true motion against a beam-tracking
// delivery that aims at the positioner's estimate.
func SimulateTracking(truth []plr.Sample, pos Positioner, dim int) (TrackingResult, error) {
	var r TrackingResult
	var errSum float64
	for _, s := range truth {
		if dim < 0 || dim >= len(s.Pos) {
			return TrackingResult{}, fmt.Errorf("gating: dimension %d out of range", dim)
		}
		r.Samples++
		est, ok := pos.Estimate(s.T)
		if !ok {
			continue
		}
		r.Tracked++
		e := est - s.Pos[dim]
		if e < 0 {
			e = -e
		}
		errSum += e
		if e > r.MaxError {
			r.MaxError = e
		}
	}
	if r.Tracked > 0 {
		r.MeanError = errSum / float64(r.Tracked)
	}
	return r, nil
}

// LastObservedPositioner returns a positioner that reports the true
// position from latency seconds before the query time — the
// uncompensated "real treatment" of Figure 1. It assumes truth is
// time-ordered.
func LastObservedPositioner(truth []plr.Sample, latency float64, dim int) Positioner {
	return PositionerFunc(func(t float64) (float64, bool) {
		tq := t - latency
		if len(truth) == 0 || tq < truth[0].T {
			return 0, false
		}
		// Binary search for the last sample at or before tq.
		lo, hi := 0, len(truth)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if truth[mid].T <= tq {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return truth[lo].Pos[dim], true
	})
}

// OraclePositioner returns the ideal zero-latency positioner ("ideal
// treatment" in Figure 1): it knows the true position at every time.
func OraclePositioner(truth []plr.Sample, dim int) Positioner {
	return LastObservedPositioner(truth, 0, dim)
}
