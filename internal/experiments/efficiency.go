package experiments

import (
	"fmt"
	"runtime"
	"time"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/signal"
)

// Section 7.5 efficiency claims:
//
//   - "Our online segmentation runs with constant space and in linear
//     time with respect to raw data points" — per-point cost must stay
//     flat as streams grow.
//   - "Each subsequence similarity matching runs in linear time with
//     respect to segmented line segments" — per-query cost grows
//     linearly with database size.
//   - "The average time of one prediction is less than 30 millisecond"
//     including segmentation and matching.

// EfficiencyResult carries the measured scalings.
type EfficiencyResult struct {
	// Segmentation: ns/point at increasing stream lengths.
	SegPoints []int
	SegPerPt  []float64
	// Matching: µs/query at increasing database vertex counts.
	MatchVerts []int
	MatchPerQ  []float64
	// End-to-end prediction latency (ms) on the environment database.
	PredictMS float64
}

// Efficiency measures the three claims. Wall-clock measurements are
// averaged over enough repetitions to be stable at the millisecond
// scale; absolute values are hardware-dependent (the paper used a 2.66
// GHz Pentium 4), only the scaling shape is asserted.
func Efficiency(env *Env) (*EfficiencyResult, error) {
	res := &EfficiencyResult{}

	// 1. Segmentation cost per point vs stream length. Each length is
	// measured several times and the minimum kept — wall-clock
	// microbenchmarks are noisy (GC, scheduler) and the claim under
	// test is the algorithmic floor, not the jitter.
	for _, dur := range []float64{30, 60, 120, 240} {
		cfg := signal.DefaultRespiration()
		cfg.IrregularProb = 0.01
		gen, err := signal.NewRespiration(cfg, 1234)
		if err != nil {
			return nil, err
		}
		samples := gen.Generate(dur)
		runtime.GC() // keep collector pauses out of the timing
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			if _, err := fsm.SegmentAll(fsm.DefaultConfig(), samples); err != nil {
				return nil, err
			}
			perPt := float64(time.Since(start).Nanoseconds()) / float64(len(samples))
			if rep == 0 || perPt < best {
				best = perPt
			}
		}
		res.SegPoints = append(res.SegPoints, len(samples))
		res.SegPerPt = append(res.SegPerPt, best)
	}

	// 2. Matching cost per query vs database size: evaluate the same
	// query against growing prefixes of the patient list.
	patients := env.DB.Patients()
	m, err := core.NewMatcher(env.DB, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	qStream := patients[0].Streams[0]
	seq := qStream.Seq()
	qseq, _ := m.Params.DynamicQuery(seq[:len(seq)-2])
	q := core.NewQuery(qseq, qStream.PatientID, qStream.SessionID)

	for frac := 1; frac <= 4; frac++ {
		n := len(patients) * frac / 4
		if n < 1 {
			n = 1
		}
		restrict := map[string]bool{}
		verts := 0
		for _, p := range patients[:n] {
			restrict[p.Info.ID] = true
			for _, st := range p.Streams {
				verts += st.Len()
			}
		}
		best := 0.0
		for rep := 0; rep < 5; rep++ {
			const reps = 20
			start := time.Now()
			for r := 0; r < reps; r++ {
				if _, err := m.FindSimilar(q, restrict); err != nil {
					return nil, err
				}
			}
			perQ := float64(time.Since(start).Microseconds()) / reps
			if rep == 0 || perQ < best {
				best = perQ
			}
		}
		res.MatchVerts = append(res.MatchVerts, verts)
		res.MatchPerQ = append(res.MatchPerQ, best)
	}

	// 3. End-to-end prediction latency: dynamic query generation +
	// retrieval + prediction.
	const reps = 30
	start := time.Now()
	for r := 0; r < reps; r++ {
		qseq, _ := m.Params.DynamicQuery(seq[:len(seq)-2])
		qq := core.NewQuery(qseq, qStream.PatientID, qStream.SessionID)
		matches, err := m.FindSimilar(qq, nil)
		if err != nil {
			return nil, err
		}
		if _, err := m.PredictPosition(qq, matches, 0.2, 0); err != nil && err != core.ErrNoMatches {
			return nil, err
		}
	}
	res.PredictMS = float64(time.Since(start).Milliseconds()) / reps
	return res, nil
}

// Tables renders the efficiency report.
func (r *EfficiencyResult) Tables() []*Table {
	seg := &Table{
		Title:   "Section 7.5: segmentation cost per raw point",
		Header:  []string{"points", "ns/point"},
		Comment: "paper claim: constant per-point cost (linear total time, constant space)",
	}
	for i := range r.SegPoints {
		seg.AddRow(fmt.Sprintf("%d", r.SegPoints[i]), f1(r.SegPerPt[i]))
	}
	match := &Table{
		Title:   "Section 7.5: similarity matching cost per query",
		Header:  []string{"db vertices", "us/query"},
		Comment: "paper claim: linear in the number of stored line segments",
	}
	for i := range r.MatchVerts {
		match.AddRow(fmt.Sprintf("%d", r.MatchVerts[i]), f1(r.MatchPerQ[i]))
	}
	pred := &Table{
		Title:  "Section 7.5: end-to-end prediction latency",
		Header: []string{"metric", "value"},
		Comment: "paper claim: < 30 ms per prediction including segmentation and " +
			"matching (on 2005 hardware)",
	}
	pred.AddRow("mean prediction latency (ms)", f2(r.PredictMS))
	return []*Table{seg, match, pred}
}

// ShapeHolds checks the scaling claims: flat per-point segmentation
// cost (within noise), sub-linear-or-linear match growth, and the
// 30 ms latency bound.
func (r *EfficiencyResult) ShapeHolds() error {
	// Per-point cost at the longest stream must be within 4x of the
	// shortest (generous: wall-clock noise under shared CPUs; the
	// benchmark suite provides the precise measurement).
	first, last := r.SegPerPt[0], r.SegPerPt[len(r.SegPerPt)-1]
	if last > 4*first {
		return fmt.Errorf("segmentation per-point cost grew: %.0f -> %.0f ns", first, last)
	}
	// Matching: cost must grow no faster than ~linearly with vertices.
	v0, vN := float64(r.MatchVerts[0]), float64(r.MatchVerts[len(r.MatchVerts)-1])
	c0, cN := r.MatchPerQ[0], r.MatchPerQ[len(r.MatchPerQ)-1]
	if c0 > 0 && vN/v0 > 1 {
		growth := (cN / c0) / (vN / v0)
		if growth > 2.5 {
			return fmt.Errorf("matching grew superlinearly: cost x%.1f for size x%.1f", cN/c0, vN/v0)
		}
	}
	if r.PredictMS > 30 {
		return fmt.Errorf("prediction latency %.1f ms exceeds the 30 ms bound", r.PredictMS)
	}
	return nil
}
