package experiments

import (
	"fmt"

	"stsmatch/internal/core"
)

// Figure 9: effect of the distance threshold epsilon on prediction
// accuracy and on how often a prediction can be made at all (the
// tradeoff Section 7.2 discusses: "a smaller epsilon will result in
// fewer predictions").

// Fig9Result is the epsilon sweep.
type Fig9Result struct {
	Thresholds []float64
	MeanErrors []float64
	Coverage   []float64
}

// Fig9 sweeps the distance threshold.
func Fig9(env *Env) (*Fig9Result, error) {
	opts := core.DefaultEvalOptions()
	opts.QueriesPerStream = env.Scale.QueriesPerStream
	res := &Fig9Result{}
	for _, eps := range []float64{2, 3, 4, 6, 8, 12, 16} {
		p := core.DefaultParams()
		p.DistThreshold = eps
		m, err := core.NewMatcher(env.DB, p)
		if err != nil {
			return nil, err
		}
		er, err := m.Evaluate(opts)
		if err != nil {
			return nil, fmt.Errorf("fig9 eps=%v: %w", eps, err)
		}
		res.Thresholds = append(res.Thresholds, eps)
		res.MeanErrors = append(res.MeanErrors, er.MeanError())
		res.Coverage = append(res.Coverage, er.Coverage())
	}
	return res, nil
}

// Table renders Figure 9.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Figure 9: effect of distance threshold epsilon",
		Header: []string{"epsilon", "mean error (mm)", "coverage"},
		Comment: "paper shape: smaller epsilon -> better predictions but fewer of them " +
			"(tradeoff between number of predictions and accuracy)",
	}
	for i := range r.Thresholds {
		t.AddRow(f1(r.Thresholds[i]), f3(r.MeanErrors[i]), pct(r.Coverage[i]))
	}
	return t
}

// ShapeHolds checks the tradeoff: coverage must be non-decreasing in
// epsilon, and the tightest threshold must not be less accurate than
// the loosest.
func (r *Fig9Result) ShapeHolds() error {
	n := len(r.Thresholds)
	for i := 1; i < n; i++ {
		if r.Coverage[i] < r.Coverage[i-1]-1e-9 {
			return fmt.Errorf("coverage fell as epsilon grew: %.3f@%.1f -> %.3f@%.1f",
				r.Coverage[i-1], r.Thresholds[i-1], r.Coverage[i], r.Thresholds[i])
		}
	}
	if r.MeanErrors[0] > r.MeanErrors[n-1]*1.05 {
		return fmt.Errorf("tight threshold (%.3f) not more accurate than loose (%.3f)",
			r.MeanErrors[0], r.MeanErrors[n-1])
	}
	return nil
}
