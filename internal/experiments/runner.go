package experiments

import (
	"fmt"
	"io"
	"sort"

	"stsmatch/internal/core"
)

// Runner executes named experiments and writes their reports.
type Runner struct {
	Env *Env
	Out io.Writer
	// CheckShapes makes Run fail when a paper-shape assertion does not
	// hold on this run.
	CheckShapes bool
}

// expFunc runs one experiment and writes its tables, returning the
// shape-check error (nil when the shape holds or is not checkable).
type expFunc func(r *Runner) error

// registry maps experiment ids (as used by the -exp flag and
// DESIGN.md's per-experiment index) to implementations.
var registry = map[string]expFunc{
	"table1": func(r *Runner) error {
		fmt.Fprintln(r.Out, Table1())
		return nil
	},
	"fig6a": runFig6, "fig6b": runFig6, "fig6c": runFig6,
	"fig7a": func(r *Runner) error {
		res, err := Fig7a(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"fig7b": func(r *Runner) error {
		res, err := Fig7b(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"fig8a": func(r *Runner) error {
		res, err := Fig8a(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"fig8b": func(r *Runner) error {
		res, err := Fig8b(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"fig8c": func(r *Runner) error {
		res, err := Fig8c(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"fig9": func(r *Runner) error {
		res, err := Fig9(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"efficiency": func(r *Runner) error {
		res, err := Efficiency(r.Env)
		if err != nil {
			return err
		}
		for _, t := range res.Tables() {
			fmt.Fprintln(r.Out, t)
		}
		return r.check(res.ShapeHolds())
	},
	"ablate-state-order": func(r *Runner) error {
		res, err := AblateStateOrder(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return nil
	},
	"ablate-anchor": func(r *Runner) error {
		res, err := AblateAnchor(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return nil
	},
	"ablate-index": func(r *Runner) error {
		res, err := AblateIndex(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return nil
	},
	"dtw-cost": func(r *Runner) error {
		res, err := DTWCost(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return nil
	},
	"tuning": runTuning,
	"ext-predictors": func(r *Runner) error {
		res, err := Predictors(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"plr-fidelity": func(r *Runner) error {
		res, err := Fidelity(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"dims3": func(r *Runner) error {
		res, err := Dims3(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"ablate-segmenter": func(r *Runner) error {
		res, err := CompareSegmenters(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
	"ext-segment-forecast": func(r *Runner) error {
		res, err := SegmentForecasts(r.Env)
		if err != nil {
			return err
		}
		fmt.Fprintln(r.Out, res.Table())
		return r.check(res.ShapeHolds())
	},
}

// fig6 computes once and prints all three panels.
func runFig6(r *Runner) error {
	res, err := Fig6(r.Env)
	if err != nil {
		return err
	}
	for _, t := range res.Tables() {
		fmt.Fprintln(r.Out, t)
	}
	return r.check(res.ShapeHolds())
}

// runTuning demonstrates the automatic parameter tuning extension.
func runTuning(r *Runner) error {
	opts := core.DefaultEvalOptions()
	opts.Deltas = []float64{0.1, 0.3}
	opts.QueriesPerStream = max(2, r.Env.Scale.QueriesPerStream/2)
	res, err := core.Tune(r.Env.DB, core.DefaultParams(), core.DefaultTuneSpace(), opts)
	if err != nil {
		return err
	}
	t := &Table{
		Title:  "Extension: automatic parameter tuning (paper future work)",
		Header: []string{"parameter", "value", "mean error (mm)"},
		Comment: fmt.Sprintf("coordinate grid search; best error %.3f mm with WeightFreq=%.2f "+
			"VertexWeightBase=%.2f eps=%.1f theta=%.1f", res.BestError,
			res.Best.WeightFreq, res.Best.VertexWeightBase,
			res.Best.DistThreshold, res.Best.StabilityThreshold),
	}
	for _, step := range res.Trace {
		t.AddRow(step.Param, f2(step.Value), f3(step.Error))
	}
	fmt.Fprintln(r.Out, t)
	return nil
}

func (r *Runner) check(err error) error {
	if err == nil || !r.CheckShapes {
		if err != nil {
			fmt.Fprintf(r.Out, "! shape check failed (non-fatal): %v\n\n", err)
		}
		return nil
	}
	return err
}

// Names returns all experiment ids in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id ("all" runs everything; fig6a/b/c
// share one computation and are deduplicated under "all").
func (r *Runner) Run(name string) error {
	if name == "all" {
		done := map[string]bool{}
		for _, n := range Names() {
			fn := registry[n]
			if n == "fig6b" || n == "fig6c" {
				continue // fig6a prints all panels
			}
			if done[n] {
				continue
			}
			done[n] = true
			fmt.Fprintf(r.Out, "### %s\n", n)
			if err := fn(r); err != nil {
				return fmt.Errorf("%s: %w", n, err)
			}
		}
		return nil
	}
	fn, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have: %v)", name, Names())
	}
	return fn(r)
}
