// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 7) on the synthetic cohort, plus the
// ablations DESIGN.md calls out. Each experiment returns a structured
// result with a stable text rendering; cmd/experiments prints them and
// EXPERIMENTS.md records paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"strings"

	"stsmatch/internal/core"
	"stsmatch/internal/dataset"
	"stsmatch/internal/fsm"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
)

// Scale selects the workload size. The paper used >2M raw points from
// 42 patients; Full approaches that, Default is laptop-scale with the
// same structure, Quick exists for tests.
type Scale struct {
	Name             string
	Patients         int
	Sessions         int
	SessionDur       float64 // seconds
	QueriesPerStream int
	QueryStride      int // offline stream-distance stride
}

// Predefined scales.
var (
	QuickScale   = Scale{Name: "quick", Patients: 8, Sessions: 3, SessionDur: 75, QueriesPerStream: 6, QueryStride: 6}
	DefaultScale = Scale{Name: "default", Patients: 12, Sessions: 4, SessionDur: 90, QueriesPerStream: 10, QueryStride: 4}
	FullScale    = Scale{Name: "full", Patients: 42, Sessions: 8, SessionDur: 180, QueriesPerStream: 12, QueryStride: 8}
)

// ScaleByName resolves a -scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return QuickScale, nil
	case "default", "":
		return DefaultScale, nil
	case "full":
		return FullScale, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (quick|default|full)", name)
}

// Env is the shared experimental environment: the segmented database,
// the raw cohort (ground truth) and the scale it was built at.
type Env struct {
	Scale  Scale
	DB     *store.DB
	Cohort []signal.PatientData
}

// Setup builds the environment deterministically (seed 42).
func Setup(s Scale) (*Env, error) {
	cfg := signal.DefaultCohort()
	cfg.NumPatients = s.Patients
	cfg.SessionsPer = s.Sessions
	cfg.SessionDur = s.SessionDur
	db, cohort, err := dataset.Build(cfg, fsm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	db.EnableIndexes()
	return &Env{Scale: s, DB: db, Cohort: cohort}, nil
}

// Labels returns the ground-truth breathing-class labels in patient
// order (for scoring clusterings).
func (e *Env) Labels() []string {
	out := make([]string, len(e.Cohort))
	for i, pd := range e.Cohort {
		out[i] = pd.Profile.Class.String()
	}
	return out
}

// Table renders rows of (label, values...) with a header, right-aligned
// numeric columns, for uniform experiment output.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Comment string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	writeRow(dashes(widths))
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Comment != "" {
		fmt.Fprintf(&b, "# %s\n", t.Comment)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Table1 reports the parameter settings in use — the reproduction of
// the paper's Table 1.
func Table1() *Table {
	p := core.DefaultParams()
	t := &Table{
		Title:  "Table 1: Settings of Parameters",
		Header: []string{"parameter", "symbol", "value"},
		Comment: "identical to the paper's Table 1; vertex weights are the " +
			"linear ramp w_i in (w0, 1], source weights by relation",
	}
	t.AddRow("Weight for amplitude", "w_a", f2(p.WeightAmp))
	t.AddRow("Weight for frequency", "w_f", f2(p.WeightFreq))
	t.AddRow("Weight for vertexes", "w_0", f2(p.VertexWeightBase))
	t.AddRow("Weight for source streams (same session)", "w_s", f2(p.WeightSameSession))
	t.AddRow("Weight for source streams (same patient)", "w_s", f2(p.WeightSamePatient))
	t.AddRow("Weight for source streams (other patient)", "w_s", f2(p.WeightOtherPatient))
	t.AddRow("Subsequence distance threshold", "eps", f2(p.DistThreshold))
	t.AddRow("Stability threshold", "theta", f2(p.StabilityThreshold))
	t.AddRow("Min query length (cycles)", "lambda_min", fmt.Sprintf("%d", p.MinQueryCycles))
	t.AddRow("Max query length (cycles)", "lambda_max", fmt.Sprintf("%d", p.MaxQueryCycles))
	return t
}
