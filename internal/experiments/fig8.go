package experiments

import (
	"fmt"
	"time"

	"stsmatch/internal/cluster"
	"stsmatch/internal/core"
	"stsmatch/internal/stats"
)

// Figure 8: clustering applications — prediction with/without patient
// clustering, stream similarity structure, patient similarity
// structure.

// clusterConfig adapts the offline analysis configuration to the
// environment's scale.
func clusterConfig(env *Env) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.QueryStride = env.Scale.QueryStride
	return cfg
}

// Fig8aResult compares prediction error with and without
// cluster-restricted retrieval.
type Fig8aResult struct {
	Deltas       []float64
	WithCluster  []float64
	NoCluster    []float64
	K            int
	Silhouette   float64
	ClassPurity  float64
	AdjustedRand float64
	ClusterSizes []int
	CoverageWith float64
	CoverageNo   float64
	// Retrieval latency per evaluation point: the paper's third
	// clustering application restricts the search to the query
	// patient's cluster, which shrinks the candidate set.
	LatencyWithMS float64
	LatencyNoMS   float64
}

// Fig8a clusters patients by Definition 4 distance, then evaluates
// prediction with retrieval restricted to the query patient's cluster.
func Fig8a(env *Env) (*Fig8aResult, error) {
	patients := env.DB.Patients()
	dm, err := cluster.PatientDistanceMatrix(patients, clusterConfig(env))
	if err != nil {
		return nil, err
	}
	cl, sil, err := cluster.BestK(dm, 2, min(6, len(patients)-1), 42)
	if err != nil {
		return nil, err
	}
	// Membership lookup for restriction.
	clusterOf := map[string]int{}
	for i, p := range patients {
		clusterOf[p.Info.ID] = cl.Assign[i]
	}
	members := map[int]map[string]bool{}
	for i, p := range patients {
		c := cl.Assign[i]
		if members[c] == nil {
			members[c] = map[string]bool{}
		}
		members[c][p.Info.ID] = true
	}

	opts := core.DefaultEvalOptions()
	opts.QueriesPerStream = env.Scale.QueriesPerStream
	m, err := core.NewMatcher(env.DB, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	startNo := time.Now()
	noRes, err := m.Evaluate(opts)
	if err != nil {
		return nil, err
	}
	noElapsed := time.Since(startNo)
	withOpts := opts
	withOpts.RestrictFor = func(pid string) map[string]bool {
		return members[clusterOf[pid]]
	}
	startWith := time.Now()
	withRes, err := m.Evaluate(withOpts)
	if err != nil {
		return nil, err
	}
	withElapsed := time.Since(startWith)

	res := &Fig8aResult{
		Deltas:       opts.Deltas,
		K:            cl.K,
		Silhouette:   sil,
		ClassPurity:  cluster.Purity(cl, env.Labels()),
		AdjustedRand: cluster.AdjustedRandIndex(cl, env.Labels()),
		CoverageWith: withRes.Coverage(),
		CoverageNo:   noRes.Coverage(),
	}
	if n := withRes.TotalQueries; n > 0 {
		res.LatencyWithMS = withElapsed.Seconds() * 1000 / float64(n)
	}
	if n := noRes.TotalQueries; n > 0 {
		res.LatencyNoMS = noElapsed.Seconds() * 1000 / float64(n)
	}
	for _, g := range cl.Clusters() {
		res.ClusterSizes = append(res.ClusterSizes, len(g))
	}
	for i := range opts.Deltas {
		res.WithCluster = append(res.WithCluster, withRes.PerDelta[i].MeanError())
		res.NoCluster = append(res.NoCluster, noRes.PerDelta[i].MeanError())
	}
	return res, nil
}

// Table renders Figure 8a.
func (r *Fig8aResult) Table() *Table {
	t := &Table{
		Title:  "Figure 8a: prediction with vs without patient clustering",
		Header: []string{"delta(ms)", "with clustering", "without"},
		Comment: fmt.Sprintf("k=%d clusters (sizes %v), silhouette %.2f, class purity %.2f, "+
			"ARI %.2f; coverage with=%.2f without=%.2f; paper shape: clustering gives better accuracy",
			r.K, r.ClusterSizes, r.Silhouette, r.ClassPurity, r.AdjustedRand,
			r.CoverageWith, r.CoverageNo) + fmt.Sprintf("; retrieval %.2f ms/query "+
			"restricted vs %.2f unrestricted (third application of Section 5.3)",
			r.LatencyWithMS, r.LatencyNoMS),
	}
	for i, d := range r.Deltas {
		t.AddRow(fmt.Sprintf("%.0f", d*1000), f3(r.WithCluster[i]), f3(r.NoCluster[i]))
	}
	return t
}

// ShapeHolds checks that cluster-restricted prediction is at least as
// accurate on average.
func (r *Fig8aResult) ShapeHolds() error {
	mw, mn := stats.Mean(r.WithCluster), stats.Mean(r.NoCluster)
	if mw > mn*1.02 {
		return fmt.Errorf("clustering hurt prediction: %.3f vs %.3f", mw, mn)
	}
	return nil
}

// Fig8bResult summarizes stream-distance structure: distances grouped
// by source relation.
type Fig8bResult struct {
	SelfMean        float64
	SamePatientMean float64
	OtherMean       float64
	NumStreams      int
}

// Fig8b computes the full stream distance matrix over a capped number
// of streams and aggregates by relation.
func Fig8b(env *Env) (*Fig8bResult, error) {
	streams := env.DB.Streams()
	if len(streams) > 24 {
		streams = streams[:24] // bound the quadratic cost
	}
	dm, self, err := cluster.StreamDistanceMatrix(streams, clusterConfig(env))
	if err != nil {
		return nil, err
	}
	var selfW, sameW, otherW stats.Welford
	for _, d := range self {
		if d > 0 {
			selfW.Add(d)
		}
	}
	for i := 0; i < len(streams); i++ {
		for j := i + 1; j < len(streams); j++ {
			d := dm.At(i, j)
			if d == 0 {
				continue // incomparable pair
			}
			if streams[i].PatientID == streams[j].PatientID {
				sameW.Add(d)
			} else {
				otherW.Add(d)
			}
		}
	}
	return &Fig8bResult{
		SelfMean:        selfW.Mean(),
		SamePatientMean: sameW.Mean(),
		OtherMean:       otherW.Mean(),
		NumStreams:      len(streams),
	}, nil
}

// Table renders Figure 8b.
func (r *Fig8bResult) Table() *Table {
	t := &Table{
		Title:  "Figure 8b: stream distances by relation",
		Header: []string{"relation", "mean stream distance"},
		Comment: fmt.Sprintf("%d streams; paper shape: a stream is most similar to itself, "+
			"then to other streams of the same patient, least to other patients", r.NumStreams),
	}
	t.AddRow("self", f3(r.SelfMean))
	t.AddRow("same patient", f3(r.SamePatientMean))
	t.AddRow("other patient", f3(r.OtherMean))
	return t
}

// ShapeHolds checks the self < same-patient < other-patient ordering.
func (r *Fig8bResult) ShapeHolds() error {
	if !(r.SelfMean < r.SamePatientMean && r.SamePatientMean < r.OtherMean) {
		return fmt.Errorf("ordering violated: self=%.3f same=%.3f other=%.3f",
			r.SelfMean, r.SamePatientMean, r.OtherMean)
	}
	return nil
}

// Fig8cResult summarizes patient-distance structure.
type Fig8cResult struct {
	WithinMean    float64 // self patient distance (across own sessions)
	CrossMean     float64
	SameClassMean float64
	DiffClassMean float64
}

// Fig8c computes within- versus cross-patient distances and the
// class-correlation the clustering applications rely on.
func Fig8c(env *Env) (*Fig8cResult, error) {
	patients := env.DB.Patients()
	cfg := clusterConfig(env)
	var within, cross, sameClass, diffClass stats.Welford
	for i, p := range patients {
		d, err := cluster.PatientDistance(p, p, cfg)
		if err == nil {
			within.Add(d)
		}
		for j := i + 1; j < len(patients); j++ {
			q := patients[j]
			d, err := cluster.PatientDistance(p, q, cfg)
			if err != nil {
				continue
			}
			cross.Add(d)
			if p.Info.Class == q.Info.Class {
				sameClass.Add(d)
			} else {
				diffClass.Add(d)
			}
		}
	}
	return &Fig8cResult{
		WithinMean:    within.Mean(),
		CrossMean:     cross.Mean(),
		SameClassMean: sameClass.Mean(),
		DiffClassMean: diffClass.Mean(),
	}, nil
}

// Table renders Figure 8c.
func (r *Fig8cResult) Table() *Table {
	t := &Table{
		Title:  "Figure 8c: patient distances",
		Header: []string{"relation", "mean patient distance"},
		Comment: "paper shape: a patient's data is more similar to itself than to " +
			"other patients; class structure visible in same- vs different-class distances",
	}
	t.AddRow("within patient", f3(r.WithinMean))
	t.AddRow("cross patient", f3(r.CrossMean))
	t.AddRow("cross, same class", f3(r.SameClassMean))
	t.AddRow("cross, different class", f3(r.DiffClassMean))
	return t
}

// ShapeHolds checks within < cross and same-class < different-class.
func (r *Fig8cResult) ShapeHolds() error {
	if r.WithinMean >= r.CrossMean {
		return fmt.Errorf("within (%.3f) not below cross (%.3f)", r.WithinMean, r.CrossMean)
	}
	if r.SameClassMean >= r.DiffClassMean {
		return fmt.Errorf("same-class (%.3f) not below different-class (%.3f)",
			r.SameClassMean, r.DiffClassMean)
	}
	return nil
}
