package experiments

import (
	"fmt"

	"stsmatch/internal/baseline"
	"stsmatch/internal/core"
	"stsmatch/internal/stats"
)

// Figure 6: prediction quality under different weighting factors of the
// subsequence distance function, plus the weighted-Euclidean
// comparison the paper discusses in Section 7.2.

// WeightConfig is one curve of Figure 6.
type WeightConfig struct {
	Name   string
	Params core.Params
}

// weightConfigs builds the five configurations of Figure 6, from "no
// weighting" to "with all weighting".
func weightConfigs() []WeightConfig {
	mk := func(name string, ampFreq, stream, vertex bool) WeightConfig {
		p := core.DefaultParams()
		p.UseAmpFreqWeights = ampFreq
		p.UseStreamWeights = stream
		p.UseVertexWeights = vertex
		return WeightConfig{Name: name, Params: p}
	}
	return []WeightConfig{
		mk("no-weighting", false, false, false),
		mk("wa,wf", true, false, false),
		mk("wa,wf+ws", true, true, false),
		mk("wa,wf+wi", true, false, true),
		mk("all-weighting", true, true, true),
	}
}

// Fig6Result carries the three panels of Figure 6.
type Fig6Result struct {
	Deltas  []float64
	Configs []string
	// Errors[c][d] is the mean prediction error of config c at
	// horizon Deltas[d] (Figure 6a).
	Errors [][]float64
	// Reduction[c] is the error reduction of config c relative to
	// no-weighting, averaged over horizons (Figure 6b).
	Reduction []float64
	// Average[c] is the horizon-averaged error (Figure 6c).
	Average []float64
	// EuclideanAvg is the horizon-averaged error of the weighted
	// Euclidean baseline (Section 7.2's comparison).
	EuclideanAvg float64
}

// Fig6 runs the weighting-factor study.
func Fig6(env *Env) (*Fig6Result, error) {
	configs := weightConfigs()
	opts := core.DefaultEvalOptions()
	opts.QueriesPerStream = env.Scale.QueriesPerStream

	res := &Fig6Result{Deltas: opts.Deltas}
	for _, wc := range configs {
		m, err := core.NewMatcher(env.DB, wc.Params)
		if err != nil {
			return nil, err
		}
		er, err := m.Evaluate(opts)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", wc.Name, err)
		}
		res.Configs = append(res.Configs, wc.Name)
		curve := make([]float64, len(er.PerDelta))
		for i, d := range er.PerDelta {
			curve[i] = d.MeanError()
		}
		res.Errors = append(res.Errors, curve)
		res.Average = append(res.Average, er.MeanError())
	}
	base := res.Average[0]
	for _, avg := range res.Average {
		red := 0.0
		if base > 0 {
			red = (base - avg) / base
		}
		res.Reduction = append(res.Reduction, red)
	}

	// Weighted Euclidean baseline, evaluated with the same replay
	// protocol.
	euc, err := evaluateBaseline(env, baseline.MethodWeightedEuclidean, opts)
	if err != nil {
		return nil, err
	}
	res.EuclideanAvg = euc
	return res, nil
}

// evaluateBaseline replays the evaluation protocol with a baseline
// matcher and returns the horizon-averaged mean error.
func evaluateBaseline(env *Env, method baseline.Method, opts core.EvalOptions) (float64, error) {
	bm := baseline.NewMatcher(env.DB, method)
	params := core.DefaultParams()
	var errAcc stats.Welford
	maxDelta := 0.0
	for _, d := range opts.Deltas {
		if d > maxDelta {
			maxDelta = d
		}
	}
	for _, st := range env.DB.Streams() {
		seq := st.Seq()
		minCut := params.MaxQueryVertices() + 2
		if minCut >= len(seq)-2 {
			continue
		}
		for qi := 0; qi < opts.QueriesPerStream; qi++ {
			cut := minCut + (len(seq)-1-minCut)*qi/opts.QueriesPerStream
			prefix := seq[:cut+1]
			now := prefix[len(prefix)-1].T
			if _, inside := seq.PositionAt(now + maxDelta); !inside {
				continue
			}
			qseq, _ := params.DynamicQuery(prefix)
			q := core.NewQuery(qseq, st.PatientID, st.SessionID)
			matches, err := bm.FindSimilar(q)
			if err != nil {
				return 0, err
			}
			for _, delta := range opts.Deltas {
				pred, err := bm.PredictPosition(q, matches, delta, 0)
				if err != nil {
					continue
				}
				truth, inside := seq.PositionAt(now + delta)
				if !inside {
					continue
				}
				e := pred.Pos[0] - truth[0]
				if e < 0 {
					e = -e
				}
				errAcc.Add(e)
			}
		}
	}
	return errAcc.Mean(), nil
}

// Tables renders the three panels.
func (r *Fig6Result) Tables() []*Table {
	a := &Table{
		Title:  "Figure 6a: mean prediction error (mm) vs horizon",
		Header: append([]string{"delta(ms)"}, r.Configs...),
		Comment: "paper shape: no-weighting worst, partial weighting better, " +
			"all-weighting best at every horizon",
	}
	for di, d := range r.Deltas {
		row := []string{fmt.Sprintf("%.0f", d*1000)}
		for ci := range r.Configs {
			row = append(row, f3(r.Errors[ci][di]))
		}
		a.AddRow(row...)
	}

	b := &Table{
		Title:   "Figure 6b: error reduction vs no-weighting",
		Header:  []string{"config", "reduction"},
		Comment: "positive = better than unweighted distance",
	}
	for ci, name := range r.Configs {
		b.AddRow(name, pct(r.Reduction[ci]))
	}

	c := &Table{
		Title:  "Figure 6c: error averaged over all horizons (mm)",
		Header: []string{"config", "mean error"},
		Comment: fmt.Sprintf("weighted-Euclidean baseline (same protocol): %.3f mm — "+
			"the model-based weighted distance must beat it", r.EuclideanAvg),
	}
	for ci, name := range r.Configs {
		c.AddRow(name, f3(r.Average[ci]))
	}
	return []*Table{a, b, c}
}

// ShapeHolds verifies the paper's qualitative claims on this run:
// all-weighting is the best configuration and beats both no-weighting
// and the weighted Euclidean baseline.
func (r *Fig6Result) ShapeHolds() error {
	last := len(r.Average) - 1
	if r.Average[last] >= r.Average[0] {
		return fmt.Errorf("all-weighting (%.3f) not better than no-weighting (%.3f)",
			r.Average[last], r.Average[0])
	}
	if r.Average[last] >= r.EuclideanAvg {
		return fmt.Errorf("all-weighting (%.3f) not better than weighted Euclidean (%.3f)",
			r.Average[last], r.EuclideanAvg)
	}
	return nil
}
