package experiments

import (
	"fmt"

	"stsmatch/internal/core"
)

// Figure 7: dynamic query subsequence generation versus fixed lengths,
// and the relationship between the stability threshold and the query
// length.

// Fig7aResult compares prediction error for fixed-length queries (2..9
// breathing cycles) against the dynamic method.
type Fig7aResult struct {
	FixedCycles []int
	FixedErrors []float64
	FixedCov    []float64
	DynamicErr  float64
	DynamicCov  float64
	DynamicLen  float64 // mean dynamic query length in cycles
}

// Fig7a runs the comparison.
func Fig7a(env *Env) (*Fig7aResult, error) {
	opts := core.DefaultEvalOptions()
	opts.QueriesPerStream = env.Scale.QueriesPerStream
	m, err := core.NewMatcher(env.DB, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	res := &Fig7aResult{}
	for cycles := 2; cycles <= 9; cycles++ {
		o := opts
		o.FixedCycles = cycles
		er, err := m.Evaluate(o)
		if err != nil {
			return nil, fmt.Errorf("fig7a fixed=%d: %w", cycles, err)
		}
		res.FixedCycles = append(res.FixedCycles, cycles)
		res.FixedErrors = append(res.FixedErrors, er.MeanError())
		res.FixedCov = append(res.FixedCov, er.Coverage())
	}
	er, err := m.Evaluate(opts)
	if err != nil {
		return nil, err
	}
	res.DynamicErr = er.MeanError()
	res.DynamicCov = er.Coverage()
	res.DynamicLen = (er.QueryLen.Mean() - 1) / 3
	return res, nil
}

// Table renders Figure 7a.
func (r *Fig7aResult) Table() *Table {
	t := &Table{
		Title:  "Figure 7a: prediction error, fixed vs dynamic query lengths",
		Header: []string{"query", "mean error (mm)", "coverage"},
		Comment: fmt.Sprintf("dynamic mean length: %.1f cycles; paper shape: "+
			"dynamic has overall better performance than any fixed length; error and "+
			"coverage must be read together — a strategy that fails to match simply "+
			"makes no prediction there", r.DynamicLen),
	}
	for i, c := range r.FixedCycles {
		t.AddRow(fmt.Sprintf("fixed-%d", c), f3(r.FixedErrors[i]), pct(r.FixedCov[i]))
	}
	t.AddRow("dynamic", f3(r.DynamicErr), pct(r.DynamicCov))
	return t
}

// ShapeHolds checks the paper's claim of "overall better performance".
// Error and coverage trade off across fixed lengths (long queries are
// accurate but often fail to match; short ones always match but
// predict worse), so the sound reading is twofold: (1) no fixed length
// Pareto-dominates the dynamic strategy — none is simultaneously more
// accurate and more available; and (2) among fixed lengths with
// comparable-or-better coverage (the fair competitors), dynamic has
// the lower mean error.
func (r *Fig7aResult) ShapeHolds() error {
	var comparableSum float64
	comparable := 0
	for i := range r.FixedErrors {
		if r.FixedErrors[i] <= r.DynamicErr*1.01 && r.FixedCov[i] >= r.DynamicCov*0.99 {
			return fmt.Errorf("fixed-%d dominates dynamic: err %.3f<=%.3f cov %.2f>=%.2f",
				r.FixedCycles[i], r.FixedErrors[i], r.DynamicErr, r.FixedCov[i], r.DynamicCov)
		}
		if r.FixedCov[i] >= r.DynamicCov-0.03 {
			comparableSum += r.FixedErrors[i]
			comparable++
		}
	}
	if comparable > 0 && r.DynamicErr >= comparableSum/float64(comparable) {
		return fmt.Errorf("dynamic (%.3f) not better than comparable-coverage fixed strategies (%.3f)",
			r.DynamicErr, comparableSum/float64(comparable))
	}
	return nil
}

// Fig7bResult relates the stability threshold to the resulting dynamic
// query length.
type Fig7bResult struct {
	Thresholds []float64
	MeanCycles []float64
	StableFrac []float64
}

// Fig7b sweeps the stability threshold. Lambda bounds are [2, 9]
// cycles as in the paper's experiment.
func Fig7b(env *Env) (*Fig7bResult, error) {
	res := &Fig7bResult{}
	opts := core.DefaultEvalOptions()
	opts.Deltas = []float64{0.1}
	opts.QueriesPerStream = env.Scale.QueriesPerStream
	for _, theta := range []float64{1, 2, 3, 4, 6, 8, 10, 14} {
		p := core.DefaultParams()
		p.StabilityThreshold = theta
		p.MinQueryCycles = 2
		p.MaxQueryCycles = 9
		m, err := core.NewMatcher(env.DB, p)
		if err != nil {
			return nil, err
		}
		er, err := m.Evaluate(opts)
		if err != nil {
			return nil, fmt.Errorf("fig7b theta=%v: %w", theta, err)
		}
		res.Thresholds = append(res.Thresholds, theta)
		res.MeanCycles = append(res.MeanCycles, (er.QueryLen.Mean()-1)/3)
		frac := 0.0
		if er.TotalQueries > 0 {
			frac = float64(er.StableQueries) / float64(er.TotalQueries)
		}
		res.StableFrac = append(res.StableFrac, frac)
	}
	return res, nil
}

// Table renders Figure 7b.
func (r *Fig7bResult) Table() *Table {
	t := &Table{
		Title:  "Figure 7b: dynamic query length vs stability threshold",
		Header: []string{"theta", "mean length (cycles)", "stable strips"},
		Comment: "paper shape: lengths increase with a smaller stability " +
			"threshold; typical lengths 3-5 cycles",
	}
	for i := range r.Thresholds {
		t.AddRow(f1(r.Thresholds[i]), f2(r.MeanCycles[i]), pct(r.StableFrac[i]))
	}
	return t
}

// ShapeHolds checks monotonicity: query length must not increase as the
// threshold grows.
func (r *Fig7bResult) ShapeHolds() error {
	for i := 1; i < len(r.MeanCycles); i++ {
		if r.MeanCycles[i] > r.MeanCycles[i-1]+0.05 {
			return fmt.Errorf("length grew with theta: %.2f@%.1f -> %.2f@%.1f",
				r.MeanCycles[i-1], r.Thresholds[i-1], r.MeanCycles[i], r.Thresholds[i])
		}
	}
	if first, last := r.MeanCycles[0], r.MeanCycles[len(r.MeanCycles)-1]; first <= last {
		return fmt.Errorf("no length response to theta: %.2f -> %.2f", first, last)
	}
	return nil
}
