package experiments

import (
	"fmt"
	"time"

	"stsmatch/internal/baseline"
	"stsmatch/internal/core"
	"stsmatch/internal/dataset"
	"stsmatch/internal/fsm"
	"stsmatch/internal/store"
)

// Ablations beyond the paper's figures, as indexed in DESIGN.md §6:
// the state-order precondition, the n-gram candidate index, the
// prediction anchor, and the DTW cost argument.

// AblationResult is a generic named-variant comparison.
type AblationResult struct {
	Title    string
	Variants []string
	Errors   []float64 // mean prediction error per variant (mm), NaN if n/a
	Notes    []string
}

// Table renders an ablation.
func (r *AblationResult) Table() *Table {
	t := &Table{Title: r.Title, Header: []string{"variant", "mean error (mm)", "notes"}}
	for i := range r.Variants {
		note := ""
		if i < len(r.Notes) {
			note = r.Notes[i]
		}
		t.AddRow(r.Variants[i], f3(r.Errors[i]), note)
	}
	return t
}

// AblateStateOrder compares matching with and without condition 1 of
// Definition 2 — the claim that comparing subsequences with different
// meanings (an inhale against an exhale) hurts prediction.
func AblateStateOrder(env *Env) (*AblationResult, error) {
	opts := core.DefaultEvalOptions()
	opts.QueriesPerStream = env.Scale.QueriesPerStream

	res := &AblationResult{Title: "Ablation: state-order precondition (Definition 2, condition 1)"}
	for _, on := range []bool{true, false} {
		p := core.DefaultParams()
		p.RequireStateOrder = on
		m, err := core.NewMatcher(env.DB, p)
		if err != nil {
			return nil, err
		}
		er, err := m.Evaluate(opts)
		if err != nil {
			return nil, err
		}
		name := "state order required"
		if !on {
			name = "state order ignored"
		}
		res.Variants = append(res.Variants, name)
		res.Errors = append(res.Errors, er.MeanError())
		res.Notes = append(res.Notes, fmt.Sprintf("coverage %.2f", er.Coverage()))
	}
	return res, nil
}

// AblateAnchor compares the two prediction anchors (see DESIGN.md §3):
// the paper-faithful first-vertex anchor versus the last-vertex anchor
// used by default.
func AblateAnchor(env *Env) (*AblationResult, error) {
	opts := core.DefaultEvalOptions()
	opts.QueriesPerStream = env.Scale.QueriesPerStream
	res := &AblationResult{Title: "Ablation: prediction anchor (Section 4.3 formula reading)"}
	for _, end := range []bool{true, false} {
		p := core.DefaultParams()
		p.AnchorAtQueryEnd = end
		m, err := core.NewMatcher(env.DB, p)
		if err != nil {
			return nil, err
		}
		er, err := m.Evaluate(opts)
		if err != nil {
			return nil, err
		}
		name := "last vertex (default)"
		if !end {
			name = "first vertex (paper formula)"
		}
		res.Variants = append(res.Variants, name)
		res.Errors = append(res.Errors, er.MeanError())
		res.Notes = append(res.Notes, fmt.Sprintf("33ms err %.3f / 330ms err %.3f",
			er.PerDelta[0].MeanError(), er.PerDelta[len(er.PerDelta)-1].MeanError()))
	}
	return res, nil
}

// IndexAblationResult compares candidate generation with and without
// the n-gram index.
type IndexAblationResult struct {
	ScanUS    float64
	IndexedUS float64
	Queries   int
}

// AblateIndex measures FindSimilar latency with the stream indexes
// disabled (fresh scan streams) versus enabled.
func AblateIndex(env *Env) (*IndexAblationResult, error) {
	m, err := core.NewMatcher(env.DB, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	// Build queries from a few streams.
	var queries []core.Query
	for _, st := range env.DB.Streams() {
		seq := st.Seq()
		if len(seq) < 30 {
			continue
		}
		qseq, _ := m.Params.DynamicQuery(seq[:len(seq)-2])
		queries = append(queries, core.NewQuery(qseq, st.PatientID, st.SessionID))
		if len(queries) >= 8 {
			break
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("ablate-index: no usable queries")
	}

	run := func() (float64, error) {
		start := time.Now()
		const reps = 5
		for r := 0; r < reps; r++ {
			for _, q := range queries {
				if _, err := m.FindSimilar(q, nil); err != nil {
					return 0, err
				}
			}
		}
		return float64(time.Since(start).Microseconds()) / float64(reps*len(queries)), nil
	}

	// Indexes are enabled by Setup; measure, then rebuild streams
	// without indexes by... indexes cannot be disabled in place, so
	// measure the scan path on fresh copies.
	indexedUS, err := run()
	if err != nil {
		return nil, err
	}
	scanDB, err := cloneWithoutIndexes(env)
	if err != nil {
		return nil, err
	}
	mScan, err := core.NewMatcher(scanDB, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	var scanQueries []core.Query
	for _, st := range scanDB.Streams() {
		seq := st.Seq()
		if len(seq) < 30 {
			continue
		}
		qseq, _ := mScan.Params.DynamicQuery(seq[:len(seq)-2])
		scanQueries = append(scanQueries, core.NewQuery(qseq, st.PatientID, st.SessionID))
		if len(scanQueries) >= 8 {
			break
		}
	}
	start := time.Now()
	const reps = 5
	for r := 0; r < reps; r++ {
		for _, q := range scanQueries {
			if _, err := mScan.FindSimilar(q, nil); err != nil {
				return nil, err
			}
		}
	}
	scanUS := float64(time.Since(start).Microseconds()) / float64(reps*len(scanQueries))

	return &IndexAblationResult{ScanUS: scanUS, IndexedUS: indexedUS, Queries: len(queries)}, nil
}

// cloneWithoutIndexes rebuilds the environment database from the raw
// cohort without enabling the n-gram indexes, so FindWindows takes the
// scan path.
func cloneWithoutIndexes(env *Env) (*store.DB, error) {
	return dataset.FromCohort(env.Cohort, fsm.DefaultConfig())
}

// Table renders the index ablation.
func (r *IndexAblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: n-gram candidate index vs state-string scan",
		Header: []string{"candidate generation", "us/query"},
		Comment: fmt.Sprintf("%d queries; both paths must return identical windows "+
			"(asserted by store tests); speedup %.1fx — note the 4-letter state "+
			"alphabet makes breathing signatures highly repetitive, so gram postings "+
			"are long and the index only pays off on large or diverse databases",
			r.Queries, r.ScanUS/max(r.IndexedUS, 1)),
	}
	t.AddRow("linear scan", f1(r.ScanUS))
	t.AddRow("n-gram index", f1(r.IndexedUS))
	return t
}

// DTWCostResult reproduces the Section 7.2 justification for not using
// DTW online: its per-query cost against the same database.
type DTWCostResult struct {
	CoreUS float64
	DTWUS  float64
}

// DTWCost measures one retrieval with the core measure versus DTW.
func DTWCost(env *Env) (*DTWCostResult, error) {
	m, err := core.NewMatcher(env.DB, core.DefaultParams())
	if err != nil {
		return nil, err
	}
	st := env.DB.Streams()[0]
	seq := st.Seq()
	qseq, _ := m.Params.DynamicQuery(seq[:len(seq)-2])
	q := core.NewQuery(qseq, st.PatientID, st.SessionID)

	start := time.Now()
	const reps = 10
	for r := 0; r < reps; r++ {
		if _, err := m.FindSimilar(q, nil); err != nil {
			return nil, err
		}
	}
	coreUS := float64(time.Since(start).Microseconds()) / reps

	bm := baseline.NewMatcher(env.DB, baseline.MethodDTW)
	start = time.Now()
	for r := 0; r < reps; r++ {
		if _, err := bm.FindSimilar(q); err != nil {
			return nil, err
		}
	}
	dtwUS := float64(time.Since(start).Microseconds()) / reps
	return &DTWCostResult{CoreUS: coreUS, DTWUS: dtwUS}, nil
}

// Table renders the DTW comparison.
func (r *DTWCostResult) Table() *Table {
	t := &Table{
		Title:  "Section 7.2: retrieval cost, weighted PLR distance vs DTW",
		Header: []string{"method", "us/query"},
		Comment: fmt.Sprintf("paper: \"the running time of DTW is very computationally "+
			"expensive, which makes it not suitable for real-time prediction\"; measured ratio %.0fx",
			r.DTWUS/max(r.CoreUS, 1)),
	}
	t.AddRow("weighted PLR distance", f1(r.CoreUS))
	t.AddRow("DTW (banded)", f1(r.DTWUS))
	return t
}
