package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickEnv builds the shared quick-scale environment once per test
// binary; the experiments only read from it.
var quickEnvCache *Env

func quickEnv(t *testing.T) *Env {
	t.Helper()
	if quickEnvCache == nil {
		env, err := Setup(QuickScale)
		if err != nil {
			t.Fatal(err)
		}
		quickEnvCache = env
	}
	return quickEnvCache
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "default", "full", ""} {
		if _, err := ScaleByName(name); err != nil {
			t.Errorf("ScaleByName(%q): %v", name, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestSetupBuildsEnvironment(t *testing.T) {
	env := quickEnv(t)
	if env.DB.NumPatients() != QuickScale.Patients {
		t.Errorf("patients = %d", env.DB.NumPatients())
	}
	labels := env.Labels()
	if len(labels) != QuickScale.Patients {
		t.Errorf("labels = %d", len(labels))
	}
	for _, l := range labels {
		if l == "" {
			t.Error("empty label")
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"w_a", "1.00", "theta", "6.00", "lambda_min"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestFig6ShapeOnQuickScale(t *testing.T) {
	res, err := Fig6(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) != 5 || len(res.Errors) != 5 {
		t.Fatalf("configs = %d", len(res.Configs))
	}
	if err := res.ShapeHolds(); err != nil {
		t.Errorf("Figure 6 shape: %v", err)
	}
	if len(res.Tables()) != 3 {
		t.Error("expected three panels")
	}
}

func TestFig7ShapesOnQuickScale(t *testing.T) {
	a, err := Fig7a(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// The full paper-shape assertion is enforced at default scale by
	// `cmd/experiments -check`; the quick cohort is too small for it
	// to be statistically stable, so assert the scale-robust core of
	// it here: no fixed length Pareto-dominates the dynamic strategy
	// by a clear margin.
	for i := range a.FixedErrors {
		if a.FixedErrors[i] < a.DynamicErr*0.95 && a.FixedCov[i] > a.DynamicCov*1.05 {
			t.Errorf("fixed-%d clearly dominates dynamic: err %.3f vs %.3f, cov %.2f vs %.2f",
				a.FixedCycles[i], a.FixedErrors[i], a.DynamicErr, a.FixedCov[i], a.DynamicCov)
		}
	}
	b, err := Fig7b(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ShapeHolds(); err != nil {
		t.Errorf("Figure 7b shape: %v", err)
	}
}

func TestFig8ShapesOnQuickScale(t *testing.T) {
	env := quickEnv(t)
	a, err := Fig8a(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.ShapeHolds(); err != nil {
		t.Errorf("Figure 8a shape: %v", err)
	}
	b, err := Fig8b(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.ShapeHolds(); err != nil {
		t.Errorf("Figure 8b shape: %v", err)
	}
	c, err := Fig8c(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ShapeHolds(); err != nil {
		t.Errorf("Figure 8c shape: %v", err)
	}
}

func TestFig9ShapeOnQuickScale(t *testing.T) {
	res, err := Fig9(quickEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ShapeHolds(); err != nil {
		t.Errorf("Figure 9 shape: %v", err)
	}
}

func TestAblationsRun(t *testing.T) {
	env := quickEnv(t)
	so, err := AblateStateOrder(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(so.Variants) != 2 {
		t.Error("state-order ablation variants")
	}
	// The precondition must help (strictly lower error with it on).
	if so.Errors[0] >= so.Errors[1] {
		t.Errorf("state order did not help: %v vs %v", so.Errors[0], so.Errors[1])
	}
	an, err := AblateAnchor(env)
	if err != nil {
		t.Fatal(err)
	}
	if an.Errors[0] >= an.Errors[1] {
		t.Errorf("last-vertex anchor should win: %v vs %v", an.Errors[0], an.Errors[1])
	}
}

func TestExtensionExperiments(t *testing.T) {
	env := quickEnv(t)
	fid, err := Fidelity(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := fid.ShapeHolds(); err != nil {
		t.Errorf("PLR fidelity shape: %v", err)
	}
	d3, err := Dims3(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := d3.ShapeHolds(); err != nil {
		t.Errorf("3-D shape: %v", err)
	}
	pr, err := Predictors(env)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Evaluated == 0 {
		t.Fatal("predictor comparison evaluated nothing")
	}
	// At quick scale only the robust half of the shape is asserted:
	// subsequence matching beats the no-predictor baseline at the
	// longest horizon.
	last := len(pr.Deltas) - 1
	if pr.Subsequence[last] >= pr.LastObserved[last] {
		t.Errorf("subsequence (%.3f) not better than last-observed (%.3f)",
			pr.Subsequence[last], pr.LastObserved[last])
	}
}

func TestSegmenterComparisonAndForecast(t *testing.T) {
	env := quickEnv(t)
	sc, err := CompareSegmenters(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.ShapeHolds(); err != nil {
		t.Errorf("segmenter comparison shape: %v", err)
	}
	fc, err := SegmentForecasts(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.ShapeHolds(); err != nil {
		t.Errorf("forecast shape: %v", err)
	}
}

func TestRunnerAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full runner sweep is slow for -short")
	}
	var out bytes.Buffer
	r := &Runner{Env: quickEnv(t), Out: &out}
	if err := r.Run("all"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 6a", "Figure 7b", "Figure 9", "Table 1", "Section 7.5"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("runner output missing %q", want)
		}
	}
	if err := r.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Errorf("only %d experiments registered", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Error("names not sorted")
		}
	}
}
