package experiments

import (
	"fmt"
	"strings"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
	"stsmatch/internal/stats"
)

// Second batch of extension experiments: the FSM-guided segmenter
// versus a generic bottom-up PLA, and next-segment (frequency /
// amplitude) forecasting.

// SegmenterCompareResult contrasts the online FSM segmenter with the
// offline bottom-up PLA at an equal segment budget.
type SegmenterCompareResult struct {
	Segments     int
	FSMRMSE      float64
	BottomUpRMSE float64
	FSMIRRFrac   float64 // fraction of time marked IRR by the FSM
	EpisodeFrac  float64 // ground-truth fraction of time in episodes
	BUHasIRR     bool
}

// CompareSegmenters runs both algorithms over a fresh session with
// irregular episodes.
func CompareSegmenters(env *Env) (*SegmenterCompareResult, error) {
	cfg := signal.DefaultRespiration()
	cfg.IrregularProb = 0.05
	gen, err := signal.NewRespiration(cfg, 4242)
	if err != nil {
		return nil, err
	}
	samples := gen.Generate(180)
	episodes := gen.Episodes()

	fsmSeq, err := fsm.SegmentAll(fsm.DefaultConfig(), samples)
	if err != nil {
		return nil, err
	}
	buSeq, err := fsm.BottomUpSegment(fsm.BottomUpConfig{
		TargetSegments: fsmSeq.NumSegments(),
		PrimaryDim:     0,
		SlopeThreshold: fsm.DefaultConfig().SlopeThreshold,
	}, samples)
	if err != nil {
		return nil, err
	}
	fsmFid, err := plr.MeasureFidelity(fsmSeq, samples, 0)
	if err != nil {
		return nil, err
	}
	buFid, err := plr.MeasureFidelity(buSeq, samples, 0)
	if err != nil {
		return nil, err
	}
	var episodeTime float64
	for _, ep := range episodes {
		episodeTime += ep.End - ep.Start
	}
	return &SegmenterCompareResult{
		Segments:     fsmSeq.NumSegments(),
		FSMRMSE:      fsmFid.RMSE,
		BottomUpRMSE: buFid.RMSE,
		FSMIRRFrac:   plr.IRRFraction(fsmSeq),
		EpisodeFrac:  episodeTime / fsmSeq.Duration(),
		BUHasIRR:     strings.Contains(buSeq.StateString(), "R"),
	}, nil
}

// Table renders the comparison.
func (r *SegmenterCompareResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: FSM-guided online segmenter vs generic bottom-up PLA",
		Header: []string{"property", "FSM online", "bottom-up PLA"},
		Comment: "equal segment budgets; the generic PLA needs the whole signal up " +
			"front and carries no irregularity semantics — the model layer, not the " +
			"fitting, is what the paper's pipeline depends on",
	}
	t.AddRow("segments", fmt.Sprintf("%d", r.Segments), fmt.Sprintf("%d", r.Segments))
	t.AddRow("reconstruction RMSE (mm)", f3(r.FSMRMSE), f3(r.BottomUpRMSE))
	t.AddRow("online / streaming", "yes", "no")
	irr := "none"
	if r.BUHasIRR {
		irr = "spurious"
	}
	t.AddRow("IRR time flagged", pct(r.FSMIRRFrac), irr)
	t.AddRow("ground-truth episode time", pct(r.EpisodeFrac), pct(r.EpisodeFrac))
	return t
}

// ShapeHolds asserts the contrast: comparable reconstruction, and only
// the FSM marks irregularity (in rough agreement with ground truth).
func (r *SegmenterCompareResult) ShapeHolds() error {
	if r.FSMRMSE > r.BottomUpRMSE*2 {
		return fmt.Errorf("FSM reconstruction (%.3f) far worse than bottom-up (%.3f)",
			r.FSMRMSE, r.BottomUpRMSE)
	}
	if r.BUHasIRR {
		return fmt.Errorf("generic PLA unexpectedly produced IRR states")
	}
	if r.EpisodeFrac > 0.02 && r.FSMIRRFrac < r.EpisodeFrac/2 {
		return fmt.Errorf("FSM flagged %.1f%% IRR vs %.1f%% true episode time",
			100*r.FSMIRRFrac, 100*r.EpisodeFrac)
	}
	return nil
}

// ForecastResult evaluates next-segment duration and amplitude
// forecasting ("Future frequency, amplitude or position can be
// predicted", Section 4.3).
type ForecastResult struct {
	Forecasts    int
	DurErr       stats.Welford // |predicted - actual| next-segment duration (s)
	AmpErr       stats.Welford // |predicted - actual| next-segment amplitude (mm)
	StateHits    int           // forecast state == actual state
	MeanDuration float64       // actual mean segment duration, for context
	MeanAmp      float64
	// Naive baseline: predict the previous same-state segment's values.
	NaiveDurErr stats.Welford
	NaiveAmpErr stats.Welford
}

// SegmentForecasts replays each stream and forecasts the segment after
// each query from retrieved matches.
func SegmentForecasts(env *Env) (*ForecastResult, error) {
	params := core.DefaultParams()
	m, err := core.NewMatcher(env.DB, params)
	if err != nil {
		return nil, err
	}
	res := &ForecastResult{}
	var durAll, ampAll stats.Welford
	for _, st := range env.DB.Streams() {
		seq := st.Seq()
		minCut := params.MaxQueryVertices() + 2
		if minCut >= len(seq)-3 {
			continue
		}
		for qi := 0; qi < env.Scale.QueriesPerStream; qi++ {
			cut := minCut + (len(seq)-3-minCut)*qi/env.Scale.QueriesPerStream
			// Query ends exactly at vertex `cut`; the actual next
			// segment is seq[cut] -> seq[cut+1].
			prefix := seq[:cut+1]
			qseq, _ := params.DynamicQuery(prefix)
			q := core.NewQuery(qseq, st.PatientID, st.SessionID)
			matches, err := m.FindSimilar(q, nil)
			if err != nil {
				return nil, err
			}
			fc, err := m.PredictNextSegment(q, matches, 0)
			if err != nil {
				continue
			}
			actual := seq.SegmentAt(cut)
			res.Forecasts++
			res.DurErr.Add(abs(fc.Duration - actual.Duration))
			res.AmpErr.Add(abs(fc.Amplitude - actual.Amplitude()))
			if fc.State == actual.State {
				res.StateHits++
			}
			durAll.Add(actual.Duration)
			ampAll.Add(actual.Amplitude())

			// Naive baseline: the most recent same-state segment in
			// the query history.
			for i := cut - 1; i >= 0; i-- {
				if seq[i].State == actual.State && i+1 <= cut {
					prev := seq.SegmentAt(i)
					res.NaiveDurErr.Add(abs(prev.Duration - actual.Duration))
					res.NaiveAmpErr.Add(abs(prev.Amplitude() - actual.Amplitude()))
					break
				}
			}
		}
	}
	res.MeanDuration = durAll.Mean()
	res.MeanAmp = ampAll.Mean()
	return res, nil
}

// Table renders the forecast evaluation.
func (r *ForecastResult) Table() *Table {
	stateAcc := 0.0
	if r.Forecasts > 0 {
		stateAcc = float64(r.StateHits) / float64(r.Forecasts)
	}
	t := &Table{
		Title:  "Extension: next-segment forecasting (frequency & amplitude)",
		Header: []string{"quantity", "matched-history error", "naive last-cycle error"},
		Comment: fmt.Sprintf("%d forecasts; actual segments average %.2f s / %.1f mm; "+
			"FSA state predicted correctly %.0f%% of the time",
			r.Forecasts, r.MeanDuration, r.MeanAmp, 100*stateAcc),
	}
	t.AddRow("duration (s)", f3(r.DurErr.Mean()), f3(r.NaiveDurErr.Mean()))
	t.AddRow("amplitude (mm)", f3(r.AmpErr.Mean()), f3(r.NaiveAmpErr.Mean()))
	return t
}

// ShapeHolds asserts the forecasts carry signal: errors well below the
// segment scale and state accuracy far above chance.
func (r *ForecastResult) ShapeHolds() error {
	if r.Forecasts == 0 {
		return fmt.Errorf("no forecasts made")
	}
	if r.DurErr.Mean() > r.MeanDuration/2 {
		return fmt.Errorf("duration error %.3f too large vs mean %.3f",
			r.DurErr.Mean(), r.MeanDuration)
	}
	if r.AmpErr.Mean() > r.MeanAmp/2 {
		return fmt.Errorf("amplitude error %.3f too large vs mean %.3f",
			r.AmpErr.Mean(), r.MeanAmp)
	}
	if float64(r.StateHits) < 0.7*float64(r.Forecasts) {
		return fmt.Errorf("state accuracy %d/%d below 70%%", r.StateHits, r.Forecasts)
	}
	return nil
}
