package experiments

import (
	"fmt"

	"stsmatch/internal/baseline"
	"stsmatch/internal/core"
	"stsmatch/internal/dataset"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
	"stsmatch/internal/stats"
)

// Extension experiments beyond the paper's own figures: the clinical
// predictor comparison its citation [24] performs, the PLR fidelity
// tradeoff behind the Section 3.1 claims, and a 3-D motion check.

// PredictorsResult compares prediction strategies across horizons on
// raw ground truth (not PLR truth — all strategies are scored against
// the actual future sample, the clinically relevant metric).
type PredictorsResult struct {
	Deltas       []float64
	LastObserved []float64
	Linear       []float64
	Subsequence  []float64
	Evaluated    int
}

// Predictors replays each session: at evenly spaced times t it asks
// each strategy for the position at t+delta and scores it against the
// true raw sample there.
func Predictors(env *Env) (*PredictorsResult, error) {
	deltas := []float64{0.1, 0.2, 0.3, 0.5}
	res := &PredictorsResult{Deltas: deltas}
	lastErr := make([]stats.Welford, len(deltas))
	linErr := make([]stats.Welford, len(deltas))
	subErr := make([]stats.Welford, len(deltas))

	params := core.DefaultParams()
	for pi, pd := range env.Cohort {
		if pi >= 6 {
			break // a subset keeps the replay fast; errors are averaged anyway
		}
		patient := env.DB.Patient(pd.Profile.ID)
		for si, sess := range pd.Sessions {
			if si >= 1 {
				break
			}
			stream := patient.Streams[si]
			samples := sess.Samples
			truth := func(t float64) (float64, bool) {
				// Nearest raw sample at or after t.
				lo, hi := 0, len(samples)-1
				if t > samples[hi].T || t < samples[0].T {
					return 0, false
				}
				for lo < hi {
					mid := (lo + hi) / 2
					if samples[mid].T < t {
						lo = mid + 1
					} else {
						hi = mid
					}
				}
				return samples[lo].Pos[0], true
			}

			ex, err := baseline.NewExtrapolator(0.4, 0)
			if err != nil {
				return nil, err
			}
			m, err := core.NewMatcher(env.DB, params)
			if err != nil {
				return nil, err
			}
			seq := stream.Seq()

			// Feed the extrapolator online; every ~2 s, evaluate all
			// strategies at each horizon.
			nextEval := 30.0 // leave warm-up history
			for _, sm := range samples {
				if err := ex.Observe(sm); err != nil {
					return nil, err
				}
				if sm.T < nextEval {
					continue
				}
				nextEval = sm.T + 2

				// Subsequence matching uses the PLR history up to now.
				cut := seq.IndexAtTime(sm.T)
				if cut < params.MinQueryVertices() {
					continue
				}
				qseq, _ := params.DynamicQuery(seq[:cut+1])
				q := core.NewQuery(qseq, stream.PatientID, stream.SessionID)
				matches, err := m.FindSimilar(q, nil)
				if err != nil {
					return nil, err
				}

				for di, d := range deltas {
					want, ok := truth(sm.T + d)
					if !ok {
						continue
					}
					res.Evaluated++
					lastErr[di].Add(abs(sm.Pos[0] - want))
					if p, ok := ex.Predict(sm.T + d); ok {
						linErr[di].Add(abs(p - want))
					}
					// Anchor at the newest raw observation and add the
					// matched displacement (the deployable estimator;
					// see examples/gating).
					if disp, err := m.PredictDisplacement(q, matches, sm.T-q.Now, sm.T+d-q.Now, 0); err == nil {
						subErr[di].Add(abs(sm.Pos[0] + disp[0] - want))
					}
				}
			}
		}
	}
	for di := range deltas {
		res.LastObserved = append(res.LastObserved, lastErr[di].Mean())
		res.Linear = append(res.Linear, linErr[di].Mean())
		res.Subsequence = append(res.Subsequence, subErr[di].Mean())
	}
	return res, nil
}

// Table renders the predictor comparison.
func (r *PredictorsResult) Table() *Table {
	t := &Table{
		Title:  "Extension: predictor comparison on raw ground truth",
		Header: []string{"delta(ms)", "last observed", "linear extrap", "subseq matching"},
		Comment: "the clinical comparison of the paper's citation [24]; expected shape: " +
			"linear wins at very short horizons, subsequence matching wins as the " +
			"horizon approaches a breathing phase",
	}
	for i, d := range r.Deltas {
		t.AddRow(fmt.Sprintf("%.0f", d*1000),
			f3(r.LastObserved[i]), f3(r.Linear[i]), f3(r.Subsequence[i]))
	}
	return t
}

// ShapeHolds asserts that subsequence matching beats the no-predictor
// baseline at every horizon and beats linear extrapolation at the
// longest horizon (where the linear model diverges).
func (r *PredictorsResult) ShapeHolds() error {
	for i := range r.Deltas {
		if r.Subsequence[i] >= r.LastObserved[i] {
			return fmt.Errorf("subsequence (%.3f) not better than last-observed (%.3f) at %.0f ms",
				r.Subsequence[i], r.LastObserved[i], r.Deltas[i]*1000)
		}
	}
	last := len(r.Deltas) - 1
	if r.Subsequence[last] >= r.Linear[last] {
		return fmt.Errorf("subsequence (%.3f) not better than linear (%.3f) at %.0f ms",
			r.Subsequence[last], r.Linear[last], r.Deltas[last]*1000)
	}
	return nil
}

// FidelityResult quantifies the three Section 3.1 claims for the PLR:
// it "reduces the size of the raw data" (compression), "lowers the
// dimensionality of a subsequence" (segments per cycle), and "filters
// out noise" (reconstruction error bounded well below the motion
// amplitude, cardiac ripple and spikes absent from the representation).
type FidelityResult struct {
	Compression  float64
	SegsPerCycle float64
	RMSE         float64
	MaxAbsErr    float64
	Amplitude    float64
	RMSEFraction float64 // RMSE / amplitude
	CleanRMSE    float64 // PLR vs the noise-free signal
}

// Fidelity measures PLR fidelity on a noisy 120 s session and on its
// noise-free twin (same seed, same cycle structure, no cardiac or
// measurement noise), so the noise-filtering claim is directly
// testable: the PLR of the noisy signal should approximate the *clean*
// signal about as well as the noisy one — the ripple it drops was
// noise.
func Fidelity(env *Env) (*FidelityResult, error) {
	cfg := signal.DefaultRespiration()
	cfg.IrregularProb = 0
	cfg.SpikeProb = 0 // spikes draw extra randomness; keep twins aligned
	noisy, err := signal.NewRespiration(cfg, 777)
	if err != nil {
		return nil, err
	}
	cleanCfg := cfg
	cleanCfg.NoiseStd = 0
	cleanCfg.CardiacAmp = 0
	clean, err := signal.NewRespiration(cleanCfg, 777)
	if err != nil {
		return nil, err
	}
	noisySamples := noisy.Generate(120)
	cleanSamples := clean.Generate(120)

	seq, err := fsm.SegmentAll(fsm.DefaultConfig(), noisySamples)
	if err != nil {
		return nil, err
	}
	fNoisy, err := plr.MeasureFidelity(seq, noisySamples, 0)
	if err != nil {
		return nil, err
	}
	fClean, err := plr.MeasureFidelity(seq, cleanSamples, 0)
	if err != nil {
		return nil, err
	}
	cycles := seq.CycleCount()
	if cycles == 0 {
		return nil, fmt.Errorf("plr-fidelity: no cycles detected")
	}
	return &FidelityResult{
		Compression:  fNoisy.Compression,
		SegsPerCycle: float64(seq.NumSegments()) / float64(cycles),
		RMSE:         fNoisy.RMSE,
		MaxAbsErr:    fNoisy.MaxAbsErr,
		Amplitude:    cfg.Amplitude,
		RMSEFraction: fNoisy.RMSE / cfg.Amplitude,
		CleanRMSE:    fClean.RMSE,
	}, nil
}

// Table renders the fidelity report.
func (r *FidelityResult) Table() *Table {
	t := &Table{
		Title:  "Extension: PLR fidelity (Section 3.1 claims quantified)",
		Header: []string{"claim", "measure", "value"},
		Comment: "a 3-segment-per-cycle PLR deliberately keeps structure, not waveform " +
			"detail; reconstruction error is within-segment curvature, far below the " +
			"motion amplitude, and the PLR tracks the clean signal as well as the noisy one",
	}
	t.AddRow("reduces size", "compression", f1(r.Compression)+"x")
	t.AddRow("lowers dimensionality", "segments/cycle", f2(r.SegsPerCycle))
	t.AddRow("filters noise", "RMSE vs noisy signal (mm)", f3(r.RMSE))
	t.AddRow("", "RMSE vs clean signal (mm)", f3(r.CleanRMSE))
	t.AddRow("", "RMSE / amplitude", pct(r.RMSEFraction))
	t.AddRow("", "max |error| (mm)", f3(r.MaxAbsErr))
	return t
}

// ShapeHolds asserts the three claims.
func (r *FidelityResult) ShapeHolds() error {
	if r.Compression < 15 {
		return fmt.Errorf("compression %.1fx too low", r.Compression)
	}
	if r.SegsPerCycle < 2.2 || r.SegsPerCycle > 4.5 {
		return fmt.Errorf("segments per cycle %.2f outside the 3-state model's range", r.SegsPerCycle)
	}
	if r.RMSEFraction > 0.3 {
		return fmt.Errorf("RMSE is %.0f%% of the amplitude", 100*r.RMSEFraction)
	}
	// Noise filtering: the PLR should sit about as close to the clean
	// signal as to the noisy one (the dropped ripple was noise, not
	// structure).
	if r.CleanRMSE > r.RMSE*1.1 {
		return fmt.Errorf("PLR fits noise better than signal: clean %.3f vs noisy %.3f",
			r.CleanRMSE, r.RMSE)
	}
	return nil
}

// Dims3Result verifies that the pipeline is dimension-agnostic: a 3-D
// cohort predicts all three axes with SI the dominant error axis.
type Dims3Result struct {
	MeanErr [3]float64
	Queries int
}

// Dims3 evaluates prediction on a small 3-D cohort.
func Dims3(env *Env) (*Dims3Result, error) {
	cfg := signal.DefaultCohort()
	cfg.NumPatients = 4
	cfg.SessionsPer = 2
	cfg.SessionDur = 60
	cfg.Dims = 3
	db, _, err := dataset.Build(cfg, fsm.DefaultConfig())
	if err != nil {
		return nil, err
	}
	params := core.DefaultParams()
	m, err := core.NewMatcher(db, params)
	if err != nil {
		return nil, err
	}
	res := &Dims3Result{}
	var errW [3]stats.Welford
	for _, st := range db.Streams() {
		seq := st.Seq()
		minCut := params.MaxQueryVertices() + 2
		if minCut >= len(seq)-2 {
			continue
		}
		for qi := 0; qi < 6; qi++ {
			cut := minCut + (len(seq)-1-minCut)*qi/6
			prefix := seq[:cut+1]
			qseq, _ := params.DynamicQuery(prefix)
			q := core.NewQuery(qseq, st.PatientID, st.SessionID)
			pred, err := m.Predict(q, 0.2, nil)
			if err != nil {
				continue
			}
			truth, inside := seq.PositionAt(q.Now + 0.2)
			if !inside {
				continue
			}
			res.Queries++
			for k := 0; k < 3; k++ {
				errW[k].Add(abs(pred.Pos[k] - truth[k]))
			}
		}
	}
	for k := 0; k < 3; k++ {
		res.MeanErr[k] = errW[k].Mean()
	}
	return res, nil
}

// Table renders the 3-D check.
func (r *Dims3Result) Table() *Table {
	t := &Table{
		Title:  "Extension: 3-D motion prediction (SI / AP / LR)",
		Header: []string{"axis", "mean error (mm)"},
		Comment: fmt.Sprintf("%d predictions; the paper's model \"can work for any "+
			"n-dimensional space\" — secondary axes carry attenuated motion and "+
			"attenuated error", r.Queries),
	}
	for k, name := range []string{"SI", "AP", "LR"} {
		t.AddRow(name, f3(r.MeanErr[k]))
	}
	return t
}

// ShapeHolds asserts predictions exist and axis errors follow the
// attenuation ordering (SI >= AP >= LR, loosely).
func (r *Dims3Result) ShapeHolds() error {
	if r.Queries == 0 {
		return fmt.Errorf("no 3-D predictions made")
	}
	if r.MeanErr[1] > r.MeanErr[0]*1.2 || r.MeanErr[2] > r.MeanErr[1]*1.2 {
		return fmt.Errorf("axis error ordering violated: %v", r.MeanErr)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
