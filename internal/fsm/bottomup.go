package fsm

import (
	"fmt"
	"math"

	"stsmatch/internal/plr"
)

// BottomUp is the classic generic piecewise-linear-approximation
// algorithm from the segmentation literature the paper's Section 2
// surveys: start from the finest segmentation and greedily merge the
// pair of adjacent segments whose merge costs the least, until the
// target segment count is reached. It knows nothing about breathing
// states — which is exactly its value here: contrasting it with the
// FSM-guided online segmenter isolates what the *model* contributes
// (state labels, online operation, IRR detection) versus what any PLA
// gives (compression).
//
// States on the output are assigned post hoc from the fitted slopes
// with the same thresholds the online segmenter uses, so the result is
// a valid plr.Sequence and can flow through the matching machinery for
// comparison experiments.

// BottomUpConfig controls the offline bottom-up segmentation.
type BottomUpConfig struct {
	// TargetSegments is the number of line segments to stop at.
	TargetSegments int
	// PrimaryDim is the dimension fitted and classified.
	PrimaryDim int
	// SlopeThreshold classifies the post-hoc states (units/s), like
	// Config.SlopeThreshold.
	SlopeThreshold float64
}

// BottomUpSegment runs the offline algorithm over a full sample slice.
func BottomUpSegment(cfg BottomUpConfig, samples []plr.Sample) (plr.Sequence, error) {
	n := len(samples)
	if cfg.TargetSegments < 1 {
		return nil, fmt.Errorf("fsm: TargetSegments must be >= 1, got %d", cfg.TargetSegments)
	}
	if cfg.SlopeThreshold <= 0 {
		return nil, fmt.Errorf("fsm: SlopeThreshold must be positive")
	}
	if n < 2 {
		return nil, fmt.Errorf("fsm: need at least 2 samples, got %d", n)
	}
	for i, sm := range samples {
		if cfg.PrimaryDim < 0 || cfg.PrimaryDim >= len(sm.Pos) {
			return nil, fmt.Errorf("fsm: sample %d lacks dimension %d", i, cfg.PrimaryDim)
		}
		if i > 0 && sm.T <= samples[i-1].T {
			return nil, fmt.Errorf("fsm: non-increasing sample time at %d", i)
		}
	}

	// Segment boundaries as sample indices; start with pairs.
	bounds := make([]int, 0, n/2+2)
	for i := 0; i < n-1; i += 2 {
		bounds = append(bounds, i)
	}
	bounds = append(bounds, n-1)

	cost := func(lo, hi int) float64 {
		// SSE of the chord from samples[lo] to samples[hi].
		a, b := samples[lo], samples[hi]
		dt := b.T - a.T
		var sse float64
		for i := lo + 1; i < hi; i++ {
			frac := (samples[i].T - a.T) / dt
			fit := a.Pos[cfg.PrimaryDim] + frac*(b.Pos[cfg.PrimaryDim]-a.Pos[cfg.PrimaryDim])
			d := samples[i].Pos[cfg.PrimaryDim] - fit
			sse += d * d
		}
		return sse
	}

	// Greedy merging. O(k^2) with k = initial segment count; offline
	// comparison use only, so clarity beats a heap here.
	for len(bounds)-1 > cfg.TargetSegments {
		bestIdx, bestCost := -1, math.Inf(1)
		for i := 1; i < len(bounds)-1; i++ {
			c := cost(bounds[i-1], bounds[i+1])
			if c < bestCost {
				bestIdx, bestCost = i, c
			}
		}
		bounds = append(bounds[:bestIdx], bounds[bestIdx+1:]...)
	}

	// Emit vertices with post-hoc state classification by chord slope.
	classify := func(lo, hi int) plr.State {
		a, b := samples[lo], samples[hi]
		slope := (b.Pos[cfg.PrimaryDim] - a.Pos[cfg.PrimaryDim]) / (b.T - a.T)
		switch {
		case slope < -cfg.SlopeThreshold:
			return plr.EX
		case slope > cfg.SlopeThreshold:
			return plr.IN
		default:
			return plr.EOE
		}
	}
	out := make(plr.Sequence, 0, len(bounds))
	for i, bIdx := range bounds {
		v := plr.Vertex{T: samples[bIdx].T, Pos: append([]float64(nil), samples[bIdx].Pos...)}
		if i < len(bounds)-1 {
			v.State = classify(bIdx, bounds[i+1])
		} else {
			v.State = out[len(out)-1].State
		}
		out = append(out, v)
	}
	return out, nil
}
