package fsm

import (
	"testing"

	"stsmatch/internal/plr"
)

func TestPrimeResumesFromRecoveredTail(t *testing.T) {
	samples := cleanBreathing(10, 4, 15)
	cfg := DefaultConfig()
	seq, err := SegmentAll(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) < 4 {
		t.Fatalf("need a few vertices to prime from, got %d", len(seq))
	}

	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(seq); err != nil {
		t.Fatal(err)
	}
	last := seq[len(seq)-1]
	if s.CurrentState() != last.State {
		t.Errorf("CurrentState = %v after prime, want last vertex state %v",
			s.CurrentState(), last.State)
	}

	// The primed segmenter must accept continued ingestion from where
	// the recording stopped and eventually emit vertices again.
	cont := cleanBreathing(14, 4, 15)
	var emitted plr.Sequence
	for _, sm := range cont {
		if sm.T <= last.T {
			continue
		}
		vs, err := s.Push(sm)
		if err != nil {
			t.Fatalf("Push(t=%v) after prime: %v", sm.T, err)
		}
		emitted = append(emitted, vs...)
	}
	if len(emitted) == 0 {
		t.Fatal("primed segmenter emitted no vertices on continued ingestion")
	}
	// Re-emitted vertices at or before the anchor are expected (the
	// caller drops them); everything after must be strictly ordered.
	for i := 1; i < len(emitted); i++ {
		if emitted[i].T <= emitted[i-1].T {
			t.Errorf("emitted vertices out of order at %d: %v then %v",
				i, emitted[i-1].T, emitted[i].T)
		}
	}
}

func TestPrimeErrors(t *testing.T) {
	cfg := DefaultConfig()
	seq, err := SegmentAll(cfg, cleanBreathing(6, 4, 15))
	if err != nil {
		t.Fatal(err)
	}

	// A segmenter that has already seen samples refuses to prime.
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Push(plr.Sample{T: 0, Pos: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(seq); err == nil {
		t.Error("Prime accepted a segmenter that has already seen samples")
	}

	// An empty recovered sequence is a no-op, not an error.
	s2, _ := New(cfg)
	if err := s2.Prime(nil); err != nil {
		t.Errorf("Prime(nil) = %v, want nil", err)
	}
	if s2.SamplesSeen() != 0 {
		t.Errorf("Prime(nil) consumed %d samples", s2.SamplesSeen())
	}

	// Recovered vertices missing the primary dimension are rejected.
	s3, _ := New(cfg)
	bad := plr.Sequence{{T: 1, Pos: nil, State: plr.EX}}
	if err := s3.Prime(bad); err == nil {
		t.Error("Prime accepted vertices without the primary dimension")
	}
}
