// Package fsm implements the finite state motion model of the paper
// (Section 3.1, Figure 4) and the online segmentation algorithm that
// turns a raw sample stream into a piecewise linear representation
// (PLR) guided by the finite state automaton.
//
// The automaton has three regular breathing states — EX (exhale),
// EOE (end-of-exhale) and IN (inhale) — visited in the fixed order
// EX -> EOE -> IN -> EX, plus one irregular state IRR entered whenever
// the observed motion violates the regular pattern and left when
// regular breathing resumes.
//
// The segmenter processes each incoming sample in O(1) amortized time
// with O(1) state (a short slope window plus per-cycle statistics), as
// the paper requires for real-time use: "Our online segmentation runs
// with constant space and in linear time with respect to raw data
// points."
package fsm

import (
	"fmt"
	"math"

	"stsmatch/internal/plr"
	"stsmatch/internal/stats"
)

// Config controls the online segmenter. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// PrimaryDim is the spatial dimension used for state
	// classification (for respiratory motion, the superior-inferior
	// axis carries the breathing signal). Positions remain fully
	// n-dimensional in the emitted vertices.
	PrimaryDim int

	// SlopeWindow is the number of recent samples in the trend
	// window used to estimate the instantaneous slope. At 30 Hz,
	// 9 samples = 0.3 s.
	SlopeWindow int

	// SlopeThreshold (units/s) separates moving states from EOE:
	// slope < -SlopeThreshold => EX, slope > +SlopeThreshold => IN,
	// otherwise EOE.
	SlopeThreshold float64

	// MinSegmentDur (s) is the minimum duration of a segment;
	// shorter state flickers are absorbed into the current segment
	// (hysteresis against noise).
	MinSegmentDur float64

	// SmoothAlpha is the exponential smoothing factor applied to the
	// primary dimension before classification (0 disables). This
	// suppresses the cardiac-motion oscillation described in
	// Figure 3c.
	SmoothAlpha float64

	// SpikeSigma rejects spike noise (Figure 3d): a sample whose
	// primary-dimension jump from the previous smoothed value
	// exceeds SpikeSigma times the running jump deviation is clamped.
	SpikeSigma float64

	// MaxCycleDeviation controls IRR detection: a completed segment
	// whose duration or amplitude deviates from the running per-state
	// mean by more than this factor marks the motion irregular.
	MaxCycleDeviation float64

	// MinRegularCycles is how many clean EX->EOE->IN cycles must be
	// observed after an irregularity before the automaton returns to
	// the regular states.
	MinRegularCycles int

	// Transitions optionally replaces the automaton's transition
	// relation, for the Section 6 generalization to motions whose
	// regular cycle differs from breathing ("build a finite state
	// model" is step 1 of the framework). Each pair is an allowed
	// (from, to) transition between regular states. Nil keeps the
	// respiratory automaton EX -> EOE -> IN -> EX. For example, a
	// pick-and-place robot axis cycles IN -> EOE -> EX -> EOE with two
	// dwells per cycle:
	//
	//	cfg.Transitions = [][2]plr.State{
	//		{plr.IN, plr.EOE}, {plr.EOE, plr.EX},
	//		{plr.EX, plr.EOE}, {plr.EOE, plr.IN},
	//	}
	Transitions [][2]plr.State
}

// allowedNext materializes the transition relation as a lookup matrix.
func (c Config) allowedNext() [plr.NumStates][plr.NumStates]bool {
	var m [plr.NumStates][plr.NumStates]bool
	if c.Transitions == nil {
		m[plr.EX][plr.EOE] = true
		m[plr.EOE][plr.IN] = true
		m[plr.IN][plr.EX] = true
		return m
	}
	for _, tr := range c.Transitions {
		if tr[0].Valid() && tr[1].Valid() {
			m[tr[0]][tr[1]] = true
		}
	}
	return m
}

// DefaultConfig returns the segmenter configuration used throughout
// the reproduction: tuned for 30 Hz respiratory data in millimetres
// with cycle periods of roughly 2.5-6 s and amplitudes of 5-25 mm.
// Outside that envelope, scale the time constants with the signal: the
// trend window plus the hysteresis must fit inside the shortest real
// segment, and the slope threshold should sit between the rest-state
// and moving-state slopes (see examples/heartbeat and examples/tides
// for reconfigurations to 0.85 s beats and 12 h tides).
func DefaultConfig() Config {
	return Config{
		PrimaryDim:        0,
		SlopeWindow:       15,  // 0.5 s at 30 Hz: long enough to average out ~1.2 Hz cardiac motion
		SlopeThreshold:    4.0, // mm/s
		MinSegmentDur:     0.25,
		SmoothAlpha:       0.15,
		SpikeSigma:        6.0,
		MaxCycleDeviation: 2.6,
		MinRegularCycles:  1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SlopeWindow < 2 {
		return fmt.Errorf("fsm: SlopeWindow must be >= 2, got %d", c.SlopeWindow)
	}
	if c.SlopeThreshold <= 0 {
		return fmt.Errorf("fsm: SlopeThreshold must be positive, got %v", c.SlopeThreshold)
	}
	if c.MinSegmentDur < 0 {
		return fmt.Errorf("fsm: MinSegmentDur must be >= 0, got %v", c.MinSegmentDur)
	}
	if c.SmoothAlpha < 0 || c.SmoothAlpha > 1 {
		return fmt.Errorf("fsm: SmoothAlpha must be in [0,1], got %v", c.SmoothAlpha)
	}
	if c.PrimaryDim < 0 {
		return fmt.Errorf("fsm: PrimaryDim must be >= 0, got %d", c.PrimaryDim)
	}
	if c.MaxCycleDeviation <= 1 {
		return fmt.Errorf("fsm: MaxCycleDeviation must be > 1, got %v", c.MaxCycleDeviation)
	}
	for _, tr := range c.Transitions {
		if !tr[0].Valid() || !tr[1].Valid() || tr[0] == plr.IRR || tr[1] == plr.IRR {
			return fmt.Errorf("fsm: invalid transition %v -> %v", tr[0], tr[1])
		}
	}
	return nil
}

// Segmenter converts a raw sample stream into PLR vertices online.
// Create one with New, feed samples with Push, and call Flush at end
// of stream. A Segmenter is not safe for concurrent use; use one per
// stream.
type Segmenter struct {
	cfg Config

	// trend window (ring buffer of the last SlopeWindow samples)
	win        []plr.Sample
	reg        stats.LinReg
	smooth     float64
	jump       stats.Welford // running |Δprimary| stats for spike rejection
	lastGoodY  float64
	spikeHolds int

	started   bool
	lastRaw   plr.Sample
	curState  plr.State
	segStart  plr.Sample
	segStartT float64

	// FSA bookkeeping
	allowed      [plr.NumStates][plr.NumStates]bool
	irr          bool
	cleanStreak  int
	durStats     [plr.NumStates]stats.Welford
	ampStats     [plr.NumStates]stats.Welford
	segsEmitted  int
	samplesSeen  int
	transitions  int
	irrEntries   int
	pendingState plr.State
	pendingSince float64
	havePending  bool
}

// New builds a Segmenter; it returns an error for invalid
// configurations.
func New(cfg Config) (*Segmenter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Segmenter{
		cfg:      cfg,
		win:      make([]plr.Sample, 0, cfg.SlopeWindow),
		curState: plr.IRR,
		allowed:  cfg.allowedNext(),
	}, nil
}

// SamplesSeen returns the number of samples pushed so far.
func (s *Segmenter) SamplesSeen() int { return s.samplesSeen }

// SegmentsEmitted returns the number of vertices emitted so far.
func (s *Segmenter) SegmentsEmitted() int { return s.segsEmitted }

// StateTransitions returns the number of committed state transitions.
func (s *Segmenter) StateTransitions() int { return s.transitions }

// IRREntries returns how many times the automaton entered IRR.
func (s *Segmenter) IRREntries() int { return s.irrEntries }

// CurrentState returns the state of the segment currently being built.
func (s *Segmenter) CurrentState() plr.State { return s.curState }

// Push feeds one sample and returns any vertices completed by it
// (usually none or one). The returned slice aliases no internal state.
// Samples must arrive in strictly increasing time order; out-of-order
// samples return an error.
func (s *Segmenter) Push(sm plr.Sample) ([]plr.Vertex, error) {
	if s.cfg.PrimaryDim >= len(sm.Pos) {
		return nil, fmt.Errorf("fsm: sample has %d dims, primary dim is %d", len(sm.Pos), s.cfg.PrimaryDim)
	}
	if s.started && sm.T <= s.lastRaw.T {
		return nil, fmt.Errorf("fsm: non-increasing sample time %v after %v", sm.T, s.lastRaw.T)
	}
	s.samplesSeen++
	mSamples.Inc()

	y := sm.Pos[s.cfg.PrimaryDim]

	// Spike rejection (Figure 3d): a sample-to-sample jump far beyond
	// the running jump statistics is an acquisition artifact — hold
	// the last good value instead. Genuine fast motion (a cough)
	// persists, so after maxSpikeHold consecutive rejections the new
	// level is accepted.
	const maxSpikeHold = 3
	if s.started && s.cfg.SpikeSigma > 0 && s.jump.N() >= 10 {
		jump := math.Abs(y - s.lastGoodY)
		limit := s.cfg.SpikeSigma * math.Max(s.jump.Mean()+3*s.jump.StdDev(), 0.2)
		if jump > limit && s.spikeHolds < maxSpikeHold {
			y = s.lastGoodY
			s.spikeHolds++
			mSpikeRejects.Inc()
		} else {
			s.spikeHolds = 0
		}
	}
	if s.started && s.spikeHolds == 0 {
		s.jump.Add(math.Abs(y - s.lastGoodY))
	}
	s.lastGoodY = y

	// Exponential smoothing of the classification signal.
	if !s.started {
		s.smooth = y
	} else if s.cfg.SmoothAlpha > 0 {
		s.smooth = s.cfg.SmoothAlpha*y + (1-s.cfg.SmoothAlpha)*s.smooth
	} else {
		s.smooth = y
	}

	// The stored sample keeps the full position but with the cleaned
	// primary dimension, so emitted vertices are denoised too.
	clean := sm.Clone()
	clean.Pos[s.cfg.PrimaryDim] = s.smooth

	var out []plr.Vertex
	if !s.started {
		s.started = true
		s.segStart = clean
		s.segStartT = clean.T
	}
	s.lastRaw = clean

	// Maintain the trend window.
	if len(s.win) == s.cfg.SlopeWindow {
		old := s.win[0]
		s.reg.Remove(old.T, old.Pos[s.cfg.PrimaryDim])
		copy(s.win, s.win[1:])
		s.win = s.win[:len(s.win)-1]
	}
	s.win = append(s.win, clean)
	s.reg.Add(clean.T, s.smooth)

	if len(s.win) < s.cfg.SlopeWindow {
		return nil, nil // not enough evidence yet
	}

	obs := s.classify(s.reg.Slope())
	if v, emitted := s.transition(obs, clean); emitted {
		out = append(out, v)
	}
	return out, nil
}

// classify maps an instantaneous slope to a raw observed state with a
// deadband: moving states (EX/IN) require |slope| above the full
// threshold, the rest state (EOE) requires |slope| below half of it,
// and slopes in between stick to the current state. The deadband keeps
// residual noise (cardiac motion the trend window didn't fully average
// out) from flickering the state on small-amplitude, slow breathers.
func (s *Segmenter) classify(slope float64) plr.State {
	hi := s.cfg.SlopeThreshold
	lo := hi / 2
	switch {
	case slope < -hi:
		return plr.EX
	case slope > hi:
		return plr.IN
	case slope > -lo && slope < lo:
		return plr.EOE
	default:
		// Deadband: ambiguous slope, no state change evidence.
		if s.curState.Regular() {
			return s.curState
		}
		return plr.EOE
	}
}

// transition runs the finite state automaton on the observed state and
// emits a vertex when the current segment closes.
func (s *Segmenter) transition(obs plr.State, at plr.Sample) (plr.Vertex, bool) {
	if s.curState == plr.IRR && !s.irr && s.segsEmitted == 0 && s.samplesSeen <= s.cfg.SlopeWindow+1 {
		// Initial state assignment: adopt the first confident
		// observation without emitting a vertex.
		s.curState = obs
		return plr.Vertex{}, false
	}
	if obs == s.curState {
		s.havePending = false
		return plr.Vertex{}, false
	}

	// Hysteresis: require the new state to persist briefly before
	// committing a vertex, so single-sample flickers don't fragment
	// the PLR.
	if !s.havePending || s.pendingState != obs {
		s.havePending = true
		s.pendingState = obs
		s.pendingSince = at.T
		return plr.Vertex{}, false
	}
	if at.T-s.pendingSince < s.cfg.MinSegmentDur {
		return plr.Vertex{}, false
	}
	s.havePending = false

	// Close the current segment at the estimated *physical* boundary,
	// not at the detection commit point: the trend window delays the
	// slope estimate by ~window/2 and the hysteresis adds
	// MinSegmentDur on top, so the transition really happened around
	// pendingSince - window/2. Backdating keeps segment amplitudes
	// and durations faithful, which the irregularity statistics and
	// the similarity measure both depend on.
	boundary := s.boundarySample()

	// A segment whose own duration or amplitude is anomalous (a
	// breath hold, a deep breath) is labeled IRR directly and kept
	// out of the running statistics.
	anomalous := s.segmentAnomalous(boundary)
	stateForV := s.effectiveState()
	if anomalous {
		stateForV = plr.IRR
	}
	v := plr.Vertex{T: s.segStart.T, Pos: s.segStart.Pos, State: stateForV}
	if !anomalous && !s.irr {
		s.noteSegment(s.curState, boundary)
	}

	switch {
	case anomalous || s.fsaViolation(obs):
		s.enterIRR()
	case s.irr:
		s.maybeLeaveIRR(obs)
	}
	s.curState = obs
	s.segStart = boundary.Clone()
	s.segStartT = boundary.T
	s.segsEmitted++
	s.transitions++
	mTransitions.Inc()
	mVertices.Inc()
	return v, true
}

// boundarySample estimates the sample at the physical state
// transition: the pending state was first observed at pendingSince,
// which itself lags the signal by half the trend window. The estimate
// is clamped inside the retained window and strictly after the current
// segment start so vertex times stay increasing.
func (s *Segmenter) boundarySample() plr.Sample {
	n := len(s.win)
	best := s.win[n-1]
	if n < 2 {
		return best
	}
	dt := (s.win[n-1].T - s.win[0].T) / float64(n-1)
	target := s.pendingSince - float64(s.cfg.SlopeWindow)/2*dt
	bestDiff := math.Abs(best.T - target)
	for _, sm := range s.win {
		if sm.T <= s.segStart.T {
			continue
		}
		if d := math.Abs(sm.T - target); d < bestDiff {
			best, bestDiff = sm, d
		}
	}
	return best
}

// effectiveState is the state recorded on the vertex that opens the
// closing segment: IRR while the automaton is in irregular mode,
// otherwise the observed regular state.
func (s *Segmenter) effectiveState() plr.State {
	if s.irr {
		return plr.IRR
	}
	return s.curState
}

// warmupSegments is the number of initial segments during which FSA
// violations are forgiven: the first observations start mid-cycle and
// the trend estimate is still settling, so early misorderings are
// classification artifacts, not irregular breathing.
const warmupSegments = 3

// fsaViolation reports whether moving from the current state to obs
// violates the automaton's transition relation (the respiratory order
// EX -> EOE -> IN -> EX by default).
func (s *Segmenter) fsaViolation(obs plr.State) bool {
	if s.irr {
		return false // already irregular; handled by maybeLeaveIRR
	}
	if s.segsEmitted < warmupSegments {
		return false
	}
	return !s.allowed[s.curState][obs]
}

// segmentAnomalous reports whether the closing segment's duration or
// amplitude deviates wildly from its state's running statistics (a
// breath hold stretches EOE; a deep breath doubles EX/IN amplitude).
// Checks engage only once enough regular segments have been observed.
func (s *Segmenter) segmentAnomalous(end plr.Sample) bool {
	if s.irr {
		return false // everything inside an IRR run is already irregular
	}
	k := s.curState
	if !k.Regular() {
		return false
	}
	if s.durStats[k].N() >= 4 {
		dur := end.T - s.segStartT
		mean := s.durStats[k].Mean()
		if mean > 0 && (dur > mean*s.cfg.MaxCycleDeviation || dur < mean/(2*s.cfg.MaxCycleDeviation)) {
			return true
		}
	}
	// Amplitude deviations only mean something for the moving states;
	// EOE plateaus have near-zero, noise-dominated amplitudes.
	if k != plr.EOE && s.ampStats[k].N() >= 4 {
		amp := math.Abs(end.Pos[s.cfg.PrimaryDim] - s.segStart.Pos[s.cfg.PrimaryDim])
		mean := s.ampStats[k].Mean()
		if mean > 1 && (amp > mean*s.cfg.MaxCycleDeviation || amp < mean/(2*s.cfg.MaxCycleDeviation)) {
			return true
		}
	}
	return false
}

func (s *Segmenter) enterIRR() {
	if !s.irr {
		s.irrEntries++
		mIRREntries.Inc()
	}
	s.irr = true
	s.cleanStreak = 0
}

// maybeLeaveIRR counts consecutive transitions that the automaton
// allows while in IRR and exits irregular mode after MinRegularCycles
// full cycles' worth of them (three transitions per cycle).
func (s *Segmenter) maybeLeaveIRR(obs plr.State) {
	if s.curState.Regular() && s.allowed[s.curState][obs] {
		s.cleanStreak++
		if s.cleanStreak >= 3*s.cfg.MinRegularCycles {
			s.irr = false
		}
		return
	}
	s.cleanStreak = 0
}

// noteSegment records duration/amplitude statistics of the closing
// segment for irregularity detection.
func (s *Segmenter) noteSegment(st plr.State, end plr.Sample) {
	dur := end.T - s.segStartT
	amp := math.Abs(end.Pos[s.cfg.PrimaryDim] - s.segStart.Pos[s.cfg.PrimaryDim])
	if st.Valid() {
		s.durStats[st].Add(dur)
		s.ampStats[st].Add(amp)
	}
}

// Flush closes the trailing segment and returns its opening vertex plus
// a final vertex at the last sample time. Call once at end of stream;
// the Segmenter must not be reused afterwards.
func (s *Segmenter) Flush() []plr.Vertex {
	if !s.started {
		return nil
	}
	out := []plr.Vertex{
		{T: s.segStart.T, Pos: s.segStart.Pos, State: s.effectiveState()},
	}
	if s.lastRaw.T > s.segStart.T {
		out = append(out, plr.Vertex{T: s.lastRaw.T, Pos: s.lastRaw.Pos, State: s.effectiveState()})
	}
	mVertices.Add(len(out))
	return out
}

// SegmentAll is a convenience that runs a complete sample slice through
// a fresh segmenter and returns the full PLR sequence.
func SegmentAll(cfg Config, samples []plr.Sample) (plr.Sequence, error) {
	seg, err := New(cfg)
	if err != nil {
		return nil, err
	}
	var seq plr.Sequence
	for _, sm := range samples {
		vs, err := seg.Push(sm)
		if err != nil {
			return nil, err
		}
		seq = append(seq, vs...)
	}
	seq = append(seq, seg.Flush()...)
	if err := seq.Validate(); err != nil {
		return nil, fmt.Errorf("fsm: produced invalid sequence: %w", err)
	}
	return seq, nil
}
