package fsm

import (
	"math"
	"strings"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
)

// cleanBreathing synthesizes noiseless three-phase breathing at 30 Hz:
// quadratic exhale (steep off the peak), flat rest, quadratic inhale.
func cleanBreathing(cycles int, period, amp float64) []plr.Sample {
	const rate = 30.0
	dEX, dEOE, dIN := 0.35*period, 0.28*period, 0.37*period
	var out []plr.Sample
	t := 0.0
	for c := 0; c < cycles; c++ {
		start := t
		for ; t < start+period; t += 1 / rate {
			u := t - start
			var y float64
			switch {
			case u < dEX:
				v := 1 - u/dEX
				y = amp * v * v
			case u < dEX+dEOE:
				y = 0
			default:
				v := (u - dEX - dEOE) / dIN
				y = amp * v * v
			}
			out = append(out, plr.Sample{T: t, Pos: []float64{y}})
		}
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"slope window", func(c *Config) { c.SlopeWindow = 1 }},
		{"slope threshold", func(c *Config) { c.SlopeThreshold = 0 }},
		{"min segment dur", func(c *Config) { c.MinSegmentDur = -1 }},
		{"smooth alpha", func(c *Config) { c.SmoothAlpha = 1.5 }},
		{"primary dim", func(c *Config) { c.PrimaryDim = -1 }},
		{"cycle deviation", func(c *Config) { c.MaxCycleDeviation = 1 }},
	}
	for _, m := range mutations {
		cfg := DefaultConfig()
		m.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.name)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New should reject invalid config", m.name)
		}
	}
}

func TestSegmentsCleanBreathing(t *testing.T) {
	samples := cleanBreathing(10, 4, 15)
	seq, err := SegmentAll(DefaultConfig(), samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("invalid output sequence: %v", err)
	}
	// Expect roughly 3 segments per cycle; allow warm-up slack.
	if n := seq.NumSegments(); n < 24 || n > 36 {
		t.Errorf("segments = %d, want ~30 for 10 cycles", n)
	}
	// After warm-up the state string must be the regular EOI rotation.
	ss := seq.StateString()
	tail := ss[6:]
	if strings.Contains(tail, "R") {
		t.Errorf("clean breathing produced IRR after warm-up: %s", ss)
	}
	if !strings.Contains(ss, "EOIEOIEOI") {
		t.Errorf("regular rotation not found in %s", ss)
	}
	if c := seq.CycleCount(); c < 8 || c > 11 {
		t.Errorf("CycleCount = %d, want ~9-10", c)
	}
}

func TestStateClassificationDirections(t *testing.T) {
	samples := cleanBreathing(8, 4, 15)
	seq, err := SegmentAll(DefaultConfig(), samples)
	if err != nil {
		t.Fatal(err)
	}
	// Every EX segment must fall, every IN segment must rise, and EOE
	// segments must be nearly flat.
	for i := 0; i < seq.NumSegments(); i++ {
		seg := seq.SegmentAt(i)
		slope := seg.Delta[0] / seg.Duration
		switch seg.State {
		case plr.EX:
			if slope > -1 {
				t.Errorf("segment %d: EX with slope %.2f", i, slope)
			}
		case plr.IN:
			if slope < 1 {
				t.Errorf("segment %d: IN with slope %.2f", i, slope)
			}
		case plr.EOE:
			if math.Abs(slope) > 6 {
				t.Errorf("segment %d: EOE with slope %.2f", i, slope)
			}
		}
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	samples := cleanBreathing(6, 3.5, 12)
	batch, err := SegmentAll(DefaultConfig(), samples)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var online plr.Sequence
	for _, sm := range samples {
		vs, err := seg.Push(sm)
		if err != nil {
			t.Fatal(err)
		}
		online = append(online, vs...)
	}
	online = append(online, seg.Flush()...)
	if len(online) != len(batch) {
		t.Fatalf("online %d vertices, batch %d", len(online), len(batch))
	}
	for i := range online {
		if online[i].T != batch[i].T || online[i].State != batch[i].State {
			t.Errorf("vertex %d differs: %+v vs %+v", i, online[i], batch[i])
		}
	}
	if seg.SamplesSeen() != len(samples) {
		t.Errorf("SamplesSeen = %d, want %d", seg.SamplesSeen(), len(samples))
	}
	if seg.SegmentsEmitted() == 0 {
		t.Error("SegmentsEmitted = 0")
	}
}

func TestPushErrors(t *testing.T) {
	seg, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Push(plr.Sample{T: 0, Pos: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Push(plr.Sample{T: 0, Pos: []float64{1}}); err == nil {
		t.Error("expected error for non-increasing time")
	}
	if _, err := seg.Push(plr.Sample{T: 1, Pos: nil}); err == nil {
		t.Error("expected error for missing primary dimension")
	}
}

func TestFlushEmptyAndShort(t *testing.T) {
	seg, _ := New(DefaultConfig())
	if vs := seg.Flush(); vs != nil {
		t.Errorf("empty Flush = %+v, want nil", vs)
	}
	seg, _ = New(DefaultConfig())
	if _, err := seg.Push(plr.Sample{T: 0, Pos: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	vs := seg.Flush()
	if len(vs) != 1 {
		t.Fatalf("single-sample Flush = %d vertices, want 1", len(vs))
	}
}

func TestSpikeRejectionKeepsSegmentationStable(t *testing.T) {
	clean := cleanBreathing(8, 4, 15)
	spiky := make([]plr.Sample, len(clean))
	for i, s := range clean {
		spiky[i] = s.Clone()
	}
	// Inject gross spikes at scattered points (after the warm-up the
	// spike filter needs).
	for _, i := range []int{400, 500, 600, 700} {
		spiky[i].Pos[0] += 40
	}
	cleanSeq, err := SegmentAll(DefaultConfig(), clean)
	if err != nil {
		t.Fatal(err)
	}
	spikySeq, err := SegmentAll(DefaultConfig(), spiky)
	if err != nil {
		t.Fatal(err)
	}
	dn := spikySeq.NumSegments() - cleanSeq.NumSegments()
	if dn < -3 || dn > 3 {
		t.Errorf("spikes changed segment count by %d (clean %d, spiky %d)",
			dn, cleanSeq.NumSegments(), spikySeq.NumSegments())
	}
	// No IRR should be introduced by spikes alone.
	if strings.Contains(spikySeq.StateString()[6:], "R") {
		t.Errorf("spikes caused IRR: %s", spikySeq.StateString())
	}
}

func TestBreathHoldDetectedAsIRR(t *testing.T) {
	// Regular breathing, then an 6 s hold at baseline, then regular.
	pre := cleanBreathing(6, 4, 15)
	t0 := pre[len(pre)-1].T + 1.0/30
	var hold []plr.Sample
	for ts := t0; ts < t0+6; ts += 1.0 / 30 {
		hold = append(hold, plr.Sample{T: ts, Pos: []float64{0}})
	}
	post := cleanBreathing(6, 4, 15)
	for i := range post {
		post[i].T += t0 + 6
	}
	all := append(append(pre, hold...), post...)

	seq, err := SegmentAll(DefaultConfig(), all)
	if err != nil {
		t.Fatal(err)
	}
	// Some vertex overlapping the hold window must be IRR.
	foundIRR := false
	for i := 0; i < seq.NumSegments(); i++ {
		v := seq[i]
		endT := seq[i+1].T
		if v.State == plr.IRR && endT > t0 && v.T < t0+6 {
			foundIRR = true
		}
	}
	if !foundIRR {
		t.Errorf("breath hold not marked IRR: %s", seq.StateString())
	}
	// Regular breathing must resume after the hold: the final cycles
	// should be regular again.
	tail := seq.StateString()
	if !strings.Contains(tail[len(tail)/2:], "EOI") {
		t.Errorf("regular breathing did not resume: %s", tail)
	}
}

func TestIRRAgainstGroundTruthEpisodes(t *testing.T) {
	cfg := signal.DefaultRespiration()
	cfg.IrregularProb = 0.08 // provoke several episodes
	gen, err := signal.NewRespiration(cfg, 99)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(120)
	episodes := gen.Episodes()
	if len(episodes) == 0 {
		t.Skip("no episodes generated with this seed")
	}
	seq, err := SegmentAll(DefaultConfig(), samples)
	if err != nil {
		t.Fatal(err)
	}
	// Recall: most episode time should be covered by IRR segments.
	// (Deep-breath episodes are near-regular cycles, so perfect recall
	// is not expected; require half.)
	var episodeTime, coveredTime float64
	for _, ep := range episodes {
		episodeTime += ep.End - ep.Start
	}
	for i := 0; i < seq.NumSegments(); i++ {
		if seq[i].State != plr.IRR {
			continue
		}
		segStart, segEnd := seq[i].T, seq[i+1].T
		for _, ep := range episodes {
			lo := math.Max(segStart, ep.Start)
			hi := math.Min(segEnd, ep.End)
			if hi > lo {
				coveredTime += hi - lo
			}
		}
	}
	if episodeTime > 0 && coveredTime/episodeTime < 0.4 {
		t.Errorf("IRR covered only %.0f%% of episode time", 100*coveredTime/episodeTime)
	}
}

// trapezoid synthesizes a dwell-move-dwell-move axis trace at 50 Hz.
func trapezoid(cycles int, travel, moveT, dwellT float64) []plr.Sample {
	const rate = 50.0
	var out []plr.Sample
	t := 0.0
	for c := 0; c < cycles; c++ {
		phases := []struct {
			dur float64
			f   func(u float64) float64
		}{
			{moveT, func(u float64) float64 { return travel * u }},
			{dwellT, func(float64) float64 { return travel }},
			{moveT, func(u float64) float64 { return travel * (1 - u) }},
			{dwellT, func(float64) float64 { return 0 }},
		}
		for _, ph := range phases {
			start := t
			for ; t < start+ph.dur; t += 1 / rate {
				out = append(out, plr.Sample{T: t, Pos: []float64{ph.f((t - start) / ph.dur)}})
			}
		}
	}
	return out
}

func TestCustomTransitionRelation(t *testing.T) {
	samples := trapezoid(10, 120, 0.8, 0.5)
	cfg := DefaultConfig()
	cfg.SlopeWindow = 9
	cfg.SlopeThreshold = 40
	cfg.MinSegmentDur = 0.12
	cfg.SmoothAlpha = 0.4

	// With the respiratory automaton the double-dwell cycle violates
	// the order constantly.
	seqResp, err := SegmentAll(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	irrResp := strings.Count(seqResp.StateString(), "R")

	// With the axis's own automaton the trace is perfectly regular.
	cfg.Transitions = [][2]plr.State{
		{plr.IN, plr.EOE}, {plr.EOE, plr.EX},
		{plr.EX, plr.EOE}, {plr.EOE, plr.IN},
	}
	seqAxis, err := SegmentAll(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	irrAxis := strings.Count(seqAxis.StateString(), "R")
	if irrAxis >= irrResp {
		t.Errorf("custom automaton should remove IRR: respiratory=%d axis=%d", irrResp, irrAxis)
	}
	if irrAxis > 2 {
		t.Errorf("regular axis trace still has %d IRR segments: %s", irrAxis, seqAxis.StateString())
	}
	// Invalid transition pairs are rejected.
	bad := cfg
	bad.Transitions = [][2]plr.State{{plr.IRR, plr.EX}}
	if err := bad.Validate(); err == nil {
		t.Error("IRR transition accepted")
	}
}

func TestMultiDimensionalSegmentation(t *testing.T) {
	cfg := signal.DefaultRespiration()
	cfg.Dims = 3
	cfg.IrregularProb = 0
	gen, err := signal.NewRespiration(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(40)
	seq, err := SegmentAll(DefaultConfig(), samples)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Dims() != 3 {
		t.Fatalf("Dims = %d, want 3", seq.Dims())
	}
	if seq.NumSegments() < 15 {
		t.Errorf("too few segments: %d", seq.NumSegments())
	}
	// Secondary axes must be preserved at vertices (attenuated but
	// non-trivial AP axis).
	anyAP := false
	for _, v := range seq {
		if math.Abs(v.Pos[1]) > 0.5 {
			anyAP = true
			break
		}
	}
	if !anyAP {
		t.Error("AP axis lost in segmentation")
	}
}
