package fsm

import (
	"strings"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
)

func TestBottomUpSegmentBasics(t *testing.T) {
	samples := cleanBreathing(8, 4, 15)
	cfg := BottomUpConfig{TargetSegments: 24, PrimaryDim: 0, SlopeThreshold: 4}
	seq, err := BottomUpSegment(cfg, samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Validate(); err != nil {
		t.Fatalf("invalid sequence: %v", err)
	}
	if got := seq.NumSegments(); got != 24 {
		t.Errorf("segments = %d, want exactly 24", got)
	}
	// On clean breathing the post-hoc states should still look like
	// the regular rotation most of the time.
	ss := seq.StateString()
	if !strings.Contains(ss, "EOI") {
		t.Errorf("no regular rotation found in %s", ss)
	}
	// First and last vertices pin the stream ends.
	if seq[0].T != samples[0].T || seq[len(seq)-1].T != samples[len(samples)-1].T {
		t.Error("endpoints not preserved")
	}
}

func TestBottomUpFidelityImprovesWithSegments(t *testing.T) {
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 8)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(60)
	var prev float64
	for i, k := range []int{12, 24, 48, 96} {
		seq, err := BottomUpSegment(BottomUpConfig{TargetSegments: k, PrimaryDim: 0, SlopeThreshold: 4}, samples)
		if err != nil {
			t.Fatal(err)
		}
		f, err := plr.MeasureFidelity(seq, samples, 0)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && f.RMSE > prev*1.05 {
			t.Errorf("RMSE rose with more segments: %v -> %v at k=%d", prev, f.RMSE, k)
		}
		prev = f.RMSE
	}
}

func TestBottomUpErrors(t *testing.T) {
	good := cleanBreathing(2, 4, 15)
	cases := []BottomUpConfig{
		{TargetSegments: 0, PrimaryDim: 0, SlopeThreshold: 4},
		{TargetSegments: 5, PrimaryDim: 0, SlopeThreshold: 0},
		{TargetSegments: 5, PrimaryDim: 3, SlopeThreshold: 4},
	}
	for i, cfg := range cases {
		if _, err := BottomUpSegment(cfg, good); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	ok := BottomUpConfig{TargetSegments: 5, PrimaryDim: 0, SlopeThreshold: 4}
	if _, err := BottomUpSegment(ok, good[:1]); err == nil {
		t.Error("single sample accepted")
	}
	bad := append([]plr.Sample{}, good[:5]...)
	bad[3].T = bad[2].T
	if _, err := BottomUpSegment(ok, bad); err == nil {
		t.Error("non-increasing times accepted")
	}
}

// TestBottomUpVsFSMSegmentation contrasts the generic PLA with the
// FSM-guided online segmenter at equal segment budgets: comparable
// reconstruction, but the generic PLA cannot be produced online and
// its post-hoc states cannot mark irregularity.
func TestBottomUpVsFSMSegmentation(t *testing.T) {
	cfg := signal.DefaultRespiration()
	cfg.IrregularProb = 0.05
	gen, err := signal.NewRespiration(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(90)
	if len(gen.Episodes()) == 0 {
		t.Skip("no episodes with this seed")
	}

	fsmSeq, err := SegmentAll(DefaultConfig(), samples)
	if err != nil {
		t.Fatal(err)
	}
	buSeq, err := BottomUpSegment(BottomUpConfig{
		TargetSegments: fsmSeq.NumSegments(),
		PrimaryDim:     0,
		SlopeThreshold: DefaultConfig().SlopeThreshold,
	}, samples)
	if err != nil {
		t.Fatal(err)
	}

	fsmFid, err := plr.MeasureFidelity(fsmSeq, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	buFid, err := plr.MeasureFidelity(buSeq, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The offline optimizer should reconstruct at least comparably —
	// it gets the whole signal and a global objective.
	if buFid.RMSE > fsmFid.RMSE*1.5 {
		t.Errorf("bottom-up RMSE %.3f much worse than FSM %.3f", buFid.RMSE, fsmFid.RMSE)
	}
	// But only the FSM segmenter marks irregularity.
	if strings.Contains(buSeq.StateString(), "R") {
		t.Error("generic PLA should have no IRR states")
	}
	if !strings.Contains(fsmSeq.StateString(), "R") {
		t.Error("FSM segmenter missed the episodes entirely")
	}
}
