package fsm

import "stsmatch/internal/obs"

// Process-wide segmentation metrics, aggregated across every live
// Segmenter. Per-instance counts remain available via SamplesSeen,
// SegmentsEmitted, StateTransitions and IRREntries.
var (
	mSamples = obs.Default().Counter("stsmatch_fsm_samples_total",
		"Raw samples pushed through online segmenters.")
	mVertices = obs.Default().Counter("stsmatch_fsm_vertices_total",
		"PLR vertices emitted by online segmenters.")
	mTransitions = obs.Default().Counter("stsmatch_fsm_state_transitions_total",
		"Committed finite-state transitions (segment boundaries).")
	mIRREntries = obs.Default().Counter("stsmatch_fsm_irr_entries_total",
		"Times a segmenter entered the irregular (IRR) state.")
	mSpikeRejects = obs.Default().Counter("stsmatch_fsm_spike_rejects_total",
		"Samples clamped by the spike-noise filter.")
)
