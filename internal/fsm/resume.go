package fsm

import (
	"errors"
	"fmt"

	"stsmatch/internal/plr"
)

// Prime re-warms a fresh Segmenter from the tail of a recovered PLR
// sequence so an ingestion session can resume mid-stream after crash
// recovery. The tail vertices (up to SlopeWindow of them) are pushed
// as samples to refill the trend window and set the time cursor, then
// the open segment is re-anchored at the last vertex with its
// recovered state.
//
// Priming is best-effort: vertices are ~1 Hz where raw samples are
// ~30 Hz, so slope and noise statistics re-converge over the first
// seconds of resumed ingestion. The first vertex the primed segmenter
// emits opens at the anchor time, which the stream already holds —
// callers must drop re-emitted vertices at or before the last
// recovered vertex time.
func (s *Segmenter) Prime(seq plr.Sequence) error {
	if s.started || s.samplesSeen > 0 {
		return errors.New("fsm: cannot prime a segmenter that has already seen samples")
	}
	if len(seq) == 0 {
		return nil
	}
	start := max(0, len(seq)-s.cfg.SlopeWindow)
	for _, v := range seq[start:] {
		if s.cfg.PrimaryDim >= len(v.Pos) {
			return fmt.Errorf("fsm: recovered vertex has %d dims, primary dim is %d", len(v.Pos), s.cfg.PrimaryDim)
		}
		// Emitted vertices are discarded: the stream already holds the
		// recovered PLR; priming only rebuilds internal state.
		if _, err := s.Push(plr.Sample{T: v.T, Pos: v.Pos}); err != nil {
			return fmt.Errorf("fsm: priming from recovered tail: %w", err)
		}
	}
	last := seq[len(seq)-1]
	s.curState = last.State
	s.segStart = plr.Sample{T: last.T, Pos: append([]float64(nil), last.Pos...)}
	s.segStartT = last.T
	s.havePending = false
	return nil
}
