package fsm

import (
	"math"
	"testing"

	"stsmatch/internal/plr"
)

// FuzzSegmenter feeds arbitrary byte-derived sample streams through the
// online segmenter: whatever the input, the segmenter must never panic
// and must either reject a sample with an error or keep its output a
// valid, strictly time-ordered PLR sequence.
func FuzzSegmenter(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40})
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0, 255, 0, 255, 0})
	f.Add([]byte("breathing patterns are structured time series"))
	f.Add([]byte{128, 128, 128, 128, 128, 128, 128, 128, 128, 128})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		seg, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var seq plr.Sequence
		tcur := 0.0
		for _, b := range data {
			// Derive a sample: time always advances; position walks
			// with the byte value (including large jumps -> spikes).
			tcur += 1.0/30 + float64(b%7)/100
			y := float64(int(b)-128) / 4
			vs, err := seg.Push(plr.Sample{T: tcur, Pos: []float64{y}})
			if err != nil {
				t.Fatalf("monotone input rejected: %v", err)
			}
			seq = append(seq, vs...)
		}
		seq = append(seq, seg.Flush()...)
		if err := seq.Validate(); err != nil {
			t.Fatalf("invalid output: %v", err)
		}
		for _, v := range seq {
			if math.IsNaN(v.Pos[0]) || math.IsInf(v.Pos[0], 0) {
				t.Fatalf("non-finite vertex position %v", v.Pos[0])
			}
		}
	})
}
