// Package sigindex implements the persistent window-signature index:
// an inverted index over PLR window signatures — the state-order
// string of each fixed-length window plus the quantized bucket of its
// amplitude (displacement-norm sum) and duration — that turns the
// matcher's candidate-generation stage from a full corpus scan into
// index probes with envelope widening (the KV-match construction
// adapted to model-based PLR windows).
//
// For every stream position j and every indexed window length
// l in [MinSegments, MaxSegments], the window of l segments starting
// at vertex j contributes one posting to the cell
//
//	(states[j..j+l), floor(amp/AmpBucket), floor(dur/DurBucket))
//
// where amp is the window's displacement-norm sum and dur its
// duration. The amp stored in the posting is bit-for-bit identical to
// the difference of the store's displacement prefix sums that the
// matcher's lower bound reads, because the index maintains the same
// running sum with the same operation order. Quantization only decides
// which cells a probe visits; every probe re-checks the exact stored
// amp/dur against its envelope, so bucket widths never change the
// probed set, only the constant factors.
//
// The index is derived state. Recovery persists only its configuration
// (a WAL record type plus a snapshot section); the postings are
// rebuilt deterministically from the recovered database with BuildFrom
// and then maintained incrementally from the store's mutation hook.
// Streams the index cannot vouch for — duplicate session keys,
// appends observed mid-stream, or any shadow/stream length mismatch —
// are poisoned or simply reported stale via Coverage, and the matcher
// falls back to scanning exactly those streams.
//
// Locking: OnMutation runs under the mutated stream's lock (the store
// hook contract) and takes the index lock inside it; Probe, Coverage,
// Stats and Dump take only the index lock and copy results out before
// returning, so the matcher never holds index and stream locks at the
// same time.
package sigindex

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// Config fixes the shape of the index: which window lengths (in
// segments) are posted, and the quantization bucket widths for the
// amplitude and duration coordinates.
type Config struct {
	// MinSegments and MaxSegments bound the indexed window lengths,
	// inclusive. A query is index-eligible when its segment count lies
	// in this range.
	MinSegments int `json:"minSegments"`
	MaxSegments int `json:"maxSegments"`
	// AmpBucket and DurBucket are the cell widths for the quantized
	// amplitude (displacement-norm sum) and duration coordinates.
	AmpBucket float64 `json:"ampBucket"`
	DurBucket float64 `json:"durBucket"`
}

// DefaultConfig covers every legal query length of the default matcher
// parameters (MinQueryVertices..MaxQueryVertices vertices, i.e. 9..24
// segments) with bucket widths sized for respiratory-scale data
// (millimetre amplitudes summing to tens per window, second-scale
// durations).
func DefaultConfig() Config {
	return Config{MinSegments: 9, MaxSegments: 24, AmpBucket: 4, DurBucket: 4}
}

// Validate checks the structural invariants of the configuration.
func (c Config) Validate() error {
	if c.MinSegments < 1 {
		return fmt.Errorf("sigindex: MinSegments %d < 1", c.MinSegments)
	}
	if c.MaxSegments < c.MinSegments {
		return fmt.Errorf("sigindex: MaxSegments %d < MinSegments %d", c.MaxSegments, c.MinSegments)
	}
	if c.MaxSegments > maxSignatureStates {
		return fmt.Errorf("sigindex: MaxSegments %d too large", c.MaxSegments)
	}
	if !(c.AmpBucket > 0) || math.IsInf(c.AmpBucket, 0) {
		return fmt.Errorf("sigindex: AmpBucket %v must be a positive finite number", c.AmpBucket)
	}
	if !(c.DurBucket > 0) || math.IsInf(c.DurBucket, 0) {
		return fmt.Errorf("sigindex: DurBucket %v must be a positive finite number", c.DurBucket)
	}
	return nil
}

// Covers reports whether windows of the given segment count are
// indexed, i.e. whether a query of that length can be served by probes.
func (c Config) Covers(segments int) bool {
	return segments >= c.MinSegments && segments <= c.MaxSegments
}

// StreamKey identifies one stream (patient session) in the index.
type StreamKey struct {
	PatientID string
	SessionID string
}

// posting is one indexed window occurrence. amp and dur are the exact
// (unquantized) window coordinates; stream is an index into
// Index.streams.
type posting struct {
	stream int32
	start  int32
	amp    float64
	dur    float64
}

// cellKey addresses one quantized cell under a state-order string.
type cellKey struct {
	amp, dur int32
}

// sigEntry holds every posting sharing one state-order string,
// partitioned into quantized cells, plus the bucket bounding box and
// total count a probe needs to clamp its rectangle and to detect that
// an envelope admitted everything (Exhaustive).
type sigEntry struct {
	cells                  map[cellKey][]posting
	total                  int
	aMin, aMax, dMin, dMax int32
}

// vinfo is the per-vertex shadow state retained in a stream's ring
// buffer: the segment state starting at the vertex, the running
// displacement-norm prefix sum, and the vertex time.
type vinfo struct {
	state byte
	cum   float64
	t     float64
}

// streamShadow tracks one stream's tail so each appended vertex can be
// turned into window postings without re-reading the store. The ring
// holds the last MaxSegments+1 vertices, indexed by global vertex
// number modulo capacity.
type streamShadow struct {
	key      StreamKey
	n        int // vertices observed
	lastPos  []float64
	ring     []vinfo
	sigBuf   []byte // scratch: states of the trailing MaxSegments window
	poisoned bool
}

// StreamCoverage is what the index knows about one stream, consumed by
// the matcher to decide probe vs scan-fallback per stream.
type StreamCoverage struct {
	// Vertices is how many vertices of the stream the index has
	// absorbed; the matcher trusts the index for a stream only when
	// this equals the stream's live length.
	Vertices int
	// Poisoned marks a stream the index refuses to answer for
	// (duplicate key, mid-stream attach, or invalid append).
	Poisoned bool
}

// Stats is a point-in-time summary of the index, surfaced through
// /v1/healthz.
type Stats struct {
	Streams         int    `json:"streams"`
	PoisonedStreams int    `json:"poisonedStreams"`
	Signatures      int    `json:"signatures"`
	Windows         int64  `json:"windows"`
	Config          Config `json:"config"`
}

// Index is the inverted window-signature index. Safe for concurrent
// use.
type Index struct {
	cfg Config

	mu       sync.RWMutex
	sigs     map[string]*sigEntry
	streams  []*streamShadow
	byKey    map[StreamKey]int32
	windows  int64
	poisoned int
}

// New creates an empty index with the given configuration.
func New(cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Index{
		cfg:   cfg,
		sigs:  make(map[string]*sigEntry),
		byKey: make(map[StreamKey]int32),
	}, nil
}

// Config returns the index configuration.
func (x *Index) Config() Config { return x.cfg }

// BuildFrom absorbs every stream of the database. It is meant to run
// at construction/recovery time, before the database serves concurrent
// writes; interleaved appends are made safe (not wrong) by the
// Coverage length check, which sends any stream the index trails back
// to the scan path.
func (x *Index) BuildFrom(db *store.DB) {
	for _, st := range db.Streams() {
		seq := st.Seq()
		x.mu.Lock()
		si, fresh := x.registerLocked(StreamKey{PatientID: st.PatientID, SessionID: st.SessionID})
		if fresh {
			x.appendLocked(si, seq)
		}
		x.mu.Unlock()
	}
	x.publishGauges()
}

// OnMutation is the store hook: it mirrors stream-opens and
// vertex-appends into the index. Install with db.AddMutationHook.
func (x *Index) OnMutation(m store.Mutation) {
	switch m.Kind {
	case store.MutStreamOpen:
		x.mu.Lock()
		x.registerLocked(StreamKey{PatientID: m.PatientID, SessionID: m.SessionID})
		x.mu.Unlock()
		x.publishGauges()
	case store.MutVertexAppend:
		key := StreamKey{PatientID: m.PatientID, SessionID: m.SessionID}
		x.mu.Lock()
		si, ok := x.byKey[key]
		if !ok {
			// Appends to a stream the index never saw open: it cannot
			// reconstruct the earlier vertices, so it registers the
			// stream poisoned and leaves it to the scan fallback.
			si, _ = x.registerLocked(key)
			x.poisonLocked(x.streams[si])
		}
		x.appendLocked(si, m.Vertices)
		x.mu.Unlock()
		x.publishGauges()
	}
}

// registerLocked adds a shadow for the key, or — on a duplicate key —
// poisons the existing shadow, since the index can no longer tell the
// two streams' appends apart. Returns the shadow's slot and whether it
// was freshly created.
func (x *Index) registerLocked(key StreamKey) (int32, bool) {
	if si, ok := x.byKey[key]; ok {
		x.poisonLocked(x.streams[si])
		return si, false
	}
	sh := &streamShadow{
		key:  key,
		ring: make([]vinfo, x.cfg.MaxSegments+1),
	}
	x.streams = append(x.streams, sh)
	si := int32(len(x.streams) - 1)
	x.byKey[key] = si
	return si, true
}

func (x *Index) poisonLocked(sh *streamShadow) {
	if !sh.poisoned {
		sh.poisoned = true
		x.poisoned++
	}
}

// appendLocked absorbs vertices into a shadow, posting every window
// that ends at each new vertex. The running displacement sum uses the
// same operation order as the store's prefix sums, so posted amps are
// bit-identical to what the matcher's lower bound computes.
func (x *Index) appendLocked(si int32, vs []plr.Vertex) {
	sh := x.streams[si]
	c := len(sh.ring)
	for i := range vs {
		if sh.poisoned {
			return
		}
		v := &vs[i]
		gi := sh.n // global vertex number
		var cum float64
		if gi > 0 {
			prev := sh.ring[(gi-1)%c]
			if v.T <= prev.t {
				// The store rejects non-advancing times, so the hook
				// should never deliver one; poison defensively.
				x.poisonLocked(sh)
				return
			}
			cum = prev.cum + dispNorm(sh.lastPos, v.Pos)
		}
		sh.ring[gi%c] = vinfo{state: v.State.Byte(), cum: cum, t: v.T}
		sh.lastPos = append(sh.lastPos[:0], v.Pos...)
		sh.n = gi + 1
		x.postWindowsLocked(si, sh, gi)
	}
}

// postWindowsLocked inserts one posting per indexed window length
// ending at global vertex gi.
func (x *Index) postWindowsLocked(si int32, sh *streamShadow, gi int) {
	if gi < x.cfg.MinSegments {
		return
	}
	c := len(sh.ring)
	// States of the maximal trailing window [lo..gi); each shorter
	// window's signature is a suffix of this scratch.
	lo := gi - x.cfg.MaxSegments
	if lo < 0 {
		lo = 0
	}
	sh.sigBuf = sh.sigBuf[:0]
	for v := lo; v < gi; v++ {
		sh.sigBuf = append(sh.sigBuf, sh.ring[v%c].state)
	}
	end := sh.ring[gi%c]
	for l := x.cfg.MinSegments; l <= x.cfg.MaxSegments; l++ {
		j := gi - l
		if j < 0 {
			break
		}
		begin := sh.ring[j%c]
		sig := sh.sigBuf[len(sh.sigBuf)-l:]
		x.insertLocked(si, sig, int32(j), end.cum-begin.cum, end.t-begin.t)
	}
}

func (x *Index) insertLocked(si int32, sig []byte, start int32, amp, dur float64) {
	e := x.sigs[string(sig)]
	if e == nil {
		e = &sigEntry{cells: make(map[cellKey][]posting)}
		x.sigs[string(sig)] = e
	}
	ck := cellKey{amp: quantize(amp, x.cfg.AmpBucket), dur: quantize(dur, x.cfg.DurBucket)}
	if e.total == 0 {
		e.aMin, e.aMax, e.dMin, e.dMax = ck.amp, ck.amp, ck.dur, ck.dur
	} else {
		if ck.amp < e.aMin {
			e.aMin = ck.amp
		}
		if ck.amp > e.aMax {
			e.aMax = ck.amp
		}
		if ck.dur < e.dMin {
			e.dMin = ck.dur
		}
		if ck.dur > e.dMax {
			e.dMax = ck.dur
		}
	}
	e.cells[ck] = append(e.cells[ck], posting{stream: si, start: start, amp: amp, dur: dur})
	e.total++
	x.windows++
}

// dispNorm mirrors store's displacement norm exactly (Euclidean over
// the shared dimensions), keeping shadow prefix sums bit-identical to
// the store's.
func dispNorm(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for k := 0; k < n; k++ {
		d := b[k] - a[k]
		s += d * d
	}
	return math.Sqrt(s)
}

// ProbeQuery asks for every posting of one state-order string whose
// exact amplitude and duration fall inside the envelope.
type ProbeQuery struct {
	Sig          string
	AmpLo, AmpHi float64
	DurLo, DurHi float64
	// Widened marks a re-probe with a grown envelope (any round after
	// the first of one search); it feeds the widenings metric.
	Widened bool
}

// ProbeResult is one probe's answer, fully copied out of the index.
type ProbeResult struct {
	// Starts maps each stream with at least one hit to its ascending
	// window start positions.
	Starts map[StreamKey][]int32
	// Candidates is the total number of starts across streams.
	Candidates int
	// Exhaustive reports that the envelope admitted every posting
	// stored under the signature: widening further cannot produce new
	// candidates.
	Exhaustive bool
	// Cells is the number of non-empty index cells visited.
	Cells int
}

// Probe runs one envelope probe. Infinite envelope bounds are legal
// and clamp to the buckets actually present.
func (x *Index) Probe(q ProbeQuery) ProbeResult {
	mProbes.Inc()
	if q.Widened {
		mWidenings.Inc()
	}
	x.mu.RLock()
	defer x.mu.RUnlock()

	var res ProbeResult
	e := x.sigs[q.Sig]
	if e == nil || e.total == 0 {
		res.Exhaustive = true
		return res
	}
	aLo := clampBucket(quantize(q.AmpLo, x.cfg.AmpBucket), e.aMin, e.aMax)
	aHi := clampBucket(quantize(q.AmpHi, x.cfg.AmpBucket), e.aMin, e.aMax)
	dLo := clampBucket(quantize(q.DurLo, x.cfg.DurBucket), e.dMin, e.dMax)
	dHi := clampBucket(quantize(q.DurHi, x.cfg.DurBucket), e.dMin, e.dMax)

	perStream := make(map[int32][]int32)
	scanCell := func(cell []posting) {
		res.Cells++
		for _, p := range cell {
			if p.amp < q.AmpLo || p.amp > q.AmpHi || p.dur < q.DurLo || p.dur > q.DurHi {
				continue
			}
			perStream[p.stream] = append(perStream[p.stream], p.start)
			res.Candidates++
		}
	}
	if aLo <= aHi && dLo <= dHi {
		// Visit the bucket rectangle cell by cell, unless iterating the
		// signature's populated cells directly is cheaper.
		area := (int64(aHi) - int64(aLo) + 1) * (int64(dHi) - int64(dLo) + 1)
		if area <= int64(len(e.cells)) {
			for a := aLo; a <= aHi; a++ {
				for d := dLo; d <= dHi; d++ {
					if cell, ok := e.cells[cellKey{amp: a, dur: d}]; ok {
						scanCell(cell)
					}
				}
			}
		} else {
			for ck, cell := range e.cells {
				if ck.amp >= aLo && ck.amp <= aHi && ck.dur >= dLo && ck.dur <= dHi {
					scanCell(cell)
				}
			}
		}
	}
	res.Exhaustive = res.Candidates == e.total
	if len(perStream) > 0 {
		res.Starts = make(map[StreamKey][]int32, len(perStream))
		for si, starts := range perStream {
			sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
			res.Starts[x.streams[si].key] = starts
		}
	}
	return res
}

func clampBucket(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Coverage snapshots, per stream, how far the index has absorbed it
// and whether it is poisoned. The matcher scans (rather than probes)
// every stream whose coverage is missing, poisoned, or shorter than
// the live stream.
func (x *Index) Coverage() map[StreamKey]StreamCoverage {
	x.mu.RLock()
	defer x.mu.RUnlock()
	out := make(map[StreamKey]StreamCoverage, len(x.streams))
	for _, sh := range x.streams {
		out[sh.key] = StreamCoverage{Vertices: sh.n, Poisoned: sh.poisoned}
	}
	return out
}

// Stats returns a point-in-time summary.
func (x *Index) Stats() Stats {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return Stats{
		Streams:         len(x.streams),
		PoisonedStreams: x.poisoned,
		Signatures:      len(x.sigs),
		Windows:         x.windows,
		Config:          x.cfg,
	}
}

func (x *Index) publishGauges() {
	x.mu.RLock()
	w, s, p := x.windows, len(x.streams), x.poisoned
	x.mu.RUnlock()
	mWindows.Set(w)
	mStreams.Set(int64(s))
	mPoisoned.Set(int64(p))
}

// Dump renders every cell and posting in a deterministic text form
// (cells ordered by encoded signature, postings by stream key and
// start, floats as exact bit patterns). Two indexes over identical
// data produce identical dumps regardless of build order; the crash
// recovery tests compare rebuilt and fresh indexes this way.
func (x *Index) Dump() []byte {
	x.mu.RLock()
	defer x.mu.RUnlock()
	type flatCell struct {
		key  string // encoded Signature, the sort key
		sig  Signature
		cell []posting
	}
	flat := make([]flatCell, 0, len(x.sigs))
	for states, e := range x.sigs {
		for ck, cell := range e.cells {
			sig := Signature{States: states, Amp: ck.amp, Dur: ck.dur}
			flat = append(flat, flatCell{key: string(sig.Encode()), sig: sig, cell: cell})
		}
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].key < flat[j].key })
	var out []byte
	for _, fc := range flat {
		out = append(out, fmt.Sprintf("%x %s (%d,%d)\n", fc.key, fc.sig.States, fc.sig.Amp, fc.sig.Dur)...)
		lines := make([]string, 0, len(fc.cell))
		for _, p := range fc.cell {
			k := x.streams[p.stream].key
			lines = append(lines, fmt.Sprintf("  %s/%s j=%d amp=%016x dur=%016x\n",
				k.PatientID, k.SessionID, p.start, math.Float64bits(p.amp), math.Float64bits(p.dur)))
		}
		sort.Strings(lines)
		for _, ln := range lines {
			out = append(out, ln...)
		}
	}
	return out
}
