package sigindex

import "stsmatch/internal/obs"

// Index metrics, registered on the default registry. The probe/widening
// counters increment inside Probe itself, so the per-query counts a
// traced search reports in its index.probe span equal the metric
// deltas by construction.
var (
	mProbes = obs.Default().Counter("stsmatch_sigindex_probes_total",
		"Signature-index probes (one per widening round of an indexed search).")
	mWidenings = obs.Default().Counter("stsmatch_sigindex_widenings_total",
		"Envelope-widening re-probes (rounds beyond the first of an indexed search).")
	mWindows = obs.Default().Gauge("stsmatch_sigindex_windows",
		"Window postings currently stored in the signature index.")
	mStreams = obs.Default().Gauge("stsmatch_sigindex_streams",
		"Streams shadowed by the signature index.")
	mPoisoned = obs.Default().Gauge("stsmatch_sigindex_poisoned_streams",
		"Streams the index refuses to answer for; the matcher scans these instead.")
)
