package sigindex

import (
	"bytes"
	"testing"
)

// FuzzSignatureRoundTrip hammers the signature codec with arbitrary
// bytes (the FuzzWALDecode pattern applied to the index's wire form):
// the decoder must never panic or over-allocate, anything that decodes
// must re-encode canonically, and the canonical encoding must be a
// fixed point of decode-encode.
func FuzzSignatureRoundTrip(f *testing.F) {
	for _, sig := range []Signature{
		{},
		{States: "EOI", Amp: 1, Dur: -1},
		{States: "EOIEOIEOIEOI", Amp: 123, Dur: 456},
		{States: "RRRRRRRRR", Amp: -2147483648, Dur: 2147483647},
	} {
		f.Add(sig.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{3, 'E', 'O'})

	f.Fuzz(func(t *testing.T, data []byte) {
		sig, err := DecodeSignature(data)
		if err != nil {
			return
		}
		// A decoded signature holds only valid state bytes.
		for i := 0; i < len(sig.States); i++ {
			if !validStateByte(sig.States[i]) {
				t.Fatalf("decoded invalid state byte %q at %d", sig.States[i], i)
			}
		}
		// Canonical re-encode must decode to the same value...
		enc := sig.Encode()
		sig2, err := DecodeSignature(enc)
		if err != nil {
			t.Fatalf("re-decode of valid signature failed: %v", err)
		}
		if sig2 != sig {
			t.Fatalf("signature changed across round-trip: %+v -> %+v", sig, sig2)
		}
		// ...and the canonical encoding is a fixed point (input bytes
		// may differ only by non-minimal varints).
		if again := sig2.Encode(); !bytes.Equal(again, enc) {
			t.Fatalf("encoder not a fixed point:\n got %x\nwant %x", again, enc)
		}
	})
}
