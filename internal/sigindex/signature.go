package sigindex

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Signature identifies one inverted-index cell: the state-order string
// of a window's segments plus the quantized bucket of its
// displacement-norm sum (amplitude) and of its duration. The encoded
// form is the stable wire/debug representation used by Dump and the
// fuzz harness; the in-memory index keys on (States, cell) directly.
type Signature struct {
	States string // one byte per segment: 'E', 'O', 'I' or 'R'
	Amp    int32  // floor(window amp / Config.AmpBucket)
	Dur    int32  // floor(window duration / Config.DurBucket)
}

// appendEncoded appends the canonical binary form of the signature:
// uvarint state-string length, the state bytes, then the two bucket
// coordinates as zigzag varints.
func (s Signature) appendEncoded(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(s.States)))
	b = append(b, s.States...)
	b = binary.AppendVarint(b, int64(s.Amp))
	b = binary.AppendVarint(b, int64(s.Dur))
	return b
}

// Encode returns the canonical binary form of the signature.
func (s Signature) Encode() []byte {
	return s.appendEncoded(make([]byte, 0, len(s.States)+2*binary.MaxVarintLen32+binary.MaxVarintLen64))
}

// validStateByte reports whether c is a PLR state code as produced by
// plr.State.Byte().
func validStateByte(c byte) bool {
	return c == 'E' || c == 'O' || c == 'I' || c == 'R'
}

// maxSignatureStates bounds the state-string length a decoder will
// allocate; real signatures are at most a few dozen segments long.
const maxSignatureStates = 1 << 16

// DecodeSignature parses the canonical binary form produced by Encode.
// It rejects truncated input, trailing bytes, state bytes outside the
// PLR alphabet, and bucket coordinates that do not fit in 32 bits.
func DecodeSignature(b []byte) (Signature, error) {
	var sig Signature
	n, off := binary.Uvarint(b)
	if off <= 0 {
		return sig, fmt.Errorf("sigindex: truncated signature length")
	}
	if n > maxSignatureStates || uint64(len(b)-off) < n {
		return sig, fmt.Errorf("sigindex: signature states length %d exceeds input", n)
	}
	states := b[off : off+int(n)]
	for i, c := range states {
		if !validStateByte(c) {
			return sig, fmt.Errorf("sigindex: invalid state byte %q at %d", c, i)
		}
	}
	sig.States = string(states)
	rest := b[off+int(n):]
	amp, an := binary.Varint(rest)
	if an <= 0 || amp < math.MinInt32 || amp > math.MaxInt32 {
		return sig, fmt.Errorf("sigindex: bad amp bucket")
	}
	rest = rest[an:]
	dur, dn := binary.Varint(rest)
	if dn <= 0 || dur < math.MinInt32 || dur > math.MaxInt32 {
		return sig, fmt.Errorf("sigindex: bad dur bucket")
	}
	if len(rest[dn:]) != 0 {
		return sig, fmt.Errorf("sigindex: %d trailing bytes after signature", len(rest[dn:]))
	}
	sig.Amp = int32(amp)
	sig.Dur = int32(dur)
	return sig, nil
}

// quantize maps a value to its bucket coordinate floor(v/width),
// saturating at the int32 range. Saturation can merge far-out buckets,
// which is harmless: buckets only place postings into cells, and every
// probe re-checks the exact stored amp/dur against its envelope.
func quantize(v, width float64) int32 {
	q := math.Floor(v / width)
	switch {
	case q >= math.MaxInt32:
		return math.MaxInt32
	case q <= math.MinInt32:
		return math.MinInt32
	case math.IsNaN(q):
		return 0
	}
	return int32(q)
}
