package sigindex

import (
	"bytes"
	"math"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// breathingSeq builds a deterministic regular-breathing PLR sequence:
// n segments of EX -> EOE -> IN cycles with the given amplitude and a
// slowly varying per-segment duration (so windows spread over several
// duration buckets).
func breathingSeq(t0, amp float64, n int) plr.Sequence {
	states := []plr.State{plr.EX, plr.EOE, plr.IN}
	out := plr.Sequence{{T: t0, Pos: []float64{amp}, State: states[0]}}
	y, t := amp, t0
	for i := 0; i < n; i++ {
		st := states[i%3]
		switch st {
		case plr.EX:
			y -= amp
		case plr.IN:
			y += amp
		}
		t += 1 + 0.1*float64(i%5)
		out[len(out)-1].State = st
		out = append(out, plr.Vertex{T: t, Pos: []float64{y}, State: states[(i+1)%3]})
	}
	return out
}

func buildDB(t *testing.T, amps map[StreamKey]float64) *store.DB {
	t.Helper()
	db := store.NewDB()
	for key, amp := range amps {
		p := db.Patient(key.PatientID)
		if p == nil {
			var err error
			p, err = db.AddPatient(store.PatientInfo{ID: key.PatientID})
			if err != nil {
				t.Fatal(err)
			}
		}
		st := p.AddStream(key.SessionID)
		if err := st.Append(breathingSeq(0, amp, 36)...); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

var testStreams = map[StreamKey]float64{
	{PatientID: "P1", SessionID: "S1"}: 10,
	{PatientID: "P1", SessionID: "S2"}: 10.5,
	{PatientID: "P2", SessionID: "S1"}: 11,
}

func testConfig() Config {
	return Config{MinSegments: 9, MaxSegments: 12, AmpBucket: 4, DurBucket: 4}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{MinSegments: 0, MaxSegments: 5, AmpBucket: 1, DurBucket: 1},
		{MinSegments: 5, MaxSegments: 4, AmpBucket: 1, DurBucket: 1},
		{MinSegments: 1, MaxSegments: 2, AmpBucket: 0, DurBucket: 1},
		{MinSegments: 1, MaxSegments: 2, AmpBucket: 1, DurBucket: math.Inf(1)},
		{MinSegments: 1, MaxSegments: 2, AmpBucket: math.NaN(), DurBucket: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestSignatureRoundTrip(t *testing.T) {
	cases := []Signature{
		{},
		{States: "EOI", Amp: 0, Dur: 0},
		{States: "EOIEOIEOI", Amp: -3, Dur: 17},
		{States: "RRRR", Amp: math.MaxInt32, Dur: math.MinInt32},
	}
	for _, want := range cases {
		got, err := DecodeSignature(want.Encode())
		if err != nil {
			t.Fatalf("decode(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip changed signature: %+v -> %+v", want, got)
		}
	}
	bad := [][]byte{
		nil,
		{5},            // truncated states
		{1, 'X', 0, 0}, // invalid state byte
		append(Signature{States: "E"}.Encode(), 0), // trailing byte
	}
	for i, b := range bad {
		if _, err := DecodeSignature(b); err == nil {
			t.Errorf("bad encoding %d accepted: %x", i, b)
		}
	}
}

// TestProbeMatchesFindWindows cross-checks the inverted index against
// the store's own window search: with an unbounded envelope, a probe
// for any indexed signature must return exactly the starts FindWindows
// reports, per stream, in ascending order.
func TestProbeMatchesFindWindows(t *testing.T) {
	db := buildDB(t, testStreams)
	x, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	x.BuildFrom(db)

	inf := math.Inf(1)
	for _, st := range db.Streams() {
		seq := st.Seq()
		for l := x.Config().MinSegments; l <= x.Config().MaxSegments; l++ {
			for j := 0; j+l < len(seq); j += 7 {
				sig := seq[j : j+l+1].StateSignature()
				pr := x.Probe(ProbeQuery{Sig: sig, AmpLo: -inf, AmpHi: inf, DurLo: -inf, DurHi: inf})
				if !pr.Exhaustive {
					t.Fatalf("unbounded probe not exhaustive for %q", sig)
				}
				for _, other := range db.Streams() {
					want := other.FindWindows(sig)
					got := pr.Starts[StreamKey{PatientID: other.PatientID, SessionID: other.SessionID}]
					if len(got) != len(want) {
						t.Fatalf("probe %q on %s/%s: %d starts, FindWindows %d (%v vs %v)",
							sig, other.PatientID, other.SessionID, len(got), len(want), got, want)
					}
					for i := range want {
						if int(got[i]) != want[i] {
							t.Fatalf("probe %q start %d = %d, want %d", sig, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestProbeEnvelopeExact pins bit-exactness of the stored window
// coordinates: a zero-width envelope at the store's own prefix-sum
// difference must hit the window, and nudging the envelope off by one
// ulp-scale step must miss it.
func TestProbeEnvelopeExact(t *testing.T) {
	db := buildDB(t, testStreams)
	x, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	x.BuildFrom(db)

	st := db.Patient("P1").StreamBySession("S1")
	seq, sums := st.Snapshot()
	l := x.Config().MinSegments
	j := 3
	sig := seq[j : j+l+1].StateSignature()
	amp := sums[j+l] - sums[j]
	dur := seq[j+l].T - seq[j].T

	pr := x.Probe(ProbeQuery{Sig: sig, AmpLo: amp, AmpHi: amp, DurLo: dur, DurHi: dur})
	found := false
	for _, s := range pr.Starts[StreamKey{PatientID: "P1", SessionID: "S1"}] {
		if int(s) == j {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero-width envelope at exact (amp=%v dur=%v) missed window %d", amp, dur, j)
	}

	lo := math.Nextafter(amp, math.Inf(1))
	pr = x.Probe(ProbeQuery{Sig: sig, AmpLo: lo, AmpHi: math.Inf(1), DurLo: dur, DurHi: dur})
	for _, s := range pr.Starts[StreamKey{PatientID: "P1", SessionID: "S1"}] {
		if int(s) == j {
			t.Fatalf("envelope excluding exact amp still hit window %d", j)
		}
	}
	if pr.Exhaustive && pr.Candidates == 0 {
		// Exhaustive with zero candidates would mean the sig is empty,
		// contradicting the hit above.
		t.Fatal("inconsistent exhaustive result")
	}
}

// TestIncrementalMatchesBuildFrom: feeding vertices through the
// mutation hook in many small batches yields a byte-identical index to
// a one-shot BuildFrom over the finished database.
func TestIncrementalMatchesBuildFrom(t *testing.T) {
	cfg := testConfig()
	incr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db := store.NewDB()
	db.AddMutationHook(incr.OnMutation)
	for key, amp := range testStreams {
		p := db.Patient(key.PatientID)
		if p == nil {
			p, err = db.AddPatient(store.PatientInfo{ID: key.PatientID})
			if err != nil {
				t.Fatal(err)
			}
		}
		st := p.AddStream(key.SessionID)
		seq := breathingSeq(0, amp, 36)
		for i := 0; i < len(seq); i += 3 {
			end := i + 3
			if end > len(seq) {
				end = len(seq)
			}
			if err := st.Append(seq[i:end]...); err != nil {
				t.Fatal(err)
			}
		}
	}

	fresh, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh.BuildFrom(db)

	if !bytes.Equal(incr.Dump(), fresh.Dump()) {
		t.Fatalf("incremental and one-shot indexes differ:\nincremental:\n%s\nfresh:\n%s",
			incr.Dump(), fresh.Dump())
	}
	is, fs := incr.Stats(), fresh.Stats()
	if is != fs {
		t.Fatalf("stats differ: %+v vs %+v", is, fs)
	}
	if is.Windows == 0 {
		t.Fatal("no windows indexed")
	}

	cov := incr.Coverage()
	for key := range testStreams {
		c, ok := cov[key]
		if !ok || c.Poisoned || c.Vertices != 37 {
			t.Fatalf("coverage for %v = %+v, want 37 unpoisoned vertices", key, c)
		}
	}
}

// TestPoisoning pins the safety valves: duplicate stream keys and
// appends to never-opened streams poison exactly the affected shadow,
// leaving the rest of the index intact.
func TestPoisoning(t *testing.T) {
	cfg := testConfig()
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := StreamKey{PatientID: "P1", SessionID: "S1"}
	x.OnMutation(store.Mutation{Kind: store.MutStreamOpen, PatientID: "P1", SessionID: "S1"})
	x.OnMutation(store.Mutation{Kind: store.MutVertexAppend, PatientID: "P1", SessionID: "S1",
		Vertices: breathingSeq(0, 10, 12)})

	// Duplicate open of the same session poisons it.
	x.OnMutation(store.Mutation{Kind: store.MutStreamOpen, PatientID: "P1", SessionID: "S1"})
	if c := x.Coverage()[good]; !c.Poisoned {
		t.Fatal("duplicate stream-open did not poison the shadow")
	}

	// Mid-stream append to an unknown key registers it poisoned.
	x.OnMutation(store.Mutation{Kind: store.MutVertexAppend, PatientID: "P9", SessionID: "S9",
		Vertices: breathingSeq(100, 5, 12)})
	if c := x.Coverage()[StreamKey{PatientID: "P9", SessionID: "S9"}]; !c.Poisoned {
		t.Fatal("append to unknown stream not poisoned")
	}
	if got := x.Stats().PoisonedStreams; got != 2 {
		t.Fatalf("poisoned streams = %d, want 2", got)
	}
}
