package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(10)
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "h")
	b := r.Counter("same_total", "h")
	if a != b {
		t.Fatal("re-registering a counter must return the same instance")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters out of sync")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.01+0.05+0.5+5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	// le="0.01" is inclusive: 0.005 and 0.01 land there.
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.01"} 2`,
		`test_lat_seconds_bucket{le="0.1"} 3`,
		`test_lat_seconds_bucket{le="1"} 4`,
		`test_lat_seconds_bucket{le="+Inf"} 5`,
		`test_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_req_total", "requests", "route", "code")
	v.With("predict", "2xx").Add(3)
	v.With("predict", "5xx").Inc()
	v.With("stats", "2xx").Inc()
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_req_total counter",
		`test_req_total{route="predict",code="2xx"} 3`,
		`test_req_total{route="predict",code="5xx"} 1`,
		`test_req_total{route="stats",code="2xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.GaugeFunc("test_live", "live value", func() float64 { return n + 1 })
	pts := r.Gather()
	found := false
	for _, p := range pts {
		if p.Name == "test_live" {
			found = true
			if p.Value != 42 {
				t.Fatalf("gauge func = %v, want 42", p.Value)
			}
		}
	}
	if !found {
		t.Fatal("gauge func missing from Gather")
	}
}

func TestGatherHistogramFlattens(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h_seconds", "h", []float64{1})
	h.Observe(0.5)
	h.Observe(2)
	got := map[string]float64{}
	for _, p := range r.Gather() {
		got[p.Name] = p.Value
	}
	if got["test_h_seconds_count"] != 2 {
		t.Fatalf("count point = %v, want 2", got["test_h_seconds_count"])
	}
	if got["test_h_seconds_sum"] != 2.5 {
		t.Fatalf("sum point = %v, want 2.5", got["test_h_seconds_sum"])
	}
}

// TestConcurrentScrape exercises the registry under -race: writers
// hammer counters/histograms/vec children while readers render the
// exposition.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "race")
	h := r.Histogram("race_seconds", "race", DefLatencyBuckets)
	v := r.CounterVec("race_vec_total", "race", "k")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				v.With(string(rune('a' + id))).Inc()
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				r.WritePrometheus(&buf)
				r.Gather()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 2000 {
		t.Fatalf("counter = %d, want 2000", c.Value())
	}
	if h.Count() != 2000 {
		t.Fatalf("histogram count = %d, want 2000", h.Count())
	}
}
