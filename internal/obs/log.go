package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// levelVar is the shared dynamic level for loggers built by this
// package, so daemons can raise or lower verbosity at runtime.
var levelVar = new(slog.LevelVar)

var initMu sync.Mutex

// InitLogging installs a process-wide slog default handler writing to
// w at the given level. asJSON selects JSON lines (for log shippers)
// over the human-readable text handler. It is safe to call more than
// once; the last call wins.
func InitLogging(w io.Writer, level slog.Level, asJSON bool) {
	initMu.Lock()
	defer initMu.Unlock()
	levelVar.Set(level)
	opts := &slog.HandlerOptions{Level: levelVar}
	var h slog.Handler
	if asJSON {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	slog.SetDefault(slog.New(h))
}

// SetLevel adjusts the level of loggers installed by InitLogging.
func SetLevel(level slog.Level) { levelVar.Set(level) }

// ParseLevel converts a -log-level flag value ("debug", "info",
// "warn", "error") to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger returns a component-scoped structured logger. Components are
// stable short names ("server", "streamd", "segmenter") that make one
// process's interleaved logs filterable.
func Logger(component string) *slog.Logger {
	return slog.Default().With(slog.String("component", component))
}

// SummaryAttrs flattens the registry into slog attributes, one per
// metric point, for the per-run metrics summary the daemons log on
// exit. Zero-valued points are skipped to keep the summary readable.
func SummaryAttrs(r *Registry) []any {
	var attrs []any
	for _, p := range r.Gather() {
		if p.Value == 0 {
			continue
		}
		attrs = append(attrs, slog.Float64(p.Name, p.Value))
	}
	return attrs
}
