// Distributed tracing: a stdlib-only Trace/Span API with W3C
// traceparent-style header propagation, a bounded in-memory trace
// collector with a slow-trace ring (the worst requests are always
// retained), and helpers for serializing span trees into per-query
// "explain" profiles.
//
// The design is deliberately small:
//
//   - A Trace is one request's tree of Spans, identified by a 128-bit
//     trace ID. Spans carry a 64-bit span ID, their parent's span ID,
//     monotonic timings, and key-value annotations.
//   - Context plumbing mirrors net/http: TraceHTTP starts (or, from an
//     incoming Traceparent header, continues) a trace per request and
//     stores the root span in the request context; StartSpan derives
//     children. When the context carries no span, StartSpan returns a
//     nil *Span whose methods all no-op, so instrumented code pays
//     nothing on untraced paths.
//   - When the root span finishes, the whole trace is offered to the
//     service's Collector: a fixed-capacity ring of recent traces plus
//     a second ring that only admits traces slower than a threshold,
//     so a burst of fast requests can never evict the evidence of a
//     slow one. GET /v1/traces serves both rings as JSON.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SpanContext is the propagated position in a trace: enough for a
// downstream service to attach its spans to the caller's tree.
type SpanContext struct {
	TraceID string // 32 lowercase hex chars, not all-zero
	SpanID  string // 16 lowercase hex chars, not all-zero
}

// Valid reports whether the context identifies a real trace position.
func (c SpanContext) Valid() bool {
	return isHexID(c.TraceID, 32) && isHexID(c.SpanID, 16)
}

// isHexID checks an ID is exactly n lowercase hex chars and not
// all-zero (the W3C spec reserves the all-zero IDs as invalid).
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

func newHexID(bytes int) string {
	b := make([]byte, bytes)
	for {
		if _, err := rand.Read(b); err != nil {
			// crypto/rand failing is effectively fatal elsewhere; fall
			// back to a fixed non-zero ID rather than panicking in an
			// observability layer.
			b[0] = 1
		}
		s := hex.EncodeToString(b)
		if isHexID(s, 2*bytes) {
			return s
		}
	}
}

// NewTraceID returns a fresh 128-bit trace ID.
func NewTraceID() string { return newHexID(16) }

// NewSpanID returns a fresh 64-bit span ID.
func NewSpanID() string { return newHexID(8) }

// TraceparentHeader is the propagation header, in the W3C trace
// context format: "00-<trace-id>-<parent-span-id>-<flags>".
const TraceparentHeader = "Traceparent"

// traceparentLen is the exact length of a version-00 traceparent
// value; anything longer is oversized and rejected.
const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// ParseTraceparent parses a traceparent header value. Malformed,
// oversized, or all-zero inputs return ok=false — the caller then
// starts a fresh trace instead of propagating garbage.
func ParseTraceparent(h string) (sc SpanContext, ok bool) {
	if len(h) != traceparentLen {
		return SpanContext{}, false
	}
	if h[0:2] != "00" || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	sc = SpanContext{TraceID: h[3:35], SpanID: h[36:52]}
	if !sc.Valid() || !isHexByte(h[53]) || !isHexByte(h[54]) {
		return SpanContext{}, false
	}
	return sc, true
}

func isHexByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f'
}

// FormatTraceparent renders the traceparent header value for an
// outgoing request, with the sampled flag set.
func FormatTraceparent(c SpanContext) string {
	return "00-" + c.TraceID + "-" + c.SpanID + "-01"
}

// SpanData is one finished (or snapshotted in-progress) span in wire
// form: the unit of /v1/traces payloads and ?debug=profile responses.
type SpanData struct {
	TraceID    string         `json:"traceId"`
	SpanID     string         `json:"spanId"`
	ParentID   string         `json:"parentId,omitempty"`
	Name       string         `json:"name"`
	Service    string         `json:"service"`
	Start      int64          `json:"startUnixNano"`
	DurationNS int64          `json:"durationNs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	InProgress bool           `json:"inProgress,omitempty"`
}

// Span is one timed operation inside a trace. A nil *Span is a valid
// no-op span: every method tolerates a nil receiver, so instrumented
// code can call StartSpan/Annotate/Finish unconditionally.
type Span struct {
	tr       *trace
	name     string
	id       string
	parentID string
	start    time.Time // carries the monotonic clock reading

	mu    sync.Mutex
	attrs map[string]any
	dur   time.Duration
	done  bool
}

// trace accumulates one request's spans until the root finishes.
type trace struct {
	id      string
	service string
	col     *Collector
	root    *Span

	mu    sync.Mutex
	spans []*Span
	extra []SpanData // merged spans from downstream services
}

// StartTrace begins a new trace rooted at a span with the given name.
// A valid parent (from an incoming traceparent header) continues the
// caller's trace; otherwise a fresh trace ID is minted. When the root
// span finishes, the assembled trace is offered to col (which may be
// nil to trace without collecting, e.g. in benchmarks).
func StartTrace(name, service string, parent SpanContext, col *Collector) *Span {
	tr := &trace{service: service, col: col}
	sp := &Span{tr: tr, name: name, id: NewSpanID(), start: time.Now()}
	if parent.Valid() {
		tr.id = parent.TraceID
		sp.parentID = parent.SpanID
	} else {
		tr.id = NewTraceID()
	}
	tr.root = sp
	tr.spans = append(tr.spans, sp)
	return sp
}

type spanCtxKey int

const spanKey spanCtxKey = iota

// ContextWithSpan stores a span in a context for StartSpan to derive
// children from.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFromContext returns the current span, or nil when the context
// is untraced.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan starts a child of the context's current span and returns
// a derived context carrying it. On an untraced context it returns
// (ctx, nil); the nil span's methods no-op, so callers need no guard
// beyond skipping genuinely expensive measurement work.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil || parent.tr == nil {
		return ctx, nil
	}
	sp := &Span{tr: parent.tr, name: name, id: NewSpanID(), parentID: parent.id, start: time.Now()}
	parent.tr.mu.Lock()
	parent.tr.spans = append(parent.tr.spans, sp)
	parent.tr.mu.Unlock()
	return ContextWithSpan(ctx, sp), sp
}

// AddSpan records an already-measured child span under the context's
// current span: the shape used for synthetic stage spans whose
// durations were accumulated out-of-band (e.g. the matcher funnel
// stages, aggregated across workers).
func AddSpan(ctx context.Context, name string, start time.Time, d time.Duration, attrs map[string]any) {
	_, sp := StartSpan(ctx, name)
	if sp == nil {
		return
	}
	sp.start = start
	sp.mu.Lock()
	sp.attrs = attrs
	sp.mu.Unlock()
	sp.FinishWithDuration(d)
}

// AddExternalSpans merges spans returned by a downstream service into
// the context's trace (a gateway merging backend query profiles), so
// the collector retains the full cross-service tree.
func AddExternalSpans(ctx context.Context, spans []SpanData) {
	sp := SpanFromContext(ctx)
	if sp == nil || sp.tr == nil || len(spans) == 0 {
		return
	}
	sp.tr.mu.Lock()
	sp.tr.extra = append(sp.tr.extra, spans...)
	sp.tr.mu.Unlock()
}

// Context returns the span's propagation context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tr.id, SpanID: s.id}
}

// TraceID returns the span's trace ID ("" for nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// Annotate attaches a key-value annotation to the span. Safe for
// concurrent use and on a nil span.
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Finish stamps the span's duration from the monotonic clock. The
// first Finish wins; concurrent and repeated calls are safe. Finishing
// the root span offers the assembled trace to the collector.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.FinishWithDuration(time.Since(s.start))
}

// FinishWithDuration finishes the span with an explicit duration
// (synthetic stage spans measured out-of-band).
func (s *Span) FinishWithDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.dur = d
	s.mu.Unlock()
	if s == s.tr.root && s.tr.col != nil {
		s.tr.col.Offer(s.tr.data())
	}
}

// data snapshots one span (in-progress spans report elapsed-so-far).
func (s *Span) data() SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := SpanData{
		TraceID:  s.tr.id,
		SpanID:   s.id,
		ParentID: s.parentID,
		Name:     s.name,
		Service:  s.tr.service,
		Start:    s.start.UnixNano(),
	}
	if s.done {
		d.DurationNS = s.dur.Nanoseconds()
	} else {
		d.DurationNS = time.Since(s.start).Nanoseconds()
		d.InProgress = true
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			d.Attrs[k] = v
		}
	}
	return d
}

// data snapshots the whole trace, including merged external spans.
func (t *trace) data() TraceData {
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	extra := append([]SpanData(nil), t.extra...)
	t.mu.Unlock()
	td := TraceData{TraceID: t.id, Service: t.service}
	for _, sp := range spans {
		td.Spans = append(td.Spans, sp.data())
	}
	td.Spans = append(td.Spans, extra...)
	if t.root != nil {
		rd := t.root.data()
		td.Root = rd.Name
		td.Start = rd.Start
		td.DurationNS = rd.DurationNS
	}
	return td
}

// SnapshotTrace returns the context's trace ID and every span
// recorded so far, including still-open spans (marked InProgress).
// An untraced context returns ("", nil). This is the building block
// of the ?debug=profile inline explain: a handler can serialize its
// own trace before the root span has finished.
func SnapshotTrace(ctx context.Context) (traceID string, spans []SpanData) {
	sp := SpanFromContext(ctx)
	if sp == nil || sp.tr == nil {
		return "", nil
	}
	td := sp.tr.data()
	return td.TraceID, td.Spans
}

// TraceData is one assembled trace as stored by the Collector.
type TraceData struct {
	TraceID    string     `json:"traceId"`
	Root       string     `json:"root"`
	Service    string     `json:"service"`
	Start      int64      `json:"startUnixNano"`
	DurationNS int64      `json:"durationNs"`
	Spans      []SpanData `json:"spans"`
}

// Collector is a bounded in-memory trace store: a FIFO ring of the
// most recent traces plus a slow-trace ring that only admits traces
// whose root duration meets the threshold, so the worst requests
// survive any amount of fast traffic.
type Collector struct {
	capacity  int
	threshold time.Duration

	mu      sync.Mutex
	recent  ring
	slow    ring
	offered uint64
}

// ring is a fixed-capacity FIFO of traces.
type ring struct {
	buf  []TraceData
	head int // index of the oldest element
	n    int
}

func (r *ring) push(td TraceData) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = td
		r.n++
		return
	}
	// Full: overwrite the oldest (eviction is strictly FIFO).
	r.buf[r.head] = td
	r.head = (r.head + 1) % len(r.buf)
}

// list returns newest-first.
func (r *ring) list() []TraceData {
	out := make([]TraceData, 0, r.n)
	for i := r.n - 1; i >= 0; i-- {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// DefaultTraceCapacity bounds each collector ring when the caller
// passes 0.
const DefaultTraceCapacity = 256

// DefaultSlowThreshold is the slow-trace capture threshold when the
// caller passes 0.
const DefaultSlowThreshold = 250 * time.Millisecond

// NewCollector builds a collector retaining up to capacity recent
// traces and up to capacity slow traces (root duration >= threshold).
// Zero values select the defaults.
func NewCollector(capacity int, threshold time.Duration) *Collector {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if threshold <= 0 {
		threshold = DefaultSlowThreshold
	}
	return &Collector{
		capacity:  capacity,
		threshold: threshold,
		recent:    ring{buf: make([]TraceData, capacity)},
		slow:      ring{buf: make([]TraceData, capacity)},
	}
}

// SlowThreshold returns the slow-trace capture threshold.
func (c *Collector) SlowThreshold() time.Duration { return c.threshold }

// Offer stores a finished trace, evicting the oldest recent trace at
// capacity; traces at or above the slow threshold are additionally
// pinned in the slow ring. Nil collectors discard silently.
func (c *Collector) Offer(td TraceData) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.offered++
	c.recent.push(td)
	if time.Duration(td.DurationNS) >= c.threshold {
		c.slow.push(td)
	}
}

// OfferSlow stores a trace only if it meets the slow threshold,
// bypassing the recent ring. Background work (e.g. WAL group-commit
// flushes) uses this so steady-state ticks don't drown request traces.
func (c *Collector) OfferSlow(td TraceData) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Duration(td.DurationNS) >= c.threshold {
		c.offered++
		c.slow.push(td)
	}
}

// Recent returns the recent-trace ring, newest first.
func (c *Collector) Recent() []TraceData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recent.list()
}

// Slow returns the slow-trace ring, newest first.
func (c *Collector) Slow() []TraceData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slow.list()
}

// tracesPayload is the GET /v1/traces response schema.
type tracesPayload struct {
	Capacity        int         `json:"capacity"`
	SlowThresholdMS float64     `json:"slowThresholdMs"`
	Offered         uint64      `json:"offered"`
	Recent          []TraceData `json:"recent"`
	Slow            []TraceData `json:"slow"`
}

// Handler serves the collector's contents as JSON — mount it at
// GET /v1/traces.
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		p := tracesPayload{
			Capacity:        c.capacity,
			SlowThresholdMS: float64(c.threshold) / float64(time.Millisecond),
			Offered:         c.offered,
			Recent:          c.recent.list(),
			Slow:            c.slow.list(),
		}
		c.mu.Unlock()
		if id := r.URL.Query().Get("trace"); id != "" {
			p.Recent = filterTraces(p.Recent, id)
			p.Slow = filterTraces(p.Slow, id)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(p) //nolint:errcheck
	})
}

func filterTraces(in []TraceData, id string) []TraceData {
	out := in[:0:0]
	for _, td := range in {
		if td.TraceID == id {
			out = append(out, td)
		}
	}
	return out
}

// TraceHTTP starts (or, from an incoming Traceparent header,
// continues) a trace for each request, stores the root span in the
// request context, and echoes the trace ID as X-Trace-Id so clients
// can look their request up in /v1/traces. Finished traces go to col.
// Scrape and probe endpoints (/metrics, /v1/healthz) and /v1/traces
// itself are not traced: a 2-second health prober would otherwise
// dominate the recent ring.
func TraceHTTP(service string, col *Collector, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if noisyPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		parent, _ := ParseTraceparent(r.Header.Get(TraceparentHeader))
		sp := StartTrace(r.Method+" "+r.URL.Path, service, parent, col)
		if rid := RequestIDFrom(r.Context()); rid != "" {
			sp.Annotate("requestId", rid)
		}
		w.Header().Set("X-Trace-Id", sp.TraceID())
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(ContextWithSpan(r.Context(), sp)))
		sp.Annotate("status", rec.code)
		sp.Finish()
	})
}

// noisyPath reports whether a path is high-frequency machine traffic
// (scrapes and probes) excluded from tracing and access logs.
func noisyPath(p string) bool {
	return p == "/metrics" || p == "/v1/healthz" || p == "/v1/traces"
}

// InjectHeaders stamps the outgoing propagation headers — Traceparent
// from the context's span and X-Request-Id from the request-ID
// middleware — onto a downstream request, so one logical request can
// be joined across services in both traces and logs.
func InjectHeaders(ctx context.Context, h http.Header) {
	if sp := SpanFromContext(ctx); sp != nil {
		h.Set(TraceparentHeader, FormatTraceparent(sp.Context()))
	}
	if rid := RequestIDFrom(ctx); rid != "" {
		h.Set("X-Request-Id", rid)
	}
}

// Profile is the inline "explain" payload of ?debug=profile: the
// query's span tree with stage durations and funnel counts.
type Profile struct {
	TraceID string    `json:"traceId"`
	Root    *SpanNode `json:"root"`
}

// SpanNode is one node of a nested span tree.
type SpanNode struct {
	SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildTree nests a flat span list by parent ID. Spans whose parent
// is absent are roots; with multiple roots (a partial snapshot) a
// synthetic root binds them. Children sort by start time, then name,
// so the tree is deterministic. Returns nil for an empty list.
func BuildTree(spans []SpanData) *SpanNode {
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[string]*SpanNode, len(spans))
	order := make([]*SpanNode, 0, len(spans))
	for _, sd := range spans {
		n := &SpanNode{SpanData: sd}
		nodes[sd.SpanID] = n
		order = append(order, n)
	}
	var roots []*SpanNode
	for _, n := range order {
		if p, ok := nodes[n.ParentID]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes := func(ns []*SpanNode) {
		sort.Slice(ns, func(a, b int) bool {
			if ns[a].Start != ns[b].Start {
				return ns[a].Start < ns[b].Start
			}
			return ns[a].Name < ns[b].Name
		})
	}
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		sortNodes(n.Children)
		for _, c := range n.Children {
			walk(c)
		}
	}
	sortNodes(roots)
	for _, r := range roots {
		walk(r)
	}
	if len(roots) == 1 {
		return roots[0]
	}
	syn := &SpanNode{SpanData: SpanData{TraceID: roots[0].TraceID, Name: "(detached)"}, Children: roots}
	return syn
}

// Flatten walks a span tree back into a flat list (pre-order).
func (n *SpanNode) Flatten() []SpanData {
	if n == nil {
		return nil
	}
	out := []SpanData{n.SpanData}
	for _, c := range n.Children {
		out = append(out, c.Flatten()...)
	}
	return out
}

// RecordStandalone builds a single-span trace for background work
// that has no request context (e.g. the WAL group-commit flusher) and
// offers it to the collector's slow ring only.
func RecordStandalone(col *Collector, service, name string, start time.Time, d time.Duration, attrs map[string]any) {
	if col == nil {
		return
	}
	sd := SpanData{
		TraceID:    NewTraceID(),
		SpanID:     NewSpanID(),
		Name:       name,
		Service:    service,
		Start:      start.UnixNano(),
		DurationNS: d.Nanoseconds(),
		Attrs:      attrs,
	}
	col.OfferSlow(TraceData{
		TraceID:    sd.TraceID,
		Root:       name,
		Service:    service,
		Start:      sd.Start,
		DurationNS: sd.DurationNS,
		Spans:      []SpanData{sd},
	})
}
