package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// HTTPMetrics instruments an HTTP service: per-route request counts by
// status class, per-route latency histograms, and an in-flight gauge.
type HTTPMetrics struct {
	Requests *CounterVec   // labels: route, code (status class "2xx".."5xx")
	Latency  *HistogramVec // labels: route
	InFlight *Gauge
}

// NewHTTPMetrics registers the standard HTTP metric families on r
// under the given prefix (e.g. "stsmatch"). Calling it twice with the
// same registry and prefix returns handles to the same metrics.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec(prefix+"_http_requests_total",
			"HTTP requests served, by route and status class.", "route", "code"),
		Latency: r.HistogramVec(prefix+"_http_request_seconds",
			"HTTP request latency in seconds, by route.", DefLatencyBuckets, "route"),
		InFlight: r.Gauge(prefix+"_http_in_flight",
			"HTTP requests currently being served."),
	}
}

// statusRecorder captures the response status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return fmt.Sprintf("%dxx", code/100)
}

// Wrap instruments one route: requests count under the given route
// label, latency is observed on completion, and the in-flight gauge
// tracks concurrent handlers.
func (m *HTTPMetrics) Wrap(route string, next http.Handler) http.Handler {
	return m.wrap(route, next, true)
}

// WrapScrape instruments a route in the request counter and latency
// histogram but not the in-flight gauge. It exists for the /metrics
// route itself: a scrape always observes its own handler running, so
// including it would make the gauge read >= 1 on every sample.
func (m *HTTPMetrics) WrapScrape(route string, next http.Handler) http.Handler {
	return m.wrap(route, next, false)
}

func (m *HTTPMetrics) wrap(route string, next http.Handler, inFlight bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inFlight {
			m.InFlight.Inc()
			defer m.InFlight.Dec()
		}
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		m.Requests.With(route, statusClass(rec.code)).Inc()
		m.Latency.With(route).Observe(time.Since(start).Seconds())
	})
}

type ctxKey int

const requestIDKey ctxKey = iota

// ridPrefix makes request IDs unique across process restarts.
var ridPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}()

var ridCounter atomic.Uint64

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", ridPrefix, ridCounter.Add(1))
}

// maxRequestIDLen caps accepted client-supplied request IDs; longer
// ones are replaced, not truncated, so an ID in the logs is always
// exactly what was propagated.
const maxRequestIDLen = 128

// wellFormedRequestID accepts printable ASCII without spaces, control
// characters, or quotes — enough to be safe in logs and headers while
// still admitting client conventions like "client-123" or UUIDs.
func wellFormedRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return false
		}
	}
	return true
}

// RequestID propagates (or assigns) an X-Request-Id header, storing
// the ID in the request context and echoing it on the response so a
// client can correlate its call with the server's logs. Incoming IDs
// are reused only when well-formed (printable, no spaces, ≤128 bytes)
// — the gateway forwards its ID to backends on scatter-gather and
// replication calls, so one request keeps one ID across services.
func RequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if !wellFormedRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
	})
}

// RequestIDFrom returns the request ID stored by the RequestID
// middleware, or "" when none is present.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// AccessLog logs one line per request. Successful requests log at
// debug (so steady-state traffic stays quiet at the default level);
// server errors log at warn. Scrape and probe endpoints (/metrics,
// /v1/healthz) are not logged at all — a 15-second scrape interval
// would otherwise dominate the output — but still count in the HTTP
// request metrics, which wrap routes below this middleware.
func AccessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" || r.URL.Path == "/v1/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.code),
			slog.Duration("dur", time.Since(start)),
			slog.String("requestId", RequestIDFrom(r.Context())),
		}
		if sp := SpanFromContext(r.Context()); sp != nil {
			attrs = append(attrs, slog.String("traceId", sp.TraceID()))
		}
		if rec.code >= 500 {
			log.Warn("request", attrs...)
		} else {
			log.Debug("request", attrs...)
		}
	})
}

// AttachPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/, plus the expvar JSON dump at /debug/vars (expvar
// only self-registers on http.DefaultServeMux, which daemons here
// never serve), for daemons that opt in via a -pprof flag. The
// handlers are deliberately not registered by default: debug
// endpoints should not be reachable unless asked for.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
}
