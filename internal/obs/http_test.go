package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRequestIDAssignsAndEchoes(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" {
		t.Fatal("no request ID in context")
	}
	if got := rec.Header().Get("X-Request-Id"); got != seen {
		t.Fatalf("response header %q != context id %q", got, seen)
	}

	// An incoming ID is propagated, not replaced.
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-Id", "client-123")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "client-123" || rec.Header().Get("X-Request-Id") != "client-123" {
		t.Fatalf("incoming id not propagated: ctx=%q header=%q", seen, rec.Header().Get("X-Request-Id"))
	}
}

func TestHTTPMetricsWrap(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "t")
	okh := m.Wrap("ok", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if m.InFlight.Value() != 1 {
			t.Errorf("in-flight inside handler = %d, want 1", m.InFlight.Value())
		}
	}))
	errh := m.Wrap("boom", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	for i := 0; i < 3; i++ {
		okh.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))
	}
	errh.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/boom", nil))

	if got := m.Requests.With("ok", "2xx").Value(); got != 3 {
		t.Fatalf("ok 2xx = %d, want 3", got)
	}
	if got := m.Requests.With("boom", "5xx").Value(); got != 1 {
		t.Fatalf("boom 5xx = %d, want 1", got)
	}
	if got := m.Latency.With("ok").Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	if got := m.InFlight.Value(); got != 0 {
		t.Fatalf("in-flight after requests = %d, want 0", got)
	}
}

func TestStatusClass(t *testing.T) {
	cases := map[int]string{200: "2xx", 201: "2xx", 404: "4xx", 503: "5xx", 42: "other"}
	for code, want := range cases {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestAccessLogLevels(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	h := AccessLog(log, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "oops", http.StatusInternalServerError)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/fail", nil))
	out := buf.String()
	if !strings.Contains(out, "level=WARN") || !strings.Contains(out, "status=500") {
		t.Fatalf("5xx not logged at warn with status: %s", out)
	}
}

func TestAttachPprof(t *testing.T) {
	mux := http.NewServeMux()
	AttachPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}
}
