package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if !sc.Valid() {
		t.Fatalf("fresh IDs invalid: %+v", sc)
	}
	h := FormatTraceparent(sc)
	got, ok := ParseTraceparent(h)
	if !ok || got != sc {
		t.Fatalf("round trip: %q -> (%+v, %v), want %+v", h, got, ok, sc)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	valid := "00-0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("reference value rejected: %q", valid)
	}
	bad := []string{
		"",
		"00",
		valid + "-extrastate", // oversized
		"ff-0123456789abcdef0123456789abcdef-0123456789abcdef-01",   // unknown version
		"00-00000000000000000000000000000000-0123456789abcdef-01",   // all-zero trace ID
		"00-0123456789abcdef0123456789abcdef-0000000000000000-01",   // all-zero span ID
		"00-0123456789ABCDEF0123456789ABCDEF-0123456789abcdef-01",   // uppercase hex
		"00_0123456789abcdef0123456789abcdef-0123456789abcdef-01",   // wrong separator
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-0g",   // non-hex flags
		"00-0123456789abcdef0123456789abcde-0123456789abcdeff-01",   // shifted field widths
		strings.Repeat("0", 2*traceparentLen),                       // oversized garbage
		"00-0123456789abcdef0123456789abcdef-0123456789abcdef-01\n", // trailing byte
	}
	for _, h := range bad {
		if sc, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %+v", h, sc)
		}
	}
}

// TestTraceHTTPFreshTraceOnMalformedHeader is the propagation safety
// contract: garbage in the Traceparent header must start a fresh trace,
// never join (or crash on) the claimed one.
func TestTraceHTTPFreshTraceOnMalformedHeader(t *testing.T) {
	col := NewCollector(8, time.Hour)
	var rootParent string
	h := TraceHTTP("svc", col, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := SpanFromContext(r.Context())
		if sp == nil {
			t.Fatal("no span in traced request context")
		}
		rootParent = sp.parentID
	}))

	for _, hdr := range []string{"not-a-traceparent", strings.Repeat("a", 4096)} {
		req := httptest.NewRequest("GET", "/v1/match", nil)
		req.Header.Set(TraceparentHeader, hdr)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		id := rec.Header().Get("X-Trace-Id")
		if !isHexID(id, 32) {
			t.Fatalf("fresh trace ID malformed: %q", id)
		}
		if rootParent != "" {
			t.Fatalf("root span has parent %q from a malformed header", rootParent)
		}
	}
}

func TestTraceHTTPContinuesValidTrace(t *testing.T) {
	col := NewCollector(8, time.Hour)
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	var gotTrace, gotParent string
	h := TraceHTTP("svc", col, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := SpanFromContext(r.Context())
		gotTrace, gotParent = sp.TraceID(), sp.parentID
	}))
	req := httptest.NewRequest("POST", "/v1/match", nil)
	req.Header.Set(TraceparentHeader, FormatTraceparent(parent))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if gotTrace != parent.TraceID || gotParent != parent.SpanID {
		t.Fatalf("trace not continued: trace=%q parent=%q, want %+v", gotTrace, gotParent, parent)
	}
	if rec.Header().Get("X-Trace-Id") != parent.TraceID {
		t.Fatalf("X-Trace-Id %q != propagated trace %q", rec.Header().Get("X-Trace-Id"), parent.TraceID)
	}
	// The finished trace landed in the collector under the caller's ID.
	recent := col.Recent()
	if len(recent) != 1 || recent[0].TraceID != parent.TraceID {
		t.Fatalf("collector holds %+v, want 1 trace %s", recent, parent.TraceID)
	}
}

func TestTraceHTTPSkipsNoisyPaths(t *testing.T) {
	col := NewCollector(8, time.Hour)
	h := TraceHTTP("svc", col, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sp := SpanFromContext(r.Context()); sp != nil {
			t.Errorf("%s is traced", r.URL.Path)
		}
	}))
	for _, p := range []string{"/metrics", "/v1/healthz", "/v1/traces"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", p, nil))
	}
	if got := col.Recent(); len(got) != 0 {
		t.Fatalf("noisy paths produced %d traces", len(got))
	}
}

func TestCollectorFIFOEviction(t *testing.T) {
	col := NewCollector(3, time.Hour)
	for i := 1; i <= 5; i++ {
		col.Offer(TraceData{TraceID: fmt.Sprintf("t%d", i), Root: "r"})
	}
	got := col.Recent()
	want := []string{"t5", "t4", "t3"} // newest first; t1, t2 evicted in order
	if len(got) != len(want) {
		t.Fatalf("recent holds %d traces, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].TraceID != id {
			t.Fatalf("recent[%d] = %s, want %s (full: %+v)", i, got[i].TraceID, id, got)
		}
	}
}

func TestCollectorSlowRing(t *testing.T) {
	col := NewCollector(4, 100*time.Millisecond)
	fast := TraceData{TraceID: "fast", DurationNS: int64(time.Millisecond)}
	slow := TraceData{TraceID: "slow", DurationNS: int64(time.Second)}
	col.Offer(fast)
	col.Offer(slow)
	if got := col.Recent(); len(got) != 2 {
		t.Fatalf("recent holds %d, want 2", len(got))
	}
	sl := col.Slow()
	if len(sl) != 1 || sl[0].TraceID != "slow" {
		t.Fatalf("slow ring %+v, want exactly the slow trace", sl)
	}
	// A burst of fast traffic must not evict the pinned slow trace.
	for i := 0; i < 10; i++ {
		col.Offer(fast)
	}
	if sl = col.Slow(); len(sl) != 1 || sl[0].TraceID != "slow" {
		t.Fatalf("slow trace evicted by fast burst: %+v", sl)
	}
	// OfferSlow admits only above-threshold work and skips the recent ring.
	col2 := NewCollector(4, 100*time.Millisecond)
	col2.OfferSlow(fast)
	col2.OfferSlow(slow)
	if got := col2.Recent(); len(got) != 0 {
		t.Fatalf("OfferSlow leaked into recent: %+v", got)
	}
	if sl = col2.Slow(); len(sl) != 1 || sl[0].TraceID != "slow" {
		t.Fatalf("OfferSlow slow ring %+v", sl)
	}
}

// TestConcurrentSpanFinish exercises span start/annotate/finish from
// many goroutines plus repeated root finishes; run under -race it
// verifies the span lifecycle is data-race free and first-finish-wins.
func TestConcurrentSpanFinish(t *testing.T) {
	col := NewCollector(4, time.Hour)
	root := StartTrace("root", "svc", SpanContext{}, col)
	ctx := ContextWithSpan(context.Background(), root)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				cctx, sp := StartSpan(ctx, fmt.Sprintf("w%d", i))
				sp.Annotate("iter", j)
				_, inner := StartSpan(cctx, "inner")
				inner.Finish()
				sp.Finish()
				sp.Finish() // repeated finish must be a no-op
			}
		}(i)
	}
	// Snapshot concurrently with span churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			SnapshotTrace(ctx)
		}
	}()
	wg.Wait()
	root.Finish()
	root.Finish()

	recent := col.Recent()
	if len(recent) != 1 {
		t.Fatalf("root finished twice produced %d traces, want 1", len(recent))
	}
	if got := len(recent[0].Spans); got != 1+8*50*2 {
		t.Fatalf("trace holds %d spans, want %d", got, 1+8*50*2)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var sp *Span
	sp.Annotate("k", "v")
	sp.Finish()
	sp.FinishWithDuration(time.Second)
	if sp.TraceID() != "" || sp.Context().Valid() {
		t.Fatal("nil span leaks identity")
	}
	ctx, child := StartSpan(context.Background(), "orphan")
	if child != nil {
		t.Fatal("StartSpan on untraced context returned a live span")
	}
	AddSpan(ctx, "stage", time.Now(), time.Millisecond, nil)
	AddExternalSpans(ctx, []SpanData{{SpanID: "x"}})
	if id, spans := SnapshotTrace(ctx); id != "" || spans != nil {
		t.Fatalf("untraced snapshot = (%q, %v)", id, spans)
	}
	InjectHeaders(ctx, http.Header{}) // must not panic or set anything
}

func TestBuildTreeNestsAndSorts(t *testing.T) {
	spans := []SpanData{
		{SpanID: "c2", ParentID: "root", Name: "beta", Start: 20},
		{SpanID: "root", Name: "root", Start: 0},
		{SpanID: "c1", ParentID: "root", Name: "alpha", Start: 10},
		{SpanID: "g1", ParentID: "c1", Name: "leaf", Start: 11},
	}
	tree := BuildTree(spans)
	if tree == nil || tree.Name != "root" {
		t.Fatalf("tree root = %+v", tree)
	}
	if len(tree.Children) != 2 || tree.Children[0].Name != "alpha" || tree.Children[1].Name != "beta" {
		t.Fatalf("children not sorted by start: %+v", tree.Children)
	}
	if len(tree.Children[0].Children) != 1 || tree.Children[0].Children[0].Name != "leaf" {
		t.Fatalf("grandchild missing: %+v", tree.Children[0].Children)
	}
	flat := tree.Flatten()
	if len(flat) != len(spans) {
		t.Fatalf("Flatten lost spans: %d of %d", len(flat), len(spans))
	}

	// Spans with an absent parent get a synthetic root.
	detached := BuildTree([]SpanData{
		{SpanID: "a", ParentID: "missing", Name: "a", TraceID: "t"},
		{SpanID: "b", ParentID: "missing2", Name: "b", TraceID: "t"},
	})
	if detached.Name != "(detached)" || len(detached.Children) != 2 {
		t.Fatalf("detached tree = %+v", detached)
	}
	if BuildTree(nil) != nil {
		t.Fatal("empty BuildTree not nil")
	}
}

func TestSnapshotTraceIncludesInProgress(t *testing.T) {
	root := StartTrace("root", "svc", SpanContext{}, nil)
	ctx := ContextWithSpan(context.Background(), root)
	_, open := StartSpan(ctx, "open")
	_, closed := StartSpan(ctx, "closed")
	closed.Finish()

	id, spans := SnapshotTrace(ctx)
	if id != root.TraceID() || len(spans) != 3 {
		t.Fatalf("snapshot = (%q, %d spans), want (%q, 3)", id, len(spans), root.TraceID())
	}
	byName := map[string]SpanData{}
	for _, sd := range spans {
		byName[sd.Name] = sd
	}
	if !byName["root"].InProgress || !byName["open"].InProgress {
		t.Fatalf("open spans not marked in-progress: %+v", byName)
	}
	if byName["closed"].InProgress {
		t.Fatal("finished span marked in-progress")
	}
	open.Finish()
}

func TestRecordStandaloneSlowOnly(t *testing.T) {
	col := NewCollector(4, 100*time.Millisecond)
	RecordStandalone(col, "wal", "wal.group_commit", time.Now(), time.Millisecond, nil)
	RecordStandalone(col, "wal", "wal.group_commit", time.Now(), time.Second, map[string]any{"fsyncMs": 900})
	if got := col.Recent(); len(got) != 0 {
		t.Fatalf("standalone traces leaked into recent: %+v", got)
	}
	sl := col.Slow()
	if len(sl) != 1 || sl[0].Root != "wal.group_commit" || len(sl[0].Spans) != 1 {
		t.Fatalf("slow ring %+v, want one group-commit trace", sl)
	}
	RecordStandalone(nil, "wal", "x", time.Now(), time.Second, nil) // nil collector no-ops
}

func TestTracesHandlerFilters(t *testing.T) {
	col := NewCollector(4, time.Hour)
	col.Offer(TraceData{TraceID: "aaa", Root: "GET /x"})
	col.Offer(TraceData{TraceID: "bbb", Root: "GET /y"})
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	var p struct {
		Capacity int         `json:"capacity"`
		Offered  uint64      `json:"offered"`
		Recent   []TraceData `json:"recent"`
		Slow     []TraceData `json:"slow"`
	}
	get := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		p = struct {
			Capacity int         `json:"capacity"`
			Offered  uint64      `json:"offered"`
			Recent   []TraceData `json:"recent"`
			Slow     []TraceData `json:"slow"`
		}{}
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
	}
	get(srv.URL)
	if p.Capacity != 4 || p.Offered != 2 || len(p.Recent) != 2 {
		t.Fatalf("payload %+v", p)
	}
	get(srv.URL + "?trace=bbb")
	if len(p.Recent) != 1 || p.Recent[0].TraceID != "bbb" {
		t.Fatalf("filter returned %+v", p.Recent)
	}
}

func TestRequestIDReplacesMalformed(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	bad := []string{
		strings.Repeat("x", maxRequestIDLen+1), // oversized
		"has space",
		"quote\"id",
		"ctrl\x01id",
		"non-ascii-\xc3\xa9",
	}
	for _, id := range bad {
		req := httptest.NewRequest("GET", "/x", nil)
		req.Header.Set("X-Request-Id", id)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if seen == id {
			t.Errorf("malformed id %q propagated", id)
		}
		if seen == "" || rec.Header().Get("X-Request-Id") != seen {
			t.Errorf("no replacement id assigned for %q: ctx=%q", id, seen)
		}
	}
	// A well-formed ID at exactly the cap is kept.
	max := strings.Repeat("y", maxRequestIDLen)
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set("X-Request-Id", max)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if seen != max {
		t.Fatalf("cap-length id replaced: %q", seen)
	}
}

func TestAccessLogSkipsScrapesAndProbes(t *testing.T) {
	var buf strings.Builder
	log := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	h := AccessLog(log, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}))
	for _, p := range []string{"/metrics", "/v1/healthz"} {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", p, nil))
	}
	if out := buf.String(); out != "" {
		t.Fatalf("scrape/probe requests logged: %s", out)
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/stats", nil))
	if out := buf.String(); !strings.Contains(out, "path=/v1/stats") {
		t.Fatalf("real request not logged: %s", out)
	}
}

func TestBuildInfoMetric(t *testing.T) {
	v, gover := BuildInfo()
	if v == "" || gover == "" {
		t.Fatalf("BuildInfo() = (%q, %q)", v, gover)
	}
	r := NewRegistry()
	RegisterBuildInfo(r)
	for _, p := range r.Gather() {
		if strings.HasPrefix(p.Name, "stsmatch_build_info{") {
			if p.Value != 1 {
				t.Fatalf("build_info value = %v, want 1", p.Value)
			}
			if !strings.Contains(p.Name, `version="`+v+`"`) || !strings.Contains(p.Name, `goversion="`+gover+`"`) {
				t.Fatalf("build_info labels wrong: %s", p.Name)
			}
			return
		}
	}
	t.Fatal("stsmatch_build_info not gathered")
}
