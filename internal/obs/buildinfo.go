package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo reports the binary's version and Go toolchain version for
// fleet-wide auditing. The version comes from the main module's
// version when built from a module proxy, falling back to the VCS
// revision stamped by `go build` (short form), then "devel".
var BuildInfo = sync.OnceValues(func() (version, goVersion string) {
	version = "devel"
	goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return version, goVersion
	}
	if bi.GoVersion != "" {
		goVersion = bi.GoVersion
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		version = v
	}
	var rev string
	var dirty bool
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if version == "devel" && rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		version = rev
		if dirty {
			version += "-dirty"
		}
	}
	return version, goVersion
})

// RegisterBuildInfo publishes the stsmatch_build_info gauge: constant
// 1 with the version and Go toolchain as labels, the standard shape
// for joining fleet metrics against deployed versions.
func RegisterBuildInfo(r *Registry) {
	version, goVersion := BuildInfo()
	r.GaugeVec("stsmatch_build_info",
		"Build metadata: constant 1 labelled by version and Go toolchain.",
		"version", "goversion").With(version, goVersion).Set(1)
}
