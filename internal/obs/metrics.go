// Package obs is the repo's observability layer: a stdlib-only
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// with Prometheus text exposition and an expvar mirror, per-component
// structured loggers built on log/slog, and HTTP middleware for
// request IDs, per-route instrumentation, and pprof wiring.
//
// The package has no dependencies outside the standard library and no
// dependencies on the rest of the repo, so every layer (store, fsm,
// core, server, cmd) may import it freely.
//
// Metric naming follows the Prometheus conventions: everything is
// prefixed "stsmatch_", counters end in "_total", durations are in
// seconds and use "_seconds" histograms. The catalogue of metrics the
// pipeline emits is documented in README.md ("Observability").
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metricType is the Prometheus exposition type of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative; negative deltas are ignored
// to keep the counter monotonic).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations
// (typically latencies in seconds). Buckets are cumulative-at-export,
// Prometheus style, with an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64 // ascending upper bounds (inclusive)
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefLatencyBuckets are the default buckets for request/search
// latencies, spanning 100 µs to 10 s.
var DefLatencyBuckets = []float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// family is one named metric family holding either a single unlabeled
// child (key "") or one child per label-value combination.
type family struct {
	name   string
	help   string
	typ    metricType
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any // labelKey -> *Counter | *Gauge | *Histogram | func() float64
}

const labelSep = "\x1f"

func (f *family) child(key string) any {
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var nc any
	switch f.typ {
	case typeCounter:
		nc = &Counter{}
	case typeGauge:
		nc = &Gauge{}
	case typeHistogram:
		nc = newHistogram(f.bounds)
	}
	f.children[key] = nc
	return nc
}

// Registry holds metric families and renders them for scraping.
// The zero value is not usable; call NewRegistry. All methods are safe
// for concurrent use. Registration is idempotent: asking for an
// existing name returns the existing family (and panics only if the
// type or label arity conflicts, which is a programming error).
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry used by the pipeline's
// built-in instrumentation. Its first use also mirrors the registry
// through expvar under the key "stsmatch_metrics".
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		expvar.Publish("stsmatch_metrics", expvar.Func(func() any {
			m := make(map[string]float64)
			for _, p := range defaultReg.Gather() {
				m[p.Name] = p.Value
			}
			return m
		}))
	})
	return defaultReg
}

func (r *Registry) family(name, help string, typ metricType, labels []string, bounds []float64) *family {
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.byName[name]
		if !ok {
			f = &family{
				name: name, help: help, typ: typ,
				labels: labels, bounds: bounds,
				children: make(map[string]any),
			}
			r.families = append(r.families, f)
			r.byName[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels (was %s/%d)",
			name, typ, len(labels), f.typ, len(f.labels)))
	}
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, typeCounter, nil, nil).child("").(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, typeGauge, nil, nil).child("").(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, typeGauge, nil, nil)
	f.mu.Lock()
	f.children[""] = fn
	f.mu.Unlock()
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.family(name, help, typeHistogram, nil, bounds).child("").(*Histogram)
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, typeCounter, labels, nil)}
}

// With returns the counter for the given label values (created on
// first use). The number of values must match the registered labels.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(strings.Join(values, labelSep)).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for the given label values (created on first
// use). The number of values must match the registered labels.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(strings.Join(values, labelSep)).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, typeHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(strings.Join(values, labelSep)).(*Histogram)
}

// Point is one flattened metric sample, as used by the expvar mirror
// and the end-of-run summaries. Histograms flatten to _count and _sum.
type Point struct {
	Name  string // full name including {labels}
	Value float64
}

// Gather flattens the registry into sorted points.
func (r *Registry) Gather() []Point {
	var out []Point
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()
	for _, f := range fams {
		for _, key := range f.sortedKeys() {
			f.mu.RLock()
			c := f.children[key]
			f.mu.RUnlock()
			base := f.name + formatLabels(f.labels, key)
			switch m := c.(type) {
			case *Counter:
				out = append(out, Point{base, float64(m.Value())})
			case *Gauge:
				out = append(out, Point{base, float64(m.Value())})
			case func() float64:
				out = append(out, Point{base, m()})
			case *Histogram:
				out = append(out, Point{f.name + "_count" + formatLabels(f.labels, key), float64(m.Count())})
				out = append(out, Point{f.name + "_sum" + formatLabels(f.labels, key), m.Sum()})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (f *family) sortedKeys() []string {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// formatLabels renders {l1="v1",l2="v2"} for a child key, or "" when
// the family is unlabeled.
func formatLabels(labels []string, key string) string {
	if len(labels) == 0 {
		return ""
	}
	values := strings.Split(key, labelSep)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		// %q escapes quotes, backslashes and newlines exactly as the
		// Prometheus text format requires.
		fmt.Fprintf(&b, "%s=%q", l, v)
	}
	b.WriteByte('}')
	return b.String()
}

// labelsWith renders labels plus one extra pair (used for the
// histogram "le" label).
func labelsWith(labels []string, key, extraName, extraVal string) string {
	all := append(append([]string(nil), labels...), extraName)
	k := key
	if len(labels) == 0 {
		k = extraVal
	} else {
		k = key + labelSep + extraVal
	}
	return formatLabels(all, k)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.RUnlock()
	for _, f := range fams {
		keys := f.sortedKeys()
		if len(keys) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range keys {
			f.mu.RLock()
			c := f.children[key]
			f.mu.RUnlock()
			switch m := c.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(f.labels, key), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, formatLabels(f.labels, key), m.Value())
			case func() float64:
				fmt.Fprintf(w, "%s%s %g\n", f.name, formatLabels(f.labels, key), m())
			case *Histogram:
				var cum uint64
				for i, ub := range m.bounds {
					cum += m.buckets[i].Load()
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						labelsWith(f.labels, key, "le", fmt.Sprintf("%g", ub)), cum)
				}
				cum += m.buckets[len(m.bounds)].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelsWith(f.labels, key, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %g\n", f.name, formatLabels(f.labels, key), m.Sum())
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, formatLabels(f.labels, key), m.Count())
			}
		}
	}
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
