package dataset

import (
	"testing"

	"stsmatch/internal/fsm"
	"stsmatch/internal/signal"
)

func smallCohort() signal.CohortConfig {
	cfg := signal.DefaultCohort()
	cfg.NumPatients = 4
	cfg.SessionsPer = 2
	cfg.SessionDur = 30
	return cfg
}

func TestBuildPopulatesDB(t *testing.T) {
	db, cohort, err := Build(smallCohort(), fsm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if db.NumPatients() != 4 {
		t.Fatalf("patients = %d", db.NumPatients())
	}
	if len(cohort) != 4 {
		t.Fatalf("cohort = %d", len(cohort))
	}
	for _, pd := range cohort {
		p := db.Patient(pd.Profile.ID)
		if p == nil {
			t.Fatalf("patient %s missing from db", pd.Profile.ID)
		}
		if p.Info.Class != pd.Profile.Class.String() {
			t.Errorf("class mismatch for %s", pd.Profile.ID)
		}
		if p.Info.Age != pd.Profile.Age || p.Info.TumorSite != pd.Profile.TumorSite {
			t.Errorf("covariates lost for %s", pd.Profile.ID)
		}
		if len(p.Streams) != 2 {
			t.Errorf("%s streams = %d", pd.Profile.ID, len(p.Streams))
		}
		for _, st := range p.Streams {
			if st.Len() < 10 {
				t.Errorf("stream %s suspiciously short: %d vertices", st.SessionID, st.Len())
			}
			if err := st.Seq().Validate(); err != nil {
				t.Errorf("stream %s invalid: %v", st.SessionID, err)
			}
		}
	}
}

func TestBuildRejectsBadConfigs(t *testing.T) {
	bad := smallCohort()
	bad.NumPatients = 0
	if _, _, err := Build(bad, fsm.DefaultConfig()); err == nil {
		t.Error("bad cohort accepted")
	}
	badSeg := fsm.DefaultConfig()
	badSeg.SlopeWindow = 0
	if _, _, err := Build(smallCohort(), badSeg); err == nil {
		t.Error("bad segmenter config accepted")
	}
}

func TestSegmentSession(t *testing.T) {
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), 3)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SegmentSession(gen.Generate(30))
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumSegments() < 10 {
		t.Errorf("segments = %d", seq.NumSegments())
	}
}

func TestBuildDefaultSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("default cohort build is slow for -short")
	}
	db, _, err := BuildDefault()
	if err != nil {
		t.Fatal(err)
	}
	if db.NumVertices() == 0 {
		t.Error("empty default database")
	}
}
