// Package dataset assembles experiment-ready stream databases: it runs
// synthetic cohorts from internal/signal through the online segmenter
// in internal/fsm and loads the resulting PLR streams into an
// internal/store database. Command-line tools, examples and the
// experiment harness all build their inputs here.
package dataset

import (
	"fmt"

	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/signal"
	"stsmatch/internal/store"
)

// Build generates the cohort, segments every session and returns the
// populated database together with the raw cohort data (tests and
// experiments need the raw samples as ground truth).
func Build(cfg signal.CohortConfig, segCfg fsm.Config) (*store.DB, []signal.PatientData, error) {
	cohort, err := signal.GenerateCohort(cfg)
	if err != nil {
		return nil, nil, err
	}
	db, err := FromCohort(cohort, segCfg)
	if err != nil {
		return nil, nil, err
	}
	return db, cohort, nil
}

// FromCohort loads an already-generated cohort into a database.
func FromCohort(cohort []signal.PatientData, segCfg fsm.Config) (*store.DB, error) {
	db := store.NewDB()
	for _, pd := range cohort {
		p, err := db.AddPatient(store.PatientInfo{
			ID:        pd.Profile.ID,
			Class:     pd.Profile.Class.String(),
			Age:       pd.Profile.Age,
			TumorSite: pd.Profile.TumorSite,
		})
		if err != nil {
			return nil, err
		}
		for _, sess := range pd.Sessions {
			seq, err := fsm.SegmentAll(segCfg, sess.Samples)
			if err != nil {
				return nil, fmt.Errorf("dataset: segmenting %s: %w", sess.SessionID, err)
			}
			st := p.AddStream(sess.SessionID)
			if err := st.Append(seq...); err != nil {
				return nil, fmt.Errorf("dataset: loading %s: %w", sess.SessionID, err)
			}
		}
	}
	return db, nil
}

// BuildDefault builds the default laptop-scale database used by
// quickstart paths: default cohort, default segmenter.
func BuildDefault() (*store.DB, []signal.PatientData, error) {
	return Build(signal.DefaultCohort(), fsm.DefaultConfig())
}

// SegmentSession is a convenience that segments one raw sample slice
// with the default configuration.
func SegmentSession(samples []plr.Sample) (plr.Sequence, error) {
	return fsm.SegmentAll(fsm.DefaultConfig(), samples)
}
