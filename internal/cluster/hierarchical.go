package cluster

import (
	"fmt"
	"strings"

	"stsmatch/internal/stats"
)

// Agglomerative hierarchical clustering with average linkage (UPGMA).
// The paper's Section 5.3 applications (organ partitioning, genetic
// correlation) are classic hierarchical-clustering use cases; we
// provide both this and k-medoids so the clustering experiments can
// cross-check each other.

// DendrogramNode is one merge in the hierarchy. Leaves have Item >= 0
// and nil children; internal nodes record the merge height (the
// average-linkage distance at which the two children merged).
type DendrogramNode struct {
	Item        int // leaf item index, -1 for internal nodes
	Left, Right *DendrogramNode
	Height      float64
	Size        int
}

// Leaves returns the item indices under the node in left-to-right
// order.
func (n *DendrogramNode) Leaves() []int {
	if n == nil {
		return nil
	}
	if n.Item >= 0 {
		return []int{n.Item}
	}
	return append(n.Left.Leaves(), n.Right.Leaves()...)
}

// String renders a compact textual dendrogram.
func (n *DendrogramNode) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *DendrogramNode) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Item >= 0 {
		fmt.Fprintf(b, "%s- item %d\n", indent, n.Item)
		return
	}
	fmt.Fprintf(b, "%s+ h=%.3f (%d items)\n", indent, n.Height, n.Size)
	n.Left.render(b, depth+1)
	n.Right.render(b, depth+1)
}

// Agglomerate builds the average-linkage dendrogram over the items of
// the distance matrix. It returns the root node (nil for an empty
// matrix).
func Agglomerate(m *stats.DistMatrix) *DendrogramNode {
	n := m.Size()
	if n == 0 {
		return nil
	}
	active := make([]*DendrogramNode, n)
	for i := range active {
		active[i] = &DendrogramNode{Item: i, Size: 1}
	}
	// Cluster-pair distances, updated with the Lance-Williams formula
	// for average linkage.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = m.Row(i)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for remaining > 1 {
		// Find the closest active pair.
		bi, bj, bd := -1, -1, 0.0
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !alive[j] {
					continue
				}
				if bi < 0 || dist[i][j] < bd {
					bi, bj, bd = i, j, dist[i][j]
				}
			}
		}
		merged := &DendrogramNode{
			Item:   -1,
			Left:   active[bi],
			Right:  active[bj],
			Height: bd,
			Size:   active[bi].Size + active[bj].Size,
		}
		// Average-linkage update into slot bi; retire bj.
		si, sj := float64(active[bi].Size), float64(active[bj].Size)
		for k := 0; k < n; k++ {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			d := (si*dist[bi][k] + sj*dist[bj][k]) / (si + sj)
			dist[bi][k], dist[k][bi] = d, d
		}
		active[bi] = merged
		alive[bj] = false
		remaining--
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			return active[i]
		}
	}
	return nil
}

// CutDendrogram cuts the hierarchy into k clusters by splitting the
// highest merges first, and returns the resulting assignment.
func CutDendrogram(root *DendrogramNode, n, k int) (Clustering, error) {
	if root == nil {
		return Clustering{}, fmt.Errorf("cluster: nil dendrogram")
	}
	if k < 1 || k > n {
		return Clustering{}, fmt.Errorf("cluster: k=%d out of range for %d items", k, n)
	}
	nodes := []*DendrogramNode{root}
	for len(nodes) < k {
		// Split the node with the greatest merge height.
		best, bestH := -1, -1.0
		for i, nd := range nodes {
			if nd.Item < 0 && nd.Height > bestH {
				best, bestH = i, nd.Height
			}
		}
		if best < 0 {
			break // only leaves remain
		}
		nd := nodes[best]
		nodes = append(nodes[:best], nodes[best+1:]...)
		nodes = append(nodes, nd.Left, nd.Right)
	}
	assign := make([]int, n)
	for ci, nd := range nodes {
		for _, leaf := range nd.Leaves() {
			assign[leaf] = ci
		}
	}
	return Clustering{K: len(nodes), Assign: assign}, nil
}
