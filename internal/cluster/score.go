package cluster

// External clustering scores against ground-truth labels. The
// synthetic cohort carries breathing-class labels, so the paper's
// correlation-discovery claims ("clustering patients based on patient
// similarity, then the correlation can be discovered") become testable
// statements: a good clustering should recover the label structure.

// Purity returns the fraction of items whose cluster's majority label
// matches their own label. labels[i] is the ground-truth label of item
// i (any comparable key); returns 0 for empty input.
func Purity(c Clustering, labels []string) float64 {
	if len(labels) == 0 || len(c.Assign) != len(labels) {
		return 0
	}
	correct := 0
	for _, members := range c.Clusters() {
		counts := map[string]int{}
		for _, i := range members {
			counts[labels[i]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(labels))
}

// AdjustedRandIndex returns the ARI between a clustering and
// ground-truth labels: 1 for perfect agreement, ~0 for random
// assignment, negative for worse-than-random.
func AdjustedRandIndex(c Clustering, labels []string) float64 {
	n := len(labels)
	if n == 0 || len(c.Assign) != n {
		return 0
	}
	labelIdx := map[string]int{}
	for _, l := range labels {
		if _, ok := labelIdx[l]; !ok {
			labelIdx[l] = len(labelIdx)
		}
	}
	rows := c.K
	cols := len(labelIdx)
	table := make([][]int, rows)
	for i := range table {
		table[i] = make([]int, cols)
	}
	for i := 0; i < n; i++ {
		table[c.Assign[i]][labelIdx[labels[i]]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }

	var sumCells, sumRows, sumCols float64
	for r := 0; r < rows; r++ {
		rowTotal := 0
		for cIdx := 0; cIdx < cols; cIdx++ {
			sumCells += choose2(table[r][cIdx])
			rowTotal += table[r][cIdx]
		}
		sumRows += choose2(rowTotal)
	}
	for cIdx := 0; cIdx < cols; cIdx++ {
		colTotal := 0
		for r := 0; r < rows; r++ {
			colTotal += table[r][cIdx]
		}
		sumCols += choose2(colTotal)
	}
	total := choose2(n)
	if total == 0 {
		return 0
	}
	expected := sumRows * sumCols / total
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		return 0
	}
	return (sumCells - expected) / (maxIndex - expected)
}
