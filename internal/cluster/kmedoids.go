package cluster

import (
	"fmt"
	"math/rand"

	"stsmatch/internal/stats"
)

// Clustering is the result of a clustering run: Assign[i] is the
// cluster index of item i, and Medoids (when the algorithm has them)
// lists the representative item per cluster.
type Clustering struct {
	K       int
	Assign  []int
	Medoids []int
	Cost    float64 // sum of distances to assigned medoid/centroid
}

// Clusters groups item indices by cluster.
func (c Clustering) Clusters() [][]int {
	out := make([][]int, c.K)
	for i, a := range c.Assign {
		out[a] = append(out[a], i)
	}
	return out
}

// KMedoids clusters the items of a distance matrix into k clusters
// using a PAM-style alternating algorithm: greedy farthest-point
// seeding, then repeated reassignment and medoid update until the cost
// stops improving. Deterministic for a fixed seed.
func KMedoids(m *stats.DistMatrix, k int, seed int64) (Clustering, error) {
	n := m.Size()
	if k < 1 || k > n {
		return Clustering{}, fmt.Errorf("cluster: k=%d out of range for %d items", k, n)
	}
	rng := rand.New(rand.NewSource(seed))

	// Seeding: first medoid random, then farthest-point.
	medoids := []int{rng.Intn(n)}
	for len(medoids) < k {
		best, bestDist := -1, -1.0
		for i := 0; i < n; i++ {
			d := nearestDist(m, medoids, i)
			if d > bestDist {
				best, bestDist = i, d
			}
		}
		medoids = append(medoids, best)
	}

	assign := make([]int, n)
	var cost float64
	for iter := 0; iter < 100; iter++ {
		// Assignment step.
		cost = 0
		for i := 0; i < n; i++ {
			bi, bd := 0, m.At(i, medoids[0])
			for c := 1; c < k; c++ {
				if d := m.At(i, medoids[c]); d < bd {
					bi, bd = c, d
				}
			}
			assign[i] = bi
			cost += bd
		}
		// Update step: per cluster, pick the member minimizing the
		// within-cluster distance sum.
		changed := false
		for c := 0; c < k; c++ {
			bestMedoid, bestSum := medoids[c], -1.0
			for i := 0; i < n; i++ {
				if assign[i] != c {
					continue
				}
				var sum float64
				for j := 0; j < n; j++ {
					if assign[j] == c {
						sum += m.At(i, j)
					}
				}
				if bestSum < 0 || sum < bestSum {
					bestMedoid, bestSum = i, sum
				}
			}
			if bestMedoid != medoids[c] {
				medoids[c] = bestMedoid
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return Clustering{K: k, Assign: assign, Medoids: medoids, Cost: cost}, nil
}

func nearestDist(m *stats.DistMatrix, medoids []int, i int) float64 {
	best := m.At(i, medoids[0])
	for _, md := range medoids[1:] {
		if d := m.At(i, md); d < best {
			best = d
		}
	}
	return best
}

// Silhouette returns the mean silhouette coefficient of a clustering
// (in [-1, 1]; higher is better-separated). Singleton clusters
// contribute 0 per convention.
func Silhouette(m *stats.DistMatrix, c Clustering) float64 {
	n := m.Size()
	if n == 0 {
		return 0
	}
	groups := c.Clusters()
	var total float64
	for i := 0; i < n; i++ {
		own := groups[c.Assign[i]]
		if len(own) <= 1 {
			continue
		}
		var a float64
		for _, j := range own {
			if j != i {
				a += m.At(i, j)
			}
		}
		a /= float64(len(own) - 1)

		b := -1.0
		for g, members := range groups {
			if g == c.Assign[i] || len(members) == 0 {
				continue
			}
			var s float64
			for _, j := range members {
				s += m.At(i, j)
			}
			s /= float64(len(members))
			if b < 0 || s < b {
				b = s
			}
		}
		if b < 0 {
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

// BestK runs KMedoids for every k in [kMin, kMax] and returns the
// clustering with the highest silhouette.
func BestK(m *stats.DistMatrix, kMin, kMax int, seed int64) (Clustering, float64, error) {
	if kMin < 2 {
		kMin = 2
	}
	if kMax > m.Size() {
		kMax = m.Size()
	}
	var best Clustering
	bestScore := -2.0
	for k := kMin; k <= kMax; k++ {
		c, err := KMedoids(m, k, seed)
		if err != nil {
			return Clustering{}, 0, err
		}
		if s := Silhouette(m, c); s > bestScore {
			best, bestScore = c, s
		}
	}
	if bestScore < -1 {
		return Clustering{}, 0, fmt.Errorf("cluster: no valid k in [%d,%d]", kMin, kMax)
	}
	return best, bestScore, nil
}
