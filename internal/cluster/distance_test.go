package cluster

import (
	"errors"
	"math"
	"testing"

	"stsmatch/internal/plr"
	"stsmatch/internal/store"
)

// periodicStream builds a stream of perfectly periodic EX->EOE->IN
// cycles with the given amplitude and per-segment duration.
func periodicStream(pid, sid string, amp, dur float64, cycles int) *store.Stream {
	st := store.NewStream(pid, sid)
	states := []plr.State{plr.EX, plr.EOE, plr.IN}
	y := amp
	t := 0.0
	vs := plr.Sequence{{T: 0, Pos: []float64{amp}, State: plr.EX}}
	for i := 0; i < cycles*3; i++ {
		stt := states[i%3]
		switch stt {
		case plr.EX:
			y -= amp
		case plr.IN:
			y += amp
		}
		t += dur
		vs = append(vs, plr.Vertex{T: t, Pos: []float64{y}, State: states[(i+1)%3]})
		vs[len(vs)-2].State = stt
	}
	if err := st.Append(vs...); err != nil {
		panic(err)
	}
	return st
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.WindowVertices = 7
	cfg.TopH = 3
	cfg.QueryStride = 2
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.WindowVertices = 1 },
		func(c *Config) { c.TopH = 0 },
		func(c *Config) { c.QueryStride = 0 },
		func(c *Config) { c.Params.WeightAmp = 0 },
	}
	for i, mut := range muts {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestStreamDistanceIdenticalStreams(t *testing.T) {
	a := periodicStream("P1", "S1", 10, 1, 20)
	b := periodicStream("P2", "S1", 10, 1, 20)
	d, err := StreamDistance(a, b, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Identical motion from different patients: only the source
	// weight penalty remains, but the raw discrepancy is 0.
	if d > 1e-9 {
		t.Errorf("distance between identical streams = %v, want ~0", d)
	}
}

func TestStreamDistanceSymmetric(t *testing.T) {
	a := periodicStream("P1", "S1", 10, 1, 20)
	b := periodicStream("P2", "S1", 14, 1.2, 20)
	cfg := smallConfig()
	d1, err := StreamDistance(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := StreamDistance(b, a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("stream distance not symmetric: %v vs %v", d1, d2)
	}
	if d1 <= 0 {
		t.Errorf("different streams should have positive distance, got %v", d1)
	}
}

func TestStreamDistanceOrdering(t *testing.T) {
	// Distance must grow with motion dissimilarity.
	base := periodicStream("P1", "S1", 10, 1, 20)
	near := periodicStream("P2", "S1", 11, 1, 20)
	far := periodicStream("P3", "S1", 25, 1.6, 20)
	cfg := smallConfig()
	dNear, err := StreamDistance(base, near, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := StreamDistance(base, far, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dNear >= dFar {
		t.Errorf("ordering violated: near %v >= far %v", dNear, dFar)
	}
}

func TestStreamDistanceSelfIsSmallest(t *testing.T) {
	// Figure 8b: "a stream should be the most similar to itself".
	self := periodicStream("P1", "S1", 10, 1, 20)
	other := periodicStream("P2", "S1", 13, 1.1, 20)
	cfg := smallConfig()
	dSelf, err := StreamDistance(self, self, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dOther, err := StreamDistance(self, other, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dSelf >= dOther {
		t.Errorf("self distance %v not below other %v", dSelf, dOther)
	}
}

func TestStreamDistanceNoComparable(t *testing.T) {
	// A stream of pure IRR shares no state order with a regular one.
	irr := store.NewStream("P1", "S1")
	var vs plr.Sequence
	for i := 0; i < 30; i++ {
		vs = append(vs, plr.Vertex{T: float64(i), Pos: []float64{0}, State: plr.IRR})
	}
	if err := irr.Append(vs...); err != nil {
		t.Fatal(err)
	}
	reg := periodicStream("P2", "S1", 10, 1, 20)
	if _, err := StreamDistance(irr, reg, smallConfig()); !errors.Is(err, ErrNoComparable) {
		t.Errorf("want ErrNoComparable, got %v", err)
	}
}

func TestStreamDistanceShortStream(t *testing.T) {
	short := periodicStream("P1", "S1", 10, 1, 1) // 4 vertices < window 7
	reg := periodicStream("P2", "S1", 10, 1, 20)
	if _, err := StreamDistance(short, reg, smallConfig()); !errors.Is(err, ErrNoComparable) {
		t.Errorf("want ErrNoComparable for too-short stream, got %v", err)
	}
}

func TestPatientDistance(t *testing.T) {
	mkPatient := func(id string, amp float64) *store.Patient {
		p := &store.Patient{Info: store.PatientInfo{ID: id}}
		p.Streams = append(p.Streams,
			periodicStream(id, id+"-S1", amp, 1, 20),
			periodicStream(id, id+"-S2", amp*1.05, 1, 20),
		)
		return p
	}
	pa := mkPatient("A", 10)
	pb := mkPatient("B", 10.5)
	pc := mkPatient("C", 22)
	cfg := smallConfig()

	dAB, err := PatientDistance(pa, pb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dAC, err := PatientDistance(pa, pc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dAB >= dAC {
		t.Errorf("similar patients %v not closer than dissimilar %v", dAB, dAC)
	}
	// Figure 8c: within-patient distance below cross-patient.
	dAA, err := PatientDistance(pa, pa, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dAA >= dAB {
		t.Errorf("self patient distance %v not below cross %v", dAA, dAB)
	}
	// Symmetry.
	dBA, err := PatientDistance(pb, pa, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dAB-dBA) > 1e-9 {
		t.Errorf("patient distance asymmetric: %v vs %v", dAB, dBA)
	}
}

func TestPatientDistanceMatrix(t *testing.T) {
	var patients []*store.Patient
	amps := []float64{10, 10.3, 20, 20.5}
	for i, amp := range amps {
		p := &store.Patient{Info: store.PatientInfo{ID: string(rune('A' + i))}}
		p.Streams = append(p.Streams, periodicStream(p.Info.ID, "S1", amp, 1, 20))
		patients = append(patients, p)
	}
	m, err := PatientDistanceMatrix(patients, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("matrix invalid: %v", err)
	}
	// Pairs within the same amplitude family must be closer than
	// across families.
	if !(m.At(0, 1) < m.At(0, 2) && m.At(2, 3) < m.At(1, 2)) {
		t.Errorf("matrix does not reflect families:\n%v", m)
	}
}

func TestStreamDistanceMatrix(t *testing.T) {
	streams := []*store.Stream{
		periodicStream("P1", "S1", 10, 1, 20),
		periodicStream("P1", "S2", 10.4, 1, 20),
		periodicStream("P2", "S1", 18, 1.3, 20),
	}
	m, self, err := StreamDistanceMatrix(streams, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(self) != 3 {
		t.Fatalf("self distances = %d", len(self))
	}
	// Self < same patient < other patient for stream 0 (Figure 8b).
	if !(self[0] <= m.At(0, 1) && m.At(0, 1) < m.At(0, 2)) {
		t.Errorf("Figure 8b ordering violated: self=%v same=%v other=%v",
			self[0], m.At(0, 1), m.At(0, 2))
	}
}

func TestRelationBetween(t *testing.T) {
	a := store.NewStream("P1", "S1")
	b := store.NewStream("P1", "S2")
	c := store.NewStream("P2", "S1")
	if relationBetween(a, a) != 0 { // SameSession
		t.Error("self relation wrong")
	}
	if relationBetween(a, b) != 1 { // SamePatient
		t.Error("same patient relation wrong")
	}
	if relationBetween(a, c) != 2 { // OtherPatient
		t.Error("other patient relation wrong")
	}
}
