// Package cluster implements the offline analysis layer of Section 5:
// whole-stream similarity (Definition 3), patient similarity
// (Definition 4), clustering over the resulting distance matrices, and
// external scoring of clusterings against ground-truth labels — the
// synthetic stand-in for the paper's correlation-discovery
// applications (Section 5.3).
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"stsmatch/internal/core"
	"stsmatch/internal/stats"
	"stsmatch/internal/store"
)

// Config controls offline stream/patient distance computation.
type Config struct {
	// Params supplies the offline subsequence distance (vertex
	// weights are forced to 1 per Section 5).
	Params core.Params

	// WindowVertices is the offline subsequence length n in vertices.
	WindowVertices int

	// TopH is the number of most-similar retrieved subsequences each
	// query contributes (Definition 3's h; the paper suggests 10).
	// Queries that cannot find at least TopH candidates with the same
	// state order are outliers and are dropped.
	TopH int

	// QueryStride subsamples the query windows of the outer stream
	// (1 = every window, exactly as the paper defines; larger values
	// trade fidelity for speed on big streams).
	QueryStride int
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		Params:         core.DefaultParams(),
		WindowVertices: 10, // ~3 breathing cycles
		TopH:           10,
		QueryStride:    1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.WindowVertices < 2 {
		return fmt.Errorf("cluster: WindowVertices must be >= 2, got %d", c.WindowVertices)
	}
	if c.TopH < 1 {
		return fmt.Errorf("cluster: TopH must be >= 1, got %d", c.TopH)
	}
	if c.QueryStride < 1 {
		return fmt.Errorf("cluster: QueryStride must be >= 1, got %d", c.QueryStride)
	}
	return nil
}

// ErrNoComparable is returned when two streams share no common state
// order at all (every query window is an outlier).
var ErrNoComparable = errors.New("cluster: streams share no comparable subsequences")

// relationBetween classifies the source relation between two streams
// for the offline source weight w_s.
func relationBetween(a, b *store.Stream) core.SourceRelation {
	switch {
	case a == b || (a.PatientID == b.PatientID && a.SessionID == b.SessionID):
		return core.SameSession
	case a.PatientID == b.PatientID:
		return core.SamePatient
	default:
		return core.OtherPatient
	}
}

// directedDistance computes d(R->S) of Definition 3: every length-n
// window of R queries S; queries with fewer than TopH same-state-order
// candidates are outliers; survivors contribute the mean offline
// distance of their TopH nearest candidates. The result is the mean
// contribution and the number of surviving queries.
func directedDistance(r, s *store.Stream, cfg Config) (float64, int, error) {
	n := cfg.WindowVertices
	rSeq := r.Seq()
	if len(rSeq) < n {
		return 0, 0, nil
	}
	rel := relationBetween(r, s)
	params := cfg.Params
	sSeq := s.Seq()

	var total float64
	used := 0
	dists := make([]float64, 0, 64)
	for qStart := 0; qStart+n <= len(rSeq); qStart += cfg.QueryStride {
		q := rSeq[qStart : qStart+n]
		cands := s.FindWindows(q.StateSignature())
		// When R and S are the same stream, the query window itself
		// (and only it) is excluded: a stream should be most similar
		// to itself through its *other* occurrences of the pattern.
		if r == s {
			filtered := cands[:0]
			for _, j := range cands {
				if j != qStart {
					filtered = append(filtered, j)
				}
			}
			cands = filtered
		}
		if len(cands) < cfg.TopH {
			continue // outlier query
		}
		dists = dists[:0]
		for _, j := range cands {
			d, err := params.OfflineDistance(q, sSeq[j:j+n], rel)
			if err != nil {
				return 0, 0, err
			}
			dists = append(dists, d)
		}
		sort.Float64s(dists)
		top := dists[:cfg.TopH]
		total += stats.Mean(top)
		used++
	}
	if used == 0 {
		return 0, 0, nil
	}
	return total / float64(used), used, nil
}

// StreamDistance computes the symmetric Definition 3 distance between
// two streams. It returns ErrNoComparable when neither direction has a
// surviving query.
func StreamDistance(r, s *store.Stream, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	drs, nrs, err := directedDistance(r, s, cfg)
	if err != nil {
		return 0, err
	}
	dsr, nsr, err := directedDistance(s, r, cfg)
	if err != nil {
		return 0, err
	}
	switch {
	case nrs == 0 && nsr == 0:
		return 0, ErrNoComparable
	case nrs == 0:
		return dsr, nil
	case nsr == 0:
		return drs, nil
	default:
		return (drs + dsr) / 2, nil
	}
}

// PatientDistance computes the Definition 4 distance between two
// patients: the mean stream distance over all cross pairs. Stream
// pairs with no comparable subsequences are skipped; if every pair is
// incomparable, ErrNoComparable is returned.
func PatientDistance(p1, p2 *store.Patient, cfg Config) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	var total float64
	pairs := 0
	for _, s1 := range p1.Streams {
		for _, s2 := range p2.Streams {
			if p1 == p2 && s1 == s2 {
				continue // self-pairs excluded within a patient
			}
			d, err := StreamDistance(s1, s2, cfg)
			if errors.Is(err, ErrNoComparable) {
				continue
			}
			if err != nil {
				return 0, err
			}
			total += d
			pairs++
		}
	}
	if pairs == 0 {
		return 0, ErrNoComparable
	}
	return total / float64(pairs), nil
}

// PatientDistanceMatrix computes the full symmetric patient distance
// matrix in parallel. Incomparable pairs receive the largest observed
// finite distance times 1.5 (so clustering treats them as far apart
// rather than failing).
func PatientDistanceMatrix(patients []*store.Patient, cfg Config) (*stats.DistMatrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(patients)
	m := stats.NewDistMatrix(n)

	type pair struct{ i, j int }
	var jobs []pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			jobs = append(jobs, pair{i, j})
		}
	}

	type result struct {
		pair
		d    float64
		miss bool
		err  error
	}
	results := make([]result, len(jobs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for k := range jobs {
			next <- k
		}
		close(next)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range next {
				jb := jobs[k]
				d, err := PatientDistance(patients[jb.i], patients[jb.j], cfg)
				switch {
				case errors.Is(err, ErrNoComparable):
					results[k] = result{pair: jb, miss: true}
				case err != nil:
					results[k] = result{pair: jb, err: err}
				default:
					results[k] = result{pair: jb, d: d}
				}
			}
		}()
	}
	wg.Wait()

	maxFinite := 0.0
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if !r.miss && r.d > maxFinite {
			maxFinite = r.d
		}
	}
	if maxFinite == 0 {
		maxFinite = 1
	}
	for _, r := range results {
		if r.miss {
			m.Set(r.i, r.j, maxFinite*1.5)
		} else {
			m.Set(r.i, r.j, r.d)
		}
	}
	return m, nil
}

// StreamDistanceMatrix computes the pairwise distance matrix over a
// set of streams, including the self-distances on the diagonal's
// neighbours (the diagonal itself is the self-distance d(R,R), which
// Definition 3 makes non-zero in general — Figure 8b reports it as the
// smallest value in each row). Since stats.DistMatrix forces a zero
// diagonal, self-distances are returned separately.
func StreamDistanceMatrix(streams []*store.Stream, cfg Config) (*stats.DistMatrix, []float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	n := len(streams)
	m := stats.NewDistMatrix(n)
	self := make([]float64, n)
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i, j int) {
				defer wg.Done()
				defer func() { <-sem }()
				d, err := StreamDistance(streams[i], streams[j], cfg)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && !errors.Is(err, ErrNoComparable) && firstErr == nil {
					firstErr = err
					return
				}
				if errors.Is(err, ErrNoComparable) {
					return // leave as 0; callers treat missing as incomparable
				}
				if i == j {
					self[i] = d
				} else {
					m.Set(i, j, d)
				}
			}(i, j)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return m, self, nil
}
