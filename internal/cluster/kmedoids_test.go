package cluster

import (
	"reflect"
	"sort"
	"testing"

	"stsmatch/internal/stats"
)

// twoBlobMatrix builds a distance matrix with two well-separated
// groups: items [0,half) and [half,n).
func twoBlobMatrix(n, half int) *stats.DistMatrix {
	m := stats.NewDistMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameGroup := (i < half) == (j < half)
			if sameGroup {
				m.Set(i, j, 1+0.1*float64((i+j)%3))
			} else {
				m.Set(i, j, 10+0.1*float64((i+j)%3))
			}
		}
	}
	return m
}

func groupsOf(c Clustering) [][]int {
	gs := c.Clusters()
	for _, g := range gs {
		sort.Ints(g)
	}
	sort.Slice(gs, func(a, b int) bool {
		if len(gs[a]) == 0 || len(gs[b]) == 0 {
			return len(gs[a]) > len(gs[b])
		}
		return gs[a][0] < gs[b][0]
	})
	return gs
}

func TestKMedoidsSeparatesBlobs(t *testing.T) {
	m := twoBlobMatrix(10, 5)
	c, err := KMedoids(m, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	gs := groupsOf(c)
	if !reflect.DeepEqual(gs[0], []int{0, 1, 2, 3, 4}) ||
		!reflect.DeepEqual(gs[1], []int{5, 6, 7, 8, 9}) {
		t.Errorf("clusters = %v", gs)
	}
	if len(c.Medoids) != 2 {
		t.Errorf("medoids = %v", c.Medoids)
	}
	if c.Cost <= 0 {
		t.Errorf("cost = %v", c.Cost)
	}
}

func TestKMedoidsDeterministicForSeed(t *testing.T) {
	m := twoBlobMatrix(12, 6)
	c1, _ := KMedoids(m, 3, 7)
	c2, _ := KMedoids(m, 3, 7)
	if !reflect.DeepEqual(c1.Assign, c2.Assign) {
		t.Error("same seed produced different clusterings")
	}
}

func TestKMedoidsEdgeCases(t *testing.T) {
	m := twoBlobMatrix(4, 2)
	if _, err := KMedoids(m, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMedoids(m, 5, 1); err == nil {
		t.Error("k>n accepted")
	}
	// k == n: every item its own cluster, zero cost.
	c, err := KMedoids(m, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cost != 0 {
		t.Errorf("k=n cost = %v, want 0", c.Cost)
	}
	// k == 1: all together.
	c, err = KMedoids(m, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Assign {
		if a != 0 {
			t.Error("k=1 must assign everything to cluster 0")
		}
	}
}

func TestSilhouettePrefersTrueK(t *testing.T) {
	m := twoBlobMatrix(12, 6)
	c2, _ := KMedoids(m, 2, 3)
	c4, _ := KMedoids(m, 4, 3)
	s2 := Silhouette(m, c2)
	s4 := Silhouette(m, c4)
	if s2 <= s4 {
		t.Errorf("silhouette should prefer k=2: s2=%v s4=%v", s2, s4)
	}
	if s2 < 0.5 {
		t.Errorf("well-separated blobs should score high: %v", s2)
	}
}

func TestBestKFindsTwo(t *testing.T) {
	m := twoBlobMatrix(12, 6)
	best, score, err := BestK(m, 2, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if best.K != 2 {
		t.Errorf("BestK chose k=%d, want 2", best.K)
	}
	if score <= 0 {
		t.Errorf("score = %v", score)
	}
}

func TestAgglomerateTwoBlobs(t *testing.T) {
	m := twoBlobMatrix(8, 4)
	root := Agglomerate(m)
	if root == nil {
		t.Fatal("nil dendrogram")
	}
	if root.Size != 8 {
		t.Errorf("root size = %d", root.Size)
	}
	// Root height must be the cross-blob distance (~10); its children
	// should be the two blobs.
	if root.Height < 9 {
		t.Errorf("root height = %v, want ~10", root.Height)
	}
	leaves := root.Leaves()
	sort.Ints(leaves)
	if !reflect.DeepEqual(leaves, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Errorf("leaves = %v", leaves)
	}
	c, err := CutDendrogram(root, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	gs := groupsOf(c)
	if !reflect.DeepEqual(gs[0], []int{0, 1, 2, 3}) || !reflect.DeepEqual(gs[1], []int{4, 5, 6, 7}) {
		t.Errorf("cut clusters = %v", gs)
	}
	// Cut into n clusters -> all singletons.
	c, err = CutDendrogram(root, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 8 {
		t.Errorf("K = %d, want 8", c.K)
	}
	if _, err := CutDendrogram(root, 8, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := CutDendrogram(nil, 8, 2); err == nil {
		t.Error("nil dendrogram accepted")
	}
}

func TestAgglomerateSingleAndEmpty(t *testing.T) {
	if Agglomerate(stats.NewDistMatrix(0)) != nil {
		t.Error("empty matrix should give nil root")
	}
	root := Agglomerate(stats.NewDistMatrix(1))
	if root == nil || root.Item != 0 || root.Size != 1 {
		t.Errorf("singleton root = %+v", root)
	}
}

func TestDendrogramString(t *testing.T) {
	m := twoBlobMatrix(4, 2)
	root := Agglomerate(m)
	s := root.String()
	if len(s) == 0 {
		t.Error("empty dendrogram rendering")
	}
}

func TestPurity(t *testing.T) {
	c := Clustering{K: 2, Assign: []int{0, 0, 0, 1, 1, 1}}
	labels := []string{"a", "a", "b", "b", "b", "b"}
	// Cluster 0 majority a (2/3), cluster 1 all b (3/3) -> 5/6.
	if got := Purity(c, labels); got != 5.0/6 {
		t.Errorf("purity = %v, want %v", got, 5.0/6)
	}
	if Purity(c, nil) != 0 {
		t.Error("mismatched labels should give 0")
	}
	perfect := Clustering{K: 2, Assign: []int{0, 0, 1, 1}}
	if got := Purity(perfect, []string{"x", "x", "y", "y"}); got != 1 {
		t.Errorf("perfect purity = %v", got)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	perfect := Clustering{K: 2, Assign: []int{0, 0, 1, 1}}
	if got := AdjustedRandIndex(perfect, []string{"x", "x", "y", "y"}); got != 1 {
		t.Errorf("perfect ARI = %v, want 1", got)
	}
	// Label names don't matter, only the partition.
	if got := AdjustedRandIndex(perfect, []string{"q", "q", "r", "r"}); got != 1 {
		t.Errorf("renamed ARI = %v, want 1", got)
	}
	// A single cluster against two labels: ARI 0.
	single := Clustering{K: 1, Assign: []int{0, 0, 0, 0}}
	if got := AdjustedRandIndex(single, []string{"x", "x", "y", "y"}); got != 0 {
		t.Errorf("uninformative ARI = %v, want 0", got)
	}
	if AdjustedRandIndex(perfect, nil) != 0 {
		t.Error("mismatched labels should give 0")
	}
}
