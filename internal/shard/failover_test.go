package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"stsmatch/internal/core"
	"stsmatch/internal/fsm"
	"stsmatch/internal/plr"
	"stsmatch/internal/server"
	"stsmatch/internal/shard"
	"stsmatch/internal/signal"
	"stsmatch/internal/testutil"
)

// respBatches cuts a deterministic synthetic respiration trace into
// ingest-sized batches.
func respBatches(t *testing.T, seed int64, seconds float64) [][]server.SampleIn {
	t.Helper()
	gen, err := signal.NewRespiration(signal.DefaultRespiration(), seed)
	if err != nil {
		t.Fatal(err)
	}
	samples := gen.Generate(seconds)
	const chunk = 256
	var batches [][]server.SampleIn
	for i := 0; i < len(samples); i += chunk {
		end := min(i+chunk, len(samples))
		batch := make([]server.SampleIn, 0, end-i)
		for _, s := range samples[i:end] {
			batch = append(batch, server.SampleIn{T: s.T, Pos: s.Pos})
		}
		batches = append(batches, batch)
	}
	return batches
}

func createSession(t *testing.T, baseURL, pid, sid string) {
	t.Helper()
	resp := testutil.PostJSON(t, baseURL+"/v1/sessions",
		server.CreateSessionRequest{PatientID: pid, SessionID: sid})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s/%s via %s: status %d", pid, sid, baseURL, resp.StatusCode)
	}
}

// ingestBatch sends one batch and fails the test unless it is fully
// acknowledged with no replica errors: every batch this helper returns
// from is durable on the primary AND applied on its replicas.
func ingestBatch(t *testing.T, baseURL, sid string, batch []server.SampleIn) {
	t.Helper()
	resp := testutil.PostJSON(t, baseURL+"/v1/sessions/"+sid+"/samples", batch)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest %s via %s: status %d: %s", sid, baseURL, resp.StatusCode, body)
	}
	sr := testutil.Decode[server.SamplesResponse](t, resp)
	if len(sr.ReplicaErrors) > 0 {
		t.Fatalf("ingest %s: acked with replica errors %v", sid, sr.ReplicaErrors)
	}
	if sr.Accepted != len(batch) {
		t.Fatalf("ingest %s: accepted %d of %d", sid, sr.Accepted, len(batch))
	}
}

// matchBody POSTs a match request and returns both the raw response
// bytes and the decoded result, so tests can assert on the exact wire
// payload (e.g. the absence of the "degraded" key).
func matchBody(t *testing.T, baseURL string, req server.MatchRequest) ([]byte, shard.MatchResult) {
	t.Helper()
	resp := testutil.PostJSON(t, baseURL+"/v1/match", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("match via %s: status %d", baseURL, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var res shard.MatchResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return raw, res
}

// logMetricLines scrapes a /metrics endpoint and logs every line whose
// name contains one of the given substrings — this is what the chaos
// CI job greps for in its -v output.
func logMetricLines(t *testing.T, label, baseURL string, substrings ...string) {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Logf("%s: scraping /metrics: %v", label, err)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, sub := range substrings {
			if strings.Contains(line, sub) {
				t.Logf("%s: %s", label, line)
				break
			}
		}
	}
}

// newDurableOracle builds a single-node oracle journaling to dir with
// fsync on every append, so closing its listener without a clean
// shutdown models a hard crash that loses nothing acknowledged.
func newDurableOracle(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	srv, err := server.NewWithOptions(nil, core.DefaultParams(), fsm.DefaultConfig(), server.Options{
		DataDir:       dir,
		FsyncInterval: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// TestFailoverKillPrimary is the headline replication guarantee: with
// replication factor 2, killing a session's primary mid-stream loses
// no acknowledged vertex, and once failover completes the deployment
// answers POST /v1/match byte-identically to a single-node oracle that
// ingested exactly the acknowledged data — with no "degraded" key in
// the response, because every arc of the dead shard is covered by a
// replica.
//
// Promotion resumes the session through the same primed-FSM path as
// WAL crash recovery, so the oracle is a durable single node that hard
// crashes and recovers at the same stream position: the cluster's
// failover must be indistinguishable, vertex for vertex, from that
// node's recovery.
func TestFailoverKillPrimary(t *testing.T) {
	c := testutil.StartCluster(t, 3, 2)
	oracleDir := t.TempDir()
	oracle := newDurableOracle(t, oracleDir)

	// Context patients so similarity search has cross-patient
	// candidates on every shard.
	for i := 1; i <= 4; i++ {
		pid := fmt.Sprintf("P%02d", i)
		sid := "S-" + pid
		createSession(t, c.URL, pid, sid)
		createSession(t, oracle.URL, pid, sid)
		for _, b := range respBatches(t, int64(200+i), 45) {
			ingestBatch(t, c.URL, sid, b)
			ingestBatch(t, oracle.URL, sid, b)
		}
	}

	// The victim session: stream half, kill the primary, stream the
	// rest through the failed-over replica. Every batch is mirrored to
	// the oracle only after the cluster acknowledged it.
	const pid, sid = "P00", "S-P00"
	createSession(t, c.URL, pid, sid)
	createSession(t, oracle.URL, pid, sid)
	batches := respBatches(t, 77, 45)
	half := len(batches) / 2
	for _, b := range batches[:half] {
		ingestBatch(t, c.URL, sid, b)
		ingestBatch(t, oracle.URL, sid, b)
	}

	primary, owners, ok := c.Gateway.SessionPlacement(sid)
	if !ok || len(owners) != 2 {
		t.Fatalf("placement = %q %v, want a primary with 2 owners", primary, owners)
	}
	c.Kill(primary)
	c.Probe(1) // FailThreshold 1: one failed probe ejects the dead primary

	// Crash the oracle at the same stream position: no clean shutdown,
	// recovery from the WAL alone, exactly like the promoted replica
	// resuming from shipped records.
	oracle.Close()
	oracle = newDurableOracle(t, oracleDir)

	for _, b := range batches[half:] {
		ingestBatch(t, c.URL, sid, b) // first batch triggers the failover
		ingestBatch(t, oracle.URL, sid, b)
	}

	newPrimary, _, ok := c.Gateway.SessionPlacement(sid)
	if !ok || newPrimary == primary {
		t.Fatalf("session did not fail over: primary still %q", newPrimary)
	}
	if c.Node(newPrimary).Killed() {
		t.Fatal("failed over onto the killed backend")
	}

	// Zero acknowledged loss: the PLR served through the gateway is
	// vertex-for-vertex the PLR of a single node that saw exactly the
	// acknowledged samples.
	got := testutil.GetJSON[server.PLRResponse](t, c.URL+"/v1/sessions/"+sid+"/plr")
	want := testutil.GetJSON[server.PLRResponse](t, oracle.URL+"/v1/sessions/"+sid+"/plr")
	if len(got.Vertices) != len(want.Vertices) {
		t.Fatalf("PLR length %d after failover, oracle has %d: acknowledged data lost",
			len(got.Vertices), len(want.Vertices))
	}
	for i := range want.Vertices {
		if !reflect.DeepEqual(got.Vertices[i], want.Vertices[i]) {
			t.Fatalf("PLR vertex %d diverged after failover: got %+v want %+v",
				i, got.Vertices[i], want.Vertices[i])
		}
	}

	// Match equivalence: element-wise identical to the oracle, and the
	// raw response must not carry a "degraded" key — the dead shard's
	// data is fully covered by replicas.
	seq := plr.Sequence(want.Vertices[len(want.Vertices)-10:])
	for _, k := range []int{0, 10} {
		req := server.MatchRequest{Seq: seq, PatientID: pid, SessionID: sid, K: k}
		oresp := testutil.PostJSON(t, oracle.URL+"/v1/match", req)
		if oresp.StatusCode != http.StatusOK {
			t.Fatalf("k=%d: oracle match status %d", k, oresp.StatusCode)
		}
		om := testutil.Decode[server.MatchResponse](t, oresp)
		if len(om.Matches) == 0 {
			t.Fatalf("k=%d: oracle found no matches; fixture is broken", k)
		}
		raw, res := matchBody(t, c.URL, req)
		if bytes.Contains(raw, []byte(`"degraded"`)) {
			t.Errorf("k=%d: post-failover match response carries a degraded marker: %s", k, trunc(raw))
		}
		if res.ShardsOK != 2 || res.ShardsQueried != 3 {
			t.Errorf("k=%d: fan-out %d/%d, want 2/3", k, res.ShardsOK, res.ShardsQueried)
		}
		ob, _ := json.Marshal(om.Matches)
		gb, _ := json.Marshal(res.Matches)
		if !bytes.Equal(ob, gb) {
			t.Errorf("k=%d: post-failover matches differ from oracle\noracle:  %s\ngateway: %s",
				k, trunc(ob), trunc(gb))
		}
	}

	// Surface the failover and replication counters for the chaos CI
	// logs.
	logMetricLines(t, "gateway", c.URL,
		"stsmatch_gateway_failovers_total", "stsmatch_gateway_degraded_total")
	for _, n := range c.Nodes {
		if n.Killed() {
			continue
		}
		logMetricLines(t, "backend "+n.URL, n.URL,
			"stsmatch_repl_lag_records", "stsmatch_repl_shipped_records_total",
			"stsmatch_repl_applied_records_total", "stsmatch_repl_promotions_total",
			"stsmatch_repl_snapshots_total")
	}
}

// TestReplicationEquivalence checks the steady-state invariant behind
// failover: with every backend healthy at replication factor 2, each
// session is held by exactly one primary and one follower, followers
// carry zero lag after every acknowledged write, and scatter-gather
// match results (which now see each replicated stream twice) stay
// byte-identical to the single-node oracle.
func TestReplicationEquivalence(t *testing.T) {
	c := testutil.StartCluster(t, 3, 2)
	oracle := newOracleTS(t)

	const patients = 6
	for i := 0; i < patients; i++ {
		pid := fmt.Sprintf("P%02d", i)
		sid := "S-" + pid
		createSession(t, c.URL, pid, sid)
		createSession(t, oracle.URL, pid, sid)
		for _, b := range respBatches(t, int64(300+i), 45) {
			ingestBatch(t, c.URL, sid, b)
			ingestBatch(t, oracle.URL, sid, b)
		}
	}

	// Inventory: every session appears on exactly one shard as a
	// primary and one other shard as a follower.
	primaryOn := map[string]string{}
	replicaOn := map[string]string{}
	for _, n := range c.Nodes {
		st := testutil.GetJSON[server.ShardStatsResponse](t, n.URL+"/v1/shard/stats")
		for _, s := range st.Sessions {
			if prev, dup := primaryOn[s.SessionID]; dup {
				t.Errorf("session %s is primary on both %s and %s", s.SessionID, prev, n.URL)
			}
			primaryOn[s.SessionID] = n.URL
		}
		for _, s := range st.Replicas {
			if prev, dup := replicaOn[s.SessionID]; dup {
				t.Errorf("session %s is replicated on both %s and %s", s.SessionID, prev, n.URL)
			}
			replicaOn[s.SessionID] = n.URL
		}
	}
	if len(primaryOn) != patients || len(replicaOn) != patients {
		t.Fatalf("inventory: %d primaries, %d replicas, want %d each", len(primaryOn), len(replicaOn), patients)
	}
	for sid, p := range primaryOn {
		if replicaOn[sid] == "" || replicaOn[sid] == p {
			t.Errorf("session %s: primary %s, replica %s — want a distinct follower", sid, p, replicaOn[sid])
		}
	}

	// Ship-before-ack means zero replica lag at rest.
	for _, n := range c.Nodes {
		hz := testutil.GetJSON[server.HealthzResponse](t, n.URL+"/v1/healthz")
		if hz.Replication == nil {
			continue
		}
		if hz.Replication.MaxLagRecords != 0 {
			t.Errorf("backend %s: replica lag %d after full acks, want 0", n.URL, hz.Replication.MaxLagRecords)
		}
	}

	// Match equivalence with duplicates present on the followers.
	pr := testutil.GetJSON[server.PLRResponse](t, oracle.URL+"/v1/sessions/S-P00/plr")
	seq := plr.Sequence(pr.Vertices[len(pr.Vertices)-10:])
	for _, k := range []int{0, 10} {
		req := server.MatchRequest{Seq: seq, PatientID: "P00", SessionID: "S-P00", K: k}
		oresp := testutil.PostJSON(t, oracle.URL+"/v1/match", req)
		om := testutil.Decode[server.MatchResponse](t, oresp)
		raw, res := matchBody(t, c.URL, req)
		if bytes.Contains(raw, []byte(`"degraded"`)) {
			t.Errorf("k=%d: healthy replicated cluster reports degraded: %s", k, trunc(raw))
		}
		if res.ShardsOK != 3 {
			t.Errorf("k=%d: shardsOk %d, want 3", k, res.ShardsOK)
		}
		ob, _ := json.Marshal(om.Matches)
		gb, _ := json.Marshal(res.Matches)
		if !bytes.Equal(ob, gb) {
			t.Errorf("k=%d: replicated matches differ from oracle (dedup broken?)\noracle:  %s\ngateway: %s",
				k, trunc(ob), trunc(gb))
		}
	}

	logMetricLines(t, "gateway", c.URL, "stsmatch_gateway_failovers_total")
	for _, n := range c.Nodes {
		logMetricLines(t, "backend "+n.URL, n.URL,
			"stsmatch_repl_lag_records", "stsmatch_repl_shipped_records_total")
	}
}

// TestFlapDampingRequiresConsecutiveSuccesses is the regression test
// for the health checker readmitting a backend on a single passing
// probe: a backend that answers one probe between crashes must stay
// ejected until ReadmitThreshold consecutive successes.
func TestFlapDampingRequiresConsecutiveSuccesses(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	// Probe outcomes, by index: fail (eject), pass (single success — a
	// flap), fail (crash again), pass, pass (two consecutive: readmit).
	ft := testutil.NewFaultTransport().Script(
		testutil.FaultDrop, testutil.FaultNone, testutil.FaultDrop,
		testutil.FaultNone, testutil.FaultNone)
	p, err := shard.NewPool([]string{ts.URL}, shard.Options{
		HealthInterval:   -1,
		FailThreshold:    1,
		ReadmitThreshold: 2,
		MaxRetries:       -1,
		Transport:        ft,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	b := p.Backends()[0]

	wantHealthy := []bool{false, false, false, false, true}
	for i, want := range wantHealthy {
		p.ProbeAll()
		if got := b.Healthy(); got != want {
			if i == 1 {
				t.Fatalf("probe %d: backend readmitted on a single passing probe between failures (flap)", i)
			}
			t.Fatalf("probe %d: healthy = %v, want %v", i, got, want)
		}
	}
	if got := ft.Requests(); got != len(wantHealthy) {
		t.Errorf("prober issued %d requests, want %d", got, len(wantHealthy))
	}
}
