// Gateway result cache for /v1/match: a bounded LRU keyed on
// (canonical query signature, sorted per-backend store sequence
// high-water marks). Every shard response carries X-Store-Seq, a
// monotone mutation counter prefixed with a per-process start nonce;
// any ingest routed through the gateway advances the primary's
// tracked token before the ack returns, so the next identical query
// computes a different key and misses. No invalidation protocol —
// coherence falls out of the key.
//
// Out-of-band writes (a client mutating a shard directly, bypassing
// the gateway) are caught by the health prober: every probe response
// refreshes the tracked token, bounding the staleness window to one
// HealthInterval.

package shard

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
	"sync"
)

type matchCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	met     *shardMetrics
}

type cacheEntry struct {
	key  string
	body []byte // the merged MatchResult JSON served on a hit, verbatim
}

// newMatchCache returns a cache bounded to max entries, or nil when
// max <= 0 (caching disabled).
func newMatchCache(max int, met *shardMetrics) *matchCache {
	if max <= 0 {
		return nil
	}
	return &matchCache{
		max:     max,
		entries: make(map[string]*list.Element, max),
		order:   list.New(),
		met:     met,
	}
}

// cacheKey derives the lookup key: a digest of the canonical query
// bytes (which include max-lag, so different staleness tolerances
// never share an entry) plus every healthy backend's current store
// token, sorted for order independence. ok is false — the query is
// uncacheable — when any healthy backend has no known token yet.
func cacheKey(canonical []byte, backends []*Backend) (string, bool) {
	sum := sha256.Sum256(canonical)
	toks := make([]string, 0, len(backends))
	for _, b := range backends {
		if !b.Healthy() {
			continue
		}
		tok := b.StoreSeq()
		if tok == "" {
			return "", false
		}
		toks = append(toks, b.URL()+"="+tok)
	}
	if len(toks) == 0 {
		return "", false
	}
	sort.Strings(toks)
	return hex.EncodeToString(sum[:]) + "|" + strings.Join(toks, ","), true
}

// get returns the cached merged result for a key, marking it most
// recently used.
func (c *matchCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.met.cacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.met.cacheHits.Inc()
	return el.Value.(*cacheEntry).body, true
}

// put stores a merged result under key, evicting the least recently
// used entry past capacity.
func (c *matchCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.met.cacheEvictions.Inc()
	}
	c.met.cacheEntries.Set(int64(c.order.Len()))
}

// Len reports the number of cached results.
func (c *matchCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
