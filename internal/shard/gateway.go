package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/server"
)

// Gateway fronts N streamd backends. Session-scoped traffic (create,
// ingest, predict, PLR, close) is routed to the shard owning the
// session's patient on the consistent-hash ring; similarity queries
// scatter to every backend and gather into an exact merged result.
// When a backend is down, session traffic for its patients fails fast
// with 503 while scatter queries degrade gracefully: the gateway
// returns the surviving shards' merged matches with "degraded": true
// and per-shard error detail.
type Gateway struct {
	ring    *Ring
	pool    *Pool
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	met     *shardMetrics
	http    *obs.HTTPMetrics
	start   time.Time

	// sessions maps open session IDs to the owning backend URL. The
	// table is populated on create and lazily rebuilt from the shards'
	// /v1/shard/stats inventories after a gateway restart.
	sessions sync.Map // string -> string
}

// NewGateway builds a gateway over the given backend base URLs.
func NewGateway(backends []string, opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	pool, err := NewPool(backends, opts)
	if err != nil {
		return nil, err
	}
	ring := NewRing(opts.Replicas)
	for _, b := range backends {
		ring.Add(b)
	}
	g := &Gateway{
		ring:  ring,
		pool:  pool,
		mux:   http.NewServeMux(),
		log:   obs.Logger("gateway"),
		met:   pool.met,
		http:  obs.NewHTTPMetrics(obs.Default(), "stsmatch_gateway"),
		start: time.Now(),
	}
	g.route("POST /v1/sessions", "create_session", g.handleCreateSession)
	g.route("POST /v1/sessions/{sid}/samples", "ingest_samples", g.handleSessionScoped)
	g.route("DELETE /v1/sessions/{sid}", "close_session", g.handleSessionScoped)
	g.route("GET /v1/sessions/{sid}/predict", "predict", g.handleSessionScoped)
	g.route("GET /v1/sessions/{sid}/plr", "plr", g.handleSessionScoped)
	g.route("POST /v1/match", "match", g.handleMatch)
	g.route("GET /v1/stats", "stats", g.handleStats)
	g.route("GET /v1/healthz", "healthz", g.handleHealthz)
	g.mux.Handle("GET /metrics", obs.Default().Handler())
	g.handler = obs.RequestID(obs.AccessLog(g.log, g.mux))
	return g, nil
}

func (g *Gateway) route(pattern, name string, h http.HandlerFunc) {
	g.mux.Handle(pattern, g.http.Wrap(name, h))
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.handler.ServeHTTP(w, r) }

// Close stops the pool's health checker.
func (g *Gateway) Close() { g.pool.Close() }

// Ring exposes the gateway's hash ring (read-only use).
func (g *Gateway) Ring() *Ring { return g.ring }

// Pool exposes the gateway's backend pool (health introspection).
func (g *Gateway) Pool() *Pool { return g.pool }

func gwError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func gwJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// readBody buffers a request body under the proxy cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	return io.ReadAll(http.MaxBytesReader(w, r.Body, server.DefaultMaxBodyBytes))
}

// relay forwards a backend response verbatim.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck
}

// handleCreateSession routes a session create to the shard owning the
// requested patient and records the placement.
func (g *Gateway) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req server.CreateSessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.PatientID == "" || req.SessionID == "" {
		gwError(w, http.StatusBadRequest, errors.New("patientId and sessionId are required"))
		return
	}
	owner := g.ring.Owner(req.PatientID)
	b := g.pool.ByURL(owner)
	if b == nil {
		gwError(w, http.StatusServiceUnavailable, errors.New("no backends configured"))
		return
	}
	if !b.Healthy() {
		gwError(w, http.StatusServiceUnavailable,
			fmt.Errorf("shard %s owning patient %s is unhealthy", owner, req.PatientID))
		return
	}
	status, respBody, err := g.pool.do(r.Context(), b, http.MethodPost, "/v1/sessions", body, false)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if status == http.StatusCreated {
		g.sessions.Store(req.SessionID, owner)
		g.met.routed.With(owner).Inc()
		g.log.Info("session routed",
			slog.String("patientId", req.PatientID),
			slog.String("sessionId", req.SessionID),
			slog.String("backend", owner))
	}
	relay(w, status, respBody)
}

// handleSessionScoped forwards a session-addressed request to the
// shard holding the session. GETs are idempotent and retried;
// mutations get a single attempt.
func (g *Gateway) handleSessionScoped(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	b, err := g.resolveSession(r, sid)
	if err != nil {
		gwError(w, http.StatusNotFound, err)
		return
	}
	if !b.Healthy() {
		gwError(w, http.StatusServiceUnavailable,
			fmt.Errorf("shard %s holding session %s is unhealthy", b.URL(), sid))
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	idempotent := r.Method == http.MethodGet
	status, respBody, err := g.pool.do(r.Context(), b, r.Method, path, body, idempotent)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if r.Method == http.MethodDelete && status == http.StatusOK {
		g.sessions.Delete(sid)
	}
	relay(w, status, respBody)
}

// bodyErrCode maps a buffered-read error to a status: 413 when the
// proxy body cap tripped, 400 otherwise.
func bodyErrCode(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// resolveSession finds the backend holding an open session: the local
// table first, then (after e.g. a gateway restart) a scatter over the
// healthy shards' session inventories.
func (g *Gateway) resolveSession(r *http.Request, sid string) (*Backend, error) {
	if v, ok := g.sessions.Load(sid); ok {
		if b := g.pool.ByURL(v.(string)); b != nil {
			return b, nil
		}
	}
	type found struct{ url string }
	results := make([]*found, len(g.pool.Backends()))
	var wg sync.WaitGroup
	for i, b := range g.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/shard/stats", nil, true)
			if err != nil || status != http.StatusOK {
				return
			}
			var stats server.ShardStatsResponse
			if json.Unmarshal(body, &stats) != nil {
				return
			}
			for _, s := range stats.Sessions {
				if s.SessionID == sid {
					results[i] = &found{url: b.URL()}
					return
				}
			}
		}(i, b)
	}
	wg.Wait()
	for _, f := range results {
		if f != nil {
			g.sessions.Store(sid, f.url)
			return g.pool.ByURL(f.url), nil
		}
	}
	return nil, fmt.Errorf("no open session %q on any reachable shard", sid)
}

// MatchResult is the gateway's scatter-gather response: the exact
// merged match list, plus degradation detail when one or more shards
// could not answer.
type MatchResult struct {
	Matches []server.RemoteMatch `json:"matches"`
	// Degraded is true when at least one shard failed to answer; the
	// matches then cover only the surviving shards.
	Degraded bool `json:"degraded"`
	// ShardErrors details each failed shard (URL -> error).
	ShardErrors map[string]string `json:"shardErrors,omitempty"`
	// ShardsQueried / ShardsOK count the fan-out.
	ShardsQueried int `json:"shardsQueried"`
	ShardsOK      int `json:"shardsOk"`
}

// handleMatch scatters a similarity query to every backend and merges
// the shard-local results into the global answer. The merge is exact:
// every shard scores candidates with identical Params and the query's
// own provenance, so ascending weighted distance is a total order the
// gateway can merge on; for k-NN queries each shard returns its local
// top-k and the merged top-k of those is the union's top-k.
func (g *Gateway) handleMatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req server.MatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding match request: %w", err))
		return
	}
	backends := g.pool.Backends()
	type leg struct {
		resp server.MatchResponse
		err  error
	}
	legs := make([]leg, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			legs[i].err = errors.New("unhealthy (ejected)")
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, respBody, err := g.pool.do(r.Context(), b, http.MethodPost, "/v1/match", body, true)
			switch {
			case err != nil:
				legs[i].err = err
			case status != http.StatusOK:
				legs[i].err = fmt.Errorf("status %d: %s", status, errDetail(respBody))
			default:
				legs[i].err = json.Unmarshal(respBody, &legs[i].resp)
			}
		}(i, b)
	}
	wg.Wait()

	res := MatchResult{ShardsQueried: len(backends), ShardErrors: map[string]string{}}
	var lists [][]server.RemoteMatch
	for i, b := range backends {
		if legs[i].err != nil {
			res.ShardErrors[b.URL()] = legs[i].err.Error()
			continue
		}
		res.ShardsOK++
		lists = append(lists, legs[i].resp.Matches)
	}
	if res.ShardsOK == 0 {
		g.met.scatter.Observe(time.Since(start).Seconds())
		gwJSON(w, http.StatusBadGateway, map[string]any{
			"error":       "all shards failed",
			"shardErrors": res.ShardErrors,
		})
		return
	}
	res.Matches = mergeMatches(lists, req.K)
	res.Degraded = len(res.ShardErrors) > 0
	if !res.Degraded {
		res.ShardErrors = nil
	} else {
		g.met.degraded.Inc()
	}
	g.met.scatter.Observe(time.Since(start).Seconds())
	gwJSON(w, http.StatusOK, res)
}

// errDetail extracts the "error" field of a JSON error body, falling
// back to a truncated raw body.
func errDetail(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	const max = 200
	if len(body) > max {
		body = body[:max]
	}
	return string(body)
}

// mergeMatches merges shard-local result lists into the global order:
// ascending distance, with a deterministic (patient, session, start)
// tie-break so equal-distance matches do not flap between requests.
// k > 0 truncates to the global top-k.
func mergeMatches(lists [][]server.RemoteMatch, k int) []server.RemoteMatch {
	out := []server.RemoteMatch{}
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Distance != y.Distance {
			return x.Distance < y.Distance
		}
		if x.PatientID != y.PatientID {
			return x.PatientID < y.PatientID
		}
		if x.SessionID != y.SessionID {
			return x.SessionID < y.SessionID
		}
		return x.Start < y.Start
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// GatewayStatsResponse aggregates the shards' database stats.
type GatewayStatsResponse struct {
	Patients     int               `json:"patients"`
	Streams      int               `json:"streams"`
	Vertices     int               `json:"vertices"`
	OpenSessions int               `json:"openSessions"`
	Shards       int               `json:"shards"`
	ShardsOK     int               `json:"shardsOk"`
	Degraded     bool              `json:"degraded"`
	ShardErrors  map[string]string `json:"shardErrors,omitempty"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	backends := g.pool.Backends()
	type leg struct {
		stats server.StatsResponse
		err   error
	}
	legs := make([]leg, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			legs[i].err = errors.New("unhealthy (ejected)")
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/stats", nil, true)
			switch {
			case err != nil:
				legs[i].err = err
			case status != http.StatusOK:
				legs[i].err = fmt.Errorf("status %d: %s", status, errDetail(body))
			default:
				legs[i].err = json.Unmarshal(body, &legs[i].stats)
			}
		}(i, b)
	}
	wg.Wait()
	res := GatewayStatsResponse{Shards: len(backends), ShardErrors: map[string]string{}}
	for i, b := range backends {
		if legs[i].err != nil {
			res.ShardErrors[b.URL()] = legs[i].err.Error()
			continue
		}
		res.ShardsOK++
		res.Patients += legs[i].stats.Patients
		res.Streams += legs[i].stats.Streams
		res.Vertices += legs[i].stats.Vertices
		res.OpenSessions += legs[i].stats.OpenSessions
	}
	res.Degraded = len(res.ShardErrors) > 0
	if !res.Degraded {
		res.ShardErrors = nil
	}
	gwJSON(w, http.StatusOK, res)
}

// BackendHealth is one backend's state in the gateway healthz payload.
type BackendHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// GatewayHealthResponse is the gateway liveness payload, aggregating
// backend health as seen by the active checker.
type GatewayHealthResponse struct {
	Status        string          `json:"status"` // ok | degraded
	UptimeSeconds float64         `json:"uptimeSeconds"`
	Backends      []BackendHealth `json:"backends"`
	HealthyCount  int             `json:"healthyCount"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	res := GatewayHealthResponse{Status: "ok", UptimeSeconds: time.Since(g.start).Seconds()}
	for _, b := range g.pool.Backends() {
		h := b.Healthy()
		if h {
			res.HealthyCount++
		} else {
			res.Status = "degraded"
		}
		res.Backends = append(res.Backends, BackendHealth{URL: b.URL(), Healthy: h})
	}
	gwJSON(w, http.StatusOK, res)
}
