package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/server"
)

// Gateway fronts N streamd backends. Session-scoped traffic (create,
// ingest, predict, PLR, close) is routed to the shard owning the
// session's patient on the consistent-hash ring; similarity queries
// scatter to every backend and gather into an exact merged result.
//
// With replication factor R > 1 each session is placed on the first R
// distinct backends clockwise from the patient's hash: the primary
// serves traffic and streams its WAL to the successors. When the
// health checker ejects a primary, the gateway promotes the first
// healthy replica (POST /v1/sessions/{sid}/promote) and re-routes the
// session there; scatter queries stay complete — not degraded — as
// long as every dead shard's arcs are covered by an answering
// replica.
type Gateway struct {
	ring    *Ring
	pool    *Pool
	opts    Options
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	met     *shardMetrics
	http    *obs.HTTPMetrics
	col     *obs.Collector
	start   time.Time

	// mu guards places and every placement's fields. places maps open
	// session IDs to their primary + replica set; it is populated on
	// create and lazily rebuilt from the shards' /v1/shard/stats
	// inventories after a gateway restart.
	mu     sync.Mutex
	places map[string]*placement

	// subPlaces maps subscription IDs to the scope they were registered
	// under (guarded by mu); the scope — not the backend — is
	// authoritative, so event streams re-resolve through session
	// failover or the ring on every (re)connect.
	subPlaces map[string]*subPlacement

	// promoteMu serializes failovers so concurrent requests against a
	// dead primary elect exactly one replacement.
	promoteMu sync.Mutex

	// fresh tracks per-backend per-patient holdings for the follower-
	// read planner (see freshness.go); cache is the high-water-mark
	// keyed /v1/match result cache (nil when disabled; see cache.go).
	fresh *freshTracker
	cache *matchCache

	// migClient carries migrate calls (see rebalance.go): its timeout
	// budgets a full session drain, not one proxied request.
	migClient *http.Client

	// stopFresh/freshDone bound the optional background freshness
	// poller started when Options.FreshnessInterval > 0.
	stopFresh chan struct{}
	freshDone chan struct{}
	stopOnce  sync.Once
}

// placement records where a session lives: the backend currently
// serving it and the full owner set (primary first) chosen by the
// ring at create time.
type placement struct {
	patientID string
	primary   string
	owners    []string
}

// NewGateway builds a gateway over the given backend base URLs.
func NewGateway(backends []string, opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	pool, err := NewPool(backends, opts)
	if err != nil {
		return nil, err
	}
	ring := NewRing(opts.Vnodes)
	for _, b := range backends {
		ring.Add(b)
	}
	g := &Gateway{
		ring:      ring,
		pool:      pool,
		opts:      opts,
		mux:       http.NewServeMux(),
		log:       obs.Logger("gateway"),
		met:       pool.met,
		http:      obs.NewHTTPMetrics(obs.Default(), "stsmatch_gateway"),
		col:       obs.NewCollector(opts.TraceCapacity, opts.TraceSlowThreshold),
		start:     time.Now(),
		places:    make(map[string]*placement),
		subPlaces: make(map[string]*subPlacement),
		fresh:     newFreshTracker(),
		stopFresh: make(chan struct{}),
		freshDone: make(chan struct{}),
	}
	g.cache = newMatchCache(opts.MatchCacheSize, pool.met)
	g.migClient = &http.Client{Timeout: opts.MigrateTimeout, Transport: opts.Transport}
	obs.RegisterBuildInfo(obs.Default())
	if opts.FreshnessInterval > 0 {
		go g.freshLoop(opts.FreshnessInterval)
	} else {
		close(g.freshDone)
	}
	g.route("POST /v1/sessions", "create_session", g.handleCreateSession)
	g.route("POST /v1/sessions/{sid}/samples", "ingest_samples", g.handleSessionScoped)
	g.route("DELETE /v1/sessions/{sid}", "close_session", g.handleSessionScoped)
	g.route("GET /v1/sessions/{sid}/predict", "predict", g.handleSessionScoped)
	g.route("GET /v1/sessions/{sid}/plr", "plr", g.handleSessionScoped)
	g.route("POST /v1/match", "match", g.handleMatch)
	g.route("POST /v1/subscriptions", "create_subscription", g.handleCreateSubscription)
	g.route("GET /v1/subscriptions", "list_subscriptions", g.handleListSubscriptions)
	g.route("DELETE /v1/subscriptions/{id}", "delete_subscription", g.handleDeleteSubscription)
	g.route("GET /v1/subscriptions/{id}/events", "subscription_events", g.handleSubEvents)
	g.route("GET /v1/stats", "stats", g.handleStats)
	g.route("GET /v1/healthz", "healthz", g.handleHealthz)
	g.route("POST /v1/admin/backends", "admin_add_backend", g.handleAddBackend)
	g.route("POST /v1/admin/rebalance", "admin_rebalance", g.handleRebalance)
	g.mux.Handle("GET /v1/traces", g.http.Wrap("traces", g.col.Handler()))
	// /metrics stays out of the access log and traces, but still counts
	// in the request metrics like any other route.
	g.mux.Handle("GET /metrics", g.http.WrapScrape("metrics", obs.Default().Handler()))
	g.handler = obs.RequestID(obs.TraceHTTP("gateway", g.col, obs.AccessLog(g.log, g.mux)))
	return g, nil
}

// Traces exposes the gateway's trace collector (daemon wiring, tests).
func (g *Gateway) Traces() *obs.Collector { return g.col }

func (g *Gateway) route(pattern, name string, h http.HandlerFunc) {
	g.mux.Handle(pattern, g.http.Wrap(name, h))
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.handler.ServeHTTP(w, r) }

// Close stops the pool's health checker and the freshness poller.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stopFresh) })
	<-g.freshDone
	g.pool.Close()
}

// freshLoop periodically refreshes the freshness tracker from the
// shards' stats inventories.
func (g *Gateway) freshLoop(interval time.Duration) {
	defer close(g.freshDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.stopFresh:
			return
		case <-t.C:
			g.RefreshFreshness(context.Background())
		}
	}
}

// RefreshFreshness polls every healthy backend's /v1/shard/stats and
// folds the per-patient holdings into the freshness tracker. The
// background poller calls this on a timer; tests call it directly for
// deterministic convergence.
func (g *Gateway) RefreshFreshness(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(ctx, b, http.MethodGet, "/v1/shard/stats", nil, true)
			if err != nil || status != http.StatusOK {
				return
			}
			var stats server.ShardStatsResponse
			if json.Unmarshal(body, &stats) != nil {
				return
			}
			g.fresh.observeMap(b.URL(), stats.Freshness)
		}(b)
	}
	wg.Wait()
}

// MatchCacheLen reports the number of cached match results (tests,
// stats).
func (g *Gateway) MatchCacheLen() int { return g.cache.Len() }

// CreditFreshness raises the tracked holdings of a backend for a
// patient, never lowering a self-report — the same inference rule the
// replication piggyback uses. Exported for tests and operational
// pre-seeding; an over-credit is safe because a follower re-verifies
// its real holdings against every leg's bound and refuses when short.
func (g *Gateway) CreditFreshness(backend, pid string, fr server.PatientFreshness) {
	g.fresh.credit(backend, pid, fr)
}

// FreshnessView reports the gateway's tracked holdings of a backend
// for a patient (tests, debugging).
func (g *Gateway) FreshnessView(backend, pid string) (server.PatientFreshness, bool) {
	return g.fresh.holdings(backend, pid)
}

// Ring exposes the gateway's hash ring (read-only use).
func (g *Gateway) Ring() *Ring { return g.ring }

// Pool exposes the gateway's backend pool (health introspection).
func (g *Gateway) Pool() *Pool { return g.pool }

// SessionPlacement reports where the gateway believes a session lives:
// the backend currently serving it and the full owner set (primary
// first). ok is false when the session is unknown to this gateway.
func (g *Gateway) SessionPlacement(sid string) (primary string, owners []string, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pl, ok := g.places[sid]
	if !ok {
		return "", nil, false
	}
	return pl.primary, append([]string(nil), pl.owners...), true
}

func gwError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func gwJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// readBody buffers a request body under the proxy cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	return io.ReadAll(http.MaxBytesReader(w, r.Body, server.DefaultMaxBodyBytes))
}

// relay forwards a backend response verbatim.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck
}

// relayFreshnessHeaders forwards the shard's piggybacked per-patient
// freshness headers to the client, so callers can observe their own
// write's high-water mark and replication state.
func relayFreshnessHeaders(w http.ResponseWriter, respHdr http.Header) {
	for _, h := range []string{server.HeaderPatientStreams, server.HeaderPatientVertices, server.HeaderReplicated} {
		if v := respHdr.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
}

// handleCreateSession places a session on the ring: the first R
// distinct owners clockwise from the patient's hash, with the first
// healthy owner as primary and the rest injected into the create
// request as replication targets, so the chosen shard streams its WAL
// to them from the first record.
func (g *Gateway) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req server.CreateSessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.PatientID == "" || req.SessionID == "" {
		gwError(w, http.StatusBadRequest, errors.New("patientId and sessionId are required"))
		return
	}
	owners := g.ring.Owners(req.PatientID, g.opts.Replicas)
	if len(owners) == 0 {
		gwError(w, http.StatusServiceUnavailable, errors.New("no backends configured"))
		return
	}
	// The ring's first owner is the natural primary, but any healthy
	// owner can take the role at create time — there is no data to
	// hand over yet.
	var primary *Backend
	for _, u := range owners {
		if b := g.pool.ByURL(u); b != nil && b.Healthy() {
			primary = b
			break
		}
	}
	if primary == nil {
		gwError(w, http.StatusServiceUnavailable,
			fmt.Errorf("no healthy owner for patient %s (owners %v)", req.PatientID, owners))
		return
	}
	req.Replicate = req.Replicate[:0]
	for _, u := range owners {
		if u != primary.URL() {
			req.Replicate = append(req.Replicate, u)
		}
	}
	fwd, err := json.Marshal(req)
	if err != nil {
		gwError(w, http.StatusInternalServerError, err)
		return
	}
	status, respBody, respHdr, err := g.pool.doHdr(r.Context(), primary, http.MethodPost, "/v1/sessions", fwd, nil, false)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if status == http.StatusCreated {
		g.noteIngestFreshness(primary.URL(), req.PatientID, owners, respHdr)
		g.mu.Lock()
		g.places[req.SessionID] = &placement{
			patientID: req.PatientID,
			primary:   primary.URL(),
			owners:    owners,
		}
		g.mu.Unlock()
		g.met.routed.With(primary.URL()).Inc()
		g.log.Info("session routed",
			slog.String("patientId", req.PatientID),
			slog.String("sessionId", req.SessionID),
			slog.String("backend", primary.URL()),
			slog.Int("replicas", len(req.Replicate)))
	}
	relayFreshnessHeaders(w, respHdr)
	relay(w, status, respBody)
}

// handleSessionScoped forwards a session-addressed request to the
// shard currently serving the session, failing the session over to a
// replica first when the primary has been ejected. GETs are
// idempotent and retried; mutations get a single attempt.
func (g *Gateway) handleSessionScoped(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	pl, err := g.placementFor(r, sid)
	if err != nil {
		gwError(w, http.StatusNotFound, err)
		return
	}
	b := g.primaryBackend(pl)
	if b == nil {
		b, err = g.failover(r.Context(), sid, pl)
		if err != nil {
			gwError(w, http.StatusServiceUnavailable,
				fmt.Errorf("session %s: primary down and no replica promoted: %w", sid, err))
			return
		}
	}
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	idempotent := r.Method == http.MethodGet
	status, respBody, respHdr, err := g.pool.doHdr(r.Context(), b, r.Method, path, body, nil, idempotent)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if status == http.StatusGone {
		// The session migrated away: the placement cache pointed at a
		// tombstoned source. Invalidate, follow the redirect hint (or
		// rediscover from the shards' inventories), and retry exactly
		// once on the new owner — converging without bouncing the
		// client.
		if nb := g.placementAfterGone(r, sid, pl, respHdr); nb != nil && nb.URL() != b.URL() {
			b = nb
			status, respBody, respHdr, err = g.pool.doHdr(r.Context(), b, r.Method, path, body, nil, idempotent)
			if err != nil {
				gwError(w, http.StatusBadGateway, err)
				return
			}
		}
	}
	if status == http.StatusOK {
		g.mu.Lock()
		pid := pl.patientID
		owners := append([]string(nil), pl.owners...)
		g.mu.Unlock()
		g.noteIngestFreshness(b.URL(), pid, owners, respHdr)
	}
	if r.Method == http.MethodDelete && status == http.StatusOK {
		g.mu.Lock()
		delete(g.places, sid)
		g.mu.Unlock()
	}
	relayFreshnessHeaders(w, respHdr)
	relay(w, status, respBody)
}

// placementAfterGone repairs a session's cached placement after a 410
// tombstone response: the Location header names the new owner when the
// source knew it; otherwise the stale entry is dropped and rebuilt
// from the shards' inventories. Returns the backend to retry on, or
// nil when no new owner could be resolved.
func (g *Gateway) placementAfterGone(r *http.Request, sid string, pl *placement, respHdr http.Header) *Backend {
	g.met.placementInvalidations.Inc()
	if hint := respHdr.Get("Location"); hint != "" {
		if nb := g.pool.ByURL(hint); nb != nil && nb.Healthy() {
			g.mu.Lock()
			pl.primary = hint
			if pid := pl.patientID; pid != "" {
				if desired := g.ring.Owners(pid, g.opts.Replicas); len(desired) > 0 {
					pl.owners = append([]string(nil), desired...)
				}
			}
			has := false
			for _, u := range pl.owners {
				has = has || u == hint
			}
			if !has {
				pl.owners = append([]string{hint}, pl.owners...)
			}
			g.mu.Unlock()
			g.log.Info("placement repaired from tombstone hint",
				slog.String("sessionId", sid), slog.String("backend", hint))
			return nb
		}
	}
	g.mu.Lock()
	delete(g.places, sid)
	g.mu.Unlock()
	npl, err := g.placementFor(r, sid)
	if err != nil {
		return nil
	}
	return g.primaryBackend(npl)
}

// primaryBackend returns the backend currently serving a session, or
// nil when it is unknown or unhealthy.
func (g *Gateway) primaryBackend(pl *placement) *Backend {
	g.mu.Lock()
	u := pl.primary
	g.mu.Unlock()
	if u == "" {
		return nil
	}
	if b := g.pool.ByURL(u); b != nil && b.Healthy() {
		return b
	}
	return nil
}

// failover promotes the first healthy replica of a session to primary
// and re-points the placement at it. Serialized per gateway so
// concurrent requests against a dead primary elect one replacement;
// later waiters observe the updated placement and return immediately.
func (g *Gateway) failover(ctx context.Context, sid string, pl *placement) (*Backend, error) {
	g.promoteMu.Lock()
	defer g.promoteMu.Unlock()
	if b := g.primaryBackend(pl); b != nil {
		return b, nil // raced with another request's failover
	}
	g.mu.Lock()
	old := pl.primary
	owners := append([]string(nil), pl.owners...)
	g.mu.Unlock()
	lastErr := fmt.Errorf("no healthy replica among owners %v", owners)
	for _, cand := range owners {
		if cand == old {
			continue
		}
		b := g.pool.ByURL(cand)
		if b == nil || !b.Healthy() {
			continue
		}
		// The dead primary is dropped from the new replica set: if it
		// comes back it still holds the old epoch and would fence the
		// shipments anyway.
		rest := make([]string, 0, len(owners))
		for _, u := range owners {
			if u != cand && u != old {
				rest = append(rest, u)
			}
		}
		body, err := json.Marshal(server.PromoteRequest{Replicate: rest})
		if err != nil {
			return nil, err
		}
		status, respBody, err := g.pool.do(ctx, b,
			http.MethodPost, "/v1/sessions/"+url.PathEscape(sid)+"/promote", body, false)
		if err != nil {
			lastErr = err
			continue
		}
		if status != http.StatusOK {
			lastErr = fmt.Errorf("promote on %s: status %d: %s", cand, status, errDetail(respBody))
			continue
		}
		g.mu.Lock()
		pl.primary = cand
		g.mu.Unlock()
		g.met.failovers.Inc()
		g.log.Warn("session failed over",
			slog.String("sessionId", sid),
			slog.String("from", old),
			slog.String("to", cand))
		return b, nil
	}
	return nil, lastErr
}

// noteIngestFreshness folds an ingest/create ack's piggybacked patient
// counts into the freshness tracker. The serving backend's report is
// authoritative (observe); a clean synchronous replication flush
// (X-Replicated: full) proves every follower holds at least the same
// data, so they are credited too — credit only raises, never lowers,
// so a later self-report corrects any over-estimate.
func (g *Gateway) noteIngestFreshness(backendURL, pid string, owners []string, hdr http.Header) {
	if pid == "" {
		return
	}
	streams, err1 := strconv.Atoi(hdr.Get(server.HeaderPatientStreams))
	vertices, err2 := strconv.Atoi(hdr.Get(server.HeaderPatientVertices))
	if err1 != nil || err2 != nil {
		return
	}
	fr := server.PatientFreshness{Streams: streams, Vertices: vertices}
	g.fresh.observe(backendURL, pid, fr)
	if hdr.Get(server.HeaderReplicated) != "full" {
		return
	}
	for _, u := range owners {
		if u != backendURL {
			g.fresh.credit(u, pid, fr)
		}
	}
}

// bodyErrCode maps a buffered-read error to a status: 413 when the
// proxy body cap tripped, 400 otherwise.
func bodyErrCode(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// placementFor finds where a session lives: the local table first,
// then (after e.g. a gateway restart) a scatter over the healthy
// shards' session inventories. The scatter distinguishes primaries
// (Sessions) from followers (Replicas), so a rebuilt placement routes
// to the live primary and keeps the followers as failover candidates;
// if only followers survive, the placement has no primary and the
// caller's failover path promotes one.
func (g *Gateway) placementFor(r *http.Request, sid string) (*placement, error) {
	g.mu.Lock()
	if pl, ok := g.places[sid]; ok {
		g.mu.Unlock()
		return pl, nil
	}
	g.mu.Unlock()
	type found struct {
		primary   string
		replica   string
		patientID string
	}
	results := make([]*found, len(g.pool.Backends()))
	var wg sync.WaitGroup
	for i, b := range g.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/shard/stats", nil, true)
			if err != nil || status != http.StatusOK {
				return
			}
			var stats server.ShardStatsResponse
			if json.Unmarshal(body, &stats) != nil {
				return
			}
			for _, s := range stats.Sessions {
				if s.SessionID == sid {
					results[i] = &found{primary: b.URL(), patientID: s.PatientID}
					return
				}
			}
			for _, s := range stats.Replicas {
				if s.SessionID == sid {
					results[i] = &found{replica: b.URL(), patientID: s.PatientID}
					return
				}
			}
		}(i, b)
	}
	wg.Wait()
	pl := &placement{}
	for _, f := range results {
		if f == nil {
			continue
		}
		pl.patientID = f.patientID
		if f.primary != "" && pl.primary == "" {
			pl.primary = f.primary
			pl.owners = append([]string{f.primary}, pl.owners...)
		} else if f.replica != "" {
			pl.owners = append(pl.owners, f.replica)
		}
	}
	if len(pl.owners) == 0 {
		return nil, fmt.Errorf("no open session %q on any reachable shard", sid)
	}
	g.mu.Lock()
	if cur, ok := g.places[sid]; ok {
		pl = cur // another request rebuilt it first
	} else {
		g.places[sid] = pl
	}
	g.mu.Unlock()
	return pl, nil
}

// MatchResult is the gateway's scatter-gather response: the exact
// merged match list, plus degradation detail when one or more shards
// could not answer and their data is not covered by replicas.
type MatchResult struct {
	Matches []server.RemoteMatch `json:"matches"`
	// Profile is present only for ?debug=profile requests: the merged
	// cross-service span tree — gateway root, one scatter leg per
	// shard, and each shard's handler + matcher funnel spans grafted
	// under its leg.
	Profile *obs.Profile `json:"profile,omitempty"`
	// Degraded is true when at least one shard failed to answer AND
	// that shard's arcs are not all covered by an answering replica:
	// the matches then cover only the surviving data. With replication
	// factor R > 1 a single dead shard keeps Degraded false (and the
	// key absent) because every arc it owned is mirrored on a
	// successor that did answer.
	Degraded bool `json:"degraded,omitempty"`
	// ShardErrors details each failed shard (URL -> error).
	ShardErrors map[string]string `json:"shardErrors,omitempty"`
	// ShardsQueried / ShardsOK count the fan-out.
	ShardsQueried int `json:"shardsQueried"`
	ShardsOK      int `json:"shardsOk"`
	// PlannedPatients / FollowerServed count the read-path plan for
	// this query: how many patient arcs were pinned to a single holder
	// and how many of those holders were followers. Zero at max-lag 0
	// (the legacy everyone-scans-everything scatter).
	PlannedPatients int `json:"plannedPatients,omitempty"`
	FollowerServed  int `json:"followerServed,omitempty"`
	// UnservedPatients lists planned patients no holder could serve
	// within the query's max-lag bound even after retries; when
	// non-empty the result is Degraded.
	UnservedPatients []string `json:"unservedPatients,omitempty"`
}

// patientAssign is one planned patient's serving decision: the backend
// pinned to score it, its primary, the freshness bound a follower must
// re-verify (nil when the primary serves), and the ordered alternates
// for retry after a refusal or leg failure.
type patientAssign struct {
	backend string
	primary string
	require *server.PatientFreshness
	alts    []string
}

// planScatter pins each live patient to exactly one holder within the
// query's lag tolerance. maxLag <= 0 plans nothing: every shard scans
// all its local data and the merge deduplicates, exactly the
// pre-follower-read behaviour. With maxLag > 0 each planned patient is
// scored once — by a caught-up follower when that balances load —
// and every other leg excludes it, which is what turns R-way
// replication from duplicated scoring work into spread capacity.
//
// The plan is advisory: a follower pinned here re-verifies its real
// holdings against the Require bound and refuses when short, so a
// stale freshness tracker costs one retry leg, never a stale answer
// beyond the bound.
func (g *Gateway) planScatter(maxLag int) map[string]*patientAssign {
	if maxLag <= 0 {
		return nil
	}
	type place struct {
		primary  string
		owners   []string
		conflict bool
	}
	g.mu.Lock()
	pats := make(map[string]*place)
	for _, pl := range g.places {
		if cur, ok := pats[pl.patientID]; ok {
			// Two sessions of one patient disagreeing on their primary
			// (transient, mid-failover): leave the patient unplanned —
			// every holder scores it and the merge dedups.
			if cur.primary != pl.primary {
				cur.conflict = true
			}
			continue
		}
		pats[pl.patientID] = &place{primary: pl.primary, owners: append([]string(nil), pl.owners...)}
	}
	g.mu.Unlock()
	pids := make([]string, 0, len(pats))
	for pid := range pats {
		pids = append(pids, pid)
	}
	sort.Strings(pids)
	plan := make(map[string]*patientAssign)
	load := make(map[string]int)
	for _, pid := range pids {
		pp := pats[pid]
		if pp.conflict || pp.primary == "" {
			continue
		}
		if pb := g.pool.ByURL(pp.primary); pb == nil || !pb.Healthy() {
			// Dead primary: stay on the legacy path for this patient so
			// the surviving followers score their copies and the ring
			// coverage check decides degradation.
			continue
		}
		primHW, known := g.fresh.holdings(pp.primary, pid)
		pa := &patientAssign{primary: pp.primary}
		if !known {
			// No evidence about the primary's holdings yet: pin to the
			// primary (always exact) and learn from its piggyback.
			pa.backend = pp.primary
			plan[pid] = pa
			load[pp.primary]++
			continue
		}
		bound := server.PatientFreshness{Streams: primHW.Streams, Vertices: primHW.Vertices - maxLag}
		if bound.Vertices < 0 {
			bound.Vertices = 0
		}
		// Candidates: caught-up followers first so load ties shift reads
		// off primaries (which also carry ingest), then the primary.
		var cands []string
		for _, u := range pp.owners {
			if u == pp.primary {
				continue
			}
			fb := g.pool.ByURL(u)
			if fb == nil || !fb.Healthy() {
				continue
			}
			if fHW, ok := g.fresh.holdings(u, pid); ok &&
				fHW.Streams >= bound.Streams && fHW.Vertices >= bound.Vertices {
				cands = append(cands, u)
			}
		}
		cands = append(cands, pp.primary)
		best := cands[0]
		for _, u := range cands[1:] {
			if load[u] < load[best] {
				best = u
			}
		}
		pa.backend = best
		// The bound travels with the patient even when the primary
		// serves: if that leg fails mid-query, the retry can still fall
		// back to a bound-checked follower.
		pa.require = &bound
		if best != pp.primary {
			pa.alts = append(pa.alts, pp.primary)
		}
		for _, u := range cands {
			if u != best && u != pp.primary {
				pa.alts = append(pa.alts, u)
			}
		}
		plan[pid] = pa
		load[best]++
	}
	if len(plan) == 0 {
		return nil
	}
	return plan
}

// legScope builds one backend's per-leg scope from the plan: the
// patients it is pinned to keep their Require bounds; every other
// planned patient is excluded.
func legScope(plan map[string]*patientAssign, backend string) server.MatchScope {
	var sc server.MatchScope
	for pid, pa := range plan {
		if pa.backend != backend {
			sc.Exclude = append(sc.Exclude, pid)
			continue
		}
		if pa.require != nil {
			if sc.Require == nil {
				sc.Require = make(map[string]server.PatientFreshness)
			}
			sc.Require[pid] = *pa.require
		}
	}
	sort.Strings(sc.Exclude)
	return sc
}

// handleMatch answers a similarity query: result cache first, then a
// planned scatter to the backends, merging the shard-local results
// into the global answer. The merge is exact: every shard scores
// candidates with identical Params and the query's own provenance, so
// ascending weighted distance is a total order the gateway can merge
// on; for k-NN queries each shard returns its local top-k and the
// merged top-k of those is the union's top-k.
//
// At max-lag 0 (the default) every shard scans all its local data —
// replicated streams are scored on both their primary and their
// followers and the merge deduplicates, exactly the legacy behaviour.
// With maxLag > 0 the planner pins each live patient to one caught-up
// holder (preferring followers, so primaries shed read work) and the
// leg's scope headers exclude that patient everywhere else; a follower
// that cannot meet the leg's freshness bound refuses the patient and
// the gateway retries it on an alternate. The merged result is
// byte-identical across plans because the scope only changes which
// holder scores a copy, never what is scored.
//
// The result cache is keyed on (canonical query, every healthy
// backend's store high-water mark): any ingest through the gateway
// advances the primary's tracked token before the ack returns, so the
// next identical query misses naturally. Hits are served from the
// exact bytes a miss produced — zero backend calls, byte-identical.
func (g *Gateway) handleMatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req server.MatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding match request: %w", err))
		return
	}
	// ?max-lag= overrides the body knob; merging it into the request
	// before canonicalization keeps it part of the cache signature.
	if v := r.URL.Query().Get("max-lag"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			gwError(w, http.StatusBadRequest, fmt.Errorf("invalid max-lag %q", v))
			return
		}
		req.MaxLag = n
	}
	if req.MaxLag < 0 {
		req.MaxLag = 0
	}
	// ?debug=profile asks each shard for its span tree inline and
	// merges them under this request's scatter legs.
	profile := r.URL.Query().Get("debug") == "profile"
	path := "/v1/match"
	if profile {
		path += "?debug=profile"
	}
	// Canonical query bytes: a re-marshal normalizes field order and
	// whitespace so equivalent requests share one cache signature, and
	// every scatter leg (and retry) reuses these bytes verbatim.
	canonical, err := json.Marshal(req)
	if err != nil {
		gwError(w, http.StatusInternalServerError, err)
		return
	}
	backends := g.pool.Backends()
	// Profiled requests bypass the cache: their payload embeds a
	// per-request trace.
	var key string
	if g.cache != nil && !profile {
		if k, ok := cacheKey(canonical, backends); ok {
			key = k
			if cached, hit := g.cache.get(key); hit {
				w.Header().Set("X-Cache", "hit")
				relay(w, http.StatusOK, cached)
				g.met.scatter.Observe(time.Since(start).Seconds())
				return
			}
			w.Header().Set("X-Cache", "miss")
		}
	}

	plan := g.planScatter(req.MaxLag)
	assigned := make(map[string][]string, len(backends))
	for pid, pa := range plan {
		assigned[pa.backend] = append(assigned[pa.backend], pid)
	}
	type leg struct {
		resp server.MatchResponse
		tok  string // X-Store-Seq the leg's response carried
		err  error
	}
	legs := make([]leg, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			legs[i].err = errors.New("unhealthy (ejected)")
			continue
		}
		sc := legScope(plan, b.URL())
		var hdr http.Header
		if !sc.Empty() {
			hdr = make(http.Header)
			sc.SetHeaders(hdr)
		}
		nAssigned := len(assigned[b.URL()])
		wg.Add(1)
		go func(i int, b *Backend, hdr http.Header, nAssigned, nExcluded int) {
			defer wg.Done()
			// One span per scatter leg; the leg's context flows into the
			// pool, whose per-attempt spans (and the backend's own trace,
			// via the propagated traceparent) nest underneath.
			lctx, sp := obs.StartSpan(r.Context(), "scatter.leg")
			defer sp.Finish()
			sp.Annotate("backend", b.URL())
			if plan != nil {
				sp.Annotate("assigned", nAssigned)
				sp.Annotate("excluded", nExcluded)
			}
			status, respBody, respHdr, err := g.pool.doHdr(lctx, b, http.MethodPost, path, canonical, hdr, true)
			switch {
			case err != nil:
				sp.Annotate("error", err.Error())
				legs[i].err = err
			case status != http.StatusOK:
				sp.Annotate("status", status)
				legs[i].err = fmt.Errorf("status %d: %s", status, errDetail(respBody))
			default:
				sp.Annotate("status", status)
				legs[i].tok = respHdr.Get(server.HeaderStoreSeq)
				legs[i].err = json.Unmarshal(respBody, &legs[i].resp)
			}
		}(i, b, hdr, nAssigned, len(sc.Exclude))
	}
	wg.Wait()

	res := MatchResult{ShardsQueried: len(backends), ShardErrors: map[string]string{}}
	res.PlannedPatients = len(plan)
	answered := make(map[string]bool, len(backends))
	served := make(map[string]bool, len(plan))
	var needRetry []string
	var lists [][]server.RemoteMatch
	for i, b := range backends {
		if legs[i].err != nil {
			res.ShardErrors[b.URL()] = legs[i].err.Error()
			// Planned patients were excluded from every other leg, so a
			// failed leg's assignments must be retried on an alternate.
			needRetry = append(needRetry, assigned[b.URL()]...)
			continue
		}
		res.ShardsOK++
		answered[b.URL()] = true
		lists = append(lists, legs[i].resp.Matches)
		g.fresh.observeMap(b.URL(), legs[i].resp.Freshness)
		refused := make(map[string]bool, len(legs[i].resp.Refused))
		for _, pid := range legs[i].resp.Refused {
			refused[pid] = true
			g.met.readRefusals.Inc()
			needRetry = append(needRetry, pid)
		}
		for _, pid := range assigned[b.URL()] {
			if refused[pid] {
				continue
			}
			served[pid] = true
			if pa := plan[pid]; pa.backend != pa.primary {
				res.FollowerServed++
				g.met.followerReads.Inc()
			}
		}
		if p := legs[i].resp.Profile; p != nil {
			// The shard's handler root is parented on this gateway's
			// attempt span (it continued our traceparent), so grafting
			// the flattened spans into the trace reassembles one tree.
			obs.AddExternalSpans(r.Context(), p.Root.Flatten())
		}
	}
	if res.ShardsOK == 0 {
		g.met.scatter.Observe(time.Since(start).Seconds())
		gwJSON(w, http.StatusBadGateway, map[string]any{
			"error":       "all shards failed",
			"shardErrors": res.ShardErrors,
		})
		return
	}
	if len(needRetry) > 0 {
		lists = append(lists, g.retryScatter(r.Context(), path, canonical, plan, needRetry, served, &res)...)
	}
	for pid := range plan {
		if !served[pid] {
			res.UnservedPatients = append(res.UnservedPatients, pid)
		}
	}
	sort.Strings(res.UnservedPatients)
	res.Matches = MergeMatches(lists, req.K)
	// A failed shard only degrades the result if some arc it owns has
	// no answering replica; the coverage test is against the shards
	// that actually answered this query, not nominal health.
	for failed := range res.ShardErrors {
		if !g.ring.Covered(failed, g.opts.Replicas, func(u string) bool { return answered[u] }) {
			res.Degraded = true
			break
		}
	}
	if len(res.UnservedPatients) > 0 {
		res.Degraded = true
	}
	if len(res.ShardErrors) == 0 {
		res.ShardErrors = nil
	}
	if res.Degraded {
		g.met.degraded.Inc()
	}
	if profile {
		if id, spans := obs.SnapshotTrace(r.Context()); id != "" {
			res.Profile = &obs.Profile{TraceID: id, Root: obs.BuildTree(spans)}
		}
	}
	g.met.scatter.Observe(time.Since(start).Seconds())
	out, err := json.Marshal(res)
	if err != nil {
		gwError(w, http.StatusInternalServerError, err)
		return
	}
	// Only clean, complete results are worth caching: degraded or
	// partial answers would otherwise be replayed until the next write.
	if key != "" && !res.Degraded && len(res.ShardErrors) == 0 {
		g.cache.put(key, out)
		// A replicated write acked through this gateway advances only
		// the primary's tracked token; the followers' advance is first
		// observed by this very scatter. Re-file the same bytes under
		// the post-scatter key so the next identical query hits instead
		// of recomputing — but only while every healthy backend's
		// tracked token still equals the token its leg returned:
		// equality means no newer write was acked in between, so the
		// new key binds exactly these bytes. Sound because a match
		// leg's token is snapshotted before scoring (see
		// server/readpath.go): it can never be newer than the data the
		// leg scored, so equal tokens can't mask a mid-query write.
		if key2, ok := cacheKey(canonical, backends); ok && key2 != key {
			fresh := true
			for i, b := range backends {
				if !b.Healthy() {
					continue
				}
				if legs[i].tok == "" || b.StoreSeq() != legs[i].tok {
					fresh = false
					break
				}
			}
			if fresh {
				g.cache.put(key2, out)
			}
		}
	}
	relay(w, http.StatusOK, out)
}

// retryScatter runs one recovery round for planned patients whose leg
// failed or refused them: each patient goes to its first healthy
// untried alternate (primary first), grouped so one extra request per
// backend covers all its retries. Patients with no viable alternate
// are left unserved; the caller reports them and degrades the result.
func (g *Gateway) retryScatter(ctx context.Context, path string, canonical []byte,
	plan map[string]*patientAssign, needRetry []string, served map[string]bool,
	res *MatchResult) [][]server.RemoteMatch {
	type retryGroup struct {
		only    []string
		require map[string]server.PatientFreshness
	}
	groups := make(map[string]*retryGroup)
	for _, pid := range needRetry {
		pa := plan[pid]
		for _, alt := range pa.alts {
			ab := g.pool.ByURL(alt)
			if ab == nil || !ab.Healthy() {
				continue
			}
			// A follower alternate still has to prove the freshness
			// bound; without one (the bound was never computed) only the
			// primary is exact.
			if alt != pa.primary && pa.require == nil {
				continue
			}
			gr := groups[alt]
			if gr == nil {
				gr = &retryGroup{}
				groups[alt] = gr
			}
			gr.only = append(gr.only, pid)
			if alt != pa.primary {
				if gr.require == nil {
					gr.require = make(map[string]server.PatientFreshness)
				}
				gr.require[pid] = *pa.require
			}
			break
		}
	}
	if len(groups) == 0 {
		return nil
	}
	targets := make([]string, 0, len(groups))
	for u := range groups {
		targets = append(targets, u)
	}
	sort.Strings(targets)
	lists := make([][]server.RemoteMatch, len(targets))
	type outcome struct {
		backend string
		resp    server.MatchResponse
		ok      bool
	}
	outs := make([]outcome, len(targets))
	var wg sync.WaitGroup
	for i, u := range targets {
		gr := groups[u]
		sort.Strings(gr.only)
		b := g.pool.ByURL(u)
		if b == nil {
			continue
		}
		g.met.retryLegs.Inc()
		wg.Add(1)
		go func(i int, b *Backend, gr *retryGroup) {
			defer wg.Done()
			lctx, sp := obs.StartSpan(ctx, "scatter.retry")
			defer sp.Finish()
			sp.Annotate("backend", b.URL())
			sp.Annotate("patients", len(gr.only))
			sc := server.MatchScope{Only: gr.only, Require: gr.require}
			hdr := make(http.Header)
			sc.SetHeaders(hdr)
			status, respBody, _, err := g.pool.doHdr(lctx, b, http.MethodPost, path, canonical, hdr, true)
			if err != nil {
				sp.Annotate("error", err.Error())
				return
			}
			if status != http.StatusOK {
				sp.Annotate("status", status)
				return
			}
			if json.Unmarshal(respBody, &outs[i].resp) != nil {
				return
			}
			outs[i].backend = b.URL()
			outs[i].ok = true
		}(i, b, gr)
	}
	wg.Wait()
	for i, u := range targets {
		if !outs[i].ok {
			continue
		}
		lists[i] = outs[i].resp.Matches
		g.fresh.observeMap(u, outs[i].resp.Freshness)
		refused := make(map[string]bool, len(outs[i].resp.Refused))
		for _, pid := range outs[i].resp.Refused {
			refused[pid] = true
			g.met.readRefusals.Inc()
		}
		for _, pid := range groups[u].only {
			if refused[pid] {
				continue
			}
			served[pid] = true
			if u != plan[pid].primary {
				res.FollowerServed++
				g.met.followerReads.Inc()
			}
		}
	}
	return lists
}

// errDetail extracts the "error" field of a JSON error body, falling
// back to a truncated raw body.
func errDetail(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	const max = 200
	if len(body) > max {
		body = body[:max]
	}
	return string(body)
}

// MergeMatches merges shard-local result lists into the global order:
// ascending distance, with a deterministic (patient, session, start)
// tie-break so equal-distance matches do not flap between requests.
// Identical matches are deduplicated first — a replicated stream is
// scored independently by its primary and each follower, and those
// duplicates would otherwise crowd out genuine results under top-k
// truncation. k > 0 truncates to the global top-k.
func MergeMatches(lists [][]server.RemoteMatch, k int) []server.RemoteMatch {
	out := []server.RemoteMatch{}
	seen := make(map[server.RemoteMatch]struct{})
	for _, l := range lists {
		for _, m := range l {
			if _, dup := seen[m]; dup {
				continue
			}
			seen[m] = struct{}{}
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Distance != y.Distance {
			return x.Distance < y.Distance
		}
		if x.PatientID != y.PatientID {
			return x.PatientID < y.PatientID
		}
		if x.SessionID != y.SessionID {
			return x.SessionID < y.SessionID
		}
		return x.Start < y.Start
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// GatewayStatsResponse aggregates the shards' database stats. Totals
// are physical: with replication factor R, replicated streams count
// once per holder.
type GatewayStatsResponse struct {
	Patients     int               `json:"patients"`
	Streams      int               `json:"streams"`
	Vertices     int               `json:"vertices"`
	OpenSessions int               `json:"openSessions"`
	Shards       int               `json:"shards"`
	ShardsOK     int               `json:"shardsOk"`
	Degraded     bool              `json:"degraded"`
	ShardErrors  map[string]string `json:"shardErrors,omitempty"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	backends := g.pool.Backends()
	type leg struct {
		stats server.StatsResponse
		err   error
	}
	legs := make([]leg, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			legs[i].err = errors.New("unhealthy (ejected)")
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/stats", nil, true)
			switch {
			case err != nil:
				legs[i].err = err
			case status != http.StatusOK:
				legs[i].err = fmt.Errorf("status %d: %s", status, errDetail(body))
			default:
				legs[i].err = json.Unmarshal(body, &legs[i].stats)
			}
		}(i, b)
	}
	wg.Wait()
	res := GatewayStatsResponse{Shards: len(backends), ShardErrors: map[string]string{}}
	for i, b := range backends {
		if legs[i].err != nil {
			res.ShardErrors[b.URL()] = legs[i].err.Error()
			continue
		}
		res.ShardsOK++
		res.Patients += legs[i].stats.Patients
		res.Streams += legs[i].stats.Streams
		res.Vertices += legs[i].stats.Vertices
		res.OpenSessions += legs[i].stats.OpenSessions
	}
	res.Degraded = len(res.ShardErrors) > 0
	if !res.Degraded {
		res.ShardErrors = nil
	}
	gwJSON(w, http.StatusOK, res)
}

// BackendHealth is one backend's state in the gateway healthz payload.
type BackendHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// GatewayHealthResponse is the gateway liveness payload, aggregating
// backend health as seen by the active checker.
type GatewayHealthResponse struct {
	Status        string          `json:"status"` // ok | degraded
	Version       string          `json:"version"`
	GoVersion     string          `json:"goVersion"`
	UptimeSeconds float64         `json:"uptimeSeconds"`
	Backends      []BackendHealth `json:"backends"`
	HealthyCount  int             `json:"healthyCount"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version, goVersion := obs.BuildInfo()
	res := GatewayHealthResponse{
		Status:        "ok",
		Version:       version,
		GoVersion:     goVersion,
		UptimeSeconds: time.Since(g.start).Seconds(),
	}
	for _, b := range g.pool.Backends() {
		h := b.Healthy()
		if h {
			res.HealthyCount++
		} else {
			res.Status = "degraded"
		}
		res.Backends = append(res.Backends, BackendHealth{URL: b.URL(), Healthy: h})
	}
	gwJSON(w, http.StatusOK, res)
}
