package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"stsmatch/internal/obs"
	"stsmatch/internal/server"
)

// Gateway fronts N streamd backends. Session-scoped traffic (create,
// ingest, predict, PLR, close) is routed to the shard owning the
// session's patient on the consistent-hash ring; similarity queries
// scatter to every backend and gather into an exact merged result.
//
// With replication factor R > 1 each session is placed on the first R
// distinct backends clockwise from the patient's hash: the primary
// serves traffic and streams its WAL to the successors. When the
// health checker ejects a primary, the gateway promotes the first
// healthy replica (POST /v1/sessions/{sid}/promote) and re-routes the
// session there; scatter queries stay complete — not degraded — as
// long as every dead shard's arcs are covered by an answering
// replica.
type Gateway struct {
	ring    *Ring
	pool    *Pool
	opts    Options
	mux     *http.ServeMux
	handler http.Handler
	log     *slog.Logger
	met     *shardMetrics
	http    *obs.HTTPMetrics
	col     *obs.Collector
	start   time.Time

	// mu guards places and every placement's fields. places maps open
	// session IDs to their primary + replica set; it is populated on
	// create and lazily rebuilt from the shards' /v1/shard/stats
	// inventories after a gateway restart.
	mu     sync.Mutex
	places map[string]*placement

	// subPlaces maps subscription IDs to the scope they were registered
	// under (guarded by mu); the scope — not the backend — is
	// authoritative, so event streams re-resolve through session
	// failover or the ring on every (re)connect.
	subPlaces map[string]*subPlacement

	// promoteMu serializes failovers so concurrent requests against a
	// dead primary elect exactly one replacement.
	promoteMu sync.Mutex
}

// placement records where a session lives: the backend currently
// serving it and the full owner set (primary first) chosen by the
// ring at create time.
type placement struct {
	patientID string
	primary   string
	owners    []string
}

// NewGateway builds a gateway over the given backend base URLs.
func NewGateway(backends []string, opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	pool, err := NewPool(backends, opts)
	if err != nil {
		return nil, err
	}
	ring := NewRing(opts.Vnodes)
	for _, b := range backends {
		ring.Add(b)
	}
	g := &Gateway{
		ring:      ring,
		pool:      pool,
		opts:      opts,
		mux:       http.NewServeMux(),
		log:       obs.Logger("gateway"),
		met:       pool.met,
		http:      obs.NewHTTPMetrics(obs.Default(), "stsmatch_gateway"),
		col:       obs.NewCollector(opts.TraceCapacity, opts.TraceSlowThreshold),
		start:     time.Now(),
		places:    make(map[string]*placement),
		subPlaces: make(map[string]*subPlacement),
	}
	obs.RegisterBuildInfo(obs.Default())
	g.route("POST /v1/sessions", "create_session", g.handleCreateSession)
	g.route("POST /v1/sessions/{sid}/samples", "ingest_samples", g.handleSessionScoped)
	g.route("DELETE /v1/sessions/{sid}", "close_session", g.handleSessionScoped)
	g.route("GET /v1/sessions/{sid}/predict", "predict", g.handleSessionScoped)
	g.route("GET /v1/sessions/{sid}/plr", "plr", g.handleSessionScoped)
	g.route("POST /v1/match", "match", g.handleMatch)
	g.route("POST /v1/subscriptions", "create_subscription", g.handleCreateSubscription)
	g.route("GET /v1/subscriptions", "list_subscriptions", g.handleListSubscriptions)
	g.route("DELETE /v1/subscriptions/{id}", "delete_subscription", g.handleDeleteSubscription)
	g.route("GET /v1/subscriptions/{id}/events", "subscription_events", g.handleSubEvents)
	g.route("GET /v1/stats", "stats", g.handleStats)
	g.route("GET /v1/healthz", "healthz", g.handleHealthz)
	g.mux.Handle("GET /v1/traces", g.http.Wrap("traces", g.col.Handler()))
	// /metrics stays out of the access log and traces, but still counts
	// in the request metrics like any other route.
	g.mux.Handle("GET /metrics", g.http.WrapScrape("metrics", obs.Default().Handler()))
	g.handler = obs.RequestID(obs.TraceHTTP("gateway", g.col, obs.AccessLog(g.log, g.mux)))
	return g, nil
}

// Traces exposes the gateway's trace collector (daemon wiring, tests).
func (g *Gateway) Traces() *obs.Collector { return g.col }

func (g *Gateway) route(pattern, name string, h http.HandlerFunc) {
	g.mux.Handle(pattern, g.http.Wrap(name, h))
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.handler.ServeHTTP(w, r) }

// Close stops the pool's health checker.
func (g *Gateway) Close() { g.pool.Close() }

// Ring exposes the gateway's hash ring (read-only use).
func (g *Gateway) Ring() *Ring { return g.ring }

// Pool exposes the gateway's backend pool (health introspection).
func (g *Gateway) Pool() *Pool { return g.pool }

// SessionPlacement reports where the gateway believes a session lives:
// the backend currently serving it and the full owner set (primary
// first). ok is false when the session is unknown to this gateway.
func (g *Gateway) SessionPlacement(sid string) (primary string, owners []string, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	pl, ok := g.places[sid]
	if !ok {
		return "", nil, false
	}
	return pl.primary, append([]string(nil), pl.owners...), true
}

func gwError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func gwJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// readBody buffers a request body under the proxy cap.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	if r.Body == nil {
		return nil, nil
	}
	return io.ReadAll(http.MaxBytesReader(w, r.Body, server.DefaultMaxBodyBytes))
}

// relay forwards a backend response verbatim.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck
}

// handleCreateSession places a session on the ring: the first R
// distinct owners clockwise from the patient's hash, with the first
// healthy owner as primary and the rest injected into the create
// request as replication targets, so the chosen shard streams its WAL
// to them from the first record.
func (g *Gateway) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req server.CreateSessionRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.PatientID == "" || req.SessionID == "" {
		gwError(w, http.StatusBadRequest, errors.New("patientId and sessionId are required"))
		return
	}
	owners := g.ring.Owners(req.PatientID, g.opts.Replicas)
	if len(owners) == 0 {
		gwError(w, http.StatusServiceUnavailable, errors.New("no backends configured"))
		return
	}
	// The ring's first owner is the natural primary, but any healthy
	// owner can take the role at create time — there is no data to
	// hand over yet.
	var primary *Backend
	for _, u := range owners {
		if b := g.pool.ByURL(u); b != nil && b.Healthy() {
			primary = b
			break
		}
	}
	if primary == nil {
		gwError(w, http.StatusServiceUnavailable,
			fmt.Errorf("no healthy owner for patient %s (owners %v)", req.PatientID, owners))
		return
	}
	req.Replicate = req.Replicate[:0]
	for _, u := range owners {
		if u != primary.URL() {
			req.Replicate = append(req.Replicate, u)
		}
	}
	fwd, err := json.Marshal(req)
	if err != nil {
		gwError(w, http.StatusInternalServerError, err)
		return
	}
	status, respBody, err := g.pool.do(r.Context(), primary, http.MethodPost, "/v1/sessions", fwd, false)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if status == http.StatusCreated {
		g.mu.Lock()
		g.places[req.SessionID] = &placement{
			patientID: req.PatientID,
			primary:   primary.URL(),
			owners:    owners,
		}
		g.mu.Unlock()
		g.met.routed.With(primary.URL()).Inc()
		g.log.Info("session routed",
			slog.String("patientId", req.PatientID),
			slog.String("sessionId", req.SessionID),
			slog.String("backend", primary.URL()),
			slog.Int("replicas", len(req.Replicate)))
	}
	relay(w, status, respBody)
}

// handleSessionScoped forwards a session-addressed request to the
// shard currently serving the session, failing the session over to a
// replica first when the primary has been ejected. GETs are
// idempotent and retried; mutations get a single attempt.
func (g *Gateway) handleSessionScoped(w http.ResponseWriter, r *http.Request) {
	sid := r.PathValue("sid")
	pl, err := g.placementFor(r, sid)
	if err != nil {
		gwError(w, http.StatusNotFound, err)
		return
	}
	b := g.primaryBackend(pl)
	if b == nil {
		b, err = g.failover(r.Context(), sid, pl)
		if err != nil {
			gwError(w, http.StatusServiceUnavailable,
				fmt.Errorf("session %s: primary down and no replica promoted: %w", sid, err))
			return
		}
	}
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	idempotent := r.Method == http.MethodGet
	status, respBody, err := g.pool.do(r.Context(), b, r.Method, path, body, idempotent)
	if err != nil {
		gwError(w, http.StatusBadGateway, err)
		return
	}
	if r.Method == http.MethodDelete && status == http.StatusOK {
		g.mu.Lock()
		delete(g.places, sid)
		g.mu.Unlock()
	}
	relay(w, status, respBody)
}

// primaryBackend returns the backend currently serving a session, or
// nil when it is unknown or unhealthy.
func (g *Gateway) primaryBackend(pl *placement) *Backend {
	g.mu.Lock()
	u := pl.primary
	g.mu.Unlock()
	if u == "" {
		return nil
	}
	if b := g.pool.ByURL(u); b != nil && b.Healthy() {
		return b
	}
	return nil
}

// failover promotes the first healthy replica of a session to primary
// and re-points the placement at it. Serialized per gateway so
// concurrent requests against a dead primary elect one replacement;
// later waiters observe the updated placement and return immediately.
func (g *Gateway) failover(ctx context.Context, sid string, pl *placement) (*Backend, error) {
	g.promoteMu.Lock()
	defer g.promoteMu.Unlock()
	if b := g.primaryBackend(pl); b != nil {
		return b, nil // raced with another request's failover
	}
	g.mu.Lock()
	old := pl.primary
	owners := append([]string(nil), pl.owners...)
	g.mu.Unlock()
	lastErr := fmt.Errorf("no healthy replica among owners %v", owners)
	for _, cand := range owners {
		if cand == old {
			continue
		}
		b := g.pool.ByURL(cand)
		if b == nil || !b.Healthy() {
			continue
		}
		// The dead primary is dropped from the new replica set: if it
		// comes back it still holds the old epoch and would fence the
		// shipments anyway.
		rest := make([]string, 0, len(owners))
		for _, u := range owners {
			if u != cand && u != old {
				rest = append(rest, u)
			}
		}
		body, err := json.Marshal(server.PromoteRequest{Replicate: rest})
		if err != nil {
			return nil, err
		}
		status, respBody, err := g.pool.do(ctx, b,
			http.MethodPost, "/v1/sessions/"+url.PathEscape(sid)+"/promote", body, false)
		if err != nil {
			lastErr = err
			continue
		}
		if status != http.StatusOK {
			lastErr = fmt.Errorf("promote on %s: status %d: %s", cand, status, errDetail(respBody))
			continue
		}
		g.mu.Lock()
		pl.primary = cand
		g.mu.Unlock()
		g.met.failovers.Inc()
		g.log.Warn("session failed over",
			slog.String("sessionId", sid),
			slog.String("from", old),
			slog.String("to", cand))
		return b, nil
	}
	return nil, lastErr
}

// bodyErrCode maps a buffered-read error to a status: 413 when the
// proxy body cap tripped, 400 otherwise.
func bodyErrCode(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// placementFor finds where a session lives: the local table first,
// then (after e.g. a gateway restart) a scatter over the healthy
// shards' session inventories. The scatter distinguishes primaries
// (Sessions) from followers (Replicas), so a rebuilt placement routes
// to the live primary and keeps the followers as failover candidates;
// if only followers survive, the placement has no primary and the
// caller's failover path promotes one.
func (g *Gateway) placementFor(r *http.Request, sid string) (*placement, error) {
	g.mu.Lock()
	if pl, ok := g.places[sid]; ok {
		g.mu.Unlock()
		return pl, nil
	}
	g.mu.Unlock()
	type found struct {
		primary   string
		replica   string
		patientID string
	}
	results := make([]*found, len(g.pool.Backends()))
	var wg sync.WaitGroup
	for i, b := range g.pool.Backends() {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/shard/stats", nil, true)
			if err != nil || status != http.StatusOK {
				return
			}
			var stats server.ShardStatsResponse
			if json.Unmarshal(body, &stats) != nil {
				return
			}
			for _, s := range stats.Sessions {
				if s.SessionID == sid {
					results[i] = &found{primary: b.URL(), patientID: s.PatientID}
					return
				}
			}
			for _, s := range stats.Replicas {
				if s.SessionID == sid {
					results[i] = &found{replica: b.URL(), patientID: s.PatientID}
					return
				}
			}
		}(i, b)
	}
	wg.Wait()
	pl := &placement{}
	for _, f := range results {
		if f == nil {
			continue
		}
		pl.patientID = f.patientID
		if f.primary != "" && pl.primary == "" {
			pl.primary = f.primary
			pl.owners = append([]string{f.primary}, pl.owners...)
		} else if f.replica != "" {
			pl.owners = append(pl.owners, f.replica)
		}
	}
	if len(pl.owners) == 0 {
		return nil, fmt.Errorf("no open session %q on any reachable shard", sid)
	}
	g.mu.Lock()
	if cur, ok := g.places[sid]; ok {
		pl = cur // another request rebuilt it first
	} else {
		g.places[sid] = pl
	}
	g.mu.Unlock()
	return pl, nil
}

// MatchResult is the gateway's scatter-gather response: the exact
// merged match list, plus degradation detail when one or more shards
// could not answer and their data is not covered by replicas.
type MatchResult struct {
	Matches []server.RemoteMatch `json:"matches"`
	// Profile is present only for ?debug=profile requests: the merged
	// cross-service span tree — gateway root, one scatter leg per
	// shard, and each shard's handler + matcher funnel spans grafted
	// under its leg.
	Profile *obs.Profile `json:"profile,omitempty"`
	// Degraded is true when at least one shard failed to answer AND
	// that shard's arcs are not all covered by an answering replica:
	// the matches then cover only the surviving data. With replication
	// factor R > 1 a single dead shard keeps Degraded false (and the
	// key absent) because every arc it owned is mirrored on a
	// successor that did answer.
	Degraded bool `json:"degraded,omitempty"`
	// ShardErrors details each failed shard (URL -> error).
	ShardErrors map[string]string `json:"shardErrors,omitempty"`
	// ShardsQueried / ShardsOK count the fan-out.
	ShardsQueried int `json:"shardsQueried"`
	ShardsOK      int `json:"shardsOk"`
}

// handleMatch scatters a similarity query to every backend and merges
// the shard-local results into the global answer. The merge is exact:
// every shard scores candidates with identical Params and the query's
// own provenance, so ascending weighted distance is a total order the
// gateway can merge on; for k-NN queries each shard returns its local
// top-k and the merged top-k of those is the union's top-k. Replicated
// streams are scored on both their primary and their followers, so
// the merge deduplicates identical matches before ranking.
func (g *Gateway) handleMatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := readBody(w, r)
	if err != nil {
		gwError(w, bodyErrCode(err), fmt.Errorf("reading request: %w", err))
		return
	}
	var req server.MatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		gwError(w, http.StatusBadRequest, fmt.Errorf("decoding match request: %w", err))
		return
	}
	// ?debug=profile asks each shard for its span tree inline and
	// merges them under this request's scatter legs.
	profile := r.URL.Query().Get("debug") == "profile"
	path := "/v1/match"
	if profile {
		path += "?debug=profile"
	}
	backends := g.pool.Backends()
	type leg struct {
		resp server.MatchResponse
		err  error
	}
	legs := make([]leg, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			legs[i].err = errors.New("unhealthy (ejected)")
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			// One span per scatter leg; the leg's context flows into the
			// pool, whose per-attempt spans (and the backend's own trace,
			// via the propagated traceparent) nest underneath.
			lctx, sp := obs.StartSpan(r.Context(), "scatter.leg")
			defer sp.Finish()
			sp.Annotate("backend", b.URL())
			status, respBody, err := g.pool.do(lctx, b, http.MethodPost, path, body, true)
			switch {
			case err != nil:
				sp.Annotate("error", err.Error())
				legs[i].err = err
			case status != http.StatusOK:
				sp.Annotate("status", status)
				legs[i].err = fmt.Errorf("status %d: %s", status, errDetail(respBody))
			default:
				sp.Annotate("status", status)
				legs[i].err = json.Unmarshal(respBody, &legs[i].resp)
			}
		}(i, b)
	}
	wg.Wait()

	res := MatchResult{ShardsQueried: len(backends), ShardErrors: map[string]string{}}
	answered := make(map[string]bool, len(backends))
	var lists [][]server.RemoteMatch
	for i, b := range backends {
		if legs[i].err != nil {
			res.ShardErrors[b.URL()] = legs[i].err.Error()
			continue
		}
		res.ShardsOK++
		answered[b.URL()] = true
		lists = append(lists, legs[i].resp.Matches)
		if p := legs[i].resp.Profile; p != nil {
			// The shard's handler root is parented on this gateway's
			// attempt span (it continued our traceparent), so grafting
			// the flattened spans into the trace reassembles one tree.
			obs.AddExternalSpans(r.Context(), p.Root.Flatten())
		}
	}
	if res.ShardsOK == 0 {
		g.met.scatter.Observe(time.Since(start).Seconds())
		gwJSON(w, http.StatusBadGateway, map[string]any{
			"error":       "all shards failed",
			"shardErrors": res.ShardErrors,
		})
		return
	}
	res.Matches = MergeMatches(lists, req.K)
	// A failed shard only degrades the result if some arc it owns has
	// no answering replica; the coverage test is against the shards
	// that actually answered this query, not nominal health.
	for failed := range res.ShardErrors {
		if !g.ring.Covered(failed, g.opts.Replicas, func(u string) bool { return answered[u] }) {
			res.Degraded = true
			break
		}
	}
	if len(res.ShardErrors) == 0 {
		res.ShardErrors = nil
	}
	if res.Degraded {
		g.met.degraded.Inc()
	}
	if profile {
		if id, spans := obs.SnapshotTrace(r.Context()); id != "" {
			res.Profile = &obs.Profile{TraceID: id, Root: obs.BuildTree(spans)}
		}
	}
	g.met.scatter.Observe(time.Since(start).Seconds())
	gwJSON(w, http.StatusOK, res)
}

// errDetail extracts the "error" field of a JSON error body, falling
// back to a truncated raw body.
func errDetail(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	const max = 200
	if len(body) > max {
		body = body[:max]
	}
	return string(body)
}

// MergeMatches merges shard-local result lists into the global order:
// ascending distance, with a deterministic (patient, session, start)
// tie-break so equal-distance matches do not flap between requests.
// Identical matches are deduplicated first — a replicated stream is
// scored independently by its primary and each follower, and those
// duplicates would otherwise crowd out genuine results under top-k
// truncation. k > 0 truncates to the global top-k.
func MergeMatches(lists [][]server.RemoteMatch, k int) []server.RemoteMatch {
	out := []server.RemoteMatch{}
	seen := make(map[server.RemoteMatch]struct{})
	for _, l := range lists {
		for _, m := range l {
			if _, dup := seen[m]; dup {
				continue
			}
			seen[m] = struct{}{}
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Distance != y.Distance {
			return x.Distance < y.Distance
		}
		if x.PatientID != y.PatientID {
			return x.PatientID < y.PatientID
		}
		if x.SessionID != y.SessionID {
			return x.SessionID < y.SessionID
		}
		return x.Start < y.Start
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// GatewayStatsResponse aggregates the shards' database stats. Totals
// are physical: with replication factor R, replicated streams count
// once per holder.
type GatewayStatsResponse struct {
	Patients     int               `json:"patients"`
	Streams      int               `json:"streams"`
	Vertices     int               `json:"vertices"`
	OpenSessions int               `json:"openSessions"`
	Shards       int               `json:"shards"`
	ShardsOK     int               `json:"shardsOk"`
	Degraded     bool              `json:"degraded"`
	ShardErrors  map[string]string `json:"shardErrors,omitempty"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	backends := g.pool.Backends()
	type leg struct {
		stats server.StatsResponse
		err   error
	}
	legs := make([]leg, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		if !b.Healthy() {
			legs[i].err = errors.New("unhealthy (ejected)")
			continue
		}
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			status, body, err := g.pool.do(r.Context(), b, http.MethodGet, "/v1/stats", nil, true)
			switch {
			case err != nil:
				legs[i].err = err
			case status != http.StatusOK:
				legs[i].err = fmt.Errorf("status %d: %s", status, errDetail(body))
			default:
				legs[i].err = json.Unmarshal(body, &legs[i].stats)
			}
		}(i, b)
	}
	wg.Wait()
	res := GatewayStatsResponse{Shards: len(backends), ShardErrors: map[string]string{}}
	for i, b := range backends {
		if legs[i].err != nil {
			res.ShardErrors[b.URL()] = legs[i].err.Error()
			continue
		}
		res.ShardsOK++
		res.Patients += legs[i].stats.Patients
		res.Streams += legs[i].stats.Streams
		res.Vertices += legs[i].stats.Vertices
		res.OpenSessions += legs[i].stats.OpenSessions
	}
	res.Degraded = len(res.ShardErrors) > 0
	if !res.Degraded {
		res.ShardErrors = nil
	}
	gwJSON(w, http.StatusOK, res)
}

// BackendHealth is one backend's state in the gateway healthz payload.
type BackendHealth struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// GatewayHealthResponse is the gateway liveness payload, aggregating
// backend health as seen by the active checker.
type GatewayHealthResponse struct {
	Status        string          `json:"status"` // ok | degraded
	Version       string          `json:"version"`
	GoVersion     string          `json:"goVersion"`
	UptimeSeconds float64         `json:"uptimeSeconds"`
	Backends      []BackendHealth `json:"backends"`
	HealthyCount  int             `json:"healthyCount"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	version, goVersion := obs.BuildInfo()
	res := GatewayHealthResponse{
		Status:        "ok",
		Version:       version,
		GoVersion:     goVersion,
		UptimeSeconds: time.Since(g.start).Seconds(),
	}
	for _, b := range g.pool.Backends() {
		h := b.Healthy()
		if h {
			res.HealthyCount++
		} else {
			res.Status = "degraded"
		}
		res.Backends = append(res.Backends, BackendHealth{URL: b.URL(), Healthy: h})
	}
	gwJSON(w, http.StatusOK, res)
}
