// Package shard implements horizontal scale-out for the stream
// database: a consistent-hash ring that partitions patients across N
// streamd backends, a production-shaped HTTP client pool (connection
// reuse, timeouts, bounded retries with jittered backoff, active
// health checking), and a gateway that routes session traffic to the
// owning shard while scatter-gathering similarity queries across every
// healthy backend and merging them into an exact global result.
//
// The partition key is the patient ID: the paper's hierarchical
// database (database -> patients -> streams -> vertices) never shares
// state across patients on the write path, so a patient's sessions all
// land on one shard and ingestion scales linearly. Similarity search
// intentionally crosses patients (other-patient candidates carry
// weight w_op), so reads fan out to all shards and merge centrally;
// because every shard scores its candidates with the same Params and
// the same query provenance, a merge by ascending weighted distance is
// exactly the result a single node holding the union would produce.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DefaultVnodes is the default number of virtual nodes per backend.
// 128 vnodes keep the keyspace imbalance across a handful of backends
// within a few percent while the ring stays tiny.
const DefaultVnodes = 128

// Ring is a consistent-hash ring with virtual nodes. Keys (patient
// IDs) map to the first vnode clockwise from the key's hash, so adding
// or removing one backend remaps only ~1/N of the keyspace. All
// methods are safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	hashes   []uint64          // sorted vnode hashes
	owner    map[uint64]string // vnode hash -> node
	nodes    map[string]struct{}
}

// NewRing creates an empty ring with the given number of virtual
// nodes per backend (<= 0 selects DefaultVnodes).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultVnodes
	}
	return &Ring{
		replicas: replicas,
		owner:    make(map[uint64]string),
		nodes:    make(map[string]struct{}),
	}
}

// hashKey is FNV-1a 64 followed by a 64-bit avalanche finalizer:
// deterministic across processes and platforms, so every gateway
// instance agrees on the layout without coordination. Raw FNV-1a does
// not avalanche on short, similar keys — sequential patient IDs like
// "P001".."P099" hash to adjacent ring positions and pile onto a
// single arc — so the finalizer (MurmurHash3 fmix64) diffuses every
// input bit across the output.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// vnodeKey names the i-th virtual node of a backend.
func vnodeKey(node string, i int) string {
	return fmt.Sprintf("%s#%d", node, i)
}

// Add inserts a backend's virtual nodes. Adding an existing node is a
// no-op. When two vnodes hash identically (vanishingly rare), the
// lexically smaller node keeps the slot so the layout stays
// deterministic regardless of insertion order.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		h := hashKey(vnodeKey(node, i))
		if prev, ok := r.owner[h]; ok {
			if node < prev {
				r.owner[h] = node
			}
			continue
		}
		r.owner[h] = node
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(a, b int) bool { return r.hashes[a] < r.hashes[b] })
}

// Remove deletes a backend and its virtual nodes.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.hashes[:0]
	for _, h := range r.hashes {
		if r.owner[h] == node {
			delete(r.owner, h)
			continue
		}
		kept = append(kept, h)
	}
	r.hashes = kept
}

// Owner returns the backend owning the given key, or "" when the ring
// is empty.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 {
		return ""
	}
	h := hashKey(key)
	// First vnode clockwise of h, wrapping to the start.
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[r.hashes[i]]
}

// Owners returns the first n distinct backends clockwise from the
// key's hash: index 0 is the primary (identical to Owner), the rest
// are successor replicas. Fewer than n backends in the ring yields
// them all. The walk skips vnodes of already-collected backends, so
// replica sets are always distinct nodes.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		node := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if _, dup := seen[node]; dup {
			continue
		}
		seen[node] = struct{}{}
		out = append(out, node)
	}
	return out
}

// Covered reports whether every arc whose primary is node also has,
// among its replicas-1 distinct clockwise successors, at least one
// backend for which ok returns true. A gateway uses this to decide
// whether losing node degrades scatter-gather results: with
// replication factor R, each of node's primary arcs is mirrored on its
// successors, so as long as one successor per arc is still answering,
// the merged result is complete. replicas <= 1 means unreplicated and
// therefore never covered.
func (r *Ring) Covered(node string, replicas int, ok func(string) bool) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if replicas <= 1 {
		return false
	}
	if _, in := r.nodes[node]; !in {
		return true // owns no arcs
	}
	for i, h := range r.hashes {
		if r.owner[h] != node {
			continue
		}
		// Keys on this arc have node as their first distinct owner;
		// walk the same successor sequence Owners would.
		covered := false
		seen := map[string]struct{}{node: {}}
		for j := 1; j < len(r.hashes) && len(seen) < replicas; j++ {
			n := r.owner[r.hashes[(i+j)%len(r.hashes)]]
			if _, dup := seen[n]; dup {
				continue
			}
			seen[n] = struct{}{}
			if ok(n) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the ring. Add is deterministic
// and order-independent, so rebuilding from the node set reproduces
// the layout exactly — rebalance planning diffs a clone against the
// mutated original.
func (r *Ring) Clone() *Ring {
	c := NewRing(r.replicas)
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n := range r.nodes {
		c.addNoLock(n)
	}
	return c
}

// addNoLock is Add without taking c's lock; Clone owns c exclusively.
func (r *Ring) addNoLock(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		h := hashKey(vnodeKey(node, i))
		if prev, ok := r.owner[h]; ok {
			if node < prev {
				r.owner[h] = node
			}
			continue
		}
		r.owner[h] = node
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(a, b int) bool { return r.hashes[a] < r.hashes[b] })
}

// MovedKeys returns the keys (in input order) whose primary owner
// differs between two ring layouts — the minimal session set a
// membership change requires moving. Keys whose replica tail changed
// but whose primary stayed put are not returned: the migration
// protocol fixes the tail as part of any move, and a tail-only change
// converges through ordinary replication without a cutover.
func MovedKeys(before, after *Ring, keys []string, n int) []string {
	var out []string
	for _, k := range keys {
		b := before.Owners(k, n)
		a := after.Owners(k, n)
		if len(b) == 0 || len(a) == 0 {
			continue
		}
		if b[0] != a[0] {
			out = append(out, k)
		}
	}
	return out
}

// Nodes returns the backends currently in the ring, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of backends in the ring.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
