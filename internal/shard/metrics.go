package shard

import "stsmatch/internal/obs"

// shardMetrics bundles the gateway's handles into the shared default
// registry. Registration is idempotent, so every Pool/Gateway in a
// process (tests start many) shares the same underlying families.
type shardMetrics struct {
	requests  *obs.CounterVec   // backend, outcome: ok | error
	retries   *obs.CounterVec   // backend
	latency   *obs.HistogramVec // backend
	healthy   *obs.GaugeVec     // backend: 1 healthy, 0 ejected
	scatter   *obs.Histogram
	degraded  *obs.Counter
	routed    *obs.CounterVec // backend: sessions routed by the ring
	failovers *obs.Counter    // sessions promoted onto a replica

	// Follower-read planner and result cache (see gateway.go handleMatch).
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge
	followerReads  *obs.Counter // patient arcs assigned to a follower leg
	readRefusals   *obs.Counter // patients refused by a shard's freshness check
	retryLegs      *obs.Counter // extra legs sent to recover refused/failed patients

	// Elastic rebalancing (see rebalance.go).
	rebalances             *obs.Counter
	rebalanceMoved         *obs.Counter
	rebalanceFailures      *obs.Counter
	placementInvalidations *obs.Counter // placements dropped on a 410 tombstone
}

func newShardMetrics(r *obs.Registry) *shardMetrics {
	return &shardMetrics{
		requests: r.CounterVec("stsmatch_gateway_backend_requests_total",
			"Gateway-to-backend requests by backend and outcome.", "backend", "outcome"),
		retries: r.CounterVec("stsmatch_gateway_backend_retries_total",
			"Gateway-to-backend retry attempts by backend.", "backend"),
		latency: r.HistogramVec("stsmatch_gateway_backend_seconds",
			"Gateway-to-backend request latency in seconds, by backend.",
			obs.DefLatencyBuckets, "backend"),
		healthy: r.GaugeVec("stsmatch_gateway_backend_healthy",
			"Backend health as seen by the gateway (1 healthy, 0 ejected).", "backend"),
		scatter: r.Histogram("stsmatch_gateway_scatter_seconds",
			"Scatter-gather similarity query wall time in seconds.",
			obs.DefLatencyBuckets),
		degraded: r.Counter("stsmatch_gateway_degraded_total",
			"Scatter-gather queries answered with partial (degraded) results."),
		routed: r.CounterVec("stsmatch_gateway_sessions_routed_total",
			"Sessions routed to a backend by the consistent-hash ring.", "backend"),
		failovers: r.Counter("stsmatch_gateway_failovers_total",
			"Sessions failed over to a replica after the primary was ejected."),
		cacheHits: r.Counter("stsmatch_gateway_match_cache_hits_total",
			"Match queries served from the result cache with zero backend calls."),
		cacheMisses: r.Counter("stsmatch_gateway_match_cache_misses_total",
			"Match cache lookups that fell through to a scatter."),
		cacheEvictions: r.Counter("stsmatch_gateway_match_cache_evictions_total",
			"Match cache entries evicted by the LRU bound."),
		cacheEntries: r.Gauge("stsmatch_gateway_match_cache_entries",
			"Match cache entries currently resident."),
		followerReads: r.Counter("stsmatch_gateway_follower_reads_total",
			"Patient arcs served by a follower leg instead of the primary."),
		readRefusals: r.Counter("stsmatch_gateway_read_refusals_total",
			"Patients a shard refused to serve under the query's max-lag bound."),
		retryLegs: r.Counter("stsmatch_gateway_match_retry_legs_total",
			"Extra scatter legs sent to recover refused or failed patients."),
		rebalances: r.Counter("stsmatch_gateway_rebalances_total",
			"Rebalance passes run (membership change or explicit re-drive)."),
		rebalanceMoved: r.Counter("stsmatch_gateway_rebalance_sessions_moved_total",
			"Sessions migrated onto their ring-designated owner by a rebalance."),
		rebalanceFailures: r.Counter("stsmatch_gateway_rebalance_failures_total",
			"Session migrations a rebalance could not complete after retries."),
		placementInvalidations: r.Counter("stsmatch_gateway_placement_invalidations_total",
			"Cached session placements invalidated by a 410 tombstone response."),
	}
}
