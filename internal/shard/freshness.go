// Freshness tracking: the gateway's per-backend view of how much of
// each patient's data a shard holds, in streams and vertices. The
// scatter planner compares a follower's tracked holdings against the
// primary's to decide whether the follower is within a query's
// max-lag bound.
//
// The tracker is advisory, never authoritative: a follower asked to
// serve a patient re-verifies its real local holdings against the
// leg's X-Match-Require bound and refuses if short, and the gateway
// retries refused patients on the primary. A stale tracker therefore
// costs a retry leg, not correctness.
//
// It is fed from three sides, all piggybacked on traffic the gateway
// already sends:
//   - ingest/create acks: the primary reports the patient's post-write
//     counts (X-Patient-Streams/X-Patient-Vertices); X-Replicated:
//     full credits the session's followers with the same counts, since
//     a clean synchronous flush proves they hold at least that much.
//   - match legs: each shard self-reports its holdings for every
//     patient the leg's scope named (MatchResponse.Freshness).
//   - /v1/shard/stats polling (RefreshFreshness): per-patient holdings
//     for every live or followed session on the shard.

package shard

import (
	"sync"

	"stsmatch/internal/server"
)

type freshTracker struct {
	mu sync.Mutex
	// byBackend maps backend URL -> patient ID -> last known holdings.
	byBackend map[string]map[string]server.PatientFreshness
}

func newFreshTracker() *freshTracker {
	return &freshTracker{byBackend: make(map[string]map[string]server.PatientFreshness)}
}

// observe records a backend's own report of its holdings for a
// patient. Self-reports overwrite: they are authoritative for that
// backend, and counts only grow on a live shard, so an overwrite also
// corrects any over-credit from a previous replication inference.
func (f *freshTracker) observe(backend, pid string, fr server.PatientFreshness) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ensure(backend)[pid] = fr
}

// observeMap records a batch of self-reports (match-leg piggybacks,
// stats polls).
func (f *freshTracker) observeMap(backend string, m map[string]server.PatientFreshness) {
	if len(m) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	pats := f.ensure(backend)
	for pid, fr := range m {
		pats[pid] = fr
	}
}

// credit raises a backend's tracked holdings to at least fr without
// lowering anything a self-report established — the inference path
// ("the primary acked a fully replicated write, so the follower holds
// at least this much").
func (f *freshTracker) credit(backend, pid string, fr server.PatientFreshness) {
	f.mu.Lock()
	defer f.mu.Unlock()
	pats := f.ensure(backend)
	cur := pats[pid]
	if fr.Streams > cur.Streams {
		cur.Streams = fr.Streams
	}
	if fr.Vertices > cur.Vertices {
		cur.Vertices = fr.Vertices
	}
	pats[pid] = cur
}

// holdings returns the tracked view of a backend's data for a patient.
func (f *freshTracker) holdings(backend, pid string) (server.PatientFreshness, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fr, ok := f.byBackend[backend][pid]
	return fr, ok
}

func (f *freshTracker) ensure(backend string) map[string]server.PatientFreshness {
	pats := f.byBackend[backend]
	if pats == nil {
		pats = make(map[string]server.PatientFreshness)
		f.byBackend[backend] = pats
	}
	return pats
}
